// Embedding demo (Section 4 of the paper): place a wrap-around mesh, an
// arbitrary even cycle, a complete binary tree, and a mesh of trees
// inside a hyper-butterfly, verifying each embedding edge by edge.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/graph"
)

func main() {
	hb := core.MustNew(3, 3) // 192 nodes, degree 7

	// Wrap-around mesh M(8, 6): C(8) from the hypercube factor x the
	// 2n-cycle of the butterfly factor.
	tor, phi, err := embed.Torus(hb, 8, embed.BfDoubleLevel)
	must(err)
	must(graph.VerifyEmbedding(tor, hb, phi))
	fmt.Printf("torus M(%d,%d) embedded into HB(3,3) and verified\n", tor.N1, tor.N2)

	// Lemma 2: any even cycle up to the full node count.
	for _, k := range []int{4, 10, 100, hb.Order()} {
		cyc, err := embed.EvenCycle(hb, k)
		must(err)
		must(graph.VerifyCycle(hb, cyc))
		fmt.Printf("even cycle C(%d) embedded and verified\n", k)
	}

	// Figure 1: complete binary tree T(m+n-1) = T(5), 31 nodes.
	levels, tphi, err := embed.BinaryTree(hb)
	must(err)
	must(graph.VerifyEmbedding(graph.CompleteBinaryTree{Levels: levels}, hb, tphi))
	fmt.Printf("complete binary tree T(%d) embedded and verified; root at %s\n",
		levels, hb.VertexLabel(tphi[0]))

	// Theorem 4: mesh of trees MT(2^1, 2^3).
	mt, mphi, err := embed.MeshOfTrees(hb, 1, 3)
	must(err)
	must(graph.VerifyEmbedding(mt, hb, mphi))
	fmt.Printf("mesh of trees MT(2^%d, 2^%d) embedded and verified\n", mt.P, mt.Q)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
