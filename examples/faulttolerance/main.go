// Fault tolerance demo: knock out the maximum tolerable number of nodes
// (m+3) in a hyper-butterfly and show that every surviving pair still
// communicates (Remark 10), then knock out one more in the worst place
// and show the network splits — the fault tolerance really is maximal
// (Corollary 1).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/faultroute"
)

func main() {
	hb := core.MustNew(2, 3) // degree m+4 = 6, tolerates any 5 faults
	rng := rand.New(rand.NewSource(42))

	// Scenario 1: m+3 random faults. Delivery is guaranteed.
	faults := rng.Perm(hb.Order())[:hb.M()+3]
	router, err := faultroute.New(hb, faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HB(2,3) with %d random faults (the maximum with guaranteed delivery):\n", len(faults))
	for _, f := range faults {
		fmt.Printf("  dead: %s\n", hb.VertexLabel(f))
	}
	fmt.Printf("network still connected: %v\n\n", router.Connected())

	delivered := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		u, v := rng.Intn(hb.Order()), rng.Intn(hb.Order())
		if u == v || router.Faulty(u) || router.Faulty(v) {
			continue
		}
		if _, err := router.Route(u, v); err != nil {
			log.Fatalf("delivery failed within the guarantee: %v", err)
		}
		delivered++
	}
	fmt.Printf("%d/%d random pairs routed successfully around the faults\n", delivered, delivered)
	fmt.Printf("strategies used: optimal=%d greedy=%d disjoint-paths=%d bfs=%d\n\n",
		router.Stats.Optimal, router.Stats.Greedy, router.Stats.Disjoint, router.Stats.BFS)

	// Scenario 2: m+4 faults placed adversarially — all neighbors of one
	// victim. The victim is cut off: the bound is tight.
	victim := hb.Encode(1, 7)
	adversarial := hb.AppendNeighbors(victim, nil)
	router2, err := faultroute.New(hb, adversarial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("now %d faults surrounding %s:\n", len(adversarial), hb.VertexLabel(victim))
	fmt.Printf("network connected: %v\n", router2.Connected())
	if _, err := router2.Route(victim, hb.Identity()); err != nil {
		fmt.Printf("routing out of the victim fails as expected: %v\n", err)
	}
}
