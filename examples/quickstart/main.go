// Quickstart: build a hyper-butterfly network, inspect its parameters,
// route between two nodes, and verify one of the paper's headline
// claims (the m+4 disjoint paths of Theorem 5) on live objects.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	// HB(2,3): hypercube dimension 2, butterfly dimension 3.
	hb, err := core.New(2, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HB(2,3): %d nodes, %d edges, degree %d, diameter %d\n",
		hb.Order(), hb.EdgeCountFormula(), hb.Degree(), hb.DiameterFormula())

	// Nodes carry two-part labels (hypercube bits; butterfly symbols).
	u := hb.Identity()
	v := hb.Encode(3, hb.Butterfly().NodeOf(1, 0b101))
	fmt.Printf("u = %s\nv = %s\n", hb.VertexLabel(u), hb.VertexLabel(v))

	// Shortest routing is two-phase: hypercube bits first, then the
	// butterfly generators (Section 3 of the paper).
	fmt.Printf("distance(u,v) = %d; route:", hb.Distance(u, v))
	for _, mv := range hb.RouteMoves(u, v) {
		fmt.Printf(" %s", mv)
	}
	fmt.Println()

	// Theorem 5: m+4 internally vertex-disjoint paths between any pair.
	paths, err := hb.DisjointPaths(u, v)
	if err != nil {
		log.Fatal(err)
	}
	if err := graph.VerifyDisjointPaths(hb, u, v, paths); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 5: %d disjoint paths, all verified; lengths:", len(paths))
	for _, p := range paths {
		fmt.Printf(" %d", len(p)-1)
	}
	fmt.Println()
}
