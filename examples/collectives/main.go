// Collectives demo: the global operations a multiprocessor built on a
// hyper-butterfly actually runs — reduce, all-reduce, barrier — plus a
// node-to-set fan (one source streaming to m+4 disjoint destinations at
// once, the one-to-many face of Theorem 5).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	hb := core.MustNew(3, 4) // 512 nodes, degree 7
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, hb.Order())
	var want int64
	for i := range vals {
		vals[i] = int64(rng.Intn(100))
		want += vals[i]
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "collective\tresult\trounds\tmessages")

	sum, st, err := collectives.Reduce(hb, hb.Identity(), vals, collectives.Sum)
	must(err)
	fmt.Fprintf(w, "reduce (tree)\t%d\t%d\t%d\n", sum, st.Rounds, st.Messages)

	sum, st, err = collectives.AllReduceTree(hb, hb.Identity(), vals, collectives.Sum)
	must(err)
	fmt.Fprintf(w, "all-reduce (tree)\t%d\t%d\t%d\n", sum, st.Rounds, st.Messages)

	sum, st, err = collectives.AllReduceHB(hb, vals, collectives.Sum)
	must(err)
	fmt.Fprintf(w, "all-reduce (structured)\t%d\t%d\t%d\n", sum, st.Rounds, st.Messages)

	bst, err := collectives.Barrier(hb)
	must(err)
	fmt.Fprintf(w, "barrier (structured)\t-\t%d\t%d\n", bst.Rounds, bst.Messages)
	w.Flush()
	if sum != want {
		log.Fatalf("all-reduce result %d, want %d", sum, want)
	}
	fmt.Printf("\nstructured all-reduce saves m = %d rounds over the tree baseline\n\n", hb.M())

	// Fan: disjoint paths from one source to a full set of m+4 targets.
	src := hb.Identity()
	targets := make([]int, 0, hb.Degree())
	used := map[int]bool{src: true}
	for len(targets) < hb.Degree() {
		x := rng.Intn(hb.Order())
		if !used[x] {
			used[x] = true
			targets = append(targets, x)
		}
	}
	paths, err := hb.Fan(src, targets)
	must(err)
	must(graph.VerifyNodeToSetPaths(hb, src, targets, paths))
	fmt.Printf("fan from %s to %d targets — all paths vertex-disjoint, lengths:",
		hb.VertexLabel(src), len(targets))
	for _, p := range paths {
		fmt.Printf(" %d", len(p)-1)
	}
	fmt.Println()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
