// Comparison demo: the paper's core argument, reproduced end to end.
// Hyper-deBruijn networks combine hypercubes with de Bruijn graphs but
// lose regularity and fault tolerance; the hyper-butterfly keeps the
// same degree budget (m+4) while being a regular Cayley graph with
// connectivity equal to its degree. This example measures both on live
// graphs and then exercises them under identical traffic.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hyperdebruijn"
	"repro/internal/simnet"
)

func main() {
	hb := core.MustNew(2, 3)          // 96 nodes, degree 6
	hd := hyperdebruijn.MustNew(2, 5) // 128 nodes, degrees 4..6

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "property\tHB(2,3)\tHD(2,5)")
	hbD := hb.Dense()
	hdD := graph.Build(hd)
	hbSt := graph.Degrees(hbD)
	hdSt := graph.Degrees(hdD)
	fmt.Fprintf(w, "nodes\t%d\t%d\n", hbD.Order(), hdD.Order())
	fmt.Fprintf(w, "degree\t%d (regular)\t%d..%d (irregular)\n", hbSt.Max, hdSt.Min, hdSt.Max)
	ecc, _ := graph.Eccentricity(hb, hb.Identity())
	fmt.Fprintf(w, "diameter\t%d\t%d\n", ecc, graph.Diameter(hdD))
	fmt.Fprintf(w, "connectivity\t%d = degree (maximal)\t%d < max degree\n",
		graph.ConnectivityVertexTransitive(hbD), graph.Connectivity(hdD))
	w.Flush()

	// Same offered load on both networks.
	fmt.Println("\nuniform traffic, rate 0.05, 2000 cycles:")
	w = tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "network\tdelivered\tavg latency\tmax queue")
	for _, e := range []struct {
		name string
		top  simnet.Topology
	}{
		{"HB(2,3)", simnet.Routed{Graph: hb, Route: hb.Route}},
		{"HD(2,5)", simnet.Routed{Graph: hd, Route: hd.Route}},
	} {
		res, err := simnet.Run(e.top, simnet.Config{Cycles: 2000, Rate: 0.05, Pattern: simnet.Uniform, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d/%d\t%.2f\t%d\n", e.name, res.Delivered, res.Injected, res.AvgLatency, res.MaxQueue)
	}
	w.Flush()
}
