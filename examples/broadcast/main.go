// Broadcast demo: compare one-to-all broadcast strategies on HB(m,n)
// across a sweep of sizes — the extension the paper announces as future
// work. The structured two-phase algorithm matches the diameter lower
// bound in rounds while sending far fewer messages than flooding.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/broadcast"
	"repro/internal/core"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "network\tnodes\tdiameter\tflood rounds/msgs\ttwo-phase rounds/msgs\ttree rounds/msgs")
	for _, dims := range [][2]int{{1, 3}, {2, 3}, {2, 4}, {3, 4}, {3, 5}, {4, 5}} {
		hb := core.MustNew(dims[0], dims[1])
		flood := broadcast.Flood(hb, hb.Identity())
		two, _, err := broadcast.TwoPhase(hb, hb.Identity())
		if err != nil {
			log.Fatal(err)
		}
		tree := broadcast.SpanningTree(hb, hb.Identity())
		fmt.Fprintf(w, "HB(%d,%d)\t%d\t%d\t%d/%d\t%d/%d\t%d/%d\n",
			dims[0], dims[1], hb.Order(), hb.DiameterFormula(),
			flood.Rounds, flood.Messages, two.Rounds, two.Messages, tree.Rounds, tree.Messages)
		if two.Rounds != hb.DiameterFormula() {
			log.Fatalf("two-phase broadcast missed the diameter bound on HB(%d,%d)", dims[0], dims[1])
		}
	}
	w.Flush()
	fmt.Println("\ntwo-phase = m rounds of binomial hypercube broadcast, then butterfly")
	fmt.Println("flooding in every sub-butterfly in parallel; always diameter-optimal.")
}
