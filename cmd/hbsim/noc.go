package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/collectives"
	"repro/internal/core"
	faultsim "repro/internal/faults"
	"repro/internal/hyperdebruijn"
	"repro/internal/noc"
	"repro/internal/simnet"
	"repro/internal/wormhole"
)

// nocMode runs the E-NC experiment suite on the event-driven NoC
// engine and, when -out is set, writes BENCH_noc.json — the cross-PR
// artifact recording the engine-vs-oracle flit-throughput ratio and the
// HB vs hyper-deBruijn saturation curves. Every adaptive run must end
// with Deadlocked == false or the mode returns an error (exit 1): the
// escape channel's acyclic dependency order is a theorem, so a dynamic
// deadlock is always an engine bug.

const nocPacketLen = 4

type nocParams struct {
	m, n, cycles, vcs, bufDepth int
	rate                        float64
	seed                        int64
	pattern                     simnet.Pattern
	out                         string
}

type nocPoint struct {
	Rate       float64 `json:"rate"`
	Injected   int     `json:"injected"`
	Delivered  int     `json:"delivered"`
	Dropped    int     `json:"dropped,omitempty"`
	Throughput float64 `json:"throughput"`
	AvgLatency float64 `json:"avg_latency"`
	Escapes    int     `json:"escapes"`
	Deadlocked bool    `json:"deadlocked"`
}

type nocReport struct {
	M         int    `json:"m"`
	N         int    `json:"n"`
	Cycles    int    `json:"cycles"`
	PacketLen int    `json:"packet_len"`
	BufDepth  int    `json:"buf_depth"`
	VCs       int    `json:"vcs"`
	Pattern   string `json:"pattern"`
	Seed      int64  `json:"seed"`

	EngineFlitEventsPerSec float64 `json:"engine_flit_events_per_sec"`
	OracleFlitEventsPerSec float64 `json:"oracle_flit_events_per_sec"`
	SpeedupVsOracle        float64 `json:"speedup_vs_oracle"`

	HB []nocPoint `json:"hb_saturation"`
	HD []nocPoint `json:"hyperdebruijn_saturation"`

	CollectiveQuietDone  int `json:"collective_quiet_done"`
	CollectiveLoadedDone int `json:"collective_loaded_done"`

	Churn nocPoint `json:"churn"`
}

func hbAdaptiveConfig(hb *core.HyperButterfly) *noc.AdaptiveConfig {
	return &noc.AdaptiveConfig{
		Distance:    hb.Distance,
		AppendRoute: hb.AppendRoute,
		Escape:      noc.NewHBEscape(hb),
	}
}

func point(rate float64, res noc.Result) nocPoint {
	return nocPoint{
		Rate: rate, Injected: res.Injected, Delivered: res.Delivered,
		Dropped: res.Dropped, Throughput: res.Throughput,
		AvgLatency: res.AvgLatency, Escapes: res.Escapes,
		Deadlocked: res.Deadlocked,
	}
}

func nocMode(w io.Writer, p nocParams) error {
	hb, err := core.New(p.m, p.n)
	if err != nil {
		return err
	}
	rep := nocReport{
		M: p.m, N: p.n, Cycles: p.cycles, PacketLen: nocPacketLen,
		BufDepth: p.bufDepth, VCs: p.vcs, Pattern: p.pattern.String(), Seed: p.seed,
	}

	// Engine vs oracle on the identical oblivious workload: dateline
	// policy over the library route at the requested (saturating) rate.
	// FlitEvents counts the same buffer movements in both simulators, so
	// events/second is the honest scan-loop-vs-event-queue comparison.
	engine, err := noc.New(hb, noc.Config{
		Cycles: p.cycles, Rate: p.rate, PacketLen: nocPacketLen,
		BufDepth: p.bufDepth, VCs: p.vcs, Pattern: p.pattern, Seed: p.seed,
		MaxRoute: hb.DiameterFormula(), Route: hb.Route, Policy: wormhole.HBDateline(hb),
	})
	if err != nil {
		return err
	}
	t0 := time.Now()
	eres, err := engine.Run()
	if err != nil {
		return err
	}
	rep.EngineFlitEventsPerSec = float64(eres.FlitEvents) / time.Since(t0).Seconds()

	t0 = time.Now()
	ores, err := wormhole.Run(hb, wormhole.Config{
		Cycles: p.cycles, Rate: p.rate, PacketLen: nocPacketLen,
		BufDepth: p.bufDepth, VCs: p.vcs, Seed: p.seed,
		Route: hb.Route, Policy: wormhole.HBDateline(hb),
	})
	if err != nil {
		return err
	}
	rep.OracleFlitEventsPerSec = float64(ores.FlitEvents) / time.Since(t0).Seconds()
	if rep.OracleFlitEventsPerSec > 0 {
		rep.SpeedupVsOracle = rep.EngineFlitEventsPerSec / rep.OracleFlitEventsPerSec
	}
	fmt.Fprintf(w, "engine %.0f flit-events/s vs oracle %.0f flit-events/s on HB(%d,%d) at rate %.2f: %.1fx\n\n",
		rep.EngineFlitEventsPerSec, rep.OracleFlitEventsPerSec, p.m, p.n, p.rate, rep.SpeedupVsOracle)

	// Saturation curves: congestion-aware adaptive routing with the
	// escape channel on HB, BFS-table routing with the tree escape on the
	// hyper-deBruijn comparison network.
	hd := hyperdebruijn.MustNew(p.m, p.n)
	hdAd, err := noc.BFSAdaptive(hd)
	if err != nil {
		return err
	}
	deadlocks := 0
	sweep := func(name string, run func(rate float64) (noc.Result, error)) ([]nocPoint, error) {
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintf(tw, "%s\trate\tinjected\tdelivered\tthroughput\tavg latency\tescapes\tdeadlocked\n", name)
		var pts []nocPoint
		for i := 1; i <= 5; i++ {
			rate := p.rate * float64(i) / 5
			res, err := run(rate)
			if err != nil {
				return nil, err
			}
			if res.Deadlocked {
				deadlocks++
			}
			pts = append(pts, point(rate, res))
			fmt.Fprintf(tw, "\t%.3f\t%d\t%d\t%.3f\t%.2f\t%d\t%v\n",
				rate, res.Injected, res.Delivered, res.Throughput, res.AvgLatency,
				res.Escapes, res.Deadlocked)
		}
		tw.Flush()
		fmt.Fprintln(w)
		return pts, nil
	}
	rep.HB, err = sweep(fmt.Sprintf("HB(%d,%d) adaptive+escape", p.m, p.n), func(rate float64) (noc.Result, error) {
		e, err := noc.New(hb, noc.Config{
			Cycles: p.cycles, Rate: rate, PacketLen: nocPacketLen,
			BufDepth: p.bufDepth, VCs: p.vcs, Pattern: p.pattern, Seed: p.seed,
			MaxRoute: hb.DiameterFormula(), Adaptive: hbAdaptiveConfig(hb),
		})
		if err != nil {
			return noc.Result{}, err
		}
		return e.Run()
	})
	if err != nil {
		return err
	}
	rep.HD, err = sweep(fmt.Sprintf("HD(%d,%d) BFS+tree escape", p.m, p.n), func(rate float64) (noc.Result, error) {
		e, err := noc.New(hd, noc.Config{
			Cycles: p.cycles, Rate: rate, PacketLen: nocPacketLen,
			BufDepth: p.bufDepth, VCs: p.vcs, Pattern: p.pattern, Seed: p.seed,
			MaxRoute: 4 * (p.m + p.n), Adaptive: hdAd,
		})
		if err != nil {
			return noc.Result{}, err
		}
		return e.Run()
	})
	if err != nil {
		return err
	}

	// Collective replay: a structured broadcast on the quiet network,
	// then the three-phase allreduce under saturating background load.
	bcast, err := collectives.BroadcastMsgs(hb, 0)
	if err != nil {
		return err
	}
	quiet, err := noc.New(hb, noc.Config{
		Cycles: p.cycles, Rate: 0, PacketLen: 2, BufDepth: p.bufDepth, VCs: p.vcs,
		MaxRoute: hb.DiameterFormula(), Adaptive: hbAdaptiveConfig(hb), Seed: p.seed,
		Messages: bcast,
	})
	if err != nil {
		return err
	}
	qres, err := quiet.Run()
	if err != nil {
		return err
	}
	rep.CollectiveQuietDone = qres.CollectiveDone

	allr, err := collectives.AllReduceMsgs(hb)
	if err != nil {
		return err
	}
	loaded, err := noc.New(hb, noc.Config{
		Cycles: 4 * p.cycles, Rate: p.rate * 0.4, InjectCycles: 3 * p.cycles,
		PacketLen: 2, BufDepth: p.bufDepth, VCs: p.vcs, Pattern: p.pattern,
		MaxRoute: hb.DiameterFormula(), Adaptive: hbAdaptiveConfig(hb), Seed: p.seed + 1,
		Messages: allr,
	})
	if err != nil {
		return err
	}
	lres, err := loaded.Run()
	if err != nil {
		return err
	}
	if lres.Deadlocked {
		deadlocks++
	}
	rep.CollectiveLoadedDone = lres.CollectiveDone
	fmt.Fprintf(w, "broadcast quiet: done at cycle %d; allreduce under load: done at cycle %d\n\n",
		rep.CollectiveQuietDone, rep.CollectiveLoadedDone)

	// Churn resilience: node and link failures arrive mid-flight; worms
	// crossing a failure are dropped, everything else keeps moving and
	// the escape network keeps the survivors deadlock-free.
	nodeChurn, err := faultsim.RandomChurn(faultsim.ChurnConfig{
		Order: hb.Order(), Cycles: p.cycles / 2, MaxLive: hb.M() + 3,
		Rate: 0.02, MinDwell: 20, MaxDwell: 80, Seed: p.seed,
	})
	if err != nil {
		return err
	}
	linkChurn, err := faultsim.RandomLinkChurn(hb, faultsim.ChurnConfig{
		Order: hb.Order(), Cycles: p.cycles / 2, MaxLive: hb.M() + 3,
		Rate: 0.02, MinDwell: 20, MaxDwell: 80, Seed: p.seed + 2,
	})
	if err != nil {
		return err
	}
	churny, err := noc.New(hb, noc.Config{
		Cycles: p.cycles, Rate: p.rate * 0.4, InjectCycles: p.cycles / 2,
		PacketLen: nocPacketLen, BufDepth: p.bufDepth, VCs: p.vcs, Pattern: p.pattern,
		MaxRoute: hb.DiameterFormula(), Adaptive: hbAdaptiveConfig(hb), Seed: p.seed + 3,
		Schedule: nodeChurn, Links: linkChurn,
	})
	if err != nil {
		return err
	}
	cres, err := churny.Run()
	if err != nil {
		return err
	}
	if cres.Deadlocked {
		deadlocks++
	}
	rep.Churn = point(p.rate*0.4, cres)
	fmt.Fprintf(w, "churn: injected %d delivered %d dropped %d escapes %d deadlocked %v\n",
		cres.Injected, cres.Delivered, cres.Dropped, cres.Escapes, cres.Deadlocked)

	if p.out != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.out, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", p.out)
	}
	if deadlocks > 0 {
		return fmt.Errorf("%d adaptive run(s) deadlocked despite the escape channel", deadlocks)
	}
	return nil
}
