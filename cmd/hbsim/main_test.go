package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUnknownMode(t *testing.T) {
	code, _, stderr := runCmd(t, "-mode", "frobnicate")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown mode "frobnicate"`) || !strings.Contains(stderr, "Usage") {
		t.Errorf("stderr %q", stderr)
	}
}

func TestUnknownFlag(t *testing.T) {
	code, _, _ := runCmd(t, "-mode", "noc", "-frobnicate")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestUnexpectedArgument(t *testing.T) {
	code, _, stderr := runCmd(t, "-mode", "noc", "extra")
	if code != 2 || !strings.Contains(stderr, `unexpected argument "extra"`) {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestBadPattern(t *testing.T) {
	code, _, stderr := runCmd(t, "-mode", "noc", "-pattern", "hotspot")
	if code != 2 || !strings.Contains(stderr, `unknown pattern "hotspot"`) {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestBadDimensions(t *testing.T) {
	code, _, stderr := runCmd(t, "-mode", "noc", "-m", "2", "-n", "2")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (construction error, not usage)", code)
	}
	if strings.Contains(stderr, "Usage") {
		t.Errorf("construction errors should not print usage: %q", stderr)
	}
}

func TestNoCSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_noc.json")
	code, stdout, stderr := runCmd(t,
		"-mode", "noc", "-m", "2", "-n", "3", "-rate", "0.3", "-cycles", "200",
		"-vcs", "4", "-bufdepth", "2", "-out", out)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"flit-events/s", "adaptive+escape", "tree escape", "churn:"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout lacks %q:\n%s", want, stdout)
		}
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"engine_flit_events_per_sec", "speedup_vs_oracle", "hb_saturation", "hyperdebruijn_saturation"} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("artifact lacks %q", key)
		}
	}
}

func TestWormholeSmoke(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-mode", "wormhole", "-m", "2", "-n", "3", "-rate", "0.3", "-cycles", "500")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "dateline") {
		t.Errorf("stdout %q", stdout)
	}
}
