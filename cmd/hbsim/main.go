// Command hbsim runs the dynamic experiments: traffic simulation
// (E-S1), fault-tolerant routing sweeps (E-R10) and broadcast
// comparison (E-B1).
//
//	hbsim -mode traffic -m 2 -n 4 -rate 0.05 -cycles 2000
//	    uniform/permutation traffic on HB vs HD vs H vs B at matched size
//	hbsim -mode faults -m 2 -n 4 -trials 200
//	    random fault sweep f = 1..m+3: delivery rate and stretch
//	hbsim -mode broadcast -m 2 -n 4
//	    flooding vs two-phase vs spanning-tree broadcast
//	hbsim -mode election -m 2 -n 4
//	    leader election: flood-max vs tree protocol (E-LE)
//	hbsim -mode faultdiam -m 2 -n 3 -trials 50
//	    exact diameter growth under random faults (E-FD)
//	hbsim -mode wormhole -m 2 -n 3 -rate 0.3 -cycles 3000
//	    flit-level wormhole: single VC deadlocks, dateline survives (E-W1)
//	hbsim -mode chaos -m 2 -n 3 -rate 0.05 -cycles 800
//	    dynamic fault injection: churn + adversarial min-cut schedules
//	    with in-flight rerouting; exits 1 on any Remark-10 violation (E-CH)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/broadcast"
	"repro/internal/butterfly"
	"repro/internal/core"
	"repro/internal/election"
	"repro/internal/faultroute"
	faultsim "repro/internal/faults"
	"repro/internal/hypercube"
	"repro/internal/hyperdebruijn"
	"repro/internal/simnet"
	"repro/internal/wormhole"
)

func main() {
	mode := flag.String("mode", "traffic", "traffic | faults | broadcast | election | faultdiam | wormhole | chaos")
	m := flag.Int("m", 2, "hypercube dimension")
	n := flag.Int("n", 4, "butterfly dimension")
	rate := flag.Float64("rate", 0.05, "injection rate per node per cycle")
	cycles := flag.Int("cycles", 2000, "simulated cycles")
	trials := flag.Int("trials", 200, "trials per fault count")
	seed := flag.Int64("seed", 1, "rng seed")
	flag.Parse()

	switch *mode {
	case "traffic":
		traffic(*m, *n, *rate, *cycles, *seed)
	case "faults":
		faults(*m, *n, *trials, *seed)
	case "broadcast":
		bcast(*m, *n)
	case "election":
		elect(*m, *n, *seed)
	case "faultdiam":
		faultDiam(*m, *n, *trials, *seed)
	case "wormhole":
		worm(*m, *n, *rate, *cycles, *seed)
	case "chaos":
		chaos(*m, *n, *rate, *cycles, *seed)
	default:
		fmt.Fprintf(os.Stderr, "hbsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// elect compares the two leader-election protocols (E-LE).
func elect(m, n int, seed int64) {
	hb := core.MustNew(m, n)
	rng := rand.New(rand.NewSource(seed))
	ids := make([]int64, hb.Order())
	for v, p := range rng.Perm(hb.Order()) {
		ids[v] = int64(p)
	}
	flood, err := election.FloodMax(hb, ids)
	fail(err)
	tree, err := election.TreeElect(hb, ids, hb.Identity())
	fail(err)
	if flood.Leader != tree.Leader {
		fail(fmt.Errorf("protocols disagree: %d vs %d", flood.Leader, tree.Leader))
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "protocol\trounds\tmessages")
	fmt.Fprintf(w, "flood-max\t%d\t%d\n", flood.Rounds, flood.Messages)
	fmt.Fprintf(w, "tree (convergecast+broadcast)\t%d\t%d\n", tree.Rounds, tree.Messages)
	w.Flush()
	fmt.Printf("\nelected leader: %s (id %d) on HB(%d,%d), diameter %d\n",
		hb.VertexLabel(flood.Leader), ids[flood.Leader], m, n, hb.DiameterFormula())
}

// faultDiam measures the exact diameter growth under random fault sets
// of each size up to m+3 (E-FD).
func faultDiam(m, n, trials int, seed int64) {
	hb := core.MustNew(m, n)
	if hb.Order() > 4096 {
		fail(fmt.Errorf("faultdiam needs order <= 4096 (HB(%d,%d) has %d nodes)", m, n, hb.Order()))
	}
	rng := rand.New(rand.NewSource(seed))
	base := hb.DiameterFormula()
	fmt.Printf("fault diameter of HB(%d,%d) (fault-free diameter %d), %d random trials per count:\n",
		m, n, base, trials)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "faults\tworst fault diameter\tgrowth")
	for f := 1; f <= hb.M()+3; f++ {
		worst := 0
		for trial := 0; trial < trials; trial++ {
			fd, err := faultroute.FaultDiameter(hb, rng.Perm(hb.Order())[:f])
			fail(err)
			if fd > worst {
				worst = fd
			}
		}
		fmt.Fprintf(w, "%d\t%d\t+%d\n", f, worst, worst-base)
	}
	w.Flush()
}

// worm runs the flit-level wormhole simulator (E-W1): single virtual
// channel versus the dateline discipline at the same load.
func worm(m, n int, rate float64, cycles int, seed int64) {
	hb := core.MustNew(m, n)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tVCs\tdeadlocked\tinjected\tdelivered\tavg latency")
	runOne := func(name string, vcs int, policy wormhole.VCPolicy) {
		res, err := wormhole.Run(hb, wormhole.Config{
			Cycles: cycles, Rate: rate, PacketLen: 4, BufDepth: 1, VCs: vcs,
			Policy: policy, Route: hb.Route, Seed: seed,
		})
		fail(err)
		dead := "no"
		if res.Deadlocked {
			dead = fmt.Sprintf("yes (cycle %d)", res.DeadCycle)
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%d\t%.2f\n",
			name, vcs, dead, res.Injected, res.Delivered, res.AvgLatency)
	}
	runOne("single VC", 1, wormhole.SingleVC)
	runOne("dateline", 2, wormhole.HBDateline(hb))
	w.Flush()
	fmt.Printf("\nwormhole switching on HB(%d,%d): 4-flit worms, 1-flit buffers per VC\n", m, n)
}

// chaos runs the dynamic fault-injection experiment (E-CH): seeded
// schedules fail and recover nodes mid-run while the incremental fault
// router re-paths in-flight packets. Within the m+3 bound every
// deliverable packet must arrive — Dropped counts only the unavoidable
// losses (destination down, packet queued at the failing node) — and no
// reroute may fail while the live fault count is within the guarantee.
// Any violation exits nonzero, so CI can gate on this mode directly.
func chaos(m, n int, rate float64, cycles int, seed int64) {
	hb := core.MustNew(m, n)
	inject := cycles / 2 // second half drains
	bound := hb.M() + 3

	churn, err := faultsim.RandomChurn(faultsim.ChurnConfig{
		Order: hb.Order(), Cycles: inject, MaxLive: bound,
		Rate: 0.1, MinDwell: 20, MaxDwell: 80, Seed: seed,
	})
	fail(err)
	// Adversarial: repeatedly fail m+3 of one node's m+4 neighbors — the
	// worst placement that still respects the guarantee.
	pivot := hb.Order() / 2
	adv, err := faultsim.AdversarialAdjacent(hb, pivot, bound, 5, 3, 60)
	fail(err)

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "schedule\tmax live\tinjected\tdelivered\tdropped\tskipped\treroutes\tin flight\tviolations\tdelivered frac")
	violations, stuck := 0, 0
	runOne := func(name string, sch faultsim.Schedule) {
		r, err := faultroute.New(hb, nil)
		fail(err)
		rr := &simnet.FaultRerouter{R: r}
		res, err := simnet.Run(simnet.Routed{Graph: hb, Route: hb.Route}, simnet.Config{
			Cycles: cycles, InjectCycles: inject, Rate: rate,
			Pattern: simnet.Uniform, Seed: seed, Schedule: sch, Rerouter: rr,
		})
		fail(err)
		deliverable := res.Injected - res.Dropped
		frac := 1.0
		if deliverable > 0 {
			frac = float64(res.Delivered) / float64(deliverable)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f\n",
			name, sch.MaxLive(hb.Order()), res.Injected, res.Delivered, res.Dropped,
			res.Skipped, res.Reroutes, res.InFlight, rr.Violations, frac)
		violations += rr.Violations
		stuck += res.InFlight
	}
	runOne("random churn", churn)
	runOne("adversarial min-cut", adv)
	w.Flush()
	fmt.Printf("\ndynamic fault injection on HB(%d,%d), guarantee bound m+3 = %d live faults\n", m, n, bound)
	if violations > 0 {
		fail(fmt.Errorf("%d reroute failures within the m+3 guarantee (Remark 10 violated)", violations))
	}
	if stuck > 0 {
		fail(fmt.Errorf("%d packets undelivered after the drain window", stuck))
	}
	fmt.Println("gate: every deliverable packet arrived; zero reroute failures within the guarantee")
}

// traffic compares HB(m,n) with HD(m',n') and the classical networks at
// (approximately) matched node counts under two traffic patterns.
func traffic(m, n int, rate float64, cycles int, seed int64) {
	hb := core.MustNew(m, n)
	hd := hyperdebruijn.MustNew(m, n)
	cube := hypercube.MustNew(m + n)
	bf := butterfly.MustNew(m + n)

	type entry struct {
		name string
		top  simnet.Topology
	}
	entries := []entry{
		{fmt.Sprintf("HB(%d,%d) [%d nodes]", m, n, hb.Order()), simnet.Routed{Graph: hb, Route: hb.Route}},
		{fmt.Sprintf("HD(%d,%d) [%d nodes]", m, n, hd.Order()), simnet.Routed{Graph: hd, Route: hd.Route}},
		{fmt.Sprintf("H(%d)    [%d nodes]", m+n, cube.Order()), simnet.Routed{Graph: cube, Route: cube.Route}},
		{fmt.Sprintf("B(%d)    [%d nodes]", m+n, bf.Order()), simnet.Routed{Graph: bf, Route: bf.Route}},
	}
	adaptive := simnet.MinimalAdaptive(hb, hb.Distance)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "pattern\tnetwork\tinjected\tdelivered\tavg latency\tmax latency\tavg hops\tthroughput\tmax queue")
	for _, pat := range []simnet.Pattern{simnet.Uniform, simnet.Permutation} {
		for _, e := range entries {
			res, err := simnet.Run(e.top, simnet.Config{
				Cycles: cycles, Rate: rate, Pattern: pat, Seed: seed,
			})
			fail(err)
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.2f\t%d\t%.2f\t%.3f\t%d\n",
				pat, e.name, res.Injected, res.Delivered, res.AvgLatency,
				res.MaxLatency, res.AvgHops, res.Throughput, res.MaxQueue)
		}
		res, err := simnet.RunAdaptive(adaptive, simnet.Config{
			Cycles: cycles, Rate: rate, Pattern: pat, Seed: seed,
		})
		fail(err)
		fmt.Fprintf(w, "%s\tHB(%d,%d) adaptive\t%d\t%d\t%.2f\t%d\t%.2f\t%.3f\t%d\n",
			pat, m, n, res.Injected, res.Delivered, res.AvgLatency,
			res.MaxLatency, res.AvgHops, res.Throughput, res.MaxQueue)
	}
	w.Flush()
}

// faults sweeps the fault count from 1 to m+4: within the guarantee
// (<= m+3) the delivery rate must be 1.0; at m+4 targeted placements can
// disconnect the network.
func faults(m, n, trials int, seed int64) {
	hb := core.MustNew(m, n)
	rng := rand.New(rand.NewSource(seed))
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "faults\ttrials\tdelivered\tconnected\tavg stretch\tstrategy optimal/greedy/disjoint/BFS")
	for f := 1; f <= hb.M()+4; f++ {
		delivered, connected := 0, 0
		var stretchSum float64
		var r *faultroute.Router
		stats := [4]int{}
		for trial := 0; trial < trials; trial++ {
			u, v := rng.Intn(hb.Order()), rng.Intn(hb.Order())
			if u == v {
				v = (v + 1) % hb.Order()
			}
			faults := make([]int, 0, f)
			used := map[int]bool{u: true, v: true}
			for len(faults) < f {
				x := rng.Intn(hb.Order())
				if !used[x] {
					used[x] = true
					faults = append(faults, x)
				}
			}
			var err error
			r, err = faultroute.New(hb, faults)
			fail(err)
			if r.Connected() {
				connected++
			}
			p, err := r.Route(u, v)
			if err != nil {
				continue
			}
			delivered++
			stretchSum += float64(len(p)-1) / float64(max(1, hb.Distance(u, v)))
			stats[0] += r.Stats.Optimal
			stats[1] += r.Stats.Greedy
			stats[2] += r.Stats.Disjoint
			stats[3] += r.Stats.BFS
		}
		avgStretch := 0.0
		if delivered > 0 {
			avgStretch = stretchSum / float64(delivered)
		}
		note := ""
		if f <= hb.M()+3 && delivered != trials {
			note = "  <- GUARANTEE VIOLATED"
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.3f\t%d/%d/%d/%d%s\n",
			f, trials, delivered, connected, avgStretch, stats[0], stats[1], stats[2], stats[3], note)
	}
	w.Flush()
	fmt.Printf("\nguarantee bound: m+3 = %d faults (Theorem 5 / Remark 10)\n", hb.M()+3)
}

func bcast(m, n int) {
	hb := core.MustNew(m, n)
	flood := broadcast.Flood(hb, hb.Identity())
	tree := broadcast.SpanningTree(hb, hb.Identity())
	two, _, err := broadcast.TwoPhase(hb, hb.Identity())
	fail(err)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\trounds\tmessages\treached")
	fmt.Fprintf(w, "flooding\t%d\t%d\t%d\n", flood.Rounds, flood.Messages, flood.Reached)
	fmt.Fprintf(w, "two-phase (structured)\t%d\t%d\t%d\n", two.Rounds, two.Messages, two.Reached)
	fmt.Fprintf(w, "spanning tree\t%d\t%d\t%d\n", tree.Rounds, tree.Messages, tree.Reached)
	w.Flush()
	fmt.Printf("\nlower bound (diameter of HB(%d,%d)): %d rounds\n", m, n, hb.DiameterFormula())
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbsim:", err)
		os.Exit(1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
