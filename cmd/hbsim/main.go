// Command hbsim runs the dynamic experiments: traffic simulation
// (E-S1), fault-tolerant routing sweeps (E-R10) and broadcast
// comparison (E-B1).
//
//	hbsim -mode traffic -m 2 -n 4 -rate 0.05 -cycles 2000
//	    uniform/permutation traffic on HB vs HD vs H vs B at matched size
//	hbsim -mode faults -m 2 -n 4 -trials 200
//	    random fault sweep f = 1..m+3: delivery rate and stretch
//	hbsim -mode broadcast -m 2 -n 4
//	    flooding vs two-phase vs spanning-tree broadcast
//	hbsim -mode election -m 2 -n 4
//	    leader election: flood-max vs tree protocol (E-LE)
//	hbsim -mode faultdiam -m 2 -n 3 -trials 50
//	    exact diameter growth under random faults (E-FD)
//	hbsim -mode wormhole -m 2 -n 3 -rate 0.3 -cycles 3000
//	    flit-level wormhole: single VC deadlocks, dateline survives (E-W1)
//	hbsim -mode chaos -m 2 -n 3 -rate 0.05 -cycles 800
//	    dynamic fault injection: churn + adversarial min-cut schedules
//	    with in-flight rerouting; exits 1 on any Remark-10 violation (E-CH)
//	hbsim -mode noc -m 3 -n 3 -rate 0.5 -cycles 2000 -vcs 4 -bufdepth 2 -out BENCH_noc.json
//	    event-driven NoC engine (E-NC): engine-vs-oracle flit throughput,
//	    HB vs hyper-deBruijn saturation curves with escape-channel
//	    adaptive routing, collectives under load, churn resilience;
//	    exits 1 if any adaptive run deadlocks
//
// Exit status: 0 on success, 1 on a simulation or gate failure, 2 on a
// usage error (unknown mode or pattern, malformed flags).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/broadcast"
	"repro/internal/butterfly"
	"repro/internal/core"
	"repro/internal/election"
	"repro/internal/faultroute"
	faultsim "repro/internal/faults"
	"repro/internal/hypercube"
	"repro/internal/hyperdebruijn"
	"repro/internal/simnet"
	"repro/internal/wormhole"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// usageError marks bad invocations (exit 2); every other error exits 1.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hbsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "traffic", "traffic | faults | broadcast | election | faultdiam | wormhole | chaos | noc")
	m := fs.Int("m", 2, "hypercube dimension")
	n := fs.Int("n", 4, "butterfly dimension")
	rate := fs.Float64("rate", 0.05, "injection rate per node per cycle")
	cycles := fs.Int("cycles", 2000, "simulated cycles")
	trials := fs.Int("trials", 200, "trials per fault count")
	seed := fs.Int64("seed", 1, "rng seed")
	vcs := fs.Int("vcs", 4, "virtual channels per link (noc)")
	bufdepth := fs.Int("bufdepth", 2, "flit buffer depth per (link, VC) (noc)")
	pattern := fs.String("pattern", "uniform", "noc traffic pattern: uniform | permutation")
	out := fs.String("out", "", "write the noc benchmark artifact (JSON) to this path")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var err error
	if fs.NArg() > 0 {
		err = usagef("unexpected argument %q", fs.Arg(0))
	} else {
		switch *mode {
		case "traffic":
			err = traffic(stdout, *m, *n, *rate, *cycles, *seed)
		case "faults":
			err = faults(stdout, *m, *n, *trials, *seed)
		case "broadcast":
			err = bcast(stdout, *m, *n)
		case "election":
			err = elect(stdout, *m, *n, *seed)
		case "faultdiam":
			err = faultDiam(stdout, *m, *n, *trials, *seed)
		case "wormhole":
			err = worm(stdout, *m, *n, *rate, *cycles, *seed)
		case "chaos":
			err = chaos(stdout, *m, *n, *rate, *cycles, *seed)
		case "noc":
			var pat simnet.Pattern
			pat, err = parsePattern(*pattern)
			if err == nil {
				err = nocMode(stdout, nocParams{
					m: *m, n: *n, rate: *rate, cycles: *cycles, seed: *seed,
					vcs: *vcs, bufDepth: *bufdepth, pattern: pat, out: *out,
				})
			}
		default:
			err = usagef("unknown mode %q", *mode)
		}
	}
	if err == nil {
		return 0
	}
	fmt.Fprintln(stderr, "hbsim:", err)
	if _, ok := err.(*usageError); ok {
		fs.Usage()
		return 2
	}
	return 1
}

func parsePattern(s string) (simnet.Pattern, error) {
	switch s {
	case "uniform":
		return simnet.Uniform, nil
	case "permutation":
		return simnet.Permutation, nil
	}
	return 0, usagef("unknown pattern %q (uniform | permutation)", s)
}

// elect compares the two leader-election protocols (E-LE).
func elect(w io.Writer, m, n int, seed int64) error {
	hb, err := core.New(m, n)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	ids := make([]int64, hb.Order())
	for v, p := range rng.Perm(hb.Order()) {
		ids[v] = int64(p)
	}
	flood, err := election.FloodMax(hb, ids)
	if err != nil {
		return err
	}
	tree, err := election.TreeElect(hb, ids, hb.Identity())
	if err != nil {
		return err
	}
	if flood.Leader != tree.Leader {
		return fmt.Errorf("protocols disagree: %d vs %d", flood.Leader, tree.Leader)
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "protocol\trounds\tmessages")
	fmt.Fprintf(tw, "flood-max\t%d\t%d\n", flood.Rounds, flood.Messages)
	fmt.Fprintf(tw, "tree (convergecast+broadcast)\t%d\t%d\n", tree.Rounds, tree.Messages)
	tw.Flush()
	fmt.Fprintf(w, "\nelected leader: %s (id %d) on HB(%d,%d), diameter %d\n",
		hb.VertexLabel(flood.Leader), ids[flood.Leader], m, n, hb.DiameterFormula())
	return nil
}

// faultDiam measures the exact diameter growth under random fault sets
// of each size up to m+3 (E-FD).
func faultDiam(w io.Writer, m, n, trials int, seed int64) error {
	hb, err := core.New(m, n)
	if err != nil {
		return err
	}
	if hb.Order() > 4096 {
		return fmt.Errorf("faultdiam needs order <= 4096 (HB(%d,%d) has %d nodes)", m, n, hb.Order())
	}
	rng := rand.New(rand.NewSource(seed))
	base := hb.DiameterFormula()
	fmt.Fprintf(w, "fault diameter of HB(%d,%d) (fault-free diameter %d), %d random trials per count:\n",
		m, n, base, trials)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "faults\tworst fault diameter\tgrowth")
	for f := 1; f <= hb.M()+3; f++ {
		worst := 0
		for trial := 0; trial < trials; trial++ {
			fd, err := faultroute.FaultDiameter(hb, rng.Perm(hb.Order())[:f])
			if err != nil {
				return err
			}
			if fd > worst {
				worst = fd
			}
		}
		fmt.Fprintf(tw, "%d\t%d\t+%d\n", f, worst, worst-base)
	}
	tw.Flush()
	return nil
}

// worm runs the flit-level wormhole simulator (E-W1): single virtual
// channel versus the dateline discipline at the same load.
func worm(w io.Writer, m, n int, rate float64, cycles int, seed int64) error {
	hb, err := core.New(m, n)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tVCs\tdeadlocked\tinjected\tdelivered\tavg latency")
	runOne := func(name string, vcs int, policy wormhole.VCPolicy) error {
		res, err := wormhole.Run(hb, wormhole.Config{
			Cycles: cycles, Rate: rate, PacketLen: 4, BufDepth: 1, VCs: vcs,
			Policy: policy, Route: hb.Route, Seed: seed,
		})
		if err != nil {
			return err
		}
		dead := "no"
		if res.Deadlocked {
			dead = fmt.Sprintf("yes (cycle %d)", res.DeadCycle)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%d\t%.2f\n",
			name, vcs, dead, res.Injected, res.Delivered, res.AvgLatency)
		return nil
	}
	if err := runOne("single VC", 1, wormhole.SingleVC); err != nil {
		return err
	}
	if err := runOne("dateline", 2, wormhole.HBDateline(hb)); err != nil {
		return err
	}
	tw.Flush()
	fmt.Fprintf(w, "\nwormhole switching on HB(%d,%d): 4-flit worms, 1-flit buffers per VC\n", m, n)
	return nil
}

// chaos runs the dynamic fault-injection experiment (E-CH): seeded
// schedules fail and recover nodes mid-run while the incremental fault
// router re-paths in-flight packets. Within the m+3 bound every
// deliverable packet must arrive — Dropped counts only the unavoidable
// losses (destination down, packet queued at the failing node) — and no
// reroute may fail while the live fault count is within the guarantee.
// Any violation exits nonzero, so CI can gate on this mode directly.
func chaos(w io.Writer, m, n int, rate float64, cycles int, seed int64) error {
	hb, err := core.New(m, n)
	if err != nil {
		return err
	}
	inject := cycles / 2 // second half drains
	bound := hb.M() + 3

	churn, err := faultsim.RandomChurn(faultsim.ChurnConfig{
		Order: hb.Order(), Cycles: inject, MaxLive: bound,
		Rate: 0.1, MinDwell: 20, MaxDwell: 80, Seed: seed,
	})
	if err != nil {
		return err
	}
	// Adversarial: repeatedly fail m+3 of one node's m+4 neighbors — the
	// worst placement that still respects the guarantee.
	pivot := hb.Order() / 2
	adv, err := faultsim.AdversarialAdjacent(hb, pivot, bound, 5, 3, 60)
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "schedule\tmax live\tinjected\tdelivered\tdropped\tskipped\treroutes\tin flight\tviolations\tdelivered frac")
	violations, stuck := 0, 0
	runOne := func(name string, sch faultsim.Schedule) error {
		r, err := faultroute.New(hb, nil)
		if err != nil {
			return err
		}
		rr := &simnet.FaultRerouter{R: r}
		res, err := simnet.Run(simnet.Routed{Graph: hb, Route: hb.Route}, simnet.Config{
			Cycles: cycles, InjectCycles: inject, Rate: rate,
			Pattern: simnet.Uniform, Seed: seed, Schedule: sch, Rerouter: rr,
		})
		if err != nil {
			return err
		}
		deliverable := res.Injected - res.Dropped
		frac := 1.0
		if deliverable > 0 {
			frac = float64(res.Delivered) / float64(deliverable)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f\n",
			name, sch.MaxLive(hb.Order()), res.Injected, res.Delivered, res.Dropped,
			res.Skipped, res.Reroutes, res.InFlight, rr.Violations, frac)
		violations += rr.Violations
		stuck += res.InFlight
		return nil
	}
	if err := runOne("random churn", churn); err != nil {
		return err
	}
	if err := runOne("adversarial min-cut", adv); err != nil {
		return err
	}
	tw.Flush()
	fmt.Fprintf(w, "\ndynamic fault injection on HB(%d,%d), guarantee bound m+3 = %d live faults\n", m, n, bound)
	if violations > 0 {
		return fmt.Errorf("%d reroute failures within the m+3 guarantee (Remark 10 violated)", violations)
	}
	if stuck > 0 {
		return fmt.Errorf("%d packets undelivered after the drain window", stuck)
	}
	fmt.Fprintln(w, "gate: every deliverable packet arrived; zero reroute failures within the guarantee")
	return nil
}

// traffic compares HB(m,n) with HD(m',n') and the classical networks at
// (approximately) matched node counts under two traffic patterns.
func traffic(w io.Writer, m, n int, rate float64, cycles int, seed int64) error {
	hb, err := core.New(m, n)
	if err != nil {
		return err
	}
	hd := hyperdebruijn.MustNew(m, n)
	cube := hypercube.MustNew(m + n)
	bf := butterfly.MustNew(m + n)

	type entry struct {
		name string
		top  simnet.Topology
	}
	entries := []entry{
		{fmt.Sprintf("HB(%d,%d) [%d nodes]", m, n, hb.Order()), simnet.Routed{Graph: hb, Route: hb.Route}},
		{fmt.Sprintf("HD(%d,%d) [%d nodes]", m, n, hd.Order()), simnet.Routed{Graph: hd, Route: hd.Route}},
		{fmt.Sprintf("H(%d)    [%d nodes]", m+n, cube.Order()), simnet.Routed{Graph: cube, Route: cube.Route}},
		{fmt.Sprintf("B(%d)    [%d nodes]", m+n, bf.Order()), simnet.Routed{Graph: bf, Route: bf.Route}},
	}
	adaptive := simnet.MinimalAdaptive(hb, hb.Distance)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "pattern\tnetwork\tinjected\tdelivered\tavg latency\tmax latency\tavg hops\tthroughput\tmax queue")
	for _, pat := range []simnet.Pattern{simnet.Uniform, simnet.Permutation} {
		for _, e := range entries {
			res, err := simnet.Run(e.top, simnet.Config{
				Cycles: cycles, Rate: rate, Pattern: pat, Seed: seed,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.2f\t%d\t%.2f\t%.3f\t%d\n",
				pat, e.name, res.Injected, res.Delivered, res.AvgLatency,
				res.MaxLatency, res.AvgHops, res.Throughput, res.MaxQueue)
		}
		res, err := simnet.RunAdaptive(adaptive, simnet.Config{
			Cycles: cycles, Rate: rate, Pattern: pat, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\tHB(%d,%d) adaptive\t%d\t%d\t%.2f\t%d\t%.2f\t%.3f\t%d\n",
			pat, m, n, res.Injected, res.Delivered, res.AvgLatency,
			res.MaxLatency, res.AvgHops, res.Throughput, res.MaxQueue)
	}
	tw.Flush()
	return nil
}

// faults sweeps the fault count from 1 to m+4: within the guarantee
// (<= m+3) the delivery rate must be 1.0; at m+4 targeted placements can
// disconnect the network.
func faults(w io.Writer, m, n, trials int, seed int64) error {
	hb, err := core.New(m, n)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "faults\ttrials\tdelivered\tconnected\tavg stretch\tstrategy optimal/greedy/disjoint/BFS")
	for f := 1; f <= hb.M()+4; f++ {
		delivered, connected := 0, 0
		var stretchSum float64
		var r *faultroute.Router
		stats := [4]int{}
		for trial := 0; trial < trials; trial++ {
			u, v := rng.Intn(hb.Order()), rng.Intn(hb.Order())
			if u == v {
				v = (v + 1) % hb.Order()
			}
			faults := make([]int, 0, f)
			used := map[int]bool{u: true, v: true}
			for len(faults) < f {
				x := rng.Intn(hb.Order())
				if !used[x] {
					used[x] = true
					faults = append(faults, x)
				}
			}
			r, err = faultroute.New(hb, faults)
			if err != nil {
				return err
			}
			if r.Connected() {
				connected++
			}
			p, err := r.Route(u, v)
			if err != nil {
				continue
			}
			delivered++
			stretchSum += float64(len(p)-1) / float64(max(1, hb.Distance(u, v)))
			stats[0] += r.Stats.Optimal
			stats[1] += r.Stats.Greedy
			stats[2] += r.Stats.Disjoint
			stats[3] += r.Stats.BFS
		}
		avgStretch := 0.0
		if delivered > 0 {
			avgStretch = stretchSum / float64(delivered)
		}
		note := ""
		if f <= hb.M()+3 && delivered != trials {
			note = "  <- GUARANTEE VIOLATED"
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.3f\t%d/%d/%d/%d%s\n",
			f, trials, delivered, connected, avgStretch, stats[0], stats[1], stats[2], stats[3], note)
	}
	tw.Flush()
	fmt.Fprintf(w, "\nguarantee bound: m+3 = %d faults (Theorem 5 / Remark 10)\n", hb.M()+3)
	return nil
}

func bcast(w io.Writer, m, n int) error {
	hb, err := core.New(m, n)
	if err != nil {
		return err
	}
	flood := broadcast.Flood(hb, hb.Identity())
	tree := broadcast.SpanningTree(hb, hb.Identity())
	two, _, err := broadcast.TwoPhase(hb, hb.Identity())
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\trounds\tmessages\treached")
	fmt.Fprintf(tw, "flooding\t%d\t%d\t%d\n", flood.Rounds, flood.Messages, flood.Reached)
	fmt.Fprintf(tw, "two-phase (structured)\t%d\t%d\t%d\n", two.Rounds, two.Messages, two.Reached)
	fmt.Fprintf(tw, "spanning tree\t%d\t%d\t%d\n", tree.Rounds, tree.Messages, tree.Reached)
	tw.Flush()
	fmt.Fprintf(w, "\nlower bound (diameter of HB(%d,%d)): %d rounds\n", m, n, hb.DiameterFormula())
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
