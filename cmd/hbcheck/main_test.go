package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/conformance"
)

// TestAcceptancePoint is the CLI acceptance gate: hbcheck -m 2 -n 3
// -json must report every registered invariant passing for all of H, B,
// D, HD and HB and exit 0.
func TestAcceptancePoint(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-m", "2", "-n", "3", "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var rep conformance.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Fail != 0 {
		t.Fatalf("fail=%d: %s", rep.Fail, out.String())
	}
	want := map[string]bool{"H(2)": false, "B(3)": false, "D(3)": false, "HD(2,3)": false, "HB(2,3)": false}
	passes := map[string]int{}
	for _, res := range rep.Results {
		if _, ok := want[res.Target]; ok {
			want[res.Target] = true
			if res.Status == conformance.StatusPass {
				passes[res.Target]++
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("target %s missing from report", name)
		}
		if passes[name] == 0 {
			t.Errorf("target %s has no passing invariants", name)
		}
	}
}

// TestHumanOutput: default (non-JSON) mode summarises each target.
func TestHumanOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-m", "1", "-n", "3"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"HB(1,3)", "fail=0", "total:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("human output missing %q:\n%s", want, out.String())
		}
	}
}

// TestCanonicalStableAcrossWorkers: -canonical output is byte-identical
// for different -workers values, the property CI diffs depend on.
func TestCanonicalStableAcrossWorkers(t *testing.T) {
	var a, b, errOut bytes.Buffer
	if code := run([]string{"-m", "1", "-n", "3", "-canonical", "-workers", "1"}, &a, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if code := run([]string{"-m", "1", "-n", "3", "-canonical", "-workers", "4"}, &b, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if a.String() != b.String() {
		t.Fatalf("canonical output differs:\n--- workers=1\n%s--- workers=4\n%s", a.String(), b.String())
	}
}

// TestConnSweep: -connsweep prints one timed kappa/lambda row per
// target with values matching the claimed formulas, and exits 0.
func TestConnSweep(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-m", "1..2", "-n", "3", "-connsweep"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"H(2)", "B(3)", "D(3)", "HD(2,3)", "HB(2,3)", "kappa=6", "lambda=6"} {
		if !strings.Contains(got, want) {
			t.Errorf("connsweep output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "MISMATCH") {
		t.Errorf("connsweep reports a mismatch:\n%s", got)
	}
}

// TestConnSweepDetectsMismatch: a target claiming the wrong kappa must
// drive the sweep to a nonzero exit.
func TestConnSweepDetectsMismatch(t *testing.T) {
	target := conformance.HyperButterfly(1, 3)
	target.Connectivity = 99
	var out, errOut bytes.Buffer
	if code := runConnSweep([]conformance.Target{target}, 0, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "KAPPA MISMATCH") {
		t.Errorf("mismatch not flagged:\n%s", out.String())
	}
}

// TestBadFlags: malformed ranges and empty sweeps exit 2 with a
// diagnostic, not 0 or a panic.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-m", "x", "-n", "3"},
		{"-m", "3..1", "-n", "3"},
		{"-m", "2", "-n", ""},
		{"-m", "0", "-n", "1"}, // valid ints but no family accepts them
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr %q)", args, code, errOut.String())
		}
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi int
		ok     bool
	}{
		{"2", 2, 2, true},
		{"1..3", 1, 3, true},
		{" 1 .. 3 ", 1, 3, true},
		{"3..1", 0, 0, false},
		{"", 0, 0, false},
		{"a..b", 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, err := parseRange(c.in)
		if (err == nil) != c.ok || (c.ok && (lo != c.lo || hi != c.hi)) {
			t.Errorf("parseRange(%q) = (%d,%d,%v), want (%d,%d,ok=%v)", c.in, lo, hi, err, c.lo, c.hi, c.ok)
		}
	}
}
