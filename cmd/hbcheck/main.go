// Command hbcheck runs the conformance suite — the machine-checkable
// form of every paper claim — over a sweep of (m,n) dimensions and all
// topology families, in parallel, and reports pass/fail/skip per
// (target, invariant) cell.
//
//	hbcheck -m 2 -n 3                  one point: H_2, B_3, D_3, HD(2,3), HB(2,3)
//	hbcheck -m 1..3 -n 3..5            full sweep of the ranges
//	hbcheck -m 2 -n 3 -json            machine-readable report (CI gate)
//	hbcheck -m 2 -n 3 -workers 8 -v    explicit parallelism, per-cell detail
//	hbcheck -m 3 -n 4 -connsweep       timed exact kappa/lambda per target (Menger engine)
//
// -connsweep replaces the invariant matrix with a timed connectivity
// sweep: exact vertex and edge connectivity of every target via the
// parallel Menger engine, checked against the claimed formulas. Combine
// with -cpuprofile to profile the flow kernels under real load.
//
// Exit status is 0 iff every executed invariant passed; skipped cells
// (quantities a family does not claim, or instances over the size caps)
// do not fail the run but are always listed in the report. CI consumes
// the -json form: the `fail` counter gates the build and `results` is
// the per-cell breakdown (see EXPERIMENTS.md, E-CF).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/conformance"
	"repro/internal/graph"
	"repro/internal/profiling"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hbcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mFlag := fs.String("m", "2", "hypercube dimension or range, e.g. 2 or 1..3")
	nFlag := fs.String("n", "3", "butterfly/deBruijn dimension or range, e.g. 3 or 3..5")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "emit the full JSON report")
	verbose := fs.Bool("v", false, "list every invariant cell, not just failures")
	pairs := fs.Int("pairs", 0, "sampled pairs per pairwise invariant (0 = default 48)")
	maxConn := fs.Int("maxconn", 0, "max order for the max-flow connectivity check (0 = default 2048)")
	canonical := fs.Bool("canonical", false, "emit the timing-free canonical report (diffable across runs)")
	connsweep := fs.Bool("connsweep", false, "run a timed exact connectivity sweep instead of the invariant matrix")
	implicit := fs.Bool("implicit", false, "run the exhaustive implicit-vs-dense differential sweep instead of the invariant matrix")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := fs.String("memprofile", "", "write a GC-settled heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProfile, err := profiling.Start(*cpuprofile)
	if err != nil {
		fmt.Fprintf(stderr, "hbcheck: %v\n", err)
		return 2
	}
	defer func() {
		stopProfile()
		if err := profiling.WriteHeap(*memprofile); err != nil {
			fmt.Fprintf(stderr, "hbcheck: %v\n", err)
		}
	}()
	mLo, mHi, err := parseRange(*mFlag)
	if err != nil {
		fmt.Fprintf(stderr, "hbcheck: -m: %v\n", err)
		return 2
	}
	nLo, nHi, err := parseRange(*nFlag)
	if err != nil {
		fmt.Fprintf(stderr, "hbcheck: -n: %v\n", err)
		return 2
	}
	targets, err := conformance.Sweep(mLo, mHi, nLo, nHi)
	if err != nil {
		fmt.Fprintf(stderr, "hbcheck: %v\n", err)
		return 2
	}
	if len(targets) == 0 {
		fmt.Fprintf(stderr, "hbcheck: sweep m=%d..%d n=%d..%d produces no valid targets\n", mLo, mHi, nLo, nHi)
		return 2
	}
	if *connsweep {
		return runConnSweep(targets, *workers, stdout, stderr)
	}
	if *implicit {
		return runImplicitSweep(mLo, mHi, nLo, nHi, *pairs, *jsonOut, stdout, stderr)
	}
	rep := conformance.Run(targets, conformance.DefaultInvariants(), conformance.Options{
		Workers:              *workers,
		MaxPairs:             *pairs,
		MaxConnectivityOrder: *maxConn,
	})
	switch {
	case *jsonOut:
		raw, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "hbcheck: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", raw)
	case *canonical:
		stdout.Write(rep.Canonical())
	default:
		rep.WriteText(stdout, *verbose)
	}
	if !rep.OK() {
		fmt.Fprintf(stderr, "hbcheck: %d invariant(s) failed: %s\n", rep.Fail, strings.Join(rep.FailedNames(), ", "))
		return 1
	}
	return 0
}

// runConnSweep computes exact vertex and edge connectivity of every
// target with the parallel Menger engine, prints per-target timings,
// and exits nonzero if a measured value contradicts a claimed formula.
func runConnSweep(targets []conformance.Target, workers int, stdout, stderr io.Writer) int {
	bad := 0
	for i := range targets {
		t := &targets[i]
		d := graph.Build(t.Graph)
		t0 := time.Now()
		var kappa int
		if t.VertexTransitive {
			kappa = graph.ConnectivityVertexTransitiveParallel(d, workers)
		} else {
			kappa = graph.ConnectivityParallel(d, workers)
		}
		kElapsed := time.Since(t0)
		t0 = time.Now()
		lambda := graph.EdgeConnectivityParallel(d, workers)
		lElapsed := time.Since(t0)
		status := "ok"
		if t.Connectivity >= 0 && kappa != t.Connectivity {
			status = fmt.Sprintf("KAPPA MISMATCH (claimed %d)", t.Connectivity)
			bad++
		}
		if t.EdgeConnectivity > 0 && lambda != t.EdgeConnectivity {
			status = fmt.Sprintf("LAMBDA MISMATCH (claimed %d)", t.EdgeConnectivity)
			bad++
		}
		fmt.Fprintf(stdout, "%-10s order=%-6d kappa=%-3d %8.1fms  lambda=%-3d %8.1fms  %s\n",
			t.Name, d.Order(), kappa, float64(kElapsed)/float64(time.Millisecond),
			lambda, float64(lElapsed)/float64(time.Millisecond), status)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "hbcheck: %d connectivity mismatch(es)\n", bad)
		return 1
	}
	return 0
}

// runImplicitSweep is the implicit-vs-dense differential gate: on every
// HB(m,n) in the range, the label-arithmetic backend's neighbors,
// distances and routes are checked against the dense BFS oracle over
// all pairs, and its Theorem 5 extractions against the dense Menger
// engine on sampled pairs. Exit status 1 if any instance diverges.
func runImplicitSweep(mLo, mHi, nLo, nHi, pairs int, jsonOut bool, stdout, stderr io.Writer) int {
	rep, err := conformance.ImplicitSweep(mLo, mHi, nLo, nHi, pairs)
	if err != nil {
		fmt.Fprintf(stderr, "hbcheck: %v\n", err)
		return 2
	}
	if jsonOut {
		raw, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "hbcheck: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", raw)
	} else {
		rep.WriteText(stdout)
	}
	if !rep.OK() {
		fmt.Fprintf(stderr, "hbcheck: implicit differential failed on %d instance(s)\n", rep.Fail)
		return 1
	}
	return 0
}

// parseRange accepts "k" or "lo..hi" (inclusive).
func parseRange(s string) (lo, hi int, err error) {
	if a, b, ok := strings.Cut(s, ".."); ok {
		lo, err = strconv.Atoi(strings.TrimSpace(a))
		if err != nil {
			return 0, 0, fmt.Errorf("bad range %q", s)
		}
		hi, err = strconv.Atoi(strings.TrimSpace(b))
		if err != nil {
			return 0, 0, fmt.Errorf("bad range %q", s)
		}
		if lo > hi {
			return 0, 0, fmt.Errorf("range %q is empty", s)
		}
		return lo, hi, nil
	}
	lo, err = strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, 0, fmt.Errorf("bad dimension %q", s)
	}
	return lo, lo, nil
}
