// Command hbd is the hyper-butterfly topology-query daemon: a
// long-lived HTTP/JSON service answering routing questions that the
// one-shot CLIs (hbnet, hbcheck) recompute from scratch per invocation.
//
//	hbd -addr :8080                          serve queries
//	hbd -mode load -url http://127.0.0.1:8080 -m 2 -n 4 \
//	    -qps 500 -duration 3s -out BENCH_serve.json     replay load mixes
//	hbd -mode router -addr :8090 \
//	    -replicas http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003
//	                                         shard queries across a fleet
//	hbd -mode clusterload -router http://127.0.0.1:8090 \
//	    -replicas ... -out BENCH_cluster.json            fleet-level load
//
// Endpoints (all GET, JSON responses):
//
//	/route?m=2&n=3&u=0&v=95        shortest route + generator sequence
//	/paths?m=2&n=3&u=0&v=95        the m+4 disjoint paths (Theorem 5)
//	/faultroute?...&faults=3,17    fault-avoiding route (Remark 10)
//	/info?m=2&n=3                  order/edges/degree/diameter/connectivity
//	/estimate?m=10&n=10&samples=4096   sampled diameter/distance evidence
//	/conformance?m=2&n=3           re-run the invariant registry
//	/metrics                       Prometheus text exposition
//	/healthz                       liveness
//
// /route and /paths responses are cached and byte-identical for
// identical queries. SIGINT/SIGTERM drain in-flight requests before
// exit. Every request runs under a deadline (-timeout), overload sheds
// with 503 + Retry-After (-maxinflight), and handler panics answer 500
// and increment hbd_panics_total instead of killing the daemon.
//
// Instances above -maxorder are served by the label-arithmetic implicit
// engine up to -implicitmaxorder, so a query against HB(10,10) (~10.5M
// nodes) answers from a cold daemon without building a graph.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/hbserve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hbd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "serve", "serve | load | router | clusterload")
	addr := fs.String("addr", ":8080", "serve: listen address")
	poolMax := fs.Int("pool", 0, "serve: max resident HB instances (0 = default)")
	cacheSize := fs.Int("cache", 0, "serve: route-cache entries (0 = default, -1 disables)")
	shards := fs.Int("shards", 0, "serve: route-cache shards (0 = default)")
	maxOrder := fs.Int("maxorder", 0, "serve: max nodes on the dense tier (0 = default)")
	implicitMaxOrder := fs.Int("implicitmaxorder", 0, "serve: max nodes on the implicit tier (0 = default, negative disables)")
	grace := fs.Duration("grace", 10*time.Second, "serve: shutdown drain budget")
	timeout := fs.Duration("timeout", 0, "serve: per-request deadline (0 = default, negative disables)")
	maxInFlight := fs.Int("maxinflight", 0, "serve: 503 load-shedding bound (0 = default, negative disables)")
	batchWorkers := fs.Int("batchworkers", 0, "serve: /batch kernel fan-out (0 = GOMAXPROCS)")
	snapshotDir := fs.String("snapshotdir", "", "serve: directory of *.hbsnap artifacts (hbtables -snapshot); /estimate answers covered dims exactly")

	url := fs.String("url", "http://127.0.0.1:8080", "load: target base URL")
	m := fs.Int("m", 2, "load: hypercube dimension")
	n := fs.Int("n", 4, "load: butterfly dimension")
	qps := fs.Int("qps", 500, "load: target request rate per mix")
	duration := fs.Duration("duration", 3*time.Second, "load: measured window per mix")
	workers := fs.Int("workers", 32, "load: concurrent requesters")
	seed := fs.Int64("seed", 1, "load: rng seed")
	endpoints := fs.String("endpoints", "route", "load: comma-separated endpoints (route,paths)")
	mixes := fs.String("mixes", "uniform,permutation", "load: comma-separated mixes")
	out := fs.String("out", "BENCH_serve.json", "load: report path")
	batch := fs.Int("batch", 0, "load/clusterload: also run /batch with this many pairs per request (0 disables)")
	codec := fs.String("codec", "bin", "load/clusterload: /batch codec (json or bin)")
	batchQPS := fs.Int("batchqps", 0, "load/clusterload: /batch request rate (0 = mode default)")

	replicas := fs.String("replicas", "", "router/clusterload: comma-separated replica base URLs")
	vnodes := fs.Int("vnodes", 0, "router: virtual nodes per replica on the hash ring (0 = default)")
	queueDepth := fs.Int("queue", 0, "router: bounded forward queue depth (0 = default, negative disables)")
	attempts := fs.Int("attempts", 0, "router: max distinct replicas tried per request (0 = default)")
	probeInterval := fs.Duration("probeinterval", 0, "router: health probe cadence (0 = default)")
	probeTimeout := fs.Duration("probetimeout", 0, "router: per-probe deadline (0 = default)")
	eject := fs.Int("eject", 0, "router: consecutive failures before ejection (0 = default)")
	readmit := fs.Int("readmit", 0, "router: consecutive probe successes before re-admission (0 = default)")
	replication := fs.Int("replication", 0, "router: alive owners per key (0 = default 2)")
	scatterMin := fs.Int("scattermin", 0, "router: smallest /batch split across the ring (0 = default, negative disables scatter)")

	router := fs.String("router", "http://127.0.0.1:8090", "clusterload: router base URL")
	shedBudget := fs.Float64("shedbudget", 0, "clusterload: allowed non-2xx fraction on the router leg (0 = default 1%, negative = zero tolerance)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch *mode {
	case "serve":
		srv := hbserve.NewServer(hbserve.Config{
			PoolMax:          *poolMax,
			MaxOrder:         *maxOrder,
			ImplicitMaxOrder: *implicitMaxOrder,
			CacheSize:        *cacheSize,
			CacheShard:       *shards,
			RequestTimeout:   *timeout,
			MaxInFlight:      *maxInFlight,
			BatchWorkers:     *batchWorkers,
		})
		if *snapshotDir != "" {
			loaded, err := srv.LoadSnapshots(*snapshotDir)
			if err != nil {
				fmt.Fprintf(stderr, "hbd: %v\n", err)
				return 1
			}
			defer srv.CloseSnapshots()
			fmt.Fprintf(stdout, "hbd: loaded %d snapshots from %s\n", loaded, *snapshotDir)
		}
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		fmt.Fprintf(stdout, "hbd: serving on %s (SIGTERM drains in-flight requests)\n", *addr)
		if err := srv.ListenAndServe(ctx, *addr, *grace); err != nil {
			fmt.Fprintf(stderr, "hbd: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "hbd: drained cleanly")
		return 0

	case "load":
		rep := &hbserve.BenchReport{M: *m, N: *n}
		for _, ep := range splitList(*endpoints) {
			for _, mix := range splitList(*mixes) {
				res, err := hbserve.Load(hbserve.LoadConfig{
					BaseURL:  *url,
					M:        *m,
					N:        *n,
					Endpoint: ep,
					Mix:      mix,
					QPS:      *qps,
					Duration: *duration,
					Workers:  *workers,
					Seed:     *seed,
				})
				if err != nil {
					fmt.Fprintf(stderr, "hbd: load %s/%s: %v\n", ep, mix, err)
					return 1
				}
				rep.Results = append(rep.Results, res)
				fmt.Fprintf(stdout, "hbd: %-6s %-12s %6d req  %8.1f qps  p50 %.3fms  p99 %.3fms  non-2xx %d\n",
					ep, mix, res.Requests, res.AchievedQPS, res.LatencyMS.P50, res.LatencyMS.P99, res.Non2xx)
			}
		}
		if *batch > 0 {
			bq := *batchQPS
			if bq <= 0 {
				bq = *qps
			}
			for _, mix := range splitList(*mixes) {
				res, err := hbserve.Load(hbserve.LoadConfig{
					BaseURL:  *url,
					M:        *m,
					N:        *n,
					Endpoint: "route",
					Mix:      mix,
					QPS:      bq,
					Duration: *duration,
					Workers:  *workers,
					Seed:     *seed,
					Batch:    *batch,
					Codec:    *codec,
				})
				if err != nil {
					fmt.Fprintf(stderr, "hbd: batch load %s: %v\n", mix, err)
					return 1
				}
				rep.Results = append(rep.Results, res)
				fmt.Fprintf(stdout, "hbd: batch=%d %-4s %-12s %6d req  %8.1f qps  %10.0f routes/s  p50 %.3fms  p99 %.3fms  non-2xx %d\n",
					*batch, res.Codec, mix, res.Requests, res.AchievedQPS, res.RoutesPerSec, res.LatencyMS.P50, res.LatencyMS.P99, res.Non2xx)
			}
			if sp := rep.ComputeBatchSpeedup(); sp > 0 {
				fmt.Fprintf(stdout, "hbd: batch speedup %.1fx routes/s vs single-query\n", sp)
			}
		}
		if err := rep.ScrapeCacheStats(*url); err != nil {
			fmt.Fprintf(stderr, "hbd: metrics scrape: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "hbd: cache hits=%d misses=%d dedups=%d hit-rate=%.1f%%\n",
			rep.Cache.Hits, rep.Cache.Misses, rep.Cache.Dedups, 100*rep.Cache.HitRate)
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintf(stderr, "hbd: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "hbd: wrote %s\n", *out)
		if rep.TotalNon2xx() > 0 {
			fmt.Fprintf(stderr, "hbd: %d non-2xx responses\n", rep.TotalNon2xx())
			return 1
		}
		return 0

	case "router":
		rt, err := hbserve.NewRouter(hbserve.ClusterConfig{
			Replicas:        splitList(*replicas),
			VNodes:          *vnodes,
			QueueDepth:      *queueDepth,
			MaxAttempts:     *attempts,
			ForwardTimeout:  *timeout,
			ProbeInterval:   *probeInterval,
			ProbeTimeout:    *probeTimeout,
			EjectAfter:      *eject,
			ReadmitAfter:    *readmit,
			Replication:     *replication,
			ScatterMinPairs: *scatterMin,
		})
		if err != nil {
			fmt.Fprintf(stderr, "hbd: %v\n", err)
			return 2
		}
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		fmt.Fprintf(stdout, "hbd: routing on %s over %d replicas (SIGTERM drains in-flight requests)\n",
			*addr, len(splitList(*replicas)))
		if err := rt.ListenAndServe(ctx, *addr, *grace); err != nil {
			fmt.Fprintf(stderr, "hbd: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "hbd: drained cleanly")
		return 0

	case "clusterload":
		rep, err := hbserve.LoadCluster(hbserve.ClusterLoadConfig{
			RouterURL:  *router,
			Replicas:   splitList(*replicas),
			M:          *m,
			N:          *n,
			Endpoint:   firstOr(splitList(*endpoints), "route"),
			Mix:        firstOr(splitList(*mixes), "uniform"),
			QPS:        *qps,
			Duration:   *duration,
			Workers:    *workers,
			Seed:       *seed,
			ShedBudget: *shedBudget,
			Batch:      *batch,
			BatchQPS:   *batchQPS,
			Codec:      *codec,
		})
		if err != nil {
			fmt.Fprintf(stderr, "hbd: clusterload: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "hbd: router leg %6d req  %8.1f qps  p50 %.3fms  p99 %.3fms  non-2xx %d (shed %d, retries %d)\n",
			rep.RouterResult.Requests, rep.RouterResult.AchievedQPS,
			rep.RouterResult.LatencyMS.P50, rep.RouterResult.LatencyMS.P99,
			rep.RouterResult.Non2xx, rep.RouterShed, rep.RouterRetry)
		for _, s := range rep.Share {
			fmt.Fprintf(stdout, "hbd:   %-28s forwarded %6d (%.1f%%)\n", s.URL, s.Forwarded, 100*s.Share)
		}
		if rb := rep.RouterBatch; rb != nil {
			fmt.Fprintf(stdout, "hbd: batch leg  batch=%d %-4s %6d req  %10.0f routes/s  lost %d  p50 %.3fms  non-2xx %d\n",
				*batch, rb.Codec, rb.Requests, rb.RoutesPerSec, rb.LostPairs, rb.LatencyMS.P50, rb.Non2xx)
			fmt.Fprintf(stdout, "hbd: batch aggregate %.0f routes/s across %d batch legs\n",
				rep.BatchRoutesPerSec, 1+len(rep.DirectBatch))
		}
		fmt.Fprintf(stdout, "hbd: aggregate %.0f routes/s across %d legs\n",
			rep.AggregateRoutesPerSec, 1+len(rep.Direct)+boolToInt(rep.RouterBatch != nil)+len(rep.DirectBatch))
		if *out != "" {
			path := *out
			if path == "BENCH_serve.json" {
				path = "BENCH_cluster.json" // load-mode default doesn't fit here
			}
			if err := rep.WriteFile(path); err != nil {
				fmt.Fprintf(stderr, "hbd: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "hbd: wrote %s\n", path)
		}
		if !rep.WithinBudget {
			fmt.Fprintf(stderr, "hbd: router leg outside shed budget: %d/%d non-2xx (budget %.3f)\n",
				rep.RouterResult.Non2xx, rep.RouterResult.Requests, rep.ShedBudget)
			return 1
		}
		return 0

	default:
		fmt.Fprintf(stderr, "hbd: unknown mode %q (want serve, load, router, or clusterload)\n", *mode)
		return 2
	}
}

// firstOr returns the first element of a flag list, or def if empty.
func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func firstOr(list []string, def string) string {
	if len(list) > 0 {
		return list[0]
	}
	return def
}

// splitList splits a comma-separated flag, dropping empties.
func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
