package main

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/hbserve"
)

func TestUnknownMode(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mode", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown mode") {
		t.Errorf("stderr %q", errb.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-qps", "many"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestSplitList(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"route", []string{"route"}},
		{"route,paths", []string{"route", "paths"}},
		{"a,,b,", []string{"a", "b"}},
		{"", nil},
	} {
		if got := splitList(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestLoadModeEndToEnd boots the server in-process and points load mode
// at it — the same sequence as the CI smoke, compressed.
func TestLoadModeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load run in -short")
	}
	srv := hbserve.NewServer(hbserve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln, 5*time.Second) }()

	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-mode", "load",
		"-url", "http://" + ln.Addr().String(),
		"-m", "1", "-n", "3",
		"-qps", "300", "-duration", "300ms", "-workers", "8",
		"-endpoints", "route,paths", "-mixes", "permutation",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote "+out) {
		t.Errorf("stdout %q", stdout.String())
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestLoadModeBatch runs the batch leg of load mode against an
// in-process server and checks the speedup line and report land.
func TestLoadModeBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load run in -short")
	}
	srv := hbserve.NewServer(hbserve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln, 5*time.Second) }()

	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-mode", "load",
		"-url", "http://" + ln.Addr().String(),
		"-m", "1", "-n", "3",
		"-qps", "200", "-duration", "300ms", "-workers", "8",
		"-endpoints", "route", "-mixes", "uniform",
		"-batch", "32", "-codec", "bin",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	for _, want := range []string{"batch=32", "batch speedup", "wrote " + out} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout is missing %q:\n%s", want, stdout.String())
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestRouterModeRejectsEmptyFleet: router mode without -replicas is a
// configuration error, exit 2.
func TestRouterModeRejectsEmptyFleet(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-mode", "router", "-addr", "127.0.0.1:0"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "replica") {
		t.Errorf("stderr %q", stderr.String())
	}
}

// TestClusterLoadModeEndToEnd boots two replicas and a router
// in-process and points clusterload mode at the fleet — the same
// sequence as the CI cluster-smoke, compressed and chaos-free.
func TestClusterLoadModeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load run in -short")
	}
	var urls []string
	ctx, cancel := context.WithCancel(context.Background())
	var done []chan error
	for i := 0; i < 2; i++ {
		srv := hbserve.NewServer(hbserve.Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		urls = append(urls, "http://"+ln.Addr().String())
		ch := make(chan error, 1)
		done = append(done, ch)
		go func() { ch <- srv.Serve(ctx, ln, 5*time.Second) }()
	}
	rt, err := hbserve.NewRouter(hbserve.ClusterConfig{
		Replicas:      urls,
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rdone := make(chan error, 1)
	go func() { rdone <- rt.Serve(ctx, rln, 5*time.Second) }()

	out := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-mode", "clusterload",
		"-router", "http://" + rln.Addr().String(),
		"-replicas", strings.Join(urls, ","),
		"-m", "1", "-n", "3",
		"-qps", "200", "-duration", "300ms", "-workers", "8",
		"-endpoints", "route", "-mixes", "uniform",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	for _, want := range []string{"router leg", "aggregate", "wrote " + out} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout is missing %q:\n%s", want, stdout.String())
		}
	}
	cancel()
	if err := <-rdone; err != nil {
		t.Fatalf("router drain: %v", err)
	}
	for _, ch := range done {
		if err := <-ch; err != nil {
			t.Fatalf("replica drain: %v", err)
		}
	}
}

// TestFirstOr covers the clusterload endpoint/mix fallback.
func TestFirstOr(t *testing.T) {
	if got := firstOr([]string{"paths", "route"}, "route"); got != "paths" {
		t.Errorf("firstOr = %q", got)
	}
	if got := firstOr(nil, "route"); got != "route" {
		t.Errorf("firstOr(nil) = %q", got)
	}
}

// TestServeBadSnapshotDir: a broken -snapshotdir must fail startup, not
// serve without the artifacts it was told to load.
func TestServeBadSnapshotDir(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-mode", "serve",
		"-addr", "127.0.0.1:0",
		"-snapshotdir", filepath.Join(t.TempDir(), "absent"),
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "snapshot") {
		t.Errorf("stderr %q", stderr.String())
	}
}
