// Command hbnet inspects a hyper-butterfly network HB(m,n).
//
//	hbnet -m 2 -n 3 info                     order, edges, degree, diameter
//	hbnet -m 2 -n 3 verify                   re-verify the paper's theorems
//	hbnet -m 2 -n 3 label 17                 print a node's two-part label
//	hbnet -m 2 -n 3 route 0 95               shortest route with generators
//	hbnet -m 2 -n 3 paths 0 95               the m+4 disjoint paths (Theorem 5)
//	hbnet -m 2 -n 3 broadcast 0              structured broadcast statistics
//	hbnet -m 3 -n 4 embed tree               verified Section 4 embeddings
//	hbnet -m 2 -n 3 decompose                Remark 5 partitions
//	hbnet -m 2 -n 4 cut                      constructive bisections (VLSI)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/layout"
)

func main() {
	m := flag.Int("m", 2, "hypercube dimension")
	n := flag.Int("n", 3, "butterfly dimension")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	hb, err := core.New(*m, *n)
	fail(err)

	switch args[0] {
	case "info":
		info(hb)
	case "verify":
		verify(hb)
	case "label":
		v := parseNode(hb, args, 1)
		fmt.Printf("node %d = %s  (PI=%d CI=%d)\n", v, hb.VertexLabel(v),
			hb.Butterfly().PI(nodeB(hb, v)), hb.Butterfly().CI(nodeB(hb, v)))
	case "route":
		u, v := parseNode(hb, args, 1), parseNode(hb, args, 2)
		route(hb, u, v)
	case "paths":
		u, v := parseNode(hb, args, 1), parseNode(hb, args, 2)
		paths(hb, u, v)
	case "broadcast":
		src := parseNode(hb, args, 1)
		res, _, err := broadcast.TwoPhase(hb, src)
		fail(err)
		fmt.Printf("two-phase broadcast from %s: %d rounds (diameter %d), %d messages, %d nodes reached\n",
			hb.VertexLabel(src), res.Rounds, hb.DiameterFormula(), res.Messages, res.Reached)
	case "embed":
		doEmbed(hb, args)
	case "decompose":
		decompose(hb)
	case "cut":
		cuts(hb)
	default:
		usage()
	}
}

// doEmbed runs one of the Section 4 embeddings and verifies it.
func doEmbed(hb *core.HyperButterfly, args []string) {
	if len(args) < 2 {
		usage()
	}
	switch args[1] {
	case "cycle":
		k := parseInt(args, 2)
		cyc, err := embed.EvenCycle(hb, k)
		fail(err)
		fail(graph.VerifyCycle(hb, cyc))
		fmt.Printf("even cycle C(%d) embedded and verified (Lemma 2)\n", k)
	case "torus":
		n1, k := parseInt(args, 2), parseInt(args, 3)
		tor, phi, err := embed.TorusKN(hb, n1, k)
		fail(err)
		fail(graph.VerifyEmbedding(tor, hb, phi))
		fmt.Printf("torus M(%d,%d) embedded and verified\n", tor.N1, tor.N2)
	case "tree":
		levels, phi, err := embed.BinaryTree(hb)
		fail(err)
		fail(graph.VerifyEmbedding(graph.CompleteBinaryTree{Levels: levels}, hb, phi))
		fmt.Printf("complete binary tree T(%d) embedded and verified; root %s\n",
			levels, hb.VertexLabel(phi[0]))
	case "meshoftrees":
		p, q := parseInt(args, 2), parseInt(args, 3)
		mt, phi, err := embed.MeshOfTrees(hb, p, q)
		fail(err)
		fail(graph.VerifyEmbedding(mt, hb, phi))
		fmt.Printf("mesh of trees MT(2^%d, 2^%d) embedded and verified (Theorem 4)\n", p, q)
	default:
		usage()
	}
}

// decompose prints the Remark 5 partitions.
func decompose(hb *core.HyperButterfly) {
	cubes := hb.HypercubePartition()
	bfs := hb.ButterflyPartition()
	fmt.Printf("Remark 5 decompositions of HB(%d,%d):\n", hb.M(), hb.N())
	fmt.Printf("  %d disjoint sub-hypercubes H_%d (one per butterfly label), e.g. labels of (H_m, identity):\n",
		len(cubes), hb.M())
	for _, v := range cubes[hb.Butterfly().Identity()] {
		fmt.Printf("    %s\n", hb.VertexLabel(v))
	}
	fmt.Printf("  %d disjoint sub-butterflies B_%d (one per hypercube label); (0…0, B_n) has %d nodes\n",
		len(bfs), hb.N(), len(bfs[0]))
}

// cuts prints the constructive bisections of the layout module.
func cuts(hb *core.HyperButterfly) {
	fmt.Printf("constructive bisections of HB(%d,%d) (VLSI layout bounds):\n", hb.M(), hb.N())
	if hb.M() > 0 {
		c, err := layout.HypercubeDimCut(hb, 0)
		fail(err)
		fmt.Printf("  hypercube dimension cut: %d/%d nodes, %d crossing edges (formula %d)\n",
			c.SizeA, c.SizeB, c.CrossEdges, layout.DimCutWidthFormula(hb.M(), hb.N()))
	}
	c, err := layout.ButterflyLevelCut(hb)
	fail(err)
	fmt.Printf("  butterfly level cut:     %d/%d nodes, %d crossing edges", c.SizeA, c.SizeB, c.CrossEdges)
	if hb.N()%2 == 0 {
		fmt.Printf(" (formula %d)", layout.LevelCutWidthFormula(hb.M(), hb.N()))
	}
	fmt.Println()
	if w, name, err := layout.BisectionUpperBound(hb); err == nil {
		fmt.Printf("  bisection width <= %d via %s\n", w, name)
	}
}

func parseInt(args []string, i int) int {
	if i >= len(args) {
		usage()
	}
	v, err := strconv.Atoi(args[i])
	fail(err)
	return v
}

func info(hb *core.HyperButterfly) {
	fmt.Printf("HB(%d,%d)\n", hb.M(), hb.N())
	fmt.Printf("  nodes            %d  (n·2^(m+n))\n", hb.Order())
	fmt.Printf("  edges            %d  ((m+4)·n·2^(m+n-1))\n", hb.EdgeCountFormula())
	fmt.Printf("  degree           %d  (m+4, regular Cayley graph)\n", hb.Degree())
	fmt.Printf("  diameter         %d  (m+floor(3n/2))\n", hb.DiameterFormula())
	fmt.Printf("  fault tolerance  %d  (m+4, maximal)\n", hb.ConnectivityFormula())
}

func verify(hb *core.HyperButterfly) {
	d := hb.Dense()
	ok := true
	check := func(name string, got, want int) {
		status := "ok"
		if got != want {
			status = "MISMATCH"
			ok = false
		}
		fmt.Printf("  %-28s measured %-8d expected %-8d %s\n", name, got, want, status)
	}
	fmt.Printf("verifying HB(%d,%d) against the paper:\n", hb.M(), hb.N())
	check("nodes (Theorem 2)", d.Order(), hb.Order())
	check("edges (Theorem 2)", d.EdgeCount(), hb.EdgeCountFormula())
	st := graph.Degrees(d)
	check("degree min (Theorem 2)", st.Min, hb.Degree())
	check("degree max (Theorem 2)", st.Max, hb.Degree())
	ecc, _ := graph.Eccentricity(hb, hb.Identity())
	check("diameter (Theorem 3)", ecc, hb.DiameterFormula())
	if d.Order() <= 8192 {
		check("connectivity (Corollary 1)", graph.ConnectivityVertexTransitive(d), hb.ConnectivityFormula())
	} else {
		fmt.Println("  connectivity: instance too large for exact max-flow sweep; see tests for exact small-instance verification")
	}
	if !ok {
		os.Exit(1)
	}
}

func route(hb *core.HyperButterfly, u, v int) {
	fmt.Printf("route %s -> %s (distance %d):\n", hb.VertexLabel(u), hb.VertexLabel(v), hb.Distance(u, v))
	moves := hb.RouteMoves(u, v)
	cur := u
	fmt.Printf("  %s\n", hb.VertexLabel(cur))
	for _, mv := range moves {
		cur = hb.Apply(mv, cur)
		fmt.Printf("  --%-3s--> %s\n", mv, hb.VertexLabel(cur))
	}
}

func paths(hb *core.HyperButterfly, u, v int) {
	ps, err := hb.DisjointPaths(u, v)
	fail(err)
	if err := graph.VerifyDisjointPaths(hb, u, v, ps); err != nil {
		fail(err)
	}
	fmt.Printf("%d internally vertex-disjoint paths %d -> %d (Theorem 5), verified:\n", len(ps), u, v)
	for i, p := range ps {
		fmt.Printf("  path %2d (length %2d): ", i+1, len(p)-1)
		for j, x := range p {
			if j > 0 {
				fmt.Print(" ")
			}
			fmt.Print(x)
		}
		fmt.Println()
	}
}

func nodeB(hb *core.HyperButterfly, v int) int {
	_, b := hb.Decode(v)
	return b
}

func parseNode(hb *core.HyperButterfly, args []string, i int) int {
	if i >= len(args) {
		usage()
	}
	v, err := strconv.Atoi(args[i])
	fail(err)
	if v < 0 || v >= hb.Order() {
		fail(fmt.Errorf("node %d out of range [0,%d)", v, hb.Order()))
	}
	return v
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbnet:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hbnet [-m M] [-n N] <command>
commands:
  info                network parameters
  verify              re-verify the paper's theorems on this instance
  label <v>           two-part label of node v
  route <u> <v>       shortest route with generator sequence
  paths <u> <v>       the m+4 disjoint paths of Theorem 5
  broadcast <src>     structured broadcast statistics
  embed cycle <k>     embed + verify an even cycle (Lemma 2)
  embed torus <n1> <k> embed + verify M(n1, k*n)
  embed tree          embed + verify T(m+n-1)
  embed meshoftrees <p> <q>  embed + verify MT(2^p, 2^q) (Theorem 4)
  decompose           Remark 5 partitions
  cut                 constructive bisections (VLSI bounds)`)
	os.Exit(2)
}
