// Command hbnet inspects a hyper-butterfly network HB(m,n).
//
//	hbnet -m 2 -n 3 info                     order, edges, degree, diameter
//	hbnet -m 2 -n 3 verify                   re-verify the paper's theorems
//	hbnet -m 2 -n 3 label 17                 print a node's two-part label
//	hbnet -m 2 -n 3 route 0 95               shortest route with generators
//	hbnet -m 2 -n 3 paths 0 95               the m+4 disjoint paths (Theorem 5)
//	hbnet -m 2 -n 3 broadcast 0              structured broadcast statistics
//	hbnet -m 3 -n 4 embed tree               verified Section 4 embeddings
//	hbnet -m 2 -n 3 decompose                Remark 5 partitions
//	hbnet -m 2 -n 4 cut                      constructive bisections (VLSI)
//
// Exit status: 0 on success, 1 on a verification or construction
// failure, 2 on a usage error (unknown command, malformed or
// out-of-range arguments).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/layout"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// usageError marks bad invocations (exit 2, usage printed); every other
// error exits 1.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hbnet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	m := fs.Int("m", 2, "hypercube dimension")
	n := fs.Int("n", 3, "butterfly dimension")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	err := dispatch(*m, *n, fs.Args(), stdout)
	if err == nil {
		return 0
	}
	fmt.Fprintln(stderr, "hbnet:", err)
	if _, ok := err.(*usageError); ok {
		usage(stderr)
		return 2
	}
	return 1
}

func dispatch(m, n int, args []string, w io.Writer) error {
	if len(args) == 0 {
		return usagef("missing command")
	}
	hb, err := core.New(m, n)
	if err != nil {
		return err
	}
	switch cmd := args[0]; cmd {
	case "info":
		info(w, hb)
		return nil
	case "verify":
		return verify(w, hb)
	case "label":
		v, err := parseNode(hb, args, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "node %d = %s  (PI=%d CI=%d)\n", v, hb.VertexLabel(v),
			hb.Butterfly().PI(nodeB(hb, v)), hb.Butterfly().CI(nodeB(hb, v)))
		return nil
	case "route":
		u, err := parseNode(hb, args, 1)
		if err != nil {
			return err
		}
		v, err := parseNode(hb, args, 2)
		if err != nil {
			return err
		}
		route(w, hb, u, v)
		return nil
	case "paths":
		u, err := parseNode(hb, args, 1)
		if err != nil {
			return err
		}
		v, err := parseNode(hb, args, 2)
		if err != nil {
			return err
		}
		return paths(w, hb, u, v)
	case "broadcast":
		src, err := parseNode(hb, args, 1)
		if err != nil {
			return err
		}
		res, _, err := broadcast.TwoPhase(hb, src)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "two-phase broadcast from %s: %d rounds (diameter %d), %d messages, %d nodes reached\n",
			hb.VertexLabel(src), res.Rounds, hb.DiameterFormula(), res.Messages, res.Reached)
		return nil
	case "embed":
		return doEmbed(w, hb, args)
	case "decompose":
		decompose(w, hb)
		return nil
	case "cut":
		return cuts(w, hb)
	default:
		return usagef("unknown command %q", cmd)
	}
}

// doEmbed runs one of the Section 4 embeddings and verifies it.
func doEmbed(w io.Writer, hb *core.HyperButterfly, args []string) error {
	if len(args) < 2 {
		return usagef("embed needs a kind: cycle, torus, tree or meshoftrees")
	}
	switch kind := args[1]; kind {
	case "cycle":
		k, err := parseInt(args, 2, "cycle length")
		if err != nil {
			return err
		}
		cyc, err := embed.EvenCycle(hb, k)
		if err != nil {
			return err
		}
		if err := graph.VerifyCycle(hb, cyc); err != nil {
			return err
		}
		fmt.Fprintf(w, "even cycle C(%d) embedded and verified (Lemma 2)\n", k)
	case "torus":
		n1, err := parseInt(args, 2, "torus dimension n1")
		if err != nil {
			return err
		}
		k, err := parseInt(args, 3, "torus multiplier k")
		if err != nil {
			return err
		}
		tor, phi, err := embed.TorusKN(hb, n1, k)
		if err != nil {
			return err
		}
		if err := graph.VerifyEmbedding(tor, hb, phi); err != nil {
			return err
		}
		fmt.Fprintf(w, "torus M(%d,%d) embedded and verified\n", tor.N1, tor.N2)
	case "tree":
		levels, phi, err := embed.BinaryTree(hb)
		if err != nil {
			return err
		}
		if err := graph.VerifyEmbedding(graph.CompleteBinaryTree{Levels: levels}, hb, phi); err != nil {
			return err
		}
		fmt.Fprintf(w, "complete binary tree T(%d) embedded and verified; root %s\n",
			levels, hb.VertexLabel(phi[0]))
	case "meshoftrees":
		p, err := parseInt(args, 2, "mesh exponent p")
		if err != nil {
			return err
		}
		q, err := parseInt(args, 3, "mesh exponent q")
		if err != nil {
			return err
		}
		mt, phi, err := embed.MeshOfTrees(hb, p, q)
		if err != nil {
			return err
		}
		if err := graph.VerifyEmbedding(mt, hb, phi); err != nil {
			return err
		}
		fmt.Fprintf(w, "mesh of trees MT(2^%d, 2^%d) embedded and verified (Theorem 4)\n", p, q)
	default:
		return usagef("unknown embedding %q", kind)
	}
	return nil
}

// decompose prints the Remark 5 partitions.
func decompose(w io.Writer, hb *core.HyperButterfly) {
	cubes := hb.HypercubePartition()
	bfs := hb.ButterflyPartition()
	fmt.Fprintf(w, "Remark 5 decompositions of HB(%d,%d):\n", hb.M(), hb.N())
	fmt.Fprintf(w, "  %d disjoint sub-hypercubes H_%d (one per butterfly label), e.g. labels of (H_m, identity):\n",
		len(cubes), hb.M())
	for _, v := range cubes[hb.Butterfly().Identity()] {
		fmt.Fprintf(w, "    %s\n", hb.VertexLabel(v))
	}
	fmt.Fprintf(w, "  %d disjoint sub-butterflies B_%d (one per hypercube label); (0…0, B_n) has %d nodes\n",
		len(bfs), hb.N(), len(bfs[0]))
}

// cuts prints the constructive bisections of the layout module.
func cuts(w io.Writer, hb *core.HyperButterfly) error {
	fmt.Fprintf(w, "constructive bisections of HB(%d,%d) (VLSI layout bounds):\n", hb.M(), hb.N())
	if hb.M() > 0 {
		c, err := layout.HypercubeDimCut(hb, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  hypercube dimension cut: %d/%d nodes, %d crossing edges (formula %d)\n",
			c.SizeA, c.SizeB, c.CrossEdges, layout.DimCutWidthFormula(hb.M(), hb.N()))
	}
	c, err := layout.ButterflyLevelCut(hb)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  butterfly level cut:     %d/%d nodes, %d crossing edges", c.SizeA, c.SizeB, c.CrossEdges)
	if hb.N()%2 == 0 {
		fmt.Fprintf(w, " (formula %d)", layout.LevelCutWidthFormula(hb.M(), hb.N()))
	}
	fmt.Fprintln(w)
	if width, name, err := layout.BisectionUpperBound(hb); err == nil {
		fmt.Fprintf(w, "  bisection width <= %d via %s\n", width, name)
	}
	return nil
}

// parseInt reads a required integer argument; what names it in errors.
func parseInt(args []string, i int, what string) (int, error) {
	if i >= len(args) {
		return 0, usagef("missing %s argument", what)
	}
	v, err := strconv.Atoi(args[i])
	if err != nil {
		return 0, usagef("%s %q is not an integer", what, args[i])
	}
	return v, nil
}

func info(w io.Writer, hb *core.HyperButterfly) {
	fmt.Fprintf(w, "HB(%d,%d)\n", hb.M(), hb.N())
	fmt.Fprintf(w, "  nodes            %d  (n·2^(m+n))\n", hb.Order())
	fmt.Fprintf(w, "  edges            %d  ((m+4)·n·2^(m+n-1))\n", hb.EdgeCountFormula())
	fmt.Fprintf(w, "  degree           %d  (m+4, regular Cayley graph)\n", hb.Degree())
	fmt.Fprintf(w, "  diameter         %d  (m+floor(3n/2))\n", hb.DiameterFormula())
	fmt.Fprintf(w, "  fault tolerance  %d  (m+4, maximal)\n", hb.ConnectivityFormula())
}

func verify(w io.Writer, hb *core.HyperButterfly) error {
	d := hb.Dense()
	ok := true
	check := func(name string, got, want int) {
		status := "ok"
		if got != want {
			status = "MISMATCH"
			ok = false
		}
		fmt.Fprintf(w, "  %-28s measured %-8d expected %-8d %s\n", name, got, want, status)
	}
	fmt.Fprintf(w, "verifying HB(%d,%d) against the paper:\n", hb.M(), hb.N())
	check("nodes (Theorem 2)", d.Order(), hb.Order())
	check("edges (Theorem 2)", d.EdgeCount(), hb.EdgeCountFormula())
	st := graph.Degrees(d)
	check("degree min (Theorem 2)", st.Min, hb.Degree())
	check("degree max (Theorem 2)", st.Max, hb.Degree())
	ecc, _ := d.EccentricityScratch(hb.Identity(), graph.NewScratch(d.Order()))
	check("diameter (Theorem 3)", ecc, hb.DiameterFormula())
	if d.Order() <= 8192 {
		check("connectivity (Corollary 1)", graph.ConnectivityVertexTransitive(d), hb.ConnectivityFormula())
	} else {
		fmt.Fprintln(w, "  connectivity: instance too large for exact max-flow sweep; see tests for exact small-instance verification")
	}
	if !ok {
		return fmt.Errorf("verification found mismatches")
	}
	return nil
}

func route(w io.Writer, hb *core.HyperButterfly, u, v int) {
	fmt.Fprintf(w, "route %s -> %s (distance %d):\n", hb.VertexLabel(u), hb.VertexLabel(v), hb.Distance(u, v))
	moves := hb.RouteMoves(u, v)
	cur := u
	fmt.Fprintf(w, "  %s\n", hb.VertexLabel(cur))
	for _, mv := range moves {
		cur = hb.Apply(mv, cur)
		fmt.Fprintf(w, "  --%-3s--> %s\n", mv, hb.VertexLabel(cur))
	}
}

func paths(w io.Writer, hb *core.HyperButterfly, u, v int) error {
	ps, err := hb.DisjointPaths(u, v)
	if err != nil {
		return err
	}
	if err := graph.VerifyDisjointPaths(hb, u, v, ps); err != nil {
		return err
	}
	fmt.Fprintf(w, "%d internally vertex-disjoint paths %d -> %d (Theorem 5), verified:\n", len(ps), u, v)
	for i, p := range ps {
		fmt.Fprintf(w, "  path %2d (length %2d): ", i+1, len(p)-1)
		for j, x := range p {
			if j > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprint(w, x)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func nodeB(hb *core.HyperButterfly, v int) int {
	_, b := hb.Decode(v)
	return b
}

// parseNode reads a required node-id argument, rejecting non-integers
// and out-of-range ids with a usage error instead of a raw strconv or
// index failure.
func parseNode(hb *core.HyperButterfly, args []string, i int) (int, error) {
	if i >= len(args) {
		return 0, usagef("missing node-id argument")
	}
	v, err := strconv.Atoi(args[i])
	if err != nil {
		return 0, usagef("node id %q is not an integer", args[i])
	}
	if !hb.ValidNode(v) {
		return 0, usagef("node %d out of range [0,%d) for HB(%d,%d)", v, hb.Order(), hb.M(), hb.N())
	}
	return v, nil
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: hbnet [-m M] [-n N] <command>
commands:
  info                network parameters
  verify              re-verify the paper's theorems on this instance
  label <v>           two-part label of node v
  route <u> <v>       shortest route with generator sequence
  paths <u> <v>       the m+4 disjoint paths of Theorem 5
  broadcast <src>     structured broadcast statistics
  embed cycle <k>     embed + verify an even cycle (Lemma 2)
  embed torus <n1> <k> embed + verify M(n1, k*n)
  embed tree          embed + verify T(m+n-1)
  embed meshoftrees <p> <q>  embed + verify MT(2^p, 2^q) (Theorem 4)
  decompose           Remark 5 partitions
  cut                 constructive bisections (VLSI bounds)`)
}
