package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUnknownCommand(t *testing.T) {
	code, _, stderr := runCmd(t, "-m", "2", "-n", "3", "frobnicate")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown command "frobnicate"`) || !strings.Contains(stderr, "usage: hbnet") {
		t.Errorf("stderr %q", stderr)
	}
}

func TestMissingCommand(t *testing.T) {
	code, _, stderr := runCmd(t)
	if code != 2 || !strings.Contains(stderr, "missing command") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestMalformedNodeID(t *testing.T) {
	for _, args := range [][]string{
		{"route", "zero", "5"},
		{"route", "0", "5x"},
		{"label", "abc"},
		{"broadcast", "1.5"},
	} {
		code, _, stderr := runCmd(t, append([]string{"-m", "2", "-n", "3"}, args...)...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
		if !strings.Contains(stderr, "is not an integer") {
			t.Errorf("%v: stderr %q lacks a parse message", args, stderr)
		}
	}
}

func TestOutOfRangeNodeID(t *testing.T) {
	code, _, stderr := runCmd(t, "-m", "2", "-n", "3", "route", "0", "96")
	if code != 2 || !strings.Contains(stderr, "out of range [0,96)") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	code, _, stderr = runCmd(t, "-m", "2", "-n", "3", "paths", "-1", "5")
	if code != 2 || !strings.Contains(stderr, "out of range") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestMissingArguments(t *testing.T) {
	code, _, stderr := runCmd(t, "-m", "2", "-n", "3", "route", "0")
	if code != 2 || !strings.Contains(stderr, "missing node-id") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	code, _, stderr = runCmd(t, "-m", "2", "-n", "3", "embed")
	if code != 2 || !strings.Contains(stderr, "embed needs a kind") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	code, _, stderr = runCmd(t, "-m", "2", "-n", "3", "embed", "cycle", "six")
	if code != 2 || !strings.Contains(stderr, "cycle length") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestHappyPaths(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-m", "2", "-n", "3", "info")
	if code != 0 || stderr != "" {
		t.Fatalf("info: exit %d stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "HB(2,3)") || !strings.Contains(stdout, "nodes            96") {
		t.Errorf("info output %q", stdout)
	}

	code, stdout, _ = runCmd(t, "-m", "2", "-n", "3", "route", "0", "95")
	if code != 0 || !strings.Contains(stdout, "route (00;") {
		t.Errorf("route: exit %d output %q", code, stdout)
	}

	code, stdout, _ = runCmd(t, "-m", "2", "-n", "3", "paths", "0", "77")
	if code != 0 || !strings.Contains(stdout, "6 internally vertex-disjoint paths") {
		t.Errorf("paths: exit %d output %q", code, stdout)
	}

	code, stdout, _ = runCmd(t, "-m", "1", "-n", "3", "label", "17")
	if code != 0 || !strings.Contains(stdout, "node 17 = ") {
		t.Errorf("label: exit %d output %q", code, stdout)
	}
}

func TestBadDimensions(t *testing.T) {
	code, _, stderr := runCmd(t, "-m", "2", "-n", "2", "info")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (construction error, not usage)", code)
	}
	if strings.Contains(stderr, "usage:") {
		t.Errorf("construction errors should not print usage: %q", stderr)
	}
}
