// Command hbtables regenerates the paper's evaluation tables.
//
//	hbtables -table 1 [-m 3 -n 4] [-exact]   Figure 1 (family comparison)
//	hbtables -table 2 [-exact]               Figure 2 (HB(3,8) vs HD(3,11) vs HD(6,8))
//
// Without -exact, expensive cells on 16K-node instances (full-sweep HD
// diameters, global connectivity) are replaced by formula values plus
// sampled probes; -exact measures everything (the HD diameter sweeps
// take a few seconds each).
//
// -cpuprofile/-memprofile capture pprof profiles of the sweep, mirroring
// the go test flags.
//
//	hbtables -snapshot 2x3,3x3 -snapdir snapshots
//
// builds precomputed snapshot artifacts (all-pairs distance histogram,
// eccentricities, Theorem 5 path table; see internal/snapshot) that
// hbd -snapshotdir mmap-loads to answer /estimate exactly in O(1).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/profiling"
	"repro/internal/snapshot"
	"repro/internal/tables"
)

func main() {
	os.Exit(run())
}

func run() int {
	table := flag.Int("table", 0, "which table to regenerate: 1 or 2 (0 = both)")
	m := flag.Int("m", 3, "hypercube dimension for Figure 1")
	n := flag.Int("n", 4, "butterfly dimension for Figure 1")
	exact := flag.Bool("exact", false, "measure every cell exactly (slower)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the table sweep to this file")
	memprofile := flag.String("memprofile", "", "write a GC-settled heap profile to this file on exit")
	snapDims := flag.String("snapshot", "", "build snapshot artifacts for these instances (e.g. 2x3,3x3) instead of tables")
	snapDir := flag.String("snapdir", "snapshots", "directory to write -snapshot artifacts into")
	workers := flag.Int("workers", 0, "snapshot sweep workers (0 = GOMAXPROCS)")
	flag.Parse()

	if *snapDims != "" {
		return buildSnapshots(*snapDims, *snapDir, *workers)
	}
	if *table < 0 || *table > 2 {
		fmt.Fprintf(os.Stderr, "hbtables: unknown table %d\n", *table)
		return 2
	}
	stopProfile, err := profiling.Start(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbtables:", err)
		return 2
	}
	defer func() {
		stopProfile()
		if err := profiling.WriteHeap(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "hbtables:", err)
		}
	}()

	out := struct {
		Figure1 []tables.Summary `json:"figure1,omitempty"`
		Figure2 []tables.Summary `json:"figure2,omitempty"`
	}{}
	if *table == 0 || *table == 1 {
		out.Figure1 = tables.Figure1(*m, *n, *exact)
	}
	if *table == 0 || *table == 2 {
		out.Figure2 = tables.Figure2(*exact)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "hbtables:", err)
			return 1
		}
		return 0
	}
	if out.Figure1 != nil {
		fmt.Println("Figure 1 — symbolic (as printed in the paper)")
		fmt.Println(tables.Figure1Symbolic())
		title := fmt.Sprintf("Figure 1 — measured at m=%d, n=%d", *m, *n)
		fmt.Println(tables.Render(title, out.Figure1))
	}
	if out.Figure2 != nil {
		fmt.Println(tables.Render("Figure 2 — HB(3,8) vs HD(3,11) vs HD(6,8)", out.Figure2))
		if !*exact {
			fmt.Println("(HD diameters shown as formulas; rerun with -exact for the full BFS sweep)")
		}
	}
	return 0
}

// buildSnapshots parses "2x3,3x3", builds each snapshot live and writes
// hb_<m>_<n>.hbsnap files into dir.
func buildSnapshots(spec, dir string, workers int) int {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "hbtables:", err)
		return 1
	}
	for _, part := range strings.Split(spec, ",") {
		ms, ns, ok := strings.Cut(strings.TrimSpace(part), "x")
		if !ok {
			fmt.Fprintf(os.Stderr, "hbtables: bad snapshot spec %q (want MxN, e.g. 2x3)\n", part)
			return 2
		}
		m, errM := strconv.Atoi(ms)
		n, errN := strconv.Atoi(ns)
		if errM != nil || errN != nil {
			fmt.Fprintf(os.Stderr, "hbtables: bad snapshot spec %q (want MxN, e.g. 2x3)\n", part)
			return 2
		}
		hb, err := core.New(m, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbtables:", err)
			return 1
		}
		snap, err := snapshot.Build(hb, workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbtables:", err)
			return 1
		}
		path := filepath.Join(dir, fmt.Sprintf("hb_%d_%d%s", m, n, snapshot.FileSuffix))
		if err := snap.WriteFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "hbtables:", err)
			return 1
		}
		fmt.Printf("hbtables: wrote %s (order %d, diameter %d, %d distance classes)\n",
			path, snap.Order, snap.Diameter, len(snap.Hist))
	}
	return 0
}
