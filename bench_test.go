// Benchmark harness: one benchmark per experiment in DESIGN.md §3, plus
// micro-benchmarks for the routines a downstream user would hammer.
// Regenerate everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/butterfly"
	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/election"
	"repro/internal/embed"
	"repro/internal/faultroute"
	"repro/internal/graph"
	"repro/internal/hyperdebruijn"
	"repro/internal/layout"
	"repro/internal/simnet"
	"repro/internal/tables"
	"repro/internal/wormhole"
)

// BenchmarkFigure1 (E-F1) regenerates the Figure 1 comparison with all
// cells measured exactly at (m,n) = (2,3).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := tables.Figure1(2, 3, true)
		if len(rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFigure2 (E-F2) regenerates Figure 2 in quick mode (formula
// diameters for the 16K-node HD instances; -exact equivalent lives in
// cmd/hbtables).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := tables.Figure2(false)
		if rows[0].Nodes != 16384 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTheorem2Construction (E-T2) materialises HB(3,6) (3072 nodes)
// and checks the node/edge counts.
func BenchmarkTheorem2Construction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hb := core.MustNew(3, 6)
		d := graph.Build(hb)
		if d.Order() != hb.Order() || d.EdgeCount() != hb.EdgeCountFormula() {
			b.Fatal("Theorem 2 mismatch")
		}
	}
}

// BenchmarkTheorem3Diameter (E-T3) measures the diameter of HB(3,6) by
// single-source BFS (valid by vertex transitivity).
func BenchmarkTheorem3Diameter(b *testing.B) {
	hb := core.MustNew(3, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ecc, _ := graph.Eccentricity(hb, hb.Identity())
		if ecc != hb.DiameterFormula() {
			b.Fatalf("diameter %d", ecc)
		}
	}
}

// BenchmarkRemark6Route (E-R6) times the optimal two-phase routing on
// HB(4,8) (one million nodes, label arithmetic only).
func BenchmarkRemark6Route(b *testing.B) {
	hb := core.MustNew(4, 8)
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]int, 1024)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(hb.Order()), rng.Intn(hb.Order())}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if len(hb.RouteMoves(p[0], p[1])) != hb.Distance(p[0], p[1]) {
			b.Fatal("suboptimal route")
		}
	}
}

// BenchmarkDistance times the analytic distance function alone.
func BenchmarkDistance(b *testing.B) {
	hb := core.MustNew(4, 8)
	rng := rand.New(rand.NewSource(2))
	pairs := make([][2]int, 1024)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(hb.Order()), rng.Intn(hb.Order())}
	}
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sum += hb.Distance(p[0], p[1])
	}
	_ = sum
}

// BenchmarkTheorem5DisjointPaths (E-T5) constructs and verifies the m+4
// disjoint paths on HB(2,4), cycling through all three proof cases.
func BenchmarkTheorem5DisjointPaths(b *testing.B) {
	hb := core.MustNew(2, 4)
	hb.Dense() // warm the cache outside the timed region
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := rng.Intn(hb.Order()), rng.Intn(hb.Order())
		if u == v {
			continue
		}
		paths, err := hb.DisjointPaths(u, v)
		if err != nil || len(paths) != hb.Degree() {
			b.Fatalf("paths %d err %v", len(paths), err)
		}
	}
}

// BenchmarkConnectivityExact times the full max-flow connectivity
// computation that backs Corollary 1 on HB(1,3).
func BenchmarkConnectivityExact(b *testing.B) {
	hb := core.MustNew(1, 3)
	d := hb.Dense()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if graph.ConnectivityVertexTransitive(d) != hb.ConnectivityFormula() {
			b.Fatal("connectivity mismatch")
		}
	}
}

// BenchmarkLemma2CycleEmbed (E-L2) embeds and verifies a near-maximal
// even cycle in HB(2,4).
func BenchmarkLemma2CycleEmbed(b *testing.B) {
	hb := core.MustNew(2, 4)
	k := hb.Order() - 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cyc, err := embed.EvenCycle(hb, k)
		if err != nil || len(cyc) != k {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem4MeshOfTrees (E-T4) embeds MT(2^2, 2^4) in HB(4,4).
func BenchmarkTheorem4MeshOfTrees(b *testing.B) {
	hb := core.MustNew(4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := embed.MeshOfTrees(hb, 2, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemark10FaultRoute (E-R10) routes around m+3 random faults.
func BenchmarkRemark10FaultRoute(b *testing.B) {
	hb := core.MustNew(2, 4)
	hb.Dense()
	rng := rand.New(rand.NewSource(4))
	faults := rng.Perm(hb.Order())[:hb.M()+3]
	r, err := faultroute.New(hb, faults)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := rng.Intn(hb.Order()), rng.Intn(hb.Order())
		if u == v || r.Faulty(u) || r.Faulty(v) {
			continue
		}
		if _, err := r.Route(u, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcast (E-B1) runs the structured two-phase broadcast on
// HB(3,5) (1280 nodes).
func BenchmarkBroadcast(b *testing.B) {
	hb := core.MustNew(3, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := broadcast.TwoPhase(hb, hb.Identity())
		if err != nil || res.Rounds != hb.DiameterFormula() {
			b.Fatalf("rounds %d err %v", res.Rounds, err)
		}
	}
}

// BenchmarkTraffic (E-S1) runs matched uniform traffic on HB(2,4) and
// HD(2,6); the per-network sub-benchmarks let the regression be read
// directly off the -bench output.
func BenchmarkTraffic(b *testing.B) {
	hb := core.MustNew(2, 4)
	hd := hyperdebruijn.MustNew(2, 6)
	cases := []struct {
		name string
		top  simnet.Topology
	}{
		{"HB_2_4", simnet.Routed{Graph: hb, Route: hb.Route}},
		{"HD_2_6", simnet.Routed{Graph: hd, Route: hd.Route}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := simnet.Run(c.top, simnet.Config{
					Cycles: 500, Rate: 0.05, Pattern: simnet.Uniform, Seed: 11,
				})
				if err != nil || res.Delivered == 0 {
					b.Fatalf("delivered %d err %v", res.Delivered, err)
				}
			}
		})
	}
}

// BenchmarkButterflyDistance times the core analytic routine (the
// covering-walk optimisation) across butterfly sizes.
func BenchmarkButterflyDistance(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		bf := butterfly.MustNew(n)
		rng := rand.New(rand.NewSource(int64(n)))
		pairs := make([][2]int, 1024)
		for i := range pairs {
			pairs[i] = [2]int{rng.Intn(bf.Order()), rng.Intn(bf.Order())}
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sum := 0
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				sum += bf.Distance(p[0], p[1])
			}
			_ = sum
		})
	}
}

// BenchmarkHamiltonianCycle times the binary-counting-laps construction
// behind Lemma 2.
func BenchmarkHamiltonianCycle(b *testing.B) {
	bf := butterfly.MustNew(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(bf.HamiltonianCycle()) != bf.Order() {
			b.Fatal("bad cycle")
		}
	}
}

// BenchmarkBFS is the baseline graph-sweep cost on HB(3,6).
func BenchmarkBFS(b *testing.B) {
	hb := core.MustNew(3, 6)
	d := hb.Dense()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist := graph.BFS(d, 0, nil)
		if dist[d.Order()-1] == graph.Unreachable {
			b.Fatal("disconnected")
		}
	}
}

// BenchmarkElection (E-LE) runs both election protocols on HB(2,4).
func BenchmarkElection(b *testing.B) {
	hb := core.MustNew(2, 4)
	rng := rand.New(rand.NewSource(24))
	ids := make([]int64, hb.Order())
	for v, p := range rng.Perm(hb.Order()) {
		ids[v] = int64(p)
	}
	b.Run("floodmax", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := election.FloodMax(hb, ids); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := election.TreeElect(hb, ids, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAllReduce (extension) compares the structured HB all-reduce
// with the global-tree baseline on HB(3,5).
func BenchmarkAllReduce(b *testing.B) {
	hb := core.MustNew(3, 5)
	vals := make([]int64, hb.Order())
	for i := range vals {
		vals[i] = int64(i)
	}
	b.Run("structured", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := collectives.AllReduceHB(hb, vals, collectives.Sum); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := collectives.AllReduceTree(hb, 0, vals, collectives.Sum); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFan (E-T5 extension) times node-to-set disjoint paths at the
// full fan size m+4.
func BenchmarkFan(b *testing.B) {
	hb := core.MustNew(2, 4)
	hb.Dense()
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := rng.Intn(hb.Order())
		targets := make([]int, 0, hb.Degree())
		used := map[int]bool{src: true}
		for len(targets) < hb.Degree() {
			x := rng.Intn(hb.Order())
			if !used[x] {
				used[x] = true
				targets = append(targets, x)
			}
		}
		if _, err := hb.Fan(src, targets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveTraffic (E-S2) runs the minimal-adaptive engine under
// hotspot load on HB(2,4).
func BenchmarkAdaptiveTraffic(b *testing.B) {
	hb := core.MustNew(2, 4)
	a := simnet.MinimalAdaptive(hb, hb.Distance)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := simnet.RunAdaptive(a, simnet.Config{
			Cycles: 500, Rate: 0.03, Pattern: simnet.HotSpot, Seed: 9,
		})
		if err != nil || res.Delivered == 0 {
			b.Fatal(err)
		}
	}
}

// BenchmarkCubeTree times the recursive tree-in-hypercube construction
// behind Theorem 4.
func BenchmarkCubeTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := embed.CubeTree(12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBisection times the layout cuts on HB(3,6).
func BenchmarkBisection(b *testing.B) {
	hb := core.MustNew(3, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := layout.BisectionUpperBound(hb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWormhole (E-W1) runs the flit-level simulator on HB(2,3)
// with the dateline VC policy at heavy load.
func BenchmarkWormhole(b *testing.B) {
	hb := core.MustNew(2, 3)
	policy := wormhole.HBDateline(hb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := wormhole.Run(hb, wormhole.Config{
			Cycles: 500, Rate: 0.2, PacketLen: 4, BufDepth: 1, VCs: 2,
			Policy: policy, Route: hb.Route, Seed: 11,
		})
		if err != nil || res.Deadlocked {
			b.Fatalf("err %v deadlocked %v", err, res.Deadlocked)
		}
	}
}

// BenchmarkScan times the two-pass tree prefix on HB(3,4).
func BenchmarkScan(b *testing.B) {
	hb := core.MustNew(3, 4)
	vals := make([]int64, hb.Order())
	for i := range vals {
		vals[i] = int64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := collectives.Scan(hb, 0, vals, collectives.Sum); err != nil {
			b.Fatal(err)
		}
	}
}
