// Ablation benchmarks: each pair quantifies a design choice called out
// in DESIGN.md by benchmarking the chosen implementation against the
// naive alternative it replaced.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/butterfly"
	"repro/internal/core"
	"repro/internal/faultroute"
	"repro/internal/graph"
)

// Ablation 1 — butterfly distance: the analytic covering-walk solver
// versus a BFS per query. The analytic form is what makes per-packet
// routing viable on large instances.
func BenchmarkAblationButterflyDistance(b *testing.B) {
	bf := butterfly.MustNew(8)
	rng := rand.New(rand.NewSource(8))
	pairs := make([][2]int, 256)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(bf.Order()), rng.Intn(bf.Order())}
	}
	b.Run("analytic", func(b *testing.B) {
		sum := 0
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			sum += bf.Distance(p[0], p[1])
		}
		_ = sum
	})
	b.Run("bfs", func(b *testing.B) {
		d := bf.Dense()
		sum := 0
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			sum += int(graph.BFS(d, p[0], nil)[p[1]])
		}
		_ = sum
	})
}

// Ablation 2 — Theorem 5 case 1: the paper's structured construction
// versus generic Menger max-flow for the same (same-butterfly-label)
// pairs. The structured paths are label arithmetic; the flow needs the
// materialised graph.
func BenchmarkAblationDisjointPathsCase1(b *testing.B) {
	hb := core.MustNew(3, 4)
	d := hb.Dense()
	rng := rand.New(rand.NewSource(34))
	type pair struct{ u, v int }
	pairs := make([]pair, 128)
	for i := range pairs {
		bl := rng.Intn(hb.Butterfly().Order())
		hu, hv := rng.Intn(8), rng.Intn(8)
		for hu == hv {
			hv = rng.Intn(8)
		}
		pairs[i] = pair{hb.Encode(hu, bl), hb.Encode(hv, bl)}
	}
	b.Run("constructive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			paths, err := hb.DisjointPaths(p.u, p.v)
			if err != nil || len(paths) != hb.Degree() {
				b.Fatal(err)
			}
		}
	})
	b.Run("maxflow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			paths, err := graph.DisjointPaths(d, p.u, p.v, hb.Degree())
			if err != nil || len(paths) != hb.Degree() {
				b.Fatalf("flow found %d paths: %v", len(paths), err)
			}
		}
	})
}

// Ablation 3 — fault routing: the strategy ladder (optimal, then
// greedy, then disjoint paths) versus going straight to BFS on the
// faulted graph. The ladder wins because most routes never see a fault.
func BenchmarkAblationFaultRouting(b *testing.B) {
	hb := core.MustNew(2, 5)
	rng := rand.New(rand.NewSource(25))
	faults := rng.Perm(hb.Order())[:hb.M()+3]
	r, err := faultroute.New(hb, faults)
	if err != nil {
		b.Fatal(err)
	}
	excluded := make([]bool, hb.Order())
	for _, f := range faults {
		excluded[f] = true
	}
	pairs := make([][2]int, 256)
	for i := range pairs {
		u, v := rng.Intn(hb.Order()), rng.Intn(hb.Order())
		for u == v || excluded[u] || excluded[v] {
			u, v = rng.Intn(hb.Order()), rng.Intn(hb.Order())
		}
		pairs[i] = [2]int{u, v}
	}
	b.Run("ladder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if _, err := r.Route(p[0], p[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bfs-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if graph.BFSPath(hb, p[0], p[1], excluded) == nil {
				b.Fatal("unreachable")
			}
		}
	})
}

// Ablation 4 — diameter: vertex transitivity (one BFS) versus the
// general all-sources sweep, sequential and parallel. Using symmetry is
// what keeps Figure 2's HB column instant while the HD columns need the
// parallel sweep.
func BenchmarkAblationDiameter(b *testing.B) {
	hb := core.MustNew(2, 5)
	d := hb.Dense()
	b.Run("single-bfs-symmetric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ecc, _ := graph.Eccentricity(d, 0); ecc != hb.DiameterFormula() {
				b.Fatal("wrong diameter")
			}
		}
	})
	b.Run("all-sources-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if graph.Diameter(d) != hb.DiameterFormula() {
				b.Fatal("wrong diameter")
			}
		}
	})
	b.Run("all-sources-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if graph.DiameterParallel(d, 0) != hb.DiameterFormula() {
				b.Fatal("wrong diameter")
			}
		}
	})
}
