package debruijn

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestNewBounds(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("accepted n = 1")
	}
	if _, err := New(31); err == nil {
		t.Error("accepted n = 31")
	}
}

func TestStructureDegenerate(t *testing.T) {
	// D_2 is degenerate: 01 and 10 are each other's images under several
	// shifts at once, so the maximum simple degree drops to 3.
	g := MustNew(2)
	if err := graph.CheckUndirected(g); err != nil {
		t.Fatal(err)
	}
	st := graph.Degrees(g)
	if st.Max != 3 || st.Min != 2 {
		t.Fatalf("D_2 degrees: %+v", st)
	}
}

func TestStructure(t *testing.T) {
	for n := 3; n <= 8; n++ {
		g := MustNew(n)
		if g.Order() != 1<<uint(n) {
			t.Fatalf("n=%d: order %d", n, g.Order())
		}
		if err := graph.CheckUndirected(g); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		st := graph.Degrees(g)
		if st.Max != 4 {
			t.Fatalf("n=%d: max degree %d", n, st.Max)
		}
		if st.Min != 2 {
			t.Fatalf("n=%d: min degree %d (loop vertices should drop to 2)", n, st.Min)
		}
		if st.Regular {
			t.Fatalf("n=%d: de Bruijn should be irregular", n)
		}
		// The two loop vertices have degree 2.
		if st.Histogram[2] != 2 {
			t.Fatalf("n=%d: degree-2 count %d, want 2", n, st.Histogram[2])
		}
	}
}

// Diameter and connectivity formulas are asserted by the conformance
// suite in conformance_test.go.

// TestRouteValid checks that Route produces a genuine walk to the right
// destination within the n-step bound, and that it never beats BFS.
func TestRouteValid(t *testing.T) {
	for n := 2; n <= 6; n++ {
		g := MustNew(n)
		d := graph.Build(g)
		for u := 0; u < g.Order(); u++ {
			dist := graph.BFS(d, u, nil)
			for v := 0; v < g.Order(); v++ {
				p := g.Route(u, v)
				if p[0] != u || p[len(p)-1] != v {
					t.Fatalf("n=%d: route %d->%d endpoints %v", n, u, v, p)
				}
				if len(p)-1 > g.RouteLengthBound() {
					t.Fatalf("n=%d: route %d->%d too long: %d", n, u, v, len(p)-1)
				}
				if len(p)-1 < int(dist[v]) {
					t.Fatalf("n=%d: route %d->%d shorter than BFS?!", n, u, v)
				}
				for i := 1; i < len(p); i++ {
					if !d.HasEdge(p[i-1], p[i]) {
						t.Fatalf("n=%d: route %d->%d uses non-edge %d-%d", n, u, v, p[i-1], p[i])
					}
				}
			}
		}
	}
}

func TestRouteRandomLarge(t *testing.T) {
	g := MustNew(16)
	rng := rand.New(rand.NewSource(16))
	var buf []int
	for trial := 0; trial < 5000; trial++ {
		u, v := rng.Intn(g.Order()), rng.Intn(g.Order())
		p := g.Route(u, v)
		if p[0] != u || p[len(p)-1] != v || len(p)-1 > 16 {
			t.Fatalf("route %d->%d = %v", u, v, p)
		}
		for i := 1; i < len(p); i++ {
			buf = g.AppendNeighbors(p[i-1], buf[:0])
			ok := false
			for _, w := range buf {
				if w == p[i] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("non-edge %d-%d", p[i-1], p[i])
			}
		}
	}
}

func TestVertexLabel(t *testing.T) {
	g := MustNew(4)
	if got := g.VertexLabel(5); got != "0101" {
		t.Errorf("label = %q", got)
	}
}
