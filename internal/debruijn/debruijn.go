// Package debruijn implements the binary de Bruijn graph D_n, the
// second factor of the hyper-deBruijn baseline HD(m,n) = H_m x D_n that
// the paper compares against (reference [1], Ganesan & Pradhan).
//
// D_n has 2^n vertices labelled by n-bit words; x is adjacent to its
// left shifts (2x+b mod 2^n) and right shifts (floor(x/2) + b·2^(n-1)).
// As an interconnection network, self-loops (at 00…0 and 11…1) and
// coincident shift images are dropped, which is exactly what makes D_n —
// and hence HD(m,n) — irregular: most vertices have degree 4, but the
// two loop vertices have degree 2 and the vertices 0101…/1010… have
// degree 3.
package debruijn

import (
	"fmt"

	"repro/internal/bitvec"
)

// Graph is the binary de Bruijn graph D_n.
type Graph struct {
	n    int
	mask uint64
}

// New returns D_n for 2 <= n <= 30.
func New(n int) (*Graph, error) {
	if n < 2 || n > 30 {
		return nil, fmt.Errorf("debruijn: dimension %d out of range [2,30]", n)
	}
	return &Graph{n: n, mask: bitvec.Mask(n)}, nil
}

// MustNew is New for known-good dimensions; it panics on error.
func MustNew(n int) *Graph {
	g, err := New(n)
	if err != nil {
		panic(err)
	}
	return g
}

// Dim returns n.
func (g *Graph) Dim() int { return g.n }

// Order returns 2^n.
func (g *Graph) Order() int { return 1 << uint(g.n) }

// DiameterFormula returns n, the diameter of D_n.
func (g *Graph) DiameterFormula() int { return g.n }

// ConnectivityFormula returns 2: removing the two neighbors of a
// degree-2 loop vertex disconnects it, and D_n is known to be
// 2-connected.
func (g *Graph) ConnectivityFormula() int { return 2 }

// rawNeighbors lists the four shift images of v, which may repeat or
// equal v itself.
func (g *Graph) rawNeighbors(v int) [4]int {
	x := uint64(v)
	return [4]int{
		int((x << 1) & g.mask),     // append 0
		int((x<<1 | 1) & g.mask),   // append 1
		int(x >> 1),                // prepend 0
		int(x>>1 | 1<<uint(g.n-1)), // prepend 1
	}
}

// AppendNeighbors implements graph.Graph, emitting the simple-graph
// neighborhood: self-loops dropped and coincident shift images deduped.
func (g *Graph) AppendNeighbors(v int, buf []int) []int {
	raw := g.rawNeighbors(v)
	start := len(buf)
outer:
	for _, w := range raw {
		if w == v {
			continue
		}
		for _, prev := range buf[start:] {
			if prev == w {
				continue outer
			}
		}
		buf = append(buf, w)
	}
	return buf
}

// VertexLabel renders v as its n-bit word.
func (g *Graph) VertexLabel(v int) string { return bitvec.String(uint64(v), g.n) }

// overlapLeft returns the smallest k such that v is reachable from u by
// k left shifts: the low n-k bits of u must equal the high n-k bits of v.
func (g *Graph) overlapLeft(u, v int) int {
	for k := 0; k <= g.n; k++ {
		if uint64(u)&bitvec.Mask(g.n-k) == uint64(v)>>uint(k) {
			return k
		}
	}
	return g.n
}

// overlapRight is the mirror: smallest k such that v is reachable from u
// by k right shifts.
func (g *Graph) overlapRight(u, v int) int {
	for k := 0; k <= g.n; k++ {
		if uint64(u)>>uint(k) == uint64(v)&bitvec.Mask(g.n-k) {
			return k
		}
	}
	return g.n
}

// Route returns a u-v walk of length at most n using shifts in a single
// direction, choosing the direction with the larger label overlap. This
// is the standard de Bruijn routing; it is not always a shortest path
// (optimal de Bruijn routing is NP-hard in general formulations and the
// paper cites HD routing as "relatively complex"), but it is within the
// n-step bound that gives HD its m+n diameter.
func (g *Graph) Route(u, v int) []int {
	kl := g.overlapLeft(u, v)
	kr := g.overlapRight(u, v)
	path := []int{u}
	cur := uint64(u)
	step := func(next uint64) {
		if next != cur { // shifting 00…0 or 11…1 onto itself is a no-op
			cur = next
			path = append(path, int(cur))
		}
	}
	if kl <= kr {
		for i := kl - 1; i >= 0; i-- {
			b := (uint64(v) >> uint(i)) & 1
			step((cur<<1 | b) & g.mask)
		}
	} else {
		for i := kr - 1; i >= 0; i-- {
			b := (uint64(v) >> uint(g.n-1-i)) & 1
			step(cur>>1 | b<<uint(g.n-1))
		}
	}
	return path
}

// RouteLengthBound returns n, the worst-case length of Route.
func (g *Graph) RouteLengthBound() int { return g.n }
