package debruijn_test

import (
	"testing"

	"repro/internal/conformance"
)

// TestConformance registers the de Bruijn graph D_n with the
// repository-wide invariant suite. D_n claims irregular degrees [2,4],
// diameter n, connectivity 2 and only n-bounded (non-optimal) routing —
// the suite checks exactly that and skips the Cayley/optimality
// invariants with an explanation.
func TestConformance(t *testing.T) {
	conformance.Suite(t,
		conformance.DeBruijn(3),
		conformance.DeBruijn(4),
		conformance.DeBruijn(6),
	)
}
