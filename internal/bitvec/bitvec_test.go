package bitvec

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		n    int
		want Word
	}{
		{0, 0},
		{1, 1},
		{2, 3},
		{8, 0xFF},
		{63, ^Word(0) >> 1},
		{64, ^Word(0)},
	}
	for _, c := range cases {
		if got := Mask(c.n); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

func TestMaskPanics(t *testing.T) {
	for _, n := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Mask(%d) did not panic", n)
				}
			}()
			Mask(n)
		}()
	}
}

func TestBitSetFlip(t *testing.T) {
	var w Word
	w = SetBit(w, 3, true)
	if w != 8 {
		t.Fatalf("SetBit(0,3,true) = %d, want 8", w)
	}
	if !Bit(w, 3) || Bit(w, 2) {
		t.Fatalf("Bit readback wrong for %#x", w)
	}
	w = FlipBit(w, 3)
	if w != 0 {
		t.Fatalf("FlipBit did not clear: %#x", w)
	}
	w = SetBit(w, 0, true)
	w = SetBit(w, 0, false)
	if w != 0 {
		t.Fatalf("SetBit(...,false) failed: %#x", w)
	}
}

func TestHammingAndDiffBits(t *testing.T) {
	a, b := Word(0b1011), Word(0b0001)
	if h := Hamming(a, b); h != 2 {
		t.Errorf("Hamming = %d, want 2", h)
	}
	diff := DiffBits(a, b, 4)
	if len(diff) != 2 || diff[0] != 1 || diff[1] != 3 {
		t.Errorf("DiffBits = %v, want [1 3]", diff)
	}
	// Width restriction drops out-of-range differences.
	diff = DiffBits(a, b, 2)
	if len(diff) != 1 || diff[0] != 1 {
		t.Errorf("DiffBits width 2 = %v, want [1]", diff)
	}
}

func TestRotations(t *testing.T) {
	w := Word(0b0011)
	if got := RotL(w, 4, 1); got != 0b0110 {
		t.Errorf("RotL = %04b, want 0110", got)
	}
	if got := RotL(w, 4, 3); got != 0b1001 {
		t.Errorf("RotL by 3 = %04b, want 1001", got)
	}
	if got := RotR(w, 4, 1); got != 0b1001 {
		t.Errorf("RotR = %04b, want 1001", got)
	}
	if got := RotL(w, 4, 4); got != w {
		t.Errorf("full rotation changed value: %04b", got)
	}
	if got := RotL(w, 4, -1); got != RotR(w, 4, 1) {
		t.Errorf("negative RotL mismatch: %04b", got)
	}
}

func TestRotationRoundTrip(t *testing.T) {
	f := func(w Word, k uint8) bool {
		width := 13
		w &= Mask(width)
		kk := int(k)
		return RotR(RotL(w, width, kk), width, kk) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverse(t *testing.T) {
	if got := Reverse(0b0010, 4); got != 0b0100 {
		t.Errorf("Reverse = %04b, want 0100", got)
	}
	f := func(w Word) bool {
		width := 17
		w &= Mask(width)
		return Reverse(Reverse(w, width), width) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringParse(t *testing.T) {
	s := String(0b1010, 6)
	if s != "001010" {
		t.Fatalf("String = %q, want 001010", s)
	}
	w, err := Parse(s)
	if err != nil || w != 0b1010 {
		t.Fatalf("Parse(%q) = %d, %v", s, w, err)
	}
	if _, err := Parse("10x1"); err == nil {
		t.Error("Parse accepted invalid character")
	}
	if _, err := Parse(String(0, 64) + "1"); err == nil {
		t.Error("Parse accepted 65-bit string")
	}
}

func TestGrayAdjacency(t *testing.T) {
	for width := 1; width <= 10; width++ {
		n := 1 << uint(width)
		seen := make(map[Word]bool, n)
		for i := 0; i < n; i++ {
			g := Gray(Word(i))
			if seen[g] {
				t.Fatalf("width %d: duplicate codeword %d", width, g)
			}
			seen[g] = true
			next := Gray(Word((i + 1) % n))
			if bits.OnesCount64(g^next) != 1 {
				t.Fatalf("width %d: Gray(%d) and next differ in %d bits", width, i, bits.OnesCount64(g^next))
			}
		}
	}
}

func TestGrayInverse(t *testing.T) {
	f := func(i Word) bool {
		i &= Mask(40)
		return GrayInverse(Gray(i)) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrayCycle(t *testing.T) {
	c := GrayCycle(4)
	if len(c) != 16 {
		t.Fatalf("GrayCycle(4) length = %d", len(c))
	}
	for i, g := range c {
		next := c[(i+1)%len(c)]
		if Hamming(g, next) != 1 {
			t.Fatalf("GrayCycle step %d: Hamming %d", i, Hamming(g, next))
		}
	}
}

func TestEvenCycleInCube(t *testing.T) {
	for width := 2; width <= 6; width++ {
		for k := 4; k <= 1<<uint(width); k += 2 {
			cyc, err := EvenCycleInCube(width, k)
			if err != nil {
				t.Fatalf("EvenCycleInCube(%d,%d): %v", width, k, err)
			}
			if len(cyc) != k {
				t.Fatalf("cycle length %d, want %d", len(cyc), k)
			}
			seen := make(map[Word]bool, k)
			for i, v := range cyc {
				if v >= Word(1)<<uint(width) {
					t.Fatalf("vertex %d out of H_%d", v, width)
				}
				if seen[v] {
					t.Fatalf("duplicate vertex %d in cycle (width %d, k %d)", v, width, k)
				}
				seen[v] = true
				if Hamming(v, cyc[(i+1)%k]) != 1 {
					t.Fatalf("non-edge step at %d (width %d, k %d)", i, width, k)
				}
			}
		}
	}
}

func TestEvenCycleInCubeErrors(t *testing.T) {
	if _, err := EvenCycleInCube(1, 4); err == nil {
		t.Error("accepted width 1")
	}
	if _, err := EvenCycleInCube(3, 5); err == nil {
		t.Error("accepted odd k")
	}
	if _, err := EvenCycleInCube(3, 2); err == nil {
		t.Error("accepted k=2")
	}
	if _, err := EvenCycleInCube(3, 10); err == nil {
		t.Error("accepted k > 2^width")
	}
}
