package bitvec

import (
	"fmt"
	"math/bits"
)

// Set is a bit-packed set over the universe [0, Len()). It is the
// frontier/visited representation of the direction-optimizing BFS kernel
// in internal/graph: membership tests and inserts are single-word
// operations, and whole-set operations (clear, copy) run a word at a
// time, so a frontier over 10^6 vertices costs ~16 KB and streams
// through cache.
//
// The zero value is an empty set over an empty universe; Reset gives it
// a size. Methods do not bounds-check in release-critical paths beyond
// what slice indexing provides.
type Set struct {
	words []Word
	n     int
}

// NewSet returns an empty set over [0, n).
func NewSet(n int) *Set {
	s := &Set{}
	s.Reset(n)
	return s
}

// Len returns the size of the universe.
func (s *Set) Len() int { return s.n }

// Reset resizes the universe to [0, n) and empties the set. The backing
// array is reused when large enough, so steady-state Resets allocate
// nothing.
func (s *Set) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: Set size %d negative", n))
	}
	w := (n + 63) / 64
	if cap(s.words) < w {
		s.words = make([]Word, w)
	} else {
		s.words = s.words[:w]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.n = n
}

// ClearAll empties the set without changing the universe.
func (s *Set) ClearAll() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool { return s.words[i>>6]>>(uint(i)&63)&1 == 1 }

// Add inserts i.
func (s *Set) Add(i int) { s.words[i>>6] |= Word(1) << (uint(i) & 63) }

// Remove deletes i.
func (s *Set) Remove(i int) { s.words[i>>6] &^= Word(1) << (uint(i) & 63) }

// Count returns the number of elements.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CopyFrom makes s an exact copy of o (universe and members), reusing
// s's backing array when possible.
func (s *Set) CopyFrom(o *Set) {
	if cap(s.words) < len(o.words) {
		s.words = make([]Word, len(o.words))
	} else {
		s.words = s.words[:len(o.words)]
	}
	copy(s.words, o.words)
	s.n = o.n
}

// Words exposes the backing words (bit i of word w is element 64*w+i).
// The slice aliases internal storage: callers may read words or set bits
// of valid elements but must not append or hold the slice across a
// Reset. Bits at positions >= Len() in the last word are always zero.
func (s *Set) Words() []Word { return s.words }

// AppendIndices appends the elements of s to buf in ascending order and
// returns the extended slice.
func (s *Set) AppendIndices(buf []int32) []int32 {
	for wi, w := range s.words {
		base := int32(wi << 6)
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= Word(1) << uint(b)
			buf = append(buf, base+int32(b))
		}
	}
	return buf
}
