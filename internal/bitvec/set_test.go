package bitvec

import (
	"math/rand"
	"testing"
)

// TestSetAgainstBoolSlice differentially checks every Set operation
// against a plain []bool model across randomized operation sequences
// and universe sizes that straddle word boundaries.
func TestSetAgainstBoolSlice(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 200} {
		s := NewSet(n)
		model := make([]bool, n)
		rng := rand.New(rand.NewSource(int64(n + 1)))
		for op := 0; op < 500 && n > 0; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Add(i)
				model[i] = true
			case 1:
				s.Remove(i)
				model[i] = false
			case 2:
				if s.Has(i) != model[i] {
					t.Fatalf("n=%d: Has(%d) = %v, model %v", n, i, s.Has(i), model[i])
				}
			}
		}
		count := 0
		var wantIdx []int32
		for i, x := range model {
			if x {
				count++
				wantIdx = append(wantIdx, int32(i))
			}
		}
		if s.Count() != count {
			t.Fatalf("n=%d: Count = %d, model %d", n, s.Count(), count)
		}
		got := s.AppendIndices(nil)
		if len(got) != len(wantIdx) {
			t.Fatalf("n=%d: AppendIndices %v, model %v", n, got, wantIdx)
		}
		for i := range wantIdx {
			if got[i] != wantIdx[i] {
				t.Fatalf("n=%d: AppendIndices[%d] = %d, model %d", n, i, got[i], wantIdx[i])
			}
		}
	}
}

// TestSetResetReuse checks that Reset empties the set, keeps tail bits
// of the last word zero, and reuses backing storage when shrinking.
func TestSetResetReuse(t *testing.T) {
	s := NewSet(130)
	for i := 0; i < 130; i++ {
		s.Add(i)
	}
	s.Reset(70)
	if s.Len() != 70 || s.Count() != 0 {
		t.Fatalf("after Reset(70): Len %d Count %d", s.Len(), s.Count())
	}
	s.Add(69)
	for _, tail := range s.Words() {
		_ = tail
	}
	// Bits beyond Len in the last word must be zero so word-level
	// consumers (kernel fixup loops) never see phantom elements.
	if w := s.Words()[1]; w != 1<<5 {
		t.Fatalf("tail word %b, want only bit 5", w)
	}
	s.ClearAll()
	if s.Count() != 0 {
		t.Fatalf("ClearAll left %d elements", s.Count())
	}
}

// TestSetCopyFrom checks CopyFrom snapshots universe and members.
func TestSetCopyFrom(t *testing.T) {
	a := NewSet(100)
	a.Add(3)
	a.Add(77)
	b := NewSet(2)
	b.CopyFrom(a)
	if b.Len() != 100 || !b.Has(3) || !b.Has(77) || b.Count() != 2 {
		t.Fatalf("CopyFrom: Len %d Count %d", b.Len(), b.Count())
	}
	b.Add(50)
	if a.Has(50) {
		t.Fatal("CopyFrom aliased storage")
	}
}

// TestSetAppendIndicesReusesBuffer checks the append contract.
func TestSetAppendIndicesReusesBuffer(t *testing.T) {
	s := NewSet(80)
	s.Add(0)
	s.Add(64)
	buf := make([]int32, 0, 8)
	got := s.AppendIndices(buf[:0])
	if len(got) != 2 || got[0] != 0 || got[1] != 64 {
		t.Fatalf("AppendIndices = %v", got)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("AppendIndices reallocated despite sufficient capacity")
	}
}

// TestSetNegativePanics pins the Reset contract.
func TestSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reset(-1) did not panic")
		}
	}()
	NewSet(-1)
}
