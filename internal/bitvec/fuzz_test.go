package bitvec

import "testing"

// FuzzParseString checks the render/parse round trip and rotation
// inverses on arbitrary words.
func FuzzParseString(f *testing.F) {
	f.Add(uint64(0b1010), 7, 3)
	f.Fuzz(func(t *testing.T, w uint64, width, k int) {
		if width < 1 || width > 64 {
			t.Skip()
		}
		w &= Mask(width)
		s := String(w, width)
		if len(s) != width {
			t.Fatalf("String length %d, want %d", len(s), width)
		}
		got, err := Parse(s)
		if err != nil || got != w {
			t.Fatalf("Parse(String(%#x)) = %#x, %v", w, got, err)
		}
		k %= 4 * width
		if RotR(RotL(w, width, k), width, k) != w {
			t.Fatalf("rotation round trip failed for %#x width %d k %d", w, width, k)
		}
	})
}
