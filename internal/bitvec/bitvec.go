// Package bitvec provides small fixed-width bit-vector utilities used for
// node labels throughout the repository.
//
// Hypercube labels, butterfly complementation indices (CI, Definition 2 of
// the paper) and de Bruijn words are all bit strings of width at most 64;
// this package centralises the masking, Hamming-distance and Gray-code
// arithmetic on them so that topology packages stay free of bit fiddling.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Word is a bit vector of up to 64 bits. Bit i is the value (w >> i) & 1.
// The logical width is carried by the caller; operations that depend on a
// width take it as an explicit argument.
type Word = uint64

// Mask returns a Word with the low n bits set. Mask(0) == 0 and
// Mask(64) == all ones. It panics if n is negative or greater than 64.
func Mask(n int) Word {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitvec: Mask width %d out of range [0,64]", n))
	}
	if n == 64 {
		return ^Word(0)
	}
	return (Word(1) << uint(n)) - 1
}

// Bit reports whether bit i of w is set.
func Bit(w Word, i int) bool { return (w>>uint(i))&1 == 1 }

// SetBit returns w with bit i set to v.
func SetBit(w Word, i int, v bool) Word {
	if v {
		return w | (Word(1) << uint(i))
	}
	return w &^ (Word(1) << uint(i))
}

// FlipBit returns w with bit i complemented.
func FlipBit(w Word, i int) Word { return w ^ (Word(1) << uint(i)) }

// OnesCount returns the number of set bits in w.
func OnesCount(w Word) int { return bits.OnesCount64(w) }

// Hamming returns the Hamming distance between a and b.
func Hamming(a, b Word) int { return bits.OnesCount64(a ^ b) }

// DiffBits returns the positions (ascending) at which a and b differ,
// restricted to the low width bits.
func DiffBits(a, b Word, width int) []int {
	d := (a ^ b) & Mask(width)
	out := make([]int, 0, bits.OnesCount64(d))
	for d != 0 {
		i := bits.TrailingZeros64(d)
		out = append(out, i)
		d &^= Word(1) << uint(i)
	}
	return out
}

// RotL rotates the low width bits of w left by k (bit width-1 moves toward
// higher significance and wraps to bit 0). Bits above width must be zero
// and remain zero.
func RotL(w Word, width, k int) Word {
	if width <= 0 {
		return 0
	}
	k = ((k % width) + width) % width
	if k == 0 {
		return w & Mask(width)
	}
	w &= Mask(width)
	return ((w << uint(k)) | (w >> uint(width-k))) & Mask(width)
}

// RotR rotates the low width bits of w right by k.
func RotR(w Word, width, k int) Word { return RotL(w, width, -k) }

// Reverse returns the low width bits of w in reversed order.
func Reverse(w Word, width int) Word {
	var r Word
	for i := 0; i < width; i++ {
		r <<= 1
		r |= (w >> uint(i)) & 1
	}
	return r
}

// String renders the low width bits of w most-significant-first, matching
// the paper's x_{m-1} … x_0 label convention.
func String(w Word, width int) string {
	var sb strings.Builder
	sb.Grow(width)
	for i := width - 1; i >= 0; i-- {
		if Bit(w, i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Parse parses a most-significant-first binary string into a Word.
func Parse(s string) (Word, error) {
	if len(s) > 64 {
		return 0, fmt.Errorf("bitvec: string %q longer than 64 bits", s)
	}
	var w Word
	for _, c := range s {
		w <<= 1
		switch c {
		case '0':
		case '1':
			w |= 1
		default:
			return 0, fmt.Errorf("bitvec: invalid bit character %q in %q", c, s)
		}
	}
	return w, nil
}

// Gray returns the i-th codeword of the standard reflected binary Gray
// code: consecutive codewords differ in exactly one bit, and Gray(0) == 0.
func Gray(i Word) Word { return i ^ (i >> 1) }

// GrayInverse returns the index i such that Gray(i) == g.
func GrayInverse(g Word) Word {
	var i Word
	for ; g != 0; g >>= 1 {
		i ^= g
	}
	return i
}

// GrayCycle returns the cyclic sequence of 2^width codewords of the
// reflected Gray code over width bits. Consecutive entries (including the
// wrap-around from last to first) differ in exactly one bit, so the
// sequence traces a Hamiltonian cycle of the hypercube H_width.
func GrayCycle(width int) []Word {
	if width < 0 || width > 30 {
		panic(fmt.Sprintf("bitvec: GrayCycle width %d out of range [0,30]", width))
	}
	n := 1 << uint(width)
	out := make([]Word, n)
	for i := 0; i < n; i++ {
		out[i] = Gray(Word(i))
	}
	return out
}

// EvenCycleInCube returns a cyclic vertex sequence of length k through
// distinct vertices of the hypercube H_width such that consecutive
// vertices (cyclically) differ in exactly one bit. k must be even and
// 4 <= k <= 2^width (Remark 9 of the paper; construction follows the
// standard reflected-Gray-code truncation).
//
// Construction: split k = 2a with 2 <= a <= 2^(width-1). Take the first a
// codewords of the Gray code on width-1 bits as one rail, and the same a
// codewords reversed with the top bit set as the return rail. Rail
// endpoints differ only in the top bit, interior steps differ in one low
// bit, so the whole cycle is a valid induced cycle of H_width.
func EvenCycleInCube(width, k int) ([]Word, error) {
	if width < 2 {
		return nil, fmt.Errorf("bitvec: hypercube H_%d has no cycles", width)
	}
	if k%2 != 0 || k < 4 || k > 1<<uint(width) {
		return nil, fmt.Errorf("bitvec: no cycle of length %d in H_%d (need even k in [4, %d])", k, width, 1<<uint(width))
	}
	a := k / 2
	top := Word(1) << uint(width-1)
	cycle := make([]Word, 0, k)
	for i := 0; i < a; i++ {
		cycle = append(cycle, Gray(Word(i)))
	}
	for i := a - 1; i >= 0; i-- {
		cycle = append(cycle, Gray(Word(i))|top)
	}
	return cycle, nil
}
