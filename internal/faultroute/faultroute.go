// Package faultroute implements routing in HB(m,n) in the presence of
// faulty nodes (Remark 10): because Theorem 5 guarantees m+4 internally
// vertex-disjoint paths between any two nodes, any set of at most m+3
// node faults (excluding the endpoints) leaves at least one of them
// intact, so delivery can always succeed while the network is within its
// fault-tolerance bound — the "maximal fault tolerance" the paper is
// named for.
package faultroute

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Router routes around a fixed set of faulty nodes.
type Router struct {
	hb     *core.HyperButterfly
	faulty []bool
	nfault int
	last   string // strategy of the most recent successful Route

	// Stats counts which strategy satisfied each Route call; useful for
	// the E-R10 experiment.
	Stats struct {
		Optimal  int // the fault-free shortest path worked unmodified
		Greedy   int // greedy detour routing succeeded
		Disjoint int // fell back to scanning the m+4 disjoint paths
		BFS      int // last resort: global search (beyond m+3 faults)
	}
}

// New returns a Router for hb with the given faulty nodes.
func New(hb *core.HyperButterfly, faults []core.Node) (*Router, error) {
	r := &Router{hb: hb, faulty: make([]bool, hb.Order())}
	for _, f := range faults {
		if f < 0 || f >= hb.Order() {
			return nil, fmt.Errorf("faultroute: fault %d out of range [0,%d)", f, hb.Order())
		}
		if !r.faulty[f] {
			r.faulty[f] = true
			r.nfault++
		}
	}
	return r, nil
}

// Route is the one-shot form of Router.Route for callers that bring a
// fresh fault set per query (the conformance harness, the hbd
// /faultroute endpoint): build a router, route once, report the
// strategy that delivered.
func Route(hb *core.HyperButterfly, faults []core.Node, u, v core.Node) ([]core.Node, string, error) {
	r, err := New(hb, faults)
	if err != nil {
		return nil, "", err
	}
	path, err := r.Route(u, v)
	if err != nil {
		return nil, "", err
	}
	return path, r.LastStrategy(), nil
}

// LastStrategy names the strategy that satisfied the most recent
// successful Route call ("optimal", "greedy", "disjoint", "bfs", or ""
// before any call).
func (r *Router) LastStrategy() string { return r.last }

// FaultCount returns the number of distinct faulty nodes.
func (r *Router) FaultCount() int { return r.nfault }

// Faulty reports whether v is faulty.
func (r *Router) Faulty(v core.Node) bool { return r.faulty[v] }

// WithinGuarantee reports whether the fault count is at most m+3, the
// bound under which Theorem 5 guarantees delivery between any two
// non-faulty nodes.
func (r *Router) WithinGuarantee() bool { return r.nfault <= r.hb.M()+3 }

// pathClear reports whether a path avoids every fault (endpoints
// included).
func (r *Router) pathClear(path []core.Node) bool {
	for _, v := range path {
		if r.faulty[v] {
			return false
		}
	}
	return true
}

// Route returns a fault-free path from u to v, trying strategies in
// increasing order of cost:
//
//  1. the optimal two-phase route of Section 3, if it happens to avoid
//     all faults;
//  2. greedy adaptive routing (always step to a non-faulty neighbor
//     closest to v, with a bounded misroute allowance);
//  3. the first fault-free path among the m+4 disjoint paths of
//     Theorem 5 — guaranteed to exist while faults <= m+3;
//  4. plain BFS avoiding faults, for operation beyond the guarantee.
//
// It fails only if u or v is faulty or the faults actually disconnect
// the pair (possible only with more than m+3 faults).
func (r *Router) Route(u, v core.Node) ([]core.Node, error) {
	if r.faulty[u] || r.faulty[v] {
		return nil, fmt.Errorf("faultroute: endpoint faulty (u=%v, v=%v)", r.faulty[u], r.faulty[v])
	}
	if u == v {
		r.last = "optimal"
		return []core.Node{u}, nil
	}
	if p := r.hb.Route(u, v); r.pathClear(p) {
		r.Stats.Optimal++
		r.last = "optimal"
		return p, nil
	}
	if p, ok := r.greedy(u, v); ok {
		r.Stats.Greedy++
		r.last = "greedy"
		return p, nil
	}
	if paths, err := r.hb.DisjointPaths(u, v); err == nil {
		for _, p := range paths {
			if r.pathClear(p) {
				r.Stats.Disjoint++
				r.last = "disjoint"
				return p, nil
			}
		}
	}
	if p := graph.BFSPath(r.hb, u, v, r.faulty); p != nil {
		r.Stats.BFS++
		r.last = "bfs"
		return p, nil
	}
	return nil, fmt.Errorf("faultroute: %d faults disconnect %d from %d", r.nfault, u, v)
}

// greedyBudget bounds the number of non-improving (misrouting) steps the
// greedy strategy may take before giving up.
const greedyBudget = 4

// greedy performs adaptive hop-by-hop routing: prefer the non-faulty,
// unvisited neighbor closest to v; allow a bounded number of
// non-improving steps. Cheap, local, and usually sufficient for small
// fault counts — but not guaranteed, hence the fallbacks in Route.
func (r *Router) greedy(u, v core.Node) ([]core.Node, bool) {
	visited := map[core.Node]bool{u: true}
	path := []core.Node{u}
	cur := u
	misroutes := 0
	var buf []int
	for cur != v {
		buf = r.hb.AppendNeighbors(cur, buf[:0])
		best, bestDist := -1, -1
		for _, w := range buf {
			if r.faulty[w] || visited[w] {
				continue
			}
			d := r.hb.Distance(w, v)
			if best == -1 || d < bestDist {
				best, bestDist = w, d
			}
		}
		if best == -1 {
			return nil, false // dead end
		}
		if bestDist >= r.hb.Distance(cur, v) {
			misroutes++
			if misroutes > greedyBudget {
				return nil, false
			}
		}
		visited[best] = true
		path = append(path, best)
		cur = best
	}
	return path, true
}

// Connected reports whether the fault-free part of the network is still
// connected. With at most m+3 faults it always is (Corollary 1).
func (r *Router) Connected() bool {
	return graph.IsConnected(r.hb, r.faulty)
}
