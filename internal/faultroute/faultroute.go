// Package faultroute implements routing in HB(m,n) in the presence of
// faulty nodes (Remark 10): because Theorem 5 guarantees m+4 internally
// vertex-disjoint paths between any two nodes, any set of at most m+3
// node faults (excluding the endpoints) leaves at least one of them
// intact, so delivery can always succeed while the network is within its
// fault-tolerance bound — the "maximal fault tolerance" the paper is
// named for.
//
// The router works against any core.Topology backend. Fault state is
// sparse (proportional to the fault count, not the order), and the only
// strategies that touch order-sized state — the BFS last resort and the
// exhaustive Connected check — are gated behind ExhaustiveMaxOrder, so a
// router over an implicit HB(10,10) stays within the Theorem 5 ladder
// and never allocates ten-million-entry masks.
package faultroute

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
)

// Router routes around a set of faulty nodes. The set is mutable:
// Fail and Recover adjust it incrementally, invalidating only the
// cached routes that actually depend on the changed node, so a
// long-lived router (the hbd /faultroute endpoint, the simulator's
// chaos rerouter) never rebuilds from scratch. All methods are safe
// for concurrent use; reads of the exported Stats field are only
// meaningful while no Route call is in flight.
type Router struct {
	hb core.Topology

	mu     sync.Mutex
	faulty map[core.Node]bool // sparse: only faulty nodes are present
	epoch  uint64             // bumps on every effective Fail/Recover
	last   string             // strategy of the most recent successful Route
	cache  map[pairKey]cachedRoute

	// Stats counts which strategy satisfied each Route call; useful for
	// the E-R10 experiment. Cache hits re-count the strategy that
	// originally produced the path.
	Stats struct {
		Optimal  int // the fault-free shortest path worked unmodified
		Greedy   int // greedy detour routing succeeded
		Disjoint int // fell back to scanning the m+4 disjoint paths
		BFS      int // last resort: global search (beyond m+3 faults)
	}
}

type pairKey struct{ u, v core.Node }

type cachedRoute struct {
	path     []core.Node
	strategy string
}

// routerCacheMax bounds the per-router route cache; beyond it the whole
// cache is reset (entries are cheap to recompute, the bound only stops
// unbounded growth under adversarial query streams).
const routerCacheMax = 4096

// ExhaustiveMaxOrder caps the instance order up to which the router
// will fall back to order-sized computations (the BFS strategy beyond
// the Theorem 5 guarantee, and the exhaustive Connected check). Above
// it those paths answer from the Corollary 1 guarantee instead.
const ExhaustiveMaxOrder = 1 << 21

// New returns a Router for any Topology backend with the given faulty
// nodes.
func New(hb core.Topology, faults []core.Node) (*Router, error) {
	r := &Router{hb: hb, faulty: make(map[core.Node]bool, len(faults)), cache: make(map[pairKey]cachedRoute)}
	for _, f := range faults {
		if !hb.ValidNode(f) {
			return nil, fmt.Errorf("faultroute: fault %d out of range [0,%d)", f, hb.Order())
		}
		r.faulty[f] = true
	}
	return r, nil
}

// Fail marks v faulty. Only cached routes whose path crosses v are
// invalidated; everything else stays warm. Returns whether the set
// changed.
func (r *Router) Fail(v core.Node) (bool, error) {
	if !r.hb.ValidNode(v) {
		return false, fmt.Errorf("faultroute: fault %d out of range [0,%d)", v, r.hb.Order())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.faulty[v] {
		return false, nil
	}
	r.faulty[v] = true
	r.epoch++
	for k, c := range r.cache {
		for _, x := range c.path {
			if x == v {
				delete(r.cache, k)
				break
			}
		}
	}
	return true, nil
}

// Recover clears v. Cached routes are never made invalid by a recovery
// (they avoid a superset of the remaining faults), but detoured entries
// may now have shorter alternatives, so every non-optimal entry is
// invalidated. Returns whether the set changed.
func (r *Router) Recover(v core.Node) (bool, error) {
	if !r.hb.ValidNode(v) {
		return false, fmt.Errorf("faultroute: fault %d out of range [0,%d)", v, r.hb.Order())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.faulty[v] {
		return false, nil
	}
	delete(r.faulty, v)
	r.epoch++
	for k, c := range r.cache {
		if c.strategy != "optimal" {
			delete(r.cache, k)
		}
	}
	return true, nil
}

// SetFaults moves the router to exactly the given fault set by diffing
// against the current one — the incremental path a caching server uses
// when consecutive requests carry similar fault sets. The diff costs
// O(|old| + |new|) regardless of the instance order.
func (r *Router) SetFaults(faults []core.Node) error {
	want := make(map[core.Node]bool, len(faults))
	for _, f := range faults {
		if !r.hb.ValidNode(f) {
			return fmt.Errorf("faultroute: fault %d out of range [0,%d)", f, r.hb.Order())
		}
		want[f] = true
	}
	r.mu.Lock()
	have := make([]core.Node, 0, len(r.faulty))
	for v := range r.faulty {
		have = append(have, v)
	}
	r.mu.Unlock()
	for _, v := range have {
		if !want[v] {
			if _, err := r.Recover(v); err != nil {
				return err
			}
		}
	}
	for v := range want {
		if _, err := r.Fail(v); err != nil {
			return err
		}
	}
	return nil
}

// FaultList returns the sorted faulty nodes.
func (r *Router) FaultList() []core.Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]core.Node, 0, len(r.faulty))
	for v := range r.faulty {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Epoch counts effective fault-set mutations since construction.
func (r *Router) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Route is the one-shot form of Router.Route for callers that bring a
// fresh fault set per query (the conformance harness, the hbd
// /faultroute endpoint): build a router, route once, report the
// strategy that delivered.
func Route(hb core.Topology, faults []core.Node, u, v core.Node) ([]core.Node, string, error) {
	r, err := New(hb, faults)
	if err != nil {
		return nil, "", err
	}
	path, err := r.Route(u, v)
	if err != nil {
		return nil, "", err
	}
	return path, r.LastStrategy(), nil
}

// LastStrategy names the strategy that satisfied the most recent
// successful Route call ("optimal", "greedy", "disjoint", "bfs", or ""
// before any call).
func (r *Router) LastStrategy() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// FaultCount returns the number of distinct faulty nodes.
func (r *Router) FaultCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.faulty)
}

// Faulty reports whether v is faulty.
func (r *Router) Faulty(v core.Node) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.faulty[v]
}

// WithinGuarantee reports whether the fault count is at most m+3, the
// bound under which Theorem 5 guarantees delivery between any two
// non-faulty nodes.
func (r *Router) WithinGuarantee() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.faulty) <= r.hb.M()+3
}

// pathClear reports whether a path avoids every fault (endpoints
// included).
func (r *Router) pathClear(path []core.Node) bool {
	for _, v := range path {
		if r.faulty[v] {
			return false
		}
	}
	return true
}

// Route returns a fault-free path from u to v, trying strategies in
// increasing order of cost:
//
//  1. the optimal two-phase route of Section 3, if it happens to avoid
//     all faults;
//  2. greedy adaptive routing (always step to a non-faulty neighbor
//     closest to v, with a bounded misroute allowance);
//  3. the first fault-free path among the m+4 disjoint paths of
//     Theorem 5 — guaranteed to exist while faults <= m+3;
//  4. plain BFS avoiding faults, for operation beyond the guarantee —
//     on instances up to ExhaustiveMaxOrder only (an implicit
//     HB(10,10) router skips it rather than allocate an order-sized
//     visited set).
//
// It fails only if u or v is faulty or the faults actually disconnect
// the pair (possible only with more than m+3 faults).
//
// Successful non-trivial routes are cached per (u,v); Fail and Recover
// invalidate exactly the entries they affect, so repeat queries against
// a slowly-changing fault set are map lookups.
func (r *Router) Route(u, v core.Node) ([]core.Node, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.faulty[u] || r.faulty[v] {
		return nil, fmt.Errorf("faultroute: endpoint faulty (u=%v, v=%v)", r.faulty[u], r.faulty[v])
	}
	if u == v {
		r.last = "optimal"
		return []core.Node{u}, nil
	}
	key := pairKey{u, v}
	if c, ok := r.cache[key]; ok {
		r.countStrategy(c.strategy)
		r.last = c.strategy
		// Callers own their result; hand out a copy so the cached path
		// cannot be mutated underneath later hits.
		return append([]core.Node(nil), c.path...), nil
	}
	path, strategy := r.routeLocked(u, v)
	if path == nil {
		return nil, fmt.Errorf("faultroute: %d faults disconnect %d from %d", len(r.faulty), u, v)
	}
	r.countStrategy(strategy)
	r.last = strategy
	if len(r.cache) >= routerCacheMax {
		r.cache = make(map[pairKey]cachedRoute)
	}
	r.cache[key] = cachedRoute{path: path, strategy: strategy}
	return path, nil
}

// routeLocked runs the strategy ladder; the caller holds r.mu.
func (r *Router) routeLocked(u, v core.Node) ([]core.Node, string) {
	if p := r.hb.Route(u, v); r.pathClear(p) {
		return p, "optimal"
	}
	if p, ok := r.greedy(u, v); ok {
		return p, "greedy"
	}
	if paths, err := r.hb.DisjointPaths(u, v); err == nil {
		for _, p := range paths {
			if r.pathClear(p) {
				return p, "disjoint"
			}
		}
	}
	if r.hb.Order() <= ExhaustiveMaxOrder {
		if p := graph.BFSPath(r.hb, u, v, r.faultMask()); p != nil {
			return p, "bfs"
		}
	}
	return nil, ""
}

// faultMask expands the sparse fault set into the order-sized mask the
// graph algorithms take; callers gate on ExhaustiveMaxOrder first.
func (r *Router) faultMask() []bool {
	mask := make([]bool, r.hb.Order())
	for v := range r.faulty {
		mask[v] = true
	}
	return mask
}

func (r *Router) countStrategy(strategy string) {
	switch strategy {
	case "optimal":
		r.Stats.Optimal++
	case "greedy":
		r.Stats.Greedy++
	case "disjoint":
		r.Stats.Disjoint++
	case "bfs":
		r.Stats.BFS++
	}
}

// greedyBudget bounds the number of non-improving (misrouting) steps the
// greedy strategy may take before giving up.
const greedyBudget = 4

// greedy performs adaptive hop-by-hop routing: prefer the non-faulty,
// unvisited neighbor closest to v; allow a bounded number of
// non-improving steps. Cheap, local, and usually sufficient for small
// fault counts — but not guaranteed, hence the fallbacks in Route.
func (r *Router) greedy(u, v core.Node) ([]core.Node, bool) {
	visited := map[core.Node]bool{u: true}
	path := []core.Node{u}
	cur := u
	misroutes := 0
	var buf []int
	for cur != v {
		buf = r.hb.AppendNeighbors(cur, buf[:0])
		best, bestDist := -1, -1
		for _, w := range buf {
			if r.faulty[w] || visited[w] {
				continue
			}
			d := r.hb.Distance(w, v)
			if best == -1 || d < bestDist {
				best, bestDist = w, d
			}
		}
		if best == -1 {
			return nil, false // dead end
		}
		if bestDist >= r.hb.Distance(cur, v) {
			misroutes++
			if misroutes > greedyBudget {
				return nil, false
			}
		}
		visited[best] = true
		path = append(path, best)
		cur = best
	}
	return path, true
}

// Connected reports whether the fault-free part of the network is still
// connected. Up to ExhaustiveMaxOrder the answer is exact (a full
// sweep); beyond it the sweep is infeasible and Connected answers from
// Corollary 1 — true while the fault count is within the m+3 guarantee,
// conservatively false otherwise (it cannot certify connectivity it did
// not check).
func (r *Router) Connected() bool {
	r.mu.Lock()
	if r.hb.Order() > ExhaustiveMaxOrder {
		ok := len(r.faulty) <= r.hb.M()+3
		r.mu.Unlock()
		return ok
	}
	mask := r.faultMask()
	r.mu.Unlock()
	return graph.IsConnected(r.hb, mask)
}
