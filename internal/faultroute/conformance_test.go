package faultroute_test

import (
	"testing"

	"repro/internal/conformance"
)

// TestConformance exercises the Remark 10 fault-route invariant through
// the shared suite: the HB targets carry a FaultRoute hook built on
// this package's Router, and the engine injects random fault sets up to
// the m+3 guarantee and verifies every delivered path is valid and
// fault-free.
func TestConformance(t *testing.T) {
	conformance.Suite(t,
		conformance.HyperButterfly(1, 3),
		conformance.HyperButterfly(2, 3),
		conformance.HyperButterfly(3, 3),
	)
}

// TestFaultRouteInvariantCatchesViolations: a target whose router
// reports a path through a fault must fail the fault-route invariant —
// the harness notices a broken router, not just a missing one.
func TestFaultRouteInvariantCatchesViolations(t *testing.T) {
	target := conformance.HyperButterfly(1, 3)
	good := target.FaultRoute
	target.FaultRoute = func(faults []int, u, v int) ([]int, error) {
		p, err := good(nil, u, v) // ignore the faults entirely
		_ = faults
		return p, err
	}
	rep := conformance.Run([]conformance.Target{target}, conformance.DefaultInvariants(), conformance.Options{})
	for _, res := range rep.Results {
		if res.Invariant == "fault-route" {
			if res.Status != conformance.StatusFail {
				t.Fatalf("fault-ignoring router passed the fault-route invariant: %+v", res)
			}
			return
		}
	}
	t.Fatal("fault-route cell missing from report")
}
