package faultroute

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// FaultDiameter returns the exact diameter of HB(m,n) after deleting
// the given faulty nodes: the largest shortest-path distance between
// any two surviving nodes, or an error if the survivors are
// disconnected. With at most m+3 faults the network is guaranteed
// connected (Corollary 1) and the constructive paths of Theorem 5 bound
// the growth: case-1/2 paths stretch the fault-free distance by at most
// the sub-network detour (+2 per family), which is what the E-FD
// experiment quantifies empirically.
//
// Cost: one BFS per surviving node; intended for instances up to a few
// thousand nodes.
func FaultDiameter(hb *core.HyperButterfly, faults []core.Node) (int, error) {
	excluded := make([]bool, hb.Order())
	for _, f := range faults {
		if f < 0 || f >= hb.Order() {
			return 0, fmt.Errorf("faultroute: fault %d out of range [0,%d)", f, hb.Order())
		}
		excluded[f] = true
	}
	diam := 0
	survivors := 0
	for v := 0; v < hb.Order(); v++ {
		if excluded[v] {
			continue
		}
		survivors++
		dist := graph.BFS(hb, v, excluded)
		for w, d := range dist {
			if excluded[w] || w == v {
				continue
			}
			if d == graph.Unreachable {
				return 0, fmt.Errorf("faultroute: faults disconnect %d from %d", v, w)
			}
			if int(d) > diam {
				diam = int(d)
			}
		}
	}
	if survivors < 2 {
		return 0, nil
	}
	return diam, nil
}
