package faultroute

import (
	"fmt"

	"repro/internal/core"
)

// FaultDiameter returns the exact diameter of HB(m,n) after deleting
// the given faulty nodes: the largest shortest-path distance between
// any two surviving nodes, or an error if the survivors are
// disconnected. With at most m+3 faults the network is guaranteed
// connected (Corollary 1) and the constructive paths of Theorem 5 bound
// the growth: case-1/2 paths stretch the fault-free distance by at most
// the sub-network detour (+2 per family), which is what the E-FD
// experiment quantifies empirically.
//
// Cost: one pooled bit-parallel sweep over the CSR form — batches of 64
// surviving sources advance together, so the whole fault sweep is a few
// O(|E|) word passes rather than one BFS per survivor.
func FaultDiameter(hb *core.HyperButterfly, faults []core.Node) (int, error) {
	excluded := make([]bool, hb.Order())
	for _, f := range faults {
		if f < 0 || f >= hb.Order() {
			return 0, fmt.Errorf("faultroute: fault %d out of range [0,%d)", f, hb.Order())
		}
		excluded[f] = true
	}
	survivors := 0
	for _, x := range excluded {
		if !x {
			survivors++
		}
	}
	if survivors < 2 {
		return 0, nil
	}
	sweep := hb.Dense().AllSourcesBits(excluded, 0)
	if !sweep.Complete {
		return 0, fmt.Errorf("faultroute: faults disconnect %d from %d", sweep.MissingSrc, sweep.MissingDst)
	}
	diam := int32(0)
	for _, e := range sweep.Ecc {
		if e > diam {
			diam = e
		}
	}
	return int(diam), nil
}
