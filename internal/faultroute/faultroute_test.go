package faultroute

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// pickFaults chooses f distinct faults avoiding u and v.
func pickFaults(rng *rand.Rand, order, f, u, v int) []int {
	faults := make([]int, 0, f)
	used := map[int]bool{u: true, v: true}
	for len(faults) < f {
		x := rng.Intn(order)
		if used[x] {
			continue
		}
		used[x] = true
		faults = append(faults, x)
	}
	return faults
}

// TestRemark10GuaranteedDelivery is the core fault-tolerance experiment:
// with up to m+3 random faults, Route must always succeed and the
// network must stay connected.
func TestRemark10GuaranteedDelivery(t *testing.T) {
	for _, dims := range [][2]int{{1, 3}, {2, 3}, {3, 3}} {
		hb := core.MustNew(dims[0], dims[1])
		rng := rand.New(rand.NewSource(int64(dims[0]*10 + dims[1])))
		for trial := 0; trial < 150; trial++ {
			u, v := rng.Intn(hb.Order()), rng.Intn(hb.Order())
			if u == v {
				continue
			}
			f := 1 + rng.Intn(hb.M()+3)
			r, err := New(hb, pickFaults(rng, hb.Order(), f, u, v))
			if err != nil {
				t.Fatal(err)
			}
			if !r.WithinGuarantee() {
				t.Fatalf("HB%v: %d faults should be within guarantee", dims, f)
			}
			if !r.Connected() {
				t.Fatalf("HB%v: %d faults disconnected the network (violates Corollary 1)", dims, f)
			}
			p, err := r.Route(u, v)
			if err != nil {
				t.Fatalf("HB%v faults=%d: %v", dims, f, err)
			}
			validateFaultFreePath(t, hb, r, p, u, v)
		}
	}
}

func validateFaultFreePath(t *testing.T, hb *core.HyperButterfly, r *Router, p []core.Node, u, v core.Node) {
	t.Helper()
	if p[0] != u || p[len(p)-1] != v {
		t.Fatalf("path endpoints %d..%d, want %d..%d", p[0], p[len(p)-1], u, v)
	}
	if err := graph.VerifyPath(hb, p); err != nil {
		t.Fatal(err)
	}
	for _, x := range p {
		if r.Faulty(x) {
			t.Fatalf("path passes through fault %d", x)
		}
	}
}

// TestMaximalityOfFaultTolerance shows the bound is tight: m+4 targeted
// faults (all neighbors of a node) disconnect the network, so m+4-1 is
// the best possible guarantee (Corollary 1's "maximally fault
// tolerant").
func TestMaximalityOfFaultTolerance(t *testing.T) {
	hb := core.MustNew(2, 3)
	victim := hb.Encode(1, 5)
	faults := hb.AppendNeighbors(victim, nil)
	if len(faults) != hb.Degree() {
		t.Fatalf("victim degree %d", len(faults))
	}
	r, err := New(hb, faults)
	if err != nil {
		t.Fatal(err)
	}
	if r.WithinGuarantee() {
		t.Fatal("m+4 faults should exceed the guarantee")
	}
	if r.Connected() {
		t.Fatal("surrounding a node with faults must disconnect it")
	}
	if _, err := r.Route(victim, hb.Identity()); err == nil {
		t.Fatal("routing out of an isolated node must fail")
	}
}

// TestBeyondGuaranteeBestEffort: with many random faults the router may
// still succeed via BFS whenever the endpoints remain connected, and
// must report failure exactly when they are not.
func TestBeyondGuaranteeBestEffort(t *testing.T) {
	hb := core.MustNew(1, 3)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		u, v := rng.Intn(hb.Order()), rng.Intn(hb.Order())
		if u == v {
			continue
		}
		faults := pickFaults(rng, hb.Order(), 10, u, v)
		r, err := New(hb, faults)
		if err != nil {
			t.Fatal(err)
		}
		excluded := make([]bool, hb.Order())
		for _, f := range faults {
			excluded[f] = true
		}
		reachable := graph.BFSPath(hb, u, v, excluded) != nil
		p, err := r.Route(u, v)
		if reachable && err != nil {
			t.Fatalf("connected pair reported unreachable: %v", err)
		}
		if !reachable && err == nil {
			t.Fatalf("disconnected pair reported path %v", p)
		}
		if err == nil {
			validateFaultFreePath(t, hb, r, p, u, v)
		}
	}
}

func TestRouterValidation(t *testing.T) {
	hb := core.MustNew(1, 3)
	if _, err := New(hb, []int{-1}); err == nil {
		t.Error("accepted negative fault id")
	}
	if _, err := New(hb, []int{hb.Order()}); err == nil {
		t.Error("accepted out-of-range fault id")
	}
	r, err := New(hb, []int{5, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.FaultCount() != 2 {
		t.Errorf("duplicate faults miscounted: %d", r.FaultCount())
	}
	if _, err := r.Route(5, 0); err == nil {
		t.Error("accepted faulty source")
	}
	if _, err := r.Route(0, 7); err == nil {
		t.Error("accepted faulty destination")
	}
	p, err := r.Route(3, 3)
	if err != nil || len(p) != 1 {
		t.Errorf("self route = %v, %v", p, err)
	}
}

// TestStretchIsBounded: within the guarantee, the delivered path should
// not be wildly longer than the fault-free distance; the disjoint-path
// fallback bounds it by roughly diameter+2.
func TestStretchIsBounded(t *testing.T) {
	hb := core.MustNew(2, 3)
	rng := rand.New(rand.NewSource(7))
	bound := hb.DiameterFormula() + hb.Degree() // generous static bound
	for trial := 0; trial < 100; trial++ {
		u, v := rng.Intn(hb.Order()), rng.Intn(hb.Order())
		if u == v {
			continue
		}
		r, err := New(hb, pickFaults(rng, hb.Order(), hb.M()+3, u, v))
		if err != nil {
			t.Fatal(err)
		}
		p, err := r.Route(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if len(p)-1 > bound {
			t.Fatalf("path length %d exceeds bound %d", len(p)-1, bound)
		}
	}
}

// TestFaultDiameter measures the diameter growth under worst-case-count
// random faults: it must stay finite (connectivity) and, empirically on
// these instances, within diameter+2 — the bound suggested by the
// Theorem 5 path lengths.
func TestFaultDiameter(t *testing.T) {
	hb := core.MustNew(2, 3)
	fd0, err := FaultDiameter(hb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fd0 != hb.DiameterFormula() {
		t.Fatalf("fault-free FaultDiameter %d, want %d", fd0, hb.DiameterFormula())
	}
	rng := rand.New(rand.NewSource(23))
	worst := 0
	for trial := 0; trial < 25; trial++ {
		faults := rng.Perm(hb.Order())[:hb.M()+3]
		fd, err := FaultDiameter(hb, faults)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if fd > worst {
			worst = fd
		}
	}
	if worst < hb.DiameterFormula() {
		t.Fatalf("fault diameter %d below fault-free diameter", worst)
	}
	if worst > hb.DiameterFormula()+2 {
		t.Fatalf("fault diameter %d exceeds diameter+2", worst)
	}
	if _, err := FaultDiameter(hb, []int{-1}); err == nil {
		t.Error("accepted bad fault id")
	}
	// Disconnecting faults must error.
	victim := hb.Encode(0, 0)
	if _, err := FaultDiameter(hb, hb.AppendNeighbors(victim, nil)); err == nil {
		t.Error("accepted disconnecting fault set")
	}
}
