package faultroute

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestGreedyPropertyHB23 is the property test for the greedy strategy:
// over random fault sets of size at most m+3 on HB(2,3), whenever
// greedy claims success its path must run u -> v over real edges of the
// graph, visit no faulty node, and never repeat a vertex. Alongside,
// every Route call must leave Stats and LastStrategy in agreement about
// which strategy delivered.
func TestGreedyPropertyHB23(t *testing.T) {
	hb := core.MustNew(2, 3)
	dense := hb.Dense()
	rng := rand.New(rand.NewSource(23))
	trials := 400
	greedyHits := 0
	for trial := 0; trial < trials; trial++ {
		u, v := rng.Intn(hb.Order()), rng.Intn(hb.Order())
		if u == v {
			continue
		}
		f := 1 + rng.Intn(hb.M()+3)
		seen := map[int]bool{u: true, v: true}
		faults := make([]core.Node, 0, f)
		for len(faults) < f {
			x := rng.Intn(hb.Order())
			if !seen[x] {
				seen[x] = true
				faults = append(faults, x)
			}
		}
		r, err := New(hb, faults)
		if err != nil {
			t.Fatal(err)
		}

		if p, ok := r.greedy(u, v); ok {
			greedyHits++
			if p[0] != u || p[len(p)-1] != v {
				t.Fatalf("greedy path %v does not run %d -> %d", p, u, v)
			}
			visited := map[core.Node]bool{}
			for i, x := range p {
				if r.faulty[x] {
					t.Fatalf("greedy path %v crosses faulty node %d (faults %v)", p, x, faults)
				}
				if visited[x] {
					t.Fatalf("greedy path %v revisits node %d", p, x)
				}
				visited[x] = true
				if i > 0 && !dense.HasEdge(p[i-1], p[i]) {
					t.Fatalf("greedy path %v uses non-edge %d-%d", p, p[i-1], p[i])
				}
			}
		}

		// Stats/LastStrategy agreement on the full ladder.
		before := r.Stats
		if _, err := r.Route(u, v); err != nil {
			t.Fatalf("Route(%d,%d) with %d <= m+3 faults failed: %v", u, v, f, err)
		}
		var deltas = map[string]int{
			"optimal":  r.Stats.Optimal - before.Optimal,
			"greedy":   r.Stats.Greedy - before.Greedy,
			"disjoint": r.Stats.Disjoint - before.Disjoint,
			"bfs":      r.Stats.BFS - before.BFS,
		}
		total := 0
		for _, d := range deltas {
			total += d
		}
		if total != 1 {
			t.Fatalf("Route incremented %d strategy counters, want exactly 1 (%+v)", total, r.Stats)
		}
		if deltas[r.LastStrategy()] != 1 {
			t.Fatalf("LastStrategy %q but its counter did not move (deltas %v)", r.LastStrategy(), deltas)
		}
	}
	if greedyHits == 0 {
		t.Fatal("greedy never succeeded across the sweep; property vacuous")
	}
}
