package faultroute

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
)

// checkPath asserts p is a real u-v walk avoiding r's faults.
func checkPath(t *testing.T, hb *core.HyperButterfly, r *Router, u, v core.Node, p []core.Node) {
	t.Helper()
	if len(p) == 0 || p[0] != u || p[len(p)-1] != v {
		t.Fatalf("path %v does not run %d -> %d", p, u, v)
	}
	dense := hb.Dense()
	for i := 1; i < len(p); i++ {
		if !dense.HasEdge(p[i-1], p[i]) {
			t.Fatalf("path %v uses non-edge %d-%d", p, p[i-1], p[i])
		}
	}
	for _, x := range p {
		if r.Faulty(x) {
			t.Fatalf("path %v crosses faulty node %d", p, x)
		}
	}
}

// TestIncrementalMatchesFresh drives one router through a random
// fail/recover trajectory and checks that at every step it behaves like
// a router freshly built with the same fault set: same fault count,
// valid fault-avoiding paths, and agreement on routability.
func TestIncrementalMatchesFresh(t *testing.T) {
	hb := core.MustNew(2, 3)
	rng := rand.New(rand.NewSource(11))
	r, err := New(hb, nil)
	if err != nil {
		t.Fatal(err)
	}
	live := map[core.Node]bool{}
	for step := 0; step < 120; step++ {
		v := rng.Intn(hb.Order())
		if live[v] {
			changed, err := r.Recover(v)
			if err != nil || !changed {
				t.Fatalf("Recover(%d): changed=%v err=%v", v, changed, err)
			}
			delete(live, v)
		} else if len(live) < hb.M()+3 {
			changed, err := r.Fail(v)
			if err != nil || !changed {
				t.Fatalf("Fail(%d): changed=%v err=%v", v, changed, err)
			}
			live[v] = true
		}

		faults := r.FaultList()
		if len(faults) != len(live) {
			t.Fatalf("step %d: FaultCount %d, want %d", step, len(faults), len(live))
		}
		fresh, err := New(hb, faults)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 4; trial++ {
			u, w := rng.Intn(hb.Order()), rng.Intn(hb.Order())
			if u == w || live[u] || live[w] {
				continue
			}
			p, err := r.Route(u, w)
			if err != nil {
				t.Fatalf("step %d: incremental route %d->%d with %d faults: %v", step, u, w, len(faults), err)
			}
			checkPath(t, hb, r, u, w, p)
			if _, err := fresh.Route(u, w); err != nil {
				t.Fatalf("step %d: fresh router disagrees on routability: %v", step, err)
			}
		}
	}
	if !reflect.DeepEqual(r.FaultList(), func() []core.Node {
		out := []core.Node{}
		for v := 0; v < hb.Order(); v++ {
			if live[v] {
				out = append(out, v)
			}
		}
		return out
	}()) {
		t.Error("FaultList drifted from the applied trajectory")
	}
}

// TestFailInvalidatesCachedRoutes locks the cache-correctness property:
// a route cached before Fail(v) must never be served once v lies on it.
func TestFailInvalidatesCachedRoutes(t *testing.T) {
	hb := core.MustNew(2, 3)
	r, err := New(hb, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, v := core.Node(0), core.Node(95)
	p1, err := r.Route(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) < 3 {
		t.Fatalf("need an interior node, got %v", p1)
	}
	mid := p1[len(p1)/2]
	if _, err := r.Fail(mid); err != nil {
		t.Fatal(err)
	}
	p2, err := r.Route(u, v)
	if err != nil {
		t.Fatalf("route after failing %d: %v", mid, err)
	}
	checkPath(t, hb, r, u, v, p2)

	// Recovery must restore the optimal route (non-optimal entries are
	// invalidated, so the ladder re-runs and finds the shortest path).
	if _, err := r.Recover(mid); err != nil {
		t.Fatal(err)
	}
	p3, err := r.Route(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if r.LastStrategy() != "optimal" {
		t.Errorf("strategy %q after full recovery, want optimal", r.LastStrategy())
	}
	if len(p3) != len(p1) {
		t.Errorf("recovered route has length %d, optimal is %d", len(p3), len(p1))
	}
}

// TestSetFaultsDiffs checks SetFaults lands on exactly the requested
// set regardless of the starting point.
func TestSetFaultsDiffs(t *testing.T) {
	hb := core.MustNew(2, 3)
	r, err := New(hb, []core.Node{3, 7, 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetFaults([]core.Node{7, 20, 20, 40}); err != nil {
		t.Fatal(err)
	}
	if got := r.FaultList(); !reflect.DeepEqual(got, []core.Node{7, 20, 40}) {
		t.Errorf("FaultList = %v, want [7 20 40]", got)
	}
	if r.FaultCount() != 3 {
		t.Errorf("FaultCount = %d", r.FaultCount())
	}
	if err := r.SetFaults(nil); err != nil {
		t.Fatal(err)
	}
	if r.FaultCount() != 0 || len(r.FaultList()) != 0 {
		t.Errorf("non-empty set after SetFaults(nil): %v", r.FaultList())
	}
	if err := r.SetFaults([]core.Node{hb.Order()}); err == nil {
		t.Error("out-of-range fault accepted")
	}
}

// TestRouterConcurrent exercises concurrent Route/Fail/Recover under
// -race: queries must always see a consistent fault set and never a
// path through a node that is faulty for the whole test.
func TestRouterConcurrent(t *testing.T) {
	hb := core.MustNew(2, 3)
	always := core.Node(50) // faulty for the entire run
	r, err := New(hb, []core.Node{always})
	if err != nil {
		t.Fatal(err)
	}
	churn := []core.Node{10, 20, 30, 40}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				switch i % 3 {
				case 0:
					if _, err := r.Fail(churn[rng.Intn(len(churn))]); err != nil {
						t.Error(err)
					}
				case 1:
					if _, err := r.Recover(churn[rng.Intn(len(churn))]); err != nil {
						t.Error(err)
					}
				default:
					u, v := core.Node(rng.Intn(hb.Order())), core.Node(rng.Intn(hb.Order()))
					if u == v || u == always || v == always {
						continue
					}
					in := func(x core.Node) bool {
						for _, c := range churn {
							if c == x {
								return true
							}
						}
						return false
					}
					if in(u) || in(v) {
						continue
					}
					p, err := r.Route(u, v)
					if err != nil {
						t.Errorf("route %d->%d: %v", u, v, err)
						continue
					}
					for _, x := range p {
						if x == always {
							t.Errorf("path %v crosses permanently-faulty node %d", p, always)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
