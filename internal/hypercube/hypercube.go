// Package hypercube implements the binary hypercube H_m of Section 2.1:
// 2^m vertices labelled by m-bit words, with an edge wherever the Hamming
// distance is 1. H_m is the first factor of the hyper-butterfly product
// HB(m,n) = H_m □ B_n; the routing and disjoint-path constructions here
// are the ones Theorem 5 and the shortest-routing scheme of Section 3
// lean on (via Saad & Schultz, IEEE ToC 1988).
package hypercube

import (
	"fmt"

	"repro/internal/bitvec"
)

// Cube is the hypercube H_m. The zero value is the degenerate H_0 (a
// single vertex).
type Cube struct {
	m int
}

// New returns H_m. m may be 0 (a single vertex, used when the
// hyper-butterfly degenerates to a pure butterfly); m is capped at 30 so
// vertex ids fit comfortably in int on all platforms.
func New(m int) (*Cube, error) {
	if m < 0 || m > 30 {
		return nil, fmt.Errorf("hypercube: dimension %d out of range [0,30]", m)
	}
	return &Cube{m: m}, nil
}

// MustNew is New for known-good dimensions; it panics on error.
func MustNew(m int) *Cube {
	c, err := New(m)
	if err != nil {
		panic(err)
	}
	return c
}

// Dim returns the dimension m.
func (c *Cube) Dim() int { return c.m }

// Order returns 2^m.
func (c *Cube) Order() int { return 1 << uint(c.m) }

// EdgeCountFormula returns m·2^(m-1), the edge count quoted in Section 2.1.
func (c *Cube) EdgeCountFormula() int {
	if c.m == 0 {
		return 0
	}
	return c.m << uint(c.m-1)
}

// DiameterFormula returns the analytic diameter D(H_m) = m.
func (c *Cube) DiameterFormula() int { return c.m }

// ConnectivityFormula returns the analytic vertex connectivity m.
func (c *Cube) ConnectivityFormula() int { return c.m }

// Degree returns the degree of every vertex, m.
func (c *Cube) Degree() int { return c.m }

// AppendNeighbors implements graph.Graph: the m neighbors of v are the
// labels obtained by complementing one bit (generator h_i of the paper).
func (c *Cube) AppendNeighbors(v int, buf []int) []int {
	for i := 0; i < c.m; i++ {
		buf = append(buf, v^(1<<uint(i)))
	}
	return buf
}

// VertexLabel renders v as the m-bit string x_{m-1}...x_0.
func (c *Cube) VertexLabel(v int) string { return bitvec.String(uint64(v), c.m) }

// Distance returns the Hamming distance between vertices u and v, the
// shortest-path distance in H_m.
func (c *Cube) Distance(u, v int) int { return bitvec.Hamming(uint64(u), uint64(v)) }

// Route returns a shortest u-v path (inclusive of endpoints) using
// e-cube (dimension-order) routing: differing bits are corrected from the
// lowest dimension upward.
func (c *Cube) Route(u, v int) []int {
	path := make([]int, 0, c.Distance(u, v)+1)
	path = append(path, u)
	cur := u
	for i := 0; i < c.m; i++ {
		bit := 1 << uint(i)
		if cur&bit != v&bit {
			cur ^= bit
			path = append(path, cur)
		}
	}
	return path
}

// routeRotated routes u to v correcting the differing dimensions in the
// cyclic order start, start+1, ..., m-1, 0, ..., start-1. Used by the
// disjoint-path construction.
func (c *Cube) routeRotated(u, v, start int) []int {
	path := []int{u}
	cur := u
	for k := 0; k < c.m; k++ {
		i := (start + k) % c.m
		bit := 1 << uint(i)
		if cur&bit != v&bit {
			cur ^= bit
			path = append(path, cur)
		}
	}
	return path
}

// DisjointPaths returns exactly m pairwise internally vertex-disjoint
// paths from u to v (u != v), following the classic rotation construction
// of Saad & Schultz:
//
//   - For each dimension d in which u and v differ, one path first
//     corrects d, then the remaining differing dimensions in cyclic
//     order, giving |D| paths of length |D|.
//   - For each dimension d in which they agree, one path detours out
//     along d, corrects all differing dimensions in cyclic order, and
//     returns along d, giving m-|D| paths of length |D|+2.
//
// Paths in the first family are pinned to distinct first-corrected
// dimensions; paths in the second family live in the "wrong side" of
// dimension d throughout their interior, so all m paths are internally
// disjoint (verified exhaustively in tests).
func (c *Cube) DisjointPaths(u, v int) ([][]int, error) {
	if u == v {
		return nil, fmt.Errorf("hypercube: DisjointPaths endpoints equal (%d)", u)
	}
	if u < 0 || u >= c.Order() || v < 0 || v >= c.Order() {
		return nil, fmt.Errorf("hypercube: endpoints %d,%d out of range", u, v)
	}
	paths := make([][]int, 0, c.m)
	diff := uint64(u ^ v)
	for d := 0; d < c.m; d++ {
		bit := 1 << uint(d)
		if diff&uint64(bit) != 0 {
			// Correct d first, then the rest cyclically from d+1.
			first := u ^ bit
			rest := c.routeRotated(first, v, (d+1)%c.m)
			paths = append(paths, append([]int{u}, rest...))
		} else {
			// Detour: flip d, correct all differing dims cyclically
			// starting just above d, then flip d back.
			out := u ^ bit
			mid := c.routeRotated(out, v^bit, (d+1)%c.m)
			path := append([]int{u}, mid...)
			path = append(path, v)
			paths = append(paths, path)
		}
	}
	return paths, nil
}

// EvenCycle returns a cycle of length k through distinct vertices of H_m,
// for even k with 4 <= k <= 2^m (Remark 9).
func (c *Cube) EvenCycle(k int) ([]int, error) {
	words, err := bitvec.EvenCycleInCube(c.m, k)
	if err != nil {
		return nil, err
	}
	cyc := make([]int, len(words))
	for i, w := range words {
		cyc[i] = int(w)
	}
	return cyc, nil
}
