package hypercube

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestNewBounds(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("accepted m = -1")
	}
	if _, err := New(31); err == nil {
		t.Error("accepted m = 31")
	}
	c, err := New(0)
	if err != nil || c.Order() != 1 {
		t.Errorf("H_0: %v order %d", err, c.Order())
	}
}

// Structural formulas (counts, degree, diameter, connectivity) and
// route/distance optimality are asserted by the conformance suite in
// conformance_test.go; only constructions the suite does not model stay
// spelled out here.

func TestDisjointPathsExhaustive(t *testing.T) {
	for m := 2; m <= 4; m++ {
		c := MustNew(m)
		for u := 0; u < c.Order(); u++ {
			for v := 0; v < c.Order(); v++ {
				if u == v {
					continue
				}
				paths, err := c.DisjointPaths(u, v)
				if err != nil {
					t.Fatal(err)
				}
				if len(paths) != m {
					t.Fatalf("m=%d %d->%d: %d paths", m, u, v, len(paths))
				}
				if err := graph.VerifyDisjointPaths(c, u, v, paths); err != nil {
					t.Fatalf("m=%d %d->%d: %v", m, u, v, err)
				}
				// Theorem 5's length bound: each path at most Hamming+2.
				for _, p := range paths {
					if len(p)-1 > c.Distance(u, v)+2 {
						t.Fatalf("m=%d %d->%d: path length %d exceeds dist+2", m, u, v, len(p)-1)
					}
				}
			}
		}
	}
}

func TestDisjointPathsRandomLarge(t *testing.T) {
	c := MustNew(10)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		u, v := rng.Intn(c.Order()), rng.Intn(c.Order())
		if u == v {
			continue
		}
		paths, err := c.DisjointPaths(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) != 10 {
			t.Fatalf("%d paths", len(paths))
		}
		if err := graph.VerifyDisjointPaths(c, u, v, paths); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDisjointPathsErrors(t *testing.T) {
	c := MustNew(3)
	if _, err := c.DisjointPaths(1, 1); err == nil {
		t.Error("accepted equal endpoints")
	}
	if _, err := c.DisjointPaths(-1, 2); err == nil {
		t.Error("accepted negative endpoint")
	}
	if _, err := c.DisjointPaths(0, 8); err == nil {
		t.Error("accepted out-of-range endpoint")
	}
}

func TestEvenCycle(t *testing.T) {
	c := MustNew(4)
	for k := 4; k <= 16; k += 2 {
		cyc, err := c.EvenCycle(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(cyc) != k {
			t.Fatalf("k=%d: length %d", k, len(cyc))
		}
		if err := graph.VerifyCycle(c, cyc); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	if _, err := c.EvenCycle(5); err == nil {
		t.Error("accepted odd cycle")
	}
}

func TestRoutePropertyRandom(t *testing.T) {
	c := MustNew(16)
	f := func(a, b uint16) bool {
		u, v := int(a), int(b)
		p := c.Route(u, v)
		return len(p)-1 == c.Distance(u, v) && p[0] == u && p[len(p)-1] == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVertexLabel(t *testing.T) {
	c := MustNew(4)
	if got := c.VertexLabel(5); got != "0101" {
		t.Errorf("label = %q", got)
	}
}
