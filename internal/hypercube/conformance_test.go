package hypercube_test

import (
	"testing"

	"repro/internal/conformance"
)

// TestConformance registers H_m with the repository-wide invariant
// suite: undirectedness, degree regularity, count formulas, generator
// action, diameter m, connectivity m, distance/route optimality vs BFS
// and disjoint-path validity are all asserted by the shared engine.
func TestConformance(t *testing.T) {
	conformance.Suite(t,
		conformance.Hypercube(1),
		conformance.Hypercube(2),
		conformance.Hypercube(4),
		conformance.Hypercube(6),
	)
}
