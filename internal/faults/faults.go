// Package faults models node failures that change while a workload is
// running. The paper's fault-tolerance result (Theorem 5, Remark 10) is
// stated for a static fault set; this package supplies the dynamic
// counterpart the simulator and the serving layer exercise: a Schedule
// of timed fail/recover events (with seeded, reproducible generators)
// and a mutable, concurrency-safe Set with an epoch counter so cached
// routing state can detect that the fault picture has moved on.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/graph"
)

// Event fails or recovers one node at the start of one cycle.
type Event struct {
	Cycle int  `json:"cycle"`
	Node  int  `json:"node"`
	Fail  bool `json:"fail"` // true = node goes down, false = node comes back
}

// Schedule is a time-ordered list of events. Generators return sorted
// schedules; hand-built ones should call Sort before use.
type Schedule []Event

// Sort orders the schedule by cycle, stable within a cycle so a
// generator's fail-before-recover intent is preserved.
func (s Schedule) Sort() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].Cycle < s[j].Cycle })
}

// Validate checks every event names a node in [0,order) and a
// non-negative cycle. Events at or beyond the run length are legal —
// they simply never fire.
func (s Schedule) Validate(order int) error {
	for i, e := range s {
		if e.Node < 0 || e.Node >= order {
			return fmt.Errorf("faults: event %d names node %d outside [0,%d)", i, e.Node, order)
		}
		if e.Cycle < 0 {
			return fmt.Errorf("faults: event %d has negative cycle %d", i, e.Cycle)
		}
	}
	return nil
}

// MaxLive replays the schedule over an initially fault-free network of
// the given order and returns the peak simultaneous fault count — the
// quantity the m+3 guarantee is stated against.
func (s Schedule) MaxLive(order int) int {
	down := make([]bool, order)
	live, peak := 0, 0
	sorted := append(Schedule(nil), s...)
	sorted.Sort()
	for _, e := range sorted {
		switch {
		case e.Fail && !down[e.Node]:
			down[e.Node] = true
			live++
			if live > peak {
				peak = live
			}
		case !e.Fail && down[e.Node]:
			down[e.Node] = false
			live--
		}
	}
	return peak
}

// ChurnConfig parameterises RandomChurn.
type ChurnConfig struct {
	Order   int     // node count of the target network
	Cycles  int     // cycles over which churn may start
	MaxLive int     // never exceed this many simultaneous faults
	Rate    float64 // per-cycle probability of starting a new failure
	// MinDwell/MaxDwell bound how long a failed node stays down before
	// its recover event; zero values default to [10, 50].
	MinDwell int
	MaxDwell int
	Seed     int64
	// Protect lists nodes the generator never fails (e.g. a hotspot
	// destination whose loss would make delivery trivially impossible).
	Protect []int
}

// RandomChurn generates seeded, reproducible node churn: failures start
// at rate Rate per cycle while fewer than MaxLive nodes are down, and
// every failure is paired with a recover event after a random dwell.
// Recoveries may land beyond Cycles; callers that want a fully drained
// network can clamp or extend their run accordingly.
func RandomChurn(cfg ChurnConfig) (Schedule, error) {
	if cfg.Order <= 0 || cfg.Cycles <= 0 {
		return nil, fmt.Errorf("faults: churn needs positive order and cycles (got %d, %d)", cfg.Order, cfg.Cycles)
	}
	if cfg.MaxLive < 0 || cfg.Rate < 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("faults: churn max-live %d / rate %v out of range", cfg.MaxLive, cfg.Rate)
	}
	minD, maxD := cfg.MinDwell, cfg.MaxDwell
	if minD <= 0 {
		minD = 10
	}
	if maxD < minD {
		maxD = minD + 40
	}
	protected := make(map[int]bool, len(cfg.Protect))
	for _, v := range cfg.Protect {
		if v < 0 || v >= cfg.Order {
			return nil, fmt.Errorf("faults: protected node %d outside [0,%d)", v, cfg.Order)
		}
		protected[v] = true
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	down := make(map[int]int, cfg.MaxLive) // node -> recover cycle
	var s Schedule
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		for v, until := range down {
			if until == cycle {
				delete(down, v)
			}
		}
		if len(down) >= cfg.MaxLive || rng.Float64() >= cfg.Rate {
			continue
		}
		v := rng.Intn(cfg.Order)
		if protected[v] {
			continue // skip rather than redraw: keeps the event stream cheap and seeded
		}
		if _, isDown := down[v]; isDown {
			continue
		}
		dwell := minD + rng.Intn(maxD-minD+1)
		down[v] = cycle + dwell
		s = append(s, Event{Cycle: cycle, Node: v, Fail: true},
			Event{Cycle: cycle + dwell, Node: v, Fail: false})
	}
	s.Sort()
	return s, nil
}

// AdversarialAdjacent generates the worst-case placement the paper's
// connectivity bound is tight against: since HB(m,n) is (m+4)-regular
// with kappa = m+4, the neighborhood of any node is a minimum cut, so
// failing k of pivot's neighbors is the most damaging k-fault set
// adjacent to pivot. Failures start at cycle start, staggered by
// stagger cycles each, and all recover together dwell cycles after the
// last one lands.
func AdversarialAdjacent(g graph.Graph, pivot, k, start, stagger, dwell int) (Schedule, error) {
	if pivot < 0 || pivot >= g.Order() {
		return nil, fmt.Errorf("faults: pivot %d outside [0,%d)", pivot, g.Order())
	}
	if start < 0 || stagger < 0 || dwell <= 0 {
		return nil, fmt.Errorf("faults: need start,stagger >= 0 and dwell > 0")
	}
	nbrs := g.AppendNeighbors(pivot, nil)
	sort.Ints(nbrs)
	// Dedupe (multi-edges are legal in graph.Graph).
	uniq := nbrs[:0]
	for i, v := range nbrs {
		if i == 0 || v != nbrs[i-1] {
			uniq = append(uniq, v)
		}
	}
	if k < 0 || k > len(uniq) {
		return nil, fmt.Errorf("faults: k=%d but pivot %d has %d distinct neighbors", k, pivot, len(uniq))
	}
	var s Schedule
	last := start
	for i := 0; i < k; i++ {
		at := start + i*stagger
		last = at
		s = append(s, Event{Cycle: at, Node: uniq[i], Fail: true})
	}
	for i := 0; i < k; i++ {
		s = append(s, Event{Cycle: last + dwell, Node: uniq[i], Fail: false})
	}
	s.Sort()
	return s, nil
}

// Set is a mutable fault set safe for concurrent use. Every successful
// mutation bumps the epoch, so readers holding derived state (cached
// routes, rendered responses) can cheaply detect staleness.
type Set struct {
	mu    sync.RWMutex
	mask  []bool
	count int
	epoch uint64
}

// NewSet returns an empty fault set over nodes [0,order).
func NewSet(order int) *Set {
	return &Set{mask: make([]bool, order)}
}

// Order returns the node-range size the set was built for.
func (s *Set) Order() int { return len(s.mask) }

// Fail marks v faulty; it reports whether the set changed.
func (s *Set) Fail(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v < 0 || v >= len(s.mask) || s.mask[v] {
		return false
	}
	s.mask[v] = true
	s.count++
	s.epoch++
	return true
}

// Recover clears v; it reports whether the set changed.
func (s *Set) Recover(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v < 0 || v >= len(s.mask) || !s.mask[v] {
		return false
	}
	s.mask[v] = false
	s.count--
	s.epoch++
	return true
}

// Apply executes one event against the set.
func (s *Set) Apply(e Event) bool {
	if e.Fail {
		return s.Fail(e.Node)
	}
	return s.Recover(e.Node)
}

// Faulty reports whether v is currently down.
func (s *Set) Faulty(v int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return v >= 0 && v < len(s.mask) && s.mask[v]
}

// Count returns the live fault count.
func (s *Set) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Epoch returns the mutation counter; it increases on every effective
// Fail or Recover.
func (s *Set) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// List returns the sorted faulty nodes.
func (s *Set) List() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, 0, s.count)
	for v, down := range s.mask {
		if down {
			out = append(out, v)
		}
	}
	return out
}

// Mask copies the fault mask (index = node).
func (s *Set) Mask() []bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]bool(nil), s.mask...)
}
