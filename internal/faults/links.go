package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// LinkEvent fails or recovers one undirected link at the start of one
// cycle. The NoC engine applies it to both directed channels of the
// edge.
type LinkEvent struct {
	Cycle int  `json:"cycle"`
	U     int  `json:"u"`
	V     int  `json:"v"`
	Fail  bool `json:"fail"`
}

// LinkSchedule is a time-ordered list of link events; generators return
// sorted schedules, hand-built ones should call Sort before use.
type LinkSchedule []LinkEvent

// Sort orders the schedule by cycle, stable within a cycle.
func (s LinkSchedule) Sort() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].Cycle < s[j].Cycle })
}

// Validate checks every event names two distinct nodes in [0,order)
// and a non-negative cycle. As with node schedules, events beyond the
// run length are legal and simply never fire.
func (s LinkSchedule) Validate(order int) error {
	for i, e := range s {
		if e.U < 0 || e.U >= order || e.V < 0 || e.V >= order {
			return fmt.Errorf("faults: link event %d names edge %d-%d outside [0,%d)", i, e.U, e.V, order)
		}
		if e.U == e.V {
			return fmt.Errorf("faults: link event %d is a self-loop at %d", i, e.U)
		}
		if e.Cycle < 0 {
			return fmt.Errorf("faults: link event %d has negative cycle %d", i, e.Cycle)
		}
	}
	return nil
}

// MaxLive returns the peak number of simultaneously failed links.
func (s LinkSchedule) MaxLive() int {
	type key struct{ u, v int }
	down := make(map[key]bool)
	sorted := append(LinkSchedule(nil), s...)
	sorted.Sort()
	peak := 0
	for _, e := range sorted {
		k := key{e.U, e.V}
		if e.U > e.V {
			k = key{e.V, e.U}
		}
		switch {
		case e.Fail && !down[k]:
			down[k] = true
		case !e.Fail && down[k]:
			delete(down, k)
		}
		if len(down) > peak {
			peak = len(down)
		}
	}
	return peak
}

// RandomLinkChurn generates a reproducible schedule of transient link
// failures on g: each failure picks a uniform edge (a uniform node and
// a uniform incident link), dwells for a uniform number of cycles in
// [MinDwell, MaxDwell], then recovers. A link that is still down is
// never failed again, so each Fail/Recover pair brackets one contiguous
// outage of the promised dwell. The ChurnConfig fields Order,
// Cycles, MaxLive, Rate, MinDwell, MaxDwell and Seed keep their
// RandomChurn meaning; Protect is ignored (links have no protected
// set). Order must match g.Order().
func RandomLinkChurn(g graph.Graph, cfg ChurnConfig) (LinkSchedule, error) {
	if cfg.Order != g.Order() {
		return nil, fmt.Errorf("faults: link churn order %d != graph order %d", cfg.Order, g.Order())
	}
	if cfg.Cycles <= 0 || cfg.MaxLive < 1 {
		return nil, fmt.Errorf("faults: link churn needs Cycles > 0 and MaxLive >= 1 (got %d, %d)", cfg.Cycles, cfg.MaxLive)
	}
	if cfg.Rate < 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("faults: link churn rate %v outside [0,1]", cfg.Rate)
	}
	minD, maxD := cfg.MinDwell, cfg.MaxDwell
	if minD <= 0 {
		minD = 1
	}
	if maxD < minD {
		maxD = minD
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var s LinkSchedule
	type key struct{ u, v int }
	down := make(map[key]int, cfg.MaxLive) // normalized edge -> recover cycle
	var buf []int
	for c := 0; c < cfg.Cycles; c++ {
		for k, until := range down {
			if until <= c {
				delete(down, k)
			}
		}
		if len(down) >= cfg.MaxLive || rng.Float64() >= cfg.Rate {
			continue
		}
		u := rng.Intn(cfg.Order)
		buf = g.AppendNeighbors(u, buf[:0])
		if len(buf) == 0 {
			continue
		}
		v := buf[rng.Intn(len(buf))]
		k := key{u, v}
		if u > v {
			k = key{v, u}
		}
		if _, isDown := down[k]; isDown {
			continue // skip rather than redraw, as in RandomChurn
		}
		dwell := minD + rng.Intn(maxD-minD+1)
		s = append(s, LinkEvent{Cycle: c, U: u, V: v, Fail: true},
			LinkEvent{Cycle: c + dwell, U: u, V: v, Fail: false})
		down[k] = c + dwell
	}
	s.Sort()
	return s, nil
}
