package faults

import (
	"context"
	"time"
)

// ReplayTimed replays a schedule in wall-clock time: event cycles map
// to start + Cycle*tick, and apply runs in schedule order at (or as
// soon after as the scheduler allows) each event's instant. It is the
// bridge between the cycle-indexed generators in this package and
// components that live in real time — the hbd cluster tier uses it to
// kill and restart serving replicas mid-load from the same churn
// schedules the simulators replay cycle by cycle.
//
// apply runs on the calling goroutine; a cancelled context stops the
// replay between events. The returned count is the number of events
// applied.
func ReplayTimed(ctx context.Context, s Schedule, tick time.Duration, apply func(Event)) int {
	sorted := append(Schedule(nil), s...)
	sorted.Sort()
	start := time.Now()
	applied := 0
	for _, e := range sorted {
		due := start.Add(time.Duration(e.Cycle) * tick)
		if wait := time.Until(due); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return applied
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			return applied
		}
		apply(e)
		applied++
	}
	return applied
}
