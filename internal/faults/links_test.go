package faults

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestLinkScheduleValidate(t *testing.T) {
	good := LinkSchedule{{Cycle: 0, U: 0, V: 1, Fail: true}, {Cycle: 5, U: 0, V: 1}}
	if err := good.Validate(8); err != nil {
		t.Fatalf("good schedule rejected: %v", err)
	}
	bad := []LinkSchedule{
		{{Cycle: 0, U: -1, V: 1, Fail: true}},
		{{Cycle: 0, U: 0, V: 8, Fail: true}},
		{{Cycle: 0, U: 3, V: 3, Fail: true}},
		{{Cycle: -1, U: 0, V: 1, Fail: true}},
	}
	for i, s := range bad {
		if err := s.Validate(8); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestLinkScheduleSortAndMaxLive(t *testing.T) {
	s := LinkSchedule{
		{Cycle: 9, U: 0, V: 1, Fail: false},
		{Cycle: 2, U: 0, V: 1, Fail: true},
		{Cycle: 4, U: 2, V: 3, Fail: true},
		{Cycle: 6, U: 2, V: 3, Fail: false},
	}
	s.Sort()
	for i := 1; i < len(s); i++ {
		if s[i-1].Cycle > s[i].Cycle {
			t.Fatalf("not sorted at %d: %+v", i, s)
		}
	}
	// Both links are down during cycles [4,6); (1,0) mirrors (0,1).
	if got := s.MaxLive(); got != 2 {
		t.Fatalf("MaxLive = %d, want 2", got)
	}
	mirror := LinkSchedule{
		{Cycle: 0, U: 0, V: 1, Fail: true},
		{Cycle: 1, U: 1, V: 0, Fail: true}, // same undirected link
		{Cycle: 2, U: 1, V: 0, Fail: false},
	}
	if got := mirror.MaxLive(); got != 1 {
		t.Fatalf("mirrored link MaxLive = %d, want 1", got)
	}
}

// replayLinkSchedule walks a sorted schedule tracking the down set:
// every Fail must land on an up link and every Recover on a down one,
// so each outage dwells exactly as long as the generator promised.
func replayLinkSchedule(t *testing.T, s LinkSchedule) {
	t.Helper()
	type key struct{ u, v int }
	down := map[key]bool{}
	for _, e := range s {
		k := key{e.U, e.V}
		if e.U > e.V {
			k = key{e.V, e.U}
		}
		if e.Fail {
			if down[k] {
				t.Fatalf("link %d-%d failed again at cycle %d while still down", e.U, e.V, e.Cycle)
			}
			down[k] = true
		} else {
			if !down[k] {
				t.Fatalf("link %d-%d recovered at cycle %d while up", e.U, e.V, e.Cycle)
			}
			delete(down, k)
		}
	}
}

func TestRandomLinkChurn(t *testing.T) {
	hb := core.MustNew(2, 3)
	cfg := ChurnConfig{
		Order: hb.Order(), Cycles: 600, MaxLive: 3, Rate: 0.1,
		MinDwell: 10, MaxDwell: 40, Seed: 7,
	}
	s, err := RandomLinkChurn(hb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) == 0 {
		t.Fatal("empty schedule at rate 0.1")
	}
	if err := s.Validate(hb.Order()); err != nil {
		t.Fatal(err)
	}
	if got := s.MaxLive(); got > cfg.MaxLive {
		t.Fatalf("MaxLive %d exceeds cap %d", got, cfg.MaxLive)
	}
	replayLinkSchedule(t, s)
	// Every failed edge must exist in the graph.
	d := graph.Build(hb)
	for _, e := range s {
		found := false
		for _, w := range d.Neighbors(e.U) {
			if int(w) == e.V {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("event names non-edge %d-%d", e.U, e.V)
		}
	}
	// Same seed, same schedule; different seed, different schedule.
	again, err := RandomLinkChurn(hb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, again) {
		t.Fatal("schedule not reproducible for a fixed seed")
	}
	cfg.Seed = 8
	other, err := RandomLinkChurn(hb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s, other) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestRandomLinkChurnNoDoubleFailure: on a tiny graph at high rate the
// generator keeps picking edges that are already down; it must skip
// them rather than emit a second Fail whose paired Recover would cut
// the first outage's dwell short.
func TestRandomLinkChurnNoDoubleFailure(t *testing.T) {
	g := graph.Ring{N: 4}
	s, err := RandomLinkChurn(g, ChurnConfig{
		Order: 4, Cycles: 400, MaxLive: 3, Rate: 0.5,
		MinDwell: 20, MaxDwell: 40, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) == 0 {
		t.Fatal("empty schedule at rate 0.5")
	}
	replayLinkSchedule(t, s)
}

func TestRandomLinkChurnRejects(t *testing.T) {
	hb := core.MustNew(2, 3)
	bad := []ChurnConfig{
		{Order: 5, Cycles: 100, MaxLive: 1, Rate: 0.1},          // order mismatch
		{Order: hb.Order(), Cycles: 0, MaxLive: 1, Rate: 0.1},   // no cycles
		{Order: hb.Order(), Cycles: 100, MaxLive: 0, Rate: 0.1}, // no budget
		{Order: hb.Order(), Cycles: 100, MaxLive: 1, Rate: 1.5}, // bad rate
	}
	for i, cfg := range bad {
		if _, err := RandomLinkChurn(hb, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
