package faults

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestScheduleSortAndValidate(t *testing.T) {
	s := Schedule{
		{Cycle: 9, Node: 1, Fail: false},
		{Cycle: 2, Node: 1, Fail: true},
		{Cycle: 2, Node: 3, Fail: true},
	}
	s.Sort()
	if s[0].Cycle != 2 || s[2].Cycle != 9 {
		t.Fatalf("sort order wrong: %+v", s)
	}
	if s[0].Node != 1 || s[1].Node != 3 {
		t.Fatalf("sort is not stable within a cycle: %+v", s)
	}
	if err := s.Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := (Schedule{{Cycle: 0, Node: 4}}).Validate(4); err == nil {
		t.Error("out-of-range node validated")
	}
	if err := (Schedule{{Cycle: -1, Node: 0}}).Validate(4); err == nil {
		t.Error("negative cycle validated")
	}
}

func TestMaxLive(t *testing.T) {
	s := Schedule{
		{Cycle: 0, Node: 0, Fail: true},
		{Cycle: 1, Node: 1, Fail: true},
		{Cycle: 2, Node: 0, Fail: false},
		{Cycle: 3, Node: 2, Fail: true},
		{Cycle: 3, Node: 2, Fail: true}, // duplicate fail must not double-count
	}
	if got := s.MaxLive(4); got != 2 {
		t.Errorf("MaxLive = %d, want 2", got)
	}
}

func TestRandomChurnReproducibleAndBounded(t *testing.T) {
	cfg := ChurnConfig{Order: 96, Cycles: 500, MaxLive: 5, Rate: 0.2, Seed: 7, Protect: []int{0, 1}}
	a, err := RandomChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("churn generated no events")
	}
	if err := a.Validate(96); err != nil {
		t.Fatal(err)
	}
	if live := a.MaxLive(96); live > 5 {
		t.Errorf("MaxLive %d exceeds configured bound 5", live)
	}
	fails, recovers := 0, 0
	for _, e := range a {
		if e.Node == 0 || e.Node == 1 {
			t.Fatalf("protected node in event %+v", e)
		}
		if e.Fail {
			fails++
		} else {
			recovers++
		}
	}
	if fails != recovers {
		t.Errorf("%d fails but %d recovers: every failure must be paired", fails, recovers)
	}

	if c, err := RandomChurn(ChurnConfig{Order: 96, Cycles: 500, MaxLive: 5, Rate: 0.2, Seed: 8}); err != nil {
		t.Fatal(err)
	} else if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestAdversarialAdjacent(t *testing.T) {
	hb := core.MustNew(2, 3)
	k := hb.M() + 3
	s, err := AdversarialAdjacent(hb, 0, k, 5, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(hb.Order()); err != nil {
		t.Fatal(err)
	}
	if got := s.MaxLive(hb.Order()); got != k {
		t.Errorf("MaxLive = %d, want %d", got, k)
	}
	nbr := map[int]bool{}
	for _, w := range hb.AppendNeighbors(0, nil) {
		nbr[w] = true
	}
	for _, e := range s {
		if !nbr[e.Node] {
			t.Errorf("event %+v fails a non-neighbor of the pivot", e)
		}
	}
	if _, err := AdversarialAdjacent(hb, 0, hb.Degree()+1, 0, 1, 10); err == nil {
		t.Error("k beyond the neighborhood size was accepted")
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(8)
	if s.Fail(-1) || s.Fail(8) {
		t.Error("out-of-range Fail reported a change")
	}
	if !s.Fail(3) || s.Fail(3) {
		t.Error("Fail idempotence broken")
	}
	if !s.Faulty(3) || s.Count() != 1 {
		t.Errorf("state after Fail: faulty=%v count=%d", s.Faulty(3), s.Count())
	}
	e := s.Epoch()
	if !s.Apply(Event{Node: 5, Fail: true}) {
		t.Error("Apply(fail) reported no change")
	}
	if s.Epoch() != e+1 {
		t.Errorf("epoch %d after one mutation from %d", s.Epoch(), e)
	}
	if got := s.List(); !reflect.DeepEqual(got, []int{3, 5}) {
		t.Errorf("List = %v", got)
	}
	mask := s.Mask()
	if !mask[3] || !mask[5] || len(mask) != 8 {
		t.Errorf("Mask = %v", mask)
	}
	mask[3] = false // must be a copy
	if !s.Faulty(3) {
		t.Error("Mask aliases internal state")
	}
	if !s.Recover(3) || s.Recover(3) {
		t.Error("Recover idempotence broken")
	}
	if s.Count() != 1 {
		t.Errorf("count %d after recover", s.Count())
	}
}

// TestSetConcurrent hammers the set from many goroutines; run under
// -race this is the concurrency-safety check.
func TestSetConcurrent(t *testing.T) {
	s := NewSet(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := (g*31 + i) % 64
				s.Fail(v)
				_ = s.Faulty(v)
				_ = s.Count()
				_ = s.List()
				s.Recover(v)
			}
		}(g)
	}
	wg.Wait()
	if s.Count() != 0 {
		t.Errorf("count %d after balanced fail/recover", s.Count())
	}
	if s.Epoch() == 0 {
		t.Error("epoch never advanced")
	}
}
