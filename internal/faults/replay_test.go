package faults

import (
	"context"
	"testing"
	"time"
)

func TestReplayTimedOrderAndCount(t *testing.T) {
	// Deliberately unsorted input: ReplayTimed must sort before replay.
	s := Schedule{
		{Cycle: 4, Node: 1, Fail: false},
		{Cycle: 0, Node: 1, Fail: true},
		{Cycle: 2, Node: 2, Fail: true},
	}
	var got []Event
	start := time.Now()
	n := ReplayTimed(context.Background(), s, 2*time.Millisecond, func(e Event) {
		got = append(got, e)
	})
	elapsed := time.Since(start)
	if n != 3 || len(got) != 3 {
		t.Fatalf("applied %d events (%d recorded), want 3", n, len(got))
	}
	want := Schedule{
		{Cycle: 0, Node: 1, Fail: true},
		{Cycle: 2, Node: 2, Fail: true},
		{Cycle: 4, Node: 1, Fail: false},
	}
	for i, e := range want {
		if got[i] != e {
			t.Errorf("event %d = %+v, want %+v", i, got[i], e)
		}
	}
	// The last event is due at 4 ticks = 8ms; the replay cannot finish
	// before that instant.
	if elapsed < 8*time.Millisecond {
		t.Errorf("replay finished in %v, before the last event's due time", elapsed)
	}
}

func TestReplayTimedCancellation(t *testing.T) {
	s := Schedule{
		{Cycle: 0, Node: 0, Fail: true},
		{Cycle: 1000, Node: 0, Fail: false}, // far in the future
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := ReplayTimed(ctx, s, 10*time.Millisecond, func(e Event) {
		cancel() // cancel mid-replay: the distant recover must not run
	})
	if n != 1 {
		t.Fatalf("applied %d events after mid-replay cancel, want 1", n)
	}
}

func TestReplayTimedEmpty(t *testing.T) {
	if n := ReplayTimed(context.Background(), nil, time.Millisecond, func(Event) {
		t.Error("apply called on an empty schedule")
	}); n != 0 {
		t.Errorf("applied %d events from an empty schedule", n)
	}
}
