// Package election implements synchronous leader election on
// hyper-butterfly networks — the direction the authors pursued next
// ("Leader Election in Hyper-Butterfly Graphs", Shi & Srimani): every
// node holds a unique comparable identifier, knows only its own ports,
// and the nodes must agree on the node with the largest identifier.
//
// Two protocols are provided, both exact and measured in rounds and
// messages:
//
//   - FloodMax: the classical baseline. Every node repeatedly sends the
//     largest identifier it has seen to all neighbors; after diameter
//     rounds all nodes know the global maximum. O(diam) rounds,
//     O(diam·|E|) messages in the worst case (here messages are only
//     sent when a node's best changes, so the practical count is far
//     lower).
//
//   - TreeElect: convergecast + broadcast along a BFS spanning tree of
//     the structured broadcast: leaves report their maxima inward, the
//     root learns the winner, then the result is broadcast back.
//     2·eccentricity rounds and exactly 2(N-1) messages — the
//     message-optimal pattern the topology's logarithmic diameter makes
//     fast.
package election

import (
	"fmt"

	"repro/internal/graph"
)

// Result summarises an election.
type Result struct {
	Leader   int // vertex id of the elected leader
	Rounds   int
	Messages int
}

// FloodMax elects the node with the largest identifier by flooding.
// ids[v] is v's identifier; identifiers must be distinct.
func FloodMax(g graph.Graph, ids []int64) (Result, error) {
	n := g.Order()
	if len(ids) != n {
		return Result{}, fmt.Errorf("election: %d ids for %d nodes", len(ids), n)
	}
	if err := checkDistinct(ids); err != nil {
		return Result{}, err
	}
	best := make([]int64, n)
	owner := make([]int, n) // vertex whose id is best[v]
	changed := make([]bool, n)
	for v := 0; v < n; v++ {
		best[v] = ids[v]
		owner[v] = v
		changed[v] = true
	}
	res := Result{}
	var buf []int
	for round := 1; ; round++ {
		type update struct {
			to    int
			id    int64
			owner int
		}
		var updates []update
		any := false
		for v := 0; v < n; v++ {
			if !changed[v] {
				continue
			}
			any = true
			buf = g.AppendNeighbors(v, buf[:0])
			for _, w := range buf {
				res.Messages++
				updates = append(updates, update{w, best[v], owner[v]})
			}
		}
		if !any {
			break
		}
		res.Rounds = round
		for v := range changed {
			changed[v] = false
		}
		for _, u := range updates {
			if u.id > best[u.to] {
				best[u.to] = u.id
				owner[u.to] = u.owner
				changed[u.to] = true
			}
		}
	}
	// The final round carries no new information; report the round at
	// which the last node actually learned the leader.
	res.Rounds--
	for v := 1; v < n; v++ {
		if best[v] != best[0] {
			return Result{}, fmt.Errorf("election: flooding did not converge (disconnected graph?)")
		}
	}
	res.Leader = owner[0]
	return res, nil
}

// TreeElect elects via convergecast + broadcast on the BFS tree rooted
// at root. Rounds = 2 · (tree depth); messages = 2(N-1).
func TreeElect(g graph.Graph, ids []int64, root int) (Result, error) {
	n := g.Order()
	if len(ids) != n {
		return Result{}, fmt.Errorf("election: %d ids for %d nodes", len(ids), n)
	}
	if err := checkDistinct(ids); err != nil {
		return Result{}, err
	}
	// Build the BFS tree (parents and depth-ordered traversal).
	parent := make([]int32, n)
	depth := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = int32(root)
	order := []int32{int32(root)}
	var buf []int
	maxDepth := int32(0)
	for head := 0; head < len(order); head++ {
		v := int(order[head])
		buf = g.AppendNeighbors(v, buf[:0])
		for _, w := range buf {
			if parent[w] == -1 {
				parent[w] = int32(v)
				depth[w] = depth[v] + 1
				if depth[w] > maxDepth {
					maxDepth = depth[w]
				}
				order = append(order, int32(w))
			}
		}
	}
	if len(order) != n {
		return Result{}, fmt.Errorf("election: BFS tree reaches %d of %d nodes", len(order), n)
	}
	// Convergecast: process vertices deepest-first; each sends its
	// subtree maximum to its parent (one message per non-root vertex).
	bestID := make([]int64, n)
	bestOwner := make([]int, n)
	for v := 0; v < n; v++ {
		bestID[v] = ids[v]
		bestOwner[v] = v
	}
	res := Result{}
	for i := len(order) - 1; i > 0; i-- {
		v := int(order[i])
		p := int(parent[v])
		res.Messages++
		if bestID[v] > bestID[p] {
			bestID[p] = bestID[v]
			bestOwner[p] = bestOwner[v]
		}
	}
	// Broadcast the winner back down: one message per non-root vertex.
	res.Messages += n - 1
	res.Rounds = 2 * int(maxDepth)
	res.Leader = bestOwner[root]
	return res, nil
}

func checkDistinct(ids []int64) error {
	seen := make(map[int64]int, len(ids))
	for v, id := range ids {
		if prev, dup := seen[id]; dup {
			return fmt.Errorf("election: nodes %d and %d share identifier %d", prev, v, id)
		}
		seen[id] = v
	}
	return nil
}
