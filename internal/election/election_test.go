package election

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func randomIDs(n int, seed int64) ([]int64, int) {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]int64, n)
	perm := rng.Perm(n)
	for v := 0; v < n; v++ {
		ids[v] = int64(perm[v])
	}
	leader := 0
	for v, id := range ids {
		if id == int64(n-1) {
			leader = v
		}
	}
	return ids, leader
}

func TestFloodMaxElectsMaximum(t *testing.T) {
	for _, dims := range [][2]int{{1, 3}, {2, 3}, {2, 4}} {
		hb := core.MustNew(dims[0], dims[1])
		ids, want := randomIDs(hb.Order(), int64(dims[0]*7+dims[1]))
		res, err := FloodMax(hb, ids)
		if err != nil {
			t.Fatalf("HB%v: %v", dims, err)
		}
		if res.Leader != want {
			t.Fatalf("HB%v: leader %d, want %d", dims, res.Leader, want)
		}
		// Information can travel at most one hop per round, so rounds
		// are at least the leader's eccentricity and never exceed the
		// diameter.
		ecc, _ := graph.Eccentricity(hb, want)
		if res.Rounds < ecc || res.Rounds > hb.DiameterFormula() {
			t.Fatalf("HB%v: rounds %d outside [%d, %d]", dims, res.Rounds, ecc, hb.DiameterFormula())
		}
		if res.Messages == 0 {
			t.Fatalf("HB%v: no messages", dims)
		}
	}
}

func TestTreeElect(t *testing.T) {
	for _, dims := range [][2]int{{1, 3}, {2, 4}} {
		hb := core.MustNew(dims[0], dims[1])
		ids, want := randomIDs(hb.Order(), 99)
		for _, root := range []int{0, hb.Order() / 2} {
			res, err := TreeElect(hb, ids, root)
			if err != nil {
				t.Fatalf("HB%v root %d: %v", dims, root, err)
			}
			if res.Leader != want {
				t.Fatalf("HB%v root %d: leader %d, want %d", dims, root, res.Leader, want)
			}
			if res.Messages != 2*(hb.Order()-1) {
				t.Fatalf("HB%v: messages %d, want %d", dims, res.Messages, 2*(hb.Order()-1))
			}
			ecc, _ := graph.Eccentricity(hb, root)
			if res.Rounds != 2*ecc {
				t.Fatalf("HB%v: rounds %d, want %d", dims, res.Rounds, 2*ecc)
			}
		}
	}
}

// TestTreeElectBeatsFloodMaxOnMessages quantifies the tradeoff the
// follow-up paper optimises.
func TestTreeElectBeatsFloodMaxOnMessages(t *testing.T) {
	hb := core.MustNew(2, 4)
	ids, _ := randomIDs(hb.Order(), 5)
	flood, err := FloodMax(hb, ids)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := TreeElect(hb, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Messages >= flood.Messages {
		t.Fatalf("tree %d messages not below flooding %d", tree.Messages, flood.Messages)
	}
	if flood.Leader != tree.Leader {
		t.Fatal("protocols disagree on the leader")
	}
}

func TestValidation(t *testing.T) {
	hb := core.MustNew(1, 3)
	if _, err := FloodMax(hb, make([]int64, 3)); err == nil {
		t.Error("accepted short id slice")
	}
	dup := make([]int64, hb.Order())
	if _, err := FloodMax(hb, dup); err == nil {
		t.Error("accepted duplicate ids")
	}
	if _, err := TreeElect(hb, dup, 0); err == nil {
		t.Error("TreeElect accepted duplicate ids")
	}
	if _, err := TreeElect(hb, make([]int64, 1), 0); err == nil {
		t.Error("TreeElect accepted short id slice")
	}
	// Disconnected graph: flooding must report failure.
	disc := graph.NewDense(4, [][2]int{{0, 1}, {2, 3}})
	if _, err := FloodMax(disc, []int64{3, 1, 2, 0}); err == nil {
		t.Error("FloodMax accepted a disconnected graph")
	}
	if _, err := TreeElect(disc, []int64{3, 1, 2, 0}, 0); err == nil {
		t.Error("TreeElect accepted a disconnected graph")
	}
}
