package embed

import (
	"testing"

	"repro/internal/graph"
)

// FuzzGridCycle checks that every accepted (a, b, k) yields a verified
// simple cycle and every rejection is for a documented reason.
func FuzzGridCycle(f *testing.F) {
	f.Add(4, 5, 10)
	f.Add(2, 2, 4)
	f.Add(6, 3, 18)
	f.Fuzz(func(t *testing.T, a, b, k int) {
		if a < 0 || b < 0 || k < 0 || a > 64 || b > 64 || k > 4096 {
			t.Skip()
		}
		cells, err := GridCycle(a, b, k)
		if err != nil {
			valid := a >= 2 && b >= 2 && k%2 == 0 && k >= 4 && k <= a*b &&
				(a%2 == 0 || k <= 2*a)
			if valid {
				t.Fatalf("GridCycle(%d,%d,%d) rejected a valid request: %v", a, b, k, err)
			}
			return
		}
		if len(cells) != k {
			t.Fatalf("GridCycle(%d,%d,%d): length %d", a, b, k, len(cells))
		}
		g := gridGraph{a, b}
		ids := make([]int, k)
		for i, rc := range cells {
			if rc[0] < 0 || rc[0] >= a || rc[1] < 0 || rc[1] >= b {
				t.Fatalf("cell %v out of %dx%d grid", rc, a, b)
			}
			ids[i] = rc[0]*b + rc[1]
		}
		if err := graph.VerifyCycle(g, ids); err != nil {
			t.Fatalf("GridCycle(%d,%d,%d): %v", a, b, k, err)
		}
	})
}
