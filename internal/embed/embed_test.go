package embed

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hypercube"
)

// gridGraph is the a x b grid used to validate GridCycle directly.
type gridGraph struct{ a, b int }

func (g gridGraph) Order() int { return g.a * g.b }

func (g gridGraph) AppendNeighbors(v int, buf []int) []int {
	r, c := v/g.b, v%g.b
	if r > 0 {
		buf = append(buf, v-g.b)
	}
	if r < g.a-1 {
		buf = append(buf, v+g.b)
	}
	if c > 0 {
		buf = append(buf, v-1)
	}
	if c < g.b-1 {
		buf = append(buf, v+1)
	}
	return buf
}

func TestGridCycleAllLengths(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {2, 5}, {4, 3}, {4, 7}, {6, 6}, {8, 5}} {
		a, b := dims[0], dims[1]
		g := gridGraph{a, b}
		for k := 4; k <= a*b; k += 2 {
			cells, err := GridCycle(a, b, k)
			if err != nil {
				t.Fatalf("GridCycle(%d,%d,%d): %v", a, b, k, err)
			}
			if len(cells) != k {
				t.Fatalf("GridCycle(%d,%d,%d): length %d", a, b, k, len(cells))
			}
			ids := make([]int, k)
			for i, rc := range cells {
				if rc[0] < 0 || rc[0] >= a || rc[1] < 0 || rc[1] >= b {
					t.Fatalf("GridCycle(%d,%d,%d): cell %v out of grid", a, b, k, rc)
				}
				ids[i] = rc[0]*b + rc[1]
			}
			if err := graph.VerifyCycle(g, ids); err != nil {
				t.Fatalf("GridCycle(%d,%d,%d): %v", a, b, k, err)
			}
		}
	}
}

func TestGridCycleErrors(t *testing.T) {
	if _, err := GridCycle(1, 5, 4); err == nil {
		t.Error("accepted 1-row grid")
	}
	if _, err := GridCycle(4, 4, 5); err == nil {
		t.Error("accepted odd k")
	}
	if _, err := GridCycle(4, 4, 2); err == nil {
		t.Error("accepted k = 2")
	}
	if _, err := GridCycle(4, 4, 18); err == nil {
		t.Error("accepted k > a*b")
	}
	if _, err := GridCycle(3, 4, 10); err == nil {
		t.Error("accepted odd row count for snake")
	}
}

func TestCubeTree(t *testing.T) {
	for k := 1; k <= 8; k++ {
		phi, err := CubeTree(k)
		if err != nil {
			t.Fatal(err)
		}
		tree := graph.CompleteBinaryTree{Levels: k}
		if len(phi) != tree.Order() {
			t.Fatalf("k=%d: size %d", k, len(phi))
		}
		host := hypercube.MustNew(k + 1)
		ints := make([]int, len(phi))
		for i, x := range phi {
			ints[i] = int(x)
		}
		if err := graph.VerifyEmbedding(tree, host, ints); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	if _, err := CubeTree(0); err == nil {
		t.Error("accepted k = 0")
	}
	if _, err := CubeTree(27); err == nil {
		t.Error("accepted k = 27")
	}
}

// TestCubeTreeFitsLargerCube checks the padding claim: T(k) in H_m for
// any m >= k+1 without relabeling.
func TestCubeTreeFitsLargerCube(t *testing.T) {
	phi, err := CubeTree(3)
	if err != nil {
		t.Fatal(err)
	}
	host := hypercube.MustNew(6)
	ints := make([]int, len(phi))
	for i, x := range phi {
		ints[i] = int(x)
	}
	if err := graph.VerifyEmbedding(graph.CompleteBinaryTree{Levels: 3}, host, ints); err != nil {
		t.Fatal(err)
	}
}

func TestTorusEmbeddings(t *testing.T) {
	hb := core.MustNew(3, 3)
	for _, kind := range []BfCycleKind{BfLevel, BfDoubleLevel, BfHamiltonian} {
		for n1 := 4; n1 <= 8; n1 += 2 {
			tor, phi, err := Torus(hb, n1, kind)
			if err != nil {
				t.Fatalf("Torus(%d, kind %d): %v", n1, kind, err)
			}
			if err := graph.VerifyEmbedding(tor, hb, phi); err != nil {
				t.Fatalf("Torus(%d, kind %d): %v", n1, kind, err)
			}
		}
	}
	if _, _, err := Torus(hb, 3, BfLevel); err == nil {
		t.Error("accepted odd torus side")
	}
	if _, _, err := Torus(hb, 16, BfLevel); err == nil {
		t.Error("accepted torus side > 2^m")
	}
}

// TestLemma2EvenCycles verifies the even-pancyclicity claim across the
// whole admissible range on HB(1,3) and HB(2,3), and at boundary and
// sampled lengths on HB(2,4).
func TestLemma2EvenCycles(t *testing.T) {
	for _, dims := range [][2]int{{1, 3}, {2, 3}} {
		hb := core.MustNew(dims[0], dims[1])
		max := hb.Order()
		for k := 4; k <= max; k += 2 {
			cyc, err := EvenCycle(hb, k)
			if err != nil {
				t.Fatalf("HB%v EvenCycle(%d): %v", dims, k, err)
			}
			if len(cyc) != k {
				t.Fatalf("HB%v EvenCycle(%d): length %d", dims, k, len(cyc))
			}
			if err := graph.VerifyCycle(hb, cyc); err != nil {
				t.Fatalf("HB%v EvenCycle(%d): %v", dims, k, err)
			}
		}
	}
	hb := core.MustNew(2, 4)
	for _, k := range []int{4, 6, 50, 128, 254, hb.Order() - 2, hb.Order()} {
		cyc, err := EvenCycle(hb, k)
		if err != nil {
			t.Fatalf("EvenCycle(%d): %v", k, err)
		}
		if err := graph.VerifyCycle(hb, cyc); err != nil {
			t.Fatalf("EvenCycle(%d): %v", k, err)
		}
	}
}

func TestEvenCycleErrors(t *testing.T) {
	hb := core.MustNew(2, 3)
	if _, err := EvenCycle(hb, 5); err == nil {
		t.Error("accepted odd k")
	}
	if _, err := EvenCycle(hb, hb.Order()+2); err == nil {
		t.Error("accepted k > order")
	}
	if _, err := EvenCycle(core.MustNew(0, 3), 6); err == nil {
		t.Error("accepted m = 0")
	}
}

// TestBinaryTree verifies the T(m+n-1) row of Figure 1.
func TestBinaryTree(t *testing.T) {
	for _, dims := range [][2]int{{0, 4}, {1, 4}, {2, 3}, {3, 3}, {4, 3}, {3, 4}} {
		hb := core.MustNew(dims[0], dims[1])
		levels, phi, err := BinaryTree(hb)
		if err != nil {
			t.Fatalf("HB%v: %v", dims, err)
		}
		if levels != dims[0]+dims[1]-1 {
			t.Fatalf("HB%v: levels %d, want %d", dims, levels, dims[0]+dims[1]-1)
		}
		tree := graph.CompleteBinaryTree{Levels: levels}
		if len(phi) != tree.Order() {
			t.Fatalf("HB%v: size %d, want %d", dims, len(phi), tree.Order())
		}
		if err := graph.VerifyEmbedding(tree, hb, phi); err != nil {
			t.Fatalf("HB%v: %v", dims, err)
		}
	}
}

// TestTheorem4MeshOfTrees sweeps the full admissible (p,q) range on
// HB(4,3) and HB(5,4).
func TestTheorem4MeshOfTrees(t *testing.T) {
	for _, dims := range [][2]int{{3, 3}, {4, 3}, {5, 4}} {
		hb := core.MustNew(dims[0], dims[1])
		for p := 1; p <= hb.M()-2; p++ {
			for q := 1; q <= hb.N(); q++ {
				mt, phi, err := MeshOfTrees(hb, p, q)
				if err != nil {
					t.Fatalf("HB%v MT(2^%d,2^%d): %v", dims, p, q, err)
				}
				if err := graph.CheckMeshOfTrees(mt); err != nil {
					t.Fatalf("HB%v MT(2^%d,2^%d): bad guest: %v", dims, p, q, err)
				}
				if err := graph.VerifyEmbedding(mt, hb, phi); err != nil {
					t.Fatalf("HB%v MT(2^%d,2^%d): %v", dims, p, q, err)
				}
			}
		}
	}
}

func TestMeshOfTreesBounds(t *testing.T) {
	hb := core.MustNew(3, 3)
	if _, _, err := MeshOfTrees(hb, 2, 1); err == nil {
		t.Error("accepted p > m-2")
	}
	if _, _, err := MeshOfTrees(hb, 0, 1); err == nil {
		t.Error("accepted p = 0")
	}
	if _, _, err := MeshOfTrees(hb, 1, 4); err == nil {
		t.Error("accepted q > n")
	}
	if _, _, err := MeshOfTrees(hb, 1, 0); err == nil {
		t.Error("accepted q = 0")
	}
}

// TestTorusKN sweeps the generalised torus embedding over lap counts.
func TestTorusKN(t *testing.T) {
	hb := core.MustNew(2, 3)
	for _, n1 := range []int{4} {
		for k := 1; k <= 8; k++ {
			tor, phi, err := TorusKN(hb, n1, k)
			if err != nil {
				t.Fatalf("TorusKN(%d,%d): %v", n1, k, err)
			}
			if tor.N2 != 3*k {
				t.Fatalf("TorusKN(%d,%d): side %d", n1, k, tor.N2)
			}
			if err := graph.VerifyEmbedding(tor, hb, phi); err != nil {
				t.Fatalf("TorusKN(%d,%d): %v", n1, k, err)
			}
		}
	}
	if _, _, err := TorusKN(hb, 4, 9); err == nil {
		t.Error("accepted k > 2^n")
	}
	if _, _, err := TorusKN(hb, 3, 2); err == nil {
		t.Error("accepted odd n1")
	}
}

// TestQualityOfSubgraphEmbeddings: every Section 4 embedding is a
// subgraph embedding, so dilation must be exactly 1 (and congestion 1:
// distinct guest edges map to distinct host edges under injectivity).
func TestQualityOfSubgraphEmbeddings(t *testing.T) {
	hb := core.MustNew(3, 3)
	dist := hb.Distance
	route := func(u, v int) []int { return hb.Route(u, v) }

	tor, phi, err := Torus(hb, 4, BfDoubleLevel)
	if err != nil {
		t.Fatal(err)
	}
	q, err := MeasureQuality(tor, hb.Order(), phi, dist, route)
	if err != nil {
		t.Fatal(err)
	}
	if q.Dilation != 1 || q.Congestion != 1 || q.AvgDilation != 1 {
		t.Fatalf("torus quality %+v, want dilation/congestion 1", q)
	}
	if q.Expansion != float64(hb.Order())/float64(tor.Order()) {
		t.Fatalf("expansion %v", q.Expansion)
	}

	levels, tphi, err := BinaryTree(hb)
	if err != nil {
		t.Fatal(err)
	}
	q, err = MeasureQuality(graph.CompleteBinaryTree{Levels: levels}, hb.Order(), tphi, dist, route)
	if err != nil {
		t.Fatal(err)
	}
	if q.Dilation != 1 || q.Congestion != 1 {
		t.Fatalf("tree quality %+v", q)
	}
}

// TestQualityDetectsDilation uses a deliberately stretched embedding.
func TestQualityDetectsDilation(t *testing.T) {
	// Guest C4 into host ring C8 at every second position: each guest
	// edge stretches over 2 host edges, and the routed images tile the
	// ring without overlap.
	host := graph.Ring{N: 8}
	hostDist := func(u, v int) int {
		d := (v - u + 8) % 8
		if d > 4 {
			d = 8 - d
		}
		return d
	}
	hostRoute := func(u, v int) []int {
		p := []int{u}
		cw := (v - u + 8) % 8
		step := 1
		if cw > 4 {
			step = 7 // counter-clockwise
		}
		for cur := u; cur != v; {
			cur = (cur + step) % 8
			p = append(p, cur)
		}
		return p
	}
	phi := []int{0, 2, 4, 6}
	q, err := MeasureQuality(graph.Ring{N: 4}, 8, phi, hostDist, hostRoute)
	if err != nil {
		t.Fatal(err)
	}
	if q.Dilation != 2 || q.AvgDilation != 2 || q.Congestion != 1 || q.Expansion != 2 {
		t.Fatalf("quality %+v", q)
	}
	_ = host
	if _, err := MeasureQuality(graph.Ring{N: 4}, 8, []int{0}, hostDist, hostRoute); err == nil {
		t.Error("accepted short map")
	}
}
