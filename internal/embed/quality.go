package embed

import (
	"fmt"

	"repro/internal/graph"
)

// Quality summarises how faithfully an embedding lets the host emulate
// the guest — the quantities behind the paper's "ability to emulate
// most of existing architectures": dilation bounds the slowdown of one
// guest step, congestion bounds the link contention when all guest
// edges are active at once, and expansion is the wasted host capacity.
type Quality struct {
	// Dilation is the maximum host distance between the images of
	// adjacent guest vertices (1 for a subgraph embedding).
	Dilation int
	// AvgDilation averages the same quantity over guest edges.
	AvgDilation float64
	// Congestion is the maximum number of guest edges whose routed
	// images share one host edge.
	Congestion int
	// Expansion is host order / guest order.
	Expansion float64
}

// MeasureQuality computes the quality of phi: guest -> host, where the
// host's metric is supplied as distance and routing functions (every
// topology in this repository exposes both). Guest vertices with no
// incident edges contribute nothing.
func MeasureQuality(guest graph.Graph, hostOrder int, phi []int,
	dist func(u, v int) int, route func(u, v int) []int) (Quality, error) {
	if len(phi) != guest.Order() {
		return Quality{}, fmt.Errorf("embed: map covers %d vertices, guest has %d", len(phi), guest.Order())
	}
	q := Quality{Expansion: float64(hostOrder) / float64(guest.Order())}
	load := make(map[[2]int]int)
	edges := 0
	sum := 0
	var buf []int
	for v := 0; v < guest.Order(); v++ {
		buf = guest.AppendNeighbors(v, buf[:0])
		for _, w := range buf {
			if w <= v { // each undirected guest edge once
				continue
			}
			edges++
			d := dist(phi[v], phi[w])
			sum += d
			if d > q.Dilation {
				q.Dilation = d
			}
			p := route(phi[v], phi[w])
			for i := 1; i < len(p); i++ {
				a, b := p[i-1], p[i]
				if a > b {
					a, b = b, a
				}
				load[[2]int{a, b}]++
			}
		}
	}
	for _, l := range load {
		if l > q.Congestion {
			q.Congestion = l
		}
	}
	if edges > 0 {
		q.AvgDilation = float64(sum) / float64(edges)
	}
	return q, nil
}
