package embed

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/graph"
)

// BfCycleKind selects which of the constructive butterfly cycles forms
// the second side of a torus embedding.
type BfCycleKind int

const (
	// BfLevel is the n-cycle traced by the g generator.
	BfLevel BfCycleKind = iota
	// BfDoubleLevel is the 2n-cycle traced by the f generator.
	BfDoubleLevel
	// BfHamiltonian is the full n·2^n-cycle.
	BfHamiltonian
)

// bfCycle materialises the chosen butterfly cycle.
func bfCycle(hb *core.HyperButterfly, kind BfCycleKind) ([]int, error) {
	bf := hb.Butterfly()
	switch kind {
	case BfLevel:
		return bf.LevelCycle(0), nil
	case BfDoubleLevel:
		return bf.DoubleLevelCycle(0), nil
	case BfHamiltonian:
		return bf.HamiltonianCycle(), nil
	default:
		return nil, fmt.Errorf("embed: unknown butterfly cycle kind %d", kind)
	}
}

// Torus embeds the wrap-around mesh M(n1, n2) into HB(m,n) (the
// "2-dimensional Mesh: Yes" row of Figures 1 and 2): C(n1) is a cycle of
// the hypercube factor (even n1, 4 <= n1 <= 2^m) and C(n2) one of the
// constructive butterfly cycles. It returns the guest torus and the
// vertex map, ready for graph.VerifyEmbedding.
func Torus(hb *core.HyperButterfly, n1 int, kind BfCycleKind) (graph.Torus, []int, error) {
	cubeCycle, err := hb.Cube().EvenCycle(n1)
	if err != nil {
		return graph.Torus{}, nil, fmt.Errorf("embed: torus first side: %w", err)
	}
	side2, err := bfCycle(hb, kind)
	if err != nil {
		return graph.Torus{}, nil, err
	}
	if len(side2) < 3 {
		return graph.Torus{}, nil, fmt.Errorf("embed: butterfly cycle too short (%d)", len(side2))
	}
	t := graph.Torus{N1: n1, N2: len(side2)}
	phi := make([]int, t.Order())
	for i := 0; i < n1; i++ {
		for j := 0; j < t.N2; j++ {
			phi[t.Encode(i, j)] = hb.Encode(cubeCycle[i], side2[j])
		}
	}
	return t, phi, nil
}

// TorusKN embeds the wrap-around mesh M(n1, k·n) into HB(m,n) for any
// even n1 in [4, 2^m] and any lap count k in [1, 2^n], using the
// general kn-cycle family of Remark 9 for the butterfly side. This
// parameterises the paper's "2-dimensional mesh" row over its full
// constructive range.
func TorusKN(hb *core.HyperButterfly, n1, k int) (graph.Torus, []int, error) {
	cubeCycle, err := hb.Cube().EvenCycle(n1)
	if err != nil {
		return graph.Torus{}, nil, fmt.Errorf("embed: torus first side: %w", err)
	}
	side2, err := hb.Butterfly().CycleKN(k)
	if err != nil {
		return graph.Torus{}, nil, fmt.Errorf("embed: torus second side: %w", err)
	}
	if len(side2) < 3 {
		return graph.Torus{}, nil, fmt.Errorf("embed: butterfly cycle too short (%d)", len(side2))
	}
	t := graph.Torus{N1: n1, N2: len(side2)}
	phi := make([]int, t.Order())
	for i := 0; i < n1; i++ {
		for j := 0; j < t.N2; j++ {
			phi[t.Encode(i, j)] = hb.Encode(cubeCycle[i], side2[j])
		}
	}
	return t, phi, nil
}

// EvenCycle returns a simple cycle of even length k through HB(m,n), for
// 4 <= k <= n·2^(m+n) (Lemma 2). Requires m >= 1 (for m = 0 use the
// butterfly's own cycle constructions).
//
// The cycle is drawn inside the 2^m x n·2^n grid spanned by the Gray
// cycle of H_m and the Hamiltonian cycle of B_n: grid rows/columns are
// hypercube/butterfly edges, so any grid cycle is an HB cycle.
func EvenCycle(hb *core.HyperButterfly, k int) ([]int, error) {
	if hb.M() < 1 {
		return nil, fmt.Errorf("embed: EvenCycle requires m >= 1, got m = %d", hb.M())
	}
	a := 1 << uint(hb.M())
	rows := bitvec.GrayCycle(hb.M())
	cols := hb.Butterfly().HamiltonianCycle()
	cells, err := GridCycle(a, len(cols), k)
	if err != nil {
		return nil, err
	}
	cycle := make([]int, len(cells))
	for i, rc := range cells {
		cycle[i] = hb.Encode(int(rows[rc[0]]), cols[rc[1]])
	}
	return cycle, nil
}

// BinaryTree embeds the complete binary tree T(m+n-1) into HB(m,n)
// (Figure 1's "Binary Tree" row). It returns the number of tree levels
// and the heap-ordered vertex map.
//
// For m >= 2 the top T(m-1) lives in the sub-hypercube (H_m, identity)
// via CubeTree, and each of its 2^(m-2) leaves roots a copy of the
// butterfly tree T(n+1) inside its own sub-butterfly; the butterfly tree
// is rooted at the identity, which is exactly the butterfly label shared
// by the whole top tree, so leaf and root coincide and the levels total
// (m-1) + (n+1) - 1 = m+n-1. For m <= 1 the tree is the top m+n-1
// levels of the butterfly tree inside a single sub-butterfly.
func BinaryTree(hb *core.HyperButterfly) (int, []int, error) {
	m, n := hb.M(), hb.N()
	levels := m + n - 1
	bf := hb.Butterfly()
	bfTree := bf.TreeEmbedding() // T(n+1) rooted at the identity
	if m <= 1 {
		// Top `levels` levels of T(n+1); levels = n-1 or n, both <= n+1.
		phi := make([]int, 1<<uint(levels)-1)
		for i := range phi {
			phi[i] = hb.Encode(0, bfTree[i])
		}
		return levels, phi, nil
	}
	topPhi, err := CubeTree(m - 1) // T(m-1) in H_m
	if err != nil {
		return 0, nil, err
	}
	phi := make([]int, 1<<uint(levels)-1)
	topLevels := m - 1
	var place func(ti, di, depth int)
	place = func(ti, di, depth int) {
		h := int(topPhi[ti])
		phi[di] = hb.Encode(h, bf.Identity())
		if depth == topLevels-1 {
			// Leaf of the top tree: graft T(n+1) minus its root into the
			// sub-butterfly (h, B_n). bfTree[0] is the identity = this node.
			graftButterflySubtree(hb, phi, bfTree, h, 1, 2*di+1)
			graftButterflySubtree(hb, phi, bfTree, h, 2, 2*di+2)
			return
		}
		place(2*ti+1, 2*di+1, depth+1)
		place(2*ti+2, 2*di+2, depth+1)
	}
	place(0, 0, 0)
	return levels, phi, nil
}

// graftButterflySubtree copies the subtree of the butterfly tree rooted
// at heap index si into phi at heap index di, inside sub-butterfly h.
func graftButterflySubtree(hb *core.HyperButterfly, phi []int, bfTree []int, h, si, di int) {
	phi[di] = hb.Encode(h, bfTree[si])
	if 2*si+1 < len(bfTree) {
		graftButterflySubtree(hb, phi, bfTree, h, 2*si+1, 2*di+1)
		graftButterflySubtree(hb, phi, bfTree, h, 2*si+2, 2*di+2)
	}
}

// MeshOfTrees embeds MT(2^p, 2^q) into HB(m,n) for 1 <= p <= m-2 and
// 1 <= q <= n (Theorem 4), via Lemma 4: MT(2^p,2^q) is a subgraph of
// T(p+1) x T(q+1), whose factors embed into H_m (CubeTree) and B_n
// (top q+1 levels of the Lemma 3 tree). The returned map covers the
// ambient product indexing used by graph.MeshOfTrees.
func MeshOfTrees(hb *core.HyperButterfly, p, q int) (graph.MeshOfTrees, []int, error) {
	m, n := hb.M(), hb.N()
	if p < 1 || p > m-2 {
		return graph.MeshOfTrees{}, nil, fmt.Errorf("embed: p = %d out of range [1, m-2] for m = %d (Theorem 4)", p, m)
	}
	if q < 1 || q > n {
		return graph.MeshOfTrees{}, nil, fmt.Errorf("embed: q = %d out of range [1, n] for n = %d (Theorem 4)", q, n)
	}
	rowTree, err := CubeTree(p + 1) // T(p+1) in H_{p+2} subset of H_m
	if err != nil {
		return graph.MeshOfTrees{}, nil, err
	}
	bfTree := hb.Butterfly().TreeEmbedding() // T(n+1); top q+1 levels form T(q+1)
	colSize := 1<<uint(q+1) - 1
	mt := graph.MeshOfTrees{P: p, Q: q}
	phi := make([]int, mt.Order())
	for i := 0; i < len(rowTree); i++ {
		for j := 0; j < colSize; j++ {
			phi[mt.Encode(i, j)] = hb.Encode(int(rowTree[i]), bfTree[j])
		}
	}
	return mt, phi, nil
}
