package embed

import "fmt"

// CubeTree returns an embedding of the complete binary tree T(k)
// (2^k - 1 vertices, heap order) into the hypercube H_{k+1}: the
// returned slice maps tree vertex -> (k+1)-bit hypercube label. This is
// the hypercube half of Theorem 4's mesh-of-trees embedding; the p <=
// m-2 bound there is exactly "T(p+1) needs H_{p+3-1}".
//
// Construction (derived; verified exhaustively in tests). Strengthened
// invariant Q(k): H_{k+1} contains T(k) rooted at r together with a free
// handle path h ~ r, h2 ~ h (h, h2 unused).
//
//	Q(1): T(1) = {00}, h = 01, h2 = 11 in H_2.
//	Q(k+1): split H_{k+2} on its top bit. Place a Q(k) instance in
//	half 0 (root rL, handle hL, hL2). Re-embed a second Q(k) instance
//	into half 1 by the automorphism x -> pi(x xor rR) xor hL, where pi
//	transposes the bit of hR xor rR with the bit of hL2 xor hL; this
//	puts the second root at cross(hL) and its (free) handle at
//	cross(hL2). The new root is hL with children rL and cross(hL); the
//	new handle path is hL2, cross(hL2) — both still free.
func CubeTree(k int) ([]uint64, error) {
	if k < 1 || k > 26 {
		return nil, fmt.Errorf("embed: CubeTree levels %d out of range [1,26]", k)
	}
	phi, _, _ := cubeTreeRec(k)
	return phi, nil
}

// cubeTreeRec returns (phi, handle, handle2) per invariant Q(k), with
// labels in H_{k+1}.
func cubeTreeRec(k int) (phi []uint64, h, h2 uint64) {
	if k == 1 {
		return []uint64{0}, 1, 3
	}
	left, hL, hL2 := cubeTreeRec(k - 1)
	right, hR, hR2 := cubeTreeRec(k - 1)
	_ = hR2
	top := uint64(1) << uint(k)
	rR := right[0]
	di := hR ^ rR  // single bit: handle direction of the right instance
	dj := hL2 ^ hL // single bit: where the right handle must land
	psi := func(x uint64) uint64 {
		x ^= rR
		// Transpose bits di and dj.
		if (x&di != 0) != (x&dj != 0) {
			x ^= di | dj
		}
		return x ^ hL | top
	}
	size := 2*len(left) + 1
	phi = make([]uint64, size)
	phi[0] = hL
	placeSubtree(phi, 1, left)
	rightImg := make([]uint64, len(right))
	for i, x := range right {
		rightImg[i] = psi(x)
	}
	placeSubtree(phi, 2, rightImg)
	return phi, hL2, hL2 | top
}

// placeSubtree copies a heap-ordered tree embedding src into dst as the
// subtree rooted at heap index root.
func placeSubtree(dst []uint64, root int, src []uint64) {
	var rec func(si, di int)
	rec = func(si, di int) {
		dst[di] = src[si]
		if 2*si+1 < len(src) {
			rec(2*si+1, 2*di+1)
			rec(2*si+2, 2*di+2)
		}
	}
	rec(0, root)
}
