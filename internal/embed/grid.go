// Package embed realises the embedding results of Section 4 of the
// paper constructively: even cycles (Lemma 2), wrap-around meshes /
// tori, complete binary trees (Lemma 3 and the T(m+n-1) row of
// Figure 1) and meshes of trees (Theorem 4). Every embedding is
// returned as an explicit map and is validated by graph verifiers in
// the tests — no claim is trusted on paper alone.
package embed

import "fmt"

// GridCycle returns a simple cycle of length k in the a x b grid graph
// (vertices (row, col), edges between orthogonal neighbors, no
// wrap-around), for even k with 4 <= k <= a*b. Rows a must be even
// unless the cycle fits in the first two columns.
//
// Construction: for k <= 2a a two-column ladder suffices. Otherwise the
// cycle snakes through the first W = floor(k/a) columns boustrophedon
// fashion with column 0 as the return rail (a Hamiltonian cycle of the
// a x W subgrid), and the remaining k - aW vertices are added as
// depth-one "bumps" into column W, one per row pair; k - aW < a = twice
// the number of row pairs, so the bumps always fit.
func GridCycle(a, b, k int) ([][2]int, error) {
	if a < 2 || b < 2 {
		return nil, fmt.Errorf("embed: grid %dx%d has no cycles", a, b)
	}
	if k%2 != 0 || k < 4 || k > a*b {
		return nil, fmt.Errorf("embed: no cycle of length %d in %dx%d grid (need even k in [4,%d])", k, a, b, a*b)
	}
	q := k / 2
	if q <= a {
		// Two-column ladder of height q.
		cells := make([][2]int, 0, k)
		for r := 0; r < q; r++ {
			cells = append(cells, [2]int{r, 0})
		}
		for r := q - 1; r >= 0; r-- {
			cells = append(cells, [2]int{r, 1})
		}
		return cells, nil
	}
	if a%2 != 0 {
		return nil, fmt.Errorf("embed: snake cycle of length %d needs an even row count, got %d", k, a)
	}
	w := k / a
	bumps := (k - a*w) / 2
	cells := make([][2]int, 0, k)
	add := func(r, c int) { cells = append(cells, [2]int{r, c}) }
	for c := 0; c < w; c++ {
		add(0, c)
	}
	for r := 0; r < a-1; r += 2 {
		// Arrived at (r, w-1).
		if bumps > 0 {
			add(r, w)
			add(r+1, w)
			bumps--
		}
		add(r+1, w-1)
		for c := w - 2; c >= 1; c-- {
			add(r+1, c)
		}
		if r+2 <= a-1 {
			add(r+2, 1)
			for c := 2; c <= w-1; c++ {
				add(r+2, c)
			}
		}
	}
	add(a-1, 0)
	for r := a - 2; r >= 1; r-- {
		add(r, 0)
	}
	return cells, nil
}
