package tables

import (
	"strings"
	"testing"
)

// TestFigure1SmallInstance regenerates Figure 1 at (m,n) = (2,3), where
// every cell can be measured exactly, and checks measured == formula for
// all four families.
func TestFigure1SmallInstance(t *testing.T) {
	rows := Figure1(2, 3, true)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Diameter != r.DiameterFormula {
			t.Errorf("%s: diameter %d != formula %d", r.Name, r.Diameter, r.DiameterFormula)
		}
		if r.Connectivity != r.ConnectivityFormula {
			t.Errorf("%s: connectivity %d != formula %d", r.Name, r.Connectivity, r.ConnectivityFormula)
		}
	}
	// Spot-check the family invariants of the paper's table.
	h, b, hd, hb := rows[0], rows[1], rows[2], rows[3]
	if h.Nodes != 32 || h.DegreeMax != 5 {
		t.Errorf("hypercube row: %+v", h)
	}
	if b.Nodes != 5*32 || b.DegreeMax != 4 {
		t.Errorf("butterfly row: %+v", b)
	}
	if hd.Regular {
		t.Error("HD must be irregular")
	}
	if hd.ConnectivityFormula != 4 { // m+2
		t.Errorf("HD connectivity formula %d", hd.ConnectivityFormula)
	}
	if !hb.Regular || hb.DegreeMax != 6 || hb.ConnectivityFormula != 6 {
		t.Errorf("HB row: %+v", hb)
	}
	// The headline: HB is regular AND maximally fault tolerant, HD is
	// neither.
	if hb.Connectivity != hb.DegreeMax {
		t.Error("HB not maximally fault tolerant")
	}
	if hd.Connectivity == hd.DegreeMax {
		t.Error("HD unexpectedly maximally fault tolerant")
	}
}

// TestFigure2QuickMode regenerates Figure 2 with sampled connectivity
// and formula diameters for the HD instances (exact mode is exercised by
// cmd/hbtables and the benchmark harness).
func TestFigure2QuickMode(t *testing.T) {
	rows := Figure2(false)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	hb, hd1, hd2 := rows[0], rows[1], rows[2]
	// All three instances accommodate the same number of nodes — the
	// premise of the paper's comparison.
	if hb.Nodes != 16384 || hd1.Nodes != 16384 || hd2.Nodes != 16384 {
		t.Fatalf("node counts: %d %d %d", hb.Nodes, hd1.Nodes, hd2.Nodes)
	}
	if hb.Name != "Hyper-Butterfly HB(3,8)" {
		t.Errorf("name %q", hb.Name)
	}
	// HB(3,8): degree 7, diameter 3+12=15, connectivity 7.
	if hb.DegreeMax != 7 || hb.Diameter != 15 {
		t.Errorf("HB(3,8): %+v", hb)
	}
	if hb.Connectivity != 7 {
		t.Errorf("HB(3,8) sampled connectivity %d, want 7", hb.Connectivity)
	}
	// HD(3,11): degrees 5..7, diameter formula 14, fault tolerance 5.
	if hd1.DegreeMin != 5 || hd1.DegreeMax != 7 || hd1.DiameterFormula != 14 {
		t.Errorf("HD(3,11): %+v", hd1)
	}
	if hd1.Connectivity != 5 {
		t.Errorf("HD(3,11) sampled connectivity %d, want 5", hd1.Connectivity)
	}
	// HD(6,8): degrees 8..10, diameter formula 14, fault tolerance 8.
	if hd2.DegreeMin != 8 || hd2.DegreeMax != 10 {
		t.Errorf("HD(6,8): %+v", hd2)
	}
	if hd2.Connectivity != 8 {
		t.Errorf("HD(6,8) sampled connectivity %d, want 8", hd2.Connectivity)
	}
}

func TestRender(t *testing.T) {
	out := Render("Figure 1 (m=2, n=3)", Figure1(2, 3, false))
	for _, want := range []string{"Hyper-Butterfly HB(2,3)", "Fault-tolerance", "Nodes", "MISMATCH"} {
		if want == "MISMATCH" {
			if strings.Contains(out, want) {
				t.Errorf("unexpected mismatch flag in output:\n%s", out)
			}
			continue
		}
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	sym := Figure1Symbolic()
	if !strings.Contains(sym, "n·2^(m+n)") || !strings.Contains(sym, "Fault-tolerance") {
		t.Errorf("symbolic table malformed:\n%s", sym)
	}
}
