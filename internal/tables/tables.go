// Package tables regenerates the paper's evaluation artifacts: the
// family comparison of Figure 1 and the concrete instance comparison of
// Figure 2 (HB(3,8) vs HD(3,11) vs HD(6,8)). Every numeric cell is
// measured on the constructed network — node and edge counts from the
// built adjacency, diameters by (parallel) BFS, fault tolerance by
// max-flow connectivity where exact computation is feasible and by
// minimum-degree bounds plus sampled local connectivity on the 16K-node
// Figure 2 instances.
package tables

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"repro/internal/butterfly"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hypercube"
	"repro/internal/hyperdebruijn"
)

// Summary is one row of a comparison table.
type Summary struct {
	Name    string
	Nodes   int
	Edges   int
	Regular bool
	// Degree is the common degree for regular networks; DegreeMin/Max
	// expose the spread for irregular ones.
	DegreeMin, DegreeMax int
	// Diameter is the measured value (-1 when not measured); formulas
	// carry the analytic claims being checked.
	Diameter            int
	DiameterFormula     int
	Connectivity        int // measured (-1 when not measured exactly)
	ConnectivityFormula int
	ConnectivityNote    string
	// Embedding capability notes (the bottom rows of Figures 1 and 2).
	Cycles, Mesh, BinaryTree, MeshOfTrees string
}

// connSampleBudget is the number of random far-vertex probes used when
// exact global connectivity is too expensive.
const connSampleBudget = 12

// exactLimit is the order up to which exact diameter and connectivity
// are always computed.
const exactLimit = 4096

// SummarizeHypercube measures H_dim.
func SummarizeHypercube(dim int, exact bool) Summary {
	c := hypercube.MustNew(dim)
	d := graph.Build(c)
	s := Summary{
		Name:                fmt.Sprintf("Hypercube H(%d)", dim),
		Nodes:               d.Order(),
		Edges:               d.EdgeCount(),
		Regular:             true,
		DegreeMin:           dim,
		DegreeMax:           dim,
		Diameter:            -1,
		DiameterFormula:     c.DiameterFormula(),
		Connectivity:        -1,
		ConnectivityFormula: c.ConnectivityFormula(),
		Cycles:              "even cycles 4..2^m",
		Mesh:                "yes",
		BinaryTree:          fmt.Sprintf("T(%d)", dim-1),
		MeshOfTrees:         "yes",
	}
	// H is vertex-transitive: one BFS gives the diameter.
	s.Diameter, _ = d.EccentricityScratch(0, graph.NewScratch(d.Order()))
	if exact || d.Order() <= exactLimit {
		s.Connectivity = graph.ConnectivityVertexTransitiveParallel(d, 0)
		s.ConnectivityNote = "exact (max-flow)"
	} else {
		s.Connectivity, s.ConnectivityNote = sampledConnectivityVT(d, 0)
	}
	return s
}

// SummarizeButterfly measures B_n.
func SummarizeButterfly(n int, exact bool) Summary {
	b := butterfly.MustNew(n)
	d := b.Dense()
	s := Summary{
		Name:                fmt.Sprintf("Butterfly B(%d)", n),
		Nodes:               d.Order(),
		Edges:               d.EdgeCount(),
		Regular:             true,
		DegreeMin:           4,
		DegreeMax:           4,
		DiameterFormula:     b.DiameterFormula(),
		Connectivity:        -1,
		ConnectivityFormula: b.ConnectivityFormula(),
		Cycles:              "cycles kn+2k'",
		Mesh:                "no",
		BinaryTree:          fmt.Sprintf("T(%d)", n+1),
		MeshOfTrees:         "yes",
	}
	s.Diameter, _ = d.EccentricityScratch(b.Identity(), graph.NewScratch(d.Order()))
	if exact || d.Order() <= exactLimit {
		s.Connectivity = graph.ConnectivityVertexTransitiveParallel(d, 0)
		s.ConnectivityNote = "exact (max-flow)"
	} else {
		s.Connectivity, s.ConnectivityNote = sampledConnectivityVT(d, b.Identity())
	}
	return s
}

// SummarizeHD measures HD(m,n). exact enables the full-sweep diameter
// and exact connectivity regardless of size.
func SummarizeHD(m, n int, exact bool) Summary {
	hd := hyperdebruijn.MustNew(m, n)
	d := graph.Build(hd)
	st := graph.Degrees(d)
	s := Summary{
		Name:                fmt.Sprintf("Hyper-deBruijn HD(%d,%d)", m, n),
		Nodes:               d.Order(),
		Edges:               d.EdgeCount(),
		Regular:             st.Regular,
		DegreeMin:           st.Min,
		DegreeMax:           st.Max,
		Diameter:            -1,
		DiameterFormula:     hd.DiameterFormula(),
		Connectivity:        -1,
		ConnectivityFormula: hd.ConnectivityFormula(),
		Cycles:              "pancyclic",
		Mesh:                "yes",
		BinaryTree:          fmt.Sprintf("T(%d)", m+n-1),
		MeshOfTrees:         fmt.Sprintf("MT(2^%d, 2^%d)", maxInt(m-2, 0), n),
	}
	if exact || d.Order() <= exactLimit {
		s.Diameter = graph.DiameterParallel(d, 0)
	}
	if d.Order() <= exactLimit {
		s.Connectivity = graph.ConnectivityParallel(d, 0)
		s.ConnectivityNote = "exact (max-flow)"
	} else {
		// A de Bruijn loop vertex (word 00..0) has minimum degree m+2;
		// probe local connectivity from it to random far vertices.
		loop := hd.Encode(0, 0)
		s.Connectivity, s.ConnectivityNote = sampledConnectivityAt(d, loop)
	}
	return s
}

// SummarizeHB measures HB(m,n).
func SummarizeHB(m, n int, exact bool) Summary {
	hb := core.MustNew(m, n)
	d := hb.Dense()
	s := Summary{
		Name:                fmt.Sprintf("Hyper-Butterfly HB(%d,%d)", m, n),
		Nodes:               d.Order(),
		Edges:               d.EdgeCount(),
		Regular:             true,
		DegreeMin:           hb.Degree(),
		DegreeMax:           hb.Degree(),
		DiameterFormula:     hb.DiameterFormula(),
		Connectivity:        -1,
		ConnectivityFormula: hb.ConnectivityFormula(),
		Cycles:              fmt.Sprintf("even cycles 4..%d", hb.Order()),
		Mesh:                "yes",
		BinaryTree:          fmt.Sprintf("T(%d)", m+n-1),
		MeshOfTrees:         fmt.Sprintf("MT(2^%d, 2^%d)", maxInt(m-2, 1), n),
	}
	s.Diameter, _ = d.EccentricityScratch(hb.Identity(), graph.NewScratch(d.Order())) // vertex-transitive
	if exact || d.Order() <= exactLimit {
		s.Connectivity = graph.ConnectivityVertexTransitiveParallel(d, 0)
		s.ConnectivityNote = "exact (max-flow)"
	} else {
		s.Connectivity, s.ConnectivityNote = sampledConnectivityVT(d, hb.Identity())
	}
	return s
}

// sampledConnectivityVT estimates the connectivity of a vertex-transitive
// graph: the minimum local connectivity from a base vertex to random
// non-neighbors plus all vertices at distance 2 from it (minimum cuts of
// vertex-transitive graphs in this family isolate neighborhoods, which
// distance-2 probes detect).
func sampledConnectivityVT(d *graph.Dense, base int) (int, string) {
	rng := rand.New(rand.NewSource(1))
	targets := make(map[int]bool)
	dist := graph.BFS(d, base, nil)
	for v, dv := range dist {
		if dv == 2 {
			targets[v] = true
			if len(targets) >= connSampleBudget {
				break
			}
		}
	}
	for len(targets) < 2*connSampleBudget {
		v := rng.Intn(d.Order())
		if v != base && !d.HasEdge(base, v) {
			targets[v] = true
		}
	}
	// One flow arena serves every probe; the running best caps each flow
	// so later probes stop as soon as they match the current minimum.
	fs := graph.NewFlowScratch(d)
	best := d.Order()
	for v := range targets {
		if c := fs.LocalConnectivity(base, v, best); c < best {
			best = c
		}
	}
	return best, fmt.Sprintf("sampled upper bound (%d probes); exact on small instances in tests", len(targets))
}

// sampledConnectivityAt probes local connectivity from a specific weak
// vertex (e.g. a de Bruijn loop vertex) to random and distance-2
// targets.
func sampledConnectivityAt(d *graph.Dense, weak int) (int, string) {
	best, note := sampledConnectivityVT(d, weak)
	return best, note + "; probed from a minimum-degree vertex"
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Figure1 regenerates the comparison of Figure 1 at a concrete (m,n):
// the four families at matched dimension budget m+n.
func Figure1(m, n int, exact bool) []Summary {
	return []Summary{
		SummarizeHypercube(m+n, exact),
		SummarizeButterfly(m+n, exact),
		SummarizeHD(m, n, exact),
		SummarizeHB(m, n, exact),
	}
}

// Figure2 regenerates the concrete comparison of Figure 2: HB(3,8)
// against the two hyper-deBruijn instances with the same number of
// nodes. exact enables the full-sweep HD diameters (a few seconds).
func Figure2(exact bool) []Summary {
	hb := SummarizeHB(3, 8, false)
	hb.MeshOfTrees = "MT(2^1, 2^8)"
	hd1 := SummarizeHD(3, 11, exact)
	hd1.MeshOfTrees = "MT(2^1, 2^10)"
	hd1.BinaryTree = "T(13)"
	hd2 := SummarizeHD(6, 8, exact)
	hd2.MeshOfTrees = "MT(2^4, 2^6)"
	hd2.BinaryTree = "T(13)"
	return []Summary{hb, hd1, hd2}
}

// Figure1Symbolic returns the formula table exactly as printed in
// Figure 1 of the paper, for side-by-side display with measured values.
func Figure1Symbolic() string {
	rows := [][]string{
		{"Parameter", "Hypercube", "Butterfly", "Hyper-deBruijn", "Hyper-Butterfly"},
		{"Nodes", "2^(m+n)", "(m+n)2^(m+n)", "2^(m+n)", "n·2^(m+n)"},
		{"Edges", "(m+n)2^(m+n-1)", "(m+n)2^(m+n+1)", "2^(m+n+1)", "(m+4)n·2^(m+n-1)"},
		{"Regular", "yes", "yes", "no", "yes"},
		{"Degree", "m+n", "4", "m+4", "m+4"},
		{"Diameter", "m+n", "floor(3(m+n)/2)", "m+n", "m+floor(3n/2)"},
		{"Fault-tolerance", "m+n", "4", "m+2", "m+4"},
		{"Cycles", "even", "kn+2k'", "pancyclic", "even"},
		{"Mesh", "yes", "no", "yes", "yes"},
		{"Binary tree", "T(m+n-1)", "T(m+n+1)", "T(m+n-1)", "T(m+n-1)"},
		{"Mesh of trees", "yes", "yes", "yes", "yes"},
	}
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return sb.String()
}

// Render formats summaries as an aligned text table with one column per
// network, mirroring the layout of the paper's figures.
func Render(title string, rows []Summary) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	header := []string{"Parameter"}
	for _, r := range rows {
		header = append(header, r.Name)
	}
	fmt.Fprintln(w, strings.Join(header, "\t"))
	line := func(name string, cell func(Summary) string) {
		parts := []string{name}
		for _, r := range rows {
			parts = append(parts, cell(r))
		}
		fmt.Fprintln(w, strings.Join(parts, "\t"))
	}
	line("Nodes", func(s Summary) string { return fmt.Sprintf("%d", s.Nodes) })
	line("Edges", func(s Summary) string { return fmt.Sprintf("%d", s.Edges) })
	line("Regular", func(s Summary) string { return yesNo(s.Regular) })
	line("Degree", func(s Summary) string {
		if s.DegreeMin == s.DegreeMax {
			return fmt.Sprintf("%d", s.DegreeMax)
		}
		return fmt.Sprintf("%d..%d", s.DegreeMin, s.DegreeMax)
	})
	line("Diameter", func(s Summary) string { return measured(s.Diameter, s.DiameterFormula) })
	line("Fault-tolerance", func(s Summary) string { return measured(s.Connectivity, s.ConnectivityFormula) })
	line("Cycles", func(s Summary) string { return s.Cycles })
	line("2-dim mesh", func(s Summary) string { return s.Mesh })
	line("Binary tree", func(s Summary) string { return s.BinaryTree })
	line("Mesh of trees", func(s Summary) string { return s.MeshOfTrees })
	w.Flush()
	return sb.String()
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// measured renders "value (formula f)" and flags mismatches loudly.
func measured(got, formula int) string {
	switch {
	case got == -1:
		return fmt.Sprintf("formula %d (not measured)", formula)
	case got == formula:
		return fmt.Sprintf("%d", got)
	default:
		return fmt.Sprintf("%d (FORMULA %d MISMATCH)", got, formula)
	}
}
