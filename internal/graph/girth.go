package graph

// Girth returns the length of a shortest cycle of g, or -1 for a forest.
// Self-loops count as girth 1 and multi-edges as girth 2.
//
// Implementation: a BFS from every vertex; a non-tree edge closing at
// depths d1, d2 witnesses a cycle of length d1+d2+1. This is exact and
// O(V·E) — fine for the instance sizes used in experiments. For the
// networks in this repository the interesting outputs are: hypercube 4,
// wrapped butterfly 4 (the (g·f⁻¹)² relator), hyper-butterfly 4, and de
// Bruijn 1 (loops) / 3 after loop removal.
func Girth(g Graph) int {
	n := g.Order()
	best := -1
	update := func(c int) {
		if best == -1 || c < best {
			best = c
		}
	}
	var buf []int
	// Self-loops and multi-edges first (BFS below assumes simple).
	for v := 0; v < n; v++ {
		buf = g.AppendNeighbors(v, buf[:0])
		seen := make(map[int]bool, len(buf))
		for _, w := range buf {
			if w == v {
				update(1)
				continue
			}
			if seen[w] {
				update(2)
			}
			seen[w] = true
		}
	}
	if best != -1 {
		return best
	}
	dist := make([]int32, n)
	parent := make([]int32, n)
	queue := make([]int32, 0, n)
	for src := 0; src < n; src++ {
		if best == 3 {
			break // cannot improve on a triangle in a simple graph
		}
		for i := range dist {
			dist[i] = Unreachable
			parent[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], int32(src))
		for head := 0; head < len(queue); head++ {
			v := int(queue[head])
			if best != -1 && int(2*dist[v]) >= best {
				break // deeper levels cannot yield a shorter cycle
			}
			buf = g.AppendNeighbors(v, buf[:0])
			for _, w := range buf {
				if int32(w) == parent[v] {
					parent[v] = -2 // consume one parent edge (multi-edges already handled)
					continue
				}
				if dist[w] == Unreachable {
					dist[w] = dist[v] + 1
					parent[w] = int32(v)
					queue = append(queue, int32(w))
					continue
				}
				update(int(dist[v] + dist[w] + 1))
			}
		}
	}
	return best
}
