package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Sampled estimators for instances where exact sweeps are infeasible.
// On a dense HB(3,4) the bit-parallel engine measures the diameter
// exactly; on an implicit HB(10,10) no engine can visit all ~10^14
// ordered pairs, so these estimators trade exhaustiveness for explicit
// sample counts and confidence statements. Every report carries the
// sample size and the confidence level it was computed at, and the
// property tests hold the intervals to their advertised coverage
// against the exact sweep values on small instances.

// EstConfig parameterises the samplers. The zero value means 4096
// samples at 95% confidence with seed 0.
type EstConfig struct {
	// Samples is the number of random vertex pairs drawn.
	Samples int
	// Confidence in (0,1) for the reported intervals (default 0.95).
	Confidence float64
	// Seed makes runs reproducible.
	Seed int64
	// KnownUpper, when > 0, is a structural upper bound on the diameter
	// (e.g. the Theorem 3 formula) folded into the reported interval.
	KnownUpper int
	// ScanSources, when > 0, additionally computes that many exact
	// one-source eccentricities (each costs Order distance evaluations)
	// whose doubled minimum is a certified diameter upper bound.
	ScanSources int
}

func (cfg *EstConfig) normalize() {
	if cfg.Samples <= 0 {
		cfg.Samples = 4096
	}
	if cfg.Confidence <= 0 || cfg.Confidence >= 1 {
		cfg.Confidence = 0.95
	}
}

// DiameterEstimate brackets the diameter of a graph known only through
// a distance oracle.
type DiameterEstimate struct {
	// Lower is the largest distance seen: max over sampled pairs and
	// scanned eccentricities. Always a certified lower bound.
	Lower int
	// Upper is the best certified upper bound: min(KnownUpper, 2·ecc(s)
	// over scanned sources s), or -1 when neither is available.
	Upper int
	// Samples and ScannedSources record the evidence size.
	Samples        int
	ScannedSources int
	Order          int
}

// EstimateDiameter brackets the diameter of an order-vertex graph via
// its distance oracle. The lower bound is exact over the evidence seen;
// the upper bound comes from the triangle inequality (diam <= 2·ecc(s)
// for every s) and any structural bound the caller supplies.
func EstimateDiameter(order int, dist func(u, v int) int, cfg EstConfig) DiameterEstimate {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	est := DiameterEstimate{Upper: -1, Samples: cfg.Samples, ScannedSources: cfg.ScanSources, Order: order}
	for i := 0; i < cfg.Samples; i++ {
		if d := dist(rng.Intn(order), rng.Intn(order)); d > est.Lower {
			est.Lower = d
		}
	}
	if cfg.KnownUpper > 0 {
		est.Upper = cfg.KnownUpper
	}
	for s := 0; s < cfg.ScanSources; s++ {
		src := rng.Intn(order)
		ecc := 0
		for v := 0; v < order; v++ {
			if d := dist(src, v); d > ecc {
				ecc = d
			}
		}
		if ecc > est.Lower {
			est.Lower = ecc
		}
		if est.Upper < 0 || 2*ecc < est.Upper {
			est.Upper = 2 * ecc
		}
	}
	return est
}

// HistogramEstimate is a sampled distance distribution with
// distribution-free (Hoeffding) confidence intervals.
type HistogramEstimate struct {
	// Counts[d] is the number of sampled ordered pairs at distance d.
	Counts []int64
	// Fractions[d] = Counts[d]/Samples, the point estimate of the pair
	// fraction at distance d.
	Fractions []float64
	// CIHalfWidth is the half-width of the two-sided confidence interval
	// around each fraction: sqrt(ln(2/(1-Confidence)) / (2·Samples)).
	CIHalfWidth float64
	// MeanDistance is the sampled mean with its own half-width MeanCI
	// (Hoeffding over the range [0, MaxDistance]; requires a known range,
	// so MeanCI is 0 unless KnownUpper was supplied).
	MeanDistance float64
	MeanCI       float64
	Samples      int
	Confidence   float64
}

// EstimateDistanceHistogram samples ordered vertex pairs and returns
// the empirical distance distribution. Each per-bucket interval
// [Fractions[d]±CIHalfWidth] contains the true fraction with the
// configured marginal confidence (Hoeffding's inequality, two-sided,
// distribution-free — conservative for small fractions).
func EstimateDistanceHistogram(order int, dist func(u, v int) int, cfg EstConfig) HistogramEstimate {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	est := HistogramEstimate{Samples: cfg.Samples, Confidence: cfg.Confidence}
	var counts []int64
	sum := 0.0
	for i := 0; i < cfg.Samples; i++ {
		d := dist(rng.Intn(order), rng.Intn(order))
		for len(counts) <= d {
			counts = append(counts, 0)
		}
		counts[d]++
		sum += float64(d)
	}
	est.Counts = counts
	est.Fractions = make([]float64, len(counts))
	for d, c := range counts {
		est.Fractions[d] = float64(c) / float64(cfg.Samples)
	}
	delta := 1 - cfg.Confidence
	est.CIHalfWidth = math.Sqrt(math.Log(2/delta) / (2 * float64(cfg.Samples)))
	est.MeanDistance = sum / float64(cfg.Samples)
	if cfg.KnownUpper > 0 {
		est.MeanCI = float64(cfg.KnownUpper) * est.CIHalfWidth
	}
	return est
}

// ConnSpotCheck summarises randomized Menger probes: each probe asks
// the backend for `want` vertex-disjoint paths between a random pair
// and verifies the certificate edge-by-edge against the graph, so
// every certified probe is a machine-checked witness that the local
// connectivity of that pair is at least want.
type ConnSpotCheck struct {
	// Pairs is the number of (s,t) probes attempted; Certified of them
	// produced a verified set of `want` disjoint paths.
	Pairs     int
	Certified int
	Want      int
	// FirstFailure describes the first probe that could not be
	// certified, empty when Certified == Pairs.
	FirstFailure string
}

// SpotCheckConnectivity draws cfg.Samples random distinct pairs from g
// and certifies `want` disjoint paths between each via the supplied
// path oracle. It returns an error only on malformed inputs; probe
// failures are reported in the result so callers can surface partial
// evidence.
func SpotCheckConnectivity(g Graph, paths func(u, v int) ([][]int, error), want int, cfg EstConfig) (ConnSpotCheck, error) {
	cfg.normalize()
	order := g.Order()
	if order < 2 {
		return ConnSpotCheck{}, fmt.Errorf("graph: spot-check needs order >= 2, have %d", order)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := ConnSpotCheck{Pairs: cfg.Samples, Want: want}
	for i := 0; i < cfg.Samples; i++ {
		u := rng.Intn(order)
		v := rng.Intn(order)
		for v == u {
			v = rng.Intn(order)
		}
		ps, err := paths(u, v)
		if err == nil && len(ps) < want {
			err = fmt.Errorf("got %d paths, want %d", len(ps), want)
		}
		if err == nil {
			err = VerifyDisjointPaths(g, u, v, ps)
		}
		if err != nil {
			if out.FirstFailure == "" {
				out.FirstFailure = fmt.Sprintf("pair (%d,%d): %v", u, v, err)
			}
			continue
		}
		out.Certified++
	}
	return out, nil
}
