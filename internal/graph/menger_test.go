package graph

import (
	"math/rand"
	"testing"
)

// Differential tests of the FlowScratch Menger engine (menger.go)
// against the retained reference implementations: random graphs here,
// every conformance topology in differential_test.go, and the
// FuzzLocalConnectivity target below. The engine must match the
// reference exactly — same counts, same global minima — on every input.

// randomDense draws a G(n,p) graph, optionally salted with self-loops
// and duplicate edges (the de Bruijn degeneracies the engine must
// ignore exactly like the reference).
func randomDense(rng *rand.Rand, n int, p float64, degenerate bool) *Dense {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{u, v})
				if degenerate && rng.Float64() < 0.1 {
					edges = append(edges, [2]int{u, v}) // multi-edge
				}
			}
		}
		if degenerate && rng.Float64() < 0.1 {
			edges = append(edges, [2]int{u, u}) // self-loop
		}
	}
	return NewDense(n, edges)
}

func TestFlowScratchMatchesReferenceRandom(t *testing.T) {
	cases := []struct {
		n          int
		p          float64
		degenerate bool
	}{
		{2, 1, false},
		{8, 0.3, false},
		{12, 0.25, true},
		{16, 0.4, false},
		{16, 0.15, true},
		{24, 0.2, false},
		{32, 0.12, true},
	}
	for _, c := range cases {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed*977 + int64(c.n)))
			d := randomDense(rng, c.n, c.p, c.degenerate)
			fs := NewFlowScratch(d)
			efs := NewEdgeFlowScratch(d)
			for trial := 0; trial < 24; trial++ {
				s := rng.Intn(c.n)
				u := rng.Intn(c.n - 1)
				if u >= s {
					u++
				}
				want := LocalConnectivityReference(d, s, u)
				if got := fs.LocalConnectivity(s, u, -1); got != want {
					t.Fatalf("n=%d p=%v seed %d: LocalConnectivity(%d,%d) = %d, reference %d",
						c.n, c.p, seed, s, u, got, want)
				}
				// A limit caps the flow at exactly min(limit, value).
				limit := rng.Intn(4)
				wantCapped := want
				if limit < wantCapped {
					wantCapped = limit
				}
				if got := fs.LocalConnectivity(s, u, limit); got != wantCapped {
					t.Fatalf("n=%d seed %d: LocalConnectivity(%d,%d,limit=%d) = %d, want %d",
						c.n, seed, s, u, limit, got, wantCapped)
				}
				wantE := LocalEdgeConnectivityReference(d, s, u)
				if got := efs.LocalEdgeConnectivity(s, u, -1); got != wantE {
					t.Fatalf("n=%d seed %d: LocalEdgeConnectivity(%d,%d) = %d, reference %d",
						c.n, seed, s, u, got, wantE)
				}
			}
			wantK := ConnectivityReference(d)
			if got := Connectivity(d); got != wantK {
				t.Fatalf("n=%d p=%v seed %d: Connectivity = %d, reference %d", c.n, c.p, seed, got, wantK)
			}
			for _, workers := range []int{1, 4} {
				if got := ConnectivityParallel(d, workers); got != wantK {
					t.Fatalf("n=%d p=%v seed %d: ConnectivityParallel(w=%d) = %d, reference %d",
						c.n, c.p, seed, workers, got, wantK)
				}
			}
			wantL := EdgeConnectivityReference(d)
			if got := EdgeConnectivity(d); got != wantL {
				t.Fatalf("n=%d seed %d: EdgeConnectivity = %d, reference %d", c.n, seed, got, wantL)
			}
			if got := EdgeConnectivityParallel(d, 3); got != wantL {
				t.Fatalf("n=%d seed %d: EdgeConnectivityParallel = %d, reference %d", c.n, seed, got, wantL)
			}
		}
	}
}

// TestParallelDriversEdgeCases pins the degenerate inputs the drivers
// share with the serial API: empty, singleton, disconnected, complete.
func TestParallelDriversEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		d    *Dense
		want int
	}{
		{"empty", NewDense(0, nil), 0},
		{"single", NewDense(1, nil), 0},
		{"disconnected", NewDense(4, [][2]int{{0, 1}, {2, 3}}), 0},
		{"k2", NewDense(2, [][2]int{{0, 1}}), 1},
		{"k5", Build(Complete{N: 5}), 4},
		{"petersen", petersen(), 3},
	}
	for _, c := range cases {
		if got := ConnectivityParallel(c.d, 2); got != c.want {
			t.Errorf("%s: ConnectivityParallel = %d, want %d", c.name, got, c.want)
		}
		if got := ConnectivityVertexTransitiveParallel(c.d, 2); got != c.want {
			t.Errorf("%s: ConnectivityVertexTransitiveParallel = %d, want %d", c.name, got, c.want)
		}
	}
	if got := EdgeConnectivityParallel(petersen(), 2); got != 3 {
		t.Errorf("petersen: EdgeConnectivityParallel = %d, want 3", got)
	}
	if got := EdgeConnectivityParallel(NewDense(4, [][2]int{{0, 1}, {2, 3}}), 2); got != 0 {
		t.Errorf("disconnected: EdgeConnectivityParallel = %d, want 0", got)
	}
}

// TestFlowScratchDisjointPaths runs the arena decomposition over random
// graphs: the path count must equal the reference local connectivity
// and the verifier must accept every set, across repeated (s,t) reuses
// of one scratch.
func TestFlowScratchDisjointPaths(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed * 31))
		d := randomDense(rng, 20, 0.25, seed%2 == 0)
		fs := NewFlowScratch(d)
		for trial := 0; trial < 20; trial++ {
			s := rng.Intn(20)
			u := rng.Intn(19)
			if u >= s {
				u++
			}
			want := LocalConnectivityReference(d, s, u)
			paths, err := fs.DisjointPaths(s, u, -1)
			if err != nil {
				t.Fatalf("seed %d: DisjointPaths(%d,%d): %v", seed, s, u, err)
			}
			if len(paths) != want {
				t.Fatalf("seed %d: DisjointPaths(%d,%d) found %d paths, want %d", seed, s, u, len(paths), want)
			}
			if err := VerifyDisjointPaths(d, s, u, paths); err != nil {
				t.Fatalf("seed %d: DisjointPaths(%d,%d): %v", seed, s, u, err)
			}
		}
	}
}

// TestFlowScratchZeroAllocSmall asserts the per-pair steady state of
// both arena flavours allocates nothing (the HB-instance table test
// lives in conn_bench_test.go, outside this package, where core can be
// imported).
func TestFlowScratchZeroAllocSmall(t *testing.T) {
	p := petersen()
	fs := NewFlowScratch(p)
	efs := NewEdgeFlowScratch(p)
	pairs := [][2]int{{0, 7}, {2, 9}, {5, 6}, {1, 3}}
	i := 0
	if got := testing.AllocsPerRun(200, func() {
		pr := pairs[i%len(pairs)]
		i++
		fs.LocalConnectivity(pr[0], pr[1], -1)
	}); got != 0 {
		t.Errorf("LocalConnectivity: %v allocs per pair, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		pr := pairs[i%len(pairs)]
		i++
		efs.LocalEdgeConnectivity(pr[0], pr[1], -1)
	}); got != 0 {
		t.Errorf("LocalEdgeConnectivity: %v allocs per pair, want 0", got)
	}
}

// TestFlowScratchPanicsOnMisuse pins the guard rails: self-pairs, out
// of range vertices, and cross-flavour calls.
func TestFlowScratchPanicsOnMisuse(t *testing.T) {
	p := petersen()
	fs := NewFlowScratch(p)
	efs := NewEdgeFlowScratch(p)
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("self pair", func() { fs.LocalConnectivity(3, 3, -1) })
	expectPanic("out of range", func() { fs.LocalConnectivity(0, 10, -1) })
	expectPanic("edge on vertex arena", func() { fs.LocalEdgeConnectivity(0, 1, -1) })
	expectPanic("vertex on edge arena", func() { efs.LocalConnectivity(0, 1, -1) })
	if _, err := efs.DisjointPaths(0, 1, -1); err == nil {
		t.Error("DisjointPaths on edge arena: no error")
	}
}

// FuzzLocalConnectivity fuzzes (edges, s, t, limit) against the
// reference flow: the engine must match the unbounded reference value,
// honour the cap exactly, and decompose a verifiable maximum disjoint
// path set — the flow-side sibling of FuzzBFSKernel.
func FuzzLocalConnectivity(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 0}, uint8(0), uint8(2), uint8(3))
	f.Add([]byte{5, 5, 5, 6, 6, 5, 0, 15}, uint8(0), uint8(15), uint8(0))
	f.Add([]byte{}, uint8(3), uint8(9), uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, sByte, tByte, limitByte uint8) {
		const n = 16
		edges := make([][2]int, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, [2]int{int(raw[i]) % n, int(raw[i+1]) % n})
		}
		d := NewDense(n, edges)
		s := int(sByte) % n
		u := int(tByte) % n
		if s == u {
			u = (u + 1) % n
		}
		want := LocalConnectivityReference(d, s, u)
		fs := NewFlowScratch(d)
		if got := fs.LocalConnectivity(s, u, -1); got != want {
			t.Fatalf("LocalConnectivity(%d,%d) = %d, reference %d", s, u, got, want)
		}
		limit := int(limitByte) % 8
		wantCapped := want
		if limit < wantCapped {
			wantCapped = limit
		}
		if got := fs.LocalConnectivity(s, u, limit); got != wantCapped {
			t.Fatalf("LocalConnectivity(%d,%d,limit=%d) = %d, want %d", s, u, limit, got, wantCapped)
		}
		paths, err := fs.DisjointPaths(s, u, -1)
		if err != nil {
			t.Fatalf("DisjointPaths(%d,%d): %v", s, u, err)
		}
		if len(paths) != want {
			t.Fatalf("DisjointPaths(%d,%d): %d paths, want %d", s, u, len(paths), want)
		}
		if err := VerifyDisjointPaths(d, s, u, paths); err != nil {
			t.Fatalf("DisjointPaths(%d,%d): %v", s, u, err)
		}
		wantE := LocalEdgeConnectivityReference(d, s, u)
		if got := NewEdgeFlowScratch(d).LocalEdgeConnectivity(s, u, -1); got != wantE {
			t.Fatalf("LocalEdgeConnectivity(%d,%d) = %d, reference %d", s, u, got, wantE)
		}
	})
}
