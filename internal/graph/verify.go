package graph

import "fmt"

// This file holds the verifiers that back every embedding claim in
// Section 4 of the paper. An embedding is never trusted: the constructive
// modules return explicit vertex sequences or maps and the experiments
// pass them through these checks.

// adjacent reports whether w appears among the neighbors of v in g.
func adjacent(g Graph, v, w int, buf []int) ([]int, bool) {
	buf = g.AppendNeighbors(v, buf[:0])
	for _, x := range buf {
		if x == w {
			return buf, true
		}
	}
	return buf, false
}

// VerifyPath checks that p is a walk on edges of g visiting distinct
// vertices.
func VerifyPath(g Graph, p []int) error {
	seen := make(map[int]bool, len(p))
	var buf []int
	var ok bool
	for i, v := range p {
		if v < 0 || v >= g.Order() {
			return fmt.Errorf("graph: path vertex %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("graph: path revisits vertex %d", v)
		}
		seen[v] = true
		if i > 0 {
			if buf, ok = adjacent(g, p[i-1], v, buf); !ok {
				return fmt.Errorf("graph: path step %d uses non-edge %d-%d", i, p[i-1], v)
			}
		}
	}
	return nil
}

// VerifyCycle checks that c is a simple cycle of g: distinct vertices,
// every consecutive pair (including last-first) an edge, length >= 3.
func VerifyCycle(g Graph, c []int) error {
	if len(c) < 3 {
		return fmt.Errorf("graph: cycle of length %d is degenerate", len(c))
	}
	if err := VerifyPath(g, c); err != nil {
		return err
	}
	if _, ok := adjacent(g, c[len(c)-1], c[0], nil); !ok {
		return fmt.Errorf("graph: cycle does not close: %d-%d is not an edge", c[len(c)-1], c[0])
	}
	return nil
}

// VerifyEmbedding checks that phi is a one-to-one map from the vertices
// of guest into host that maps every guest edge onto a host edge (i.e.
// guest is a subgraph of host under phi, the notion of embedding used
// throughout Section 4). phi must have length guest.Order().
func VerifyEmbedding(guest, host Graph, phi []int) error {
	if len(phi) != guest.Order() {
		return fmt.Errorf("graph: embedding maps %d vertices, guest has %d", len(phi), guest.Order())
	}
	used := make(map[int]int, len(phi))
	for v, hv := range phi {
		if hv < 0 || hv >= host.Order() {
			return fmt.Errorf("graph: image %d of guest vertex %d out of host range", hv, v)
		}
		if prev, dup := used[hv]; dup {
			return fmt.Errorf("graph: guest vertices %d and %d collide on host vertex %d", prev, v, hv)
		}
		used[hv] = v
	}
	var buf, hbuf []int
	for v := 0; v < guest.Order(); v++ {
		buf = guest.AppendNeighbors(v, buf[:0])
		for _, w := range buf {
			if w == v {
				continue // guest self-loops carry no adjacency obligation
			}
			ok := false
			hbuf = host.AppendNeighbors(phi[v], hbuf[:0])
			for _, hw := range hbuf {
				if hw == phi[w] {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("graph: guest edge %d-%d maps to host non-edge %d-%d", v, w, phi[v], phi[w])
			}
		}
	}
	return nil
}

// VerifyGeneratorAction checks the Cayley-graph sanity conditions of
// Remark 3 on a vertex set explored from base: every generator is a
// fixed-point-free permutation step (gen(v) != v) and distinct generators
// lead to distinct neighbors. gens[i] must give the i-th neighbor in the
// order AppendNeighbors emits them.
func VerifyGeneratorAction(g Graph, degree int) error {
	n := g.Order()
	var buf []int
	for v := 0; v < n; v++ {
		buf = g.AppendNeighbors(v, buf[:0])
		if len(buf) != degree {
			return fmt.Errorf("graph: vertex %d has degree %d, want %d", v, len(buf), degree)
		}
		seen := make(map[int]bool, degree)
		for _, w := range buf {
			if w == v {
				return fmt.Errorf("graph: generator fixes vertex %d", v)
			}
			if seen[w] {
				return fmt.Errorf("graph: two generators agree on vertex %d (neighbor %d)", v, w)
			}
			seen[w] = true
		}
	}
	return nil
}
