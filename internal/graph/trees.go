package graph

import "fmt"

// CompleteBinaryTree is the complete binary tree T(k) of the paper's
// Section 4: k levels and 2^k - 1 vertices in heap order (root 0,
// children of i at 2i+1 and 2i+2).
type CompleteBinaryTree struct{ Levels int }

// Order returns 2^Levels - 1.
func (t CompleteBinaryTree) Order() int {
	if t.Levels < 1 {
		return 0
	}
	return 1<<uint(t.Levels) - 1
}

// AppendNeighbors implements Graph.
func (t CompleteBinaryTree) AppendNeighbors(v int, buf []int) []int {
	n := t.Order()
	if v > 0 {
		buf = append(buf, (v-1)/2)
	}
	if l := 2*v + 1; l < n {
		buf = append(buf, l)
	}
	if r := 2*v + 2; r < n {
		buf = append(buf, r)
	}
	return buf
}

// MeshOfTrees is the mesh of trees MT(2^p, 2^q) of Theorem 4: a 2^p x
// 2^q grid of leaves, a complete binary tree over every row and one over
// every column; row and column trees are disjoint except at the shared
// leaves. It is a subgraph of T(p+1) x T(q+1) (Lemma 4), which is how
// the embedding into HB(m,n) is realised.
//
// Vertices are encoded as pairs of heap indices (i,j) of T(p+1) x
// T(q+1): id = i*(2^(q+1)-1) + j. Only pairs where at least one of i, j
// is a leaf of its tree are kept as mesh-of-trees vertices; the
// remaining pairs are isolated padding (degree 0) so that the vertex
// numbering matches the product — callers use Contains to filter.
type MeshOfTrees struct{ P, Q int }

// rows returns 2^(p+1)-1, the order of the row tree T(p+1).
func (mt MeshOfTrees) rows() int { return 1<<uint(mt.P+1) - 1 }

// cols returns 2^(q+1)-1, the order of the column tree T(q+1).
func (mt MeshOfTrees) cols() int { return 1<<uint(mt.Q+1) - 1 }

// Order returns the order of the ambient product T(p+1) x T(q+1).
func (mt MeshOfTrees) Order() int { return mt.rows() * mt.cols() }

// Encode maps a (row-tree index, column-tree index) pair to a vertex id.
func (mt MeshOfTrees) Encode(i, j int) int { return i*mt.cols() + j }

// Decode splits a vertex id.
func (mt MeshOfTrees) Decode(v int) (i, j int) { return v / mt.cols(), v % mt.cols() }

// leafRow reports whether i is a leaf of T(p+1) (heap indices >= 2^p-1).
func (mt MeshOfTrees) leafRow(i int) bool { return i >= 1<<uint(mt.P)-1 }

func (mt MeshOfTrees) leafCol(j int) bool { return j >= 1<<uint(mt.Q)-1 }

// Contains reports whether v is an actual mesh-of-trees vertex: a grid
// leaf (both coordinates leaves), a row-tree internal vertex (row
// internal, column leaf) or a column-tree internal vertex (row leaf,
// column internal).
func (mt MeshOfTrees) Contains(v int) bool {
	i, j := mt.Decode(v)
	return mt.leafRow(i) || mt.leafCol(j)
}

// AppendNeighbors implements Graph. Row trees connect vertices that
// share a column leaf and are parent/child in the row tree; column trees
// symmetrically.
func (mt MeshOfTrees) AppendNeighbors(v int, buf []int) []int {
	i, j := mt.Decode(v)
	if !mt.Contains(v) {
		return buf
	}
	if mt.leafCol(j) {
		// Row-tree edges at this column.
		rt := CompleteBinaryTree{Levels: mt.P + 1}
		var rbuf []int
		rbuf = rt.AppendNeighbors(i, rbuf)
		for _, ni := range rbuf {
			buf = append(buf, mt.Encode(ni, j))
		}
	}
	if mt.leafRow(i) {
		ct := CompleteBinaryTree{Levels: mt.Q + 1}
		var cbuf []int
		cbuf = ct.AppendNeighbors(j, cbuf)
		for _, nj := range cbuf {
			buf = append(buf, mt.Encode(i, nj))
		}
	}
	return buf
}

// CheckMeshOfTrees validates the structural invariants of mt itself:
// every real vertex has the expected degree and the graph restricted to
// real vertices is connected. It guards the fixture used by Theorem 4's
// experiment.
func CheckMeshOfTrees(mt MeshOfTrees) error {
	if mt.P < 0 || mt.Q < 0 {
		return fmt.Errorf("graph: invalid MT(2^%d, 2^%d)", mt.P, mt.Q)
	}
	var buf []int
	real := 0
	var sample int
	for v := 0; v < mt.Order(); v++ {
		if !mt.Contains(v) {
			continue
		}
		real++
		sample = v
		if buf = mt.AppendNeighbors(v, buf[:0]); len(buf) == 0 {
			return fmt.Errorf("graph: isolated mesh-of-trees vertex %d", v)
		}
	}
	want := mt.rows()*(1<<uint(mt.Q)) + mt.cols()*(1<<uint(mt.P)) - 1<<uint(mt.P+mt.Q)
	if real != want {
		return fmt.Errorf("graph: MT(2^%d,2^%d) has %d real vertices, want %d", mt.P, mt.Q, real, want)
	}
	dist := BFS(mt, sample, nil)
	for v := 0; v < mt.Order(); v++ {
		if mt.Contains(v) && dist[v] == Unreachable {
			return fmt.Errorf("graph: mesh-of-trees vertex %d unreachable", v)
		}
	}
	return nil
}
