package graph

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file is the Menger engine: the flat-CSR flow arena behind every
// connectivity query (the C1/T5 ground truth, edge connectivity,
// disjoint-path extraction) and the worker-pool pair fan-out that
// computes global connectivity in parallel. It is the flow-side
// counterpart of the BFS kernel in kernel.go — a FlowScratch is built
// once per graph (one CSR over the node-split or edge-doubled network,
// reverse-arc indices precomputed), reset in place per (s,t) pair with
// one O(arcs) copy of the capacity template, and run through an
// iterative (non-recursive) Dinic augmenter whose per-pair steady state
// performs zero allocations.
//
// The pre-engine per-pair implementation — rebuild the [][]flowEdge
// network from scratch, recursive DFS augmentation, serial unbounded
// seed loops — is retained verbatim in flow.go/edgeconn.go as
// ConnectivityReference / LocalConnectivityReference /
// EdgeConnectivityReference: the differential-test oracle and the
// before/after benchmark baseline (see BENCH_conn.json, E-T5/E-EC).

// terminalCap is the effectively-infinite split-arc capacity of the two
// terminals of a vertex-connectivity query; 127 is far above any degree
// used in this repository.
const terminalCap = int8(127)

// FlowScratch is the reusable state of one in-flight unit-capacity
// max-flow computation on a fixed graph: the flow network in flat CSR
// form (arc heads, targets, reverse indices, residual capacities), the
// Dinic level/iterator arrays, and the path-decomposition scratch. It
// comes in two flavours sharing all machinery:
//
//   - NewFlowScratch builds the node-split digraph of vertex
//     connectivity (v becomes v_in -> v_out of capacity 1, every
//     undirected edge {u,w} becomes u_out -> w_in and w_out -> u_in);
//   - NewEdgeFlowScratch builds the directed doubling of edge
//     connectivity (one capacity-1 arc each way per undirected edge).
//
// A FlowScratch is not safe for concurrent use; the parallel drivers
// keep one per worker, exactly like the Scratch pools of the BFS
// kernel.
type FlowScratch struct {
	n         int  // order of the underlying graph
	nodeSplit bool // node-split (vertex) vs edge-doubled (edge) network

	head     []int32 // CSR arc offsets per flow node, len numNodes+1
	to       []int32 // arc targets
	rev      []int32 // index of each arc's reverse
	cap      []int8  // residual capacities, reset per pair
	cap0     []int8  // capacity template (terminals patched per pair)
	splitArc []int32 // node-split only: arc index of v_in -> v_out

	level []int32
	iter  []int32
	queue []int32
	path  []int32 // arc trail of the in-flight DFS augmentation

	arcUsed []bool  // DisjointPaths decomposition: consumed flow arcs
	pathPos []int32 // original vertex -> index in the path being walked
}

// splitInN and splitOutN map an original vertex to its node-split
// halves (shared with the reference implementation in flow.go).

// NewFlowScratch builds the node-split flow arena of d for vertex
// connectivity queries. Multi-edges and self-loops are ignored, exactly
// as in LocalConnectivityReference.
func NewFlowScratch(d *Dense) *FlowScratch {
	n := d.Order()
	fs := &FlowScratch{n: n, nodeSplit: true}
	nn := 2 * n
	deg := make([]int32, nn)
	for v := 0; v < n; v++ {
		sd := int32(simpleDegree(d, v))
		deg[splitIn(v)] = 1 + sd  // split arc + residuals of incoming edge arcs
		deg[splitOut(v)] = sd + 1 // edge arcs + split residual
	}
	fs.buildCSR(nn, deg)
	fs.splitArc = make([]int32, n)
	fill := deg
	for i := range fill {
		fill[i] = 0
	}
	for v := 0; v < n; v++ {
		fs.splitArc[v] = fs.addArc(fill, int32(splitIn(v)), int32(splitOut(v)), 1)
		prev := int32(-1)
		for _, w := range d.Neighbors(v) {
			if w == prev || int(w) == v {
				prev = w
				continue
			}
			prev = w
			fs.addArc(fill, int32(splitOut(v)), int32(splitIn(int(w))), 1)
		}
	}
	return fs
}

// NewEdgeFlowScratch builds the edge-doubled flow arena of d for edge
// connectivity queries (multi-edges and self-loops ignored, as in
// EdgeConnectivityReference).
func NewEdgeFlowScratch(d *Dense) *FlowScratch {
	n := d.Order()
	fs := &FlowScratch{n: n, nodeSplit: false}
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = 2 * int32(simpleDegree(d, v))
	}
	fs.buildCSR(n, deg)
	fill := deg
	for i := range fill {
		fill[i] = 0
	}
	for v := 0; v < n; v++ {
		prev := int32(-1)
		for _, w := range d.Neighbors(v) {
			if w == prev || int(w) == v || int(w) < v {
				prev = w
				continue
			}
			prev = w
			// One capacity-1 arc each way, as two independent arc pairs
			// so either direction can carry flow.
			fs.addArc(fill, int32(v), w, 1)
			fs.addArc(fill, w, int32(v), 1)
		}
	}
	return fs
}

// buildCSR sizes the arena for numNodes flow nodes with the given
// per-node arc counts (forward plus residual slots).
func (fs *FlowScratch) buildCSR(numNodes int, deg []int32) {
	fs.head = make([]int32, numNodes+1)
	for i := 0; i < numNodes; i++ {
		fs.head[i+1] = fs.head[i] + deg[i]
	}
	arcs := int(fs.head[numNodes])
	fs.to = make([]int32, arcs)
	fs.rev = make([]int32, arcs)
	fs.cap0 = make([]int8, arcs)
	fs.cap = make([]int8, arcs)
	fs.level = make([]int32, numNodes)
	fs.iter = make([]int32, numNodes)
	fs.queue = make([]int32, 0, numNodes)
	fs.path = make([]int32, 0, numNodes)
	fs.arcUsed = make([]bool, arcs)
	fs.pathPos = make([]int32, fs.n)
}

// addArc places a forward arc from->to of capacity c and its zero-
// capacity reverse into the pre-sized CSR rows, returning the forward
// arc index.
func (fs *FlowScratch) addArc(fill []int32, from, to int32, c int8) int32 {
	a := fs.head[from] + fill[from]
	fill[from]++
	b := fs.head[to] + fill[to]
	fill[to]++
	fs.to[a], fs.cap0[a], fs.rev[a] = to, c, b
	fs.to[b], fs.cap0[b], fs.rev[b] = from, 0, a
	return a
}

// reset restores the capacity template in place (one O(arcs) copy) and,
// on node-split arenas, lifts the terminals' split capacities.
func (fs *FlowScratch) reset(s, t int) {
	copy(fs.cap, fs.cap0)
	if fs.nodeSplit {
		fs.cap[fs.splitArc[s]] = terminalCap
		fs.cap[fs.splitArc[t]] = terminalCap
	}
}

// bfsLevel builds the Dinic level graph from s; reports whether t is
// reachable in the residual network.
func (fs *FlowScratch) bfsLevel(s, t int32) bool {
	level := fs.level
	for i := range level {
		level[i] = -1
	}
	level[s] = 0
	q := append(fs.queue[:0], s)
	for h := 0; h < len(q); h++ {
		v := q[h]
		lv := level[v] + 1
		for a := fs.head[v]; a < fs.head[v+1]; a++ {
			if w := fs.to[a]; fs.cap[a] > 0 && level[w] == -1 {
				level[w] = lv
				q = append(q, w)
			}
		}
	}
	fs.queue = q[:0]
	return level[t] != -1
}

// augment pushes one unit of flow along an admissible s-t path of the
// current level graph, walking iteratively with an explicit arc trail
// (no recursion, no allocation). Dead-end vertices are pruned from the
// phase by resetting their level.
func (fs *FlowScratch) augment(s, t int32) bool {
	path := fs.path[:0]
	v := s
	for {
		if v == t {
			for _, a := range path {
				fs.cap[a]--
				fs.cap[fs.rev[a]]++
			}
			fs.path = path[:0]
			return true
		}
		advance := int32(-1)
		for fs.iter[v] < fs.head[v+1] {
			a := fs.iter[v]
			if fs.cap[a] > 0 && fs.level[fs.to[a]] == fs.level[v]+1 {
				advance = a
				break
			}
			fs.iter[v]++
		}
		if advance >= 0 {
			path = append(path, advance)
			v = fs.to[advance]
			continue
		}
		fs.level[v] = -1 // dead end this phase
		if len(path) == 0 {
			fs.path = path
			return false
		}
		last := path[len(path)-1]
		path = path[:len(path)-1]
		v = fs.to[fs.rev[last]]
		fs.iter[v]++
	}
}

// maxFlow runs Dinic from s to t on the reset arena. The flow stops as
// soon as it reaches limit (negative = unbounded) or, when bound is
// non-nil, the bound's current value — the shared early-exit of the
// parallel drivers: a pair whose flow reaches the running minimum
// cannot lower it, so finishing the computation proves nothing.
func (fs *FlowScratch) maxFlow(s, t int32, limit int, bound *atomic.Int32) int {
	flow := 0
	reached := func() bool {
		if limit >= 0 && flow >= limit {
			return true
		}
		return bound != nil && flow >= int(bound.Load())
	}
	if reached() {
		return flow
	}
	for fs.bfsLevel(s, t) {
		copy(fs.iter, fs.head[:len(fs.iter)])
		for fs.augment(s, t) {
			flow++
			if reached() {
				return flow
			}
		}
	}
	return flow
}

// checkPair validates a connectivity query pair.
func (fs *FlowScratch) checkPair(s, t int) {
	if s == t {
		panic(fmt.Sprintf("graph: connectivity of vertex %d with itself", s))
	}
	if s < 0 || s >= fs.n || t < 0 || t >= fs.n {
		panic(fmt.Sprintf("graph: connectivity pair (%d,%d) out of range [0,%d)", s, t, fs.n))
	}
}

// LocalConnectivity returns the maximum number of internally
// vertex-disjoint s-t paths, stopping early at limit (negative =
// unbounded): the returned value is min(limit, true local
// connectivity). The arena must have been built by NewFlowScratch.
// Zero allocations in the steady state.
func (fs *FlowScratch) LocalConnectivity(s, t, limit int) int {
	if !fs.nodeSplit {
		panic("graph: LocalConnectivity on an edge-connectivity FlowScratch")
	}
	fs.checkPair(s, t)
	fs.reset(s, t)
	return fs.maxFlow(int32(splitOut(s)), int32(splitIn(t)), limit, nil)
}

// LocalEdgeConnectivity returns the maximum number of edge-disjoint s-t
// paths, stopping early at limit (negative = unbounded). The arena must
// have been built by NewEdgeFlowScratch. Zero allocations in the steady
// state.
func (fs *FlowScratch) LocalEdgeConnectivity(s, t, limit int) int {
	if fs.nodeSplit {
		panic("graph: LocalEdgeConnectivity on a vertex-connectivity FlowScratch")
	}
	fs.checkPair(s, t)
	fs.reset(s, t)
	return fs.maxFlow(int32(s), int32(t), limit, nil)
}

// localBound is the parallel drivers' bounded query: like
// LocalConnectivity but capped by the shared best bound.
func (fs *FlowScratch) localBound(s, t int, bound *atomic.Int32) int {
	fs.reset(s, t)
	if fs.nodeSplit {
		return fs.maxFlow(int32(splitOut(s)), int32(splitIn(t)), -1, bound)
	}
	return fs.maxFlow(int32(s), int32(t), -1, bound)
}

// DisjointPaths extracts a maximum (or limit-capped) set of pairwise
// internally vertex-disjoint s-t paths from a unit max-flow on the
// arena, each as a vertex sequence including the endpoints. Unit flows
// found by augmentation may contain cycles; the walk cuts them out in
// place using the flat pathPos index (no per-call maps). A failed
// decomposition returns an error instead of panicking.
func (fs *FlowScratch) DisjointPaths(s, t, limit int) ([][]int, error) {
	if !fs.nodeSplit {
		return nil, fmt.Errorf("graph: DisjointPaths on an edge-connectivity FlowScratch")
	}
	if s == t {
		return [][]int{{s}}, nil
	}
	fs.checkPair(s, t)
	fs.reset(s, t)
	flow := fs.maxFlow(int32(splitOut(s)), int32(splitIn(t)), limit, nil)

	for i := range fs.arcUsed {
		fs.arcUsed[i] = false
	}
	for i := range fs.pathPos {
		fs.pathPos[i] = -1
	}
	// A forward arc (cap0 > 0) carries flow iff its reverse gained
	// residual capacity; consume each such arc at most once.
	next := func(v int32) int32 {
		for a := fs.head[v]; a < fs.head[v+1]; a++ {
			if fs.arcUsed[a] || fs.cap0[a] == 0 || fs.cap[fs.rev[a]] == 0 {
				continue
			}
			fs.arcUsed[a] = true
			return fs.to[a]
		}
		return -1
	}
	sink := int32(splitIn(t))
	paths := make([][]int, 0, flow)
	for k := 0; k < flow; k++ {
		path := append(make([]int, 0, 8), s)
		fs.pathPos[s] = 0
		v := int32(splitOut(s))
		for {
			w := next(v)
			if w == -1 {
				return nil, fmt.Errorf("graph: flow decomposition lost path %d of %d from %d to %d", k+1, flow, s, t)
			}
			if w == sink {
				path = append(path, t)
				break
			}
			orig := int(w) / 2
			if i := fs.pathPos[orig]; i >= 0 {
				// Revisited vertex: cut the loop out (its arcs stay
				// consumed, harmlessly).
				for _, x := range path[i+1:] {
					fs.pathPos[x] = -1
				}
				path = path[:i+1]
			} else {
				fs.pathPos[orig] = int32(len(path))
				path = append(path, orig)
			}
			v = int32(splitOut(orig))
		}
		for _, x := range path[:len(path)-1] {
			fs.pathPos[x] = -1
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// simpleDegree counts the distinct non-self neighbors of v (rows are
// sorted, so duplicates are adjacent).
func simpleDegree(d *Dense, v int) int {
	prev := int32(-1)
	c := 0
	for _, w := range d.Neighbors(v) {
		if w == prev || int(w) == v {
			prev = w
			continue
		}
		prev = w
		c++
	}
	return c
}

// minSimpleDegree returns the minimum simpleDegree over all vertices —
// the degree upper bound that seeds every global connectivity
// computation (kappa <= delta, and for the complete graphs that have no
// non-adjacent pair, kappa = delta = n-1 exactly).
func minSimpleDegree(d *Dense) int {
	n := d.Order()
	min := n - 1
	for v := 0; v < n; v++ {
		if sd := simpleDegree(d, v); sd < min {
			min = sd
		}
	}
	return min
}

// connPair is one (seed, target) task of a parallel connectivity sweep.
type connPair struct{ s, t int32 }

// connChunk is the number of pairs a worker claims per atomic bump:
// flows are microsecond-scale, so a small chunk amortises the atomic
// while keeping the tail stealable.
const connChunk = 8

// storeMin lowers best to c if c is smaller (lock-free CAS loop).
func storeMin(best *atomic.Int32, c int32) {
	for {
		cur := best.Load()
		if c >= cur || best.CompareAndSwap(cur, c) {
			return
		}
	}
}

// runConnPairs is the shared worker-pool pair fan-out: workers claim
// chunks of pairs off an atomic counter, each owns one arena built by
// newScratch, and all flows share the atomic best bound — every
// in-flight flow terminates as soon as it reaches the current minimum,
// and whole seeds beyond the running best are skipped (the seed
// argument needs only best+1 seeds). Modeled on AllSourcesBits.
func runConnPairs(pairs []connPair, best *atomic.Int32, workers int, skipSeedsPastBest bool, newScratch func() *FlowScratch) {
	if len(pairs) == 0 {
		return
	}
	w := EffectiveWorkers(workers, (len(pairs)+connChunk-1)/connChunk)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			fs := newScratch()
			for {
				base := int(next.Add(connChunk)) - connChunk
				if base >= len(pairs) {
					return
				}
				end := base + connChunk
				if end > len(pairs) {
					end = len(pairs)
				}
				for _, p := range pairs[base:end] {
					if skipSeedsPastBest && p.s > best.Load() {
						continue
					}
					if c := fs.localBound(int(p.s), int(p.t), best); c < int(best.Load()) {
						storeMin(best, int32(c))
					}
				}
			}
		}()
	}
	wg.Wait()
}

// ConnectivityParallel computes the vertex connectivity of d exactly on
// the Menger engine, fanning the seed-argument pairs across a worker
// pool (workers <= 0 means GOMAXPROCS). Semantics are identical to
// ConnectivityReference: the classic seed argument processes seeds
// until their count exceeds the best cut found, which the minimum
// simple degree bounds from the start (kappa <= delta), so the pair
// list covers seeds 0..delta and the shared atomic bound prunes both
// in-flight flows and whole seeds as the best cut drops. Complete
// graphs (no non-adjacent pair) return n-1.
func ConnectivityParallel(d *Dense, workers int) int {
	n := d.Order()
	if n <= 1 {
		return 0
	}
	if !IsConnected(d, nil) {
		return 0
	}
	minDeg := minSimpleDegree(d)
	var pairs []connPair
	for seed := 0; seed < n && seed <= minDeg; seed++ {
		for v := 0; v < n; v++ {
			if v == seed || d.HasEdge(seed, v) {
				continue
			}
			pairs = append(pairs, connPair{int32(seed), int32(v)})
		}
	}
	var best atomic.Int32
	best.Store(int32(minDeg))
	runConnPairs(pairs, &best, workers, true, func() *FlowScratch { return NewFlowScratch(d) })
	return int(best.Load())
}

// ConnectivityVertexTransitiveParallel is ConnectivityParallel under
// the vertex-transitivity shortcut of ConnectivityVertexTransitive:
// some minimum cut avoids the base vertex 0, so the single seed 0
// suffices. All the Cayley graphs in this repository qualify.
func ConnectivityVertexTransitiveParallel(d *Dense, workers int) int {
	n := d.Order()
	if n <= 1 {
		return 0
	}
	if !IsConnected(d, nil) {
		return 0
	}
	var pairs []connPair
	for v := 1; v < n; v++ {
		if !d.HasEdge(0, v) {
			pairs = append(pairs, connPair{0, int32(v)})
		}
	}
	var best atomic.Int32
	best.Store(int32(minSimpleDegree(d)))
	runConnPairs(pairs, &best, workers, false, func() *FlowScratch { return NewFlowScratch(d) })
	return int(best.Load())
}

// EdgeConnectivityParallel computes the edge connectivity of d exactly
// on the Menger engine: every edge cut separates vertex 0 from some
// other vertex, so the pairs (0, v) cover all cuts; the minimum simple
// degree seeds the shared bound (lambda <= delta).
func EdgeConnectivityParallel(d *Dense, workers int) int {
	n := d.Order()
	if n <= 1 {
		return 0
	}
	if !IsConnected(d, nil) {
		return 0
	}
	pairs := make([]connPair, 0, n-1)
	for v := 1; v < n; v++ {
		pairs = append(pairs, connPair{0, int32(v)})
	}
	var best atomic.Int32
	best.Store(int32(minSimpleDegree(d)))
	runConnPairs(pairs, &best, workers, false, func() *FlowScratch { return NewEdgeFlowScratch(d) })
	return int(best.Load())
}
