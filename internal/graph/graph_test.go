package graph

import (
	"testing"
)

// petersen returns the Petersen graph: 10 vertices, 15 edges, 3-regular,
// diameter 2, vertex connectivity 3 — a compact all-round fixture.
func petersen() *Dense {
	edges := [][2]int{
		// outer 5-cycle
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
		// spokes
		{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9},
		// inner pentagram
		{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5},
	}
	return NewDense(10, edges)
}

func TestDenseBasics(t *testing.T) {
	p := petersen()
	if p.Order() != 10 {
		t.Fatalf("Order = %d", p.Order())
	}
	if p.EdgeCount() != 15 {
		t.Fatalf("EdgeCount = %d", p.EdgeCount())
	}
	for v := 0; v < 10; v++ {
		if p.Degree(v) != 3 {
			t.Fatalf("Degree(%d) = %d", v, p.Degree(v))
		}
	}
	if !p.HasEdge(0, 1) || p.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if err := CheckUndirected(p); err != nil {
		t.Fatal(err)
	}
}

func TestBuildMatchesNewDense(t *testing.T) {
	r := Ring{N: 7}
	d := Build(r)
	if d.Order() != 7 || d.EdgeCount() != 7 {
		t.Fatalf("ring build: order %d edges %d", d.Order(), d.EdgeCount())
	}
	for v := 0; v < 7; v++ {
		if d.Degree(v) != 2 {
			t.Fatalf("ring degree %d at %d", d.Degree(v), v)
		}
	}
}

func TestSelfLoopAndMultiEdge(t *testing.T) {
	d := NewDense(2, [][2]int{{0, 0}, {0, 1}, {0, 1}})
	if d.Degree(0) != 3 { // loop counts once, double edge twice
		t.Fatalf("Degree(0) = %d, want 3", d.Degree(0))
	}
	if d.EdgeCount() != 3 {
		t.Fatalf("EdgeCount = %d, want 3", d.EdgeCount())
	}
	s := d.SimpleCopy()
	if s.Degree(0) != 1 || s.EdgeCount() != 1 {
		t.Fatalf("SimpleCopy: degree %d edges %d", s.Degree(0), s.EdgeCount())
	}
}

func TestDegrees(t *testing.T) {
	st := Degrees(petersen())
	if !st.Regular || st.Min != 3 || st.Max != 3 {
		t.Fatalf("Degrees = %+v", st)
	}
	star := NewDense(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	st = Degrees(star)
	if st.Regular || st.Min != 1 || st.Max != 3 || st.Histogram[1] != 3 {
		t.Fatalf("star Degrees = %+v", st)
	}
}

func TestBFSAndDiameter(t *testing.T) {
	p := petersen()
	dist := BFS(p, 0, nil)
	if dist[0] != 0 || dist[1] != 1 || dist[7] != 2 {
		t.Fatalf("BFS dists wrong: %v", dist)
	}
	if d := Diameter(p); d != 2 {
		t.Fatalf("Petersen diameter = %d, want 2", d)
	}
	ecc, conn := Eccentricity(p, 3)
	if ecc != 2 || !conn {
		t.Fatalf("Eccentricity = %d, %v", ecc, conn)
	}
}

func TestBFSWithFaults(t *testing.T) {
	r := Build(Ring{N: 6})
	excluded := make([]bool, 6)
	excluded[1] = true
	dist := BFS(r, 0, excluded)
	if dist[1] != Unreachable {
		t.Fatal("excluded vertex was reached")
	}
	if dist[2] != 4 { // must go the long way round
		t.Fatalf("dist[2] = %d, want 4", dist[2])
	}
}

func TestBFSPath(t *testing.T) {
	p := petersen()
	path := BFSPath(p, 0, 7, nil)
	if len(path) != 3 || path[0] != 0 || path[2] != 7 {
		t.Fatalf("path = %v", path)
	}
	if err := VerifyPath(p, path); err != nil {
		t.Fatal(err)
	}
	if got := BFSPath(p, 4, 4, nil); len(got) != 1 || got[0] != 4 {
		t.Fatalf("self path = %v", got)
	}
	// Disconnect target.
	excluded := make([]bool, 10)
	for _, v := range []int{1, 4, 5} { // all neighbors of 0
		excluded[v] = true
	}
	if got := BFSPath(p, 7, 0, excluded); got != nil {
		t.Fatalf("path through excluded vertices: %v", got)
	}
}

func TestComponentsAndConnected(t *testing.T) {
	d := NewDense(5, [][2]int{{0, 1}, {2, 3}})
	comp, count := Components(d)
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] || comp[4] == comp[0] {
		t.Fatalf("components = %v", comp)
	}
	if IsConnected(d, nil) {
		t.Fatal("disconnected graph reported connected")
	}
	if !IsConnected(petersen(), nil) {
		t.Fatal("Petersen reported disconnected")
	}
	if Diameter(d) != -1 {
		t.Fatal("Diameter of disconnected graph should be -1")
	}
	// Excluding vertex 4 and {2,3} leaves {0,1}: connected.
	if !IsConnected(d, []bool{false, false, true, true, true}) {
		t.Fatal("fault-restricted connectivity wrong")
	}
}

func TestDistanceHistogram(t *testing.T) {
	hist := DistanceHistogram(petersen())
	// 10 pairs at distance 0, 30 ordered pairs at distance 1 (15 edges),
	// the remaining 60 ordered pairs at distance 2.
	want := []int64{10, 30, 60}
	if len(hist) != len(want) {
		t.Fatalf("hist = %v", hist)
	}
	for i := range want {
		if hist[i] != want[i] {
			t.Fatalf("hist[%d] = %d, want %d", i, hist[i], want[i])
		}
	}
	if h := DistanceHistogram(NewDense(3, nil)); h != nil {
		t.Fatal("histogram of disconnected graph should be nil")
	}
}

func TestLocalConnectivityAndDisjointPaths(t *testing.T) {
	p := petersen()
	for _, pair := range [][2]int{{0, 7}, {0, 2}, {5, 6}, {0, 1}} {
		got := LocalConnectivity(p, pair[0], pair[1])
		if got != 3 {
			t.Fatalf("LocalConnectivity(%d,%d) = %d, want 3", pair[0], pair[1], got)
		}
		paths, err := DisjointPaths(p, pair[0], pair[1], -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) != 3 {
			t.Fatalf("got %d paths", len(paths))
		}
		if err := VerifyDisjointPaths(p, pair[0], pair[1], paths); err != nil {
			t.Fatal(err)
		}
	}
	// limit honoured
	paths, err := DisjointPaths(p, 0, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("limited paths = %d", len(paths))
	}
}

func TestConnectivity(t *testing.T) {
	cases := []struct {
		name string
		g    *Dense
		want int
	}{
		{"petersen", petersen(), 3},
		{"ring6", Build(Ring{N: 6}), 2},
		{"path4", Build(Path{N: 4}), 1},
		{"k5", Build(Complete{N: 5}), 4},
		{"disconnected", NewDense(4, [][2]int{{0, 1}, {2, 3}}), 0},
		{"single", NewDense(1, nil), 0},
	}
	for _, c := range cases {
		if got := Connectivity(c.g); got != c.want {
			t.Errorf("%s: Connectivity = %d, want %d", c.name, got, c.want)
		}
	}
	// Vertex-transitive shortcut agrees on transitive instances.
	for _, c := range cases[:2] {
		if got := ConnectivityVertexTransitive(c.g); got != c.want {
			t.Errorf("%s: transitive Connectivity = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestConnectivityCutVertex(t *testing.T) {
	// Two triangles sharing vertex 2: connectivity 1, cut at vertex 2.
	d := NewDense(5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}})
	if got := Connectivity(d); got != 1 {
		t.Fatalf("Connectivity = %d, want 1", got)
	}
	if got := LocalConnectivity(d, 0, 3); got != 1 {
		t.Fatalf("LocalConnectivity(0,3) = %d, want 1", got)
	}
}

func TestProduct(t *testing.T) {
	pr := NewProduct(Ring{N: 3}, Path{N: 2}) // triangular prism
	if pr.Order() != 6 {
		t.Fatalf("Order = %d", pr.Order())
	}
	d := Build(pr)
	if d.EdgeCount() != 9 {
		t.Fatalf("EdgeCount = %d, want 9", d.EdgeCount())
	}
	st := Degrees(d)
	if !st.Regular || st.Min != 3 {
		t.Fatalf("prism degrees: %+v", st)
	}
	if err := CheckUndirected(pr); err != nil {
		t.Fatal(err)
	}
	u, x := pr.Decode(pr.Encode(2, 1))
	if u != 2 || x != 1 {
		t.Fatalf("Encode/Decode mismatch: %d,%d", u, x)
	}
	if got := Connectivity(d); got != 3 {
		t.Fatalf("prism connectivity = %d", got)
	}
}

func TestTorus(t *testing.T) {
	tor := Torus{N1: 4, N2: 5}
	d := Build(tor)
	if d.Order() != 20 || d.EdgeCount() != 40 {
		t.Fatalf("torus order %d edges %d", d.Order(), d.EdgeCount())
	}
	if err := CheckUndirected(tor); err != nil {
		t.Fatal(err)
	}
	// Torus == product of its two rings.
	prod := Build(NewProduct(Ring{N: 4}, Ring{N: 5}))
	phi := make([]int, 20)
	for i := range phi {
		phi[i] = i
	}
	if err := VerifyEmbedding(prod, d, phi); err != nil {
		t.Fatalf("torus != C4 x C5: %v", err)
	}
	if got := Connectivity(d); got != 4 {
		t.Fatalf("torus connectivity = %d", got)
	}
}

func TestVerifyCycle(t *testing.T) {
	r := Ring{N: 5}
	if err := VerifyCycle(r, []int{0, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCycle(r, []int{0, 1, 2}); err == nil {
		t.Fatal("accepted non-closing cycle")
	}
	if err := VerifyCycle(r, []int{0, 1}); err == nil {
		t.Fatal("accepted 2-cycle")
	}
	if err := VerifyCycle(r, []int{0, 1, 2, 1, 0}); err == nil {
		t.Fatal("accepted repeated vertices")
	}
}

func TestVerifyEmbedding(t *testing.T) {
	host := petersen()
	guest := Ring{N: 5}
	if err := VerifyEmbedding(guest, host, []int{0, 1, 2, 3, 4}); err != nil {
		t.Fatalf("outer cycle should embed: %v", err)
	}
	if err := VerifyEmbedding(guest, host, []int{0, 1, 2, 3, 9}); err == nil {
		t.Fatal("accepted non-edge image")
	}
	if err := VerifyEmbedding(guest, host, []int{0, 1, 2, 3, 3}); err == nil {
		t.Fatal("accepted non-injective map")
	}
	if err := VerifyEmbedding(guest, host, []int{0, 1, 2, 3}); err == nil {
		t.Fatal("accepted short map")
	}
	if err := VerifyEmbedding(guest, host, []int{0, 1, 2, 3, 99}); err == nil {
		t.Fatal("accepted out-of-range image")
	}
}

func TestVerifyDisjointPathsRejects(t *testing.T) {
	p := petersen()
	// Shared internal vertex 1.
	bad := [][]int{{0, 1, 2}, {0, 1, 6, 9, 7, 2}}
	if err := VerifyDisjointPaths(p, 0, 2, bad); err == nil {
		t.Fatal("accepted overlapping paths")
	}
	// Wrong endpoints.
	if err := VerifyDisjointPaths(p, 0, 2, [][]int{{0, 1}}); err == nil {
		t.Fatal("accepted path to wrong endpoint")
	}
	// Non-edge.
	if err := VerifyDisjointPaths(p, 0, 2, [][]int{{0, 2}}); err == nil {
		t.Fatal("accepted non-edge path")
	}
}

func TestVerifyGeneratorAction(t *testing.T) {
	if err := VerifyGeneratorAction(Ring{N: 5}, 2); err != nil {
		t.Fatal(err)
	}
	if err := VerifyGeneratorAction(Ring{N: 5}, 3); err == nil {
		t.Fatal("accepted wrong degree")
	}
	// A graph with a repeated neighbor must be rejected.
	d := NewDense(3, [][2]int{{0, 1}, {0, 1}, {1, 2}, {2, 0}})
	if err := VerifyGeneratorAction(d, 3); err == nil {
		t.Fatal("accepted duplicate generator images")
	}
}

func TestDiameterParallel(t *testing.T) {
	p := petersen()
	if got := DiameterParallel(p, 4); got != 2 {
		t.Fatalf("DiameterParallel = %d", got)
	}
	if got := DiameterParallel(p, 0); got != 2 {
		t.Fatalf("DiameterParallel default workers = %d", got)
	}
	if got := DiameterParallel(NewDense(4, [][2]int{{0, 1}, {2, 3}}), 2); got != -1 {
		t.Fatalf("disconnected DiameterParallel = %d", got)
	}
	big := Build(Torus{N1: 11, N2: 13})
	if seq, par := Diameter(big), DiameterParallel(big, 3); seq != par {
		t.Fatalf("sequential %d vs parallel %d", seq, par)
	}
	if got := DiameterParallel(NewDense(0, nil), 1); got != 0 {
		t.Fatalf("empty DiameterParallel = %d", got)
	}
}

func TestEdgeConnectivity(t *testing.T) {
	cases := []struct {
		name string
		g    *Dense
		want int
	}{
		{"petersen", petersen(), 3},
		{"ring6", Build(Ring{N: 6}), 2},
		{"path4", Build(Path{N: 4}), 1},
		{"k5", Build(Complete{N: 5}), 4},
		{"disconnected", NewDense(4, [][2]int{{0, 1}, {2, 3}}), 0},
		{"single", NewDense(1, nil), 0},
		// Two triangles sharing a vertex: vertex connectivity 1 but edge
		// connectivity 2 — distinguishes the two notions.
		{"bowtie", NewDense(5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}}), 2},
	}
	for _, c := range cases {
		if got := EdgeConnectivity(c.g); got != c.want {
			t.Errorf("%s: EdgeConnectivity = %d, want %d", c.name, got, c.want)
		}
	}
	if got := LocalEdgeConnectivity(petersen(), 0, 7); got != 3 {
		t.Errorf("LocalEdgeConnectivity = %d", got)
	}
}

func TestGirth(t *testing.T) {
	cases := []struct {
		name string
		g    Graph
		want int
	}{
		{"petersen", petersen(), 5},
		{"ring7", Ring{N: 7}, 7},
		{"k4", Complete{N: 4}, 3},
		{"path5", Path{N: 5}, -1},
		{"torus4x5", Torus{N1: 4, N2: 5}, 4},
		{"selfloop", NewDense(2, [][2]int{{0, 0}, {0, 1}}), 1},
		{"multiedge", NewDense(2, [][2]int{{0, 1}, {0, 1}}), 2},
		{"tree", CompleteBinaryTree{Levels: 4}, -1},
		{"evencycle8", Ring{N: 8}, 8},
	}
	for _, c := range cases {
		if got := Girth(c.g); got != c.want {
			t.Errorf("%s: Girth = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestNodeToSetDisjointPaths(t *testing.T) {
	p := petersen()
	// kappa = 3: any 3 targets admit a fan from any source.
	cases := [][]int{
		{1, 4, 5}, // the three neighbors of 0
		{2, 7, 9}, // spread targets
		{6, 8, 3}, // mixed inner/outer
	}
	for _, targets := range cases {
		paths, err := NodeToSetDisjointPaths(p, 0, targets)
		if err != nil {
			t.Fatalf("targets %v: %v", targets, err)
		}
		if err := VerifyNodeToSetPaths(p, 0, targets, paths); err != nil {
			t.Fatalf("targets %v: %v", targets, err)
		}
	}
	// Empty target set is a no-op.
	if paths, err := NodeToSetDisjointPaths(p, 0, nil); err != nil || paths != nil {
		t.Fatalf("empty targets: %v %v", paths, err)
	}
}

func TestNodeToSetValidation(t *testing.T) {
	p := petersen()
	if _, err := NodeToSetDisjointPaths(p, 0, []int{0}); err == nil {
		t.Error("accepted src as target")
	}
	if _, err := NodeToSetDisjointPaths(p, 0, []int{1, 1}); err == nil {
		t.Error("accepted duplicate targets")
	}
	if _, err := NodeToSetDisjointPaths(p, 0, []int{77}); err == nil {
		t.Error("accepted out-of-range target")
	}
	// 4 targets exceed kappa = 3 only if they saturate a cut; from 0 the
	// degree-3 bound makes any 4 targets infeasible.
	if _, err := NodeToSetDisjointPaths(p, 0, []int{1, 2, 3, 4}); err == nil {
		t.Error("accepted more targets than the degree allows")
	}
}

func TestVerifyNodeToSetRejects(t *testing.T) {
	p := petersen()
	if err := VerifyNodeToSetPaths(p, 0, []int{1, 2}, [][]int{{0, 1}}); err == nil {
		t.Error("accepted count mismatch")
	}
	if err := VerifyNodeToSetPaths(p, 0, []int{1}, [][]int{{0, 2}}); err == nil {
		t.Error("accepted wrong endpoint")
	}
	if err := VerifyNodeToSetPaths(p, 0, []int{2, 7}, [][]int{{0, 1, 2}, {0, 1, 6, 9, 7}}); err == nil {
		t.Error("accepted shared internal vertex")
	}
}

func TestMeshOfTreesDirect(t *testing.T) {
	mt := MeshOfTrees{P: 2, Q: 2}
	if err := CheckMeshOfTrees(mt); err != nil {
		t.Fatal(err)
	}
	// Encode/Decode round trip over the ambient product.
	for v := 0; v < mt.Order(); v++ {
		i, j := mt.Decode(v)
		if mt.Encode(i, j) != v {
			t.Fatalf("round trip failed at %d", v)
		}
	}
	// A grid leaf touches both trees: degree 2 (its two tree parents).
	leaf := mt.Encode(3, 3) // heap index 3 is a leaf of T(3)
	if !mt.Contains(leaf) {
		t.Fatal("leaf not contained")
	}
	var buf []int
	buf = mt.AppendNeighbors(leaf, buf)
	if len(buf) != 2 {
		t.Fatalf("grid leaf degree %d, want 2", len(buf))
	}
	// Padding vertices (both coordinates internal) are isolated and
	// excluded.
	pad := mt.Encode(0, 0)
	if mt.Contains(pad) {
		t.Fatal("internal-internal pair should be padding")
	}
	if buf = mt.AppendNeighbors(pad, buf[:0]); len(buf) != 0 {
		t.Fatalf("padding vertex has %d neighbors", len(buf))
	}
	if err := CheckMeshOfTrees(MeshOfTrees{P: -1, Q: 1}); err == nil {
		t.Error("accepted negative p")
	}
}

func TestCompleteBinaryTreeOrderDegenerate(t *testing.T) {
	if (CompleteBinaryTree{Levels: 0}).Order() != 0 {
		t.Error("T(0) should be empty")
	}
	if (CompleteBinaryTree{Levels: 3}).Order() != 7 {
		t.Error("T(3) order wrong")
	}
}

func TestProductVertexLabel(t *testing.T) {
	pr := NewProduct(Ring{N: 3}, Path{N: 2})
	if got := pr.VertexLabel(pr.Encode(2, 1)); got != "(2; 1)" {
		t.Errorf("label = %q", got)
	}
	// Named factors propagate their own labels.
	type namedRing struct{ Ring }
	nr := namedRing{Ring{N: 3}}
	_ = nr
}

func TestRingPanicsBelowThree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Ring{2} did not panic")
		}
	}()
	Ring{N: 2}.AppendNeighbors(0, nil)
}
