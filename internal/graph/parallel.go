package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DiameterParallel computes the exact diameter of g by running
// single-source BFS from every vertex across `workers` goroutines
// (default: GOMAXPROCS when workers <= 0). Each worker reuses its own
// distance and queue buffers, so memory stays at O(workers · |V|).
// Returns -1 for a disconnected graph.
func DiameterParallel(g Graph, workers int) int {
	n := g.Order()
	if n == 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next int64 = -1
	var diam int64
	var disconnected int32
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			dist := make([]int32, n)
			queue := make([]int32, 0, n)
			var buf []int
			local := int64(0)
			for {
				src := int(atomic.AddInt64(&next, 1))
				if src >= n || atomic.LoadInt32(&disconnected) != 0 {
					break
				}
				for i := range dist {
					dist[i] = Unreachable
				}
				dist[src] = 0
				queue = append(queue[:0], int32(src))
				reached := 1
				for head := 0; head < len(queue); head++ {
					v := int(queue[head])
					dv := dist[v]
					buf = g.AppendNeighbors(v, buf[:0])
					for _, x := range buf {
						if dist[x] == Unreachable {
							dist[x] = dv + 1
							reached++
							queue = append(queue, int32(x))
						}
					}
				}
				if reached != n {
					atomic.StoreInt32(&disconnected, 1)
					break
				}
				if ecc := int64(dist[queue[len(queue)-1]]); ecc > local {
					local = ecc
				}
			}
			for {
				cur := atomic.LoadInt64(&diam)
				if local <= cur || atomic.CompareAndSwapInt64(&diam, cur, local) {
					break
				}
			}
		}()
	}
	wg.Wait()
	if disconnected != 0 {
		return -1
	}
	return int(diam)
}
