package graph

// DiameterParallel computes the exact diameter of g by running
// single-source BFS from every vertex across `workers` goroutines
// (default: GOMAXPROCS when workers <= 0) on the shared AllSources
// sweep engine: chunked work claiming, one direction-optimizing Scratch
// per worker, early exit on the first disconnected source. Memory stays
// at O(workers · |V|). Returns -1 for a disconnected graph. Non-Dense
// graphs are materialised first; pass the Dense directly to avoid
// rebuilding per call.
func DiameterParallel(g Graph, workers int) int {
	return diameterAllSources(asDense(g), workers)
}
