package graph

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
)

// This file is the shared all-sources sweep engine: Diameter,
// DiameterParallel, DistanceHistogram and the fault-diameter experiment
// all run as one worker-pooled loop over BFS sources, with chunked work
// claiming and one reusable Scratch per worker.

// sweepChunk is the number of consecutive sources a worker claims at a
// time: large enough to amortise the atomic, small enough that stragglers
// can steal the tail of an uneven sweep.
const sweepChunk = 16

// EffectiveWorkers returns the worker count AllSources uses for a
// sweep over n sources given the requested count (<= 0 means
// GOMAXPROCS). Callers allocating per-worker state index it with the
// worker argument of their visit callback, which ranges over
// [0, EffectiveWorkers(workers, n)).
func EffectiveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// AllSources runs one BFS from every non-excluded vertex of d across a
// worker pool. Sources are claimed in chunks off a shared atomic
// counter; each worker owns one Scratch for its whole shift, so the
// sweep does zero steady-state allocations per source. After each BFS
// the worker calls visit(worker, src, s) — s.Dist/Reached/MaxDist hold
// that source's result and alias the worker's scratch, so visit must
// not retain them. Returning false cancels the sweep (other workers
// stop at their next claim or source). visit runs concurrently across
// workers; it must synchronise any shared writes itself or index
// per-worker state by the worker id.
func AllSources(d *Dense, excluded []bool, workers int, visit func(worker, src int, s *Scratch) bool) {
	n := d.Order()
	if n == 0 {
		return
	}
	workers = EffectiveWorkers(workers, n)
	var excl *bitvec.Set
	if excluded != nil {
		excl = bitvec.NewSet(n)
		for v, x := range excluded {
			if x {
				excl.Add(v)
			}
		}
	}
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			s := NewScratch(n)
			for !stop.Load() {
				base := int(next.Add(sweepChunk)) - sweepChunk
				if base >= n {
					return
				}
				end := base + sweepChunk
				if end > n {
					end = n
				}
				for src := base; src < end; src++ {
					if excl != nil && excl.Has(src) {
						continue
					}
					d.bfsBits(src, excl, s)
					if !visit(worker, src, s) {
						stop.Store(true)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// diameterAllSources is Diameter/DiameterParallel over the bit-parallel
// sweep engine: -1 as soon as any batch proves the graph disconnected,
// otherwise the maximum eccentricity.
func diameterAllSources(d *Dense, workers int) int {
	n := d.Order()
	if n == 0 {
		return 0
	}
	sweep := d.AllSourcesBits(nil, workers)
	if !sweep.Complete {
		return -1
	}
	diam := int32(0)
	for _, e := range sweep.Ecc {
		if e > diam {
			diam = e
		}
	}
	return int(diam)
}

// distanceHistogramAllSources computes the ordered-pair distance
// histogram from the bit-parallel sweep's per-level pair counts — the
// histogram is sized once per observed level (no inner append-growth
// loop) and merged across workers at the end.
func distanceHistogramAllSources(d *Dense, workers int) []int64 {
	n := d.Order()
	if n == 0 {
		return nil
	}
	sweep := d.AllSourcesBits(nil, workers)
	if !sweep.Complete {
		return nil
	}
	return sweep.Hist
}
