package graph

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
)

// 64-way bit-parallel all-sources BFS.
//
// An all-sources sweep (diameter, distance histogram, fault diameter)
// does not need the per-source distance arrays — only per-source
// eccentricities and per-level pair counts. Those aggregates admit a
// much cheaper propagation scheme than one BFS per source: give every
// vertex a 64-bit mask of which sources of the current batch have
// reached it, and advance one whole level for all 64 sources with a
// single pull pass — per vertex, OR the neighbours' frontier masks and
// strip the bits already seen. One pass costs O(|E|) word operations
// and serves 64 sources at once, so the per-source cost drops by
// roughly the word width compared to scalar BFS. Batches of 64 sources
// are independent, which is the unit the pooled driver hands to its
// workers.
//
// The same pass handles vertex faults: an excluded vertex is never
// seeded, keeps an all-zero frontier mask, and is skipped as a pull
// target, so no source's wave ever crosses it.

// BatchSweep is the aggregate result of a bit-parallel all-sources
// sweep.
type BatchSweep struct {
	// Ecc[v] is the eccentricity of v restricted to non-excluded
	// vertices; -1 for excluded vertices. Only meaningful when
	// Complete.
	Ecc []int32
	// Hist[k] counts ordered (source, vertex) pairs at distance k,
	// including the n zero-distance (v, v) pairs. Only meaningful when
	// Complete.
	Hist []int64
	// Complete reports whether every non-excluded source reached every
	// non-excluded vertex. When false, MissingSrc did not reach
	// MissingDst.
	Complete               bool
	MissingSrc, MissingDst int
}

// batchState is the reusable per-worker storage of one in-flight batch:
// per-vertex masks of sources seen so far, the current frontier and the
// next frontier.
type batchState struct {
	seen, cur, next []uint64
	hist            []int64
}

func newBatchState(n int) *batchState {
	return &batchState{
		seen: make([]uint64, n),
		cur:  make([]uint64, n),
		next: make([]uint64, n),
	}
}

// runBitBatch propagates the sources [base, base+k) (k <= 64) to every
// non-excluded vertex, accumulating eccentricities into ecc[base:] and
// per-level pair counts into st.hist. It returns ok=false with a
// witness pair as soon as propagation stalls before covering every
// survivor.
func runBitBatch(d *Dense, base, k int, excl *bitvec.Set, st *batchState, ecc []int32) (ok bool, missSrc, missDst int) {
	n := len(d.offsets) - 1
	seen, cur, next := st.seen[:n], st.cur[:n], st.next[:n]
	for i := range seen {
		seen[i], cur[i], next[i] = 0, 0, 0
	}

	// Seed the surviving sources of this batch; bit i stands for source
	// base+i. full is the mask the sweep must deliver to every survivor.
	var full uint64
	for i := 0; i < k; i++ {
		v := base + i
		if excl != nil && excl.Has(v) {
			continue
		}
		bit := uint64(1) << uint(i)
		full |= bit
		seen[v] = bit
		cur[v] = bit
	}
	if full == 0 {
		return true, 0, 0
	}
	st.hist = addHist(st.hist, 0, int64(bits.OnesCount64(full)))

	adj, offs := d.adj, d.offsets
	for level := int32(1); ; level++ {
		var levelUnion uint64
		var levelCount int
		for v := 0; v < n; v++ {
			sv := seen[v]
			if sv == full {
				next[v] = 0
				continue
			}
			if excl != nil && excl.Has(v) {
				continue
			}
			var m uint64
			end := offs[v+1]
			for j := offs[v]; j < end; j++ {
				m |= cur[adj[j]]
			}
			m &^= sv
			next[v] = m
			if m != 0 {
				seen[v] = sv | m
				levelUnion |= m
				levelCount += bits.OnesCount64(m)
			}
		}
		if levelUnion == 0 {
			break
		}
		// A source's eccentricity is the last level at which its wave
		// still gained a vertex.
		for mu := levelUnion; mu != 0; mu &= mu - 1 {
			ecc[base+bits.TrailingZeros64(mu)] = level
		}
		st.hist = addHist(st.hist, int(level), int64(levelCount))
		cur, next = next, cur
	}

	// Coverage check: every survivor must carry every seeded bit.
	for v := 0; v < n; v++ {
		if excl != nil && excl.Has(v) {
			continue
		}
		if missing := full &^ seen[v]; missing != 0 {
			return false, base + bits.TrailingZeros64(missing), v
		}
	}
	return true, 0, 0
}

// addHist grows h to cover level and adds c to it — one bounds
// adjustment per BFS level, never per vertex.
func addHist(h []int64, level int, c int64) []int64 {
	for len(h) <= level {
		h = append(h, 0)
	}
	h[level] += c
	return h
}

// AllSourcesBits runs the pooled bit-parallel all-sources sweep:
// batches of 64 sources are claimed by `workers` goroutines (default
// GOMAXPROCS when workers <= 0), each reusing one batchState, and the
// per-worker histograms are merged at the end. Excluded vertices
// (excluded may be nil) are treated as deleted. The sweep short-
// circuits as soon as any batch proves the surviving graph
// disconnected.
func (d *Dense) AllSourcesBits(excluded []bool, workers int) *BatchSweep {
	n := d.Order()
	res := &BatchSweep{Ecc: make([]int32, n), Complete: true}
	if n == 0 {
		res.Hist = []int64{}
		return res
	}
	var excl *bitvec.Set
	if excluded != nil {
		excl = bitvec.NewSet(n)
		for v, x := range excluded {
			if x {
				excl.Add(v)
				res.Ecc[v] = -1
			}
		}
	}

	batches := (n + wordSources - 1) / wordSources
	w := EffectiveWorkers(workers, batches)
	var (
		nextBatch atomic.Int64
		stop      atomic.Bool
		mu        sync.Mutex
		wg        sync.WaitGroup
	)
	hists := make([][]int64, w)
	for worker := 0; worker < w; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			st := newBatchState(n)
			for !stop.Load() {
				b := int(nextBatch.Add(1)) - 1
				if b >= batches {
					break
				}
				base := b * wordSources
				k := n - base
				if k > wordSources {
					k = wordSources
				}
				ok, missSrc, missDst := runBitBatch(d, base, k, excl, st, res.Ecc)
				if !ok {
					mu.Lock()
					if res.Complete {
						res.Complete = false
						res.MissingSrc, res.MissingDst = missSrc, missDst
					}
					mu.Unlock()
					stop.Store(true)
					break
				}
			}
			hists[worker] = st.hist
		}(worker)
	}
	wg.Wait()
	if !res.Complete {
		return res
	}
	for _, h := range hists {
		res.Hist = mergeHist(res.Hist, h)
	}
	return res
}

const wordSources = 64

func mergeHist(dst, src []int64) []int64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, c := range src {
		dst[i] += c
	}
	return dst
}
