package graph

import "fmt"

// Product is the Cartesian product G □ H (Definition 3 of the paper uses
// exactly this product to define HB(m,n) = H_m □ B_n): vertex (u,x) is
// adjacent to (v,y) iff u=v and {x,y} is an edge of H, or x=y and {u,v}
// is an edge of G.
//
// Vertices are encoded as u*H.Order() + x, i.e. the G coordinate is the
// high digit. Product implements Graph lazily; Build it for algorithms
// needing random access.
type Product struct {
	G, H Graph
}

// NewProduct returns the Cartesian product of g and h.
func NewProduct(g, h Graph) *Product { return &Product{G: g, H: h} }

// Order returns |G|·|H|.
func (p *Product) Order() int { return p.G.Order() * p.H.Order() }

// Encode maps a coordinate pair to a product vertex id.
func (p *Product) Encode(u, x int) int { return u*p.H.Order() + x }

// Decode splits a product vertex id into its (G, H) coordinates.
func (p *Product) Decode(v int) (u, x int) { return v / p.H.Order(), v % p.H.Order() }

// AppendNeighbors implements Graph.
func (p *Product) AppendNeighbors(v int, buf []int) []int {
	u, x := p.Decode(v)
	start := len(buf)
	buf = p.G.AppendNeighbors(u, buf)
	for i := start; i < len(buf); i++ {
		buf[i] = p.Encode(buf[i], x)
	}
	start = len(buf)
	buf = p.H.AppendNeighbors(x, buf)
	for i := start; i < len(buf); i++ {
		buf[i] = p.Encode(u, buf[i])
	}
	return buf
}

// VertexLabel renders a product vertex as "(gLabel; hLabel)", using the
// factors' own labels when available.
func (p *Product) VertexLabel(v int) string {
	u, x := p.Decode(v)
	gl := fmt.Sprintf("%d", u)
	if n, ok := p.G.(Named); ok {
		gl = n.VertexLabel(u)
	}
	hl := fmt.Sprintf("%d", x)
	if n, ok := p.H.(Named); ok {
		hl = n.VertexLabel(x)
	}
	return "(" + gl + "; " + hl + ")"
}

// Ring is the cycle graph C(n) for n >= 3. It is both a test fixture and
// the building block of the wrap-around meshes of Section 4.
type Ring struct{ N int }

// Order returns the number of ring vertices.
func (r Ring) Order() int { return r.N }

// AppendNeighbors implements Graph.
func (r Ring) AppendNeighbors(v int, buf []int) []int {
	if r.N < 3 {
		panic(fmt.Sprintf("graph: Ring of %d vertices is not a cycle", r.N))
	}
	return append(buf, (v+1)%r.N, (v+r.N-1)%r.N)
}

// Path is the path graph P(n) on n vertices.
type Path struct{ N int }

// Order returns the number of path vertices.
func (p Path) Order() int { return p.N }

// AppendNeighbors implements Graph.
func (p Path) AppendNeighbors(v int, buf []int) []int {
	if v > 0 {
		buf = append(buf, v-1)
	}
	if v < p.N-1 {
		buf = append(buf, v+1)
	}
	return buf
}

// Complete is the complete graph K(n).
type Complete struct{ N int }

// Order returns n.
func (k Complete) Order() int { return k.N }

// AppendNeighbors implements Graph.
func (k Complete) AppendNeighbors(v int, buf []int) []int {
	for w := 0; w < k.N; w++ {
		if w != v {
			buf = append(buf, w)
		}
	}
	return buf
}

// Torus is the wrap-around mesh M(n1,n2) = C(n1) □ C(n2) of Section 4.
// Vertex (i,j) is encoded as i*N2 + j.
type Torus struct{ N1, N2 int }

// Order returns n1·n2.
func (t Torus) Order() int { return t.N1 * t.N2 }

// Encode maps torus coordinates to a vertex id.
func (t Torus) Encode(i, j int) int { return i*t.N2 + j }

// Decode splits a vertex id into torus coordinates.
func (t Torus) Decode(v int) (i, j int) { return v / t.N2, v % t.N2 }

// AppendNeighbors implements Graph.
func (t Torus) AppendNeighbors(v int, buf []int) []int {
	i, j := t.Decode(v)
	return append(buf,
		t.Encode((i+1)%t.N1, j),
		t.Encode((i+t.N1-1)%t.N1, j),
		t.Encode(i, (j+1)%t.N2),
		t.Encode(i, (j+t.N2-1)%t.N2),
	)
}
