package graph

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
)

// This file is the flat-CSR single-source BFS kernel behind every
// distance query that needs a full per-vertex distance array
// (conformance checks, path verification, connectivity probes). It
// operates directly on the Dense offset/adjacency arrays — no Graph
// interface dispatch, no per-vertex neighbor copying — and switches
// between conventional top-down expansion and Beamer-style bottom-up
// "pull" steps. All per-BFS state lives in a Scratch that callers (and
// the AllSources driver) reuse, so a sweep performs zero steady-state
// allocations per source. (Aggregate all-sources queries — diameter,
// distance histogram — go through the 64-way bit-parallel engine in
// bitparallel.go instead.)
//
// Three departures from the textbook formulation keep the constant
// factor low on the regular, modest-degree graphs of this repository:
//
//   - The distance array itself is the visited structure: top-down
//     tests dist[u] == Unreachable (one int32 load) instead of a
//     bitset probe, and excluded vertices are pre-marked with a
//     sentinel so the hot loop never branches on the fault set.
//   - The pull step needs no frontier bitset either: a neighbour is in
//     the frontier iff dist[u] == level-1, one load from the same hot
//     array the push step reads.
//   - The queue is appended to in both directions, so the bottom-up to
//     top-down transition is free, and the pull candidate list starts
//     as a memmove of an iota template and is compacted in place.

// excludedMark is the in-flight dist sentinel for faulty vertices; the
// kernel rewrites it to Unreachable before returning.
const excludedMark = int32(-1)

// Direction-switch thresholds, in the spirit of Beamer–Asanović–
// Patterson (SC'12) but expressed over vertices (the graphs here are
// near-regular, so frontier edge counts are proportional): pull when
// the frontier out-edges exceed the edges still incident to unvisited
// vertices (frontSize > unvisited/bfsAlpha) and the pull pass over the
// candidate list is amortised (frontEdges > n/bfsGamma).
const (
	bfsAlpha = 2
	bfsGamma = 8
)

// Scratch is the reusable state of one in-flight BFS: the distance
// array, the traversal queue, the pull candidate list and the
// summary of the last run (reached count, eccentricity). A Scratch
// grows monotonically to the largest graph it has seen, so reusing one
// across a sweep keeps every BFS allocation-free.
//
// A Scratch is not safe for concurrent use; pooled drivers keep one per
// worker.
type Scratch struct {
	dist  []int32
	queue []int32
	rest  []int32     // pull-step unvisited candidates, compacted per level
	iota  []int32     // 0..n-1 template; memmove-initialises rest
	excl  *bitvec.Set // excluded []bool converted once per call

	n       int // order of the graph of the last run
	reached int
	maxDist int32
}

// NewScratch returns a Scratch pre-sized for graphs of order n (a hint;
// the scratch grows on demand).
func NewScratch(n int) *Scratch {
	s := &Scratch{excl: bitvec.NewSet(0)}
	s.grow(n)
	return s
}

func (s *Scratch) grow(n int) {
	if cap(s.dist) < n {
		s.dist = make([]int32, n)
		s.queue = make([]int32, 0, n)
		s.rest = make([]int32, 0, n)
		s.iota = make([]int32, n)
		for i := range s.iota {
			s.iota[i] = int32(i)
		}
	}
	s.n = n
}

// Dist returns the distance array of the last BFS (aliases scratch
// storage; valid until the next run on this Scratch).
func (s *Scratch) Dist() []int32 { return s.dist[:s.n] }

// Reached returns the number of vertices reached by the last BFS,
// including the source.
func (s *Scratch) Reached() int { return s.reached }

// MaxDist returns the largest finite distance of the last BFS — the
// source's eccentricity within its (fault-free) component.
func (s *Scratch) MaxDist() int { return int(s.maxDist) }

// BFSScratch computes single-source shortest-path distances from src on
// the CSR arrays, reusing s. Faulty vertices (excluded[v] == true) are
// treated as deleted; excluded may be nil. The source must not be
// excluded. The returned slice aliases s and is valid until the next
// run on this Scratch.
func (d *Dense) BFSScratch(src int, excluded []bool, s *Scratch) []int32 {
	var excl *bitvec.Set
	if excluded != nil {
		s.excl.Reset(len(excluded))
		for v, x := range excluded {
			if x {
				s.excl.Add(v)
			}
		}
		excl = s.excl
	}
	d.bfsBits(src, excl, s)
	return s.Dist()
}

// EccentricityScratch returns the eccentricity of src and whether the
// whole graph was reached, reusing s.
func (d *Dense) EccentricityScratch(src int, s *Scratch) (ecc int, connected bool) {
	d.bfsBits(src, nil, s)
	return s.MaxDist(), s.reached == d.Order()
}

// bfsBits is the direction-optimizing kernel. excl (may be nil) is the
// bit-packed fault set; it is only read, so one set can be shared by
// every worker of a sweep. Results land in s (dist, reached, maxDist).
func (d *Dense) bfsBits(src int, excl *bitvec.Set, s *Scratch) {
	n := len(d.offsets) - 1
	s.grow(n)
	dist := s.dist[:n]
	for i := range dist {
		dist[i] = Unreachable
	}
	s.reached = 0
	s.maxDist = 0
	if n == 0 {
		return
	}
	if src < 0 || src >= n {
		panic(fmt.Sprintf("graph: BFS source %d out of range [0,%d)", src, n))
	}
	if excl != nil {
		if excl.Has(src) {
			panic(fmt.Sprintf("graph: BFS source %d is excluded", src))
		}
		// Sentinel-mark faults so the hot loops treat them as visited.
		for _, f := range excl.AppendIndices(s.queue[:0]) {
			dist[f] = excludedMark
		}
	}
	dist[src] = 0
	s.reached = 1

	queue := append(s.queue[:0], int32(src))
	qHead := 0 // the current frontier is queue[qHead:len(queue)]
	adj, offs := d.adj, d.offsets
	avgDeg := len(adj)/n + 1
	rest := s.rest[:0] // unvisited candidates; valid only while pulling
	restValid := false
	var level int32

	for qHead < len(queue) {
		s.maxDist = level
		level++
		qTail := len(queue)
		frontSize := qTail - qHead
		unvisited := n - s.reached
		if frontSize > unvisited/bfsAlpha && frontSize*avgDeg > n/bfsGamma {
			// Pull step: each still-unvisited vertex scans its own row
			// for a parent in the current frontier. Membership needs no
			// frontier bitset: u is in the frontier iff dist[u] == prev,
			// one load from the same hot array the push step reads. The
			// candidate list starts as a memmove of the iota template on
			// the first pull and is compacted in place per level;
			// vertices visited by intervening push levels are skipped
			// via one dist load, so the list never needs rebuilding.
			prev := level - 1
			if !restValid {
				rest = rest[:n]
				copy(rest, s.iota)
				restValid = true
			}
			kept := rest[:0]
			for _, v := range rest {
				if dist[v] != Unreachable {
					continue
				}
				end := offs[v+1]
				found := false
				for j := offs[v]; j < end; j++ {
					if dist[adj[j]] == prev {
						found = true
						break
					}
				}
				if found {
					dist[v] = level
					queue = append(queue, v)
				} else {
					kept = append(kept, v)
				}
			}
			rest = kept
		} else {
			// Push step: expand the queue segment of the current level.
			for i := qHead; i < qTail; i++ {
				v := queue[i]
				end := offs[v+1]
				for j := offs[v]; j < end; j++ {
					u := adj[j]
					if dist[u] == Unreachable {
						dist[u] = level
						queue = append(queue, u)
					}
				}
			}
		}
		qHead = qTail
		s.reached += len(queue) - qTail
	}
	s.queue = queue[:0]
	s.rest = rest[:0]

	if excl != nil {
		// Restore the public contract: excluded vertices report
		// Unreachable, exactly as if they had been deleted.
		for wi, w := range excl.Words() {
			base := wi << 6
			for w != 0 {
				dist[base+bits.TrailingZeros64(w)] = Unreachable
				w &= w - 1
			}
		}
	}
}
