package graph

import "fmt"

// NodeToSetDisjointPaths returns paths from src to every target in
// targets that are pairwise vertex-disjoint except at src (the
// "node-to-set" disjoint path problem of the companion literature the
// paper cites — Latifi, Ko & Srimani for hypercubes). Such path sets
// exist whenever len(targets) <= kappa(G) by Menger's theorem
// (fan lemma); HB(m,n) therefore supports fans of size m+4.
//
// Implementation: unit-capacity max-flow on the node-split graph with a
// super-sink attached to every target (targets keep capacity 1 so each
// is the endpoint of exactly one path). Returns an error if some target
// cannot be reached disjointly.
func NodeToSetDisjointPaths(d *Dense, src int, targets []int) ([][]int, error) {
	if len(targets) == 0 {
		return nil, nil
	}
	n := d.Order()
	isTarget := make(map[int]bool, len(targets))
	for _, t := range targets {
		if t < 0 || t >= n {
			return nil, fmt.Errorf("graph: target %d out of range [0,%d)", t, n)
		}
		if t == src {
			return nil, fmt.Errorf("graph: source %d cannot be its own target", src)
		}
		if isTarget[t] {
			return nil, fmt.Errorf("graph: duplicate target %d", t)
		}
		isTarget[t] = true
	}

	// Node-split network plus a super-sink at index 2n.
	f := newFlowNet(2*n + 1)
	sink := 2 * n
	for v := 0; v < n; v++ {
		cap := int8(1)
		if v == src {
			cap = 127
		}
		f.addArc(splitIn(v), splitOut(v), cap)
		prev := int32(-1)
		for _, w := range d.Neighbors(v) {
			if w == prev || int(w) == v {
				prev = w
				continue
			}
			prev = w
			f.addArc(splitOut(v), splitIn(int(w)), 1)
		}
	}
	for t := range isTarget {
		f.addArc(splitOut(t), sink, 1)
	}
	flow := f.maxFlow(splitOut(src), sink, len(targets))
	if flow != len(targets) {
		return nil, fmt.Errorf("graph: only %d of %d disjoint paths exist from %d", flow, len(targets), src)
	}

	// Decompose: walk flow-carrying arcs from src; each walk ends at a
	// target whose sink arc is saturated.
	used := make([][]bool, len(f.edges))
	for v := range used {
		used[v] = make([]bool, len(f.edges[v]))
	}
	next := func(v int) int {
		for i, e := range f.edges[v] {
			if used[v][i] || int(e.to) == sink {
				continue
			}
			if f.edges[e.to][e.rev].cap > 0 && isForwardArc(f, v, i) {
				used[v][i] = true
				return int(e.to)
			}
		}
		return -1
	}
	// A walk can never pass *through* a target: its split arc has
	// capacity 1 and that unit leaves via the sink, so every walk from
	// src terminates exactly at its own target (loops en route are cut
	// out as in DisjointPaths).
	paths := make([][]int, 0, len(targets))
	for k := 0; k < len(targets); k++ {
		path := []int{src}
		at := map[int]int{src: 0}
		v := splitOut(src)
		for {
			w := next(v)
			if w == -1 {
				break
			}
			orig := w / 2
			if i, seen := at[orig]; seen {
				for _, x := range path[i+1:] {
					delete(at, x)
				}
				path = path[:i+1]
			} else {
				at[orig] = len(path)
				path = append(path, orig)
			}
			v = splitOut(orig)
		}
		last := path[len(path)-1]
		if !isTarget[last] {
			return nil, fmt.Errorf("graph: flow decomposition ended at non-target %d", last)
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// VerifyNodeToSetPaths checks that paths is a valid fan: path i runs
// from src to targets[i] (in some order covering all targets), each is
// a simple path on edges of g, and no vertex other than src appears in
// two paths.
func VerifyNodeToSetPaths(g Graph, src int, targets []int, paths [][]int) error {
	if len(paths) != len(targets) {
		return fmt.Errorf("graph: %d paths for %d targets", len(paths), len(targets))
	}
	remaining := make(map[int]bool, len(targets))
	for _, t := range targets {
		remaining[t] = true
	}
	seen := make(map[int]int)
	for pi, p := range paths {
		if len(p) < 2 || p[0] != src {
			return fmt.Errorf("graph: path %d does not start at %d: %v", pi, src, p)
		}
		end := p[len(p)-1]
		if !remaining[end] {
			return fmt.Errorf("graph: path %d ends at %d, not an unused target", pi, end)
		}
		delete(remaining, end)
		if err := VerifyPath(g, p); err != nil {
			return fmt.Errorf("graph: path %d: %w", pi, err)
		}
		for _, v := range p[1:] {
			if other, dup := seen[v]; dup {
				return fmt.Errorf("graph: paths %d and %d share vertex %d", other, pi, v)
			}
			seen[v] = pi
		}
	}
	return nil
}

// isForwardArc reports whether edge index i out of v was created by
// addArc as a real (capacity-bearing) arc rather than a residual. Real
// arcs from an out-node go to in-nodes; real arcs from an in-node go to
// the matching out-node.
func isForwardArc(f *flowNet, v, i int) bool {
	e := f.edges[v][i]
	if v%2 == 1 { // out-node: forward arcs lead to in-nodes of neighbors
		return e.to%2 == 0
	}
	// in-node: the only forward arc is to its own out-node
	return int(e.to) == v+1
}
