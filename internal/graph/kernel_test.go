package graph

import (
	"math/rand"
	"testing"
)

// gnp returns an Erdős–Rényi random graph G(n, p) with a deterministic
// seed. Density p steers which kernel direction dominates: sparse
// graphs stay top-down, dense ones trip the bottom-up switch.
func gnp(n int, p float64, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return NewDense(n, edges)
}

// randomExcluded marks each vertex faulty with probability p, never the
// protected vertex.
func randomExcluded(n int, p float64, protect int, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	excluded := make([]bool, n)
	for v := range excluded {
		if v != protect && rng.Float64() < p {
			excluded[v] = true
		}
	}
	return excluded
}

func distEqual(t *testing.T, name string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d vs %d", name, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: dist[%d] = %d, reference %d", name, v, got[v], want[v])
		}
	}
}

// TestKernelMatchesReferenceRandom differentially tests the CSR
// direction-optimizing kernel against the retained interface BFS over
// random graphs of varied density, with and without random fault sets,
// reusing one Scratch across all cases (including shrinking/growing n).
func TestKernelMatchesReferenceRandom(t *testing.T) {
	s := NewScratch(0)
	cases := []struct {
		n    int
		p    float64
		excl float64
	}{
		{1, 0, 0},
		{2, 1, 0},
		{10, 0.3, 0},
		{50, 0.05, 0},   // sparse, likely disconnected
		{50, 0.5, 0.2},  // dense with faults: bottom-up territory
		{120, 0.02, 0},  // long diameters, top-down
		{120, 0.3, 0.1}, // direction switches mid-traversal
		{257, 0.02, 0.05},
		{64, 0.9, 0}, // near-complete: immediate bottom-up
	}
	for ci, c := range cases {
		d := gnp(c.n, c.p, int64(ci+1))
		srcs := []int{0, c.n / 2, c.n - 1}
		for _, src := range srcs {
			var excluded []bool
			if c.excl > 0 {
				excluded = randomExcluded(c.n, c.excl, src, int64(100+ci))
			}
			want := BFSReference(d, src, excluded)
			got := d.BFSScratch(src, excluded, s)
			distEqual(t, "case", got, want)
			// Scratch summaries agree with a direct scan.
			reached, maxDist := 0, int32(0)
			for _, dv := range want {
				if dv != Unreachable {
					reached++
					if dv > maxDist {
						maxDist = dv
					}
				}
			}
			if s.Reached() != reached || s.MaxDist() != int(maxDist) {
				t.Fatalf("case %d src %d: scratch reached=%d maxDist=%d, scan %d/%d",
					ci, src, s.Reached(), s.MaxDist(), reached, maxDist)
			}
		}
	}
}

// TestKernelSelfLoopsAndMultiEdges covers the adjacency shapes the de
// Bruijn family produces.
func TestKernelSelfLoopsAndMultiEdges(t *testing.T) {
	d := NewDense(4, [][2]int{{0, 0}, {0, 1}, {0, 1}, {1, 2}, {2, 3}, {3, 0}})
	s := NewScratch(4)
	for src := 0; src < 4; src++ {
		distEqual(t, "loops", d.BFSScratch(src, nil, s), BFSReference(d, src, nil))
	}
}

// TestKernelExcludedSourcePanics pins the historical contract.
func TestKernelExcludedSourcePanics(t *testing.T) {
	d := gnp(8, 0.5, 7)
	excluded := make([]bool, 8)
	excluded[3] = true
	defer func() {
		if recover() == nil {
			t.Fatal("excluded source did not panic")
		}
	}()
	d.BFSScratch(3, excluded, NewScratch(8))
}

// TestAllSourcesVisitsEverySurvivor checks the sweep driver's coverage,
// exclusion handling and per-worker scratch plumbing.
func TestAllSourcesVisitsEverySurvivor(t *testing.T) {
	n := 70
	d := gnp(n, 0.2, 9)
	excluded := randomExcluded(n, 0.25, 0, 10)
	w := EffectiveWorkers(4, n)
	seen := make([][]bool, w)
	for i := range seen {
		seen[i] = make([]bool, n)
	}
	AllSources(d, excluded, 4, func(worker, src int, s *Scratch) bool {
		if excluded[src] {
			t.Errorf("visited excluded source %d", src)
		}
		seen[worker][src] = true
		return true
	})
	for src := 0; src < n; src++ {
		count := 0
		for _, sw := range seen {
			if sw[src] {
				count++
			}
		}
		want := 1
		if excluded[src] {
			want = 0
		}
		if count != want {
			t.Errorf("source %d visited %d times, want %d", src, count, want)
		}
	}
}

// TestAllSourcesCancel: a false visit return stops the sweep early.
func TestAllSourcesCancel(t *testing.T) {
	d := gnp(200, 0.05, 11)
	visits := 0
	AllSources(d, nil, 1, func(worker, src int, s *Scratch) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Fatalf("visits = %d, want 3", visits)
	}
}

// TestDiameterKernelAgainstReference cross-checks the pooled diameter
// and histogram against a from-scratch reference computation.
func TestDiameterKernelAgainstReference(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		d := gnp(60, 0.15, seed)
		refDiam := 0
		disconnected := false
		var refHist []int64
		for v := 0; v < 60 && !disconnected; v++ {
			dist := BFSReference(d, v, nil)
			for _, dv := range dist {
				if dv == Unreachable {
					disconnected = true
					break
				}
				if int(dv) > refDiam {
					refDiam = int(dv)
				}
				for int(dv) >= len(refHist) {
					refHist = append(refHist, 0)
				}
				refHist[dv]++
			}
		}
		wantDiam := refDiam
		if disconnected {
			wantDiam = -1
			refHist = nil
		}
		if got := Diameter(d); got != wantDiam {
			t.Errorf("seed %d: Diameter = %d, want %d", seed, got, wantDiam)
		}
		if got := DiameterParallel(d, 3); got != wantDiam {
			t.Errorf("seed %d: DiameterParallel = %d, want %d", seed, got, wantDiam)
		}
		got := DistanceHistogram(d)
		if len(got) != len(refHist) {
			t.Fatalf("seed %d: hist %v, want %v", seed, got, refHist)
		}
		for i := range refHist {
			if got[i] != refHist[i] {
				t.Fatalf("seed %d: hist[%d] = %d, want %d", seed, i, got[i], refHist[i])
			}
		}
	}
}

// FuzzBFSKernel fuzzes (edges, src, excluded) against the reference
// BFS. The edge list is decoded two bytes per endpoint pair over a
// 32-vertex universe; the excluded set is drawn from a seeded RNG.
func FuzzBFSKernel(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3}, uint8(0), uint16(0))
	f.Add([]byte{5, 5, 5, 6, 6, 5, 0, 31}, uint8(31), uint16(3))
	f.Add([]byte{}, uint8(7), uint16(9999))
	f.Fuzz(func(t *testing.T, raw []byte, srcByte uint8, exclBits uint16) {
		const n = 32
		edges := make([][2]int, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, [2]int{int(raw[i]) % n, int(raw[i+1]) % n})
		}
		d := NewDense(n, edges)
		src := int(srcByte) % n
		// The low 16 fuzz bits exclude vertices 0..15, never the source.
		excluded := make([]bool, n)
		for i := 0; i < 16; i++ {
			if exclBits&(1<<i) != 0 && i != src {
				excluded[i] = true
			}
		}
		want := BFSReference(d, src, excluded)
		s := NewScratch(n)
		got := d.BFSScratch(src, excluded, s)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("dist[%d] = %d, reference %d (src %d, excl %016b)", v, got[v], want[v], src, exclBits)
			}
		}
	})
}

// TestAllSourcesBitsMatchesReference differentially tests the 64-way
// bit-parallel sweep (eccentricities, pair histogram, completeness
// witness) against per-source reference BFS, with and without fault
// sets, on graphs spanning several batches.
func TestAllSourcesBitsMatchesReference(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		excl float64
	}{
		{1, 0, 0},
		{2, 1, 0},
		{40, 0.2, 0},
		{63, 0.1, 0.2},
		{64, 0.15, 0},
		{65, 0.15, 0.1},
		{130, 0.05, 0}, // crosses batch boundaries, likely disconnected
		{200, 0.08, 0.15},
	}
	for ci, c := range cases {
		d := gnp(c.n, c.p, int64(40+ci))
		var excluded []bool
		if c.excl > 0 {
			excluded = randomExcluded(c.n, c.excl, -1, int64(90+ci))
		}
		sweep := d.AllSourcesBits(excluded, 3)

		// Reference: one interface BFS per surviving source.
		complete := true
		wantEcc := make([]int32, c.n)
		var wantHist []int64
		for src := 0; src < c.n && complete; src++ {
			if excluded != nil && excluded[src] {
				wantEcc[src] = -1
				continue
			}
			dist := BFSReference(d, src, excluded)
			for v, dv := range dist {
				if excluded != nil && excluded[v] {
					continue
				}
				if dv == Unreachable {
					complete = false
					break
				}
				if dv > wantEcc[src] {
					wantEcc[src] = dv
				}
				for int(dv) >= len(wantHist) {
					wantHist = append(wantHist, 0)
				}
				wantHist[dv]++
			}
		}
		if sweep.Complete != complete {
			t.Fatalf("case %d: Complete = %v, reference %v", ci, sweep.Complete, complete)
		}
		if !complete {
			// The witness pair must be a genuinely unconnected survivor pair.
			u, v := sweep.MissingSrc, sweep.MissingDst
			if excluded != nil && (excluded[u] || excluded[v]) {
				t.Fatalf("case %d: witness (%d,%d) includes an excluded vertex", ci, u, v)
			}
			if dist := BFSReference(d, u, excluded); dist[v] != Unreachable {
				t.Fatalf("case %d: witness (%d,%d) is connected (dist %d)", ci, u, v, dist[v])
			}
			continue
		}
		for v := range wantEcc {
			if sweep.Ecc[v] != wantEcc[v] {
				t.Fatalf("case %d: Ecc[%d] = %d, reference %d", ci, v, sweep.Ecc[v], wantEcc[v])
			}
		}
		if len(sweep.Hist) != len(wantHist) {
			t.Fatalf("case %d: hist %v, reference %v", ci, sweep.Hist, wantHist)
		}
		for i := range wantHist {
			if sweep.Hist[i] != wantHist[i] {
				t.Fatalf("case %d: hist[%d] = %d, reference %d", ci, i, sweep.Hist[i], wantHist[i])
			}
		}
	}
}

// TestAllSourcesBitsEdgeCases pins the degenerate shapes.
func TestAllSourcesBitsEdgeCases(t *testing.T) {
	empty := NewDense(0, nil)
	if sweep := empty.AllSourcesBits(nil, 0); !sweep.Complete || len(sweep.Hist) != 0 {
		t.Fatalf("empty graph: %+v", sweep)
	}
	// All vertices excluded: trivially complete, no pairs.
	d := gnp(10, 0.5, 3)
	all := make([]bool, 10)
	for i := range all {
		all[i] = true
	}
	sweep := d.AllSourcesBits(all, 2)
	if !sweep.Complete {
		t.Fatalf("fully excluded graph reported incomplete")
	}
	for _, c := range sweep.Hist {
		if c != 0 {
			t.Fatalf("fully excluded graph has pairs: %v", sweep.Hist)
		}
	}
	// Two isolated vertices: incomplete with a valid witness.
	iso := NewDense(2, nil)
	sweep = iso.AllSourcesBits(nil, 1)
	if sweep.Complete || sweep.MissingSrc == sweep.MissingDst {
		t.Fatalf("isolated pair: %+v", sweep)
	}
}
