package graph

// Edge connectivity complements the vertex connectivity of Section 5:
// the paper measures node fault tolerance, but an interconnection
// network also loses links, and for the regular networks here the edge
// connectivity equals the degree (an even stronger statement than
// Corollary 1's node bound). The computation is plain max-flow on the
// directed doubling of the graph, using the same seed argument as
// Connectivity: every minimum edge cut separates some fixed vertex from
// at least one other vertex. The hot path runs on the FlowScratch arena
// of menger.go; the *Reference functions retain the pre-engine
// implementation as oracle and benchmark baseline.

// buildEdgeNet constructs a unit-capacity directed network with one arc
// pair per undirected edge.
func buildEdgeNet(d *Dense) *flowNet {
	n := d.Order()
	f := newFlowNet(n)
	for v := 0; v < n; v++ {
		prev := int32(-1)
		for _, w := range d.Neighbors(v) {
			if w == prev || int(w) == v || int(w) < v {
				prev = w
				continue
			}
			prev = w
			// One capacity-1 arc in each direction, added as two
			// independent arcs so either direction can carry flow.
			f.addArc(v, int(w), 1)
			f.addArc(int(w), v, 1)
		}
	}
	return f
}

// LocalEdgeConnectivity returns the maximum number of edge-disjoint
// paths between distinct vertices s and t. Callers probing many pairs
// of one graph should hold a NewEdgeFlowScratch and call its
// LocalEdgeConnectivity method instead.
func LocalEdgeConnectivity(d *Dense, s, t int) int {
	if s == t {
		panic("graph: LocalEdgeConnectivity of a vertex with itself")
	}
	return NewEdgeFlowScratch(d).LocalEdgeConnectivity(s, t, -1)
}

// LocalEdgeConnectivityReference is the retained pre-engine
// implementation: network rebuilt per call, recursive augmentation.
// Differential-test oracle and benchmark baseline only.
func LocalEdgeConnectivityReference(d *Dense, s, t int) int {
	if s == t {
		panic("graph: LocalEdgeConnectivity of a vertex with itself")
	}
	f := buildEdgeNet(d)
	return f.maxFlow(s, t, -1)
}

// EdgeConnectivity computes the edge connectivity of d exactly: the
// minimum of local edge connectivity from vertex 0 to every other
// vertex (every edge cut separates vertex 0 from something). The
// minimum simple degree caps the initial bound (lambda <= delta) and
// every flow stops once it reaches the running best.
func EdgeConnectivity(d *Dense) int {
	n := d.Order()
	if n <= 1 {
		return 0
	}
	if !IsConnected(d, nil) {
		return 0
	}
	fs := NewEdgeFlowScratch(d)
	best := minSimpleDegree(d)
	for v := 1; v < n; v++ {
		if c := fs.LocalEdgeConnectivity(0, v, best); c < best {
			best = c
		}
	}
	return best
}

// EdgeConnectivityReference is the retained pre-engine EdgeConnectivity:
// serial, unbounded flows, network rebuilt per pair. Differential-test
// oracle and benchmark baseline only.
func EdgeConnectivityReference(d *Dense) int {
	n := d.Order()
	if n <= 1 {
		return 0
	}
	if !IsConnected(d, nil) {
		return 0
	}
	best := -1
	for v := 1; v < n; v++ {
		c := LocalEdgeConnectivityReference(d, 0, v)
		if best == -1 || c < best {
			best = c
		}
	}
	return best
}
