package graph

// Edge connectivity complements the vertex connectivity of Section 5:
// the paper measures node fault tolerance, but an interconnection
// network also loses links, and for the regular networks here the edge
// connectivity equals the degree (an even stronger statement than
// Corollary 1's node bound). The computation is plain max-flow on the
// directed doubling of the graph, using the same seed argument as
// Connectivity: every minimum edge cut separates some fixed vertex from
// at least one other vertex.

// buildEdgeNet constructs a unit-capacity directed network with one arc
// pair per undirected edge.
func buildEdgeNet(d *Dense) *flowNet {
	n := d.Order()
	f := newFlowNet(n)
	for v := 0; v < n; v++ {
		prev := int32(-1)
		for _, w := range d.Neighbors(v) {
			if w == prev || int(w) == v || int(w) < v {
				prev = w
				continue
			}
			prev = w
			// One capacity-1 arc in each direction, added as two
			// independent arcs so either direction can carry flow.
			f.addArc(v, int(w), 1)
			f.addArc(int(w), v, 1)
		}
	}
	return f
}

// LocalEdgeConnectivity returns the maximum number of edge-disjoint
// paths between distinct vertices s and t.
func LocalEdgeConnectivity(d *Dense, s, t int) int {
	if s == t {
		panic("graph: LocalEdgeConnectivity of a vertex with itself")
	}
	f := buildEdgeNet(d)
	return f.maxFlow(s, t, -1)
}

// EdgeConnectivity computes the edge connectivity of d exactly: the
// minimum of LocalEdgeConnectivity(0, v) over all other vertices v
// (every edge cut separates vertex 0 from something).
func EdgeConnectivity(d *Dense) int {
	n := d.Order()
	if n <= 1 {
		return 0
	}
	if !IsConnected(d, nil) {
		return 0
	}
	best := -1
	for v := 1; v < n; v++ {
		c := LocalEdgeConnectivity(d, 0, v)
		if best == -1 || c < best {
			best = c
		}
	}
	return best
}
