// Package graph is a small toolkit for finite undirected graphs with
// vertices indexed 0..Order()-1.
//
// Topology packages (hypercube, butterfly, hyper-deBruijn, hyper-butterfly)
// expose their structure through the Graph interface; the algorithms here
// (BFS, diameter, connectivity via max-flow, Menger disjoint paths,
// Cartesian products, embedding verifiers) operate on that interface so
// that every analytical claim in the paper can be checked against the
// actual constructed object rather than trusted.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a finite undirected graph on vertices 0..Order()-1.
//
// AppendNeighbors appends the neighbors of v to buf and returns the
// extended slice; implementations must not retain buf. Neighbor order is
// implementation-defined but must be deterministic. Multi-edges and
// self-loops are permitted (the de Bruijn graph has both); algorithms in
// this package treat repeated neighbors as a single edge unless stated.
type Graph interface {
	Order() int
	AppendNeighbors(v int, buf []int) []int
}

// Named is implemented by graphs that can render a vertex label in the
// paper's notation (e.g. "(011; t2 t1' t0)" for a hyper-butterfly node).
type Named interface {
	VertexLabel(v int) string
}

// Dense is an explicit adjacency-list graph in compressed (CSR) form. It
// is the concrete result of materialising any Graph and the input to the
// heavier algorithms (flow, exhaustive diameter).
type Dense struct {
	offsets []int32 // len Order()+1
	adj     []int32
}

// Build materialises g into a Dense graph.
func Build(g Graph) *Dense {
	n := g.Order()
	d := &Dense{offsets: make([]int32, n+1)}
	var buf []int
	total := 0
	for v := 0; v < n; v++ {
		buf = g.AppendNeighbors(v, buf[:0])
		total += len(buf)
	}
	d.adj = make([]int32, 0, total)
	for v := 0; v < n; v++ {
		buf = g.AppendNeighbors(v, buf[:0])
		sort.Ints(buf)
		for _, w := range buf {
			if w < 0 || w >= n {
				panic(fmt.Sprintf("graph: neighbor %d of %d out of range [0,%d)", w, v, n))
			}
			d.adj = append(d.adj, int32(w))
		}
		d.offsets[v+1] = int32(len(d.adj))
	}
	return d
}

// NewDense builds a Dense graph directly from an adjacency map; useful in
// tests. Edges are given once as pairs; both directions are added.
func NewDense(n int, edges [][2]int) *Dense {
	deg := make([]int32, n)
	for _, e := range edges {
		if e[0] == e[1] {
			deg[e[0]]++ // a self-loop contributes a single adjacency entry
			continue
		}
		deg[e[0]]++
		deg[e[1]]++
	}
	d := &Dense{offsets: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		d.offsets[v+1] = d.offsets[v] + deg[v]
	}
	d.adj = make([]int32, d.offsets[n])
	fill := make([]int32, n)
	add := func(u, w int) {
		d.adj[d.offsets[u]+fill[u]] = int32(w)
		fill[u]++
	}
	for _, e := range edges {
		if e[0] == e[1] {
			add(e[0], e[1])
			continue
		}
		add(e[0], e[1])
		add(e[1], e[0])
	}
	for v := 0; v < n; v++ {
		row := d.adj[d.offsets[v]:d.offsets[v+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
	return d
}

// Order returns the number of vertices.
func (d *Dense) Order() int { return len(d.offsets) - 1 }

// AppendNeighbors implements Graph.
func (d *Dense) AppendNeighbors(v int, buf []int) []int {
	for _, w := range d.adj[d.offsets[v]:d.offsets[v+1]] {
		buf = append(buf, int(w))
	}
	return buf
}

// Neighbors returns the neighbor row of v. The returned slice aliases the
// internal storage and must not be modified.
func (d *Dense) Neighbors(v int) []int32 { return d.adj[d.offsets[v]:d.offsets[v+1]] }

// Degree returns the number of adjacency entries of v (self-loops count
// once, multi-edges count multiply).
func (d *Dense) Degree(v int) int { return int(d.offsets[v+1] - d.offsets[v]) }

// EdgeCount returns the number of undirected edges. Each self-loop counts
// as one edge; multi-edges count multiply.
func (d *Dense) EdgeCount() int {
	loops := 0
	for v := 0; v < d.Order(); v++ {
		for _, w := range d.Neighbors(v) {
			if int(w) == v {
				loops++
			}
		}
	}
	return (len(d.adj)-loops)/2 + loops
}

// HasEdge reports whether u and w are adjacent (binary search on the
// sorted row).
func (d *Dense) HasEdge(u, w int) bool {
	row := d.Neighbors(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(w) })
	return i < len(row) && row[i] == int32(w)
}

// SimpleCopy returns a copy of d with self-loops and duplicate edges
// removed.
func (d *Dense) SimpleCopy() *Dense {
	n := d.Order()
	edges := make([][2]int, 0, len(d.adj)/2)
	for v := 0; v < n; v++ {
		prev := int32(-1)
		for _, w := range d.Neighbors(v) {
			if int(w) > v && w != prev {
				edges = append(edges, [2]int{v, int(w)})
			}
			prev = w
		}
	}
	return NewDense(n, edges)
}

// DegreeStats summarises the degree sequence of a graph.
type DegreeStats struct {
	Min, Max int
	Regular  bool
	// Histogram maps degree -> count.
	Histogram map[int]int
}

// Degrees computes degree statistics for g. Self-loops count once,
// multi-edges multiply, matching Dense.Degree.
func Degrees(g Graph) DegreeStats {
	n := g.Order()
	st := DegreeStats{Min: -1, Histogram: make(map[int]int)}
	var buf []int
	for v := 0; v < n; v++ {
		buf = g.AppendNeighbors(v, buf[:0])
		deg := len(buf)
		st.Histogram[deg]++
		if st.Min == -1 || deg < st.Min {
			st.Min = deg
		}
		if deg > st.Max {
			st.Max = deg
		}
	}
	st.Regular = n == 0 || st.Min == st.Max
	return st
}

// CheckUndirected verifies that the adjacency relation of g is symmetric
// and in-range; it returns a descriptive error on the first violation.
func CheckUndirected(g Graph) error {
	n := g.Order()
	var buf, buf2 []int
	for v := 0; v < n; v++ {
		buf = g.AppendNeighbors(v, buf[:0])
		for _, w := range buf {
			if w < 0 || w >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			buf2 = g.AppendNeighbors(w, buf2[:0])
			back := 0
			for _, x := range buf2 {
				if x == v {
					back++
				}
			}
			if back == 0 {
				return fmt.Errorf("graph: edge %d->%d has no reverse", v, w)
			}
		}
	}
	return nil
}
