package graph_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// Benchmarks for the CSR BFS kernel layer (E-PF in EXPERIMENTS.md).
// The *Reference benchmarks replicate the pre-kernel implementations
// (interface-dispatched BFS, fresh buffers per source, append-growth
// histogram) so before/after is measurable in one tree:
//
//	go test ./internal/graph -bench 'BFS|Diameter|DistanceHistogram' -benchmem
//
// BENCH_graph.json (the cross-PR perf trajectory artifact) is emitted by
// TestEmitBenchGraph when BENCH_GRAPH_OUT names an output path.

var benchInstances = []struct {
	name string
	m, n int
}{
	{"HB_2_3", 2, 3}, // 96 nodes
	{"HB_3_3", 3, 3}, // 192 nodes
	{"HB_2_4", 2, 4}, // 256 nodes
}

// BenchmarkBFSKernel measures one direction-optimizing BFS with a
// reused Scratch — the steady-state per-source cost of every sweep.
// -benchmem must report 0 allocs/op.
func BenchmarkBFSKernel(b *testing.B) {
	for _, inst := range benchInstances {
		b.Run(inst.name, func(b *testing.B) {
			d := core.MustNew(inst.m, inst.n).Dense()
			s := graph.NewScratch(d.Order())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dist := d.BFSScratch(i%d.Order(), nil, s)
				if dist[0] == graph.Unreachable && i%d.Order() != 0 {
					b.Fatal("disconnected")
				}
			}
		})
	}
}

// BenchmarkBFSReference is the pre-kernel per-source cost: interface
// dispatch plus fresh dist/queue slices per call.
func BenchmarkBFSReference(b *testing.B) {
	for _, inst := range benchInstances {
		b.Run(inst.name, func(b *testing.B) {
			hb := core.MustNew(inst.m, inst.n)
			d := hb.Dense()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dist := graph.BFSReference(d, i%d.Order(), nil)
				if dist[0] == graph.Unreachable && i%d.Order() != 0 {
					b.Fatal("disconnected")
				}
			}
		})
	}
}

// BenchmarkDiameterParallelScratch measures the pooled all-sources
// diameter over the kernel (scratch per worker, chunked claiming).
func BenchmarkDiameterParallelScratch(b *testing.B) {
	for _, inst := range benchInstances {
		b.Run(inst.name, func(b *testing.B) {
			hb := core.MustNew(inst.m, inst.n)
			d := hb.Dense()
			want := hb.DiameterFormula()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := graph.DiameterParallel(d, 0); got != want {
					b.Fatalf("diameter %d, want %d", got, want)
				}
			}
		})
	}
}

// BenchmarkDiameterReference replicates the pre-PR serial Diameter: one
// reference BFS per source with a full distance scan.
func BenchmarkDiameterReference(b *testing.B) {
	for _, inst := range benchInstances {
		b.Run(inst.name, func(b *testing.B) {
			hb := core.MustNew(inst.m, inst.n)
			d := hb.Dense()
			want := hb.DiameterFormula()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := diameterReference(d); got != want {
					b.Fatalf("diameter %d, want %d", got, want)
				}
			}
		})
	}
}

// BenchmarkDistanceHistogram measures the pooled all-sources histogram.
func BenchmarkDistanceHistogram(b *testing.B) {
	for _, inst := range benchInstances {
		b.Run(inst.name, func(b *testing.B) {
			hb := core.MustNew(inst.m, inst.n)
			d := hb.Dense()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if hist := graph.DistanceHistogram(d); hist == nil {
					b.Fatal("disconnected")
				}
			}
		})
	}
}

// BenchmarkDistanceHistogramReference replicates the pre-PR serial
// histogram with its inner append-growth loop.
func BenchmarkDistanceHistogramReference(b *testing.B) {
	for _, inst := range benchInstances {
		b.Run(inst.name, func(b *testing.B) {
			hb := core.MustNew(inst.m, inst.n)
			d := hb.Dense()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if hist := distanceHistogramReference(d); hist == nil {
					b.Fatal("disconnected")
				}
			}
		})
	}
}

// diameterReference is the pre-PR graph.Diameter, kept verbatim for
// before/after measurement.
func diameterReference(g graph.Graph) int {
	n := g.Order()
	diam := 0
	for v := 0; v < n; v++ {
		dist := graph.BFSReference(g, v, nil)
		ecc := 0
		for _, d := range dist {
			if d == graph.Unreachable {
				return -1
			}
			if int(d) > ecc {
				ecc = int(d)
			}
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// distanceHistogramReference is the pre-PR graph.DistanceHistogram,
// kept verbatim for before/after measurement.
func distanceHistogramReference(g graph.Graph) []int64 {
	n := g.Order()
	var hist []int64
	for v := 0; v < n; v++ {
		dist := graph.BFSReference(g, v, nil)
		for _, d := range dist {
			if d == graph.Unreachable {
				return nil
			}
			for int(d) >= len(hist) {
				hist = append(hist, 0)
			}
			hist[d]++
		}
	}
	return hist
}

// benchRecord is one row of BENCH_graph.json.
type benchRecord struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Speedup     float64 `json:"speedup_vs_reference,omitempty"`
}

// TestEmitBenchGraph writes the graph-kernel perf baseline to the file
// named by BENCH_GRAPH_OUT (skipped otherwise), pairing each kernel
// path with its retained pre-PR reference on HB(3,3) so the
// before/after ratio is recomputed — not hand-copied — on every run:
//
//	BENCH_GRAPH_OUT=BENCH_graph.json go test ./internal/graph -run TestEmitBenchGraph
func TestEmitBenchGraph(t *testing.T) {
	out := os.Getenv("BENCH_GRAPH_OUT")
	if out == "" {
		t.Skip("BENCH_GRAPH_OUT not set")
	}
	d := core.MustNew(3, 3).Dense()
	s := graph.NewScratch(d.Order())
	measure := func(f func(b *testing.B)) testing.BenchmarkResult {
		return testing.Benchmark(f)
	}
	record := func(r testing.BenchmarkResult) benchRecord {
		return benchRecord{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	pairs := []struct {
		name      string
		kernel    func(b *testing.B)
		reference func(b *testing.B)
	}{
		{
			name: "bfs_hb33",
			kernel: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d.BFSScratch(i%d.Order(), nil, s)
				}
			},
			reference: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					graph.BFSReference(d, i%d.Order(), nil)
				}
			},
		},
		{
			name: "diameter_hb33",
			kernel: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					graph.DiameterParallel(d, 0)
				}
			},
			reference: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					diameterReference(d)
				}
			},
		},
		{
			name: "distance_histogram_hb33",
			kernel: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					graph.DistanceHistogram(d)
				}
			},
			reference: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					distanceHistogramReference(d)
				}
			},
		},
	}
	report := make(map[string]benchRecord)
	for _, p := range pairs {
		kr := measure(p.kernel)
		rr := measure(p.reference)
		rec := record(kr)
		if kr.NsPerOp() > 0 {
			rec.Speedup = float64(rr.NsPerOp()) / float64(kr.NsPerOp())
		}
		report[p.name] = rec
		report[p.name+"_reference"] = record(rr)
		t.Logf("%s: kernel %v, reference %v (%.2fx)", p.name, kr, rr, rec.Speedup)
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
