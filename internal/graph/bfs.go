package graph

import (
	"fmt"
	"math"
)

// Unreachable is the distance reported for vertices not connected to the
// BFS source.
const Unreachable = int32(math.MaxInt32)

// BFS computes single-source shortest-path distances from src in g.
// Faulty vertices (excluded[v] == true) are treated as deleted; excluded
// may be nil. The source itself must not be excluded.
//
// Dense graphs are dispatched to the direction-optimizing CSR kernel
// (see kernel.go); other Graph implementations fall back to
// BFSReference. Callers running many BFS over one Dense should hold a
// Scratch and call Dense.BFSScratch (or AllSources) to skip the
// per-call allocation.
func BFS(g Graph, src int, excluded []bool) []int32 {
	if d, ok := g.(*Dense); ok {
		// A fresh Scratch per call keeps the returned slice caller-owned,
		// matching the historical contract.
		return d.BFSScratch(src, excluded, NewScratch(d.Order()))
	}
	return BFSReference(g, src, excluded)
}

// BFSReference is the straightforward interface-dispatched BFS retained
// as the differential-testing oracle for the CSR kernel (and as the path
// for Graph implementations that were never materialised). Semantics
// are identical to BFS.
func BFSReference(g Graph, src int, excluded []bool) []int32 {
	n := g.Order()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	if excluded != nil && excluded[src] {
		panic(fmt.Sprintf("graph: BFS source %d is excluded", src))
	}
	dist[src] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, int32(src))
	var buf []int
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		dv := dist[v]
		buf = g.AppendNeighbors(v, buf[:0])
		for _, w := range buf {
			if dist[w] != Unreachable || (excluded != nil && excluded[w]) {
				continue
			}
			dist[w] = dv + 1
			queue = append(queue, int32(w))
		}
	}
	return dist
}

// BFSPath returns one shortest path from src to dst as a vertex sequence
// including both endpoints, or nil if dst is unreachable. Faulty vertices
// in excluded are avoided.
func BFSPath(g Graph, src, dst int, excluded []bool) []int {
	n := g.Order()
	if src == dst {
		return []int{src}
	}
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = int32(src)
	queue := []int32{int32(src)}
	var buf []int
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		buf = g.AppendNeighbors(v, buf[:0])
		for _, w := range buf {
			if parent[w] != -1 || (excluded != nil && excluded[w]) {
				continue
			}
			parent[w] = int32(v)
			if w == dst {
				return tracePath(parent, src, dst)
			}
			queue = append(queue, int32(w))
		}
	}
	return nil
}

func tracePath(parent []int32, src, dst int) []int {
	rev := []int{dst}
	for v := dst; v != src; {
		v = int(parent[v])
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Eccentricity returns the maximum finite BFS distance from src and
// whether every vertex was reached. Dense graphs use the CSR kernel,
// which tracks both quantities during the traversal.
func Eccentricity(g Graph, src int) (ecc int, connected bool) {
	if d, ok := g.(*Dense); ok {
		return d.EccentricityScratch(src, NewScratch(d.Order()))
	}
	dist := BFSReference(g, src, nil)
	connected = true
	for _, d := range dist {
		if d == Unreachable {
			connected = false
			continue
		}
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc, connected
}

// Diameter computes the exact diameter of g by running a BFS from every
// vertex on the pooled sweep engine (see AllSources). It returns -1 for
// a disconnected graph. For vertex-transitive graphs prefer
// Eccentricity from any single vertex. Non-Dense graphs are
// materialised first; pass the Dense directly to avoid rebuilding.
func Diameter(g Graph) int {
	return diameterAllSources(asDense(g), 0)
}

// asDense returns g itself when it already is a Dense and materialises
// it otherwise.
func asDense(g Graph) *Dense {
	if d, ok := g.(*Dense); ok {
		return d
	}
	return Build(g)
}

// IsConnected reports whether g is connected after removing the excluded
// vertices. A graph whose non-excluded vertex set is empty is connected.
func IsConnected(g Graph, excluded []bool) bool {
	n := g.Order()
	src := -1
	remaining := 0
	for v := 0; v < n; v++ {
		if excluded == nil || !excluded[v] {
			remaining++
			if src == -1 {
				src = v
			}
		}
	}
	if remaining <= 1 {
		return true
	}
	if d, ok := g.(*Dense); ok {
		s := NewScratch(n)
		d.BFSScratch(src, excluded, s)
		return s.Reached() == remaining
	}
	dist := BFSReference(g, src, excluded)
	reached := 0
	for v := 0; v < n; v++ {
		if (excluded == nil || !excluded[v]) && dist[v] != Unreachable {
			reached++
		}
	}
	return reached == remaining
}

// Components returns the connected component id of every vertex and the
// number of components.
func Components(g Graph) (comp []int32, count int) {
	n := g.Order()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var buf []int
	for v := 0; v < n; v++ {
		if comp[v] != -1 {
			continue
		}
		id := int32(count)
		count++
		queue := []int32{int32(v)}
		comp[v] = id
		for head := 0; head < len(queue); head++ {
			u := int(queue[head])
			buf = g.AppendNeighbors(u, buf[:0])
			for _, w := range buf {
				if comp[w] == -1 {
					comp[w] = id
					queue = append(queue, int32(w))
				}
			}
		}
	}
	return comp, count
}

// DistanceHistogram returns hist where hist[d] is the number of ordered
// pairs (src, v) at distance d, computed by BFS from every vertex of g
// on the pooled sweep engine. Each worker's sub-histogram is sized once
// per source from the observed eccentricity. It returns nil for a
// disconnected graph.
func DistanceHistogram(g Graph) []int64 {
	return distanceHistogramAllSources(asDense(g), 0)
}
