package graph_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// The estimator property suite: on instances small enough for the exact
// engines, the sampled bounds must bracket the exact bit-parallel sweep
// values, and the advertised confidence intervals must contain the
// truth at (at least) the configured rate across independent seeds.

func exactHistogram(t *testing.T, d *graph.Dense) (fractions []float64, mean float64, diam int) {
	t.Helper()
	order := d.Order()
	s := graph.NewScratch(order)
	var counts []float64
	total := 0.0
	sum := 0.0
	for u := 0; u < order; u++ {
		dist := d.BFSScratch(u, nil, s)
		for v := 0; v < order; v++ {
			dd := int(dist[v])
			if dd > diam {
				diam = dd
			}
			for len(counts) <= dd {
				counts = append(counts, 0)
			}
			counts[dd]++
			sum += float64(dd)
			total++
		}
	}
	fractions = make([]float64, len(counts))
	for i, c := range counts {
		fractions[i] = c / total
	}
	return fractions, sum / total, diam
}

func TestEstimateDiameterBracketsExact(t *testing.T) {
	for _, inst := range []struct{ m, n int }{{1, 3}, {2, 3}, {2, 4}, {3, 3}} {
		imp := core.MustNewImplicit(inst.m, inst.n)
		exact := graph.DiameterParallel(imp.HyperButterfly.Dense(), 0)
		if exact != imp.DiameterFormula() {
			t.Fatalf("HB(%d,%d): exact diameter %d != formula %d", inst.m, inst.n, exact, imp.DiameterFormula())
		}
		for seed := int64(0); seed < 10; seed++ {
			est := graph.EstimateDiameter(imp.Order(), imp.Distance, graph.EstConfig{
				Samples:     512,
				Seed:        seed,
				KnownUpper:  imp.DiameterFormula(),
				ScanSources: 2,
			})
			if est.Lower > exact || est.Upper < exact {
				t.Fatalf("HB(%d,%d) seed %d: bracket [%d,%d] misses exact diameter %d",
					inst.m, inst.n, seed, est.Lower, est.Upper, exact)
			}
			if est.Samples != 512 || est.ScannedSources != 2 {
				t.Fatalf("estimate lost its evidence counts: %+v", est)
			}
		}
		// With eccentricity scans the lower bound must actually reach the
		// exact diameter on vertex-transitive instances (every ecc equals
		// the diameter), making the bracket tight on this family.
		est := graph.EstimateDiameter(imp.Order(), imp.Distance, graph.EstConfig{
			Samples: 64, Seed: 1, ScanSources: 1,
		})
		if est.Lower != exact {
			t.Errorf("HB(%d,%d): scanned lower bound %d, want exact %d (vertex-transitive)",
				inst.m, inst.n, est.Lower, exact)
		}
	}
}

func TestEstimateHistogramCoverage(t *testing.T) {
	imp := core.MustNewImplicit(2, 3)
	fractions, mean, diam := exactHistogram(t, imp.HyperButterfly.Dense())

	const (
		seeds      = 60
		confidence = 0.9
	)
	misses := 0
	meanMisses := 0
	for seed := int64(0); seed < seeds; seed++ {
		est := graph.EstimateDistanceHistogram(imp.Order(), imp.Distance, graph.EstConfig{
			Samples:    1024,
			Confidence: confidence,
			Seed:       seed,
			KnownUpper: diam,
		})
		if len(est.Fractions) > len(fractions) {
			t.Fatalf("seed %d: sampled distance beyond the exact diameter", seed)
		}
		for d, truth := range fractions {
			got := 0.0
			if d < len(est.Fractions) {
				got = est.Fractions[d]
			}
			if math.Abs(got-truth) > est.CIHalfWidth {
				misses++
				break
			}
		}
		if math.Abs(est.MeanDistance-mean) > est.MeanCI {
			meanMisses++
		}
	}
	// Hoeffding intervals are conservative: per-seed miss probability is
	// at most 1-confidence per bucket; allow the union over buckets to
	// miss at 2x the nominal rate before declaring the intervals broken.
	budget := int(math.Ceil(2 * (1 - confidence) * float64(len(fractions)) * seeds))
	if misses > budget {
		t.Errorf("histogram CIs missed the truth in %d/%d seeds (budget %d)", misses, seeds, budget)
	}
	if meanMisses > int(math.Ceil(2*(1-confidence)*seeds)) {
		t.Errorf("mean CI missed the truth in %d/%d seeds", meanMisses, seeds)
	}
}

func TestSpotCheckConnectivityCertifies(t *testing.T) {
	imp := core.MustNewImplicit(2, 3)
	res, err := graph.SpotCheckConnectivity(imp, func(u, v int) ([][]int, error) {
		return imp.DisjointPaths(u, v)
	}, imp.ConnectivityFormula(), graph.EstConfig{Samples: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certified != res.Pairs || res.Pairs != 40 {
		t.Fatalf("certified %d of %d probes (want all 40): %s", res.Certified, res.Pairs, res.FirstFailure)
	}
	if res.Want != imp.ConnectivityFormula() {
		t.Fatalf("probe width %d, want %d", res.Want, imp.ConnectivityFormula())
	}

	// A deliberately deficient oracle must not certify.
	res, err = graph.SpotCheckConnectivity(imp, func(u, v int) ([][]int, error) {
		ps, err := imp.DisjointPaths(u, v)
		if err != nil || len(ps) == 0 {
			return ps, err
		}
		return ps[:len(ps)-1], nil
	}, imp.ConnectivityFormula(), graph.EstConfig{Samples: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certified != 0 || res.FirstFailure == "" {
		t.Fatalf("deficient oracle certified %d probes", res.Certified)
	}
}
