package graph_test

import (
	"math/rand"
	"testing"

	"repro/internal/conformance"
	"repro/internal/graph"
)

// TestKernelMatchesReferenceOnConformanceTargets runs the differential
// BFS check over every topology the conformance sweep produces — the
// hypercubes, butterflies, de Bruijn graphs (self-loops and
// multi-edges) and hyper-variants the kernel actually serves — with and
// without random fault sets.
func TestKernelMatchesReferenceOnConformanceTargets(t *testing.T) {
	targets, err := conformance.Sweep(1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.NewScratch(0)
	for _, target := range targets {
		d := graph.Build(target.Graph)
		n := d.Order()
		rng := rand.New(rand.NewSource(int64(n)))
		srcs := []int{0, n - 1, rng.Intn(n)}
		for _, src := range srcs {
			for _, withFaults := range []bool{false, true} {
				var excluded []bool
				if withFaults {
					excluded = make([]bool, n)
					for v := range excluded {
						if v != src && rng.Float64() < 0.15 {
							excluded[v] = true
						}
					}
				}
				want := graph.BFSReference(d, src, excluded)
				got := d.BFSScratch(src, excluded, s)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("%s src %d faults=%v: dist[%d] = %d, reference %d",
							target.Name, src, withFaults, v, got[v], want[v])
					}
				}
			}
		}
		// The interface and CSR paths of the public entry points agree.
		if n <= 2048 {
			seqEcc, seqConn := graph.Eccentricity(target.Graph, 0)
			denseEcc, denseConn := graph.Eccentricity(d, 0)
			if seqEcc != denseEcc || seqConn != denseConn {
				t.Fatalf("%s: Eccentricity interface (%d,%v) vs dense (%d,%v)",
					target.Name, seqEcc, seqConn, denseEcc, denseConn)
			}
		}
	}
}
