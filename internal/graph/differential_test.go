package graph_test

import (
	"math/rand"
	"testing"

	"repro/internal/conformance"
	"repro/internal/graph"
)

// TestKernelMatchesReferenceOnConformanceTargets runs the differential
// BFS check over every topology the conformance sweep produces — the
// hypercubes, butterflies, de Bruijn graphs (self-loops and
// multi-edges) and hyper-variants the kernel actually serves — with and
// without random fault sets.
func TestKernelMatchesReferenceOnConformanceTargets(t *testing.T) {
	targets, err := conformance.Sweep(1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.NewScratch(0)
	for _, target := range targets {
		d := graph.Build(target.Graph)
		n := d.Order()
		rng := rand.New(rand.NewSource(int64(n)))
		srcs := []int{0, n - 1, rng.Intn(n)}
		for _, src := range srcs {
			for _, withFaults := range []bool{false, true} {
				var excluded []bool
				if withFaults {
					excluded = make([]bool, n)
					for v := range excluded {
						if v != src && rng.Float64() < 0.15 {
							excluded[v] = true
						}
					}
				}
				want := graph.BFSReference(d, src, excluded)
				got := d.BFSScratch(src, excluded, s)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("%s src %d faults=%v: dist[%d] = %d, reference %d",
							target.Name, src, withFaults, v, got[v], want[v])
					}
				}
			}
		}
		// The interface and CSR paths of the public entry points agree.
		if n <= 2048 {
			seqEcc, seqConn := graph.Eccentricity(target.Graph, 0)
			denseEcc, denseConn := graph.Eccentricity(d, 0)
			if seqEcc != denseEcc || seqConn != denseConn {
				t.Fatalf("%s: Eccentricity interface (%d,%v) vs dense (%d,%v)",
					target.Name, seqEcc, seqConn, denseEcc, denseConn)
			}
		}
	}
}

// TestMengerMatchesReferenceOnConformanceTargets runs the Menger engine
// differential over the same sweep: the parallel connectivity drivers,
// the per-pair arena, and the flat-decomposition DisjointPaths must
// agree with the retained reference flow on every topology family —
// including the irregular de Bruijn graphs with self-loops and
// multi-edges.
func TestMengerMatchesReferenceOnConformanceTargets(t *testing.T) {
	targets, err := conformance.Sweep(1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range targets {
		d := graph.Build(target.Graph)
		n := d.Order()
		if n > 512 {
			continue // exact global connectivity on every target stays fast
		}
		wantK := graph.ConnectivityReference(d)
		if got := graph.Connectivity(d); got != wantK {
			t.Fatalf("%s: Connectivity = %d, reference %d", target.Name, got, wantK)
		}
		if got := graph.ConnectivityParallel(d, 0); got != wantK {
			t.Fatalf("%s: ConnectivityParallel = %d, reference %d", target.Name, got, wantK)
		}
		if target.VertexTransitive {
			if got := graph.ConnectivityVertexTransitive(d); got != wantK {
				t.Fatalf("%s: ConnectivityVertexTransitive = %d, reference %d", target.Name, got, wantK)
			}
			if got := graph.ConnectivityVertexTransitiveParallel(d, 0); got != wantK {
				t.Fatalf("%s: ConnectivityVertexTransitiveParallel = %d, reference %d", target.Name, got, wantK)
			}
		}
		wantL := graph.EdgeConnectivityReference(d)
		if got := graph.EdgeConnectivity(d); got != wantL {
			t.Fatalf("%s: EdgeConnectivity = %d, reference %d", target.Name, got, wantL)
		}
		if got := graph.EdgeConnectivityParallel(d, 0); got != wantL {
			t.Fatalf("%s: EdgeConnectivityParallel = %d, reference %d", target.Name, got, wantL)
		}
		// Sampled pairs: engine local values and path decomposition vs
		// the reference, reusing one arena across pairs as consumers do.
		fs := graph.NewFlowScratch(d)
		rng := rand.New(rand.NewSource(target.Seed))
		for trial := 0; trial < 6; trial++ {
			s := rng.Intn(n)
			u := rng.Intn(n)
			if s == u {
				continue
			}
			want := graph.LocalConnectivityReference(d, s, u)
			if got := fs.LocalConnectivity(s, u, -1); got != want {
				t.Fatalf("%s: LocalConnectivity(%d,%d) = %d, reference %d", target.Name, s, u, got, want)
			}
			paths, err := graph.DisjointPaths(d, s, u, -1)
			if err != nil {
				t.Fatalf("%s: DisjointPaths(%d,%d): %v", target.Name, s, u, err)
			}
			if len(paths) != want {
				t.Fatalf("%s: DisjointPaths(%d,%d): %d paths, want %d", target.Name, s, u, len(paths), want)
			}
			if err := graph.VerifyDisjointPaths(d, s, u, paths); err != nil {
				t.Fatalf("%s: DisjointPaths(%d,%d): %v", target.Name, s, u, err)
			}
		}
	}
}
