package graph_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// Benchmarks for the Menger connectivity engine (E-T5/E-EC in
// EXPERIMENTS.md). The *Reference benchmarks run the retained pre-PR
// per-pair implementation — a fresh node-split flow network per (s,t)
// with no limit and no shared bound — so before/after is measurable in
// one tree:
//
//	go test ./internal/graph -bench 'Connectivity' -benchmem
//
// BENCH_conn.json (the cross-PR perf trajectory artifact) is emitted by
// TestEmitBenchConn when BENCH_CONN_OUT names an output path.

// BenchmarkLocalConnectivity measures one (s,t) max-flow on a reused
// FlowScratch — the steady-state per-pair cost of every global
// computation. -benchmem must report 0 allocs/op.
func BenchmarkLocalConnectivity(b *testing.B) {
	for _, inst := range benchInstances {
		b.Run(inst.name, func(b *testing.B) {
			hb := core.MustNew(inst.m, inst.n)
			d := hb.Dense()
			fs := graph.NewFlowScratch(d)
			want := hb.Degree()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := fs.LocalConnectivity(0, d.Order()-1, -1); got != want {
					b.Fatalf("local connectivity %d, want %d", got, want)
				}
			}
		})
	}
}

// BenchmarkLocalConnectivityReference is the pre-engine per-pair cost:
// node-split network rebuilt from scratch on every call.
func BenchmarkLocalConnectivityReference(b *testing.B) {
	for _, inst := range benchInstances {
		b.Run(inst.name, func(b *testing.B) {
			hb := core.MustNew(inst.m, inst.n)
			d := hb.Dense()
			want := hb.Degree()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := graph.LocalConnectivityReference(d, 0, d.Order()-1); got != want {
					b.Fatalf("local connectivity %d, want %d", got, want)
				}
			}
		})
	}
}

// BenchmarkConnectivity measures exact global vertex connectivity via
// the parallel Menger engine (vertex-transitive seed, shared atomic
// best bound, one arena per worker).
func BenchmarkConnectivity(b *testing.B) {
	for _, inst := range benchInstances {
		b.Run(inst.name, func(b *testing.B) {
			hb := core.MustNew(inst.m, inst.n)
			d := hb.Dense()
			want := hb.Degree()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := graph.ConnectivityVertexTransitiveParallel(d, 0); got != want {
					b.Fatalf("connectivity %d, want %d", got, want)
				}
			}
		})
	}
}

// BenchmarkConnectivityReference is the pre-PR global computation: one
// fresh unbounded flow network per target vertex, serially.
func BenchmarkConnectivityReference(b *testing.B) {
	for _, inst := range benchInstances {
		b.Run(inst.name, func(b *testing.B) {
			hb := core.MustNew(inst.m, inst.n)
			d := hb.Dense()
			want := hb.Degree()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := graph.ConnectivityReference(d); got != want {
					b.Fatalf("connectivity %d, want %d", got, want)
				}
			}
		})
	}
}

// BenchmarkEdgeConnectivity measures exact global edge connectivity via
// the parallel engine on the doubled-arc arena.
func BenchmarkEdgeConnectivity(b *testing.B) {
	for _, inst := range benchInstances {
		b.Run(inst.name, func(b *testing.B) {
			hb := core.MustNew(inst.m, inst.n)
			d := hb.Dense()
			want := hb.Degree()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := graph.EdgeConnectivityParallel(d, 0); got != want {
					b.Fatalf("edge connectivity %d, want %d", got, want)
				}
			}
		})
	}
}

// BenchmarkEdgeConnectivityReference is the pre-PR serial edge
// connectivity with a fresh directed doubling network per target.
func BenchmarkEdgeConnectivityReference(b *testing.B) {
	for _, inst := range benchInstances {
		b.Run(inst.name, func(b *testing.B) {
			hb := core.MustNew(inst.m, inst.n)
			d := hb.Dense()
			want := hb.Degree()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := graph.EdgeConnectivityReference(d); got != want {
					b.Fatalf("edge connectivity %d, want %d", got, want)
				}
			}
		})
	}
}

// TestConnectivitySteadyStateAllocs is the zero-allocation acceptance
// gate: on every bench instance, a (s,t) flow on a warmed arena — both
// the node-split and the edge flavour — must allocate nothing.
func TestConnectivitySteadyStateAllocs(t *testing.T) {
	for _, inst := range benchInstances {
		t.Run(inst.name, func(t *testing.T) {
			d := core.MustNew(inst.m, inst.n).Dense()
			fs := graph.NewFlowScratch(d)
			efs := graph.NewEdgeFlowScratch(d)
			n := d.Order()
			i := 0
			if got := testing.AllocsPerRun(100, func() {
				fs.LocalConnectivity(i%n, n-1-i%(n/2), -1)
				i++
			}); got != 0 {
				t.Errorf("vertex arena: %v allocs per pair, want 0", got)
			}
			i = 0
			if got := testing.AllocsPerRun(100, func() {
				efs.LocalEdgeConnectivity(i%n, n-1-i%(n/2), -1)
				i++
			}); got != 0 {
				t.Errorf("edge arena: %v allocs per pair, want 0", got)
			}
		})
	}
}

// TestEmitBenchConn writes the connectivity-engine perf baseline to the
// file named by BENCH_CONN_OUT (skipped otherwise), pairing each engine
// path with its retained pre-PR reference on HB(3,3) so the
// before/after ratio is recomputed — not hand-copied — on every run:
//
//	BENCH_CONN_OUT=BENCH_conn.json go test ./internal/graph -run TestEmitBenchConn
func TestEmitBenchConn(t *testing.T) {
	out := os.Getenv("BENCH_CONN_OUT")
	if out == "" {
		t.Skip("BENCH_CONN_OUT not set")
	}
	d := core.MustNew(3, 3).Dense()
	fs := graph.NewFlowScratch(d)
	record := func(r testing.BenchmarkResult) benchRecord {
		return benchRecord{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	pairs := []struct {
		name      string
		engine    func(b *testing.B)
		reference func(b *testing.B)
	}{
		{
			name: "local_connectivity_hb33",
			engine: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					fs.LocalConnectivity(0, d.Order()-1, -1)
				}
			},
			reference: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					graph.LocalConnectivityReference(d, 0, d.Order()-1)
				}
			},
		},
		{
			name: "connectivity_hb33",
			engine: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					graph.ConnectivityVertexTransitiveParallel(d, 0)
				}
			},
			reference: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					graph.ConnectivityReference(d)
				}
			},
		},
		{
			name: "edge_connectivity_hb33",
			engine: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					graph.EdgeConnectivityParallel(d, 0)
				}
			},
			reference: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					graph.EdgeConnectivityReference(d)
				}
			},
		},
	}
	report := make(map[string]benchRecord)
	for _, p := range pairs {
		er := testing.Benchmark(p.engine)
		rr := testing.Benchmark(p.reference)
		rec := record(er)
		if er.NsPerOp() > 0 {
			rec.Speedup = float64(rr.NsPerOp()) / float64(er.NsPerOp())
		}
		report[p.name] = rec
		report[p.name+"_reference"] = record(rr)
		t.Logf("%s: engine %v, reference %v (%.2fx)", p.name, er, rr, rec.Speedup)
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
