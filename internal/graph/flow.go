package graph

import "fmt"

// This file implements vertex connectivity and Menger-style disjoint path
// extraction via unit-capacity max-flow (Dinic's algorithm) on the
// standard node-split digraph: every vertex v becomes v_in -> v_out with
// capacity 1 (infinite for the terminals), and every undirected edge
// {u,w} becomes arcs u_out -> w_in and w_out -> u_in of capacity 1.
//
// The paper's Theorem 5 claims m+4 node-disjoint paths between any two
// hyper-butterfly nodes and Corollary 1 concludes vertex connectivity
// m+4; these routines provide the independent ground truth those claims
// are tested against.

type flowEdge struct {
	to  int32
	cap int8
	rev int32 // index of reverse edge in adjacency of `to`
}

type flowNet struct {
	edges [][]flowEdge
	level []int32
	iter  []int32
}

func newFlowNet(n int) *flowNet {
	return &flowNet{
		edges: make([][]flowEdge, n),
		level: make([]int32, n),
		iter:  make([]int32, n),
	}
}

func (f *flowNet) addArc(from, to int, cap int8) {
	f.edges[from] = append(f.edges[from], flowEdge{to: int32(to), cap: cap, rev: int32(len(f.edges[to]))})
	f.edges[to] = append(f.edges[to], flowEdge{to: int32(from), cap: 0, rev: int32(len(f.edges[from]) - 1)})
}

func (f *flowNet) bfsLevel(s, t int) bool {
	for i := range f.level {
		f.level[i] = -1
	}
	f.level[s] = 0
	queue := []int32{int32(s)}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, e := range f.edges[v] {
			if e.cap > 0 && f.level[e.to] == -1 {
				f.level[e.to] = f.level[v] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return f.level[t] != -1
}

func (f *flowNet) dfsAugment(v, t int) bool {
	if v == t {
		return true
	}
	for ; f.iter[v] < int32(len(f.edges[v])); f.iter[v]++ {
		e := &f.edges[v][f.iter[v]]
		if e.cap > 0 && f.level[e.to] == f.level[v]+1 {
			if f.dfsAugment(int(e.to), t) {
				e.cap--
				f.edges[e.to][e.rev].cap++
				return true
			}
		}
	}
	return false
}

// maxFlow runs Dinic from s to t, stopping early once flow reaches limit
// (pass a negative limit for unbounded).
func (f *flowNet) maxFlow(s, t, limit int) int {
	flow := 0
	for f.bfsLevel(s, t) {
		for i := range f.iter {
			f.iter[i] = 0
		}
		for f.dfsAugment(s, t) {
			flow++
			if limit >= 0 && flow >= limit {
				return flow
			}
		}
	}
	return flow
}

// splitIn and splitOut map an original vertex to its node-split halves.
func splitIn(v int) int  { return 2 * v }
func splitOut(v int) int { return 2*v + 1 }

// buildSplit constructs the node-split flow network of g with terminals
// s and t (whose internal arcs get effectively infinite capacity, here
// 127, far above any degree used in this repository).
func buildSplit(d *Dense, s, t int) *flowNet {
	n := d.Order()
	f := newFlowNet(2 * n)
	for v := 0; v < n; v++ {
		cap := int8(1)
		if v == s || v == t {
			cap = 127
		}
		f.addArc(splitIn(v), splitOut(v), cap)
		prev := int32(-1)
		for _, w := range d.Neighbors(v) {
			if w == prev || int(w) == v {
				prev = w
				continue // ignore multi-edges and self-loops for connectivity
			}
			prev = w
			f.addArc(splitOut(v), splitIn(int(w)), 1)
		}
	}
	return f
}

// LocalConnectivity returns the maximum number of internally
// vertex-disjoint paths between distinct vertices s and t of d (infinite
// families are capped at 126 by the unit-capacity representation, far
// above any graph in this repository). If s and t are adjacent the direct
// edge counts as one path.
func LocalConnectivity(d *Dense, s, t int) int {
	if s == t {
		panic("graph: LocalConnectivity of a vertex with itself")
	}
	f := buildSplit(d, s, t)
	return f.maxFlow(splitOut(s), splitIn(t), -1)
}

// DisjointPaths returns a maximum set of pairwise internally
// vertex-disjoint s-t paths in d, each as a vertex sequence including the
// endpoints. If limit >= 0, at most limit paths are returned.
func DisjointPaths(d *Dense, s, t, limit int) [][]int {
	if s == t {
		return [][]int{{s}}
	}
	f := buildSplit(d, s, t)
	flow := f.maxFlow(splitOut(s), splitIn(t), limit)
	// Decompose the unit flow: saturated forward arcs have residual cap 0
	// on the forward edge (and were created with cap > 0 -> reverse has
	// cap > 0). Build successor map on split nodes and walk from s.
	used := make([][]bool, len(f.edges))
	for v := range used {
		used[v] = make([]bool, len(f.edges[v]))
	}
	next := func(v int) int {
		for i, e := range f.edges[v] {
			if used[v][i] {
				continue
			}
			// A forward arc originally had rev pointing at an edge created
			// with cap 0; it carries flow iff its residual reverse cap > 0.
			if f.edges[e.to][e.rev].cap > 0 && isForwardArc(f, v, i) {
				used[v][i] = true
				return int(e.to)
			}
		}
		return -1
	}
	paths := make([][]int, 0, flow)
	for k := 0; k < flow; k++ {
		// Walk forward along flow-carrying arcs. Unit flows found by
		// augmentation may contain cycles; if the walk revisits a vertex,
		// the loop is cut out (its arcs stay consumed, harmlessly).
		path := []int{s}
		at := map[int]int{s: 0} // original vertex -> index in path
		v := splitOut(s)
		for {
			w := next(v)
			if w == -1 {
				panic("graph: flow decomposition lost a path")
			}
			if w == splitIn(t) {
				path = append(path, t)
				break
			}
			orig := w / 2
			if i, seen := at[orig]; seen {
				for _, x := range path[i+1:] {
					delete(at, x)
				}
				path = path[:i+1]
			} else {
				at[orig] = len(path)
				path = append(path, orig)
			}
			v = splitOut(orig)
		}
		paths = append(paths, path)
	}
	return paths
}

// isForwardArc reports whether edge index i out of v was created by
// addArc as a real (capacity-bearing) arc rather than a residual. Real
// arcs from an out-node go to in-nodes; real arcs from an in-node go to
// the matching out-node.
func isForwardArc(f *flowNet, v, i int) bool {
	e := f.edges[v][i]
	if v%2 == 1 { // out-node: forward arcs lead to in-nodes of neighbors
		return e.to%2 == 0
	}
	// in-node: the only forward arc is to its own out-node
	return int(e.to) == v+1
}

// Connectivity computes the vertex connectivity of d exactly using the
// classic seed argument: a minimum cut C has |C| = kappa vertices, so
// among any kappa+1 seed vertices at least one seed lies outside C; the
// minimum of LocalConnectivity(seed, v) over vertices v non-adjacent to
// that seed equals |C|. Seeds are processed until their count exceeds the
// best cut found. Complete graphs (no non-adjacent pair) return n-1.
func Connectivity(d *Dense) int {
	n := d.Order()
	if n <= 1 {
		return 0
	}
	if !IsConnected(d, nil) {
		return 0
	}
	best := n - 1
	for seed := 0; seed < n && seed <= best; seed++ {
		for v := 0; v < n; v++ {
			if v == seed || d.HasEdge(seed, v) {
				continue
			}
			if c := LocalConnectivity(d, seed, v); c < best {
				best = c
			}
		}
	}
	return best
}

// ConnectivityVertexTransitive computes vertex connectivity assuming d is
// vertex-transitive: some minimum cut avoids any chosen base vertex (an
// automorphism can always move the cut off it), so a single seed
// suffices. All the Cayley graphs in this repository qualify.
func ConnectivityVertexTransitive(d *Dense) int {
	n := d.Order()
	if n <= 1 {
		return 0
	}
	if !IsConnected(d, nil) {
		return 0
	}
	best := n - 1
	for v := 1; v < n; v++ {
		if d.HasEdge(0, v) {
			continue
		}
		if c := LocalConnectivity(d, 0, v); c < best {
			best = c
		}
	}
	return best
}

// VerifyDisjointPaths checks that paths is a set of pairwise internally
// vertex-disjoint s-t paths in g, each a valid walk on edges of g with
// distinct internal vertices. It returns nil if all constraints hold.
func VerifyDisjointPaths(g Graph, s, t int, paths [][]int) error {
	seen := make(map[int]int) // internal vertex -> path index
	var buf []int
	for pi, p := range paths {
		if len(p) == 0 || p[0] != s || p[len(p)-1] != t {
			return fmt.Errorf("graph: path %d does not run %d..%d: %v", pi, s, t, p)
		}
		inPath := make(map[int]bool, len(p))
		for i, v := range p {
			if inPath[v] {
				return fmt.Errorf("graph: path %d revisits vertex %d", pi, v)
			}
			inPath[v] = true
			if i > 0 {
				buf = g.AppendNeighbors(p[i-1], buf[:0])
				ok := false
				for _, w := range buf {
					if w == v {
						ok = true
						break
					}
				}
				if !ok {
					return fmt.Errorf("graph: path %d uses non-edge %d-%d", pi, p[i-1], v)
				}
			}
			if v != s && v != t {
				if other, dup := seen[v]; dup {
					return fmt.Errorf("graph: paths %d and %d share internal vertex %d", other, pi, v)
				}
				seen[v] = pi
			}
		}
	}
	return nil
}
