package graph

import "fmt"

// This file holds the vertex-connectivity API and the retained
// pre-engine reference implementation of Menger-style max-flow
// (Dinic's algorithm on the standard node-split digraph: every vertex v
// becomes v_in -> v_out with capacity 1, infinite for the terminals,
// and every undirected edge {u,w} becomes arcs u_out -> w_in and
// w_out -> u_in of capacity 1).
//
// The paper's Theorem 5 claims m+4 node-disjoint paths between any two
// hyper-butterfly nodes and Corollary 1 concludes vertex connectivity
// m+4; these routines provide the independent ground truth those claims
// are tested against. The hot paths (LocalConnectivity, Connectivity,
// ConnectivityVertexTransitive, DisjointPaths) run on the zero-alloc
// FlowScratch arena of menger.go; the *Reference functions keep the
// original per-pair implementation — network rebuilt per call,
// recursive augmentation, unbounded serial seed loop — as the
// differential-test oracle and benchmark baseline.

type flowEdge struct {
	to  int32
	cap int8
	rev int32 // index of reverse edge in adjacency of `to`
}

type flowNet struct {
	edges [][]flowEdge
	level []int32
	iter  []int32
}

func newFlowNet(n int) *flowNet {
	return &flowNet{
		edges: make([][]flowEdge, n),
		level: make([]int32, n),
		iter:  make([]int32, n),
	}
}

func (f *flowNet) addArc(from, to int, cap int8) {
	f.edges[from] = append(f.edges[from], flowEdge{to: int32(to), cap: cap, rev: int32(len(f.edges[to]))})
	f.edges[to] = append(f.edges[to], flowEdge{to: int32(from), cap: 0, rev: int32(len(f.edges[from]) - 1)})
}

func (f *flowNet) bfsLevel(s, t int) bool {
	for i := range f.level {
		f.level[i] = -1
	}
	f.level[s] = 0
	queue := []int32{int32(s)}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, e := range f.edges[v] {
			if e.cap > 0 && f.level[e.to] == -1 {
				f.level[e.to] = f.level[v] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return f.level[t] != -1
}

func (f *flowNet) dfsAugment(v, t int) bool {
	if v == t {
		return true
	}
	for ; f.iter[v] < int32(len(f.edges[v])); f.iter[v]++ {
		e := &f.edges[v][f.iter[v]]
		if e.cap > 0 && f.level[e.to] == f.level[v]+1 {
			if f.dfsAugment(int(e.to), t) {
				e.cap--
				f.edges[e.to][e.rev].cap++
				return true
			}
		}
	}
	return false
}

// maxFlow runs Dinic from s to t, stopping early once flow reaches limit
// (pass a negative limit for unbounded).
func (f *flowNet) maxFlow(s, t, limit int) int {
	flow := 0
	for f.bfsLevel(s, t) {
		for i := range f.iter {
			f.iter[i] = 0
		}
		for f.dfsAugment(s, t) {
			flow++
			if limit >= 0 && flow >= limit {
				return flow
			}
		}
	}
	return flow
}

// splitIn and splitOut map an original vertex to its node-split halves.
func splitIn(v int) int  { return 2 * v }
func splitOut(v int) int { return 2*v + 1 }

// buildSplit constructs the node-split flow network of g with terminals
// s and t (whose internal arcs get effectively infinite capacity, here
// 127, far above any degree used in this repository).
func buildSplit(d *Dense, s, t int) *flowNet {
	n := d.Order()
	f := newFlowNet(2 * n)
	for v := 0; v < n; v++ {
		cap := int8(1)
		if v == s || v == t {
			cap = 127
		}
		f.addArc(splitIn(v), splitOut(v), cap)
		prev := int32(-1)
		for _, w := range d.Neighbors(v) {
			if w == prev || int(w) == v {
				prev = w
				continue // ignore multi-edges and self-loops for connectivity
			}
			prev = w
			f.addArc(splitOut(v), splitIn(int(w)), 1)
		}
	}
	return f
}

// LocalConnectivity returns the maximum number of internally
// vertex-disjoint paths between distinct vertices s and t of d (infinite
// families are capped at 126 by the unit-capacity representation, far
// above any graph in this repository). If s and t are adjacent the direct
// edge counts as one path. Runs on a freshly built Menger arena; callers
// probing many pairs of one graph should hold a NewFlowScratch and call
// its LocalConnectivity method instead.
func LocalConnectivity(d *Dense, s, t int) int {
	if s == t {
		panic("graph: LocalConnectivity of a vertex with itself")
	}
	return NewFlowScratch(d).LocalConnectivity(s, t, -1)
}

// LocalConnectivityReference is the retained pre-engine implementation
// of LocalConnectivity: the node-split network is rebuilt from scratch
// and augmented recursively. Differential-test oracle and benchmark
// baseline only.
func LocalConnectivityReference(d *Dense, s, t int) int {
	if s == t {
		panic("graph: LocalConnectivity of a vertex with itself")
	}
	f := buildSplit(d, s, t)
	return f.maxFlow(splitOut(s), splitIn(t), -1)
}

// DisjointPaths returns a maximum set of pairwise internally
// vertex-disjoint s-t paths in d, each as a vertex sequence including the
// endpoints. If limit >= 0, at most limit paths are returned. An error
// (never seen on well-formed inputs) reports a failed flow
// decomposition. Callers extracting paths for many pairs of one graph
// should hold a NewFlowScratch and call its DisjointPaths method.
func DisjointPaths(d *Dense, s, t, limit int) ([][]int, error) {
	if s == t {
		return [][]int{{s}}, nil
	}
	return NewFlowScratch(d).DisjointPaths(s, t, limit)
}

// Connectivity computes the vertex connectivity of d exactly using the
// classic seed argument: a minimum cut C has |C| = kappa vertices, so
// among any kappa+1 seed vertices at least one seed lies outside C; the
// minimum of local connectivity over vertices v non-adjacent to that
// seed equals |C|. Seeds are processed until their count exceeds the
// best cut found, the minimum simple degree caps the initial bound
// (kappa <= delta), and every flow stops as soon as it reaches the
// running best — a pair reaching it cannot lower the minimum. Complete
// graphs (no non-adjacent pair) return n-1.
func Connectivity(d *Dense) int {
	n := d.Order()
	if n <= 1 {
		return 0
	}
	if !IsConnected(d, nil) {
		return 0
	}
	fs := NewFlowScratch(d)
	best := minSimpleDegree(d)
	for seed := 0; seed < n && seed <= best; seed++ {
		for v := 0; v < n; v++ {
			if v == seed || d.HasEdge(seed, v) {
				continue
			}
			if c := fs.LocalConnectivity(seed, v, best); c < best {
				best = c
			}
		}
	}
	return best
}

// ConnectivityReference is the retained pre-engine Connectivity: serial
// seed loop, unbounded flows, network rebuilt per pair. Differential-
// test oracle and benchmark baseline only.
func ConnectivityReference(d *Dense) int {
	n := d.Order()
	if n <= 1 {
		return 0
	}
	if !IsConnected(d, nil) {
		return 0
	}
	best := n - 1
	for seed := 0; seed < n && seed <= best; seed++ {
		for v := 0; v < n; v++ {
			if v == seed || d.HasEdge(seed, v) {
				continue
			}
			if c := LocalConnectivityReference(d, seed, v); c < best {
				best = c
			}
		}
	}
	return best
}

// ConnectivityVertexTransitive computes vertex connectivity assuming d is
// vertex-transitive: some minimum cut avoids any chosen base vertex (an
// automorphism can always move the cut off it), so a single seed
// suffices. All the Cayley graphs in this repository qualify. Like
// Connectivity, the minimum simple degree caps the initial bound and
// every flow stops at the running best.
func ConnectivityVertexTransitive(d *Dense) int {
	n := d.Order()
	if n <= 1 {
		return 0
	}
	if !IsConnected(d, nil) {
		return 0
	}
	fs := NewFlowScratch(d)
	best := minSimpleDegree(d)
	for v := 1; v < n; v++ {
		if d.HasEdge(0, v) {
			continue
		}
		if c := fs.LocalConnectivity(0, v, best); c < best {
			best = c
		}
	}
	return best
}

// VerifyDisjointPaths checks that paths is a set of pairwise internally
// vertex-disjoint s-t paths in g, each a valid walk on edges of g with
// distinct internal vertices. It returns nil if all constraints hold.
func VerifyDisjointPaths(g Graph, s, t int, paths [][]int) error {
	seen := make(map[int]int) // internal vertex -> path index
	var buf []int
	for pi, p := range paths {
		if len(p) == 0 || p[0] != s || p[len(p)-1] != t {
			return fmt.Errorf("graph: path %d does not run %d..%d: %v", pi, s, t, p)
		}
		inPath := make(map[int]bool, len(p))
		for i, v := range p {
			if inPath[v] {
				return fmt.Errorf("graph: path %d revisits vertex %d", pi, v)
			}
			inPath[v] = true
			if i > 0 {
				buf = g.AppendNeighbors(p[i-1], buf[:0])
				ok := false
				for _, w := range buf {
					if w == v {
						ok = true
						break
					}
				}
				if !ok {
					return fmt.Errorf("graph: path %d uses non-edge %d-%d", pi, p[i-1], v)
				}
			}
			if v != s && v != t {
				if other, dup := seen[v]; dup {
					return fmt.Errorf("graph: paths %d and %d share internal vertex %d", other, pi, v)
				}
				seen[v] = pi
			}
		}
	}
	return nil
}
