package broadcast

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestTwoPhaseOptimalRounds verifies the headline claim: the structured
// broadcast completes in exactly diameter rounds (asymptotically — here
// exactly — optimal), reaching every node.
func TestTwoPhaseOptimalRounds(t *testing.T) {
	for _, dims := range [][2]int{{0, 3}, {1, 3}, {2, 3}, {3, 4}, {2, 5}} {
		hb := core.MustNew(dims[0], dims[1])
		res, informedAt, err := TwoPhase(hb, hb.Identity())
		if err != nil {
			t.Fatalf("HB%v: %v", dims, err)
		}
		if res.Reached != hb.Order() {
			t.Fatalf("HB%v: reached %d of %d", dims, res.Reached, hb.Order())
		}
		if res.Rounds != hb.DiameterFormula() {
			t.Fatalf("HB%v: %d rounds, want diameter %d", dims, res.Rounds, hb.DiameterFormula())
		}
		// Every node is informed no earlier than its BFS distance.
		dist := graph.BFS(hb, hb.Identity(), nil)
		for v := range informedAt {
			if informedAt[v] < dist[v] {
				t.Fatalf("HB%v: node %d informed at %d before distance %d", dims, v, informedAt[v], dist[v])
			}
		}
	}
}

// TestTwoPhaseFromArbitrarySources exercises vertex symmetry.
func TestTwoPhaseFromArbitrarySources(t *testing.T) {
	hb := core.MustNew(2, 4)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		src := rng.Intn(hb.Order())
		res, _, err := TwoPhase(hb, src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reached != hb.Order() || res.Rounds != hb.DiameterFormula() {
			t.Fatalf("src %d: reached %d rounds %d", src, res.Reached, res.Rounds)
		}
	}
}

func TestFlood(t *testing.T) {
	hb := core.MustNew(1, 3)
	res := Flood(hb, 0)
	if res.Reached != hb.Order() {
		t.Fatalf("reached %d", res.Reached)
	}
	if res.Rounds != hb.DiameterFormula() {
		t.Fatalf("rounds %d, want %d", res.Rounds, hb.DiameterFormula())
	}
	// Flooding sends on the order of 2x the directed edges.
	if res.Messages <= hb.Order() {
		t.Fatalf("flood message count %d suspiciously low", res.Messages)
	}
}

func TestSpanningTree(t *testing.T) {
	hb := core.MustNew(1, 3)
	res := SpanningTree(hb, 0)
	if res.Reached != hb.Order() {
		t.Fatalf("reached %d", res.Reached)
	}
	if res.Messages != hb.Order()-1 {
		t.Fatalf("messages %d, want order-1", res.Messages)
	}
	if res.Rounds != hb.DiameterFormula() {
		t.Fatalf("rounds %d", res.Rounds)
	}
}

// TestMessageEfficiencyOrdering: spanning tree <= two-phase <= flood in
// message count; all equal in rounds.
func TestMessageEfficiencyOrdering(t *testing.T) {
	hb := core.MustNew(2, 4)
	tree := SpanningTree(hb, 0)
	two, _, err := TwoPhase(hb, 0)
	if err != nil {
		t.Fatal(err)
	}
	flood := Flood(hb, 0)
	if !(tree.Messages <= two.Messages && two.Messages <= flood.Messages) {
		t.Fatalf("message ordering violated: tree %d, two-phase %d, flood %d",
			tree.Messages, two.Messages, flood.Messages)
	}
	if tree.Rounds != two.Rounds || two.Rounds != flood.Rounds {
		t.Fatalf("round counts differ: %d %d %d", tree.Rounds, two.Rounds, flood.Rounds)
	}
}
