// Package broadcast implements one-to-all broadcasting on HB(m,n), the
// extension the paper announces as future work ("we have also recently
// developed an asymptotically optimal broadcasting algorithm for this
// proposed network").
//
// Model: synchronous rounds, all-port (a node may send to all neighbors
// in one round). The lower bound for rounds is the source eccentricity,
// which for the vertex-transitive HB equals the diameter m + ⌊3n/2⌋.
// Three algorithms are provided:
//
//   - Flood: every node forwards to all neighbors the round after it is
//     informed. Round-optimal, but sends Θ(edges) messages.
//   - TwoPhase: the structured HB algorithm — m rounds of binomial
//     hypercube broadcast inside the source's sub-hypercube, then
//     butterfly flooding inside every sub-butterfly in parallel. Exactly
//     m + ⌊3n/2⌋ rounds with far fewer messages than global flooding,
//     and every decision is local (dimension/generator order), which is
//     what makes it an *algorithm* rather than a search.
//   - SpanningTree: broadcast along a precomputed BFS tree; round count
//     equals the eccentricity and messages are exactly order-1 (optimal
//     message count, but needs the global tree).
package broadcast

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Result summarises one broadcast execution.
type Result struct {
	Rounds   int
	Messages int
	Reached  int
}

// Flood broadcasts from src by flooding on an arbitrary graph.
func Flood(g graph.Graph, src int) Result {
	n := g.Order()
	informedAt := make([]int32, n)
	for i := range informedAt {
		informedAt[i] = -1
	}
	informedAt[src] = 0
	frontier := []int{src}
	res := Result{Reached: 1}
	var buf []int
	for round := 1; len(frontier) > 0; round++ {
		var next []int
		for _, v := range frontier {
			buf = g.AppendNeighbors(v, buf[:0])
			for _, w := range buf {
				res.Messages++
				if informedAt[w] == -1 {
					informedAt[w] = int32(round)
					res.Reached++
					next = append(next, w)
				}
			}
		}
		if len(next) > 0 {
			res.Rounds = round
		}
		frontier = next
	}
	return res
}

// SpanningTree broadcasts from src along a BFS tree of g: order-1
// messages, eccentricity rounds.
func SpanningTree(g graph.Graph, src int) Result {
	dist := graph.BFS(g, src, nil)
	res := Result{}
	for _, d := range dist {
		if d == graph.Unreachable {
			continue
		}
		res.Reached++
		if int(d) > res.Rounds {
			res.Rounds = int(d)
		}
	}
	res.Messages = res.Reached - 1
	return res
}

// TwoPhase runs the structured HB broadcast from src and verifies full
// coverage. It returns the result and the round at which each node was
// informed (for latency analysis).
func TwoPhase(hb *core.HyperButterfly, src core.Node) (Result, []int32, error) {
	order := hb.Order()
	informedAt := make([]int32, order)
	for i := range informedAt {
		informedAt[i] = -1
	}
	informedAt[src] = 0
	res := Result{Reached: 1}
	_, bsrc := hb.Decode(src)

	// Phase 1 — binomial broadcast over hypercube dimensions: in round
	// i+1 every informed node (all still in sub-hypercube (H_m, bsrc))
	// sends along dimension i. After m rounds all 2^m copies of the
	// source's butterfly label are informed.
	m := hb.M()
	round := 0
	for i := 0; i < m; i++ {
		round++
		mv := core.Move{Cube: true, Index: i}
		for h := 0; h < 1<<uint(m); h++ {
			v := hb.Encode(h, bsrc)
			if informedAt[v] == -1 || informedAt[v] >= int32(round) {
				continue
			}
			w := hb.Apply(mv, v)
			res.Messages++
			if informedAt[w] == -1 {
				informedAt[w] = int32(round)
				res.Reached++
			}
		}
	}

	// Phase 2 — butterfly flooding within every sub-butterfly in
	// parallel: each informed node forwards on its four butterfly edges
	// the round after it was informed.
	frontier := make([]core.Node, 0, 1<<uint(m))
	for h := 0; h < 1<<uint(m); h++ {
		frontier = append(frontier, hb.Encode(h, bsrc))
	}
	bf := hb.Butterfly()
	var bbuf []int
	for ; len(frontier) > 0; round++ {
		var next []core.Node
		for _, v := range frontier {
			h, b := hb.Decode(v)
			bbuf = bf.AppendNeighbors(b, bbuf[:0])
			for _, wb := range bbuf {
				w := hb.Encode(h, wb)
				res.Messages++
				if informedAt[w] == -1 {
					informedAt[w] = int32(round + 1)
					res.Reached++
					next = append(next, w)
				}
			}
		}
		frontier = next
	}

	for v, at := range informedAt {
		if at == -1 {
			return res, nil, fmt.Errorf("broadcast: node %d never informed", v)
		}
		if int(at) > res.Rounds {
			res.Rounds = int(at)
		}
	}
	return res, informedAt, nil
}
