// Package profiling wires -cpuprofile/-memprofile flags into the CLI
// commands, mirroring `go test`'s flags so the sweep binaries can be
// profiled in production the same way the benchmarks are: hbcheck and
// hbtables both drive the graph kernels hard enough that a pprof
// capture of a real run is the first diagnostic to reach for.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile written to cpuPath; an empty path disables
// profiling. The returned stop function flushes and closes the profile
// and must run before process exit (it is a no-op when disabled).
func Start(cpuPath string) (stop func(), err error) {
	if cpuPath == "" {
		return func() {}, nil
	}
	f, err := os.Create(cpuPath)
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap dumps a GC-settled heap profile to memPath; an empty path
// is a no-op. Run it at the end of the workload, after Start's stop.
func WriteHeap(memPath string) error {
	if memPath == "" {
		return nil
	}
	f, err := os.Create(memPath)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	defer f.Close()
	runtime.GC() // settle retained-heap numbers before the snapshot
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	return nil
}
