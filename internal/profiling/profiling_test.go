package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDisabledIsNoOp(t *testing.T) {
	stop, err := Start("")
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if err := WriteHeap(""); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesAreWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the profile has something to hold.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i
	}
	_ = sink
	stop()
	if err := WriteHeap(mem); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")); err == nil {
		t.Fatal("Start into a missing directory did not error")
	}
	if err := WriteHeap(filepath.Join(t.TempDir(), "no", "such", "dir", "mem.out")); err == nil {
		t.Fatal("WriteHeap into a missing directory did not error")
	}
}
