package butterfly

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestNewBounds(t *testing.T) {
	for _, n := range []int{2, 0, -1, MaxDim + 1} {
		if _, err := New(n); err == nil {
			t.Errorf("accepted n = %d", n)
		}
	}
	if b, err := New(3); err != nil || b.Order() != 24 {
		t.Errorf("B_3: %v, order %d", err, b.Order())
	}
}

// Remark 1 counts, Remark 3 generator action, diameter and
// connectivity formulas are asserted by the conformance suite in
// conformance_test.go.

func TestGeneratorInverses(t *testing.T) {
	b := MustNew(5)
	for v := 0; v < b.Order(); v++ {
		for gen := 0; gen < NumGens; gen++ {
			if got := b.Apply(InverseGen(gen), b.Apply(gen, v)); got != v {
				t.Fatalf("%s then %s moved %d to %d",
					GeneratorNames[gen], GeneratorNames[InverseGen(gen)], v, got)
			}
		}
	}
}

func TestSplitNodeOfRoundTrip(t *testing.T) {
	b := MustNew(6)
	for v := 0; v < b.Order(); v++ {
		pi, mask := b.Split(v)
		if b.NodeOf(pi, mask) != v {
			t.Fatalf("round trip failed for %d", v)
		}
	}
}

func TestNodeOfPanics(t *testing.T) {
	b := MustNew(3)
	for _, bad := range []struct {
		pi   int
		mask uint64
	}{{3, 0}, {-1, 0}, {0, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NodeOf(%d,%d) did not panic", bad.pi, bad.mask)
				}
			}()
			b.NodeOf(bad.pi, bad.mask)
		}()
	}
}

func TestPIAndCI(t *testing.T) {
	b := MustNew(3)
	id := b.Identity()
	if b.PI(id) != 0 {
		t.Errorf("PI(identity) = %d", b.PI(id))
	}
	// Definition 1: each left shift (g) increments PI.
	v := b.Apply(GenG, id)
	if b.PI(v) != 1 {
		t.Errorf("PI after g = %d", b.PI(v))
	}
	// f complements the symbol that moves to the back. From identity
	// (t1 t2 t3), f yields t2 t3 t1'; position 3 (symbol t1) is
	// complemented, so CI = 2^(3-1) = 4 per Definition 2.
	v = b.Apply(GenF, id)
	if b.PI(v) != 1 {
		t.Errorf("PI after f = %d", b.PI(v))
	}
	if ci := b.CI(v); ci != 4 {
		t.Errorf("CI after f = %d, want 4", ci)
	}
}

func TestVertexLabel(t *testing.T) {
	b := MustNew(3)
	if got := b.VertexLabel(b.Identity()); got != "t1 t2 t3" {
		t.Errorf("identity label = %q", got)
	}
	if got := b.VertexLabel(b.Apply(GenF, b.Identity())); got != "t2 t3 t1'" {
		t.Errorf("f(identity) label = %q", got)
	}
}

func TestClassicalIsomorphism(t *testing.T) {
	for n := 3; n <= 5; n++ {
		b := MustNew(n)
		c, err := NewClassical(n)
		if err != nil {
			t.Fatal(err)
		}
		if c.Order() != b.Order() {
			t.Fatalf("n=%d: orders differ", n)
		}
		phi := make([]int, c.Order())
		for v := range phi {
			phi[v] = b.FromClassical(c, v)
		}
		// Isomorphism = embedding in both directions (equal order and
		// regular degree make edge preservation sufficient).
		if err := graph.VerifyEmbedding(c, b, phi); err != nil {
			t.Fatalf("n=%d classical->cayley: %v", n, err)
		}
		inv := make([]int, b.Order())
		for v := range inv {
			inv[v] = b.ToClassical(c, v)
		}
		if err := graph.VerifyEmbedding(b, c, inv); err != nil {
			t.Fatalf("n=%d cayley->classical: %v", n, err)
		}
		for v := 0; v < b.Order(); v++ {
			if inv[phi[v]] != v {
				t.Fatalf("n=%d: maps are not mutually inverse at %d", n, v)
			}
		}
	}
}

func TestDistanceAgainstBFSExhaustive(t *testing.T) {
	for n := 3; n <= 6; n++ {
		b := MustNew(n)
		// Vertex symmetry: BFS from a handful of sources, compare all.
		for _, src := range []int{0, b.Order() / 3, b.Order() - 1} {
			dist := graph.BFS(b, src, nil)
			for v := 0; v < b.Order(); v++ {
				if got := b.Distance(src, v); got != int(dist[v]) {
					t.Fatalf("n=%d: Distance(%d,%d) = %d, BFS %d", n, src, v, got, dist[v])
				}
			}
		}
	}
}

func TestDistanceRandomLarger(t *testing.T) {
	for _, n := range []int{8, 10} {
		b := MustNew(n)
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 20; trial++ {
			src := rng.Intn(b.Order())
			dist := graph.BFS(b, src, nil)
			for probe := 0; probe < 500; probe++ {
				v := rng.Intn(b.Order())
				if got := b.Distance(src, v); got != int(dist[v]) {
					t.Fatalf("n=%d: Distance(%d,%d) = %d, BFS %d", n, src, v, got, dist[v])
				}
			}
		}
	}
}

func TestDistanceSymmetry(t *testing.T) {
	b := MustNew(7)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		u, v := rng.Intn(b.Order()), rng.Intn(b.Order())
		if b.Distance(u, v) != b.Distance(v, u) {
			t.Fatalf("asymmetric distance between %d and %d", u, v)
		}
	}
}

func TestRouteRealizesDistance(t *testing.T) {
	b := MustNew(5)
	for u := 0; u < b.Order(); u += 7 {
		for v := 0; v < b.Order(); v++ {
			path := b.Route(u, v)
			if len(path)-1 != b.Distance(u, v) {
				t.Fatalf("route %d->%d has length %d, distance %d", u, v, len(path)-1, b.Distance(u, v))
			}
			for i := 1; i < len(path); i++ {
				if !isNeighbor(b, path[i-1], path[i]) {
					t.Fatalf("route %d->%d: step %d is not an edge", u, v, i)
				}
			}
			if path[0] != u || path[len(path)-1] != v {
				t.Fatalf("route endpoints wrong: %v", path)
			}
		}
	}
}

func isNeighbor(b *Butterfly, u, v Node) bool {
	for gen := 0; gen < NumGens; gen++ {
		if b.Apply(gen, u) == v {
			return true
		}
	}
	return false
}

func TestDisjointPathsErrors(t *testing.T) {
	b := MustNew(4)
	if _, err := b.DisjointPaths(3, 3); err == nil {
		t.Error("accepted equal endpoints")
	}
	if _, err := b.DisjointPaths(-1, 3); err == nil {
		t.Error("accepted out-of-range endpoint")
	}
}

func TestHamiltonianCycle(t *testing.T) {
	for n := 3; n <= 8; n++ {
		b := MustNew(n)
		cyc := b.HamiltonianCycle()
		if len(cyc) != b.Order() {
			t.Fatalf("n=%d: cycle length %d, want %d", n, len(cyc), b.Order())
		}
		seen := make([]bool, b.Order())
		for i, v := range cyc {
			if seen[v] {
				t.Fatalf("n=%d: repeated node %d at position %d", n, v, i)
			}
			seen[v] = true
			if !isNeighbor(b, v, cyc[(i+1)%len(cyc)]) {
				t.Fatalf("n=%d: non-edge at position %d", n, i)
			}
		}
	}
}

func TestLevelCycles(t *testing.T) {
	b := MustNew(5)
	cyc := b.LevelCycle(0b10110)
	if len(cyc) != 5 {
		t.Fatalf("level cycle length %d", len(cyc))
	}
	if err := graph.VerifyCycle(b, cyc); err != nil {
		t.Fatal(err)
	}
	dbl := b.DoubleLevelCycle(0b00101)
	if len(dbl) != 10 {
		t.Fatalf("double level cycle length %d", len(dbl))
	}
	if err := graph.VerifyCycle(b, dbl); err != nil {
		t.Fatal(err)
	}
}

func TestTreeEmbedding(t *testing.T) {
	for n := 3; n <= 7; n++ {
		b := MustNew(n)
		phi := b.TreeEmbedding()
		tree := graph.CompleteBinaryTree{Levels: n + 1}
		if len(phi) != tree.Order() {
			t.Fatalf("n=%d: embedding size %d, want %d", n, len(phi), tree.Order())
		}
		if err := graph.VerifyEmbedding(tree, b, phi); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestCycleKNAllK verifies the full kn-cycle family of Remark 9
// exhaustively for small n: every lap count k yields a simple cycle of
// length exactly k·n.
func TestCycleKNAllK(t *testing.T) {
	for n := 3; n <= 6; n++ {
		b := MustNew(n)
		for k := 1; k <= 1<<uint(n); k++ {
			cyc, err := b.CycleKN(k)
			if err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			if len(cyc) != k*n {
				t.Fatalf("n=%d k=%d: length %d", n, k, len(cyc))
			}
			seen := make(map[Node]bool, len(cyc))
			for i, v := range cyc {
				if seen[v] {
					t.Fatalf("n=%d k=%d: repeated node %d at %d", n, k, v, i)
				}
				seen[v] = true
				if !isNeighbor(b, v, cyc[(i+1)%len(cyc)]) {
					t.Fatalf("n=%d k=%d: non-edge at %d", n, k, i)
				}
			}
		}
	}
}

func TestCycleKNBounds(t *testing.T) {
	b := MustNew(4)
	if _, err := b.CycleKN(0); err == nil {
		t.Error("accepted k = 0")
	}
	if _, err := b.CycleKN(17); err == nil {
		t.Error("accepted k > 2^n")
	}
}
