package butterfly

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// dense caches the materialised adjacency of b for the flow-based
// algorithms; it is built at most once.
type denseCache struct {
	once sync.Once
	d    *graph.Dense
}

var denseCaches sync.Map // *Butterfly -> *denseCache

// Dense returns the materialised adjacency of b, building and caching it
// on first use. Safe for concurrent use.
func (b *Butterfly) Dense() *graph.Dense {
	ci, _ := denseCaches.LoadOrStore(b, &denseCache{})
	c := ci.(*denseCache)
	c.once.Do(func() { c.d = graph.Build(b) })
	return c.d
}

// DisjointPaths returns 4 pairwise internally vertex-disjoint paths from
// u to v (u != v), the maximum possible since B_n is 4-regular with
// vertex connectivity 4 (Remark 1). The paths are extracted from a
// unit-capacity max-flow (Menger), so the count is exact by
// construction; the paper's Theorem 5 composes these with hypercube
// disjoint paths to reach connectivity m+4 in HB(m,n).
func (b *Butterfly) DisjointPaths(u, v Node) ([][]Node, error) {
	if u == v {
		return nil, fmt.Errorf("butterfly: DisjointPaths endpoints equal (%d)", u)
	}
	if u < 0 || u >= b.size || v < 0 || v >= b.size {
		return nil, fmt.Errorf("butterfly: endpoints %d,%d out of range [0,%d)", u, v, b.size)
	}
	paths, err := graph.DisjointPaths(b.Dense(), u, v, 4)
	if err != nil {
		return nil, fmt.Errorf("butterfly: %w", err)
	}
	if len(paths) != 4 {
		return nil, fmt.Errorf("butterfly: found %d disjoint paths between %d and %d, want 4", len(paths), u, v)
	}
	return paths, nil
}
