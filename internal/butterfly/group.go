package butterfly

// Group structure of B_n (Theorem 1 context): the node set is the group
// Z_n ⋉ Z_2^n with product
//
//	(r1, c1) · (r2, c2) = ((r1+r2) mod n, c1 xor rot^{r1}(c2))
//
// where rot is a one-position left rotation of the symbol mask. Edges of
// the Cayley graph connect x to x·s for generators s, so every left
// translation x -> t·x is a graph automorphism; translations are how
// embeddings anchored at the identity are re-rooted anywhere (used by
// the tree embeddings of Section 4 and the vertex-symmetry argument of
// Remark 7).

import "repro/internal/bitvec"

// Mul returns the group product a·b of two nodes.
func (b *Butterfly) Mul(x, y Node) Node {
	r1, c1 := b.Split(x)
	r2, c2 := b.Split(y)
	return b.NodeOf((r1+r2)%b.n, c1^bitvec.RotL(c2, b.n, r1))
}

// Inverse returns the group inverse of x: the node y with x·y = identity.
func (b *Butterfly) Inverse(x Node) Node {
	r, c := b.Split(x)
	ri := (b.n - r) % b.n
	return b.NodeOf(ri, bitvec.RotL(c, b.n, ri))
}

// Translate returns t·x, the image of x under the automorphism "left
// translation by t".
func (b *Butterfly) Translate(t, x Node) Node { return b.Mul(t, x) }
