package butterfly_test

import (
	"testing"

	"repro/internal/conformance"
)

// TestConformance registers the wrapped butterfly B_n with the
// repository-wide invariant suite: Remark 1 counts (n·2^n vertices,
// n·2^(n+1) edges, 4-regular), Remark 3 generator action, diameter
// ⌊3n/2⌋, connectivity 4, distance/route optimality vs BFS and the
// four-path disjoint construction.
func TestConformance(t *testing.T) {
	conformance.Suite(t,
		conformance.Butterfly(3),
		conformance.Butterfly(4),
		conformance.Butterfly(5),
	)
}
