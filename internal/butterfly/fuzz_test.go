package butterfly

import (
	"sync"
	"testing"

	"repro/internal/graph"
)

// Fuzzing complements the exhaustive and property tests: the harness
// mutates raw node pairs and the invariants must hold for every input
// after folding into range.

var fuzzDist struct {
	once sync.Once
	b    *Butterfly
	d    [][]int32
}

func fuzzDistances() (*Butterfly, [][]int32) {
	fuzzDist.once.Do(func() {
		fuzzDist.b = MustNew(4)
		fuzzDist.d = make([][]int32, fuzzDist.b.Order())
		for v := range fuzzDist.d {
			fuzzDist.d[v] = graph.BFS(fuzzDist.b, v, nil)
		}
	})
	return fuzzDist.b, fuzzDist.d
}

// FuzzDistanceMatchesBFS cross-checks the analytic distance (and the
// route that realises it) against the full BFS table of B_4.
func FuzzDistanceMatchesBFS(f *testing.F) {
	f.Add(uint16(0), uint16(1))
	f.Add(uint16(17), uint16(63))
	f.Add(uint16(999), uint16(3))
	f.Fuzz(func(t *testing.T, a, b uint16) {
		bf, dist := fuzzDistances()
		u := int(a) % bf.Order()
		v := int(b) % bf.Order()
		want := int(dist[u][v])
		if got := bf.Distance(u, v); got != want {
			t.Fatalf("Distance(%d,%d) = %d, BFS %d", u, v, got, want)
		}
		if path := bf.Route(u, v); len(path)-1 != want {
			t.Fatalf("Route(%d,%d) length %d, distance %d", u, v, len(path)-1, want)
		}
	})
}

// FuzzGroupLaws checks the Cayley group axioms on fuzzed elements.
func FuzzGroupLaws(f *testing.F) {
	f.Add(uint16(1), uint16(2), uint16(3))
	f.Fuzz(func(t *testing.T, a, b, c uint16) {
		bf := MustNew(5)
		x, y, z := int(a)%bf.Order(), int(b)%bf.Order(), int(c)%bf.Order()
		if bf.Mul(bf.Mul(x, y), z) != bf.Mul(x, bf.Mul(y, z)) {
			t.Fatalf("associativity fails at (%d,%d,%d)", x, y, z)
		}
		if bf.Mul(x, bf.Inverse(x)) != bf.Identity() {
			t.Fatalf("inverse fails at %d", x)
		}
	})
}
