package butterfly

import "testing"

func TestGroupIdentityAndInverse(t *testing.T) {
	b := MustNew(5)
	id := b.Identity()
	for v := 0; v < b.Order(); v++ {
		if b.Mul(id, v) != v || b.Mul(v, id) != v {
			t.Fatalf("identity law fails at %d", v)
		}
		if b.Mul(v, b.Inverse(v)) != id {
			t.Fatalf("right inverse fails at %d", v)
		}
		if b.Mul(b.Inverse(v), v) != id {
			t.Fatalf("left inverse fails at %d", v)
		}
	}
}

func TestGroupAssociativitySampled(t *testing.T) {
	b := MustNew(4)
	// Exhaustive over a stride to keep the cube of cases manageable.
	for x := 0; x < b.Order(); x += 3 {
		for y := 0; y < b.Order(); y += 5 {
			for z := 0; z < b.Order(); z += 7 {
				if b.Mul(b.Mul(x, y), z) != b.Mul(x, b.Mul(y, z)) {
					t.Fatalf("associativity fails at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

// TestGeneratorsAsElements verifies that right multiplication by the
// generator elements reproduces Apply, i.e. the graph really is the
// Cayley graph of this group presentation (Theorem 1).
func TestGeneratorsAsElements(t *testing.T) {
	b := MustNew(5)
	id := b.Identity()
	for gen := 0; gen < NumGens; gen++ {
		s := b.Apply(gen, id)
		for v := 0; v < b.Order(); v++ {
			if b.Mul(v, s) != b.Apply(gen, v) {
				t.Fatalf("right multiplication by %s disagrees with Apply at %d",
					GeneratorNames[gen], v)
			}
		}
	}
}

// TestTranslationIsAutomorphism checks that left translation preserves
// adjacency — the heart of vertex transitivity (Remark 7).
func TestTranslationIsAutomorphism(t *testing.T) {
	b := MustNew(4)
	var buf, tbuf []int
	for _, tr := range []int{1, 7, 33, b.Order() - 1} {
		for v := 0; v < b.Order(); v++ {
			tv := b.Translate(tr, v)
			buf = b.AppendNeighbors(v, buf[:0])
			tbuf = b.AppendNeighbors(tv, tbuf[:0])
			for _, w := range buf {
				tw := b.Translate(tr, w)
				found := false
				for _, x := range tbuf {
					if x == tw {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("translation by %d breaks edge %d-%d", tr, v, w)
				}
			}
		}
	}
}
