// Package butterfly implements the wrapped butterfly network B_n in the
// Cayley representation of Vadapalli & Srimani (TPDS 1996) used by the
// paper (Section 2.1): each node is a cyclic permutation of n symbols
// t_1..t_n in lexicographic order, each symbol possibly complemented, and
// the four generators are
//
//	g  (a_1 a_2 … a_n) = a_2 a_3 … a_n a_1      (left shift)
//	f  (a_1 a_2 … a_n) = a_2 a_3 … a_n a_1'     (left shift, complement)
//	g' (a_1 a_2 … a_n) = a_n  a_1 … a_{n-1}     (right shift)
//	f' (a_1 a_2 … a_n) = a_n' a_1 … a_{n-1}     (right shift, complement)
//
// A node is stored as (PI, mask): PI in [0,n) is the permutation index of
// Definition 1 (number of left shifts from the identity permutation) and
// mask is the set of complemented symbols, bit k-1 for symbol t_k. The
// package also provides the classical <word, level> representation and
// the isomorphism between the two (Remark 2).
package butterfly

import (
	"fmt"
	"strings"

	"repro/internal/bitvec"
)

// Node is a butterfly vertex id in [0, n·2^n): id = PI·2^n + mask.
type Node = int

// Butterfly is the wrapped butterfly B_n, n >= 3.
type Butterfly struct {
	n    int
	size int // n * 2^n
}

// MaxDim bounds n so that node ids and dense adjacency stay comfortable;
// B_20 already has 20,971,520 vertices.
const MaxDim = 24

// New returns B_n. The paper (and the underlying Cayley construction)
// requires n >= 3: for n <= 2 the four generators do not yield four
// distinct neighbors.
func New(n int) (*Butterfly, error) {
	if n < 3 || n > MaxDim {
		return nil, fmt.Errorf("butterfly: dimension %d out of range [3,%d]", n, MaxDim)
	}
	return &Butterfly{n: n, size: n << uint(n)}, nil
}

// MustNew is New for known-good dimensions; it panics on error.
func MustNew(n int) *Butterfly {
	b, err := New(n)
	if err != nil {
		panic(err)
	}
	return b
}

// Dim returns n.
func (b *Butterfly) Dim() int { return b.n }

// Order returns n·2^n (Remark 1).
func (b *Butterfly) Order() int { return b.size }

// EdgeCountFormula returns n·2^(n+1) (Remark 1).
func (b *Butterfly) EdgeCountFormula() int { return b.n << uint(b.n+1) }

// Degree returns 4: B_n is 4-regular.
func (b *Butterfly) Degree() int { return 4 }

// DiameterFormula returns ⌊3n/2⌋, the diameter of B_n (Remark 1).
func (b *Butterfly) DiameterFormula() int { return 3 * b.n / 2 }

// ConnectivityFormula returns 4, the vertex connectivity of B_n (Remark 1).
func (b *Butterfly) ConnectivityFormula() int { return 4 }

// NodeOf assembles a node id from a permutation index pi in [0,n) and a
// complement mask over symbols (bit k-1 set iff symbol t_k complemented).
func (b *Butterfly) NodeOf(pi int, mask uint64) Node {
	if pi < 0 || pi >= b.n || mask >= 1<<uint(b.n) {
		panic(fmt.Sprintf("butterfly: invalid (pi=%d, mask=%#x) for B_%d", pi, mask, b.n))
	}
	return pi<<uint(b.n) | int(mask)
}

// Split decomposes a node id into (pi, mask).
func (b *Butterfly) Split(v Node) (pi int, mask uint64) {
	return v >> uint(b.n), uint64(v) & bitvec.Mask(b.n)
}

// PI returns the permutation index of v (Definition 1).
func (b *Butterfly) PI(v Node) int { pi, _ := b.Split(v); return pi }

// CI returns the complementation index of v (Definition 2): bit i-1 of
// the result is set iff the symbol at position i of v's label is
// complemented. Position i (1-based) of a node with permutation index pi
// holds symbol t_{((pi+i-1) mod n)+1}, so CI is a rotation of the
// symbol-indexed mask.
func (b *Butterfly) CI(v Node) uint64 {
	pi, mask := b.Split(v)
	return bitvec.RotR(mask, b.n, pi)
}

// Identity returns the identity node: permutation t_1 t_2 … t_n with no
// complemented symbols (PI = 0, CI = 0).
func (b *Butterfly) Identity() Node { return 0 }

// Generator indices in the neighbor order emitted by AppendNeighbors.
const (
	GenG    = iota // g: left shift
	GenF           // f: left shift + complement
	GenGInv        // g^{-1}: right shift
	GenFInv        // f^{-1}: right shift + complement
	NumGens
)

// GeneratorNames maps generator indices to the paper's notation.
var GeneratorNames = [NumGens]string{"g", "f", "g-1", "f-1"}

// Apply returns the neighbor of v under the given generator.
//
// In (pi, mask) coordinates a left shift increments pi; the symbol moved
// from the front to the back is t_{pi+1} (bit pi of the mask), which f
// complements. A right shift decrements pi; the symbol moved to the
// front is t_{pi} (bit pi-1 mod n), which f^{-1} complements.
func (b *Butterfly) Apply(gen int, v Node) Node {
	pi, mask := b.Split(v)
	n := b.n
	switch gen {
	case GenG:
		return b.NodeOf((pi+1)%n, mask)
	case GenF:
		return b.NodeOf((pi+1)%n, mask^(1<<uint(pi)))
	case GenGInv:
		return b.NodeOf((pi+n-1)%n, mask)
	case GenFInv:
		p := (pi + n - 1) % n
		return b.NodeOf(p, mask^(1<<uint(p)))
	default:
		panic(fmt.Sprintf("butterfly: unknown generator %d", gen))
	}
}

// InverseGen returns the generator index that undoes gen.
func InverseGen(gen int) int {
	switch gen {
	case GenG:
		return GenGInv
	case GenGInv:
		return GenG
	case GenF:
		return GenFInv
	case GenFInv:
		return GenF
	}
	panic(fmt.Sprintf("butterfly: unknown generator %d", gen))
}

// AppendNeighbors implements graph.Graph; neighbor order is
// [g, f, g^{-1}, f^{-1}].
func (b *Butterfly) AppendNeighbors(v int, buf []int) []int {
	return append(buf,
		b.Apply(GenG, v), b.Apply(GenF, v), b.Apply(GenGInv, v), b.Apply(GenFInv, v))
}

// VertexLabel renders v as its symbol sequence, e.g. "t3 t1' t2" for a
// node of B_3 with PI=2 and t_1 complemented.
func (b *Butterfly) VertexLabel(v Node) string {
	pi, mask := b.Split(v)
	var sb strings.Builder
	for i := 0; i < b.n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		k := (pi + i) % b.n
		fmt.Fprintf(&sb, "t%d", k+1)
		if bitvec.Bit(mask, k) {
			sb.WriteByte('\'')
		}
	}
	return sb.String()
}

// Classical is the textbook wrapped butterfly of Section 2.1: vertices
// <z, l> with z an n-bit word and l a level in [0,n); <z, l> is adjacent
// to <z, l+1> and <z xor 2^l, l+1> (and the mirror edges from level
// l-1). Vertex id = l·2^n + z.
type Classical struct {
	n int
}

// NewClassical returns the classical representation of B_n.
func NewClassical(n int) (*Classical, error) {
	if n < 3 || n > MaxDim {
		return nil, fmt.Errorf("butterfly: dimension %d out of range [3,%d]", n, MaxDim)
	}
	return &Classical{n: n}, nil
}

// Order returns n·2^n.
func (c *Classical) Order() int { return c.n << uint(c.n) }

// Encode assembles a vertex id from a level and an n-bit word.
func (c *Classical) Encode(level int, word uint64) int {
	return level<<uint(c.n) | int(word)
}

// Decode splits a vertex id into (level, word).
func (c *Classical) Decode(v int) (level int, word uint64) {
	return v >> uint(c.n), uint64(v) & bitvec.Mask(c.n)
}

// AppendNeighbors implements graph.Graph.
func (c *Classical) AppendNeighbors(v int, buf []int) []int {
	l, w := c.Decode(v)
	up := (l + 1) % c.n
	down := (l + c.n - 1) % c.n
	return append(buf,
		c.Encode(up, w),
		c.Encode(up, w^(1<<uint(l))),
		c.Encode(down, w),
		c.Encode(down, w^(1<<uint(down))),
	)
}

// VertexLabel renders v as "<z_1…z_n, l>".
func (c *Classical) VertexLabel(v int) string {
	l, w := c.Decode(v)
	return fmt.Sprintf("<%s, %d>", bitvec.String(w, c.n), l)
}

// FromClassical maps a classical vertex to the Cayley representation.
// The isomorphism of Remark 2 is the identity on (level, word) ->
// (PI, mask): levels become permutation indices and the word becomes the
// complement mask (straight edges map to g/g^{-1}, cross edges to
// f/f^{-1}); tests verify edge preservation exhaustively.
func (b *Butterfly) FromClassical(c *Classical, v int) Node {
	if c.n != b.n {
		panic("butterfly: dimension mismatch in FromClassical")
	}
	l, w := c.Decode(v)
	return b.NodeOf(l, w)
}

// ToClassical maps a Cayley node to the classical representation.
func (b *Butterfly) ToClassical(c *Classical, v Node) int {
	if c.n != b.n {
		panic("butterfly: dimension mismatch in ToClassical")
	}
	pi, mask := b.Split(v)
	return c.Encode(pi, mask)
}
