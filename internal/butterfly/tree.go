package butterfly

import (
	"repro/internal/graph"
)

// TreeEmbedding returns an embedding of the complete binary tree T(n+1)
// (2^(n+1)-1 vertices, heap order) into B_n, proving Lemma 3
// constructively. The returned slice maps tree vertex -> butterfly node.
//
// Construction (in the classical <word, level> view, then translated):
// the root is <0,0> and the tree follows butterfly levels downward; the
// node at depth d reached by crossing decisions c_0…c_{d-1} is
// <c, d mod n> where bit i of c is c_i. Depths 0..n-1 use each level
// once, so all internal vertices are distinct. Depth-n leaves wrap to
// level 0: the children of <w, n-1> are <w, 0> and <w xor e_{n-1}, 0>.
// That assigns every level-0 word exactly once — including the root's
// word 0, a collision. The single colliding leaf (straight child of the
// all-straight parent <0, n-1>) is rerouted to <e_{n-2}, n-2>, which is
// adjacent to its parent via the cross edge down to level n-2 and is
// unused (level n-2 internal vertices all have bits n-2 and n-1 clear).
func (b *Butterfly) TreeEmbedding() []Node {
	n := b.n
	classical, err := NewClassical(n)
	if err != nil {
		panic(err) // b's dimension is already validated
	}
	tree := graph.CompleteBinaryTree{Levels: n + 1}
	phi := make([]Node, tree.Order())

	// words[v] is the classical word of tree vertex v for depths < n.
	words := make([]uint64, tree.Order())
	assign := func(v int, level int, w uint64) {
		phi[v] = b.FromClassical(classical, classical.Encode(level, w))
	}
	assign(0, 0, 0)
	v := 0
	for depth := 0; depth < n; depth++ {
		first := 1<<uint(depth) - 1
		last := 2 * first
		for v = first; v <= last; v++ {
			w := words[v]
			left, right := 2*v+1, 2*v+2
			if depth < n-1 {
				words[left] = w
				words[right] = w | 1<<uint(depth)
				assign(left, depth+1, words[left])
				assign(right, depth+1, words[right])
				continue
			}
			// depth == n-1: wrap to level 0.
			if w == 0 {
				// Reroute the colliding straight child.
				assign(left, n-2, 1<<uint(n-2))
			} else {
				assign(left, 0, w)
			}
			assign(right, 0, w|1<<uint(n-1))
		}
	}
	return phi
}
