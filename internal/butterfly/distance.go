package butterfly

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
)

// Shortest-path routing in the wrapped butterfly (the scheme the paper
// cites as [4] and builds HB routing on, Section 3).
//
// Moving from permutation index pi to pi+1 (generators g/f) crosses
// "ring edge" pi of the level ring Z_n and may complement symbol
// t_{pi+1}; moving from pi to pi-1 (g^{-1}/f^{-1}) crosses ring edge
// pi-1 and may complement t_{pi}. Hence a route from u=(pi,mask) to
// v=(pi',mask') is exactly a walk on the ring Z_n from pi to pi' that
// traverses every ring edge k with bit k set in mask^mask' at least once
// (the complement is applied on one traversal of each such edge). The
// shortest route is therefore a minimum-length covering walk on a ring.
//
// Any walk's traversed-edge set is an arc of the ring (or the whole
// ring), so the optimum is found by enumerating:
//
//   - proper arcs reaching alpha edges clockwise and beta edges
//     counter-clockwise from pi (alpha+beta <= n-1) that contain all
//     required edges and the destination; an optimal walk over an arc
//     turns at most once and costs 2(alpha+beta) - |e|, where e is the
//     signed position of pi' in arc coordinates;
//   - the full ring, costing n + min(cw, ccw) where cw = (pi'-pi) mod n.
//
// Tests verify the resulting distances against BFS exhaustively for
// n in 3..6 and by random sampling for larger n.

// walkPlan describes an optimal covering walk.
type walkPlan struct {
	full      bool // traverse the entire ring
	clockwise bool // full case: initial overshoot direction
	alpha     int  // arc case: clockwise extent (edges)
	beta      int  // arc case: counter-clockwise extent (edges)
	e         int  // arc case: signed destination offset, -beta <= e <= alpha
}

// planWalk computes the minimum covering-walk length and a realizing
// plan. req is the set of required ring edges as offsets from the start
// level: bit k set means ring edge (start+k) mod n must be traversed.
// cw is the clockwise distance to the destination level.
func planWalk(n int, req uint64, cw int) (int, walkPlan) {
	ccw := 0
	if cw != 0 {
		ccw = n - cw
	}
	// Full-ring candidate.
	best := n + cw
	plan := walkPlan{full: true, clockwise: true}
	if ccw < cw {
		best = n + ccw
		plan.clockwise = false
	}
	// Proper-arc candidates. Covered edge offsets for (alpha, beta) are
	// [0, alpha-1] and [n-beta, n-1]. For a fixed beta the cost grows
	// with alpha, so only two alphas can be optimal: the smallest alpha
	// covering the required edges not handled by the beta side, and (if
	// larger) the smallest alpha admitting the clockwise destination.
	for beta := 0; beta < n; beta++ {
		ccwMask := bitvec.Mask(beta) << uint(n-beta)
		rest := req &^ ccwMask
		minAlpha := bitLen(rest)
		for _, alpha := range [2]int{minAlpha, cw} {
			if alpha < minAlpha || alpha+beta > n-1 {
				continue
			}
			if cw <= alpha {
				if cost := 2*(alpha+beta) - cw; cost < best {
					best = cost
					plan = walkPlan{alpha: alpha, beta: beta, e: cw}
				}
			}
			if ccw <= beta {
				if cost := 2*(alpha+beta) - ccw; cost < best {
					best = cost
					plan = walkPlan{alpha: alpha, beta: beta, e: -ccw}
				}
			}
		}
	}
	return best, plan
}

// bitLen returns the number of bits needed to represent x (0 for x == 0).
func bitLen(x uint64) int { return bits.Len64(x) }

// Distance returns the shortest-path distance between u and v in B_n.
func (b *Butterfly) Distance(u, v Node) int {
	piU, maskU := b.Split(u)
	piV, maskV := b.Split(v)
	diff := maskU ^ maskV
	req := bitvec.RotR(diff, b.n, piU) // edge offsets relative to piU
	cw := (piV - piU + b.n) % b.n
	d, _ := planWalk(b.n, req, cw)
	return d
}

// moves expands a plan into a sequence of +1 (clockwise / left-shift)
// and -1 (counter-clockwise / right-shift) level steps.
func (p walkPlan) moves(n, cw int) []int {
	var seq []int
	emit := func(dir, count int) {
		for i := 0; i < count; i++ {
			seq = append(seq, dir)
		}
	}
	if p.full {
		if p.clockwise {
			emit(+1, cw)
			emit(-1, n)
		} else {
			emit(-1, n-cw) // ccw overshoot to destination's ccw image
			emit(+1, n)
		}
		return seq
	}
	if p.e >= 0 {
		// Counter-clockwise first: to -beta, up to alpha, back to e.
		emit(-1, p.beta)
		emit(+1, p.alpha+p.beta)
		emit(-1, p.alpha-p.e)
	} else {
		emit(+1, p.alpha)
		emit(-1, p.alpha+p.beta)
		emit(+1, p.e+p.beta)
	}
	return seq
}

// AppendRoute appends a shortest u-v path (both endpoints included) to
// buf and returns the extended slice. It is the allocation-free
// counterpart of Route: given a buf with sufficient capacity it performs
// no heap allocation, which is what lets the implicit engine route on
// multi-million-node instances at dense-graph speeds.
func (b *Butterfly) AppendRoute(u, v Node, buf []Node) []Node {
	buf = append(buf, u)
	return b.AppendRouteTail(u, v, 0, buf)
}

// AppendRouteTail appends base+w for every vertex w strictly after u on
// the shortest u-v walk that Route produces, allocation-free. The base
// offset lets product networks (core.HyperButterfly) relabel the walk
// into a sub-butterfly without an intermediate slice.
func (b *Butterfly) AppendRouteTail(u, v Node, base int, buf []int) []int {
	piU, maskU := b.Split(u)
	piV, maskV := b.Split(v)
	req := bitvec.RotR(maskU^maskV, b.n, piU)
	cw := (piV - piU + b.n) % b.n
	_, plan := planWalk(b.n, req, cw)

	// The plan expands to at most three constant-direction segments (the
	// same sequence plan.moves emits, without materialising it).
	var segs [3][2]int // {direction, step count}
	ns := 0
	switch {
	case plan.full && plan.clockwise:
		segs[0] = [2]int{+1, cw}
		segs[1] = [2]int{-1, b.n}
		ns = 2
	case plan.full:
		segs[0] = [2]int{-1, b.n - cw}
		segs[1] = [2]int{+1, b.n}
		ns = 2
	case plan.e >= 0:
		segs[0] = [2]int{-1, plan.beta}
		segs[1] = [2]int{+1, plan.alpha + plan.beta}
		segs[2] = [2]int{-1, plan.alpha - plan.e}
		ns = 3
	default:
		segs[0] = [2]int{+1, plan.alpha}
		segs[1] = [2]int{-1, plan.alpha + plan.beta}
		segs[2] = [2]int{+1, plan.e + plan.beta}
		ns = 3
	}
	cur := u
	for s := 0; s < ns; s++ {
		dir, count := segs[s][0], segs[s][1]
		for i := 0; i < count; i++ {
			pi, mask := b.Split(cur)
			var gen int
			if dir > 0 {
				gen = GenG
				if (mask^maskV)&(1<<uint(pi)) != 0 {
					gen = GenF
				}
			} else {
				gen = GenGInv
				prev := (pi + b.n - 1) % b.n
				if (mask^maskV)&(1<<uint(prev)) != 0 {
					gen = GenFInv
				}
			}
			cur = b.Apply(gen, cur)
			buf = append(buf, base+cur)
		}
	}
	if cur != v {
		panic(fmt.Sprintf("butterfly: route from %d ended at %d, want %d", u, cur, v))
	}
	return buf
}

// Route returns a shortest path from u to v as a node sequence including
// both endpoints; its length always equals Distance(u, v) + 1.
func (b *Butterfly) Route(u, v Node) []Node {
	gens := b.RouteGenerators(u, v)
	path := make([]Node, 0, len(gens)+1)
	path = append(path, u)
	cur := u
	for _, g := range gens {
		cur = b.Apply(g, cur)
		path = append(path, cur)
	}
	if cur != v {
		panic(fmt.Sprintf("butterfly: route from %d ended at %d, want %d", u, cur, v))
	}
	return path
}

// RouteGenerators returns the generator sequence of a shortest u-v path.
// Crossing a ring edge whose symbol still differs from the destination
// applies the complementing generator (f or f^{-1}); all other crossings
// use g/g^{-1}. Repeated crossings of the same edge therefore complement
// at most once.
func (b *Butterfly) RouteGenerators(u, v Node) []int {
	piU, maskU := b.Split(u)
	piV, maskV := b.Split(v)
	diff := maskU ^ maskV
	req := bitvec.RotR(diff, b.n, piU)
	cw := (piV - piU + b.n) % b.n
	_, plan := planWalk(b.n, req, cw)

	gens := make([]int, 0, 3*b.n/2)
	cur := u
	for _, dir := range plan.moves(b.n, cw) {
		pi, mask := b.Split(cur)
		var gen int
		if dir > 0 {
			gen = GenG
			if (mask^maskV)&(1<<uint(pi)) != 0 {
				gen = GenF
			}
		} else {
			gen = GenGInv
			prev := (pi + b.n - 1) % b.n
			if (mask^maskV)&(1<<uint(prev)) != 0 {
				gen = GenFInv
			}
		}
		gens = append(gens, gen)
		cur = b.Apply(gen, cur)
	}
	return gens
}
