package butterfly

import (
	"fmt"

	"repro/internal/bitvec"
)

// HamiltonianCycle returns a Hamiltonian cycle of B_n as a sequence of
// its n·2^n nodes (consecutive nodes, including last-to-first, joined by
// generator edges).
//
// Construction ("binary-counting laps"): starting at (pi=0, mask=0),
// perform 2^n laps of n left-shift steps each. Lap j transforms the mask
// from j-1 to j (the final lap wraps 2^n-1 back to 0): while crossing
// ring edge r during the lap, the f generator is chosen exactly when bit
// r of (j-1) xor j is set. The node visited at lap j, position r, is
// (r, low_r(j) | high_r(j-1)) — low bits already updated, high bits not
// yet — and the map j -> (low_r(j), high_r(j-1)) is injective for every
// r, so all n·2^n visited nodes are distinct. This realises the cycle
// family behind Lemma 2 / reference [7] at full length; tests verify
// distinctness and adjacency exhaustively.
func (b *Butterfly) HamiltonianCycle() []Node {
	cycle, err := b.CycleKN(1 << uint(b.n))
	if err != nil {
		panic(err) // k = 2^n is always in range
	}
	return cycle
}

// CycleKN returns a simple cycle of length k·n in B_n for any
// 1 <= k <= 2^n, the k'=0 slice of the kn+2k' cycle family of Remark 9
// (reference [7]). k = 2^n gives the Hamiltonian cycle.
//
// The construction truncates the binary-counting-laps scheme: laps walk
// the masks 0, 1, …, k-1 and wrap back to 0. Distinctness of the
// visited nodes follows from the same low-bits/high-bits injectivity
// argument as HamiltonianCycle, which survives truncation because it
// only compares consecutive integers; tests verify all k exhaustively
// for n <= 6.
func (b *Butterfly) CycleKN(k int) ([]Node, error) {
	if k < 1 || k > 1<<uint(b.n) {
		return nil, fmt.Errorf("butterfly: no %d-lap cycle in B_%d (need 1 <= k <= %d)", k, b.n, 1<<uint(b.n))
	}
	cycle := make([]Node, 0, k*b.n)
	cur := b.Identity()
	for j := 1; j <= k; j++ {
		prev := uint64(j - 1)
		next := uint64(j)
		if j == k {
			next = 0
		}
		flips := prev ^ next
		for r := 0; r < b.n; r++ {
			cycle = append(cycle, cur)
			if bitvec.Bit(flips, r) {
				cur = b.Apply(GenF, cur)
			} else {
				cur = b.Apply(GenG, cur)
			}
		}
	}
	return cycle, nil
}

// LevelCycle returns the n-cycle through the nodes (0,mask), (1,mask),
// …, (n-1,mask) traced by the g generator: the shortest cycles of B_n
// used by the small-cycle embeddings.
func (b *Butterfly) LevelCycle(mask uint64) []Node {
	cycle := make([]Node, b.n)
	for r := 0; r < b.n; r++ {
		cycle[r] = b.NodeOf(r, mask)
	}
	return cycle
}

// DoubleLevelCycle returns the 2n-cycle obtained by applying f for two
// full laps: lap one complements every symbol, lap two restores them.
// Together with LevelCycle it exhibits the kn+2k' cycle family of
// Remark 9 at its two smallest parameter points.
func (b *Butterfly) DoubleLevelCycle(mask uint64) []Node {
	cycle := make([]Node, 0, 2*b.n)
	cur := b.NodeOf(0, mask)
	for i := 0; i < 2*b.n; i++ {
		cycle = append(cycle, cur)
		cur = b.Apply(GenF, cur)
	}
	return cycle
}
