package hbserve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the daemon's live instrumentation: per-endpoint request
// counters split by status code, per-endpoint latency histograms, an
// in-flight gauge, and pass-through cache/pool gauges. Everything is
// lock-free on the hot path (atomics; the label maps are guarded by a
// mutex only on first sight of a new label pair) and rendered in
// Prometheus text exposition format with deterministic ordering so
// scrapes are diffable.
type Metrics struct {
	mu        sync.Mutex
	requests  map[string]*atomic.Uint64    // "endpoint\xffcode" -> count
	durations map[string]*latencyHistogram // endpoint -> histogram
	inflight  atomic.Int64
	panics    atomic.Uint64 // handler panics recovered by instrument
	shed      atomic.Uint64 // requests refused by load shedding
	start     time.Time

	// /batch instrumentation: request and pair throughput per codec+op
	// (the codec split is what the batch-vs-single benchmark reads), and
	// per-op compute latency (excluding HTTP parse/encode captured by the
	// endpoint histogram above).
	batchRequests map[string]*atomic.Uint64    // "codec\xffop" -> requests
	batchPairs    map[string]*atomic.Uint64    // "codec\xffop" -> pairs answered
	batchDur      map[string]*latencyHistogram // op -> compute latency
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:      make(map[string]*atomic.Uint64),
		durations:     make(map[string]*latencyHistogram),
		batchRequests: make(map[string]*atomic.Uint64),
		batchPairs:    make(map[string]*atomic.Uint64),
		batchDur:      make(map[string]*latencyHistogram),
		start:         time.Now(),
	}
}

// latencyBuckets are the histogram upper bounds in seconds, spanning
// cache hits (~µs) through cold conformance runs (~s).
var latencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

type latencyHistogram struct {
	buckets [len0 + 1]atomic.Uint64 // counts per bucket; last = +Inf
	sumNS   atomic.Uint64
	count   atomic.Uint64
}

const len0 = 15 // len(latencyBuckets); array sizes need a constant

// RequestStart marks a request in flight.
func (m *Metrics) RequestStart() { m.inflight.Add(1) }

// RequestEnd records one finished request.
func (m *Metrics) RequestEnd(endpoint string, code int, elapsed time.Duration) {
	m.inflight.Add(-1)
	m.counter(endpoint, code).Add(1)
	m.histogram(endpoint).observe(elapsed)
}

// InFlight returns the current in-flight request count.
func (m *Metrics) InFlight() int64 { return m.inflight.Load() }

// PanicRecovered counts one handler panic turned into a 500.
func (m *Metrics) PanicRecovered() { m.panics.Add(1) }

// Panics returns the recovered-panic count.
func (m *Metrics) Panics() uint64 { return m.panics.Load() }

// LoadShed counts one request refused with a 503 by the in-flight bound.
func (m *Metrics) LoadShed() { m.shed.Add(1) }

// Sheds returns the load-shed count.
func (m *Metrics) Sheds() uint64 { return m.shed.Load() }

// BatchObserve records one answered /batch request: pairs answered
// under the codec+op labels, and the op's compute+encode latency.
func (m *Metrics) BatchObserve(codec, op string, pairs int, elapsed time.Duration) {
	key := codec + "\xff" + op
	m.labelled(&m.batchRequests, key).Add(1)
	m.labelled(&m.batchPairs, key).Add(uint64(pairs))
	m.mu.Lock()
	h, ok := m.batchDur[op]
	if !ok {
		h = &latencyHistogram{}
		m.batchDur[op] = h
	}
	m.mu.Unlock()
	h.observe(elapsed)
}

// BatchPairs returns the total pairs answered by /batch across codecs
// and ops (the load generator asserts on it).
func (m *Metrics) BatchPairs() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := uint64(0)
	for _, c := range m.batchPairs {
		total += c.Load()
	}
	return total
}

func (m *Metrics) labelled(set *map[string]*atomic.Uint64, key string) *atomic.Uint64 {
	m.mu.Lock()
	c, ok := (*set)[key]
	if !ok {
		c = &atomic.Uint64{}
		(*set)[key] = c
	}
	m.mu.Unlock()
	return c
}

func (h *latencyHistogram) observe(elapsed time.Duration) {
	i := sort.SearchFloat64s(latencyBuckets, elapsed.Seconds())
	h.buckets[i].Add(1)
	h.sumNS.Add(uint64(elapsed.Nanoseconds()))
	h.count.Add(1)
}

func (m *Metrics) counter(endpoint string, code int) *atomic.Uint64 {
	key := endpoint + "\xff" + strconv.Itoa(code)
	m.mu.Lock()
	c, ok := m.requests[key]
	if !ok {
		c = &atomic.Uint64{}
		m.requests[key] = c
	}
	m.mu.Unlock()
	return c
}

func (m *Metrics) histogram(endpoint string) *latencyHistogram {
	m.mu.Lock()
	h, ok := m.durations[endpoint]
	if !ok {
		h = &latencyHistogram{}
		m.durations[endpoint] = h
	}
	m.mu.Unlock()
	return h
}

// Requests returns the total request count and the non-2xx count —
// what the load smoke asserts on.
func (m *Metrics) Requests() (total, non2xx uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for key, c := range m.requests {
		n := c.Load()
		total += n
		code := key[len(key)-3:]
		if code[0] != '2' {
			non2xx += n
		}
	}
	return total, non2xx
}

// WriteTo renders the exposition in Prometheus text format. cache and
// pool may be nil. Families and label sets are emitted in sorted order
// so two scrapes of the same state are byte-identical.
func (m *Metrics) WriteTo(w io.Writer, cache *RouteCache, pool *Pool) {
	fmt.Fprintf(w, "# HELP hbd_up 1 while the daemon is serving.\n# TYPE hbd_up gauge\nhbd_up 1\n")
	fmt.Fprintf(w, "# HELP hbd_uptime_seconds Seconds since the daemon started.\n# TYPE hbd_uptime_seconds gauge\nhbd_uptime_seconds %g\n",
		time.Since(m.start).Seconds())
	fmt.Fprintf(w, "# HELP hbd_inflight_requests Requests currently being served.\n# TYPE hbd_inflight_requests gauge\nhbd_inflight_requests %d\n",
		m.inflight.Load())
	fmt.Fprintf(w, "# HELP hbd_panics_total Handler panics recovered and converted to 500s.\n# TYPE hbd_panics_total counter\nhbd_panics_total %d\n",
		m.panics.Load())
	fmt.Fprintf(w, "# HELP hbd_load_shed_total Requests refused with 503 by the in-flight bound.\n# TYPE hbd_load_shed_total counter\nhbd_load_shed_total %d\n",
		m.shed.Load())

	m.mu.Lock()
	reqKeys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	durKeys := make([]string, 0, len(m.durations))
	for k := range m.durations {
		durKeys = append(durKeys, k)
	}
	m.mu.Unlock()
	sort.Strings(reqKeys)
	sort.Strings(durKeys)

	fmt.Fprintf(w, "# HELP hbd_requests_total Requests served, by endpoint and status code.\n# TYPE hbd_requests_total counter\n")
	for _, k := range reqKeys {
		m.mu.Lock()
		c := m.requests[k]
		m.mu.Unlock()
		sep := len(k) - 4 // "\xff" + 3-digit code
		fmt.Fprintf(w, "hbd_requests_total{endpoint=%q,code=%q} %d\n", k[:sep], k[sep+1:], c.Load())
	}

	fmt.Fprintf(w, "# HELP hbd_request_seconds Request latency, by endpoint.\n# TYPE hbd_request_seconds histogram\n")
	for _, ep := range durKeys {
		m.mu.Lock()
		h := m.durations[ep]
		m.mu.Unlock()
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "hbd_request_seconds_bucket{endpoint=%q,le=%q} %d\n", ep, formatFloat(ub), cum)
		}
		cum += h.buckets[len0].Load()
		fmt.Fprintf(w, "hbd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "hbd_request_seconds_sum{endpoint=%q} %g\n", ep, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(w, "hbd_request_seconds_count{endpoint=%q} %d\n", ep, h.count.Load())
	}

	m.mu.Lock()
	batchKeys := make([]string, 0, len(m.batchRequests))
	for k := range m.batchRequests {
		batchKeys = append(batchKeys, k)
	}
	batchOps := make([]string, 0, len(m.batchDur))
	for k := range m.batchDur {
		batchOps = append(batchOps, k)
	}
	m.mu.Unlock()
	sort.Strings(batchKeys)
	sort.Strings(batchOps)

	fmt.Fprintf(w, "# HELP hbd_batch_requests_total Batch requests answered, by codec and op.\n# TYPE hbd_batch_requests_total counter\n")
	for _, k := range batchKeys {
		m.mu.Lock()
		c := m.batchRequests[k]
		m.mu.Unlock()
		codec, op, _ := strings.Cut(k, "\xff")
		fmt.Fprintf(w, "hbd_batch_requests_total{codec=%q,op=%q} %d\n", codec, op, c.Load())
	}
	fmt.Fprintf(w, "# HELP hbd_batch_pairs_total Pairs answered by /batch, by codec and op.\n# TYPE hbd_batch_pairs_total counter\n")
	for _, k := range batchKeys {
		m.mu.Lock()
		c := m.batchPairs[k]
		m.mu.Unlock()
		if c == nil {
			continue
		}
		codec, op, _ := strings.Cut(k, "\xff")
		fmt.Fprintf(w, "hbd_batch_pairs_total{codec=%q,op=%q} %d\n", codec, op, c.Load())
	}
	fmt.Fprintf(w, "# HELP hbd_batch_op_seconds Batch compute+encode latency, by op.\n# TYPE hbd_batch_op_seconds histogram\n")
	for _, op := range batchOps {
		m.mu.Lock()
		h := m.batchDur[op]
		m.mu.Unlock()
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "hbd_batch_op_seconds_bucket{op=%q,le=%q} %d\n", op, formatFloat(ub), cum)
		}
		cum += h.buckets[len0].Load()
		fmt.Fprintf(w, "hbd_batch_op_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", op, cum)
		fmt.Fprintf(w, "hbd_batch_op_seconds_sum{op=%q} %g\n", op, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(w, "hbd_batch_op_seconds_count{op=%q} %d\n", op, h.count.Load())
	}

	if cache != nil {
		hits, misses, dedups := cache.Stats()
		fmt.Fprintf(w, "# HELP hbd_route_cache_hits_total Route-cache hits.\n# TYPE hbd_route_cache_hits_total counter\nhbd_route_cache_hits_total %d\n", hits)
		fmt.Fprintf(w, "# HELP hbd_route_cache_misses_total Route-cache misses (computations).\n# TYPE hbd_route_cache_misses_total counter\nhbd_route_cache_misses_total %d\n", misses)
		fmt.Fprintf(w, "# HELP hbd_route_cache_dedup_total Requests coalesced onto another's computation.\n# TYPE hbd_route_cache_dedup_total counter\nhbd_route_cache_dedup_total %d\n", dedups)
		fmt.Fprintf(w, "# HELP hbd_route_cache_entries Resident route-cache entries.\n# TYPE hbd_route_cache_entries gauge\nhbd_route_cache_entries %d\n", cache.Len())
	}
	if pool != nil {
		fmt.Fprintf(w, "# HELP hbd_pool_instances Resident HB instances.\n# TYPE hbd_pool_instances gauge\nhbd_pool_instances %d\n", pool.Len())
		fmt.Fprintf(w, "# HELP hbd_pool_evictions_total Instances evicted by the pool bound.\n# TYPE hbd_pool_evictions_total counter\nhbd_pool_evictions_total %d\n", pool.Evictions())
	}
}

// formatFloat renders bucket bounds the way Prometheus clients expect
// (shortest representation, no exponent for these magnitudes).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
