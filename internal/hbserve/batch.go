package hbserve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
)

// The /batch endpoint answers thousands of (src, dst) pairs per POST,
// amortising the per-request overhead (HTTP parsing, dispatch, encode)
// that dwarfs the label-arithmetic kernel on single-pair GETs. Requests
// and responses are columnar in two codecs selected by Content-Type:
//
//   - application/json — columns as JSON arrays
//     ({"m":2,"n":3,"op":"route","src":[...],"dst":[...]});
//   - application/x-hbbatch — length-prefixed little-endian binary
//     frames (see README "Batch serving & snapshots" for the layout).
//
// Four ops share the request shape: dist and route run on the
// zero-alloc core.RouteBatch kernel, paths bundles Theorem 5 disjoint
// paths per pair, and faultroute applies one shared fault set to the
// whole request through the resident incremental router. Responses are
// columnar too: a per-pair status column plus offset columns into one
// flat node arena, which is exactly the kernel's in-memory layout — the
// encoders serialise it without reshaping.

const (
	// batchBinMagic opens every binary frame stream ("HBB1" on the wire).
	batchBinMagic uint32 = 0x31424248
	// batchBinVersion is the framing version; both sides reject others.
	batchBinVersion uint16 = 1
	// maxBatchPairs bounds one request; beyond it the client should
	// split the batch (the response would exceed sane body sizes).
	maxBatchPairs = 1 << 16
	// maxBatchBody bounds the request body read.
	maxBatchBody = 16 << 20
	// batchCacheMaxPairs bounds which batches enter the route cache:
	// small batches (conformance probes, repeated UI queries) hit; load
	// test batches of ~1k pairs bypass so the cache is not churned by
	// high-cardinality bodies.
	batchCacheMaxPairs = 256

	ctJSON     = "application/json"
	ctBatchBin = "application/x-hbbatch"
)

// Binary op codes (wire values, stable).
const (
	batchOpDist       uint8 = 0
	batchOpRoute      uint8 = 1
	batchOpPaths      uint8 = 2
	batchOpFaultRoute uint8 = 3
)

var batchOpNames = map[uint8]string{
	batchOpDist:       "dist",
	batchOpRoute:      "route",
	batchOpPaths:      "paths",
	batchOpFaultRoute: "faultroute",
}

var batchOpCodes = map[string]uint8{
	"dist":       batchOpDist,
	"route":      batchOpRoute,
	"paths":      batchOpPaths,
	"faultroute": batchOpFaultRoute,
}

// batchRequest is one decoded /batch request, codec-independent.
type batchRequest struct {
	codec  string // "json" or "bin"
	op     uint8
	m, n   int
	faults []int
	src    []int
	dst    []int
}

// batchScratch is the pooled per-request working set: the kernel's
// column scratch plus the extra columns the composed ops (paths,
// faultroute) fill.
type batchScratch struct {
	bs    core.BatchScratch
	off   []int32 // faultroute: node offsets; paths: pair -> path offsets
	poff  []int32 // paths: path -> node offsets
	nodes []int
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// handleBatch is the /batch endpoint.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, &httpError{code: http.StatusMethodNotAllowed, msg: "/batch takes POST"})
		return
	}
	req, err := parseBatchRequest(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	d := Dims{M: req.m, N: req.n}
	top, err := s.pool.Get(d)
	if err != nil {
		writeErr(w, badRequest("%v", err))
		return
	}
	if len(req.faults) > 0 && req.op != batchOpFaultRoute {
		writeErr(w, badRequest("faults only apply to op=faultroute"))
		return
	}
	for _, f := range req.faults {
		if !top.ValidNode(f) {
			writeErr(w, badRequest("fault %d out of range [0,%d)", f, top.Order()))
			return
		}
	}
	if err := checkDeadline(r); err != nil {
		writeErr(w, err)
		return
	}

	start := time.Now()
	compute := func() ([]byte, error) { return s.computeBatch(top, d, req) }
	var (
		body  []byte
		cache = "bypass"
	)
	if req.cacheable() {
		var hit bool
		body, hit, err = s.cache.GetOrCompute(req.cacheKey(), compute)
		cache = cacheState(hit)
	} else {
		body, err = compute()
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	s.metrics.BatchObserve(req.codec, batchOpNames[req.op], len(req.src), time.Since(start))
	writeBody(w, req.contentType(), cache, body)
}

func (r *batchRequest) contentType() string {
	if r.codec == "bin" {
		return ctBatchBin
	}
	return ctJSON
}

// cacheable: fault sets are high-cardinality (same policy as
// /faultroute) and big batches would churn the LRU for little reuse.
func (r *batchRequest) cacheable() bool {
	return r.op != batchOpFaultRoute && len(r.src) <= batchCacheMaxPairs
}

// cacheKey is the full request identity: codec (bodies differ per
// codec), op, dims, and the raw pair columns — no hashing, so distinct
// batches can never alias.
func (r *batchRequest) cacheKey() string {
	key := make([]byte, 0, 32+8*len(r.src))
	key = append(key, "batch|"...)
	key = append(key, r.codec...)
	key = append(key, '|')
	key = append(key, batchOpNames[r.op]...)
	key = strconv.AppendInt(append(key, '|'), int64(r.m), 10)
	key = strconv.AppendInt(append(key, '|'), int64(r.n), 10)
	key = append(key, '|')
	for i := range r.src {
		key = binary.LittleEndian.AppendUint32(key, uint32(r.src[i]))
		key = binary.LittleEndian.AppendUint32(key, uint32(r.dst[i]))
	}
	return string(key)
}

// EncodeBatchJSONRequest renders a /batch request body in the JSON
// codec (the load generator prebuilds its bodies with it).
func EncodeBatchJSONRequest(op string, m, n int, src, dst []int) []byte {
	out := make([]byte, 0, 48+12*(len(src)+len(dst)))
	out = append(out, `{"m":`...)
	out = strconv.AppendInt(out, int64(m), 10)
	out = append(out, `,"n":`...)
	out = strconv.AppendInt(out, int64(n), 10)
	out = append(out, `,"op":"`...)
	out = append(out, op...)
	out = append(out, '"')
	out = appendJSONInts(out, "src", src)
	out = appendJSONInts(out, "dst", dst)
	return append(out, '}')
}

// EncodeBatchBinRequest renders a /batch request body in the binary
// codec: header frame, then faults, src and dst column frames.
func EncodeBatchBinRequest(op string, m, n int, faults, src, dst []int) ([]byte, error) {
	code, ok := batchOpCodes[op]
	if !ok {
		return nil, fmt.Errorf("hbserve: unknown batch op %q", op)
	}
	le := binary.LittleEndian
	out := make([]byte, 0, 4+24+12+4*(len(faults)+len(src)+len(dst)))
	out = le.AppendUint32(out, 24)
	out = le.AppendUint32(out, batchBinMagic)
	out = le.AppendUint16(out, batchBinVersion)
	out = append(out, code, 0)
	out = le.AppendUint32(out, uint32(m))
	out = le.AppendUint32(out, uint32(n))
	out = le.AppendUint32(out, uint32(len(src)))
	out = le.AppendUint32(out, uint32(len(faults)))
	for _, col := range [][]int{faults, src, dst} {
		out = le.AppendUint32(out, uint32(4*len(col)))
		for _, v := range col {
			out = le.AppendUint32(out, uint32(v))
		}
	}
	return out, nil
}

// request decoding ---------------------------------------------------

func parseBatchRequest(r *http.Request) (*batchRequest, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBatchBody))
	if err != nil {
		return nil, badRequest("reading body: %v", err)
	}
	return parseBatchBody(r.Header.Get("Content-Type"), body)
}

// parseBatchBody decodes an already-buffered /batch body in whichever
// codec the Content-Type selects; the replica handler and the router's
// scatter path share it, so a body is valid (or rejected) identically
// on both tiers.
func parseBatchBody(ct string, body []byte) (*batchRequest, error) {
	var req *batchRequest
	var err error
	switch {
	case ct == ctBatchBin:
		req, err = parseBatchBin(body)
	case ct == "" || ct == ctJSON || len(ct) > len(ctJSON) && ct[:len(ctJSON)] == ctJSON:
		req, err = parseBatchJSON(body)
	default:
		return nil, &httpError{code: http.StatusUnsupportedMediaType,
			msg: fmt.Sprintf("unsupported Content-Type %q (want %s or %s)", ct, ctJSON, ctBatchBin)}
	}
	if err != nil {
		return nil, err
	}
	if len(req.src) != len(req.dst) {
		return nil, badRequest("src has %d entries, dst has %d", len(req.src), len(req.dst))
	}
	if len(req.src) > maxBatchPairs {
		return nil, badRequest("%d pairs over the per-request cap %d", len(req.src), maxBatchPairs)
	}
	return req, nil
}

func parseBatchJSON(body []byte) (*batchRequest, error) {
	var jr struct {
		M      *int   `json:"m"`
		N      *int   `json:"n"`
		Op     string `json:"op"`
		Faults []int  `json:"faults"`
		Src    []int  `json:"src"`
		Dst    []int  `json:"dst"`
	}
	if err := json.Unmarshal(body, &jr); err != nil {
		return nil, badRequest("bad JSON body: %v", err)
	}
	req := &batchRequest{codec: "json", m: 2, n: 3, faults: jr.Faults, src: jr.Src, dst: jr.Dst}
	if jr.M != nil {
		req.m = *jr.M
	}
	if jr.N != nil {
		req.n = *jr.N
	}
	opName := jr.Op
	if opName == "" {
		opName = "route"
	}
	op, ok := batchOpCodes[opName]
	if !ok {
		return nil, badRequest("unknown op %q (want dist, route, paths or faultroute)", opName)
	}
	req.op = op
	return req, nil
}

// nextFrame pops one length-prefixed frame.
func nextFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("truncated frame: %d bytes left, need a 4-byte length", len(data))
	}
	n := binary.LittleEndian.Uint32(data)
	if uint64(n) > uint64(len(data)-4) {
		return nil, nil, fmt.Errorf("frame length %d exceeds remaining %d bytes", n, len(data)-4)
	}
	return data[4 : 4+n], data[4+n:], nil
}

// parseBatchBin decodes the binary framing: header, faults, src, dst.
func parseBatchBin(body []byte) (*batchRequest, error) {
	le := binary.LittleEndian
	hdr, rest, err := nextFrame(body)
	if err != nil {
		return nil, badRequest("bad binary batch: %v", err)
	}
	if len(hdr) != 24 {
		return nil, badRequest("bad binary batch: header frame is %d bytes, want 24", len(hdr))
	}
	if m := le.Uint32(hdr); m != batchBinMagic {
		return nil, badRequest("bad binary batch: magic %#x, want %#x", m, batchBinMagic)
	}
	if v := le.Uint16(hdr[4:]); v != batchBinVersion {
		return nil, badRequest("bad binary batch: version %d, want %d", v, batchBinVersion)
	}
	op := hdr[6]
	if _, ok := batchOpNames[op]; !ok {
		return nil, badRequest("bad binary batch: unknown op code %d", op)
	}
	req := &batchRequest{
		codec: "bin",
		op:    op,
		m:     int(le.Uint32(hdr[8:])),
		n:     int(le.Uint32(hdr[12:])),
	}
	npairs := int(le.Uint32(hdr[16:]))
	nfaults := int(le.Uint32(hdr[20:]))
	if npairs > maxBatchPairs {
		return nil, badRequest("%d pairs over the per-request cap %d", npairs, maxBatchPairs)
	}
	if req.faults, rest, err = readU32Column(rest, nfaults, "faults"); err != nil {
		return nil, err
	}
	if req.src, rest, err = readU32Column(rest, npairs, "src"); err != nil {
		return nil, err
	}
	if req.dst, rest, err = readU32Column(rest, npairs, "dst"); err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, badRequest("bad binary batch: %d trailing bytes after dst frame", len(rest))
	}
	return req, nil
}

func readU32Column(data []byte, want int, name string) (vals []int, rest []byte, err error) {
	payload, rest, err := nextFrame(data)
	if err != nil {
		return nil, nil, badRequest("bad binary batch: %s frame: %v", name, err)
	}
	if len(payload) != 4*want {
		return nil, nil, badRequest("bad binary batch: %s frame is %d bytes, header promised %d values", name, len(payload), want)
	}
	vals = make([]int, want)
	for i := range vals {
		vals[i] = int(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return vals, rest, nil
}

// computation --------------------------------------------------------

// batchColumns is the codec-independent answer of one batch: a status
// column plus op-dependent columns over one flat node arena.
type batchColumns struct {
	op     uint8
	m, n   int
	faults []int   // echoed for faultroute
	status []uint8 // per pair
	dist   []int32 // dist, route
	off    []int32 // route/faultroute: pair -> node offsets; paths: pair -> path offsets
	poff   []int32 // paths: path -> node offsets
	nodes  []int
}

func (s *Server) computeBatch(top core.Topology, d Dims, req *batchRequest) ([]byte, error) {
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	cols := batchColumns{op: req.op, m: req.m, n: req.n, faults: req.faults}

	switch req.op {
	case batchOpDist, batchOpRoute:
		kop := core.BatchDist
		if req.op == batchOpRoute {
			kop = core.BatchRoute
		}
		if err := core.RouteBatch(top, kop, req.src, req.dst, s.batchWorkers, &sc.bs); err != nil {
			return nil, badRequest("%v", err)
		}
		cols.status, cols.dist, cols.off, cols.nodes = sc.bs.Status, sc.bs.Dist, sc.bs.Off, sc.bs.Nodes

	case batchOpFaultRoute:
		if err := s.faultRouteBatch(top, d, req, sc); err != nil {
			return nil, err
		}
		cols.status, cols.off, cols.nodes = sc.bs.Status, sc.off, sc.nodes

	case batchOpPaths:
		pathsBatch(top, req, sc)
		cols.status, cols.off, cols.poff, cols.nodes = sc.bs.Status, sc.off, sc.poff, sc.nodes
	}

	if req.codec == "bin" {
		return encodeBatchBin(&cols), nil
	}
	return encodeBatchJSON(&cols), nil
}

// faultRouteBatch routes every pair around one shared fault set through
// the resident incremental router; the SetFaults/Route sequence holds
// the instance lock so the whole batch sees one consistent fault set.
func (s *Server) faultRouteBatch(top core.Topology, d Dims, req *batchRequest, sc *batchScratch) error {
	ir, err := s.routerFor(d, top)
	if err != nil {
		return badRequest("%v", err)
	}
	pairs := len(req.src)
	sc.bs.Status = sc.bs.Status[:0]
	sc.off = append(sc.off[:0], 0)
	sc.nodes = sc.nodes[:0]
	ir.mu.Lock()
	defer ir.mu.Unlock()
	if err := ir.r.SetFaults(req.faults); err != nil {
		return badRequest("%v", err)
	}
	for i := 0; i < pairs; i++ {
		u, v := req.src[i], req.dst[i]
		status := core.BatchOK
		switch {
		case !top.ValidNode(u) || !top.ValidNode(v):
			status = core.BatchBadNode
		default:
			path, err := ir.r.Route(u, v)
			if err != nil {
				// A per-pair routing failure (faulty endpoint, fault set
				// disconnects the pair) is an answer, not a request error.
				status = core.BatchFailed
			} else {
				sc.nodes = append(sc.nodes, path...)
			}
		}
		sc.bs.Status = append(sc.bs.Status, status)
		sc.off = append(sc.off, int32(len(sc.nodes)))
	}
	return nil
}

// pathsBatch bundles the Theorem 5 disjoint paths per pair into the
// two-level columnar layout (pair -> path offsets, path -> node
// offsets).
func pathsBatch(top core.Topology, req *batchRequest, sc *batchScratch) {
	sc.bs.Status = sc.bs.Status[:0]
	sc.off = append(sc.off[:0], 0)
	sc.poff = append(sc.poff[:0], 0)
	sc.nodes = sc.nodes[:0]
	npaths := 0
	for i := range req.src {
		u, v := req.src[i], req.dst[i]
		status := core.BatchOK
		switch {
		case !top.ValidNode(u) || !top.ValidNode(v):
			status = core.BatchBadNode
		default:
			paths, err := top.DisjointPaths(u, v)
			if err != nil {
				status = core.BatchFailed // equal endpoints
			} else {
				for _, p := range paths {
					sc.nodes = append(sc.nodes, p...)
					sc.poff = append(sc.poff, int32(len(sc.nodes)))
					npaths++
				}
			}
		}
		sc.bs.Status = append(sc.bs.Status, status)
		sc.off = append(sc.off, int32(npaths))
	}
}

// encoding -----------------------------------------------------------

// encodeBatchJSON renders the columns by hand (strconv appends into one
// pre-sized buffer): at thousands of pairs per request, reflective
// json.Marshal of the arrays would dominate the batch compute.
func encodeBatchJSON(c *batchColumns) []byte {
	out := make([]byte, 0, 64+12*len(c.status)*3+12*len(c.nodes))
	out = append(out, `{"m":`...)
	out = strconv.AppendInt(out, int64(c.m), 10)
	out = append(out, `,"n":`...)
	out = strconv.AppendInt(out, int64(c.n), 10)
	out = append(out, `,"op":"`...)
	out = append(out, batchOpNames[c.op]...)
	out = append(out, `","count":`...)
	out = strconv.AppendInt(out, int64(len(c.status)), 10)
	if c.op == batchOpFaultRoute {
		out = appendJSONInts(out, "faults", c.faults)
	}
	out = appendJSONBytes(out, "status", c.status)
	switch c.op {
	case batchOpDist:
		out = appendJSONInt32s(out, "dist", c.dist)
	case batchOpRoute:
		out = appendJSONInt32s(out, "dist", c.dist)
		out = appendJSONInt32s(out, "off", c.off)
		out = appendJSONInts(out, "nodes", c.nodes)
	case batchOpFaultRoute:
		out = appendJSONInt32s(out, "off", c.off)
		out = appendJSONInts(out, "nodes", c.nodes)
	case batchOpPaths:
		out = appendJSONInt32s(out, "pair_off", c.off)
		out = appendJSONInt32s(out, "path_off", c.poff)
		out = appendJSONInts(out, "nodes", c.nodes)
	}
	return append(out, "}\n"...)
}

func appendJSONBytes(out []byte, name string, vals []uint8) []byte {
	out = appendJSONName(out, name)
	for i, v := range vals {
		if i > 0 {
			out = append(out, ',')
		}
		out = strconv.AppendInt(out, int64(v), 10)
	}
	return append(out, ']')
}

func appendJSONInt32s(out []byte, name string, vals []int32) []byte {
	out = appendJSONName(out, name)
	for i, v := range vals {
		if i > 0 {
			out = append(out, ',')
		}
		out = strconv.AppendInt(out, int64(v), 10)
	}
	return append(out, ']')
}

func appendJSONInts(out []byte, name string, vals []int) []byte {
	out = appendJSONName(out, name)
	for i, v := range vals {
		if i > 0 {
			out = append(out, ',')
		}
		out = strconv.AppendInt(out, int64(v), 10)
	}
	return append(out, ']')
}

func appendJSONName(out []byte, name string) []byte {
	out = append(out, ',', '"')
	out = append(out, name...)
	return append(out, '"', ':', '[')
}

// encodeBatchBin renders the response framing: a header frame (magic,
// version, op, pair count, total path count) followed by one frame per
// column in the README-documented order.
func encodeBatchBin(c *batchColumns) []byte {
	le := binary.LittleEndian
	npairs := len(c.status)
	totalPaths := 0
	if c.op == batchOpPaths {
		totalPaths = len(c.poff) - 1
	}
	size := 4 + 16 + (4 + npairs) + (4 + 4*len(c.dist)) + (4 + 4*len(c.off)) + (4 + 4*len(c.poff)) + (4 + 4*len(c.nodes))
	out := make([]byte, 0, size)

	out = le.AppendUint32(out, 16) // header frame
	out = le.AppendUint32(out, batchBinMagic)
	out = le.AppendUint16(out, batchBinVersion)
	out = append(out, c.op, 0)
	out = le.AppendUint32(out, uint32(npairs))
	out = le.AppendUint32(out, uint32(totalPaths))

	out = le.AppendUint32(out, uint32(npairs)) // status frame
	out = append(out, c.status...)

	if c.op == batchOpDist || c.op == batchOpRoute {
		out = appendBinInt32Frame(out, c.dist)
	}
	switch c.op {
	case batchOpRoute, batchOpFaultRoute:
		out = appendBinInt32Frame(out, c.off)
		out = appendBinIntFrame(out, c.nodes)
	case batchOpPaths:
		out = appendBinInt32Frame(out, c.off)
		out = appendBinInt32Frame(out, c.poff)
		out = appendBinIntFrame(out, c.nodes)
	}
	return out
}

func appendBinInt32Frame(out []byte, vals []int32) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(4*len(vals)))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint32(out, uint32(v))
	}
	return out
}

func appendBinIntFrame(out []byte, vals []int) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(4*len(vals)))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint32(out, uint32(v))
	}
	return out
}

func cacheState(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}
