package hbserve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/snapshot"
)

// Snapshot serving: hbd -snapshotdir points at a directory of
// *.hbsnap artifacts produced by hbtables -snapshot. Each one carries
// the exact all-pairs distance histogram, per-node eccentricities and
// the Theorem 5 path table for one HB(m,n), checksum- and
// version-gated, mmap-loaded where the platform allows. For covered
// dims, /estimate stops sampling: the answer is exact, O(1), and
// rendered once at load time so every response is byte-identical.

// snapshotEntry is one loaded artifact plus its pre-rendered /estimate
// body.
type snapshotEntry struct {
	snap         *snapshot.Snapshot
	estimateBody []byte
}

// exactEstimateResponse is the snapshot-backed /estimate answer. It
// deliberately shares field names with estimateResponse where the
// semantics coincide and adds "exact":true so clients can tell a
// precomputed answer from a sampled one.
type exactEstimateResponse struct {
	M     int  `json:"m"`
	N     int  `json:"n"`
	Order int  `json:"order"`
	Exact bool `json:"exact"`

	Diameter        int `json:"diameter"`
	DiameterFormula int `json:"diameter_formula"`
	EccMin          int `json:"ecc_min"`
	EccMax          int `json:"ecc_max"`

	MeanDistance float64   `json:"mean_distance"`
	Hist         []int64   `json:"hist"`
	Fractions    []float64 `json:"fractions"`
}

// renderEstimate builds the exact /estimate body for a loaded snapshot.
func renderEstimate(s *snapshot.Snapshot, diameterFormula int) ([]byte, error) {
	lo, hi := s.EccentricityRange()
	return marshalBody(exactEstimateResponse{
		M: s.M, N: s.N, Order: s.Order,
		Exact:           true,
		Diameter:        s.Diameter,
		DiameterFormula: diameterFormula,
		EccMin:          lo,
		EccMax:          hi,
		MeanDistance:    s.MeanDistance(),
		Hist:            s.Hist,
		Fractions:       s.Fractions(),
	})
}

// LoadSnapshots loads every *.hbsnap under dir and registers it for
// serving. It returns how many artifacts were loaded; any unreadable,
// corrupt or wrong-version file aborts the load with an error naming
// the file, so a bad deploy fails at startup rather than serving a
// partial table.
func (s *Server) LoadSnapshots(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("hbserve: snapshot dir: %w", err)
	}
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), snapshot.FileSuffix) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		snap, err := snapshot.Load(path)
		if err != nil {
			return loaded, fmt.Errorf("hbserve: snapshot %s: %w", path, err)
		}
		d := Dims{M: snap.M, N: snap.N}
		top, err := s.pool.Get(d)
		if err != nil {
			snap.Close()
			return loaded, fmt.Errorf("hbserve: snapshot %s: %w", path, err)
		}
		body, err := renderEstimate(snap, top.DiameterFormula())
		if err != nil {
			snap.Close()
			return loaded, fmt.Errorf("hbserve: snapshot %s: %w", path, err)
		}
		s.snapMu.Lock()
		if prev := s.snapshots[d]; prev != nil {
			prev.snap.Close()
		}
		s.snapshots[d] = &snapshotEntry{snap: snap, estimateBody: body}
		s.snapMu.Unlock()
		loaded++
	}
	return loaded, nil
}

// CloseSnapshots unmaps every loaded snapshot (shutdown path).
func (s *Server) CloseSnapshots() {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	for d, e := range s.snapshots {
		e.snap.Close()
		delete(s.snapshots, d)
	}
}

// snapshotFor returns the loaded snapshot covering d, or nil.
func (s *Server) snapshotFor(d Dims) *snapshotEntry {
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	return s.snapshots[d]
}
