package hbserve

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestLoadAgainstLiveServer(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load run in -short")
	}
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep := &BenchReport{M: 1, N: 3}
	for _, mix := range []string{"uniform", "permutation"} {
		res, err := Load(LoadConfig{
			BaseURL:  ts.URL,
			M:        1,
			N:        3,
			Endpoint: "route",
			Mix:      mix,
			QPS:      400,
			Duration: 500 * time.Millisecond,
			Workers:  8,
			Seed:     1,
		})
		if err != nil {
			t.Fatalf("%s: %v", mix, err)
		}
		if res.Requests == 0 {
			t.Fatalf("%s: no requests completed", mix)
		}
		if res.Non2xx != 0 {
			t.Fatalf("%s: %d non-2xx responses", mix, res.Non2xx)
		}
		if res.LatencyMS.P50 <= 0 || res.LatencyMS.P99 < res.LatencyMS.P50 {
			t.Errorf("%s: implausible percentiles %+v", mix, res.LatencyMS)
		}
		rep.Results = append(rep.Results, res)
	}

	// HB(1,3) has 48 nodes: both mixes together far exceed the distinct
	// pair count, so the cache must be taking hits by now.
	if err := rep.ScrapeCacheStats(ts.URL); err != nil {
		t.Fatal(err)
	}
	if rep.Cache.Hits == 0 {
		t.Error("no cache hits after repeated mixes on a 48-node instance")
	}
	if rep.Cache.HitRate <= 0 {
		t.Errorf("hit rate %v", rep.Cache.HitRate)
	}

	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Results) != 2 || back.TotalNon2xx() != 0 {
		t.Errorf("round-tripped report %+v", back)
	}
}

func TestLoadValidation(t *testing.T) {
	if _, err := Load(LoadConfig{QPS: 0, Duration: time.Second}); err == nil {
		t.Error("accepted qps=0")
	}
	if _, err := Load(LoadConfig{QPS: 10, Duration: time.Second, M: 2, N: 3, Mix: "nope", BaseURL: "http://x"}); err == nil {
		t.Error("accepted unknown mix")
	}
	if _, err := Load(LoadConfig{QPS: 10, Duration: time.Second, M: 1, N: 2, Mix: "uniform", BaseURL: "http://x"}); err == nil {
		t.Error("accepted invalid dims")
	}
}

func TestPairSources(t *testing.T) {
	order := 48
	perm := make([]int, order)
	for i := range perm {
		perm[i] = (i + 7) % order
	}
	next := makePairSource("permutation", nil, perm, order)
	seen := map[[2]int]bool{}
	for i := 0; i < 2*order; i++ {
		p := next()
		if p[0] == p[1] {
			t.Fatalf("self pair %v", p)
		}
		seen[p] = true
	}
	// The second lap repeats the first: exactly `order` distinct pairs.
	if len(seen) != order {
		t.Errorf("permutation mix produced %d distinct pairs, want %d", len(seen), order)
	}
}
