package hbserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

func TestLoadAgainstLiveServer(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load run in -short")
	}
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep := &BenchReport{M: 1, N: 3}
	for _, mix := range []string{"uniform", "permutation"} {
		res, err := Load(LoadConfig{
			BaseURL:  ts.URL,
			M:        1,
			N:        3,
			Endpoint: "route",
			Mix:      mix,
			QPS:      400,
			Duration: 500 * time.Millisecond,
			Workers:  8,
			Seed:     1,
		})
		if err != nil {
			t.Fatalf("%s: %v", mix, err)
		}
		if res.Requests == 0 {
			t.Fatalf("%s: no requests completed", mix)
		}
		if res.Non2xx != 0 {
			t.Fatalf("%s: %d non-2xx responses", mix, res.Non2xx)
		}
		if res.LatencyMS.P50 <= 0 || res.LatencyMS.P99 < res.LatencyMS.P50 {
			t.Errorf("%s: implausible percentiles %+v", mix, res.LatencyMS)
		}
		rep.Results = append(rep.Results, res)
	}

	// HB(1,3) has 48 nodes: both mixes together far exceed the distinct
	// pair count, so the cache must be taking hits by now.
	if err := rep.ScrapeCacheStats(ts.URL); err != nil {
		t.Fatal(err)
	}
	if rep.Cache.Hits == 0 {
		t.Error("no cache hits after repeated mixes on a 48-node instance")
	}
	if rep.Cache.HitRate <= 0 {
		t.Errorf("hit rate %v", rep.Cache.HitRate)
	}

	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Results) != 2 || back.TotalNon2xx() != 0 {
		t.Errorf("round-tripped report %+v", back)
	}
}

// TestBatchLoadAgainstLiveServer drives /batch through the load
// generator in both codecs and cross-checks pair accounting against the
// server's own batch counters.
func TestBatchLoadAgainstLiveServer(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load run in -short")
	}
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep := &BenchReport{M: 1, N: 3}
	single, err := Load(LoadConfig{
		BaseURL: ts.URL, M: 1, N: 3, Endpoint: "route", Mix: "uniform",
		QPS: 200, Duration: 400 * time.Millisecond, Workers: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Results = append(rep.Results, single)

	const batch = 64
	for _, codec := range []string{"json", "bin"} {
		res, err := Load(LoadConfig{
			BaseURL: ts.URL, M: 1, N: 3, Endpoint: "route", Mix: "uniform",
			QPS: 200, Duration: 400 * time.Millisecond, Workers: 8, Seed: 2,
			Batch: batch, Codec: codec,
		})
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		if res.Non2xx != 0 {
			t.Fatalf("%s: %d non-2xx responses", codec, res.Non2xx)
		}
		if res.Requests == 0 || res.Pairs != res.Requests*batch {
			t.Fatalf("%s: %d requests, %d pairs (want %d)", codec, res.Requests, res.Pairs, res.Requests*batch)
		}
		if res.RoutesPerSec <= 0 || res.Batch != batch || res.Codec != codec {
			t.Fatalf("%s: result %+v", codec, res)
		}
		rep.Results = append(rep.Results, res)
	}

	// One batched request answers `batch` pairs, so pair throughput must
	// beat the single-query baseline even in a short window.
	if sp := rep.ComputeBatchSpeedup(); sp <= 1 {
		t.Errorf("batch speedup %.2f, want > 1", sp)
	}
	// The server counted every pair the client counted.
	wantPairs := uint64(0)
	for _, r := range rep.Results {
		if r.Batch > 0 {
			wantPairs += uint64(r.Pairs)
		}
	}
	if got := s.Metrics().BatchPairs(); got != wantPairs {
		t.Errorf("server counted %d batch pairs, client %d", got, wantPairs)
	}
}

// TestLoadAccountingExcludesNon2xx: non-2xx responses must be counted
// exactly once in Requests and excluded from the latency population.
// The stub answers ~2/3 of requests with an immediate 503 and the rest
// with a 200 after a 5ms stall; before the fix the fast 503s were both
// double-counted (inflating AchievedQPS) and recorded as latencies
// (dragging p50 under the 5ms floor of any real answer).
func TestLoadAccountingExcludesNon2xx(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load run in -short")
	}
	var ok200, err503 atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		u, _ := strconv.Atoi(r.URL.Query().Get("u"))
		if u%3 != 0 {
			err503.Add(1)
			http.Error(w, "shed", http.StatusServiceUnavailable)
			return
		}
		time.Sleep(5 * time.Millisecond)
		ok200.Add(1)
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	defer ts.Close()

	res, err := Load(LoadConfig{
		BaseURL:  ts.URL,
		M:        1,
		N:        3,
		Endpoint: "route",
		Mix:      "uniform",
		QPS:      400,
		Duration: 400 * time.Millisecond,
		Workers:  8,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	served := int(ok200.Load() + err503.Load())
	if res.Requests != served {
		t.Errorf("Requests = %d, server answered %d (double counting?)", res.Requests, served)
	}
	if res.Non2xx != int(err503.Load()) {
		t.Errorf("Non2xx = %d, server sent %d 503s", res.Non2xx, err503.Load())
	}
	if res.Pairs != int(ok200.Load()) {
		t.Errorf("Pairs = %d, server answered %d 2xx", res.Pairs, ok200.Load())
	}
	if res.Non2xx == 0 || res.Pairs == 0 {
		t.Fatalf("degenerate mix: %d non-2xx, %d ok — stub broken", res.Non2xx, res.Pairs)
	}
	// Every 2xx stalls >= 5ms, so if the fast 503s leaked into the
	// latency population the median would sit far below the floor.
	if res.LatencyMS.P50 < 5 {
		t.Errorf("p50 %.3fms below the 5ms 2xx floor: non-2xx latencies leaked in", res.LatencyMS.P50)
	}
}

func TestLoadValidation(t *testing.T) {
	if _, err := Load(LoadConfig{QPS: 0, Duration: time.Second}); err == nil {
		t.Error("accepted qps=0")
	}
	if _, err := Load(LoadConfig{QPS: 10, Duration: time.Second, M: 2, N: 3, Mix: "nope", BaseURL: "http://x"}); err == nil {
		t.Error("accepted unknown mix")
	}
	if _, err := Load(LoadConfig{QPS: 10, Duration: time.Second, M: 1, N: 2, Mix: "uniform", BaseURL: "http://x"}); err == nil {
		t.Error("accepted invalid dims")
	}
	if _, err := Load(LoadConfig{QPS: 10, Duration: time.Second, M: 1, N: 3, Mix: "uniform", BaseURL: "http://x",
		Batch: 8, Codec: "xml"}); err == nil {
		t.Error("accepted unknown batch codec")
	}
	if _, err := Load(LoadConfig{QPS: 10, Duration: time.Second, M: 1, N: 3, Mix: "uniform", BaseURL: "http://x",
		Batch: 8, Endpoint: "conformance"}); err == nil {
		t.Error("accepted non-batch op endpoint in batch mode")
	}
}

// TestPercentileEdgeCases: the percentile helper must stay total on
// empty and single-element windows (an all-failure run records no
// latencies).
func TestPercentileEdgeCases(t *testing.T) {
	if p := percentile(nil, 0.99); p != 0 {
		t.Errorf("percentile(nil) = %v", p)
	}
	one := []time.Duration{5 * time.Millisecond}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if p := percentile(one, q); p != one[0] {
			t.Errorf("percentile(one, %v) = %v", q, p)
		}
	}
}

// TestDispatchReachesHighQPS: the catch-up dispatcher must hit targets
// far beyond one request per millisecond tick (the old ticker-per-request
// design capped out at ~1k/s).
func TestDispatchReachesHighQPS(t *testing.T) {
	offered, shed := dispatch(20000, 200*time.Millisecond, func() bool { return true })
	if shed != 0 {
		t.Fatalf("shed %d with an always-accepting sink", shed)
	}
	if offered < 2000 {
		t.Fatalf("offered %d requests at 20k qps over 200ms, want thousands", offered)
	}
}

func TestPairSources(t *testing.T) {
	order := 48
	perm := make([]int, order)
	for i := range perm {
		perm[i] = (i + 7) % order
	}
	next := makePairSource("permutation", nil, perm, order)
	seen := map[[2]int]bool{}
	for i := 0; i < 2*order; i++ {
		p := next()
		if p[0] == p[1] {
			t.Fatalf("self pair %v", p)
		}
		seen[p] = true
	}
	// The second lap repeats the first: exactly `order` distinct pairs.
	if len(seen) != order {
		t.Errorf("permutation mix produced %d distinct pairs, want %d", len(seen), order)
	}
}
