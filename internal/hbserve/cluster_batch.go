package hbserve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// Scatter-gather batch routing. A /batch body that reaches the router
// is decoded (both codecs), its pairs are partitioned by their
// (m,n,u,v) ring owner sets, and one sub-batch per chosen replica is
// fanned out concurrently over the keep-alive transport — so a single
// client batch is answered by the whole fleet instead of serializing
// on the one replica that owns the (m,n) header key. The sub-responses
// are re-merged into a single response in the original pair order and
// re-encoded in the client's codec, byte-exact with what one replica
// would have produced for the whole body.
//
// Pair placement uses the replicated owner set: each pair's key maps
// to its first R distinct alive replicas clockwise (ring.LookupN), and
// the pair goes to the least-loaded member by in-flight pair count —
// power-of-two-choices when R is the default 2. A sub-batch that fails
// in transport (or is shed with a 5xx) retries against the next alive
// owner, so a replica killed mid-batch loses zero pairs; a 4xx is the
// request's own fault and propagates without retry. Sub-requests are
// always encoded in the binary codec: it is the cheaper frame to build
// and parse, and the merge re-encodes the client's codec at the end.

// forwardBatch validates and routes one buffered /batch POST. A body
// whose dims cannot even be peeked (truncated binary header, JSON with
// missing or negative m/n, a Content-Type whose body doesn't parse)
// answers 400 at the router — garbage is rejected at the edge, not
// forwarded into the fleet.
func (rt *Router) forwardBatch(w http.ResponseWriter, r *http.Request, body []byte) {
	if len(body) > maxBatchBody {
		writeErr(w, badRequest("batch body %d bytes over the %d cap", len(body), maxBatchBody))
		return
	}
	ct := r.Header.Get("Content-Type")
	if _, _, ok := peekBatchDims(ct, body); !ok {
		writeErr(w, badRequest("unreadable batch dims (want explicit non-negative m and n)"))
		return
	}
	req, err := parseBatchBody(ct, body)
	if err != nil {
		writeErr(w, err)
		return
	}
	d := Dims{M: req.m, N: req.n}
	if rt.scatterMin < 0 || len(req.src) < rt.scatterMin ||
		len(rt.replicas) < 2 || rt.health.HealthyCount() < 2 {
		// Too small to win from splitting (or nothing to split across):
		// the whole body forwards to the (m,n) key's owner set.
		rt.forwardKeyed(w, r, shardKey(d, 0, 0), body)
		return
	}
	rt.scatterBatch(w, r, req)
}

// subBatch is one replica's slice of a scattered request.
type subBatch struct {
	replica int   // chosen owner (first attempt target)
	idx     []int // original pair indices, ascending
	body    []byte

	cols     *batchColumns // decoded answer
	answered int           // replica that actually answered
	err      error
}

// scatterBatch partitions, fans out, gathers, merges, and answers.
func (rt *Router) scatterBatch(w http.ResponseWriter, r *http.Request, req *batchRequest) {
	d := Dims{M: req.m, N: req.n}
	n := len(rt.replicas)
	pairs := len(req.src)
	alive := func(i int) bool { return rt.health.Healthy(i) }

	// Partition: each pair goes to the least-loaded member of its owner
	// set, counting both globally in-flight pairs and pairs already
	// assigned in this batch so one scatter cannot dogpile an owner.
	assign := make([]int16, pairs)
	localIdx := make([]int32, pairs)
	perCount := make([]int32, n)
	local := make([]int64, n)
	var keyBuf [44]byte
	owners := make([]int, 0, rt.replication)
	for i := 0; i < pairs; i++ {
		key := shardKeyAppend(d, req.src[i], req.dst[i], keyBuf[:0])
		owners = rt.ring.LookupN(key, rt.replication, alive, owners[:0])
		if len(owners) == 0 {
			rt.noReplica.Add(1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, &httpError{code: http.StatusServiceUnavailable,
				msg: fmt.Sprintf("no live replica (%d/%d healthy)", rt.health.HealthyCount(), n)})
			return
		}
		best := owners[0]
		bestLoad := rt.inflight[best].Load() + local[best]
		for _, o := range owners[1:] {
			if l := rt.inflight[o].Load() + local[o]; l < bestLoad {
				best, bestLoad = o, l
			}
		}
		assign[i] = int16(best)
		localIdx[i] = perCount[best]
		perCount[best]++
		local[best]++
	}

	// Build one sub-batch per chosen replica.
	opName := batchOpNames[req.op]
	subs := make([]*subBatch, 0, n)
	subOf := make([]*subBatch, n)
	for rep := 0; rep < n; rep++ {
		if perCount[rep] == 0 {
			continue
		}
		sb := &subBatch{replica: rep, idx: make([]int, 0, perCount[rep])}
		subs = append(subs, sb)
		subOf[rep] = sb
	}
	src := make([]int, 0, pairs)
	dst := make([]int, 0, pairs)
	for _, sb := range subs {
		from := len(src)
		for i := 0; i < pairs; i++ {
			if int(assign[i]) == sb.replica {
				sb.idx = append(sb.idx, i)
				src = append(src, req.src[i])
				dst = append(dst, req.dst[i])
			}
		}
		var err error
		if sb.body, err = EncodeBatchBinRequest(opName, req.m, req.n, req.faults, src[from:], dst[from:]); err != nil {
			writeErr(w, err)
			return
		}
	}

	// Fan out concurrently; gather everything before answering.
	var wg sync.WaitGroup
	for _, sb := range subs {
		wg.Add(1)
		go func(sb *subBatch) {
			defer wg.Done()
			rt.sendSubBatch(r, req.op, sb)
		}(sb)
	}
	wg.Wait()
	rt.subPairs.Add(uint64(pairs))

	var answered []string
	for _, sb := range subs {
		if sb.err != nil {
			// One lost sub-batch fails the whole request: a partial
			// merge would silently drop pairs, which is exactly what
			// the retry machinery exists to prevent.
			if he, ok := sb.err.(*httpError); ok && he.code == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "1")
			}
			writeErr(w, sb.err)
			return
		}
		answered = append(answered, rt.replicas[sb.answered])
	}

	merged, err := mergeSubBatches(req, subs, assign, localIdx)
	if err != nil {
		writeErr(w, &httpError{code: http.StatusBadGateway, msg: err.Error()})
		return
	}
	var out []byte
	if req.codec == "bin" {
		out = encodeBatchBin(merged)
	} else {
		out = encodeBatchJSON(merged)
	}
	h := w.Header()
	h.Set("X-Scatter", strconv.Itoa(len(subs)))
	h.Set("X-Replica", strings.Join(answered, ","))
	writeBody(w, req.contentType(), "", out)
}

// sendSubBatch posts one sub-batch to its chosen owner, retrying
// transport failures and 5xx sheds against the next alive owner by
// in-flight load, under the shared attempt budget. On success the
// decoded columns land in sb.cols.
func (rt *Router) sendSubBatch(r *http.Request, op uint8, sb *subBatch) {
	tried := make([]bool, len(rt.replicas))
	target := sb.replica
	load := int64(len(sb.idx))
	for attempt := 0; attempt < rt.attempts && target >= 0; attempt++ {
		tried[target] = true
		if attempt == 0 {
			rt.subFanout.Add(1)
		} else {
			rt.subRetries.Add(1)
		}
		rt.inflight[target].Add(load)
		cols, err, retry := rt.postSubBatch(r, target, op, len(sb.idx), sb.body)
		rt.inflight[target].Add(-load)
		if err == nil {
			sb.cols = cols
			sb.answered = target
			rt.health.replicas[target].forwarded.Add(1)
			return
		}
		if !retry {
			sb.err = err
			return
		}
		rt.health.ReportFailure(target)
		rt.retries.Add(1)
		target = rt.nextAliveOwner(tried)
	}
	sb.err = &httpError{code: http.StatusServiceUnavailable,
		msg: fmt.Sprintf("no live replica for sub-batch (%d/%d healthy)", rt.health.HealthyCount(), len(rt.replicas))}
}

// nextAliveOwner picks the least-loaded alive replica not yet tried,
// or -1. After the pair's own owners failed this is the clockwise
// spill generalised to load order — the batch equivalent of walking
// past the owner set.
func (rt *Router) nextAliveOwner(tried []bool) int {
	best := -1
	var bestLoad int64
	for i := range rt.replicas {
		if tried[i] || !rt.health.Healthy(i) {
			continue
		}
		if l := rt.inflight[i].Load(); best < 0 || l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// postSubBatch performs one binary-codec sub-request against replica i.
// retry reports whether the failure is the replica's fault (transport
// error, 5xx) rather than the request's (4xx).
func (rt *Router) postSubBatch(r *http.Request, i int, op uint8, pairs int, body []byte) (cols *batchColumns, err error, retry bool) {
	req, rerr := http.NewRequestWithContext(r.Context(), http.MethodPost, rt.replicas[i]+"/batch", bytes.NewReader(body))
	if rerr != nil {
		return nil, rerr, false
	}
	req.Header.Set("Content-Type", ctBatchBin)
	resp, rerr := rt.client.Do(req)
	if rerr != nil {
		return nil, rerr, true
	}
	defer resp.Body.Close()
	buf := rt.bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer rt.bodyPool.Put(buf)
	if _, rerr = buf.ReadFrom(resp.Body); rerr != nil {
		return nil, rerr, true
	}
	if resp.StatusCode/100 != 2 {
		herr := &httpError{code: resp.StatusCode, msg: fmt.Sprintf("replica %s: %s", rt.replicas[i], bytes.TrimSpace(buf.Bytes()))}
		return nil, herr, resp.StatusCode >= 500
	}
	cols, rerr = decodeBatchBinResponse(buf.Bytes(), op, pairs)
	if rerr != nil {
		// A 2xx the router cannot decode is a corrupt replica; retrying
		// elsewhere is safe and the failure feeds ejection.
		return nil, fmt.Errorf("replica %s: %v", rt.replicas[i], rerr), true
	}
	return cols, nil, false
}

// decodeBatchBinResponse parses a binary /batch response back into
// columns. The input buffer is pooled, so every column is copied out.
func decodeBatchBinResponse(body []byte, op uint8, pairs int) (*batchColumns, error) {
	le := binary.LittleEndian
	hdr, rest, err := nextFrame(body)
	if err != nil {
		return nil, fmt.Errorf("bad batch response: %v", err)
	}
	if len(hdr) != 16 {
		return nil, fmt.Errorf("bad batch response: header frame is %d bytes, want 16", len(hdr))
	}
	if m := le.Uint32(hdr); m != batchBinMagic {
		return nil, fmt.Errorf("bad batch response: magic %#x", m)
	}
	if v := le.Uint16(hdr[4:]); v != batchBinVersion {
		return nil, fmt.Errorf("bad batch response: version %d", v)
	}
	if hdr[6] != op {
		return nil, fmt.Errorf("bad batch response: op %d, want %d", hdr[6], op)
	}
	if got := int(le.Uint32(hdr[8:])); got != pairs {
		return nil, fmt.Errorf("bad batch response: %d pairs answered, sent %d", got, pairs)
	}
	totalPaths := int(le.Uint32(hdr[12:]))

	cols := &batchColumns{op: op}
	st, rest, err := nextFrame(rest)
	if err != nil || len(st) != pairs {
		return nil, fmt.Errorf("bad batch response: status frame (%d bytes, err %v)", len(st), err)
	}
	cols.status = append([]uint8(nil), st...)
	if op == batchOpDist || op == batchOpRoute {
		if cols.dist, rest, err = readInt32Frame(rest, pairs, "dist"); err != nil {
			return nil, err
		}
	}
	switch op {
	case batchOpRoute, batchOpFaultRoute:
		if cols.off, rest, err = readInt32Frame(rest, pairs+1, "off"); err != nil {
			return nil, err
		}
		if cols.nodes, rest, err = readIntFrame(rest, int(cols.off[pairs]), "nodes"); err != nil {
			return nil, err
		}
	case batchOpPaths:
		if cols.off, rest, err = readInt32Frame(rest, pairs+1, "pair_off"); err != nil {
			return nil, err
		}
		if cols.poff, rest, err = readInt32Frame(rest, totalPaths+1, "path_off"); err != nil {
			return nil, err
		}
		if cols.nodes, rest, err = readIntFrame(rest, int(cols.poff[totalPaths]), "nodes"); err != nil {
			return nil, err
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("bad batch response: %d trailing bytes", len(rest))
	}
	return cols, nil
}

func readInt32Frame(data []byte, want int, name string) (vals []int32, rest []byte, err error) {
	payload, rest, err := nextFrame(data)
	if err != nil {
		return nil, nil, fmt.Errorf("bad batch response: %s frame: %v", name, err)
	}
	if len(payload) != 4*want {
		return nil, nil, fmt.Errorf("bad batch response: %s frame is %d bytes, want %d values", name, len(payload), want)
	}
	vals = make([]int32, want)
	for i := range vals {
		vals[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return vals, rest, nil
}

func readIntFrame(data []byte, want int, name string) (vals []int, rest []byte, err error) {
	payload, rest, err := nextFrame(data)
	if err != nil {
		return nil, nil, fmt.Errorf("bad batch response: %s frame: %v", name, err)
	}
	if want < 0 || len(payload) != 4*want {
		return nil, nil, fmt.Errorf("bad batch response: %s frame is %d bytes, want %d values", name, len(payload), want)
	}
	vals = make([]int, want)
	for i := range vals {
		vals[i] = int(int32(binary.LittleEndian.Uint32(payload[4*i:])))
	}
	return vals, rest, nil
}

// mergeSubBatches reassembles the sub-responses into one column set in
// the original pair order. Offsets are rebased (they are prefix sums
// into each sub-response's private arena), so the merged response is
// byte-identical to a single replica answering the whole batch.
func mergeSubBatches(req *batchRequest, subs []*subBatch, assign []int16, localIdx []int32) (*batchColumns, error) {
	pairs := len(req.src)
	bySub := make(map[int16]*batchColumns, len(subs))
	for _, sb := range subs {
		bySub[int16(sb.replica)] = sb.cols
	}
	at := func(i int) (*batchColumns, int32) { return bySub[assign[i]], localIdx[i] }

	merged := &batchColumns{op: req.op, m: req.m, n: req.n, faults: req.faults}
	merged.status = make([]uint8, pairs)
	for i := 0; i < pairs; i++ {
		c, j := at(i)
		merged.status[i] = c.status[j]
	}
	if req.op == batchOpDist || req.op == batchOpRoute {
		merged.dist = make([]int32, pairs)
		for i := 0; i < pairs; i++ {
			c, j := at(i)
			merged.dist[i] = c.dist[j]
		}
	}

	switch req.op {
	case batchOpRoute, batchOpFaultRoute:
		merged.off = make([]int32, pairs+1)
		total := int32(0)
		for i := 0; i < pairs; i++ {
			c, j := at(i)
			total += c.off[j+1] - c.off[j]
			merged.off[i+1] = total
		}
		merged.nodes = make([]int, total)
		for i := 0; i < pairs; i++ {
			c, j := at(i)
			copy(merged.nodes[merged.off[i]:merged.off[i+1]], c.nodes[c.off[j]:c.off[j+1]])
		}

	case batchOpPaths:
		merged.off = make([]int32, pairs+1)
		npaths, nnodes := int32(0), int32(0)
		for i := 0; i < pairs; i++ {
			c, j := at(i)
			npaths += c.off[j+1] - c.off[j]
			merged.off[i+1] = npaths
			for q := c.off[j]; q < c.off[j+1]; q++ {
				nnodes += c.poff[q+1] - c.poff[q]
			}
		}
		merged.poff = make([]int32, 1, npaths+1)
		merged.nodes = make([]int, 0, nnodes)
		for i := 0; i < pairs; i++ {
			c, j := at(i)
			for q := c.off[j]; q < c.off[j+1]; q++ {
				merged.nodes = append(merged.nodes, c.nodes[c.poff[q]:c.poff[q+1]]...)
				merged.poff = append(merged.poff, int32(len(merged.nodes)))
			}
		}
	}
	return merged, nil
}
