package hbserve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- ring -----------------------------------------------------------

// TestRingAffinityUnderMembershipChange pins the property the cluster
// tier leans on: ejecting a replica moves only that replica's keys —
// every key owned by a survivor keeps its owner.
func TestRingAffinityUnderMembershipChange(t *testing.T) {
	names := []string{"http://a:1", "http://b:2", "http://c:3"}
	ring := newHashRing(names, 0)

	const keys = 4096
	ownerAll := make([]int, keys)
	counts := make([]int, len(names))
	for k := 0; k < keys; k++ {
		ownerAll[k] = ring.Lookup(shardKey(Dims{M: 2, N: 4}, k, k+1), nil)
		if ownerAll[k] < 0 || ownerAll[k] >= len(names) {
			t.Fatalf("key %d mapped to replica %d", k, ownerAll[k])
		}
		counts[ownerAll[k]]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("replica %d owns no keys out of %d", i, keys)
		}
		// Balance within a loose band: vnodes keep shares near 1/3 each.
		if frac := float64(c) / keys; frac < 0.15 || frac > 0.55 {
			t.Errorf("replica %d owns %.2f of the keyspace, want ~0.33", i, frac)
		}
	}

	// Eject replica 1: its keys spill, survivors keep every key.
	alive := func(i int) bool { return i != 1 }
	moved := 0
	for k := 0; k < keys; k++ {
		owner := ring.Lookup(shardKey(Dims{M: 2, N: 4}, k, k+1), alive)
		if owner == 1 {
			t.Fatalf("key %d mapped to the ejected replica", k)
		}
		if ownerAll[k] != 1 {
			if owner != ownerAll[k] {
				t.Fatalf("key %d moved %d -> %d though its owner survived", k, ownerAll[k], owner)
			}
		} else {
			moved++
		}
	}
	if moved == 0 {
		t.Error("ejected replica owned no keys; rebalance untested")
	}

	if got := ring.Lookup(42, func(int) bool { return false }); got != -1 {
		t.Errorf("Lookup with no live replica = %d, want -1", got)
	}
}

// --- health ---------------------------------------------------------

// TestHealthHysteresis drives a replica through down-and-back and pins
// the ejection / re-admission thresholds.
func TestHealthHysteresis(t *testing.T) {
	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	}))
	defer ts.Close()

	h := newHealthChecker([]string{ts.URL}, 10*time.Millisecond, 100*time.Millisecond, 2, 2)
	h.Start()
	defer h.Stop()

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if h.Healthy(0) == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("replica never became %s", what)
	}

	waitFor(true, "healthy at start")
	down.Store(true)
	waitFor(false, "ejected after consecutive probe failures")
	if e := h.replicas[0].ejections.Load(); e != 1 {
		t.Errorf("ejections %d, want 1", e)
	}
	down.Store(false)
	waitFor(true, "re-admitted after consecutive probe successes")
	if r := h.replicas[0].readmissions.Load(); r != 1 {
		t.Errorf("readmissions %d, want 1", r)
	}
}

// TestHealthSingleFailureDoesNotEject: one dropped probe (below the
// hysteresis width) must not flap the membership.
func TestHealthSingleFailureDoesNotEject(t *testing.T) {
	h := newHealthChecker([]string{"http://127.0.0.1:1"}, time.Hour, time.Second, 2, 2)
	h.ReportFailure(0)
	if !h.Healthy(0) {
		t.Fatal("ejected after a single failure with EjectAfter=2")
	}
	h.ReportFailure(0)
	if h.Healthy(0) {
		t.Fatal("still admitted after crossing EjectAfter")
	}
	// One success below ReadmitAfter keeps it ejected; the second admits.
	h.reportSuccess(0)
	if h.Healthy(0) {
		t.Fatal("re-admitted after a single success with ReadmitAfter=2")
	}
	h.reportSuccess(0)
	if !h.Healthy(0) {
		t.Fatal("not re-admitted after crossing ReadmitAfter")
	}
}

// --- test fleet -----------------------------------------------------

// testFleet runs n in-process hbd replicas on fixed ports so chaos can
// kill and restart them at stable addresses (a ReplicaController).
type testFleet struct {
	t        *testing.T
	handlers []http.Handler
	addrs    []string

	mu   sync.Mutex
	srvs []*http.Server
}

func newTestFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{t: t}
	for i := 0; i < n; i++ {
		h := NewServer(Config{}).Handler()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: h}
		go srv.Serve(ln)
		f.handlers = append(f.handlers, h)
		f.addrs = append(f.addrs, ln.Addr().String())
		f.srvs = append(f.srvs, srv)
	}
	t.Cleanup(f.Close)
	return f
}

func (f *testFleet) URLs() []string {
	urls := make([]string, len(f.addrs))
	for i, a := range f.addrs {
		urls[i] = "http://" + a
	}
	return urls
}

// Kill closes replica i's listener and connections; in-flight requests
// die mid-stream, exactly like a crashed process.
func (f *testFleet) Kill(i int) error {
	f.mu.Lock()
	srv := f.srvs[i]
	f.srvs[i] = nil
	f.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// Restart rebinds replica i's original address with a fresh server over
// the same handler (pool and caches survive, as a warm restart would).
func (f *testFleet) Restart(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.srvs[i] != nil {
		return nil
	}
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if ln, err = net.Listen("tcp", f.addrs[i]); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("rebinding %s: %w", f.addrs[i], err)
	}
	srv := &http.Server{Handler: f.handlers[i]}
	f.srvs[i] = srv
	go srv.Serve(ln)
	return nil
}

func (f *testFleet) Close() {
	for i := range f.srvs {
		f.Kill(i)
	}
}

// --- router ---------------------------------------------------------

func newTestRouter(t *testing.T, cfg ClusterConfig) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

func TestRouterForwardsByShard(t *testing.T) {
	fleet := newTestFleet(t, 3)
	rt, ts := newTestRouter(t, ClusterConfig{Replicas: fleet.URLs()})

	get := func(url string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	// The same key answers from the same replica, byte-identically.
	owners := map[string]bool{}
	for u := 0; u < 24; u++ {
		url := fmt.Sprintf("%s/route?m=1&n=3&u=%d&v=%d", ts.URL, u, (u+11)%48)
		first, body1 := get(url)
		if first.StatusCode != 200 {
			t.Fatalf("u=%d: status %d: %s", u, first.StatusCode, body1)
		}
		owner := first.Header.Get("X-Replica")
		if owner == "" {
			t.Fatal("no X-Replica header")
		}
		owners[owner] = true
		second, body2 := get(url)
		if got := second.Header.Get("X-Replica"); got != owner {
			t.Errorf("u=%d moved %s -> %s with stable membership", u, owner, got)
		}
		if string(body1) != string(body2) {
			t.Errorf("u=%d: bodies differ across requests", u)
		}
		var rr routeResponse
		if err := json.Unmarshal(body1, &rr); err != nil || rr.Distance != len(rr.Path)-1 {
			t.Errorf("u=%d: bad route body %s (err %v)", u, body1, err)
		}
	}
	if len(owners) < 2 {
		t.Errorf("24 keys all landed on %d replica(s); sharding inert", len(owners))
	}

	st := rt.Status()
	total := uint64(0)
	for _, r := range st.Replicas {
		total += r.Forwarded
	}
	if total != 48 {
		t.Errorf("router forwarded %d requests, want 48", total)
	}
}

// TestRouterAffinityAcrossEjection is the end-to-end rebalance check:
// ejecting one replica must not move any key owned by a survivor.
func TestRouterAffinityAcrossEjection(t *testing.T) {
	fleet := newTestFleet(t, 3)
	urls := fleet.URLs()
	rt, ts := newTestRouter(t, ClusterConfig{Replicas: urls})

	owner := func(u, v int) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/route?m=1&n=3&u=%d&v=%d", ts.URL, u, v))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return resp.Header.Get("X-Replica")
	}

	before := map[int]string{}
	for u := 0; u < 32; u++ {
		before[u] = owner(u, (u+17)%48)
	}
	// White-box ejection: mark replica 1 unhealthy, as the checker would.
	rt.health.replicas[1].healthy.Store(false)
	movedFrom1 := 0
	for u := 0; u < 32; u++ {
		after := owner(u, (u+17)%48)
		if after == urls[1] {
			t.Fatalf("key %d served by the ejected replica", u)
		}
		switch before[u] {
		case urls[1]:
			movedFrom1++
		default:
			if after != before[u] {
				t.Errorf("key %d moved %s -> %s though its owner survived", u, before[u], after)
			}
		}
	}
	if movedFrom1 == 0 {
		t.Error("ejected replica owned no sampled keys; rebalance untested")
	}
}

// TestRouterRetriesReplicaDyingMidRequest: a replica that accepts the
// connection and then dies mid-request (hijack + close, the tightest
// version of a kill) must be retried on the next live replica, and the
// forward failures must feed the ejection hysteresis.
func TestRouterRetriesReplicaDyingMidRequest(t *testing.T) {
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		conn, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		conn.Close()
	}))
	defer evil.Close()
	fleet := newTestFleet(t, 2)
	urls := append([]string{evil.URL}, fleet.URLs()...)
	rt, ts := newTestRouter(t, ClusterConfig{Replicas: urls, EjectAfter: 2, MaxAttempts: 3})

	for u := 0; u < 32; u++ {
		resp, err := http.Get(fmt.Sprintf("%s/route?m=1&n=3&u=%d&v=%d", ts.URL, u, (u+5)%48))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("u=%d: status %d after retries", u, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Replica"); got == evil.URL {
			t.Fatalf("u=%d: answer attributed to the dying replica", u)
		}
	}
	st := rt.Status()
	if st.Retries == 0 {
		t.Error("no retries recorded though the dying replica owned part of the keyspace")
	}
	if rt.Healthy(0) {
		t.Error("dying replica still admitted after repeated mid-request failures")
	}
	if st.Replicas[0].Ejections == 0 {
		t.Error("no ejection recorded for the dying replica")
	}
}

// TestRouterAllReplicasDown503: with every replica unreachable the
// router must answer 503 with Retry-After promptly — not hang, not 500.
func TestRouterAllReplicasDown503(t *testing.T) {
	// Grab two ports and close them so connections are refused fast.
	var urls []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		urls = append(urls, "http://"+ln.Addr().String())
		ln.Close()
	}
	rt, ts := newTestRouter(t, ClusterConfig{Replicas: urls})

	start := time.Now()
	// Two requests: each attempt refuses instantly and feeds the
	// EjectAfter=2 hysteresis, so by the end both replicas are ejected.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/route?m=1&n=3&u=0&v=7")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503 (body %s)", i, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("request %d: 503 without Retry-After", i)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("all-down answers took %v; should fail fast", elapsed)
	}
	if n := rt.Status().NoReplica; n != 2 {
		t.Errorf("no_replica counter %d, want 2", n)
	}
	// The failed attempts must have ejected both replicas.
	if rt.health.HealthyCount() != 0 {
		t.Errorf("%d replicas still admitted after repeated refusals", rt.health.HealthyCount())
	}
}

// TestRouterQueueShed: a full forwarding queue answers 503 +
// Retry-After instead of queueing without bound.
func TestRouterQueueShed(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			<-release
		}
		fmt.Fprintln(w, "ok")
	}))
	defer slow.Close()
	rt, ts := newTestRouter(t, ClusterConfig{Replicas: []string{slow.URL}, QueueDepth: 2})

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/info?m=1&n=3")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	// Wait until both slots are held.
	deadline := time.Now().Add(2 * time.Second)
	for len(rt.queue) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/info?m=1&n=3")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("over-capacity request got %d (Retry-After %q), want 503", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if rt.Status().Shed != 1 {
		t.Errorf("shed counter %d, want 1", rt.Status().Shed)
	}
	close(release) // unblock the two queued forwards before waiting
	wg.Wait()
}

// TestRouterBatchForward: POST bodies are buffered (retry-safe) and
// /batch shard keys come from the body dims.
func TestRouterBatchForward(t *testing.T) {
	fleet := newTestFleet(t, 2)
	_, ts := newTestRouter(t, ClusterConfig{Replicas: fleet.URLs()})

	body := `{"m":2,"n":3,"op":"route","src":[0,5],"dst":[9,95]}`
	resp, err := http.Post(ts.URL+"/batch", ctJSON, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), `"status":[0,0]`) {
		t.Errorf("batch body %s", raw)
	}
	if resp.Header.Get("X-Replica") == "" {
		t.Error("no X-Replica header on /batch")
	}
}

func TestPeekBatchDims(t *testing.T) {
	if m, n, ok := peekBatchDims(ctJSON, []byte(`{"m":3,"n":5,"op":"dist"}`)); !ok || m != 3 || n != 5 {
		t.Errorf("json peek = (%d,%d,%v)", m, n, ok)
	}
	bin, err := EncodeBatchBinRequest("route", 2, 4, nil, []int{0}, []int{9})
	if err != nil {
		t.Fatal(err)
	}
	if m, n, ok := peekBatchDims(ctBatchBin, bin); !ok || m != 2 || n != 4 {
		t.Errorf("bin peek = (%d,%d,%v)", m, n, ok)
	}
	if _, _, ok := peekBatchDims(ctBatchBin, []byte("short")); ok {
		t.Error("peeked dims out of a truncated binary frame")
	}
	if _, _, ok := peekBatchDims(ctJSON, []byte("{")); ok {
		t.Error("peeked dims out of malformed JSON")
	}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(ClusterConfig{}); err == nil {
		t.Error("accepted an empty replica list")
	}
	if _, err := NewRouter(ClusterConfig{Replicas: []string{"http://a:1", "http://a:1/"}}); err == nil {
		t.Error("accepted duplicate replica URLs")
	}
	if _, err := NewRouter(ClusterConfig{Replicas: []string{" "}}); err == nil {
		t.Error("accepted a blank replica URL")
	}
}
