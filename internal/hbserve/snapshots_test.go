package hbserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/snapshot"
)

// httpResp is get() plus headers, which the snapshot tests assert on.
type httpResp struct {
	code   int
	header http.Header
	body   []byte
}

func httpGet(url string) (*httpResp, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &httpResp{code: resp.StatusCode, header: resp.Header, body: body}, nil
}

// writeSnapshotDir builds snapshots for the given dims into one temp
// directory, exactly the artifact layout hbtables -snapshot produces.
func writeSnapshotDir(t *testing.T, dims ...[2]int) string {
	t.Helper()
	dir := t.TempDir()
	for _, d := range dims {
		snap, err := snapshot.Build(core.MustNew(d[0], d[1]), 0)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("hb_%d_%d%s", d[0], d[1], snapshot.FileSuffix)
		if err := snap.WriteFile(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestEstimateServedFromSnapshot is the serving-layer differential
// gate: the /estimate body for a covered instance must be byte-identical
// to one rendered from a fresh live computation.
func TestEstimateServedFromSnapshot(t *testing.T) {
	dir := writeSnapshotDir(t, [2]int{2, 3}, [2]int{1, 3})
	s, ts := newTestServer(t)
	n, err := s.LoadSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d snapshots, want 2", n)
	}

	for _, d := range [][2]int{{2, 3}, {1, 3}} {
		hb := core.MustNew(d[0], d[1])
		fresh, err := snapshot.Build(hb, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := renderEstimate(fresh, hb.DiameterFormula())
		if err != nil {
			t.Fatal(err)
		}

		resp, err := httpGet(ts.URL + fmt.Sprintf("/estimate?m=%d&n=%d", d[0], d[1]))
		if err != nil {
			t.Fatal(err)
		}
		if resp.code != 200 {
			t.Fatalf("HB(%d,%d): status %d: %s", d[0], d[1], resp.code, resp.body)
		}
		if resp.header.Get("X-Snapshot") != "hit" {
			t.Fatalf("HB(%d,%d): X-Snapshot %q, want hit", d[0], d[1], resp.header.Get("X-Snapshot"))
		}
		if !bytes.Equal(resp.body, want) {
			t.Fatalf("HB(%d,%d): served body diverges from live-computed render:\n got %s\nwant %s",
				d[0], d[1], resp.body, want)
		}
		var decoded exactEstimateResponse
		if err := json.Unmarshal(resp.body, &decoded); err != nil {
			t.Fatal(err)
		}
		if !decoded.Exact || decoded.Diameter != fresh.Diameter || decoded.Order != hb.Order() {
			t.Fatalf("HB(%d,%d): decoded %+v", d[0], d[1], decoded)
		}
		// The paper's formula must agree with the exhaustive diameter on
		// snapshot-covered instances.
		if decoded.Diameter != decoded.DiameterFormula {
			t.Errorf("HB(%d,%d): exact diameter %d, formula %d", d[0], d[1], decoded.Diameter, decoded.DiameterFormula)
		}
	}
}

// TestEstimateLiveOverride: live=1 must bypass the snapshot and answer
// with the sampled estimator; uncovered dims always sample.
func TestEstimateLiveOverride(t *testing.T) {
	dir := writeSnapshotDir(t, [2]int{2, 3})
	s, ts := newTestServer(t)
	if _, err := s.LoadSnapshots(dir); err != nil {
		t.Fatal(err)
	}

	resp, err := httpGet(ts.URL + "/estimate?m=2&n=3&live=1&samples=64")
	if err != nil {
		t.Fatal(err)
	}
	if resp.code != 200 || resp.header.Get("X-Snapshot") != "" {
		t.Fatalf("live=1: status %d, X-Snapshot %q", resp.code, resp.header.Get("X-Snapshot"))
	}
	var sampled estimateResponse
	if err := json.Unmarshal(resp.body, &sampled); err != nil {
		t.Fatal(err)
	}
	if sampled.Samples != 64 {
		t.Fatalf("live=1 answered with %d samples, want the sampled path", sampled.Samples)
	}

	resp, err = httpGet(ts.URL + "/estimate?m=1&n=3&samples=64")
	if err != nil {
		t.Fatal(err)
	}
	if resp.code != 200 || resp.header.Get("X-Snapshot") != "" {
		t.Fatalf("uncovered dims: status %d, X-Snapshot %q", resp.code, resp.header.Get("X-Snapshot"))
	}
}

// TestLoadSnapshotsRejectsCorrupt: a corrupt artifact aborts the load
// with an error naming the file.
func TestLoadSnapshotsRejectsCorrupt(t *testing.T) {
	dir := writeSnapshotDir(t, [2]int{1, 3})
	name := filepath.Join(dir, "bad"+snapshot.FileSuffix)
	good, err := os.ReadFile(filepath.Join(dir, "hb_1_3"+snapshot.FileSuffix))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 1
	if err := os.WriteFile(name, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	s := NewServer(Config{})
	if _, err := s.LoadSnapshots(dir); err == nil {
		t.Fatal("corrupt snapshot dir loaded")
	}
	if _, err := s.LoadSnapshots(filepath.Join(dir, "absent")); err == nil {
		t.Fatal("absent snapshot dir loaded")
	}
	// Non-snapshot files are ignored, snapshots still load.
	dir2 := writeSnapshotDir(t, [2]int{1, 3})
	if err := os.WriteFile(filepath.Join(dir2, "README.txt"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := s.LoadSnapshots(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loaded %d snapshots, want 1", n)
	}
	s.CloseSnapshots()
	if s.snapshotFor(Dims{M: 1, N: 3}) != nil {
		t.Fatal("snapshot survives CloseSnapshots")
	}
}
