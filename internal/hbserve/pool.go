package hbserve

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Dims keys one HB(m,n) instance.
type Dims struct {
	M int
	N int
}

func (d Dims) String() string { return fmt.Sprintf("HB(%d,%d)", d.M, d.N) }

// Pool is a bounded, lazily-filled cache of constructed HB(m,n)
// backends. Construction is cheap (labels only — the dense adjacency
// is built lazily by core on demand), but instances pin memory once
// their adjacency or route caches warm up, so the pool evicts the
// least-recently-used instance beyond Max. A per-entry sync.Once keeps
// concurrent first requests for the same dims from building twice, and
// the pool lock is never held across construction.
//
// The pool is two-tiered by order: instances up to MaxOrder get the
// dense-capable *core.HyperButterfly backend (verify=1 runs real BFS
// oracles against them); instances up to ImplicitMaxOrder get the
// label-arithmetic *core.Implicit backend, which serves /route, /paths
// and /faultroute on e.g. HB(10,10) (~10.5M nodes) with zero graph
// construction.
type Pool struct {
	// Max is the instance cap; <= 0 means DefaultPoolMax.
	Max int
	// MaxOrder bounds the dense tier: dimensions above it are served
	// implicitly rather than rejected; <= 0 means DefaultMaxOrder.
	MaxOrder int
	// ImplicitMaxOrder bounds the implicit tier; dimensions above it are
	// rejected. 0 means DefaultImplicitMaxOrder; < 0 disables implicit
	// serving entirely (orders above MaxOrder are rejected, the pre-tier
	// behaviour).
	ImplicitMaxOrder int

	mu      sync.Mutex
	entries map[Dims]*poolEntry
	lru     *list.List // front = most recently used; values are Dims

	evictions uint64

	// construct builds an instance; tests override it to hold a build
	// open and race evictions against it. Nil means core.New /
	// core.NewImplicit by order tier.
	construct func(d Dims) (core.Topology, error)
}

// DefaultPoolMax bounds the number of live instances.
const DefaultPoolMax = 8

// DefaultMaxOrder caps the dense tier: HB(3,8) — the paper's own large
// example, 16384 nodes — fits with headroom.
const DefaultMaxOrder = 1 << 17

// DefaultImplicitMaxOrder caps the implicit tier. Implicit instances
// hold no adjacency, so the bound exists only to keep per-request label
// work (and response sizes) sane; HB(10,10) at ~10.5M nodes fits.
const DefaultImplicitMaxOrder = 1 << 24

type poolEntry struct {
	once  sync.Once
	built atomic.Bool // set after once.Do completes; evictions prefer built entries
	top   core.Topology
	err   error
	elem  *list.Element
}

// Get returns the HB(d.M, d.N) backend, constructing it on first use
// and bumping its recency. Safe for concurrent use.
func (p *Pool) Get(d Dims) (core.Topology, error) {
	maxOrder := p.MaxOrder
	if maxOrder <= 0 {
		maxOrder = DefaultMaxOrder
	}
	implicitMax := p.ImplicitMaxOrder
	if implicitMax == 0 {
		implicitMax = DefaultImplicitMaxOrder
	}
	if implicitMax < maxOrder {
		implicitMax = maxOrder // implicit tier never shrinks below the dense tier
	}
	order, err := orderOf(d)
	if err != nil {
		return nil, err
	}
	if order > implicitMax {
		return nil, fmt.Errorf("hbserve: %v has %d nodes, over the service cap %d", d, order, implicitMax)
	}

	p.mu.Lock()
	if p.entries == nil {
		p.entries = make(map[Dims]*poolEntry)
		p.lru = list.New()
	}
	e, ok := p.entries[d]
	if ok {
		p.lru.MoveToFront(e.elem)
	} else {
		e = &poolEntry{}
		e.elem = p.lru.PushFront(d)
		p.entries[d] = e
		max := p.Max
		if max <= 0 {
			max = DefaultPoolMax
		}
		// Evict from the LRU end, but never the entry this call just
		// inserted (a caller must get back the instance it asked for) and
		// never an entry another goroutine is still constructing —
		// evicting mid-build would let a concurrent Get for the same dims
		// start a second build of the same instance. If every candidate
		// is in-flight the pool overshoots Max briefly instead.
		for p.lru.Len() > max {
			victim := (*list.Element)(nil)
			for el := p.lru.Back(); el != nil && el != e.elem; el = el.Prev() {
				if p.entries[el.Value.(Dims)].built.Load() {
					victim = el
					break
				}
			}
			if victim == nil {
				break
			}
			p.lru.Remove(victim)
			delete(p.entries, victim.Value.(Dims))
			p.evictions++
		}
	}
	p.mu.Unlock()

	e.once.Do(func() {
		switch {
		case p.construct != nil:
			e.top, e.err = p.construct(d)
		case order > maxOrder:
			e.top, e.err = core.NewImplicit(d.M, d.N)
		default:
			e.top, e.err = core.New(d.M, d.N)
		}
		e.built.Store(true)
	})
	if e.err != nil {
		// A failed build must not stay resident: it would occupy an LRU
		// slot (able to evict real instances), count toward Len, and pin
		// the error for every later Get. Remove it — guarded by identity,
		// since a later Get may already have inserted a fresh entry — so
		// the next Get for these dims retries construction.
		p.mu.Lock()
		if p.entries[d] == e {
			p.lru.Remove(e.elem)
			delete(p.entries, d)
		}
		p.mu.Unlock()
		return nil, e.err
	}
	return e.top, e.err
}

// Len returns the number of resident successfully constructed
// instances; entries still being built by a concurrent Get — and
// failed builds awaiting removal by their Get — are not counted.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.entries {
		// built.Load() orders the read of e.err after the builder's writes.
		if e.built.Load() && e.err == nil {
			n++
		}
	}
	return n
}

// Evictions returns the number of instances dropped by the LRU bound.
func (p *Pool) Evictions() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictions
}

// orderOf computes n·2^(m+n) without constructing anything, validating
// the dimension ranges core.New itself enforces.
func orderOf(d Dims) (int, error) {
	if d.M < 0 || d.M > 30 {
		return 0, fmt.Errorf("hbserve: m=%d outside [0,30]", d.M)
	}
	if d.N < 3 || d.N > 30 {
		return 0, fmt.Errorf("hbserve: n=%d outside [3,30]", d.N)
	}
	if d.M+d.N > 30 {
		return 0, fmt.Errorf("hbserve: m+n=%d too large", d.M+d.N)
	}
	return d.N << uint(d.M+d.N), nil
}
