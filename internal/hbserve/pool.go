package hbserve

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Dims keys one HB(m,n) instance.
type Dims struct {
	M int
	N int
}

func (d Dims) String() string { return fmt.Sprintf("HB(%d,%d)", d.M, d.N) }

// Pool is a bounded, lazily-filled cache of constructed HB(m,n)
// instances. Construction is cheap (labels only — the dense adjacency
// is built lazily by core on demand), but instances pin memory once
// their adjacency or route caches warm up, so the pool evicts the
// least-recently-used instance beyond Max. A per-entry sync.Once keeps
// concurrent first requests for the same dims from building twice, and
// the pool lock is never held across construction.
type Pool struct {
	// Max is the instance cap; <= 0 means DefaultPoolMax.
	Max int
	// MaxOrder rejects dimensions whose node count exceeds it, bounding
	// the memory a single query can pin; <= 0 means DefaultMaxOrder.
	MaxOrder int

	mu      sync.Mutex
	entries map[Dims]*poolEntry
	lru     *list.List // front = most recently used; values are Dims

	evictions uint64

	// construct builds an instance; tests override it to hold a build
	// open and race evictions against it. Nil means core.New.
	construct func(d Dims) (*core.HyperButterfly, error)
}

// DefaultPoolMax bounds the number of live instances.
const DefaultPoolMax = 8

// DefaultMaxOrder caps the size of a single instance: HB(3,8) — the
// paper's own large example, 16384 nodes — fits with headroom.
const DefaultMaxOrder = 1 << 17

type poolEntry struct {
	once  sync.Once
	built atomic.Bool // set after once.Do completes; evictions prefer built entries
	hb    *core.HyperButterfly
	err   error
	elem  *list.Element
}

// Get returns the HB(d.M, d.N) instance, constructing it on first use
// and bumping its recency. Safe for concurrent use.
func (p *Pool) Get(d Dims) (*core.HyperButterfly, error) {
	maxOrder := p.MaxOrder
	if maxOrder <= 0 {
		maxOrder = DefaultMaxOrder
	}
	if order, err := orderOf(d); err != nil {
		return nil, err
	} else if order > maxOrder {
		return nil, fmt.Errorf("hbserve: %v has %d nodes, over the service cap %d", d, order, maxOrder)
	}

	p.mu.Lock()
	if p.entries == nil {
		p.entries = make(map[Dims]*poolEntry)
		p.lru = list.New()
	}
	e, ok := p.entries[d]
	if ok {
		p.lru.MoveToFront(e.elem)
	} else {
		e = &poolEntry{}
		e.elem = p.lru.PushFront(d)
		p.entries[d] = e
		max := p.Max
		if max <= 0 {
			max = DefaultPoolMax
		}
		// Evict from the LRU end, but never the entry this call just
		// inserted (a caller must get back the instance it asked for) and
		// never an entry another goroutine is still constructing —
		// evicting mid-build would let a concurrent Get for the same dims
		// start a second build of the same instance. If every candidate
		// is in-flight the pool overshoots Max briefly instead.
		for p.lru.Len() > max {
			victim := (*list.Element)(nil)
			for el := p.lru.Back(); el != nil && el != e.elem; el = el.Prev() {
				if p.entries[el.Value.(Dims)].built.Load() {
					victim = el
					break
				}
			}
			if victim == nil {
				break
			}
			p.lru.Remove(victim)
			delete(p.entries, victim.Value.(Dims))
			p.evictions++
		}
	}
	p.mu.Unlock()

	e.once.Do(func() {
		if p.construct != nil {
			e.hb, e.err = p.construct(d)
		} else {
			e.hb, e.err = core.New(d.M, d.N)
		}
		e.built.Store(true)
	})
	return e.hb, e.err
}

// Len returns the number of resident constructed instances; entries
// still being built by a concurrent Get are not counted.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.entries {
		if e.built.Load() {
			n++
		}
	}
	return n
}

// Evictions returns the number of instances dropped by the LRU bound.
func (p *Pool) Evictions() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictions
}

// orderOf computes n·2^(m+n) without constructing anything, validating
// the dimension ranges core.New itself enforces.
func orderOf(d Dims) (int, error) {
	if d.M < 0 || d.M > 30 {
		return 0, fmt.Errorf("hbserve: m=%d outside [0,30]", d.M)
	}
	if d.N < 3 || d.N > 30 {
		return 0, fmt.Errorf("hbserve: n=%d outside [3,30]", d.N)
	}
	if d.M+d.N > 30 {
		return 0, fmt.Errorf("hbserve: m+n=%d too large", d.M+d.N)
	}
	return d.N << uint(d.M+d.N), nil
}
