// Package hbserve is the topology-query service behind cmd/hbd: a
// long-lived HTTP/JSON daemon answering routing questions about
// HB(m,n) instances, shaped like an inference-serving stack. Queries
// are cheap by construction (Theorems 3 and 5 make routes and the m+4
// disjoint paths label-computable), so the serving problem is the
// classic one — amortise instance construction across requests (Pool),
// dedupe and memoise the hot path (RouteCache, singleflight), observe
// everything (Metrics, /metrics), and drain cleanly on shutdown.
//
// Responses for /route and /paths are rendered once and cached as
// bytes, so identical queries return byte-identical bodies no matter
// how they interleave. /faultroute takes a caller-supplied fault set
// and is deliberately uncached (fault sets are high-cardinality);
// /conformance re-runs the paper's invariant registry on demand;
// /estimate answers sampled diameter/distance questions with explicit
// confidence statements on instances too large for exact sweeps.
//
// Instances are served through the core.Topology interface: small
// dimensions get the dense-capable backend (verify=1 replays a BFS
// oracle), while dimensions above the dense cap get the pure
// label-arithmetic implicit backend, so a cold hbd answers /route,
// /paths and /faultroute on HB(10,10) (~10.5M nodes) without ever
// materialising a graph. Verification on the implicit tier is also
// label-arithmetic: per-hop neighborhood membership plus the analytic
// distance, and graph.VerifyDisjointPaths for path certificates.
package hbserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/faultroute"
	"repro/internal/graph"
)

// Server bundles the pool, cache and metrics behind an http.Handler.
type Server struct {
	pool    *Pool
	cache   *RouteCache
	metrics *Metrics
	mux     *http.ServeMux

	timeout      time.Duration // per-request deadline
	maxInFlight  int64         // load-shedding bound
	batchWorkers int           // /batch kernel fan-out; <= 0 means GOMAXPROCS

	// snapshots holds mmap-loaded precomputed artifacts keyed by dims;
	// /estimate answers covered instances from the pre-rendered body
	// instead of sampling. Written by LoadSnapshots, read on the hot
	// path.
	snapMu    sync.RWMutex
	snapshots map[Dims]*snapshotEntry

	// scratch pools the BFS kernel state used by verify=1 requests, so
	// verification costs one traversal and zero steady-state
	// allocations per request.
	scratch sync.Pool

	// routers holds one incremental fault router per resident dims, so
	// consecutive /faultroute requests pay a fault-set diff instead of a
	// per-request router rebuild.
	routersMu sync.Mutex
	routers   map[Dims]*instanceRouter

	// testHook, when set, runs inside every instrumented request after
	// the in-flight gauge is raised; tests use it to hold requests open
	// across a drain.
	testHook func(endpoint string)
}

// instanceRouter serialises access to one instance's fault router: the
// SetFaults/Route/stats sequence must be atomic per request even though
// the router itself is also internally synchronised.
type instanceRouter struct {
	mu sync.Mutex
	r  *faultroute.Router
}

// Config sizes a Server. Zero values select the defaults.
type Config struct {
	PoolMax  int // max resident HB instances (DefaultPoolMax)
	MaxOrder int // max nodes on the dense tier (DefaultMaxOrder)
	// ImplicitMaxOrder caps the label-arithmetic tier serving instances
	// above MaxOrder; 0 means DefaultImplicitMaxOrder, < 0 disables
	// implicit serving.
	ImplicitMaxOrder int
	CacheSize        int // route-cache capacity in entries; < 0 disables
	CacheShard       int // route-cache shard count (DefaultCacheShards)
	// RequestTimeout bounds each instrumented request via its context;
	// 0 means DefaultRequestTimeout, < 0 disables the deadline.
	RequestTimeout time.Duration
	// MaxInFlight sheds load with a 503 + Retry-After once this many
	// instrumented requests are already in flight; 0 means
	// DefaultMaxInFlight, < 0 disables shedding.
	MaxInFlight int
	// BatchWorkers bounds the per-request fan-out of the /batch routing
	// kernel; 0 means GOMAXPROCS.
	BatchWorkers int
}

// DefaultCacheSize holds rendered /route and /paths bodies; entries
// are small (a path is tens of ints) so this is a few MB at worst.
const DefaultCacheSize = 4096

// DefaultRequestTimeout bounds a single request; generous enough for a
// cold conformance run on the largest on-demand instance.
const DefaultRequestTimeout = 10 * time.Second

// DefaultMaxInFlight is the load-shedding bound: far above any healthy
// concurrency for these µs-to-ms handlers, so it only trips when the
// service is already drowning.
const DefaultMaxInFlight = 512

// maxFaultRouters bounds the per-dims router cache; beyond it the map
// is reset (routers rebuild in microseconds, the bound only stops
// growth under adversarial dims sweeps).
const maxFaultRouters = 16

// NewServer returns a ready-to-serve Server.
func NewServer(cfg Config) *Server {
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	timeout := cfg.RequestTimeout
	if timeout == 0 {
		timeout = DefaultRequestTimeout
	}
	maxInFlight := int64(cfg.MaxInFlight)
	if maxInFlight == 0 {
		maxInFlight = DefaultMaxInFlight
	}
	s := &Server{
		pool:         &Pool{Max: cfg.PoolMax, MaxOrder: cfg.MaxOrder, ImplicitMaxOrder: cfg.ImplicitMaxOrder},
		cache:        NewRouteCache(size, cfg.CacheShard),
		metrics:      NewMetrics(),
		mux:          http.NewServeMux(),
		timeout:      timeout,
		maxInFlight:  maxInFlight,
		batchWorkers: cfg.BatchWorkers,
		routers:      make(map[Dims]*instanceRouter),
		snapshots:    make(map[Dims]*snapshotEntry),
	}
	s.scratch.New = func() any { return graph.NewScratch(0) }
	s.mux.HandleFunc("/route", s.instrument("route", s.handleRoute))
	s.mux.HandleFunc("/batch", s.instrument("batch", s.handleBatch))
	s.mux.HandleFunc("/paths", s.instrument("paths", s.handlePaths))
	s.mux.HandleFunc("/faultroute", s.instrument("faultroute", s.handleFaultRoute))
	s.mux.HandleFunc("/info", s.instrument("info", s.handleInfo))
	s.mux.HandleFunc("/conformance", s.instrument("conformance", s.handleConformance))
	s.mux.HandleFunc("/estimate", s.instrument("estimate", s.handleEstimate))
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.metrics.WriteTo(w, s.cache, s.pool)
	})
	return s
}

// Handler returns the daemon's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the live registry (the load generator reads it when
// it runs in-process during tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Cache exposes the route cache for stats inspection.
func (s *Server) Cache() *RouteCache { return s.cache }

// ListenAndServe serves on addr until ctx is cancelled, then drains
// in-flight requests for up to grace before forcing connections shut.
// It returns nil on a clean drain.
func (s *Server) ListenAndServe(ctx context.Context, addr string, grace time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln, grace)
}

// Serve is ListenAndServe over an existing listener (tests bind port 0
// and read the real address back).
func (s *Server) Serve(ctx context.Context, ln net.Listener, grace time.Duration) error {
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("hbserve: drain incomplete after %v: %w", grace, err)
	}
	<-errc // always http.ErrServerClosed after a Shutdown
	return nil
}

// statusWriter captures the response code for metrics and whether a
// header has gone out (after that, a panic recovery can only abort, not
// rewrite the response).
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the serving-resilience middleware:
// the in-flight gauge, per-endpoint counter and latency histogram;
// load shedding (503 + Retry-After beyond maxInFlight, so an
// overloaded daemon degrades crisply instead of queueing without
// bound); a per-request deadline on the context; and panic recovery
// that answers 500 and increments a metric instead of killing the
// daemon.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.RequestStart()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.metrics.PanicRecovered()
				sw.code = http.StatusInternalServerError
				if !sw.wrote {
					writeErr(sw, &httpError{
						code: http.StatusInternalServerError,
						msg:  fmt.Sprintf("internal error: %v", p),
					})
				}
			}
			s.metrics.RequestEnd(endpoint, sw.code, time.Since(start))
		}()
		if s.maxInFlight > 0 && s.metrics.InFlight() > s.maxInFlight {
			s.metrics.LoadShed()
			sw.Header().Set("Retry-After", "1")
			writeErr(sw, &httpError{
				code: http.StatusServiceUnavailable,
				msg:  fmt.Sprintf("over capacity: %d requests in flight", s.metrics.InFlight()),
			})
			return
		}
		if s.testHook != nil {
			s.testHook(endpoint)
		}
		if s.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(sw, r)
	}
}

// checkDeadline maps an already-expired request context to a 503 the
// heavy handlers (/conformance, /faultroute) consult before starting
// expensive work.
func checkDeadline(r *http.Request) error {
	if err := r.Context().Err(); err != nil {
		return &httpError{code: http.StatusServiceUnavailable, msg: "request deadline exceeded before work started"}
	}
	return nil
}

// httpError is an error carrying a status code.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// setResponseHeaders is the single place response headers are
// assembled: every handler path goes through it, so Content-Type and
// X-Cache can never drift between the cache-hit and cache-miss paths.
// cache is "" for uncached responses (no X-Cache header).
func setResponseHeaders(w http.ResponseWriter, contentType, cache string) {
	h := w.Header()
	h.Set("Content-Type", contentType)
	if cache != "" {
		h.Set("X-Cache", cache)
	}
}

// writeBody writes pre-rendered bytes under the shared header helper.
func writeBody(w http.ResponseWriter, contentType, cache string, body []byte) {
	setResponseHeaders(w, contentType, cache)
	w.Write(body)
}

// writeJSON writes v as JSON; writeErr maps errors to {"error": ...}.
func writeJSON(w http.ResponseWriter, v any) {
	setResponseHeaders(w, ctJSON, "")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		code = he.code
	} else if strings.Contains(err.Error(), "hbserve:") {
		code = http.StatusBadRequest
	}
	setResponseHeaders(w, ctJSON, "")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeCached writes pre-rendered JSON bytes (already newline-
// terminated by the encoder that produced them).
func writeCached(w http.ResponseWriter, body []byte, hit bool) {
	writeBody(w, ctJSON, cacheState(hit), body)
}

// query parsing ------------------------------------------------------

func (s *Server) instance(r *http.Request) (core.Topology, Dims, error) {
	m, err := intParam(r, "m", 2)
	if err != nil {
		return nil, Dims{}, err
	}
	n, err := intParam(r, "n", 3)
	if err != nil {
		return nil, Dims{}, err
	}
	d := Dims{M: m, N: n}
	top, err := s.pool.Get(d)
	if err != nil {
		return nil, d, badRequest("%v", err)
	}
	return top, d, nil
}

// denseBackend unwraps a Topology to its dense-capable instance, or nil
// when none exists. An Implicit shares the underlying instance, so
// unwrapping it is safe wherever an order cap already bounds the dense
// work (the /conformance handler).
func denseBackend(top core.Topology) *core.HyperButterfly {
	switch t := top.(type) {
	case *core.HyperButterfly:
		return t
	case *core.Implicit:
		return t.HyperButterfly
	}
	return nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("parameter %s=%q is not an integer", name, raw)
	}
	return v, nil
}

func nodeParam(r *http.Request, top core.Topology, name string) (core.Node, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, badRequest("missing node parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("node parameter %s=%q is not an integer", name, raw)
	}
	if !top.ValidNode(v) {
		return 0, badRequest("node %s=%d out of range [0,%d)", name, v, top.Order())
	}
	return v, nil
}

// handlers -----------------------------------------------------------

type routeResponse struct {
	M        int      `json:"m"`
	N        int      `json:"n"`
	U        int      `json:"u"`
	V        int      `json:"v"`
	Distance int      `json:"distance"`
	Path     []int    `json:"path"`
	Moves    []string `json:"moves"`
	Verified bool     `json:"verified,omitempty"`
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	hb, d, err := s.instance(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	u, err := nodeParam(r, hb, "u")
	if err != nil {
		writeErr(w, err)
		return
	}
	v, err := nodeParam(r, hb, "v")
	if err != nil {
		writeErr(w, err)
		return
	}
	verify := boolParam(r, "verify")
	key := cacheKey("route", d, u, v, verify)
	body, hit, err := s.cache.GetOrCompute(key, func() ([]byte, error) {
		moves := hb.RouteMoves(u, v)
		names := make([]string, len(moves))
		for i, mv := range moves {
			names[i] = mv.String()
		}
		resp := routeResponse{
			M: d.M, N: d.N, U: u, V: v,
			Distance: len(moves),
			Path:     hb.Route(u, v),
			Moves:    names,
		}
		if verify {
			if err := s.verifyRoute(hb, u, v, resp.Path); err != nil {
				return nil, err
			}
			resp.Verified = true
		}
		return marshalBody(resp)
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeCached(w, body, hit)
}

type pathsResponse struct {
	M        int     `json:"m"`
	N        int     `json:"n"`
	U        int     `json:"u"`
	V        int     `json:"v"`
	Count    int     `json:"count"`
	Paths    [][]int `json:"paths"`
	Verified bool    `json:"verified,omitempty"`
}

func (s *Server) handlePaths(w http.ResponseWriter, r *http.Request) {
	hb, d, err := s.instance(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	u, err := nodeParam(r, hb, "u")
	if err != nil {
		writeErr(w, err)
		return
	}
	v, err := nodeParam(r, hb, "v")
	if err != nil {
		writeErr(w, err)
		return
	}
	if u == v {
		writeErr(w, badRequest("disjoint paths need distinct endpoints (u=v=%d)", u))
		return
	}
	verify := boolParam(r, "verify")
	key := cacheKey("paths", d, u, v, verify)
	body, hit, err := s.cache.GetOrCompute(key, func() ([]byte, error) {
		paths, err := hb.DisjointPaths(u, v)
		if err != nil {
			return nil, err
		}
		resp := pathsResponse{
			M: d.M, N: d.N, U: u, V: v,
			Count: len(paths),
			Paths: paths,
		}
		if verify {
			if err := s.verifyPaths(hb, u, v, paths); err != nil {
				return nil, err
			}
			resp.Verified = true
		}
		return marshalBody(resp)
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeCached(w, body, hit)
}

type faultRouteResponse struct {
	M               int    `json:"m"`
	N               int    `json:"n"`
	U               int    `json:"u"`
	V               int    `json:"v"`
	Faults          []int  `json:"faults"`
	WithinGuarantee bool   `json:"within_guarantee"`
	Strategy        string `json:"strategy"`
	Path            []int  `json:"path"`
}

func (s *Server) handleFaultRoute(w http.ResponseWriter, r *http.Request) {
	hb, d, err := s.instance(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	u, err := nodeParam(r, hb, "u")
	if err != nil {
		writeErr(w, err)
		return
	}
	v, err := nodeParam(r, hb, "v")
	if err != nil {
		writeErr(w, err)
		return
	}
	faults, err := faultsParam(r, hb)
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := checkDeadline(r); err != nil {
		writeErr(w, err)
		return
	}
	ir, err := s.routerFor(d, hb)
	if err != nil {
		writeErr(w, badRequest("%v", err))
		return
	}
	// The SetFaults/Route/stats sequence must see one consistent fault
	// set, so it holds the instance lock; the incremental router keeps
	// every cached path that survives the diff.
	ir.mu.Lock()
	if err := ir.r.SetFaults(faults); err != nil {
		ir.mu.Unlock()
		writeErr(w, badRequest("%v", err))
		return
	}
	path, err := ir.r.Route(u, v)
	if err != nil {
		ir.mu.Unlock()
		// A routing failure is a valid answer about the query, not a
		// server fault: faulty endpoints or a disconnecting fault set.
		writeErr(w, &httpError{code: http.StatusUnprocessableEntity, msg: err.Error()})
		return
	}
	resp := faultRouteResponse{
		M: d.M, N: d.N, U: u, V: v,
		Faults:          faults,
		WithinGuarantee: ir.r.WithinGuarantee(),
		Strategy:        ir.r.LastStrategy(),
		Path:            path,
	}
	ir.mu.Unlock()
	writeJSON(w, resp)
}

// routerFor returns the resident incremental router for d, building it
// on first use. The map is bounded by maxFaultRouters and simply reset
// when full — routers rebuild in microseconds.
func (s *Server) routerFor(d Dims, top core.Topology) (*instanceRouter, error) {
	s.routersMu.Lock()
	defer s.routersMu.Unlock()
	if ir, ok := s.routers[d]; ok {
		return ir, nil
	}
	if len(s.routers) >= maxFaultRouters {
		s.routers = make(map[Dims]*instanceRouter)
	}
	r, err := faultroute.New(top, nil)
	if err != nil {
		return nil, err
	}
	ir := &instanceRouter{r: r}
	s.routers[d] = ir
	return ir, nil
}

// faultsParam parses faults=3,17,40 into a sorted, deduplicated,
// always-non-nil slice, so the echoed "faults" field is a canonical JSON
// array ([] rather than null, 3,3,1 rendered as [1,3]) regardless of how
// the caller spelled the query.
func faultsParam(r *http.Request, top core.Topology) ([]int, error) {
	out := []int{}
	raw := r.URL.Query().Get("faults")
	if raw == "" {
		return out, nil
	}
	for _, p := range strings.Split(raw, ",") {
		f, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, badRequest("fault id %q is not an integer", p)
		}
		if !top.ValidNode(f) {
			return nil, badRequest("fault %d out of range [0,%d)", f, top.Order())
		}
		out = append(out, f)
	}
	sort.Ints(out)
	j := 0
	for i, f := range out {
		if i == 0 || f != out[j-1] {
			out[j] = f
			j++
		}
	}
	return out[:j], nil
}

type infoResponse struct {
	M            int `json:"m"`
	N            int `json:"n"`
	Order        int `json:"order"`
	Edges        int `json:"edges"`
	Degree       int `json:"degree"`
	Diameter     int `json:"diameter"`
	Connectivity int `json:"connectivity"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	hb, d, err := s.instance(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, infoResponse{
		M: d.M, N: d.N,
		Order:        hb.Order(),
		Edges:        hb.EdgeCountFormula(),
		Degree:       hb.Degree(),
		Diameter:     hb.DiameterFormula(),
		Connectivity: hb.ConnectivityFormula(),
	})
}

// maxConformanceOrder bounds on-demand conformance runs: the invariant
// registry does BFS sweeps and max-flow probes, so a request against a
// big instance could occupy a worker for seconds.
const maxConformanceOrder = 1 << 12

func (s *Server) handleConformance(w http.ResponseWriter, r *http.Request) {
	top, d, err := s.instance(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if top.Order() > maxConformanceOrder {
		writeErr(w, badRequest("conformance on %v (%d nodes) exceeds the on-demand cap %d",
			d, top.Order(), maxConformanceOrder))
		return
	}
	// The registry needs the dense-capable instance; the order cap above
	// keeps its materialisation trivial even when d resolved to the
	// implicit tier under a small configured MaxOrder.
	hb := denseBackend(top)
	if hb == nil {
		writeErr(w, badRequest("conformance unsupported on backend %T", top))
		return
	}
	if err := checkDeadline(r); err != nil {
		writeErr(w, err)
		return
	}
	rep := conformance.Run(
		[]conformance.Target{conformance.HyperButterflyInstance(hb)},
		conformance.DefaultInvariants(),
		conformance.Options{},
	)
	writeJSON(w, rep)
}

// estimate request caps: samples are bounded so a request stays well
// under the deadline even at ~µs per label-arithmetic distance, and
// exact source scans (Order distance evaluations each) are only allowed
// on instances small enough to finish one quickly.
const (
	defaultEstimateSamples = 2048
	maxEstimateSamples     = 1 << 16
	maxScanSources         = 4
	maxScanOrder           = 1 << 20
)

type estimateResponse struct {
	M     int `json:"m"`
	N     int `json:"n"`
	Order int `json:"order"`

	Samples    int     `json:"samples"`
	Confidence float64 `json:"confidence"`
	Seed       int64   `json:"seed"`

	DiameterLower   int `json:"diameter_lower"`
	DiameterUpper   int `json:"diameter_upper"`
	DiameterFormula int `json:"diameter_formula"`
	ScannedSources  int `json:"scanned_sources,omitempty"`

	MeanDistance float64   `json:"mean_distance"`
	MeanCI       float64   `json:"mean_ci"`
	CIHalfWidth  float64   `json:"ci_half_width"`
	Fractions    []float64 `json:"fractions"`
}

// handleEstimate answers sampled structural questions — a diameter
// bracket and the distance distribution with Hoeffding intervals — from
// the distance oracle alone, so it works unchanged on the implicit tier
// where exact sweeps are out of reach. Uncached: the seed parameter
// makes the response identity high-cardinality and recomputation is
// only milliseconds.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	top, d, err := s.instance(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	// A loaded snapshot makes the answer exact and O(1); live=1 opts back
	// into the sampled path (for comparing the estimator against truth).
	if !boolParam(r, "live") {
		if e := s.snapshotFor(d); e != nil {
			w.Header().Set("X-Snapshot", "hit")
			writeBody(w, ctJSON, "", e.estimateBody)
			return
		}
	}
	samples, err := intParam(r, "samples", defaultEstimateSamples)
	if err != nil {
		writeErr(w, err)
		return
	}
	if samples < 1 || samples > maxEstimateSamples {
		writeErr(w, badRequest("samples=%d outside [1,%d]", samples, maxEstimateSamples))
		return
	}
	seed, err := intParam(r, "seed", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	scan, err := intParam(r, "scan", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	if scan < 0 || scan > maxScanSources {
		writeErr(w, badRequest("scan=%d outside [0,%d]", scan, maxScanSources))
		return
	}
	if scan > 0 && top.Order() > maxScanOrder {
		writeErr(w, badRequest("scan on %v (%d nodes) exceeds the exact-scan cap %d", d, top.Order(), maxScanOrder))
		return
	}
	if err := checkDeadline(r); err != nil {
		writeErr(w, err)
		return
	}
	cfg := graph.EstConfig{
		Samples:     samples,
		Seed:        int64(seed),
		KnownUpper:  top.DiameterFormula(),
		ScanSources: scan,
	}
	de := graph.EstimateDiameter(top.Order(), top.Distance, cfg)
	he := graph.EstimateDistanceHistogram(top.Order(), top.Distance, cfg)
	writeJSON(w, estimateResponse{
		M: d.M, N: d.N, Order: top.Order(),
		Samples:         samples,
		Confidence:      he.Confidence,
		Seed:            int64(seed),
		DiameterLower:   de.Lower,
		DiameterUpper:   de.Upper,
		DiameterFormula: top.DiameterFormula(),
		ScannedSources:  de.ScannedSources,
		MeanDistance:    he.MeanDistance,
		MeanCI:          he.MeanCI,
		CIHalfWidth:     he.CIHalfWidth,
		Fractions:       he.Fractions,
	})
}

// cacheKey builds the full query identity for the route cache. The
// verify flag is part of the identity: verified and unverified bodies
// differ.
func cacheKey(kind string, d Dims, u, v int, verify bool) string {
	key := kind + "|" + strconv.Itoa(d.M) + "|" + strconv.Itoa(d.N) + "|" +
		strconv.Itoa(u) + "|" + strconv.Itoa(v)
	if verify {
		key += "|verified"
	}
	return key
}

// boolParam reads a flag parameter (accepted forms: 1, true).
func boolParam(r *http.Request, name string) bool {
	raw := r.URL.Query().Get(name)
	return raw == "1" || raw == "true"
}

// verification -------------------------------------------------------

// bfsDist runs one pooled-scratch kernel BFS from u and passes the
// distances to read (the slice aliases the scratch, so it must not
// escape read).
func (s *Server) bfsDist(hb *core.HyperButterfly, u int, read func(dist []int32) error) error {
	sc := s.scratch.Get().(*graph.Scratch)
	defer s.scratch.Put(sc)
	return read(hb.Dense().BFSScratch(u, nil, sc))
}

// verifyRoute independently checks a /route answer: the path must run
// u -> v over real edges and its length must equal the shortest-path
// distance (Theorem 3 routes are optimal). On the dense tier the oracle
// is a pooled-scratch BFS over the materialised adjacency; on the
// implicit tier — where building that adjacency is the very thing the
// backend avoids — every hop is checked against the label-computed
// neighborhood of its predecessor and the length against the analytic
// distance, which the implicit differential gate holds to BFS equality
// on every conformance instance.
func (s *Server) verifyRoute(top core.Topology, u, v int, path []int) error {
	if len(path) == 0 || path[0] != u || path[len(path)-1] != v {
		return fmt.Errorf("route verification failed: path endpoints %v, want %d -> %d", path, u, v)
	}
	hb, denseTier := top.(*core.HyperButterfly)
	if !denseTier {
		var buf []int
		for i := 1; i < len(path); i++ {
			var ok bool
			if buf, ok = implicitHasEdge(top, path[i-1], path[i], buf); !ok {
				return fmt.Errorf("route verification failed: %d-%d is not an edge", path[i-1], path[i])
			}
		}
		if want := top.Distance(u, v); len(path)-1 != want {
			return fmt.Errorf("route verification failed: length %d, distance %d", len(path)-1, want)
		}
		return nil
	}
	dense := hb.Dense()
	for i := 1; i < len(path); i++ {
		if !dense.HasEdge(path[i-1], path[i]) {
			return fmt.Errorf("route verification failed: %d-%d is not an edge", path[i-1], path[i])
		}
	}
	return s.bfsDist(hb, u, func(dist []int32) error {
		if int(dist[v]) != len(path)-1 {
			return fmt.Errorf("route verification failed: length %d, BFS distance %d", len(path)-1, dist[v])
		}
		return nil
	})
}

// implicitHasEdge reports whether u-w is an edge using only the label
// neighborhood of u; it returns the (possibly grown) scratch buffer so
// a verification loop reuses one allocation.
func implicitHasEdge(top core.Topology, u, w int, buf []int) ([]int, bool) {
	buf = top.AppendNeighbors(u, buf[:0])
	for _, x := range buf {
		if x == w {
			return buf, true
		}
	}
	return buf, false
}

// verifyPaths independently checks a /paths answer: every path must run
// u -> v over real edges, the set must be internally vertex-disjoint,
// and no path may be shorter than the shortest-path distance. The dense
// tier uses the BFS oracle; the implicit tier certifies the set with
// graph.VerifyDisjointPaths (every Topology is a graph.Graph) against
// the analytic distance.
func (s *Server) verifyPaths(top core.Topology, u, v int, paths [][]int) error {
	hb, denseTier := top.(*core.HyperButterfly)
	if !denseTier {
		if err := graph.VerifyDisjointPaths(top, u, v, paths); err != nil {
			return fmt.Errorf("paths verification failed: %v", err)
		}
		minLen := top.Distance(u, v)
		for pi, p := range paths {
			if len(p)-1 < minLen {
				return fmt.Errorf("paths verification failed: path %d length %d below distance %d", pi, len(p)-1, minLen)
			}
		}
		return nil
	}
	dense := hb.Dense()
	return s.bfsDist(hb, u, func(dist []int32) error {
		for pi, p := range paths {
			if len(p) == 0 || p[0] != u || p[len(p)-1] != v {
				return fmt.Errorf("paths verification failed: path %d endpoints %v, want %d -> %d", pi, p, u, v)
			}
			for i := 1; i < len(p); i++ {
				if !dense.HasEdge(p[i-1], p[i]) {
					return fmt.Errorf("paths verification failed: path %d uses non-edge %d-%d", pi, p[i-1], p[i])
				}
			}
			if len(p)-1 < int(dist[v]) {
				return fmt.Errorf("paths verification failed: path %d length %d below BFS distance %d", pi, len(p)-1, dist[v])
			}
		}
		return nil
	})
}

// marshalBody renders a response exactly as json.Encoder does (trailing
// newline included) so cached and uncached bodies are byte-identical.
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
