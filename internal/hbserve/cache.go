package hbserve

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// RouteCache is a sharded LRU cache of rendered response bodies with
// per-key singleflight deduplication: concurrent requests for the same
// key compute once and all receive the same byte slice. Keys are the
// full query identity ("route|m|n|u|v"), values are the final JSON
// bytes — caching after rendering is what makes responses
// byte-identical regardless of concurrency or cache state.
//
// Sharding by key hash keeps the per-shard mutex off the hot path under
// concurrent load; each shard holds its own LRU list so eviction is
// O(1) and shard-local.
type RouteCache struct {
	shards []cacheShard
	hits   atomic.Uint64
	misses atomic.Uint64
	dedups atomic.Uint64 // calls that waited on another's computation
}

// DefaultCacheShards balances lock spreading against per-shard LRU
// fragmentation.
const DefaultCacheShards = 16

// NewRouteCache returns a cache of at most capacity entries spread over
// shards (rounded up to a power of two). capacity <= 0 disables
// caching: GetOrCompute always computes, singleflight still applies.
func NewRouteCache(capacity, shards int) *RouteCache {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	pow := 1
	for pow < shards {
		pow <<= 1
	}
	shards = pow
	perShard := 0
	if capacity > 0 {
		perShard = (capacity + shards - 1) / shards
	}
	c := &RouteCache{shards: make([]cacheShard, shards)}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].lru = list.New()
		c.shards[i].flight = make(map[string]*flightCall)
	}
	return c
}

type cacheShard struct {
	mu     sync.Mutex
	cap    int
	items  map[string]*list.Element
	lru    *list.List // front = most recent; values are *cacheEntry
	flight map[string]*flightCall
}

type cacheEntry struct {
	key string
	val []byte
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// GetOrCompute returns the cached bytes for key, or runs compute
// exactly once across all concurrent callers and caches its result.
// The returned slice is shared — callers must not mutate it. hit
// reports a cache hit (a singleflight wait counts as a miss for the
// caller even though the computation ran elsewhere).
func (c *RouteCache) GetOrCompute(key string, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	s := &c.shards[fnv1a(key)&uint64(len(c.shards)-1)]

	s.mu.Lock()
	if e, ok := s.items[key]; ok {
		s.lru.MoveToFront(e)
		val = e.Value.(*cacheEntry).val
		s.mu.Unlock()
		c.hits.Add(1)
		return val, true, nil
	}
	if fc, ok := s.flight[key]; ok {
		s.mu.Unlock()
		c.dedups.Add(1)
		<-fc.done
		return fc.val, false, fc.err
	}
	fc := &flightCall{done: make(chan struct{})}
	s.flight[key] = fc
	s.mu.Unlock()
	c.misses.Add(1)

	func() {
		// A panicking compute (constructive code panics on internal
		// inconsistencies) must still release the waiters.
		defer func() {
			if r := recover(); r != nil {
				fc.err = fmt.Errorf("hbserve: compute panicked: %v", r)
			}
			close(fc.done)
		}()
		fc.val, fc.err = compute()
	}()

	s.mu.Lock()
	delete(s.flight, key)
	if fc.err == nil && s.cap > 0 {
		e := s.lru.PushFront(&cacheEntry{key: key, val: fc.val})
		s.items[key] = e
		for s.lru.Len() > s.cap {
			oldest := s.lru.Back()
			s.lru.Remove(oldest)
			delete(s.items, oldest.Value.(*cacheEntry).key)
		}
	}
	s.mu.Unlock()
	return fc.val, false, fc.err
}

// Stats returns cumulative hit / miss / deduplicated-call counters.
func (c *RouteCache) Stats() (hits, misses, dedups uint64) {
	return c.hits.Load(), c.misses.Load(), c.dedups.Load()
}

// Len returns the number of resident entries across all shards.
func (c *RouteCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// fnv1a is the 64-bit FNV-1a hash, inlined to keep the shard pick
// allocation-free.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// fnv1aBytes is fnv1a over a byte slice; identical output for
// identical content, without a string conversion.
func fnv1aBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}
