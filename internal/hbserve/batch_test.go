package hbserve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faultroute"
)

// batchJSONResp mirrors the columnar JSON response for decoding in
// tests.
type batchJSONResp struct {
	M       int     `json:"m"`
	N       int     `json:"n"`
	Op      string  `json:"op"`
	Count   int     `json:"count"`
	Faults  []int   `json:"faults"`
	Status  []uint8 `json:"status"`
	Dist    []int32 `json:"dist"`
	Off     []int32 `json:"off"`
	PairOff []int32 `json:"pair_off"`
	PathOff []int32 `json:"path_off"`
	Nodes   []int   `json:"nodes"`
}

func postBatch(t *testing.T, url, contentType string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/batch", contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// batchPairs is the shared test workload: a spread of valid pairs plus
// one out-of-range pair and one equal pair, exercising every status.
func batchPairs(order int) (src, dst []int) {
	for i := 0; i < 40; i++ {
		src = append(src, (i*7)%order)
		dst = append(dst, (i*i*13+5)%order)
	}
	src = append(src, 3, order+5, 9)
	dst = append(dst, 3, 0, 9) // equal pair, bad src, equal pair
	return src, dst
}

func jsonBatchBody(t *testing.T, op string, m, n int, faults, src, dst []int) []byte {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"m": m, "n": n, "op": op, "faults": faults, "src": src, "dst": dst,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func appendU32Frame(out []byte, vals []int) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(4*len(vals)))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint32(out, uint32(v))
	}
	return out
}

func binBatchBody(op uint8, m, n int, faults, src, dst []int) []byte {
	le := binary.LittleEndian
	out := le.AppendUint32(nil, 24)
	out = le.AppendUint32(out, batchBinMagic)
	out = le.AppendUint16(out, batchBinVersion)
	out = append(out, op, 0)
	out = le.AppendUint32(out, uint32(m))
	out = le.AppendUint32(out, uint32(n))
	out = le.AppendUint32(out, uint32(len(src)))
	out = le.AppendUint32(out, uint32(len(faults)))
	out = appendU32Frame(out, faults)
	out = appendU32Frame(out, src)
	out = appendU32Frame(out, dst)
	return out
}

// decodeBinResp splits a binary response into its header fields and
// column frames.
func decodeBinResp(t *testing.T, body []byte) (op uint8, npairs, totalPaths int, frames [][]byte) {
	t.Helper()
	hdr, rest, err := nextFrame(body)
	if err != nil {
		t.Fatalf("response header: %v", err)
	}
	if len(hdr) != 16 {
		t.Fatalf("response header is %d bytes, want 16", len(hdr))
	}
	le := binary.LittleEndian
	if m := le.Uint32(hdr); m != batchBinMagic {
		t.Fatalf("response magic %#x", m)
	}
	if v := le.Uint16(hdr[4:]); v != batchBinVersion {
		t.Fatalf("response version %d", v)
	}
	op = hdr[6]
	npairs = int(le.Uint32(hdr[8:]))
	totalPaths = int(le.Uint32(hdr[12:]))
	for len(rest) > 0 {
		var f []byte
		if f, rest, err = nextFrame(rest); err != nil {
			t.Fatalf("response frame: %v", err)
		}
		frames = append(frames, f)
	}
	return op, npairs, totalPaths, frames
}

func frameInt32s(f []byte) []int32 {
	out := make([]int32, len(f)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(f[4*i:]))
	}
	return out
}

func frameInts(f []byte) []int {
	out := make([]int, len(f)/4)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint32(f[4*i:]))
	}
	return out
}

// TestBatchJSONRoundTrip answers every op over the JSON codec and
// checks each pair against the single-query engines.
func TestBatchJSONRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	hb := core.MustNew(2, 3)
	src, dst := batchPairs(hb.Order())
	faults := []int{5, 17}

	for _, op := range []string{"dist", "route", "paths", "faultroute"} {
		t.Run(op, func(t *testing.T) {
			var f []int
			if op == "faultroute" {
				f = faults
			}
			resp, body := postBatch(t, ts.URL, ctJSON, jsonBatchBody(t, op, 2, 3, f, src, dst))
			if resp.StatusCode != 200 {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != ctJSON {
				t.Fatalf("Content-Type %q", ct)
			}
			var r batchJSONResp
			if err := json.Unmarshal(body, &r); err != nil {
				t.Fatal(err)
			}
			if r.Op != op || r.Count != len(src) || len(r.Status) != len(src) {
				t.Fatalf("envelope op=%q count=%d status=%d, want %q/%d", r.Op, r.Count, len(r.Status), op, len(src))
			}
			checkBatchColumns(t, hb, op, f, src, dst, &r)
		})
	}
}

// checkBatchColumns verifies a decoded columnar answer pair-by-pair
// against the single-query oracles.
func checkBatchColumns(t *testing.T, hb *core.HyperButterfly, op string, faults, src, dst []int, r *batchJSONResp) {
	t.Helper()
	var fr *faultroute.Router
	if op == "faultroute" {
		var err error
		if fr, err = faultroute.New(hb, faults); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Faults, faults) {
			t.Fatalf("faults echoed as %v, want %v", r.Faults, faults)
		}
	}
	for i := range src {
		u, v := src[i], dst[i]
		if !hb.ValidNode(u) || !hb.ValidNode(v) {
			if r.Status[i] != core.BatchBadNode {
				t.Fatalf("pair %d (%d,%d): status %d, want bad-node", i, u, v, r.Status[i])
			}
			continue
		}
		switch op {
		case "dist":
			if r.Status[i] != core.BatchOK || int(r.Dist[i]) != hb.Distance(u, v) {
				t.Fatalf("pair %d: dist %d status %d, want %d", i, r.Dist[i], r.Status[i], hb.Distance(u, v))
			}
		case "route":
			want := hb.Route(u, v)
			got := r.Nodes[r.Off[i]:r.Off[i+1]]
			if r.Status[i] != core.BatchOK || !reflect.DeepEqual(got, want) {
				t.Fatalf("pair %d (%d,%d): route %v, want %v", i, u, v, got, want)
			}
			if int(r.Dist[i]) != hb.Distance(u, v) {
				t.Fatalf("pair %d: dist %d, want %d", i, r.Dist[i], hb.Distance(u, v))
			}
		case "paths":
			want, err := hb.DisjointPaths(u, v)
			if err != nil { // equal endpoints
				if r.Status[i] != core.BatchFailed {
					t.Fatalf("pair %d (%d,%d): status %d, want failed", i, u, v, r.Status[i])
				}
				if r.PairOff[i] != r.PairOff[i+1] {
					t.Fatalf("pair %d: failed pair owns paths", i)
				}
				continue
			}
			lo, hi := r.PairOff[i], r.PairOff[i+1]
			if int(hi-lo) != len(want) {
				t.Fatalf("pair %d: %d paths, want %d", i, hi-lo, len(want))
			}
			for p := lo; p < hi; p++ {
				got := r.Nodes[r.PathOff[p]:r.PathOff[p+1]]
				if !reflect.DeepEqual(got, want[p-lo]) {
					t.Fatalf("pair %d path %d: %v, want %v", i, p-lo, got, want[p-lo])
				}
			}
		case "faultroute":
			want, err := fr.Route(u, v)
			got := r.Nodes[r.Off[i]:r.Off[i+1]]
			if err != nil {
				if r.Status[i] != core.BatchFailed || len(got) != 0 {
					t.Fatalf("pair %d (%d,%d): status %d nodes %v, want failed/empty", i, u, v, r.Status[i], got)
				}
				continue
			}
			if r.Status[i] != core.BatchOK || !reflect.DeepEqual(got, want) {
				t.Fatalf("pair %d (%d,%d): route %v, want %v", i, u, v, got, want)
			}
		}
	}
}

// TestBatchBinRoundTrip answers the same workload over the binary codec
// and requires column-for-column agreement with the JSON answer.
func TestBatchBinRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	hb := core.MustNew(2, 3)
	src, dst := batchPairs(hb.Order())
	faults := []int{5, 17}

	for name, op := range batchOpCodes {
		t.Run(name, func(t *testing.T) {
			var f []int
			if op == batchOpFaultRoute {
				f = faults
			}
			resp, body := postBatch(t, ts.URL, ctBatchBin, binBatchBody(op, 2, 3, f, src, dst))
			if resp.StatusCode != 200 {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != ctBatchBin {
				t.Fatalf("Content-Type %q", ct)
			}
			gotOp, npairs, totalPaths, frames := decodeBinResp(t, body)
			if gotOp != op || npairs != len(src) {
				t.Fatalf("header op=%d npairs=%d, want %d/%d", gotOp, npairs, op, len(src))
			}
			r := batchJSONResp{M: 2, N: 3, Op: name, Count: npairs, Faults: f, Status: frames[0]}
			switch op {
			case batchOpDist:
				r.Dist = frameInt32s(frames[1])
			case batchOpRoute:
				r.Dist, r.Off, r.Nodes = frameInt32s(frames[1]), frameInt32s(frames[2]), frameInts(frames[3])
			case batchOpFaultRoute:
				r.Off, r.Nodes = frameInt32s(frames[1]), frameInts(frames[2])
			case batchOpPaths:
				r.PairOff, r.PathOff, r.Nodes = frameInt32s(frames[1]), frameInt32s(frames[2]), frameInts(frames[3])
				if totalPaths != len(r.PathOff)-1 {
					t.Fatalf("header totalPaths %d, path_off has %d", totalPaths, len(r.PathOff)-1)
				}
			}
			checkBatchColumns(t, hb, name, f, src, dst, &r)
		})
	}
}

// TestBatchMalformed covers the 400/405/415 surface of both codecs.
func TestBatchMalformed(t *testing.T) {
	_, ts := newTestServer(t)
	good := binBatchBody(batchOpRoute, 2, 3, nil, []int{0, 1}, []int{5, 9})

	cases := []struct {
		name string
		ct   string
		body []byte
		code int
	}{
		{"bad json", ctJSON, []byte(`{"src": [1,`), 400},
		{"unknown op", ctJSON, []byte(`{"op":"teleport","src":[1],"dst":[2]}`), 400},
		{"column mismatch", ctJSON, []byte(`{"src":[1,2],"dst":[3]}`), 400},
		{"faults on route", ctJSON, []byte(`{"op":"route","faults":[1],"src":[1],"dst":[2]}`), 400},
		{"fault out of range", ctJSON, []byte(`{"op":"faultroute","faults":[99999],"src":[1],"dst":[2]}`), 400},
		{"bad dims", ctJSON, []byte(`{"m":-3,"n":1,"src":[1],"dst":[2]}`), 400},
		{"unknown content type", "text/csv", []byte("1,2"), 415},
		{"bin empty", ctBatchBin, nil, 400},
		{"bin short header", ctBatchBin, good[:10], 400},
		{"bin bad magic", ctBatchBin, func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(b[4:], 0xDEADBEEF)
			return b
		}(), 400},
		{"bin wrong version", ctBatchBin, func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint16(b[8:], batchBinVersion+7)
			return b
		}(), 400},
		{"bin unknown op", ctBatchBin, func() []byte {
			b := append([]byte(nil), good...)
			b[10] = 42
			return b
		}(), 400},
		{"bin truncated frame", ctBatchBin, good[:len(good)-3], 400},
		{"bin trailing bytes", ctBatchBin, append(append([]byte(nil), good...), 0xFF), 400},
		{"bin column shorter than header", ctBatchBin, func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(b[20:], 3) // npairs 3, frames carry 2
			return b
		}(), 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postBatch(t, ts.URL, tc.ct, tc.body)
			if resp.StatusCode != tc.code {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.code, body)
			}
		})
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/batch", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET /batch: status %d, want 405", resp.StatusCode)
	}
}

// TestBatchCacheByteIdentity repeats a small batch and requires the hit
// to return byte-identical bodies with the same Content-Type, on both
// codecs; a batch over the cache bound must report bypass.
func TestBatchCacheByteIdentity(t *testing.T) {
	_, ts := newTestServer(t)
	src, dst := []int{0, 5, 9}, []int{90, 4, 77}

	bodies := map[string][]byte{
		ctJSON:     jsonBatchBody(t, "route", 2, 3, nil, src, dst),
		ctBatchBin: binBatchBody(batchOpRoute, 2, 3, nil, src, dst),
	}
	for ct, reqBody := range bodies {
		resp1, body1 := postBatch(t, ts.URL, ct, reqBody)
		resp2, body2 := postBatch(t, ts.URL, ct, reqBody)
		if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
			t.Fatalf("%s: status %d/%d", ct, resp1.StatusCode, resp2.StatusCode)
		}
		if c1, c2 := resp1.Header.Get("X-Cache"), resp2.Header.Get("X-Cache"); c1 != "miss" || c2 != "hit" {
			t.Fatalf("%s: X-Cache %q then %q, want miss then hit", ct, c1, c2)
		}
		if !bytes.Equal(body1, body2) {
			t.Fatalf("%s: hit body differs from miss body", ct)
		}
		if ct1, ct2 := resp1.Header.Get("Content-Type"), resp2.Header.Get("Content-Type"); ct1 != ct || ct2 != ct {
			t.Fatalf("%s: Content-Type %q then %q", ct, ct1, ct2)
		}
	}

	// The two codecs must not alias each other's cache entries.
	respJ, _ := postBatch(t, ts.URL, ctJSON, bodies[ctJSON])
	if respJ.Header.Get("Content-Type") != ctJSON {
		t.Fatal("JSON request answered from the binary entry")
	}

	big := make([]int, batchCacheMaxPairs+1)
	resp, _ := postBatch(t, ts.URL, ctJSON, jsonBatchBody(t, "route", 2, 3, nil, big, big))
	if c := resp.Header.Get("X-Cache"); c != "bypass" {
		t.Fatalf("big batch X-Cache %q, want bypass", c)
	}
}

// TestBatchMetricsScrape drives both codecs and checks the per-codec
// batch families appear in /metrics with the right counts.
func TestBatchMetricsScrape(t *testing.T) {
	_, ts := newTestServer(t)
	src, dst := []int{0, 5, 9, 33}, []int{90, 4, 77, 2}
	if resp, body := postBatch(t, ts.URL, ctJSON, jsonBatchBody(t, "dist", 2, 3, nil, src, dst)); resp.StatusCode != 200 {
		t.Fatalf("json batch: %d %s", resp.StatusCode, body)
	}
	if resp, body := postBatch(t, ts.URL, ctBatchBin, binBatchBody(batchOpRoute, 2, 3, nil, src, dst)); resp.StatusCode != 200 {
		t.Fatalf("bin batch: %d %s", resp.StatusCode, body)
	}

	code, scrape := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		fmt.Sprintf(`hbd_batch_requests_total{codec="json",op="dist"} 1`),
		fmt.Sprintf(`hbd_batch_requests_total{codec="bin",op="route"} 1`),
		fmt.Sprintf(`hbd_batch_pairs_total{codec="json",op="dist"} %d`, len(src)),
		fmt.Sprintf(`hbd_batch_pairs_total{codec="bin",op="route"} %d`, len(src)),
		`hbd_batch_op_seconds_count{op="dist"} 1`,
		`hbd_batch_op_seconds_count{op="route"} 1`,
		`hbd_batch_op_seconds_bucket{op="route",le="+Inf"} 1`,
	} {
		if !strings.Contains(string(scrape), want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
}

// TestBatchEmpty: zero pairs is a valid request on both codecs.
func TestBatchEmpty(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postBatch(t, ts.URL, ctJSON, []byte(`{"op":"dist","src":[],"dst":[]}`))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var r batchJSONResp
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Count != 0 || len(r.Status) != 0 {
		t.Fatalf("empty batch answered count=%d", r.Count)
	}
	resp, body = postBatch(t, ts.URL, ctBatchBin, binBatchBody(batchOpDist, 2, 3, nil, nil, nil))
	if resp.StatusCode != 200 {
		t.Fatalf("bin status %d: %s", resp.StatusCode, body)
	}
	if _, npairs, _, _ := decodeBinResp(t, body); npairs != 0 {
		t.Fatalf("bin empty batch npairs %d", npairs)
	}
}

// TestBatchImplicitTier routes a batch on dims served by the implicit
// backend and checks it against label arithmetic.
func TestBatchImplicitTier(t *testing.T) {
	s := NewServer(Config{MaxOrder: 64}) // HB(2,3) order 128 -> implicit tier
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	top, err := s.pool.Get(Dims{M: 2, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, dense := top.(*core.HyperButterfly); dense {
		t.Fatal("expected the implicit tier")
	}
	src, dst := batchPairs(top.Order())
	resp, body := postBatch(t, ts.URL, ctJSON, jsonBatchBody(t, "route", 2, 3, nil, src, dst))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var r batchJSONResp
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	checkBatchColumns(t, core.MustNew(2, 3), "route", nil, src, dst, &r)
}
