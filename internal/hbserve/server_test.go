package hbserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestRouteEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	hb := core.MustNew(2, 3)
	u, v := 0, 95
	code, body := get(t, fmt.Sprintf("%s/route?m=2&n=3&u=%d&v=%d", ts.URL, u, v))
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var res routeResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Distance != hb.Distance(u, v) {
		t.Errorf("distance %d, want %d", res.Distance, hb.Distance(u, v))
	}
	want := hb.Route(u, v)
	if len(res.Path) != len(want) {
		t.Fatalf("path %v, want %v", res.Path, want)
	}
	for i := range want {
		if res.Path[i] != want[i] {
			t.Fatalf("path %v, want %v", res.Path, want)
		}
	}
	if len(res.Moves) != res.Distance {
		t.Errorf("%d moves for distance %d", len(res.Moves), res.Distance)
	}
}

func TestRouteByteIdenticalUnderConcurrency(t *testing.T) {
	_, ts := newTestServer(t)
	url := ts.URL + "/route?m=2&n=4&u=3&v=200"
	const goroutines = 32
	bodies := make([][]byte, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs:\n%s\nvs\n%s", i, bodies[0], bodies[i])
		}
	}
	// A later (cache-hit) request must also be byte-identical.
	_, again := get(t, url)
	if !bytes.Equal(bodies[0], again) {
		t.Fatalf("cached response differs:\n%s\nvs\n%s", bodies[0], again)
	}
}

func TestPathsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	hb := core.MustNew(2, 3)
	u, v := 1, 77
	code, body := get(t, fmt.Sprintf("%s/paths?m=2&n=3&u=%d&v=%d", ts.URL, u, v))
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var res pathsResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Count != hb.Degree() {
		t.Errorf("count %d, want m+4 = %d", res.Count, hb.Degree())
	}
	if err := graph.VerifyDisjointPaths(hb, u, v, res.Paths); err != nil {
		t.Errorf("served paths fail verification: %v", err)
	}
}

func TestFaultRouteEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	hb := core.MustNew(2, 3)
	u, v := 0, 95
	// Fault every interior node of the optimal route to force a detour.
	opt := hb.Route(u, v)
	var faults []string
	faultSet := map[int]bool{}
	for _, x := range opt[1 : len(opt)-1] {
		faults = append(faults, fmt.Sprint(x))
		faultSet[x] = true
	}
	code, body := get(t, fmt.Sprintf("%s/faultroute?m=2&n=3&u=%d&v=%d&faults=%s",
		ts.URL, u, v, strings.Join(faults, ",")))
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var res faultRouteResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Strategy == "" || res.Strategy == "optimal" {
		t.Errorf("strategy %q after faulting the whole optimal route", res.Strategy)
	}
	for _, x := range res.Path {
		if faultSet[x] {
			t.Errorf("served path crosses fault %d", x)
		}
	}
	if !res.WithinGuarantee && len(faults) <= hb.M()+3 {
		t.Errorf("within_guarantee false at %d faults", len(faults))
	}

	// Faulty endpoint: a 422, not a 500.
	code, _ = get(t, fmt.Sprintf("%s/faultroute?m=2&n=3&u=0&v=95&faults=0", ts.URL))
	if code != http.StatusUnprocessableEntity {
		t.Errorf("faulty endpoint gave %d, want 422", code)
	}
}

func TestBadInputs(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		name, path string
	}{
		{"non-integer node", "/route?m=2&n=3&u=zero&v=5"},
		{"out-of-range node", "/route?m=2&n=3&u=0&v=96"},
		{"negative node", "/paths?m=2&n=3&u=-1&v=5"},
		{"missing node", "/route?m=2&n=3&u=0"},
		{"bad dims", "/info?m=2&n=2"},
		{"huge dims", "/info?m=20&n=5"},
		{"non-integer dim", "/info?m=two&n=3"},
		{"bad fault id", "/faultroute?m=2&n=3&u=0&v=5&faults=1,x"},
		{"equal endpoints", "/paths?m=2&n=3&u=5&v=5"},
		{"conformance too big", "/conformance?m=3&n=7"},
	} {
		code, body := get(t, ts.URL+tc.path)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, code, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: body %q is not an error JSON", tc.name, body)
		}
	}
}

func TestInfoEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/info?m=2&n=3")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var res infoResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	hb := core.MustNew(2, 3)
	if res.Order != hb.Order() || res.Edges != hb.EdgeCountFormula() ||
		res.Degree != hb.Degree() || res.Diameter != hb.DiameterFormula() ||
		res.Connectivity != hb.ConnectivityFormula() {
		t.Errorf("info %+v disagrees with core", res)
	}
}

func TestConformanceEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance run in -short")
	}
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/conformance?m=1&n=3")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var rep struct {
		Targets int `json:"targets"`
		Pass    int `json:"pass"`
		Fail    int `json:"fail"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Targets != 1 || rep.Fail != 0 || rep.Pass == 0 {
		t.Errorf("conformance report %+v", rep)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	get(t, ts.URL+"/route?m=2&n=3&u=0&v=95")
	get(t, ts.URL+"/route?m=2&n=3&u=0&v=95") // hit
	get(t, ts.URL+"/route?m=2&n=3&u=0&v=bad")
	code, body := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	text := string(body)
	for _, line := range []string{
		`hbd_requests_total{endpoint="route",code="200"} 2`,
		`hbd_requests_total{endpoint="route",code="400"} 1`,
		`hbd_route_cache_hits_total 1`,
		`hbd_route_cache_misses_total 1`,
		`hbd_request_seconds_count{endpoint="route"} 3`,
		"hbd_inflight_requests 0",
		"hbd_pool_instances 1",
		"hbd_up 1",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("metrics missing %q:\n%s", line, text)
		}
	}
	if s.Metrics().InFlight() != 0 {
		t.Errorf("in-flight %d after requests finished", s.Metrics().InFlight())
	}
	total, non2xx := s.Metrics().Requests()
	if total != 3 || non2xx != 1 {
		t.Errorf("requests total=%d non2xx=%d, want 3,1", total, non2xx)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/healthz")
	if code != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
}

// TestGracefulDrain holds a request open via the test hook, cancels the
// serve context, and asserts Serve waits for the request to finish and
// that the response still arrives intact.
func TestGracefulDrain(t *testing.T) {
	s := NewServer(Config{})
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	s.testHook = func(endpoint string) {
		if endpoint == "route" {
			entered <- struct{}{}
			<-release
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln, 5*time.Second) }()

	base := "http://" + ln.Addr().String()
	type reply struct {
		code int
		body []byte
		err  error
	}
	replies := make(chan reply, 1)
	go func() {
		resp, err := http.Get(base + "/route?m=2&n=3&u=0&v=95")
		if err != nil {
			replies <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		replies <- reply{code: resp.StatusCode, body: body}
	}()

	<-entered // the request is in flight
	cancel()  // begin shutdown while it is held open

	select {
	case err := <-served:
		t.Fatalf("Serve returned %v before the in-flight request finished", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)

	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	r := <-replies
	if r.err != nil || r.code != 200 {
		t.Fatalf("drained request: code=%d err=%v", r.code, r.err)
	}
	var res routeResponse
	if err := json.Unmarshal(r.body, &res); err != nil {
		t.Fatalf("drained body %q: %v", r.body, err)
	}
}

// TestVerifyParam exercises verify=1 on /route and /paths: responses
// carry verified:true, bodies are cached separately from unverified
// ones, and every sampled pair passes the independent BFS check.
func TestVerifyParam(t *testing.T) {
	s, ts := newTestServer(t)
	hb := core.MustNew(2, 3)
	for _, pair := range [][2]int{{0, 95}, {3, 40}, {17, 17}} {
		u, v := pair[0], pair[1]
		code, body := get(t, fmt.Sprintf("%s/route?m=2&n=3&u=%d&v=%d&verify=1", ts.URL, u, v))
		if code != 200 {
			t.Fatalf("route verify status %d: %s", code, body)
		}
		var res routeResponse
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatalf("route %d->%d not verified: %s", u, v, body)
		}
		if res.Distance != hb.Distance(u, v) {
			t.Errorf("route %d->%d distance %d, want %d", u, v, res.Distance, hb.Distance(u, v))
		}
	}
	code, body := get(t, ts.URL+"/paths?m=2&n=3&u=0&v=95&verify=true")
	if code != 200 {
		t.Fatalf("paths verify status %d: %s", code, body)
	}
	var pres pathsResponse
	if err := json.Unmarshal(body, &pres); err != nil {
		t.Fatal(err)
	}
	if !pres.Verified || pres.Count != hb.Degree() {
		t.Fatalf("paths verify: %s", body)
	}

	// Unverified body of the same query must come from a distinct cache
	// entry without the verified flag.
	_, plain := get(t, ts.URL+"/paths?m=2&n=3&u=0&v=95")
	var unres pathsResponse
	if err := json.Unmarshal(plain, &unres); err != nil {
		t.Fatal(err)
	}
	if unres.Verified {
		t.Fatalf("unverified query returned verified body: %s", plain)
	}
	if _, misses, _ := s.Cache().Stats(); misses < 5 {
		t.Fatalf("expected distinct cache entries per verify flag, misses = %d", misses)
	}
}
