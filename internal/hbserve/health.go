package hbserve

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Health-check defaults. The probe cadence is fast enough that a killed
// replica stops receiving first-attempt traffic within ~1s, and the
// hysteresis widths keep one dropped probe (or one slow restart) from
// flapping the membership.
const (
	DefaultProbeInterval = 250 * time.Millisecond
	DefaultProbeTimeout  = 500 * time.Millisecond
	DefaultEjectAfter    = 2 // consecutive probe failures before ejection
	DefaultReadmitAfter  = 2 // consecutive probe successes before re-admission
)

// replicaState tracks one peer's health. healthy is read lock-free on
// the forwarding hot path; the hysteresis counters are only touched
// under mu by the probe loop and by forward-failure reports.
type replicaState struct {
	url     string
	healthy atomic.Bool

	mu    sync.Mutex
	fails int // consecutive observed failures while healthy
	oks   int // consecutive probe successes while ejected

	ejections    atomic.Uint64
	readmissions atomic.Uint64
	forwarded    atomic.Uint64 // requests answered via this replica
}

// healthChecker actively probes every replica's /healthz on a fixed
// cadence with a per-probe deadline, ejecting a replica after
// EjectAfter consecutive failures and re-admitting it after
// ReadmitAfter consecutive successes. Forward-path transport errors
// feed the same failure counter (ReportFailure), so a killed replica is
// ejected by the traffic hitting it rather than waiting out a probe
// cycle.
type healthChecker struct {
	interval     time.Duration
	timeout      time.Duration
	ejectAfter   int
	readmitAfter int

	client   *http.Client
	replicas []*replicaState

	stop chan struct{}
	done chan struct{}
}

func newHealthChecker(urls []string, interval, timeout time.Duration, ejectAfter, readmitAfter int) *healthChecker {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	if timeout <= 0 {
		timeout = DefaultProbeTimeout
	}
	if ejectAfter <= 0 {
		ejectAfter = DefaultEjectAfter
	}
	if readmitAfter <= 0 {
		readmitAfter = DefaultReadmitAfter
	}
	h := &healthChecker{
		interval:     interval,
		timeout:      timeout,
		ejectAfter:   ejectAfter,
		readmitAfter: readmitAfter,
		client:       &http.Client{Timeout: timeout},
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	for _, u := range urls {
		r := &replicaState{url: u}
		r.healthy.Store(true) // optimistic start; the forward path reports real failures
		h.replicas = append(h.replicas, r)
	}
	return h
}

// Start launches the probe loop; Stop shuts it down and waits for it.
func (h *healthChecker) Start() {
	go func() {
		defer close(h.done)
		tick := time.NewTicker(h.interval)
		defer tick.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-tick.C:
				h.probeAll()
			}
		}
	}()
}

func (h *healthChecker) Stop() {
	close(h.stop)
	<-h.done
}

// probeAll probes every replica concurrently so one hung peer cannot
// delay the others' verdicts past the shared deadline.
func (h *healthChecker) probeAll() {
	var wg sync.WaitGroup
	for i := range h.replicas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if h.probe(h.replicas[i].url) {
				h.reportSuccess(i)
			} else {
				h.ReportFailure(i)
			}
		}(i)
	}
	wg.Wait()
}

func (h *healthChecker) probe(url string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), h.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode/100 == 2
}

// Healthy reports whether replica i is currently admitted.
func (h *healthChecker) Healthy(i int) bool { return h.replicas[i].healthy.Load() }

// ReportFailure records one failed probe or forward attempt against
// replica i, ejecting it once the consecutive-failure hysteresis is
// crossed.
func (h *healthChecker) ReportFailure(i int) {
	r := h.replicas[i]
	r.mu.Lock()
	defer r.mu.Unlock()
	r.oks = 0
	if !r.healthy.Load() {
		return
	}
	r.fails++
	if r.fails >= h.ejectAfter {
		r.healthy.Store(false)
		r.fails = 0
		r.ejections.Add(1)
	}
}

// reportSuccess records one successful probe, re-admitting an ejected
// replica once the consecutive-success hysteresis is crossed. Forward
// successes do not feed it: only the active probe — which sees the
// replica even when the ring steers no traffic at it — can re-admit.
func (h *healthChecker) reportSuccess(i int) {
	r := h.replicas[i]
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fails = 0
	if r.healthy.Load() {
		return
	}
	r.oks++
	if r.oks >= h.readmitAfter {
		r.healthy.Store(true)
		r.oks = 0
		r.readmissions.Add(1)
	}
}

// HealthyCount returns how many replicas are currently admitted.
func (h *healthChecker) HealthyCount() int {
	n := 0
	for _, r := range h.replicas {
		if r.healthy.Load() {
			n++
		}
	}
	return n
}
