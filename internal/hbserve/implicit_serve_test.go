package hbserve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
)

// These tests pin the headline serving claim of the implicit tier: a
// cold daemon answers /route, /paths (verified), /faultroute and
// /estimate on HB(10,10) — order 10·2^20 ≈ 10.5M, far above the dense
// cap — without ever materialising an adjacency. Queries stay in the
// label-arithmetic fast path, so the whole file runs in well under a
// second despite the instance size.

const giantOrder = 10 << 20 // HB(10,10)

func giantURL(ts *httptest.Server, path string) string {
	return fmt.Sprintf("%s%s&m=10&n=10", ts.URL, path)
}

func TestImplicitServesGiantRoute(t *testing.T) {
	_, ts := newTestServer(t)
	imp := core.MustNewImplicit(10, 10)
	u, v := 12345, giantOrder-678
	code, body := get(t, giantURL(ts, fmt.Sprintf("/route?u=%d&v=%d&verify=1", u, v)))
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var res routeResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("verify=1 response not marked verified")
	}
	if want := imp.Distance(u, v); res.Distance != want {
		t.Errorf("distance %d, want %d", res.Distance, want)
	}
	if len(res.Path) != res.Distance+1 || res.Path[0] != u || res.Path[len(res.Path)-1] != v {
		t.Errorf("path endpoints/length wrong: %d vertices for distance %d", len(res.Path), res.Distance)
	}
}

func TestImplicitServesGiantPaths(t *testing.T) {
	_, ts := newTestServer(t)
	u, v := 999, 7_654_321
	code, body := get(t, giantURL(ts, fmt.Sprintf("/paths?u=%d&v=%d&verify=1", u, v)))
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var res pathsResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("verify=1 response not marked verified")
	}
	if res.Count != 14 { // m+4 (Theorem 5)
		t.Errorf("count %d, want 14", res.Count)
	}
}

func TestImplicitServesGiantFaultRoute(t *testing.T) {
	_, ts := newTestServer(t)
	imp := core.MustNewImplicit(10, 10)
	u, v := 0, giantOrder-1
	// Knock out the first hop of the fault-free optimal route; the
	// router must deliver around it.
	direct := imp.Route(u, v)
	code, body := get(t, giantURL(ts, fmt.Sprintf("/faultroute?u=%d&v=%d&faults=%d", u, v, direct[1])))
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var res faultRouteResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Path) == 0 || res.Path[0] != u || res.Path[len(res.Path)-1] != v {
		t.Fatalf("path endpoints wrong: %v", res.Path)
	}
	for _, x := range res.Path {
		if x == direct[1] {
			t.Errorf("path traverses the faulty vertex %d", direct[1])
		}
	}
	if !res.WithinGuarantee {
		t.Error("1 fault on a 14-connected instance should be within guarantee")
	}
}

func TestImplicitServesGiantEstimate(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, giantURL(ts, "/estimate?samples=512&seed=7"))
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var res estimateResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	formula := 10 + 3*10/2 // Theorem 3: m + floor(3n/2)
	if res.DiameterFormula != formula {
		t.Errorf("diameter formula %d, want %d", res.DiameterFormula, formula)
	}
	if res.DiameterLower < 1 || res.DiameterLower > formula {
		t.Errorf("sampled lower bound %d outside (0,%d]", res.DiameterLower, formula)
	}
	if res.DiameterUpper != formula {
		t.Errorf("upper bound %d, want the structural bound %d with no scans", res.DiameterUpper, formula)
	}
	if res.Samples != 512 || res.CIHalfWidth <= 0 {
		t.Errorf("samples=%d ci=%g, want explicit evidence fields", res.Samples, res.CIHalfWidth)
	}
	// Exact scans are refused on an instance this size.
	code, _ = get(t, giantURL(ts, "/estimate?samples=64&scan=1"))
	if code != 400 {
		t.Errorf("scan on HB(10,10): status %d, want 400", code)
	}
}

// TestEstimateEndpointSmall cross-checks /estimate against the known
// exact diameter on a dense-tier instance, where ScanSources certifies
// the exact value by vertex-transitivity (one eccentricity = diameter).
func TestEstimateEndpointSmall(t *testing.T) {
	_, ts := newTestServer(t)
	hb := core.MustNew(2, 3)
	code, body := get(t, fmt.Sprintf("%s/estimate?m=2&n=3&samples=4096&scan=1", ts.URL))
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var res estimateResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	exact := hb.DiameterFormula()
	if res.DiameterLower != exact {
		t.Errorf("scanned lower bound %d, want exact diameter %d", res.DiameterLower, exact)
	}
	if res.DiameterUpper != exact {
		t.Errorf("upper bound %d, want min(formula, 2·ecc) = %d", res.DiameterUpper, exact)
	}
	if res.ScannedSources != 1 {
		t.Errorf("scanned_sources %d, want 1", res.ScannedSources)
	}
	if res.MeanDistance <= 0 || res.MeanCI <= 0 {
		t.Errorf("mean %g ± %g, want positive point estimate and interval", res.MeanDistance, res.MeanCI)
	}
}
