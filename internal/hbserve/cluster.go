package hbserve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The cluster tier applies the paper's fault-tolerance story to the
// serving layer itself: where Theorem 5 keeps HB(m,n) routable while
// the fault engine kills edges and nodes, the Router keeps a fleet of
// hbd replicas answering while the same churn schedules kill and
// restart whole servers. It consistent-hash-shards the (dims,u,v)
// keyspace across N replica base URLs (so each replica's instance pool
// and route cache stay hot on its own shard), forwards with a bounded
// queue (shedding 503 + Retry-After beyond it, like the replicas
// themselves), actively health-checks peers with deadline probes and
// ejection/re-admission hysteresis, and retries transport failures on
// the next live replica clockwise — which is what turns a mid-load
// replica kill into zero client-visible errors.
//
// Keys are replicated at factor R (Replication): each key's owner set
// is the first R distinct alive replicas on the clockwise walk, single
// queries fail over within the owner set before walking further, and
// /batch bodies are scatter-gathered — split pair-by-pair across owner
// sets, balanced by in-flight load, and re-merged byte-exactly (see
// cluster_batch.go). That is the capacity half of the fault story: an
// ejection not only keeps every key reachable, it spreads the ejected
// replica's share across the surviving owners instead of doubling one
// survivor's load.

// ClusterConfig sizes a Router. Zero values select the defaults.
type ClusterConfig struct {
	// Replicas are the peer base URLs (e.g. http://127.0.0.1:9001); at
	// least one is required.
	Replicas []string
	// VNodes is the number of ring points per replica (defaultVNodes).
	VNodes int
	// QueueDepth bounds concurrently forwarded requests; beyond it the
	// router sheds with 503 + Retry-After. 0 means DefaultQueueDepth,
	// < 0 disables shedding.
	QueueDepth int
	// MaxAttempts bounds how many distinct replicas one request may be
	// tried against on transport errors; 0 means min(3, len(Replicas)).
	MaxAttempts int
	// ForwardTimeout is the per-attempt deadline; 0 means
	// DefaultForwardTimeout.
	ForwardTimeout time.Duration

	// Replication is the owner-set size R: every key is served by the
	// first R distinct alive replicas on its clockwise walk. 0 means
	// DefaultReplication; it is capped at the replica count.
	Replication int
	// ScatterMinPairs is the smallest /batch request the router splits
	// across the fleet; below it the whole body forwards to one owner
	// (scattering a tiny batch costs more than it parallelises). 0
	// means DefaultScatterMinPairs, < 0 disables scattering entirely.
	ScatterMinPairs int

	// Health-check knobs; zero values select the Default* constants.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	EjectAfter    int
	ReadmitAfter  int
}

// DefaultQueueDepth bounds forwarding concurrency: far above a healthy
// fleet's needs, so it only trips when every replica is drowning.
const DefaultQueueDepth = 256

// DefaultForwardTimeout matches the replicas' own request deadline.
const DefaultForwardTimeout = 10 * time.Second

// DefaultReplication keeps two alive owners per key: one ejection
// leaves every key with a warm-set owner and spreads the dead
// replica's batch share across survivors by load instead of dumping it
// all on the next point clockwise.
const DefaultReplication = 2

// DefaultScatterMinPairs is the scatter threshold: below it the
// per-sub-batch HTTP round trip dominates the split's win.
const DefaultScatterMinPairs = 64

// Router is the consistent-hash forwarding proxy over a replica fleet.
type Router struct {
	cfg         ClusterConfig
	replicas    []string
	ring        *hashRing
	health      *healthChecker
	client      *http.Client
	mux         *http.ServeMux
	queue       chan struct{}
	attempts    int
	replication int
	scatterMin  int
	start       time.Time

	retries   atomic.Uint64 // transport-failed attempts retried elsewhere
	shed      atomic.Uint64 // requests refused by the queue bound
	noReplica atomic.Uint64 // requests failed for want of any live replica

	// Scatter-gather accounting: sub-batches fanned out, sub-batches
	// retried on another owner, pairs routed through the scatter path,
	// and per-replica in-flight pairs (the power-of-two-choices signal
	// and the owner-set occupancy gauge).
	subFanout  atomic.Uint64
	subRetries atomic.Uint64
	subPairs   atomic.Uint64
	inflight   []atomic.Int64

	// bodyPool holds request-body buffers and gathered sub-responses;
	// copyPool holds the fixed chunks relay streams through. Both keep
	// the per-forward allocation profile flat under load.
	bodyPool sync.Pool
	copyPool sync.Pool
}

// NewRouter builds a Router over the configured replica fleet. Start
// launches the health probes; Serve (or Handler + an external server)
// serves the forwarding endpoint.
func NewRouter(cfg ClusterConfig) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("hbserve: router needs at least one replica URL")
	}
	replicas := make([]string, len(cfg.Replicas))
	seen := make(map[string]bool, len(cfg.Replicas))
	for i, u := range cfg.Replicas {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("hbserve: replica %d has an empty URL", i)
		}
		if seen[u] {
			return nil, fmt.Errorf("hbserve: duplicate replica URL %s", u)
		}
		seen[u] = true
		replicas[i] = u
	}
	depth := cfg.QueueDepth
	if depth == 0 {
		depth = DefaultQueueDepth
	}
	attempts := cfg.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	if attempts > len(replicas) {
		attempts = len(replicas)
	}
	fwdTimeout := cfg.ForwardTimeout
	if fwdTimeout <= 0 {
		fwdTimeout = DefaultForwardTimeout
	}
	replication := cfg.Replication
	if replication <= 0 {
		replication = DefaultReplication
	}
	if replication > len(replicas) {
		replication = len(replicas)
	}
	scatterMin := cfg.ScatterMinPairs
	if scatterMin == 0 {
		scatterMin = DefaultScatterMinPairs
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 2 * DefaultQueueDepth
	tr.MaxIdleConnsPerHost = DefaultQueueDepth
	rt := &Router{
		cfg:         cfg,
		replicas:    replicas,
		ring:        newHashRing(replicas, cfg.VNodes),
		health:      newHealthChecker(replicas, cfg.ProbeInterval, cfg.ProbeTimeout, cfg.EjectAfter, cfg.ReadmitAfter),
		client:      &http.Client{Timeout: fwdTimeout, Transport: tr},
		mux:         http.NewServeMux(),
		attempts:    attempts,
		replication: replication,
		scatterMin:  scatterMin,
		inflight:    make([]atomic.Int64, len(replicas)),
		start:       time.Now(),
	}
	rt.bodyPool.New = func() any { return new(bytes.Buffer) }
	rt.copyPool.New = func() any { b := make([]byte, 32<<10); return &b }
	if depth > 0 {
		rt.queue = make(chan struct{}, depth)
	}
	rt.mux.HandleFunc("/", rt.forward)
	rt.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	rt.mux.HandleFunc("/cluster", rt.handleCluster)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	return rt, nil
}

// Start launches the active health probes; Stop shuts them down.
func (rt *Router) Start() { rt.health.Start() }
func (rt *Router) Stop()  { rt.health.Stop() }

// Handler returns the router's root handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Healthy reports whether replica i is currently admitted (tests and
// the cluster load generator read it).
func (rt *Router) Healthy(i int) bool { return rt.health.Healthy(i) }

// Serve serves on ln until ctx is cancelled, then drains like
// Server.Serve. Health probes run for the duration.
func (rt *Router) Serve(ctx context.Context, ln net.Listener, grace time.Duration) error {
	rt.Start()
	defer rt.Stop()
	srv := &http.Server{Handler: rt.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("hbserve: router drain incomplete after %v: %w", grace, err)
	}
	<-errc
	return nil
}

// ListenAndServe is Serve over a fresh listener.
func (rt *Router) ListenAndServe(ctx context.Context, addr string, grace time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return rt.Serve(ctx, ln, grace)
}

// forward proxies one request to the replica owning its shard key,
// failing over within the key's owner set and then the next live
// replicas clockwise on transport errors. /batch POSTs branch into the
// scatter-gather path (cluster_batch.go).
func (rt *Router) forward(w http.ResponseWriter, r *http.Request) {
	if rt.queue != nil {
		select {
		case rt.queue <- struct{}{}:
			defer func() { <-rt.queue }()
		default:
			rt.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, &httpError{
				code: http.StatusServiceUnavailable,
				msg:  fmt.Sprintf("router over capacity: %d forwards in flight", len(rt.queue)),
			})
			return
		}
	}

	// Buffer the body up front into a pooled buffer: a retry must be
	// able to resend it, and per-forward allocations would dominate the
	// router's own cost at fleet rates.
	buf := rt.bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer rt.bodyPool.Put(buf)
	var body []byte
	if r.Body != nil && r.Body != http.NoBody {
		if _, err := buf.ReadFrom(io.LimitReader(r.Body, maxBatchBody+1)); err != nil {
			writeErr(w, badRequest("reading request body: %v", err))
			return
		}
		r.Body.Close()
		body = buf.Bytes()
	}

	if r.Method == http.MethodPost && r.URL.Path == "/batch" {
		rt.forwardBatch(w, r, body)
		return
	}
	rt.forwardKeyed(w, r, rt.requestKey(r), body)
}

// forwardKeyed sends one buffered request toward the key's owner set:
// the primary first, then the remaining owners, then — only once the
// owner set is exhausted — further live replicas clockwise, bounded by
// the attempt budget.
func (rt *Router) forwardKeyed(w http.ResponseWriter, r *http.Request, key uint64, body []byte) {
	tried := make([]bool, len(rt.replicas))
	for attempt := 0; attempt < rt.attempts; attempt++ {
		// The clockwise distinct-alive walk enumerates the owner set in
		// order before any non-owner, so skipping tried replicas is
		// exactly "fail over within the owner set before walking on".
		i := rt.ring.Lookup(key, func(i int) bool { return !tried[i] && rt.health.Healthy(i) })
		if i < 0 {
			break
		}
		tried[i] = true
		rt.inflight[i].Add(1)
		resp, err := rt.forwardOnce(r, i, body)
		rt.inflight[i].Add(-1)
		if err != nil {
			// A transport failure is the replica's problem, not the
			// query's: report it toward ejection and move clockwise.
			rt.health.ReportFailure(i)
			rt.retries.Add(1)
			continue
		}
		rt.relay(w, resp, i)
		return
	}
	rt.noReplica.Add(1)
	w.Header().Set("Retry-After", "1")
	writeErr(w, &httpError{
		code: http.StatusServiceUnavailable,
		msg:  fmt.Sprintf("no live replica (%d/%d healthy)", rt.health.HealthyCount(), len(rt.replicas)),
	})
}

// forwardOnce sends the request to replica i under the per-attempt
// deadline.
func (rt *Router) forwardOnce(r *http.Request, i int, body []byte) (*http.Response, error) {
	url := rt.replicas[i] + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, rd)
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	return rt.client.Do(req)
}

// relay copies the replica's response to the client through a pooled
// chunk, stamping which replica answered.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, i int) {
	defer resp.Body.Close()
	h := w.Header()
	for _, k := range []string{"Content-Type", "X-Cache", "X-Snapshot", "Retry-After"} {
		if v := resp.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	h.Set("X-Replica", rt.replicas[i])
	w.WriteHeader(resp.StatusCode)
	chunk := rt.copyPool.Get().(*[]byte)
	io.CopyBuffer(w, resp.Body, *chunk)
	rt.copyPool.Put(chunk)
	rt.health.replicas[i].forwarded.Add(1)
}

// requestKey computes the shard key for one single-query request: the
// full (dims,u,v) identity — the same identity the replica's route
// cache keys on, so a key's cache entry lives on exactly one replica.
// (/batch bodies never reach here; they are decoded and partitioned
// pair-by-pair in cluster_batch.go.)
func (rt *Router) requestKey(r *http.Request) uint64 {
	q := r.URL.Query()
	qi := func(name string, def int) int {
		v, err := strconv.Atoi(q.Get(name))
		if err != nil {
			return def
		}
		return v
	}
	return shardKey(Dims{M: qi("m", 2), N: qi("n", 3)}, qi("u", 0), qi("v", 0))
}

// peekBatchDims extracts (m,n) from a /batch request body without fully
// decoding it: the JSON codec unmarshals just the two fields, the
// binary codec reads them at fixed offsets in the header frame. It is
// the router's first-line validator — a body whose dims cannot be read
// (truncated binary header, JSON missing m or n, negative dims) answers
// 400 at the router instead of forwarding garbage into the fleet.
func peekBatchDims(ct string, body []byte) (m, n int, ok bool) {
	if strings.HasPrefix(ct, ctBatchBin) {
		// Header frame: u32 len | "HBB1" | u16 version | u16 op | u32 m | u32 n | ...
		if len(body) < 20 || string(body[4:8]) != "HBB1" {
			return 0, 0, false
		}
		return int(binary.LittleEndian.Uint32(body[12:16])),
			int(binary.LittleEndian.Uint32(body[16:20])), true
	}
	var hdr struct {
		M *int `json:"m"`
		N *int `json:"n"`
	}
	if err := json.Unmarshal(body, &hdr); err != nil || hdr.M == nil || hdr.N == nil {
		return 0, 0, false
	}
	if *hdr.M < 0 || *hdr.N < 0 {
		return 0, 0, false
	}
	return *hdr.M, *hdr.N, true
}

// clusterStatus is the /cluster JSON body: live membership plus the
// per-replica forwarding counters the cluster load generator turns into
// per-replica shares.
type clusterStatus struct {
	Replicas    []replicaStatus `json:"replicas"`
	Healthy     int             `json:"healthy"`
	Replication int             `json:"replication"`
	Retries     uint64          `json:"retries"`
	Shed        uint64          `json:"shed"`
	NoReplica   uint64          `json:"no_replica"`

	// Scatter-gather counters: sub-batches fanned out, sub-batches
	// retried on another owner, pairs routed through the scatter path.
	SubbatchFanout  uint64 `json:"subbatch_fanout"`
	SubbatchRetries uint64 `json:"subbatch_retries"`
	SubbatchPairs   uint64 `json:"subbatch_pairs"`
}

type replicaStatus struct {
	URL          string `json:"url"`
	Healthy      bool   `json:"healthy"`
	Forwarded    uint64 `json:"forwarded"`
	Ejections    uint64 `json:"ejections"`
	Readmissions uint64 `json:"readmissions"`
	Inflight     int64  `json:"inflight"`
}

// Status snapshots the cluster state (the /cluster handler and the
// load generator both read it).
func (rt *Router) Status() clusterStatus {
	st := clusterStatus{
		Healthy:         rt.health.HealthyCount(),
		Replication:     rt.replication,
		Retries:         rt.retries.Load(),
		Shed:            rt.shed.Load(),
		NoReplica:       rt.noReplica.Load(),
		SubbatchFanout:  rt.subFanout.Load(),
		SubbatchRetries: rt.subRetries.Load(),
		SubbatchPairs:   rt.subPairs.Load(),
	}
	for i, r := range rt.health.replicas {
		st.Replicas = append(st.Replicas, replicaStatus{
			URL:          r.url,
			Healthy:      r.healthy.Load(),
			Forwarded:    r.forwarded.Load(),
			Ejections:    r.ejections.Load(),
			Readmissions: r.readmissions.Load(),
			Inflight:     rt.inflight[i].Load(),
		})
	}
	return st
}

func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, rt.Status())
}

// handleMetrics renders the router's own Prometheus families (the
// replicas each expose their full /metrics separately).
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP hbd_router_up 1 while the router is serving.\n# TYPE hbd_router_up gauge\nhbd_router_up 1\n")
	fmt.Fprintf(w, "# HELP hbd_router_uptime_seconds Seconds since the router started.\n# TYPE hbd_router_uptime_seconds gauge\nhbd_router_uptime_seconds %g\n",
		time.Since(rt.start).Seconds())
	fmt.Fprintf(w, "# HELP hbd_router_replicas Configured replica count.\n# TYPE hbd_router_replicas gauge\nhbd_router_replicas %d\n", len(rt.replicas))
	fmt.Fprintf(w, "# HELP hbd_router_healthy_replicas Replicas currently admitted.\n# TYPE hbd_router_healthy_replicas gauge\nhbd_router_healthy_replicas %d\n",
		rt.health.HealthyCount())
	fmt.Fprintf(w, "# HELP hbd_router_retries_total Forward attempts retried on another replica after a transport failure.\n# TYPE hbd_router_retries_total counter\nhbd_router_retries_total %d\n",
		rt.retries.Load())
	fmt.Fprintf(w, "# HELP hbd_router_shed_total Requests refused with 503 by the forwarding queue bound.\n# TYPE hbd_router_shed_total counter\nhbd_router_shed_total %d\n",
		rt.shed.Load())
	fmt.Fprintf(w, "# HELP hbd_router_no_replica_total Requests failed for want of any live replica.\n# TYPE hbd_router_no_replica_total counter\nhbd_router_no_replica_total %d\n",
		rt.noReplica.Load())
	fmt.Fprintf(w, "# HELP hbd_router_replication Owner-set size R: alive replicas serving each key.\n# TYPE hbd_router_replication gauge\nhbd_router_replication %d\n",
		rt.replication)
	fmt.Fprintf(w, "# HELP hbd_router_subbatch_fanout_total Sub-batches fanned out by the /batch scatter path.\n# TYPE hbd_router_subbatch_fanout_total counter\nhbd_router_subbatch_fanout_total %d\n",
		rt.subFanout.Load())
	fmt.Fprintf(w, "# HELP hbd_router_subbatch_retries_total Sub-batches retried against another alive owner after a transport failure.\n# TYPE hbd_router_subbatch_retries_total counter\nhbd_router_subbatch_retries_total %d\n",
		rt.subRetries.Load())
	fmt.Fprintf(w, "# HELP hbd_router_subbatch_pairs_total Pairs routed through the scatter-gather path.\n# TYPE hbd_router_subbatch_pairs_total counter\nhbd_router_subbatch_pairs_total %d\n",
		rt.subPairs.Load())

	idx := make([]int, len(rt.replicas))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return rt.replicas[idx[a]] < rt.replicas[idx[b]] })
	fmt.Fprintf(w, "# HELP hbd_router_forwarded_total Requests answered, by replica.\n# TYPE hbd_router_forwarded_total counter\n")
	for _, i := range idx {
		fmt.Fprintf(w, "hbd_router_forwarded_total{replica=%q} %d\n", rt.replicas[i], rt.health.replicas[i].forwarded.Load())
	}
	fmt.Fprintf(w, "# HELP hbd_router_replica_healthy 1 while the replica is admitted.\n# TYPE hbd_router_replica_healthy gauge\n")
	for _, i := range idx {
		v := 0
		if rt.health.Healthy(i) {
			v = 1
		}
		fmt.Fprintf(w, "hbd_router_replica_healthy{replica=%q} %d\n", rt.replicas[i], v)
	}
	fmt.Fprintf(w, "# HELP hbd_router_ejections_total Health-check ejections, by replica.\n# TYPE hbd_router_ejections_total counter\n")
	for _, i := range idx {
		fmt.Fprintf(w, "hbd_router_ejections_total{replica=%q} %d\n", rt.replicas[i], rt.health.replicas[i].ejections.Load())
	}
	fmt.Fprintf(w, "# HELP hbd_router_readmissions_total Health-check re-admissions, by replica.\n# TYPE hbd_router_readmissions_total counter\n")
	for _, i := range idx {
		fmt.Fprintf(w, "hbd_router_readmissions_total{replica=%q} %d\n", rt.replicas[i], rt.health.replicas[i].readmissions.Load())
	}
	fmt.Fprintf(w, "# HELP hbd_router_owner_inflight_pairs Owner-set occupancy: pairs and forwards currently in flight, by replica.\n# TYPE hbd_router_owner_inflight_pairs gauge\n")
	for _, i := range idx {
		fmt.Fprintf(w, "hbd_router_owner_inflight_pairs{replica=%q} %d\n", rt.replicas[i], rt.inflight[i].Load())
	}
}
