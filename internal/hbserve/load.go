package hbserve

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The load generator replays query mixes against a running hbd and
// records the serving-performance baseline (EXPERIMENTS.md E-SV). Two
// mixes mirror simnet's traffic patterns at the serving layer:
//
//   - uniform: every request draws a fresh random (u,v) pair, so the
//     route cache sees mostly misses on large instances — the cold-path
//     number;
//   - permutation: a fixed random permutation pairs each node with one
//     destination and requests cycle through those pairs, so after one
//     lap every request is a cache hit — the warm-path number.
//
// Pacing is open-loop at a target QPS (a ticker dispatches to a bounded
// worker pool), which is what exposes queueing once the service
// saturates; latencies are measured per request and reported as
// percentiles.

// LoadConfig parameterises one load run.
type LoadConfig struct {
	BaseURL  string        // e.g. http://127.0.0.1:8080
	M, N     int           // instance to query
	Endpoint string        // "route" or "paths"
	Mix      string        // "uniform" or "permutation"
	QPS      int           // target request rate
	Duration time.Duration // measured window
	Workers  int           // concurrent requesters; <= 0 means 32
	Seed     int64
}

// LoadResult is the measured outcome of one (endpoint, mix) run.
type LoadResult struct {
	Endpoint    string  `json:"endpoint"`
	Mix         string  `json:"mix"`
	TargetQPS   int     `json:"target_qps"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int     `json:"requests"`
	Non2xx      int     `json:"non_2xx"`
	AchievedQPS float64 `json:"achieved_qps"`
	LatencyMS   struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
}

// Load runs one configured mix to completion.
func Load(cfg LoadConfig) (LoadResult, error) {
	res := LoadResult{
		Endpoint:    cfg.Endpoint,
		Mix:         cfg.Mix,
		TargetQPS:   cfg.QPS,
		DurationSec: cfg.Duration.Seconds(),
	}
	if cfg.QPS <= 0 || cfg.Duration <= 0 {
		return res, fmt.Errorf("hbserve: load needs positive qps and duration")
	}
	order, err := orderOf(Dims{M: cfg.M, N: cfg.N})
	if err != nil {
		return res, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 32
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(order)
	next := makePairSource(cfg.Mix, rng, perm, order)
	if next == nil {
		return res, fmt.Errorf("hbserve: unknown mix %q (want uniform or permutation)", cfg.Mix)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		non2xx    atomic.Int64
		wg        sync.WaitGroup
	)
	jobs := make(chan [2]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pair := range jobs {
				url := fmt.Sprintf("%s/%s?m=%d&n=%d&u=%d&v=%d",
					strings.TrimRight(cfg.BaseURL, "/"), cfg.Endpoint, cfg.M, cfg.N, pair[0], pair[1])
				t0 := time.Now()
				resp, err := client.Get(url)
				lat := time.Since(t0)
				if err != nil {
					non2xx.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode/100 != 2 {
					non2xx.Add(1)
				}
				mu.Lock()
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		}()
	}

	interval := time.Second / time.Duration(cfg.QPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	deadline := time.Now().Add(cfg.Duration)
	sent := 0
	// Pair generation happens on the dispatch goroutine so the rng needs
	// no lock; a full jobs channel sheds load (open-loop: the tick is
	// dropped, not queued without bound).
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		select {
		case jobs <- next():
			sent++
		default:
		}
	}
	ticker.Stop()
	close(jobs)
	wg.Wait()

	res.Requests = len(latencies) + int(non2xx.Load())
	res.Non2xx = int(non2xx.Load())
	res.AchievedQPS = float64(res.Requests) / cfg.Duration.Seconds()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		res.LatencyMS.P50 = ms(percentile(latencies, 0.50))
		res.LatencyMS.P90 = ms(percentile(latencies, 0.90))
		res.LatencyMS.P99 = ms(percentile(latencies, 0.99))
		res.LatencyMS.Max = ms(latencies[len(latencies)-1])
	}
	return res, nil
}

// makePairSource returns a generator of (u,v) query pairs for the mix;
// nil for an unknown mix.
func makePairSource(mix string, rng *rand.Rand, perm []int, order int) func() [2]int {
	switch mix {
	case "uniform":
		return func() [2]int {
			u := rng.Intn(order)
			v := rng.Intn(order)
			for v == u {
				v = rng.Intn(order)
			}
			return [2]int{u, v}
		}
	case "permutation":
		i := 0
		return func() [2]int {
			u := i % order
			i++
			v := perm[u]
			if v == u { // a fixed point would query u==u; pair it onward
				v = perm[(u+1)%order]
			}
			return [2]int{u, v}
		}
	}
	return nil
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// BenchReport is the serialised BENCH_serve.json: the load-generator
// baseline plus the cache counters scraped from /metrics after the run.
type BenchReport struct {
	M       int          `json:"m"`
	N       int          `json:"n"`
	Results []LoadResult `json:"results"`
	Cache   struct {
		Hits    uint64  `json:"hits"`
		Misses  uint64  `json:"misses"`
		Dedups  uint64  `json:"dedups"`
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
}

// TotalNon2xx sums error responses across all runs; the CI smoke gates
// on it being zero.
func (b *BenchReport) TotalNon2xx() int {
	total := 0
	for _, r := range b.Results {
		total += r.Non2xx
	}
	return total
}

// ScrapeCacheStats fetches baseURL/metrics and fills b.Cache from the
// hbd_route_cache_* families.
func (b *BenchReport) ScrapeCacheStats(baseURL string) error {
	resp, err := http.Get(strings.TrimRight(baseURL, "/") + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		var target *uint64
		switch {
		case strings.HasPrefix(line, "hbd_route_cache_hits_total "):
			target = &b.Cache.Hits
		case strings.HasPrefix(line, "hbd_route_cache_misses_total "):
			target = &b.Cache.Misses
		case strings.HasPrefix(line, "hbd_route_cache_dedup_total "):
			target = &b.Cache.Dedups
		default:
			continue
		}
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", target); err != nil {
			return fmt.Errorf("hbserve: bad metrics line %q: %w", line, err)
		}
	}
	if total := b.Cache.Hits + b.Cache.Misses; total > 0 {
		b.Cache.HitRate = float64(b.Cache.Hits) / float64(total)
	}
	return nil
}

// WriteFile writes the report as indented JSON.
func (b *BenchReport) WriteFile(path string) error {
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
