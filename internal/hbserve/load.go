package hbserve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The load generator replays query mixes against a running hbd and
// records the serving-performance baseline (EXPERIMENTS.md E-SV). Two
// mixes mirror simnet's traffic patterns at the serving layer:
//
//   - uniform: every request draws a fresh random (u,v) pair, so the
//     route cache sees mostly misses on large instances — the cold-path
//     number;
//   - permutation: a fixed random permutation pairs each node with one
//     destination and requests cycle through those pairs, so after one
//     lap every request is a cache hit — the warm-path number.
//
// Pacing is open-loop at a target QPS (a catch-up dispatcher sends
// whatever the elapsed time says is due, so the target is reachable well
// past one request per timer tick), which is what exposes queueing once
// the service saturates; latencies are measured per request and reported
// as percentiles.
//
// Batch mode (Batch > 0) POSTs columnar /batch bodies of Batch pairs
// each — prebuilt before the window opens so the client measures the
// server, not its own encoder — in either codec, and reports pair
// throughput next to request throughput. Comparing its routes_per_sec
// against the single-query baseline is EXPERIMENTS.md E-BQ.

// LoadConfig parameterises one load run.
type LoadConfig struct {
	BaseURL  string        // e.g. http://127.0.0.1:8080
	M, N     int           // instance to query
	Endpoint string        // "route" or "paths"; batch mode: the op
	Mix      string        // "uniform" or "permutation"
	QPS      int           // target request rate
	Duration time.Duration // measured window
	Workers  int           // concurrent requesters; <= 0 means 32
	Seed     int64
	Batch    int    // pairs per request; 0 = single-query GETs
	Codec    string // batch mode: "json" or "bin" ("" = json)
}

// LoadResult is the measured outcome of one (endpoint, mix) run.
type LoadResult struct {
	Endpoint    string  `json:"endpoint"`
	Mix         string  `json:"mix"`
	Batch       int     `json:"batch,omitempty"`
	Codec       string  `json:"codec,omitempty"`
	TargetQPS   int     `json:"target_qps"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int     `json:"requests"`
	Non2xx      int     `json:"non_2xx"`
	AchievedQPS float64 `json:"achieved_qps"`
	// Pairs answered (single mode: one per 2xx request; batch mode:
	// counted from each response's own pair count, not assumed) and the
	// resulting route throughput — the batch-vs-single comparison axis.
	Pairs        int     `json:"pairs"`
	RoutesPerSec float64 `json:"routes_per_sec"`
	// LostPairs counts pairs missing from 2xx batch responses: pairs the
	// server accepted but silently failed to answer. Rejected requests
	// are visible in Non2xx instead; a scatter-gather router that
	// retries sub-batches correctly keeps this at exactly zero even
	// with a replica killed mid-load.
	LostPairs int `json:"lost_pairs"`
	LatencyMS struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
}

// loadBatchBodies bounds how many distinct request bodies batch mode
// prebuilds; beyond it the rotation repeats (batches over the cache
// bound bypass the route cache, so repeats still measure compute).
const loadBatchBodies = 128

// Load runs one configured mix to completion.
func Load(cfg LoadConfig) (LoadResult, error) {
	res := LoadResult{
		Endpoint:    cfg.Endpoint,
		Mix:         cfg.Mix,
		Batch:       cfg.Batch,
		TargetQPS:   cfg.QPS,
		DurationSec: cfg.Duration.Seconds(),
	}
	if cfg.QPS <= 0 || cfg.Duration <= 0 {
		return res, fmt.Errorf("hbserve: load needs positive qps and duration")
	}
	order, err := orderOf(Dims{M: cfg.M, N: cfg.N})
	if err != nil {
		return res, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 32
	}
	// Little's law: sustaining qps with per-request latency L needs at
	// least qps*L in-flight requests. A fixed pool silently converts the
	// open-loop generator into a closed loop once the target rate
	// exceeds workers/latency — achieved_qps then tracks the pool, not
	// the target. Budgeting L at 50ms (a loaded router's tail, not its
	// median) keeps the configured pool as a floor and scales up with
	// the target so the dispatcher's offered rate is actually sendable.
	if floor := cfg.QPS / 20; floor > workers {
		workers = floor
		if workers > 512 {
			workers = 512
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(order)
	next := makePairSource(cfg.Mix, rng, perm, order)
	if next == nil {
		return res, fmt.Errorf("hbserve: unknown mix %q (want uniform or permutation)", cfg.Mix)
	}

	var (
		bodies [][]byte
		ct     string
	)
	if cfg.Batch > 0 {
		res.Codec = cfg.Codec
		if res.Codec == "" {
			res.Codec = "json"
		}
		if bodies, ct, err = makeBatchBodies(cfg, res.Codec, next); err != nil {
			return res, err
		}
	}

	client := newLoadClient(workers)
	// The transport is private to this run; dropping its keep-alive
	// connections on the way out lets the target drain promptly instead
	// of waiting for idle conns to age out.
	defer client.CloseIdleConnections()
	var (
		mu            sync.Mutex
		latencies     []time.Duration
		non2xx        atomic.Int64
		pairsAnswered atomic.Int64
		wg            sync.WaitGroup
	)
	base := strings.TrimRight(cfg.BaseURL, "/")
	record := func(enq time.Time, ok bool) {
		// Latency is measured from enqueue, not from the worker picking
		// the job up: with a deep queue the wait in line is part of what
		// the client observes, and hiding it would let a saturated
		// server post flattering percentiles.
		lat := time.Since(enq)
		if !ok {
			// Errors are counted exactly once, in non2xx, and excluded
			// from the latency population: a fast 503 from load shedding
			// would otherwise both drag the percentiles down and be
			// double-counted in Requests (len(latencies) + non2xx).
			non2xx.Add(1)
			return
		}
		mu.Lock()
		latencies = append(latencies, lat)
		mu.Unlock()
	}

	// The queue holds a fraction of a second of backlog before the
	// dispatcher sheds: deep enough that a transient latency spike
	// doesn't immediately drop offered load (the old workers-deep
	// channel shed at the first stall, capping achieved_qps below
	// target), shallow enough that shedding still engages when the
	// target is genuinely unsustainable.
	type loadJob struct {
		pair [2]int
		enq  time.Time
	}
	jobs := make(chan loadJob, 16*workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for job := range jobs {
				if cfg.Batch > 0 {
					resp, err := client.Post(base+"/batch", ct, bytes.NewReader(bodies[job.pair[0]]))
					ok := err == nil
					if err == nil {
						buf.Reset()
						_, rerr := buf.ReadFrom(resp.Body)
						resp.Body.Close()
						ok = rerr == nil && resp.StatusCode/100 == 2
						if ok {
							if n, cerr := countBatchPairs(res.Codec, buf.Bytes()); cerr == nil {
								pairsAnswered.Add(int64(n))
							}
						}
					}
					record(job.enq, ok)
					continue
				}
				url := fmt.Sprintf("%s/%s?m=%d&n=%d&u=%d&v=%d",
					base, cfg.Endpoint, cfg.M, cfg.N, job.pair[0], job.pair[1])
				resp, err := client.Get(url)
				ok := err == nil
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					ok = resp.StatusCode/100 == 2
				}
				record(job.enq, ok)
			}
		}()
	}

	// Pair generation happens on the dispatch goroutine so the rng needs
	// no lock; a full jobs channel sheds load (open-loop: the due request
	// is dropped, not queued without bound).
	body := 0
	dispatch(cfg.QPS, cfg.Duration, func() bool {
		var job loadJob
		if cfg.Batch > 0 {
			job.pair = [2]int{body % len(bodies), 0}
			body++
		} else {
			job.pair = next()
		}
		job.enq = time.Now()
		select {
		case jobs <- job:
			return true
		default:
			return false
		}
	})
	close(jobs)
	wg.Wait()

	res.Requests = len(latencies) + int(non2xx.Load())
	res.Non2xx = int(non2xx.Load())
	res.AchievedQPS = float64(res.Requests) / cfg.Duration.Seconds()
	res.Pairs = res.Requests - res.Non2xx
	if cfg.Batch > 0 {
		res.Pairs = int(pairsAnswered.Load())
		if lost := (res.Requests-res.Non2xx)*cfg.Batch - res.Pairs; lost > 0 {
			res.LostPairs = lost
		}
	}
	res.RoutesPerSec = float64(res.Pairs) / cfg.Duration.Seconds()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		res.LatencyMS.P50 = ms(percentile(latencies, 0.50))
		res.LatencyMS.P90 = ms(percentile(latencies, 0.90))
		res.LatencyMS.P99 = ms(percentile(latencies, 0.99))
		res.LatencyMS.Max = ms(latencies[len(latencies)-1])
	}
	return res, nil
}

// newLoadClient returns an http.Client sized for `workers` concurrent
// requesters against a single host. The default transport keeps only
// MaxIdleConnsPerHost=2 idle connections, so at 32 workers most
// requests would pay a fresh TCP handshake and the client, not the
// server, becomes the bottleneck at high -qps.
func newLoadClient(workers int) *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 2 * workers
	tr.MaxIdleConnsPerHost = workers
	return &http.Client{Timeout: 10 * time.Second, Transport: tr}
}

// dispatch paces offer() open-loop at qps for the duration: every
// millisecond it offers however many requests the elapsed time says are
// due, so targets far beyond the timer resolution are reachable. A
// false return means the worker pool was saturated and the request was
// shed; the catch-up burst after a stall is bounded so a long GC pause
// cannot produce a thundering herd.
func dispatch(qps int, duration time.Duration, offer func() bool) (offered, shed int) {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	start := time.Now()
	deadline := start.Add(duration)
	for now := range tick.C {
		if now.After(deadline) {
			return offered, shed
		}
		due := int(float64(qps) * now.Sub(start).Seconds())
		if limit := offered + qps/100 + 64; due > limit {
			due = limit
		}
		for offered < due {
			if !offer() {
				shed++
			}
			offered++
		}
	}
	return offered, shed
}

// makeBatchBodies prebuilds the rotation of /batch request bodies for
// one run, drawing pairs from the mix source.
func makeBatchBodies(cfg LoadConfig, codec string, next func() [2]int) ([][]byte, string, error) {
	if _, ok := batchOpCodes[cfg.Endpoint]; !ok {
		return nil, "", fmt.Errorf("hbserve: batch load endpoint %q is not a batch op", cfg.Endpoint)
	}
	count := int(float64(cfg.QPS) * cfg.Duration.Seconds())
	if count > loadBatchBodies {
		count = loadBatchBodies
	}
	if count < 1 {
		count = 1
	}
	bodies := make([][]byte, count)
	src := make([]int, cfg.Batch)
	dst := make([]int, cfg.Batch)
	for k := range bodies {
		for i := range src {
			p := next()
			src[i], dst[i] = p[0], p[1]
		}
		switch codec {
		case "json":
			bodies[k] = EncodeBatchJSONRequest(cfg.Endpoint, cfg.M, cfg.N, src, dst)
		case "bin":
			var err error
			if bodies[k], err = EncodeBatchBinRequest(cfg.Endpoint, cfg.M, cfg.N, nil, src, dst); err != nil {
				return nil, "", err
			}
		default:
			return nil, "", fmt.Errorf("hbserve: unknown batch codec %q (want json or bin)", codec)
		}
	}
	ct := ctJSON
	if codec == "bin" {
		ct = ctBatchBin
	}
	return bodies, ct, nil
}

// countBatchPairs extracts the answered-pair count from a 2xx /batch
// response body without a full decode: the binary header carries it at
// a fixed offset, the JSON body in its "count" field. This is what
// lost-pair accounting audits — the response's own claim of how many
// pairs it answered, not the client's assumption that all were.
func countBatchPairs(codec string, body []byte) (int, error) {
	if codec == "bin" {
		// 4-byte frame length, then magic(4) ver(2) op(1) pad(1) npairs(4).
		if len(body) < 16 || binary.LittleEndian.Uint32(body[4:]) != batchBinMagic {
			return 0, fmt.Errorf("hbserve: short or unframed binary batch response")
		}
		return int(binary.LittleEndian.Uint32(body[12:])), nil
	}
	i := bytes.Index(body, []byte(`"count":`))
	if i < 0 {
		return 0, fmt.Errorf("hbserve: batch response without a count field")
	}
	n, seen := 0, false
	for i += len(`"count":`); i < len(body) && body[i] >= '0' && body[i] <= '9'; i++ {
		n = n*10 + int(body[i]-'0')
		seen = true
	}
	if !seen {
		return 0, fmt.Errorf("hbserve: batch response with non-numeric count")
	}
	return n, nil
}

// makePairSource returns a generator of (u,v) query pairs for the mix;
// nil for an unknown mix.
func makePairSource(mix string, rng *rand.Rand, perm []int, order int) func() [2]int {
	switch mix {
	case "uniform":
		return func() [2]int {
			u := rng.Intn(order)
			v := rng.Intn(order)
			for v == u {
				v = rng.Intn(order)
			}
			return [2]int{u, v}
		}
	case "permutation":
		i := 0
		return func() [2]int {
			u := i % order
			i++
			v := perm[u]
			if v == u { // a fixed point would query u==u; pair it onward
				v = perm[(u+1)%order]
			}
			return [2]int{u, v}
		}
	}
	return nil
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// BenchReport is the serialised BENCH_serve.json: the load-generator
// baseline plus the cache counters scraped from /metrics after the run.
type BenchReport struct {
	M       int          `json:"m"`
	N       int          `json:"n"`
	Results []LoadResult `json:"results"`
	// BatchSpeedup is best batch routes_per_sec over best single-query
	// routes_per_sec across the runs in Results; 0 when either side is
	// missing. The E-BQ acceptance gate reads it.
	BatchSpeedup float64 `json:"batch_speedup,omitempty"`
	Cache        struct {
		Hits    uint64  `json:"hits"`
		Misses  uint64  `json:"misses"`
		Dedups  uint64  `json:"dedups"`
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
}

// ComputeBatchSpeedup fills BatchSpeedup from Results.
func (b *BenchReport) ComputeBatchSpeedup() float64 {
	var single, batch float64
	for _, r := range b.Results {
		switch {
		case r.Batch > 0 && r.RoutesPerSec > batch:
			batch = r.RoutesPerSec
		case r.Batch == 0 && r.RoutesPerSec > single:
			single = r.RoutesPerSec
		}
	}
	if single > 0 && batch > 0 {
		b.BatchSpeedup = batch / single
	}
	return b.BatchSpeedup
}

// TotalNon2xx sums error responses across all runs; the CI smoke gates
// on it being zero.
func (b *BenchReport) TotalNon2xx() int {
	total := 0
	for _, r := range b.Results {
		total += r.Non2xx
	}
	return total
}

// ScrapeCacheStats fetches baseURL/metrics and fills b.Cache from the
// hbd_route_cache_* families. Errors name the endpoint so a failed
// scrape in a load run is distinguishable from the load itself failing.
func (b *BenchReport) ScrapeCacheStats(baseURL string) error {
	url := strings.TrimRight(baseURL, "/") + "/metrics"
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("hbserve: scraping %s: %w", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("hbserve: reading %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("hbserve: scraping %s: status %d", url, resp.StatusCode)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		var target *uint64
		switch {
		case strings.HasPrefix(line, "hbd_route_cache_hits_total "):
			target = &b.Cache.Hits
		case strings.HasPrefix(line, "hbd_route_cache_misses_total "):
			target = &b.Cache.Misses
		case strings.HasPrefix(line, "hbd_route_cache_dedup_total "):
			target = &b.Cache.Dedups
		default:
			continue
		}
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", target); err != nil {
			return fmt.Errorf("hbserve: bad metrics line %q: %w", line, err)
		}
	}
	if total := b.Cache.Hits + b.Cache.Misses; total > 0 {
		b.Cache.HitRate = float64(b.Cache.Hits) / float64(total)
	}
	return nil
}

// WriteFile writes the report as indented JSON.
func (b *BenchReport) WriteFile(path string) error {
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
