package hbserve

import (
	"sort"
	"strconv"
)

// hashRing consistent-hash-shards the (dims,u,v) keyspace across
// replica indices. Each replica owns vnodes points on a 64-bit ring; a
// key belongs to the first point clockwise from its hash. The point set
// is immutable after construction — membership changes (ejections,
// re-admissions) are expressed at lookup time by the alive predicate,
// so a dead replica's keys spill to the next live point clockwise while
// every key owned by a surviving replica keeps its owner. That
// stability under churn is the property the cluster tier's affinity
// test pins.
type hashRing struct {
	points []ringPoint
	n      int // replica count
}

type ringPoint struct {
	hash    uint64
	replica int
}

// defaultVNodes balances the keyspace to within a few percent across a
// handful of replicas without making lookups or construction heavy.
const defaultVNodes = 64

// newHashRing builds the ring over n replicas identified by the given
// stable names (the cluster tier passes base URLs); vnodes <= 0 selects
// defaultVNodes.
func newHashRing(names []string, vnodes int) *hashRing {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &hashRing{points: make([]ringPoint, 0, len(names)*vnodes), n: len(names)}
	for i, name := range names {
		for j := 0; j < vnodes; j++ {
			h := fnv1a(name + "#" + strconv.Itoa(j))
			r.points = append(r.points, ringPoint{hash: h, replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].replica < r.points[b].replica
	})
	return r
}

// Lookup returns the replica owning key among those alive accepts
// (nil = all), or -1 when none is. Walking the ring point by point —
// rather than filtering the point set up front — is what preserves
// surviving replicas' assignments under membership change.
func (r *hashRing) Lookup(key uint64, alive func(int) bool) int {
	if len(r.points) == 0 {
		return -1
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for k := 0; k < len(r.points); k++ {
		p := r.points[(i+k)%len(r.points)]
		if alive == nil || alive(p.replica) {
			return p.replica
		}
	}
	return -1
}

// LookupN returns the key's owner set: the first n distinct replicas
// accepted by alive (nil = all) on the clockwise walk from the key's
// ring position, primary first. Because the walk order is fixed by the
// immutable point set, ejecting one member of an owner set promotes the
// next member in place — a key replicated at factor R keeps an alive
// owner inside its original owner set as long as fewer than R members
// are down, with no re-walk past the set. The result is appended to
// buf (pass buf[:0] to reuse an allocation across calls).
func (r *hashRing) LookupN(key uint64, n int, alive func(int) bool, buf []int) []int {
	owners := buf[:0]
	if len(r.points) == 0 || n <= 0 {
		return owners
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for k := 0; k < len(r.points) && len(owners) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if alive != nil && !alive(p.replica) {
			continue
		}
		seen := false
		for _, o := range owners {
			if o == p.replica {
				seen = true
				break
			}
		}
		if !seen {
			owners = append(owners, p.replica)
		}
	}
	return owners
}

// shardKey hashes one (dims,u,v) query identity onto the ring.
func shardKey(d Dims, u, v int) uint64 {
	var buf [44]byte
	return shardKeyAppend(d, u, v, buf[:0])
}

// shardKeyAppend is shardKey over a caller-provided scratch buffer, so
// the per-pair partition loop in the scatter path hashes without
// allocating. The byte sequence (and therefore the hash) is identical
// to the original string-concatenation form, keeping batch pairs and
// single queries for the same (dims,u,v) on the same owner.
func shardKeyAppend(d Dims, u, v int, buf []byte) uint64 {
	buf = strconv.AppendInt(buf, int64(d.M), 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(d.N), 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(u), 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(v), 10)
	return fnv1aBytes(buf)
}
