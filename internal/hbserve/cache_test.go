package hbserve

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewRouteCache(64, 4)
	calls := 0
	compute := func() ([]byte, error) { calls++; return []byte("v"), nil }
	v, hit, err := c.GetOrCompute("k", compute)
	if err != nil || hit || string(v) != "v" {
		t.Fatalf("first get: v=%q hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.GetOrCompute("k", compute)
	if err != nil || !hit || string(v) != "v" {
		t.Fatalf("second get: v=%q hit=%v err=%v", v, hit, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times", calls)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats hits=%d misses=%d", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One shard so the LRU order is global and deterministic.
	c := NewRouteCache(2, 1)
	fill := func(k string) {
		c.GetOrCompute(k, func() ([]byte, error) { return []byte(k), nil })
	}
	fill("a")
	fill("b")
	fill("a") // refresh a; b is now oldest
	fill("c") // evicts b
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	_, hit, _ := c.GetOrCompute("a", func() ([]byte, error) { return nil, errors.New("should not run") })
	if !hit {
		t.Error("a was evicted despite being refreshed")
	}
	recomputed := false
	c.GetOrCompute("b", func() ([]byte, error) { recomputed = true; return []byte("b"), nil })
	if !recomputed {
		t.Error("b survived eviction")
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewRouteCache(8, 1)
	boom := errors.New("boom")
	_, _, err := c.GetOrCompute("k", func() ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
	ran := false
	_, hit, err := c.GetOrCompute("k", func() ([]byte, error) { ran = true; return []byte("ok"), nil })
	if hit || !ran || err != nil {
		t.Errorf("error was cached: hit=%v ran=%v err=%v", hit, ran, err)
	}
}

func TestCachePanicReleasesWaiters(t *testing.T) {
	c := NewRouteCache(8, 1)
	_, _, err := c.GetOrCompute("k", func() ([]byte, error) { panic("kaboom") })
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("kaboom")) {
		t.Fatalf("err %v", err)
	}
	// The flight entry must be gone: a retry computes fresh.
	v, hit, err := c.GetOrCompute("k", func() ([]byte, error) { return []byte("ok"), nil })
	if hit || err != nil || string(v) != "ok" {
		t.Errorf("retry after panic: v=%q hit=%v err=%v", v, hit, err)
	}
}

// TestSingleflight launches many concurrent gets for one cold key and
// asserts the computation ran exactly once with everyone receiving its
// bytes.
func TestSingleflight(t *testing.T) {
	c := NewRouteCache(8, 1)
	var calls atomic.Int64
	gate := make(chan struct{})
	const goroutines = 64
	results := make([][]byte, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrCompute("cold", func() ([]byte, error) {
				calls.Add(1)
				<-gate // hold the flight open so others pile up
				return []byte("shared"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let the pile-up form, then release the one computation.
	for {
		_, _, dedups := c.Stats()
		if dedups >= goroutines/2 {
			break
		}
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("compute ran %d times", n)
	}
	for i, v := range results {
		if string(v) != "shared" {
			t.Errorf("goroutine %d got %q", i, v)
		}
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewRouteCache(-1, 2)
	calls := 0
	for i := 0; i < 3; i++ {
		_, hit, _ := c.GetOrCompute("k", func() ([]byte, error) { calls++; return []byte("v"), nil })
		if hit {
			t.Error("hit with caching disabled")
		}
	}
	if calls != 3 || c.Len() != 0 {
		t.Errorf("calls=%d len=%d", calls, c.Len())
	}
}

func TestPoolLazyBuildAndEviction(t *testing.T) {
	p := &Pool{Max: 2}
	a, err := p.Get(Dims{M: 1, N: 3})
	if err != nil || a == nil {
		t.Fatal(err)
	}
	if a2, _ := p.Get(Dims{M: 1, N: 3}); a2 != a {
		t.Error("second Get rebuilt the instance")
	}
	p.Get(Dims{M: 2, N: 3})
	p.Get(Dims{M: 0, N: 3}) // evicts HB(1,3), the least recently used...
	if p.Len() != 2 {
		t.Fatalf("len %d, want 2", p.Len())
	}
	if p.Evictions() != 1 {
		t.Errorf("evictions %d, want 1", p.Evictions())
	}
	if a3, _ := p.Get(Dims{M: 1, N: 3}); a3 == a {
		t.Error("evicted instance was still resident")
	}
}

func TestPoolRejectsOversized(t *testing.T) {
	// ImplicitMaxOrder < 0 disables the implicit tier, restoring the
	// strict pre-tier rejection semantics.
	p := &Pool{MaxOrder: 1000, ImplicitMaxOrder: -1}
	if _, err := p.Get(Dims{M: 3, N: 8}); err == nil {
		t.Error("accepted an instance over MaxOrder with the implicit tier disabled")
	}
	if _, err := p.Get(Dims{M: -1, N: 3}); err == nil {
		t.Error("accepted m=-1")
	}
	if _, err := p.Get(Dims{M: 1, N: 2}); err == nil {
		t.Error("accepted n=2")
	}
	if p.Len() != 0 {
		t.Errorf("rejected dims left %d residents", p.Len())
	}
}

// TestPoolImplicitTier pins the two-tier order policy: at or below
// MaxOrder the pool hands out the dense-capable backend, between
// MaxOrder and ImplicitMaxOrder the label-arithmetic one, and above
// ImplicitMaxOrder it rejects.
func TestPoolImplicitTier(t *testing.T) {
	p := &Pool{MaxOrder: 1000, ImplicitMaxOrder: 20000}
	small, err := p.Get(Dims{M: 1, N: 3}) // order 48
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := small.(*core.HyperButterfly); !ok {
		t.Errorf("order 48 got %T, want the dense tier", small)
	}
	big, err := p.Get(Dims{M: 3, N: 8}) // order 16384
	if err != nil {
		t.Fatal(err)
	}
	imp, ok := big.(*core.Implicit)
	if !ok {
		t.Fatalf("order 16384 got %T, want the implicit tier", big)
	}
	if imp.Order() != 16384 {
		t.Errorf("implicit instance order %d, want 16384", imp.Order())
	}
	if _, err := p.Get(Dims{M: 4, N: 9}); err == nil {
		t.Error("accepted order 9*2^13 over ImplicitMaxOrder")
	}
}

func TestPoolConcurrentGet(t *testing.T) {
	p := &Pool{Max: 4}
	var wg sync.WaitGroup
	instances := make([]interface{}, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hb, err := p.Get(Dims{M: 2, N: 3})
			if err != nil {
				t.Error(err)
			}
			instances[i] = hb
		}(i)
	}
	wg.Wait()
	for i := 1; i < 32; i++ {
		if instances[i] != instances[0] {
			t.Fatal("concurrent Gets produced distinct instances")
		}
	}
}

// TestPoolErrorEntriesNotResident: a failed construction must not stay
// resident — before the fix the entry kept built=true with top=nil, so
// it counted in Len, occupied an LRU slot that could evict a real
// instance, and pinned the error for every later Get of those dims.
func TestPoolErrorEntriesNotResident(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	p := &Pool{Max: 2, construct: func(d Dims) (core.Topology, error) {
		if fail.Load() {
			return nil, errors.New("construct: transient failure")
		}
		return core.New(d.M, d.N)
	}}

	d := Dims{M: 1, N: 3}
	if _, err := p.Get(d); err == nil {
		t.Fatal("Get succeeded under a failing construct")
	}
	if p.Len() != 0 {
		t.Errorf("failed build left Len = %d, want 0", p.Len())
	}
	p.mu.Lock()
	resident, lruLen := len(p.entries), p.lru.Len()
	p.mu.Unlock()
	if resident != 0 || lruLen != 0 {
		t.Errorf("failed build left %d entries / %d LRU slots resident", resident, lruLen)
	}

	// The error must not be pinned: once construction can succeed, the
	// same dims Get retries and builds for real.
	fail.Store(false)
	hb, err := p.Get(d)
	if err != nil || hb == nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d after successful retry, want 1", p.Len())
	}

	// Failed entries must not evict real instances: with Max=2 and one
	// resident, a burst of failing Gets for other dims leaves it alone.
	fail.Store(true)
	for _, other := range []Dims{{M: 2, N: 3}, {M: 0, N: 3}, {M: 2, N: 4}} {
		if _, err := p.Get(other); err == nil {
			t.Fatalf("Get(%v) succeeded under a failing construct", other)
		}
	}
	fail.Store(false)
	if hb2, err := p.Get(d); err != nil || hb2 != hb {
		t.Errorf("resident instance lost to failed-entry eviction (err %v)", err)
	}
	if p.Evictions() != 0 {
		t.Errorf("evictions %d, want 0", p.Evictions())
	}
}

// TestPoolConcurrentFailedGets: concurrent Gets racing a failing
// construct all observe the error, and the pool ends empty so a later
// Get can retry.
func TestPoolConcurrentFailedGets(t *testing.T) {
	p := &Pool{Max: 4, construct: func(d Dims) (core.Topology, error) {
		return nil, errors.New("construct: always fails")
	}}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Get(Dims{M: 2, N: 3})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("goroutine %d saw no error", i)
		}
	}
	if p.Len() != 0 {
		t.Errorf("Len = %d after failed concurrent Gets, want 0", p.Len())
	}
	p.mu.Lock()
	resident := len(p.entries)
	p.mu.Unlock()
	if resident != 0 {
		t.Errorf("%d failed entries still resident", resident)
	}
}

func TestMetricsBucketCount(t *testing.T) {
	if len(latencyBuckets) != len0 {
		t.Fatalf("len0 = %d but len(latencyBuckets) = %d — keep them in sync", len0, len(latencyBuckets))
	}
	for i := 1; i < len(latencyBuckets); i++ {
		if latencyBuckets[i] <= latencyBuckets[i-1] {
			t.Fatalf("buckets not strictly increasing at %d", i)
		}
	}
}

func TestFnv1aSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[fnv1a(fmt.Sprintf("route|2|3|%d|95", i))&15] = true
	}
	if len(seen) < 8 {
		t.Errorf("64 keys landed in only %d of 16 shards", len(seen))
	}
}
