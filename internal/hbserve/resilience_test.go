package hbserve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestFaultRouteJSONShape locks the canonical encoding of the echoed
// fault set: always a JSON array (never null), sorted and deduplicated
// regardless of how the query spelled it.
func TestFaultRouteJSONShape(t *testing.T) {
	_, ts := newTestServer(t)

	code, body := get(t, ts.URL+"/faultroute?m=2&n=3&u=0&v=95")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if !strings.Contains(string(body), `"faults":[]`) {
		t.Errorf("no-faults response must encode \"faults\":[]; got %s", body)
	}
	if strings.Contains(string(body), "null") {
		t.Errorf("response leaks a JSON null: %s", body)
	}

	code, body = get(t, ts.URL+"/faultroute?m=2&n=3&u=0&v=95&faults=7,3,7,1,3")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if !strings.Contains(string(body), `"faults":[1,3,7]`) {
		t.Errorf("duplicated unsorted query must echo [1,3,7]; got %s", body)
	}
	var res faultRouteResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Path) == 0 || res.Path[0] != 0 || res.Path[len(res.Path)-1] != 95 {
		t.Errorf("bad path %v", res.Path)
	}
}

// TestFaultRouteRouterReuse: consecutive /faultroute requests against
// the same dims must share one incremental router (a fault-set diff per
// request, not a rebuild), and its epoch must advance with the diffs.
func TestFaultRouteRouterReuse(t *testing.T) {
	s, ts := newTestServer(t)
	for _, q := range []string{"faults=1,2", "faults=1,2,3", "faults="} {
		code, body := get(t, ts.URL+"/faultroute?m=2&n=3&u=0&v=95&"+q)
		if code != 200 {
			t.Fatalf("%s: status %d: %s", q, code, body)
		}
	}
	s.routersMu.Lock()
	n := len(s.routers)
	ir := s.routers[Dims{M: 2, N: 3}]
	s.routersMu.Unlock()
	if n != 1 || ir == nil {
		t.Fatalf("router map has %d entries, want exactly the HB(2,3) router", n)
	}
	if ep := ir.r.Epoch(); ep == 0 {
		t.Errorf("router epoch still 0 after three distinct fault sets")
	}
	if got := ir.r.FaultCount(); got != 0 {
		t.Errorf("last request cleared all faults; router still holds %d", got)
	}
}

// TestPanicRecovery: a panicking handler must answer 500, bump the
// panic metric, and leave the daemon serving.
func TestPanicRecovery(t *testing.T) {
	s := NewServer(Config{})
	s.mux.HandleFunc("/boom", s.instrument("boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/boom")
	if code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", code, body)
	}
	if !strings.Contains(string(body), "kaboom") {
		t.Errorf("500 body does not mention the panic: %s", body)
	}
	if got := s.Metrics().Panics(); got != 1 {
		t.Errorf("panic counter %d, want 1", got)
	}
	if s.Metrics().InFlight() != 0 {
		t.Error("in-flight gauge leaked by the panicking request")
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != 200 {
		t.Errorf("daemon stopped serving after a recovered panic (healthz %d)", code)
	}
	if code, _ := get(t, ts.URL+"/route?m=2&n=3&u=0&v=1"); code != 200 {
		t.Errorf("daemon stopped serving after a recovered panic (route %d)", code)
	}
}

// TestLoadShedding: once in-flight work exceeds MaxInFlight, further
// requests get an immediate 503 with Retry-After instead of queueing.
func TestLoadShedding(t *testing.T) {
	s := NewServer(Config{MaxInFlight: 1})
	hold := make(chan struct{})
	var once sync.Once
	s.testHook = func(endpoint string) {
		if endpoint == "info" {
			once.Do(func() { <-hold })
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		code, _ := get(t, ts.URL+"/info?m=2&n=3")
		done <- code
	}()
	// Wait until the first request is counted in flight.
	for i := 0; s.Metrics().InFlight() < 1; i++ {
		if i > 1000 {
			t.Fatal("first request never started")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/info?m=2&n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
	if got := s.Metrics().Sheds(); got != 1 {
		t.Errorf("shed counter %d, want 1", got)
	}

	close(hold)
	if code := <-done; code != 200 {
		t.Errorf("held request finished with %d, want 200", code)
	}
	// With the holder gone, the same query must serve normally again.
	if code, body := get(t, ts.URL+"/info?m=2&n=3"); code != 200 {
		t.Errorf("post-shed request failed: %d %s", code, body)
	}
}

// TestRequestDeadline: an already-expired per-request deadline turns
// into a 503 before the heavy handlers start work.
func TestRequestDeadline(t *testing.T) {
	s := NewServer(Config{RequestTimeout: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// The nanosecond deadline has always expired by the time the handler
	// checks it.
	for _, path := range []string{"/faultroute?m=2&n=3&u=0&v=95", "/conformance?m=0&n=3"} {
		code, body := get(t, ts.URL+path)
		if code != http.StatusServiceUnavailable {
			t.Errorf("%s: status %d, want 503: %s", path, code, body)
		}
	}

	// A negative RequestTimeout disables the deadline entirely.
	s2 := NewServer(Config{RequestTimeout: -1})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if code, body := get(t, ts2.URL+"/faultroute?m=2&n=3&u=0&v=95"); code != 200 {
		t.Errorf("deadline-disabled faultroute failed: %d %s", code, body)
	}
}

// TestPoolNeverEvictsInFlightBuild locks the satellite-3 fix: an entry
// another goroutine is still constructing must survive eviction
// pressure (the pool overshoots Max instead), Len must not count
// half-built entries, and the builder must get its instance back.
func TestPoolNeverEvictsInFlightBuild(t *testing.T) {
	d1 := Dims{M: 1, N: 3}
	d2 := Dims{M: 0, N: 3}
	d3 := Dims{M: 0, N: 4}
	started := make(chan struct{})
	release := make(chan struct{})
	p := &Pool{Max: 1}
	p.construct = func(d Dims) (core.Topology, error) {
		if d == d1 {
			close(started)
			<-release
		}
		return core.New(d.M, d.N)
	}

	got := make(chan core.Topology, 1)
	go func() {
		hb, err := p.Get(d1)
		if err != nil {
			t.Error(err)
		}
		got <- hb
	}()
	<-started
	if p.Len() != 0 {
		t.Errorf("Len %d while the only entry is mid-build, want 0", p.Len())
	}

	// d2 arrives while d1 is mid-build: the only eviction candidate is
	// in flight, so the pool must keep both.
	hb2, err := p.Get(d2)
	if err != nil || hb2 == nil {
		t.Fatal(err)
	}
	if p.Evictions() != 0 {
		t.Errorf("evicted %d entries while the victim was mid-build", p.Evictions())
	}

	close(release)
	hb1 := <-got
	if hb1 == nil || hb1.Order() != 48 {
		t.Fatalf("builder got %v back, want its HB(1,3)", hb1)
	}
	if p.Len() != 2 {
		t.Errorf("Len %d after both builds, want 2 (temporary overshoot of Max=1)", p.Len())
	}

	// The next insertion finds built victims and enforces the bound.
	if _, err := p.Get(d3); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Errorf("Len %d after pressure with built victims, want Max=1", p.Len())
	}
	if p.Evictions() != 2 {
		t.Errorf("evictions %d, want 2", p.Evictions())
	}
}

// TestPoolConcurrentChurn hammers a Max=1 pool from many goroutines
// under -race: every Get must return the instance it asked for.
func TestPoolConcurrentChurn(t *testing.T) {
	p := &Pool{Max: 1}
	dims := []Dims{{M: 0, N: 3}, {M: 1, N: 3}, {M: 0, N: 4}, {M: 2, N: 3}}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				d := dims[(w+i)%len(dims)]
				hb, err := p.Get(d)
				if err != nil {
					t.Error(err)
					return
				}
				if hb == nil || hb.Order() != d.N<<uint(d.M+d.N) {
					t.Errorf("Get(%v) returned wrong instance %v", d, hb)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if p.Len() > len(dims) {
		t.Errorf("Len %d after churn", p.Len())
	}
}

// TestMetricsExposesResilienceCounters: the new counters appear in the
// exposition so the chaos dashboards can scrape them.
func TestMetricsExposesResilienceCounters(t *testing.T) {
	s, ts := newTestServer(t)
	s.Metrics().PanicRecovered()
	s.Metrics().LoadShed()
	code, body := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{"hbd_panics_total 1", "hbd_load_shed_total 1"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
