package hbserve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
)

// Serving-hot-path benchmarks (EXPERIMENTS.md E-SV): the cache in
// isolation and the full handler stack. Future PRs regress against
// these before touching the serving path.

func BenchmarkRouteCache(b *testing.B) {
	hb := core.MustNew(2, 4)
	compute := func(u, v int) func() ([]byte, error) {
		return func() ([]byte, error) {
			return marshalBody(routeResponse{U: u, V: v, Path: hb.Route(u, v)})
		}
	}

	b.Run("hit", func(b *testing.B) {
		c := NewRouteCache(1024, 0)
		key := cacheKey("route", Dims{M: 2, N: 4}, 0, 200, false)
		c.GetOrCompute(key, compute(0, 200))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.GetOrCompute(key, compute(0, 200))
		}
	})

	b.Run("miss", func(b *testing.B) {
		c := NewRouteCache(1024, 0)
		order := hb.Order()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Distinct key per iteration: every lookup computes.
			u, v := i%order, (i*7+1)%order
			if u == v {
				v = (v + 1) % order
			}
			c.GetOrCompute(fmt.Sprintf("bench|%d|%d|%d", i, u, v), compute(u, v))
		}
	})

	b.Run("concurrent-singleflight", func(b *testing.B) {
		// All goroutines hammer one hot key: first computes, rest either
		// coalesce onto the flight or hit.
		c := NewRouteCache(1024, 0)
		key := cacheKey("route", Dims{M: 2, N: 4}, 3, 100, false)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.GetOrCompute(key, compute(3, 100))
			}
		})
	})
}

func BenchmarkHandlerRoute(b *testing.B) {
	s := NewServer(Config{})
	handler := s.Handler()

	b.Run("warm", func(b *testing.B) {
		req := httptest.NewRequest(http.MethodGet, "/route?m=2&n=4&u=0&v=200", nil)
		handler.ServeHTTP(httptest.NewRecorder(), req)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := httptest.NewRecorder()
			handler.ServeHTTP(w, req)
			if w.Code != 200 {
				b.Fatalf("status %d", w.Code)
			}
		}
	})

	b.Run("cold", func(b *testing.B) {
		// CacheSize -1 disables memoisation: every request renders.
		cold := NewServer(Config{CacheSize: -1}).Handler()
		req := httptest.NewRequest(http.MethodGet, "/route?m=2&n=4&u=0&v=200", nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := httptest.NewRecorder()
			cold.ServeHTTP(w, req)
			if w.Code != 200 {
				b.Fatalf("status %d", w.Code)
			}
		}
	})
}

// BenchmarkRouterForward measures the router's own per-request
// overhead — shard lookup, pooled body/copy buffers, relay — in front
// of a live in-process replica. The allocs/op number is the satellite
// this PR pins: the pooled buffers keep the router path from allocating
// a fresh body and copy chunk per forward.
func BenchmarkRouterForward(b *testing.B) {
	replica := httptest.NewServer(NewServer(Config{}).Handler())
	defer replica.Close()
	rt, err := NewRouter(ClusterConfig{Replicas: []string{replica.URL}})
	if err != nil {
		b.Fatal(err)
	}
	handler := rt.Handler()

	b.Run("single", func(b *testing.B) {
		req := httptest.NewRequest(http.MethodGet, "/route?m=2&n=4&u=0&v=200", nil)
		handler.ServeHTTP(httptest.NewRecorder(), req)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := httptest.NewRecorder()
			handler.ServeHTTP(w, req)
			if w.Code != 200 {
				b.Fatalf("status %d", w.Code)
			}
		}
	})

	b.Run("batch64", func(b *testing.B) {
		src := make([]int, 64)
		dst := make([]int, 64)
		for i := range src {
			src[i], dst[i] = i%96, (i*7+5)%96
		}
		body, err := EncodeBatchBinRequest("route", 2, 3, nil, src, dst)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(body)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/batch", bytes.NewReader(body))
			req.Header.Set("Content-Type", ctBatchBin)
			w := httptest.NewRecorder()
			handler.ServeHTTP(w, req)
			if w.Code != 200 {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	})
}
