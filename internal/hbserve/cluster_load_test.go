package hbserve

import (
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/faults"
)

// clusterHarness boots a fleet plus a router with fast health probes,
// returning everything LoadCluster needs.
func clusterHarness(t *testing.T, n int) (*testFleet, *Router, *httptest.Server) {
	t.Helper()
	fleet := newTestFleet(t, n)
	rt, ts := newTestRouter(t, ClusterConfig{
		Replicas:      fleet.URLs(),
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		EjectAfter:    2,
		ReadmitAfter:  2,
	})
	rt.Start()
	t.Cleanup(rt.Stop)
	return fleet, rt, ts
}

// TestClusterChaosKillRestartMidLoad is the chaos acceptance gate in
// miniature: a replica is killed and restarted mid-load by a
// faults.Schedule, and the router leg must stay within the shed budget
// because retries + ejection absorb the outage.
func TestClusterChaosKillRestartMidLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load run in -short")
	}
	fleet, rt, ts := clusterHarness(t, 3)

	// Kill replica 1 at 200ms, restart it at 600ms (tick = 50ms); the
	// 1.4s window leaves time for re-admission and a traffic shift back.
	chaos := faults.Schedule{
		{Cycle: 4, Node: 1, Fail: true},
		{Cycle: 12, Node: 1, Fail: false},
	}
	rep, err := LoadCluster(ClusterLoadConfig{
		RouterURL: ts.URL,
		M:         1, N: 3,
		Endpoint: "route",
		Mix:      "uniform",
		QPS:      300,
		Duration: 1400 * time.Millisecond,
		Workers:  8,
		Seed:     1,

		Chaos:      chaos,
		ChaosTick:  50 * time.Millisecond,
		Controller: fleet,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kills != 1 || rep.Restarts != 1 {
		t.Errorf("chaos applied %d kills / %d restarts, want 1/1", rep.Kills, rep.Restarts)
	}
	if rep.RouterResult.Requests == 0 {
		t.Fatal("router leg completed no requests")
	}
	if !rep.WithinBudget {
		t.Errorf("router leg outside shed budget: %d/%d non-2xx (budget %.3f)",
			rep.RouterResult.Non2xx, rep.RouterResult.Requests, rep.ShedBudget)
	}
	if rep.AggregateRoutesPerSec <= 0 {
		t.Error("no aggregate throughput recorded")
	}
	// The killed replica must have been ejected and re-admitted, and
	// ended the run carrying part of the keyspace again.
	st := rt.Status()
	if st.Replicas[1].Ejections == 0 {
		t.Error("killed replica was never ejected")
	}
	if st.Replicas[1].Readmissions == 0 {
		t.Error("restarted replica was never re-admitted")
	}
	if len(rep.Share) != 3 {
		t.Fatalf("share over %d replicas, want 3", len(rep.Share))
	}
	for i, s := range rep.Share {
		if s.Forwarded == 0 {
			t.Errorf("replica %d (%s) forwarded nothing over the window", i, s.URL)
		}
	}
}

// TestClusterLoadDirectLegs: the generator drives router and replica
// endpoints concurrently and sums their throughput.
func TestClusterLoadDirectLegs(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load run in -short")
	}
	fleet, _, ts := clusterHarness(t, 2)
	rep, err := LoadCluster(ClusterLoadConfig{
		RouterURL: ts.URL,
		Replicas:  fleet.URLs(),
		M:         1, N: 3,
		Endpoint: "route",
		Mix:      "uniform",
		QPS:      200,
		Duration: 500 * time.Millisecond,
		Workers:  4,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Direct) != 2 {
		t.Fatalf("%d direct legs, want 2", len(rep.Direct))
	}
	want := rep.RouterResult.RoutesPerSec
	for _, d := range rep.Direct {
		if d.Requests == 0 || d.Non2xx != 0 {
			t.Errorf("direct leg %+v", d)
		}
		want += d.RoutesPerSec
	}
	if rep.AggregateRoutesPerSec != want {
		t.Errorf("aggregate %.1f, want the legs' sum %.1f", rep.AggregateRoutesPerSec, want)
	}
	if !rep.WithinBudget {
		t.Errorf("chaos-free run outside budget: %+v", rep.RouterResult)
	}
}

func TestClusterLoadValidation(t *testing.T) {
	if _, err := LoadCluster(ClusterLoadConfig{}); err == nil {
		t.Error("accepted an empty router URL")
	}
	if _, err := LoadCluster(ClusterLoadConfig{
		RouterURL: "http://127.0.0.1:1",
		Chaos:     faults.Schedule{{Cycle: 0, Node: 0, Fail: true}},
	}); err == nil {
		t.Error("accepted a chaos schedule without a controller")
	}
}

// TestEmitBenchCluster emits BENCH_cluster.json when BENCH_CLUSTER_OUT
// is set: 3 replicas + router on one machine, a kill/restart of one
// replica mid-load, aggregate routes/s across the fleet (the committed
// artifact at the repo root and the bench-smoke CI artifact both come
// from this test; see EXPERIMENTS.md E-CU).
func TestEmitBenchCluster(t *testing.T) {
	out := os.Getenv("BENCH_CLUSTER_OUT")
	if out == "" {
		t.Skip("set BENCH_CLUSTER_OUT to emit the cluster baseline")
	}
	fleet, _, ts := clusterHarness(t, 3)
	chaos := faults.Schedule{
		{Cycle: 10, Node: 1, Fail: true},
		{Cycle: 30, Node: 1, Fail: false},
	}
	rep, err := LoadCluster(ClusterLoadConfig{
		RouterURL: ts.URL,
		Replicas:  fleet.URLs(),
		M:         2, N: 4,
		Endpoint: "route",
		Mix:      "uniform",
		// Four concurrent single-query legs share one machine with the
		// fleet itself; 2000/leg keeps the offered total inside its
		// measured capacity so achieved_qps tracks target_qps instead of
		// documenting an over-subscribed generator. The batch legs are
		// deliberately over-driven: they measure the throughput ceiling,
		// so their latency column is queue depth, not service time.
		QPS:      2000,
		Duration: 5 * time.Second,
		Workers:  32,
		Seed:     1,

		Chaos:      chaos,
		ChaosTick:  100 * time.Millisecond,
		Controller: fleet,

		// Batch legs after the chaos window: the scatter-gather claim
		// (router /batch split across the ring) and the per-replica
		// direct ceiling it is judged against.
		Batch:    1024,
		BatchQPS: 2000,
		Codec:    "bin",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.WithinBudget {
		t.Errorf("router leg outside shed budget: %d/%d non-2xx",
			rep.RouterResult.Non2xx, rep.RouterResult.Requests)
	}
	if rep.Kills != 1 || rep.Restarts != 1 {
		t.Errorf("chaos applied %d kills / %d restarts, want 1/1", rep.Kills, rep.Restarts)
	}
	if rep.RouterBatch == nil || rep.RouterBatch.LostPairs != 0 {
		t.Errorf("router batch leg %+v, want present with zero lost pairs", rep.RouterBatch)
	}
	if err := rep.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("aggregate %.0f routes/s over %d replicas (router leg %.0f qps, %d non-2xx, %d retries; batch %.0f routes/s); wrote %s",
		rep.AggregateRoutesPerSec, len(rep.Replicas), rep.RouterResult.AchievedQPS,
		rep.RouterResult.Non2xx, rep.RouterRetry, rep.BatchRoutesPerSec, out)
}
