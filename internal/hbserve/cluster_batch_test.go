package hbserve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// --- owner sets -----------------------------------------------------

// TestLookupNOwnerSets pins the replication acceptance property: with
// R=2 and one replica ejected, every key keeps an alive owner inside
// its original owner set — ejecting the primary promotes the secondary
// in place, with no re-walk past the set.
func TestLookupNOwnerSets(t *testing.T) {
	names := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	ring := newHashRing(names, 0)

	const keys = 4096
	var buf []int
	before := make([][2]int, keys)
	for k := 0; k < keys; k++ {
		key := shardKey(Dims{M: 2, N: 4}, k, k+1)
		owners := ring.LookupN(key, 2, nil, buf)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("key %d owner set %v, want 2 distinct", k, owners)
		}
		// The primary is exactly what the single-query path routes to.
		if p := ring.Lookup(key, nil); p != owners[0] {
			t.Fatalf("key %d primary %d != Lookup %d", k, owners[0], p)
		}
		before[k] = [2]int{owners[0], owners[1]}
	}

	// Eject replica 1 and re-resolve every key's owner set.
	alive := func(i int) bool { return i != 1 }
	promoted, untouched := 0, 0
	for k := 0; k < keys; k++ {
		key := shardKey(Dims{M: 2, N: 4}, k, k+1)
		owners := ring.LookupN(key, 2, alive, buf)
		if len(owners) != 2 {
			t.Fatalf("key %d owner set shrank to %v with 3 alive", k, owners)
		}
		for _, o := range owners {
			if o == 1 {
				t.Fatalf("key %d still owned by the ejected replica", k)
			}
		}
		switch {
		case before[k][0] == 1:
			// Ejected primary: the old secondary must be the new primary.
			if owners[0] != before[k][1] {
				t.Fatalf("key %d: ejecting primary gave %d, want promoted secondary %d",
					k, owners[0], before[k][1])
			}
			promoted++
		case before[k][1] == 1:
			// Ejected secondary: the primary must not move.
			if owners[0] != before[k][0] {
				t.Fatalf("key %d: primary moved %d -> %d though it survived",
					k, before[k][0], owners[0])
			}
		default:
			// Untouched owner set: identical.
			if owners[0] != before[k][0] || owners[1] != before[k][1] {
				t.Fatalf("key %d owner set moved %v -> %v though both survived",
					k, before[k], owners)
			}
			untouched++
		}
	}
	if promoted == 0 || untouched == 0 {
		t.Fatalf("degenerate sample: %d promotions, %d untouched", promoted, untouched)
	}

	if got := ring.LookupN(42, 8, nil, buf); len(got) != len(names) {
		t.Errorf("LookupN(n=8) over %d replicas = %v, want all of them", len(names), got)
	}
	if got := ring.LookupN(42, 2, func(int) bool { return false }, buf); len(got) != 0 {
		t.Errorf("LookupN with none alive = %v, want empty", got)
	}
}

// --- scatter-gather -------------------------------------------------

// scatterBody builds one /batch request body covering op and codec,
// including the faults column for faultroute.
func scatterBody(t *testing.T, op, codec string, m, n int, faults, src, dst []int) (string, []byte) {
	t.Helper()
	if codec == "bin" {
		body, err := EncodeBatchBinRequest(op, m, n, faults, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		return ctBatchBin, body
	}
	join := func(xs []int) string {
		parts := make([]string, len(xs))
		for i, x := range xs {
			parts[i] = fmt.Sprint(x)
		}
		return strings.Join(parts, ",")
	}
	body := fmt.Sprintf(`{"m":%d,"n":%d,"op":%q,"faults":[%s],"src":[%s],"dst":[%s]}`,
		m, n, op, join(faults), join(src), join(dst))
	return ctJSON, []byte(body)
}

// TestRouterScatterByteExact is the merge-correctness pin: for every
// op and both codecs, a batch scattered across the fleet must come
// back byte-identical to the same batch answered whole by one replica.
func TestRouterScatterByteExact(t *testing.T) {
	fleet := newTestFleet(t, 3)
	rt, ts := newTestRouter(t, ClusterConfig{Replicas: fleet.URLs(), ScatterMinPairs: 2})

	const m, n = 2, 3
	var src, dst []int
	for i := 0; i < 48; i++ {
		src = append(src, i%96)
		dst = append(dst, (i*7+13)%96)
	}
	post := func(base, ct string, body []byte) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/batch", ct, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, raw
	}

	for _, op := range []string{"dist", "route", "paths", "faultroute"} {
		var faults []int
		if op == "faultroute" {
			faults = []int{2, 17}
		}
		for _, codec := range []string{"json", "bin"} {
			ct, body := scatterBody(t, op, codec, m, n, faults, src, dst)
			resp, viaRouter := post(ts.URL, ct, body)
			if resp.StatusCode != 200 {
				t.Fatalf("%s/%s: router status %d: %s", op, codec, resp.StatusCode, viaRouter)
			}
			if resp.Header.Get("X-Scatter") == "" {
				t.Errorf("%s/%s: batch of %d pairs was not scattered", op, codec, len(src))
			}
			direct, whole := post(fleet.URLs()[0], ct, body)
			if direct.StatusCode != 200 {
				t.Fatalf("%s/%s: direct status %d: %s", op, codec, direct.StatusCode, whole)
			}
			if !bytes.Equal(viaRouter, whole) {
				t.Errorf("%s/%s: scattered response differs from whole-batch response\nrouter: %q\ndirect: %q",
					op, codec, truncateForLog(viaRouter), truncateForLog(whole))
			}
		}
	}
	st := rt.Status()
	if st.SubbatchFanout < 2 || st.SubbatchPairs == 0 {
		t.Errorf("scatter counters inert: fanout %d, pairs %d", st.SubbatchFanout, st.SubbatchPairs)
	}
}

func truncateForLog(b []byte) []byte {
	if len(b) > 256 {
		return b[:256]
	}
	return b
}

// TestRouterScatterSurvivesKilledReplica: with replication 2, a
// replica dead at scatter time costs zero pairs — its sub-batches land
// on (or retry onto) the surviving owners and the merged response is
// still byte-exact.
func TestRouterScatterSurvivesKilledReplica(t *testing.T) {
	fleet := newTestFleet(t, 3)
	rt, ts := newTestRouter(t, ClusterConfig{Replicas: fleet.URLs(), ScatterMinPairs: 2, EjectAfter: 2})

	const m, n = 2, 3
	var src, dst []int
	for i := 0; i < 64; i++ {
		src = append(src, (i*5)%96)
		dst = append(dst, (i*11+7)%96)
	}
	ct, body := scatterBody(t, "route", "bin", m, n, nil, src, dst)

	// Reference response from a replica that will stay alive.
	want := func() []byte {
		resp, err := http.Post(fleet.URLs()[0]+"/batch", ct, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("reference status %d: %s", resp.StatusCode, raw)
		}
		return raw
	}()

	// Kill replica 2 without telling the router: the first scatter that
	// assigns it pairs hits a refused connection and must retry those
	// sub-batches onto the survivors.
	if err := fleet.Kill(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		resp, err := http.Post(ts.URL+"/batch", ct, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("batch %d: status %d with one replica down: %s", i, resp.StatusCode, raw)
		}
		if !bytes.Equal(raw, want) {
			t.Fatalf("batch %d: response with a dead replica differs from reference", i)
		}
		if got, err := countBatchPairs("bin", raw); err != nil || got != len(src) {
			t.Fatalf("batch %d: answered %d pairs (err %v), want %d", i, got, err, len(src))
		}
	}
	st := rt.Status()
	if st.SubbatchRetries == 0 && rt.Healthy(2) {
		t.Error("dead replica neither triggered sub-batch retries nor got ejected")
	}
}

// TestRouterBatchMalformed400 pins the edge validation: frames the
// router cannot size up are refused with 400 at the router instead of
// being forwarded into the fleet.
func TestRouterBatchMalformed400(t *testing.T) {
	fleet := newTestFleet(t, 2)
	_, ts := newTestRouter(t, ClusterConfig{Replicas: fleet.URLs()})

	bin, err := EncodeBatchBinRequest("route", 2, 3, nil, []int{0, 1}, []int{5, 9})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ct   string
		body string
	}{
		{"truncated binary header", ctBatchBin, string(bin[:12])},
		{"binary magic only", ctBatchBin, "HBB1"},
		{"json missing m", ctJSON, `{"n":3,"op":"route","src":[0],"dst":[9]}`},
		{"json missing n", ctJSON, `{"m":2,"op":"route","src":[0],"dst":[9]}`},
		{"json negative m", ctJSON, `{"m":-2,"n":3,"op":"route","src":[0],"dst":[9]}`},
		{"json negative n", ctJSON, `{"m":2,"n":-3,"op":"route","src":[0],"dst":[9]}`},
		{"wrong content type for binary body", "application/octet-stream", string(bin)},
		{"json truncated", ctJSON, `{"m":2,"n":3,`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/batch", tc.ct, strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, raw)
		}
	}
	// A well-formed frame still goes through untouched.
	resp, err := http.Post(ts.URL+"/batch", ctBatchBin, bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("well-formed binary batch got %d", resp.StatusCode)
	}
}

// TestRouterScatterMetrics scrapes /metrics after a scattered batch
// and pins the new families.
func TestRouterScatterMetrics(t *testing.T) {
	fleet := newTestFleet(t, 2)
	_, ts := newTestRouter(t, ClusterConfig{Replicas: fleet.URLs(), ScatterMinPairs: 1})

	var src, dst []int
	for i := 0; i < 32; i++ {
		src = append(src, i)
		dst = append(dst, (i+9)%48)
	}
	ct, body := scatterBody(t, "route", "bin", 2, 3, nil, src, dst)
	resp, err := http.Post(ts.URL+"/batch", ct, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"hbd_router_replication 2\n",
		"hbd_router_subbatch_retries_total 0\n",
		fmt.Sprintf("hbd_router_owner_inflight_pairs{replica=%q} 0\n", fleet.URLs()[0]),
		fmt.Sprintf("hbd_router_owner_inflight_pairs{replica=%q} 0\n", fleet.URLs()[1]),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Both replicas served one sub-batch of the 32-pair scatter.
	if !strings.Contains(text, "hbd_router_subbatch_fanout_total 2\n") {
		t.Errorf("fanout counter: %s", grepLine(text, "hbd_router_subbatch_fanout_total"))
	}
	if !strings.Contains(text, "hbd_router_subbatch_pairs_total 32\n") {
		t.Errorf("pairs counter: %s", grepLine(text, "hbd_router_subbatch_pairs_total"))
	}
}

func grepLine(text, prefix string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) && !strings.HasPrefix(line, "# ") {
			return line
		}
	}
	return "<absent>"
}

// TestLoadClusterBatchLegs runs a miniature cluster bench with batch
// legs and pins the report wiring: the batch legs exist, answered
// every pair they sent, and contribute to the aggregate.
func TestLoadClusterBatchLegs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window load run")
	}
	fleet := newTestFleet(t, 2)
	_, ts := newTestRouter(t, ClusterConfig{Replicas: fleet.URLs(), ScatterMinPairs: 2})

	rep, err := LoadCluster(ClusterLoadConfig{
		RouterURL: ts.URL,
		Replicas:  fleet.URLs(),
		M:         2, N: 3,
		Endpoint: "route",
		Mix:      "uniform",
		QPS:      200,
		Duration: 500 * time.Millisecond,
		Workers:  8,
		Seed:     1,
		Batch:    16,
		BatchQPS: 100,
		Codec:    "bin",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RouterBatch == nil || len(rep.DirectBatch) != 2 {
		t.Fatalf("batch legs missing: %+v", rep)
	}
	if rep.RouterBatch.Pairs == 0 {
		t.Fatal("router batch leg answered zero pairs")
	}
	if rep.RouterBatch.LostPairs != 0 {
		t.Fatalf("router batch leg lost %d pairs on a healthy fleet", rep.RouterBatch.LostPairs)
	}
	if rep.BatchRoutesPerSec <= 0 {
		t.Fatal("batch routes/s not aggregated")
	}
	if rep.AggregateRoutesPerSec < rep.BatchRoutesPerSec {
		t.Fatal("aggregate does not include the batch legs")
	}
	if !rep.WithinBudget {
		t.Fatalf("healthy fleet outside budget: %+v", rep.RouterResult)
	}
}
