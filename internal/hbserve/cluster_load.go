package hbserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
)

// The cluster load generator is the fleet-level counterpart of Load: it
// drives the router and (optionally) every replica's direct endpoint
// concurrently with independent open-loop generators, replays a
// faults.Schedule against the fleet mid-load — the paper's node-fault
// model applied to servers — and reports aggregate route throughput,
// per-replica share (from the router's forwarding counters), and the
// router-leg error rate against a declared shed budget. The chaos
// acceptance gate is WithinBudget: a replica killed and restarted
// mid-load must yield zero non-2xx beyond the budget on the router leg,
// because the router's retry + ejection machinery absorbs the outage.

// ReplicaController kills and restarts fleet members for chaos runs.
// Tests control in-process servers; the CI smoke drives OS processes
// from the shell instead and runs LoadCluster without a controller.
type ReplicaController interface {
	Kill(i int) error
	Restart(i int) error
}

// DefaultShedBudget is the allowed non-2xx fraction on the router leg
// during membership churn: 1%.
const DefaultShedBudget = 0.01

// ClusterLoadConfig parameterises one cluster run.
type ClusterLoadConfig struct {
	RouterURL string   // router base URL (required)
	Replicas  []string // direct per-replica base URLs, each driven concurrently (optional)

	M, N     int
	Endpoint string // "route" or "paths"
	Mix      string // "uniform" or "permutation"
	QPS      int    // per-target rate
	Duration time.Duration
	Workers  int
	Seed     int64

	// Batch > 0 appends batch legs after the single-query window: one
	// through the router (exercising the scatter-gather path) and then
	// one per replica directly, all at BatchQPS requests of Batch pairs
	// each in Codec ("json" or "bin"; "" = bin — the throughput codec).
	// The legs run in separate windows so each reports an uncontended
	// number on a small machine; BatchRoutesPerSec sums them.
	Batch    int
	BatchQPS int
	Codec    string

	// ShedBudget is the allowed non-2xx fraction on the router leg;
	// 0 means DefaultShedBudget, < 0 means zero tolerance.
	ShedBudget float64

	// Chaos, replayed at ChaosTick per cycle via Controller, kills and
	// restarts replicas mid-load (Event.Node indexes Replicas;
	// Fail=true kills). All three must be set together.
	Chaos      faults.Schedule
	ChaosTick  time.Duration
	Controller ReplicaController
}

// ReplicaShare is one replica's slice of the router's forwarded
// traffic over the measured window.
type ReplicaShare struct {
	URL       string  `json:"url"`
	Forwarded uint64  `json:"forwarded"`
	Share     float64 `json:"share"`
}

// ClusterReport is the serialised BENCH_cluster.json.
type ClusterReport struct {
	M          int      `json:"m"`
	N          int      `json:"n"`
	Router     string   `json:"router"`
	Replicas   []string `json:"replicas"`
	ShedBudget float64  `json:"shed_budget"`

	// RouterResult is the load leg through the router — the leg the
	// budget gate reads. Direct holds the concurrent per-replica legs.
	RouterResult LoadResult   `json:"router_result"`
	Direct       []LoadResult `json:"direct,omitempty"`

	// RouterBatch is the scatter-gather /batch leg through the router;
	// DirectBatch the per-replica direct batch legs it is judged
	// against. BatchRoutesPerSec sums all batch legs — the fleet's
	// batch throughput claim.
	RouterBatch       *LoadResult  `json:"router_batch,omitempty"`
	DirectBatch       []LoadResult `json:"direct_batch,omitempty"`
	BatchRoutesPerSec float64      `json:"batch_routes_per_sec,omitempty"`

	// AggregateRoutesPerSec sums route throughput across every leg.
	AggregateRoutesPerSec float64        `json:"aggregate_routes_per_sec"`
	Share                 []ReplicaShare `json:"per_replica_share,omitempty"`

	Kills        int    `json:"kills"`
	Restarts     int    `json:"restarts"`
	RouterShed   uint64 `json:"router_shed"`
	RouterRetry  uint64 `json:"router_retries"`
	WithinBudget bool   `json:"within_budget"`
}

// LoadCluster runs one configured cluster mix to completion.
func LoadCluster(cfg ClusterLoadConfig) (ClusterReport, error) {
	rep := ClusterReport{
		M: cfg.M, N: cfg.N,
		Router:     strings.TrimRight(cfg.RouterURL, "/"),
		Replicas:   cfg.Replicas,
		ShedBudget: cfg.ShedBudget,
	}
	if rep.Router == "" {
		return rep, fmt.Errorf("hbserve: cluster load needs a router URL")
	}
	if rep.ShedBudget == 0 {
		rep.ShedBudget = DefaultShedBudget
	} else if rep.ShedBudget < 0 {
		rep.ShedBudget = 0
	}
	if (cfg.Chaos != nil) != (cfg.Controller != nil) {
		return rep, fmt.Errorf("hbserve: chaos schedule and controller must be set together")
	}

	before, err := scrapeCluster(rep.Router)
	if err != nil {
		return rep, err
	}

	// Chaos replays on its own goroutine for the whole measured window;
	// cancelling after the legs finish stops any events scheduled past
	// the end of the run.
	ctx, cancel := context.WithCancel(context.Background())
	var chaosWG sync.WaitGroup
	var chaosMu sync.Mutex
	var chaosErr error
	if cfg.Chaos != nil {
		tick := cfg.ChaosTick
		if tick <= 0 {
			tick = 100 * time.Millisecond
		}
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			faults.ReplayTimed(ctx, cfg.Chaos, tick, func(e faults.Event) {
				var err error
				if e.Fail {
					err = cfg.Controller.Kill(e.Node)
				} else {
					err = cfg.Controller.Restart(e.Node)
				}
				chaosMu.Lock()
				if e.Fail {
					rep.Kills++
				} else {
					rep.Restarts++
				}
				if err != nil && chaosErr == nil {
					chaosErr = fmt.Errorf("hbserve: chaos event %+v: %w", e, err)
				}
				chaosMu.Unlock()
			})
		}()
	}

	// One independent open-loop generator per target, all concurrent:
	// leg 0 is the router, the rest the direct replica endpoints.
	targets := append([]string{rep.Router}, cfg.Replicas...)
	results := make([]LoadResult, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, target := range targets {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			results[i], errs[i] = Load(LoadConfig{
				BaseURL:  target,
				M:        cfg.M,
				N:        cfg.N,
				Endpoint: cfg.Endpoint,
				Mix:      cfg.Mix,
				QPS:      cfg.QPS,
				Duration: cfg.Duration,
				Workers:  cfg.Workers,
				Seed:     cfg.Seed + int64(i),
			})
		}(i, target)
	}
	wg.Wait()
	cancel()
	chaosWG.Wait()
	for i, err := range errs {
		if err != nil {
			return rep, fmt.Errorf("hbserve: cluster leg %s: %w", targets[i], err)
		}
	}
	if chaosErr != nil {
		return rep, chaosErr
	}

	rep.RouterResult = results[0]
	rep.Direct = results[1:]
	for _, r := range results {
		rep.AggregateRoutesPerSec += r.RoutesPerSec
	}

	// Batch legs run after the single-query window, each in its own
	// window: first through the router (the scatter-gather claim), then
	// every replica directly and concurrently (the ceiling the router is
	// judged against). Sequencing instead of overlapping keeps the legs
	// from stealing each other's CPU on a small machine — the aggregate
	// is a sum of per-window throughputs either way.
	if cfg.Batch > 0 {
		codec := cfg.Codec
		if codec == "" {
			codec = "bin"
		}
		bqps := cfg.BatchQPS
		if bqps <= 0 {
			bqps = 2000
		}
		batchCfg := func(target string, seed int64) LoadConfig {
			return LoadConfig{
				BaseURL:  target,
				M:        cfg.M,
				N:        cfg.N,
				Endpoint: cfg.Endpoint,
				Mix:      cfg.Mix,
				QPS:      bqps,
				Duration: cfg.Duration,
				Workers:  cfg.Workers,
				Seed:     seed,
				Batch:    cfg.Batch,
				Codec:    codec,
			}
		}
		rb, err := Load(batchCfg(rep.Router, cfg.Seed+100))
		if err != nil {
			return rep, fmt.Errorf("hbserve: router batch leg: %w", err)
		}
		rep.RouterBatch = &rb
		rep.DirectBatch = make([]LoadResult, len(cfg.Replicas))
		dbErrs := make([]error, len(cfg.Replicas))
		var bwg sync.WaitGroup
		for i, target := range cfg.Replicas {
			bwg.Add(1)
			go func(i int, target string) {
				defer bwg.Done()
				rep.DirectBatch[i], dbErrs[i] = Load(batchCfg(target, cfg.Seed+200+int64(i)))
			}(i, target)
		}
		bwg.Wait()
		for i, err := range dbErrs {
			if err != nil {
				return rep, fmt.Errorf("hbserve: direct batch leg %s: %w", cfg.Replicas[i], err)
			}
		}
		rep.BatchRoutesPerSec = rb.RoutesPerSec
		for _, r := range rep.DirectBatch {
			rep.BatchRoutesPerSec += r.RoutesPerSec
		}
		rep.AggregateRoutesPerSec += rep.BatchRoutesPerSec
	}

	after, err := scrapeCluster(rep.Router)
	if err != nil {
		return rep, err
	}
	rep.RouterShed = after.Shed - before.Shed
	rep.RouterRetry = after.Retries - before.Retries
	total := uint64(0)
	deltas := make([]uint64, len(after.Replicas))
	for i, r := range after.Replicas {
		d := r.Forwarded
		if i < len(before.Replicas) {
			d -= before.Replicas[i].Forwarded
		}
		deltas[i] = d
		total += d
	}
	for i, r := range after.Replicas {
		share := 0.0
		if total > 0 {
			share = float64(deltas[i]) / float64(total)
		}
		rep.Share = append(rep.Share, ReplicaShare{URL: r.URL, Forwarded: deltas[i], Share: share})
	}

	// The budget gates the router legs only: direct legs against a
	// replica that chaos killed are expected to fail during the outage.
	// The batch leg additionally demands zero lost pairs — a 2xx batch
	// response that dropped pairs is a correctness failure the shed
	// budget does not excuse.
	budgeted := int(rep.ShedBudget * float64(rep.RouterResult.Requests))
	rep.WithinBudget = rep.RouterResult.Non2xx <= budgeted
	if rb := rep.RouterBatch; rb != nil {
		bb := int(rep.ShedBudget * float64(rb.Requests))
		rep.WithinBudget = rep.WithinBudget && rb.LostPairs == 0 && rb.Non2xx <= bb
	}
	return rep, nil
}

// scrapeCluster fetches the router's /cluster status.
func scrapeCluster(routerURL string) (clusterStatus, error) {
	var st clusterStatus
	url := routerURL + "/cluster"
	resp, err := http.Get(url)
	if err != nil {
		return st, fmt.Errorf("hbserve: scraping %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("hbserve: scraping %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("hbserve: decoding %s: %w", url, err)
	}
	return st, nil
}

// WriteFile writes the report as indented JSON.
func (c *ClusterReport) WriteFile(path string) error {
	raw, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
