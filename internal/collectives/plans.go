package collectives

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Msg is one point-to-point transfer of a collective replay plan: the
// NoC engine injects it as a worm from Src to Dst once every message in
// Deps has been delivered. A plan is a DAG of messages; replaying it
// under saturating background load measures how the collective's
// critical path stretches under contention (experiment E-NC).
type Msg struct {
	Src  int     `json:"src"`
	Dst  int     `json:"dst"`
	Deps []int32 `json:"deps,omitempty"` // indices into the plan
}

// ValidateMsgs checks a plan against a network of the given order:
// endpoints in range and distinct, dependency indices in range and
// strictly smaller than the dependent (plans are emitted in
// topological order, which also rules out cycles).
func ValidateMsgs(msgs []Msg, order int) error {
	for i, m := range msgs {
		if m.Src < 0 || m.Src >= order || m.Dst < 0 || m.Dst >= order {
			return fmt.Errorf("collectives: msg %d endpoints %d->%d outside [0,%d)", i, m.Src, m.Dst, order)
		}
		if m.Src == m.Dst {
			return fmt.Errorf("collectives: msg %d is a self-send at %d", i, m.Src)
		}
		for _, d := range m.Deps {
			if d < 0 || int(d) >= i {
				return fmt.Errorf("collectives: msg %d depends on %d (want 0..%d)", i, d, i-1)
			}
		}
	}
	return nil
}

// BroadcastMsgs returns the message plan of Broadcast(g, root): one
// message per BFS tree edge, each depending on the message that
// delivered the payload to its source.
func BroadcastMsgs(g graph.Graph, root int) ([]Msg, error) {
	parent, order, _, err := bfsTree(g, root)
	if err != nil {
		return nil, err
	}
	in := make([]int32, g.Order()) // node -> index of the msg delivering to it
	for i := range in {
		in[i] = -1
	}
	msgs := make([]Msg, 0, len(order)-1)
	for _, v32 := range order[1:] {
		v := int(v32)
		p := int(parent[v])
		var deps []int32
		if in[p] >= 0 {
			deps = []int32{in[p]}
		}
		in[v] = int32(len(msgs))
		msgs = append(msgs, Msg{Src: p, Dst: v, Deps: deps})
	}
	return msgs, nil
}

// AllReduceMsgs returns the message plan of AllReduceHB: phase 1
// convergecasts each sub-butterfly onto its representative along the
// butterfly BFS tree, phase 2 recursive-doubles the representatives
// over the m hypercube dimensions, and phase 3 broadcasts the result
// back down each sub-butterfly. Each message depends on everything its
// source had to receive first, so the plan's critical path equals the
// collective's round count.
func AllReduceMsgs(hb *core.HyperButterfly) ([]Msg, error) {
	bf := hb.Butterfly()
	parent, order, _, err := bfsTree(bf, bf.Identity())
	if err != nil {
		return nil, err
	}
	cubeSize := 1 << uint(hb.M())
	bRoot := bf.Identity()
	into := make([][]int32, hb.Order()) // msgs delivered to each node so far
	var msgs []Msg

	dep := func(src int) []int32 {
		if len(into[src]) == 0 {
			return nil
		}
		return append([]int32(nil), into[src]...)
	}

	// Phase 1: convergecast, reverse BFS order per sub-butterfly.
	for h := 0; h < cubeSize; h++ {
		for i := len(order) - 1; i > 0; i-- {
			v := int(order[i])
			src, dst := hb.Encode(h, v), hb.Encode(h, int(parent[v]))
			id := int32(len(msgs))
			msgs = append(msgs, Msg{Src: src, Dst: dst, Deps: dep(src)})
			into[dst] = append(into[dst], id)
		}
	}
	// Phase 2: recursive doubling between representatives.
	for i := 0; i < hb.M(); i++ {
		bit := 1 << uint(i)
		ids := make([]int32, cubeSize)
		for h := 0; h < cubeSize; h++ {
			src, dst := hb.Encode(h, bRoot), hb.Encode(h^bit, bRoot)
			ids[h] = int32(len(msgs))
			msgs = append(msgs, Msg{Src: src, Dst: dst, Deps: dep(src)})
		}
		for h := 0; h < cubeSize; h++ {
			rep := hb.Encode(h, bRoot)
			into[rep] = append(into[rep], ids[h^bit])
		}
	}
	// Phase 3: broadcast back, BFS order per sub-butterfly.
	for h := 0; h < cubeSize; h++ {
		for _, v32 := range order[1:] {
			v := int(v32)
			src, dst := hb.Encode(h, int(parent[v])), hb.Encode(h, v)
			id := int32(len(msgs))
			msgs = append(msgs, Msg{Src: src, Dst: dst, Deps: dep(src)})
			into[dst] = append(into[dst], id)
		}
	}
	return msgs, nil
}
