package collectives

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestValidateMsgs(t *testing.T) {
	good := []Msg{
		{Src: 0, Dst: 1},
		{Src: 1, Dst: 2, Deps: []int32{0}},
	}
	if err := ValidateMsgs(good, 4); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	bad := [][]Msg{
		{{Src: -1, Dst: 1}},
		{{Src: 0, Dst: 4}},
		{{Src: 2, Dst: 2}},
		{{Src: 0, Dst: 1, Deps: []int32{0}}},                   // self-dependency
		{{Src: 0, Dst: 1}, {Src: 1, Dst: 2, Deps: []int32{5}}}, // forward dep
	}
	for i, plan := range bad {
		if err := ValidateMsgs(plan, 4); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestBroadcastMsgs(t *testing.T) {
	hb := core.MustNew(2, 3)
	msgs, err := BroadcastMsgs(hb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != hb.Order()-1 {
		t.Fatalf("%d messages, want one per non-root node (%d)", len(msgs), hb.Order()-1)
	}
	if err := ValidateMsgs(msgs, hb.Order()); err != nil {
		t.Fatal(err)
	}
	// Every node receives exactly once, and each message's source has
	// already received (or is the root).
	got := make([]bool, hb.Order())
	got[0] = true
	for i, m := range msgs {
		if !got[m.Src] {
			t.Fatalf("msg %d sent from %d before it received the payload", i, m.Src)
		}
		if got[m.Dst] {
			t.Fatalf("msg %d delivers twice to %d", i, m.Dst)
		}
		got[m.Dst] = true
	}
	for v, ok := range got {
		if !ok {
			t.Fatalf("node %d never reached", v)
		}
	}
}

func TestAllReduceMsgs(t *testing.T) {
	hb := core.MustNew(2, 3)
	msgs, err := AllReduceMsgs(hb)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateMsgs(msgs, hb.Order()); err != nil {
		t.Fatal(err)
	}
	// Shape: per sub-butterfly a convergecast and a broadcast (order-1
	// messages each), plus m exchanges per cube dimension.
	bOrder := hb.Butterfly().Order()
	cube := 1 << uint(hb.M())
	want := cube*(bOrder-1)*2 + hb.M()*cube
	if len(msgs) != want {
		t.Fatalf("%d messages, want %d", len(msgs), want)
	}
	// Every message must ride an actual edge of HB(m,n).
	d := graph.Build(hb)
	for i, m := range msgs {
		found := false
		for _, w := range d.Neighbors(m.Src) {
			if int(w) == m.Dst {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("msg %d uses non-edge %d->%d", i, m.Src, m.Dst)
		}
	}
}
