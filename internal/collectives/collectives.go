// Package collectives implements the global communication operations a
// multiprocessor built on HB(m,n) would actually run — reduce, gather,
// all-reduce and barrier — in the same synchronous all-port model as
// the broadcast package. The structured all-reduce exploits the product
// shape exactly as the paper's routing does: butterfly convergecast
// inside every sub-butterfly, recursive doubling across the hypercube
// dimensions, butterfly broadcast back out, for m + 2·⌊3n/2⌋ rounds —
// m rounds better than running reduce+broadcast on one global tree.
package collectives

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Op is an associative, commutative combining operation.
type Op func(a, b int64) int64

// Sum and Max are the usual reductions.
var (
	Sum Op = func(a, b int64) int64 { return a + b }
	Max Op = func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
)

// Stats counts the synchronous cost of a collective.
type Stats struct {
	Rounds   int
	Messages int
}

// bfsTree returns parents, a BFS order and the depth of the tree rooted
// at root.
func bfsTree(g graph.Graph, root int) (parent []int32, order []int32, depth int, err error) {
	n := g.Order()
	parent = make([]int32, n)
	dist := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = int32(root)
	order = append(order, int32(root))
	var buf []int
	for head := 0; head < len(order); head++ {
		v := int(order[head])
		buf = g.AppendNeighbors(v, buf[:0])
		for _, w := range buf {
			if parent[w] == -1 {
				parent[w] = int32(v)
				dist[w] = dist[v] + 1
				if int(dist[w]) > depth {
					depth = int(dist[w])
				}
				order = append(order, int32(w))
			}
		}
	}
	if len(order) != n {
		return nil, nil, 0, fmt.Errorf("collectives: graph is disconnected (%d of %d reached)", len(order), n)
	}
	return parent, order, depth, nil
}

// Reduce combines values with op toward root along a BFS tree:
// depth rounds, N-1 messages.
func Reduce(g graph.Graph, root int, values []int64, op Op) (int64, Stats, error) {
	n := g.Order()
	if len(values) != n {
		return 0, Stats{}, fmt.Errorf("collectives: %d values for %d nodes", len(values), n)
	}
	parent, order, depth, err := bfsTree(g, root)
	if err != nil {
		return 0, Stats{}, err
	}
	acc := make([]int64, n)
	copy(acc, values)
	for i := len(order) - 1; i > 0; i-- {
		v := int(order[i])
		p := int(parent[v])
		acc[p] = op(acc[p], acc[v])
	}
	return acc[root], Stats{Rounds: depth, Messages: n - 1}, nil
}

// Gather collects every node's value at root (concatenation): the
// rounds match Reduce but the message count is the total data movement,
// one value-hop per value per tree edge on its way up.
func Gather(g graph.Graph, root int, values []int64) ([]int64, Stats, error) {
	n := g.Order()
	if len(values) != n {
		return nil, Stats{}, fmt.Errorf("collectives: %d values for %d nodes", len(values), n)
	}
	parent, order, depth, err := bfsTree(g, root)
	if err != nil {
		return nil, Stats{}, err
	}
	// Count value-hops: each node's value travels its tree depth.
	hops := 0
	dist := make([]int32, n)
	for _, vi := range order[1:] {
		dist[vi] = dist[parent[vi]] + 1
		hops += int(dist[vi])
	}
	out := make([]int64, n)
	copy(out, values)
	return out, Stats{Rounds: depth, Messages: hops}, nil
}

// AllReduceTree is reduce-then-broadcast on one global BFS tree:
// 2·depth rounds, 2(N-1) messages. The baseline the structured variant
// is compared against.
func AllReduceTree(g graph.Graph, root int, values []int64, op Op) (int64, Stats, error) {
	total, st, err := Reduce(g, root, values, op)
	if err != nil {
		return 0, Stats{}, err
	}
	return total, Stats{Rounds: 2 * st.Rounds, Messages: 2 * st.Messages}, nil
}

// AllReduceHB is the structured hyper-butterfly all-reduce:
//
//  1. convergecast inside every sub-butterfly to its (h, identity)
//     representative — ⌊3n/2⌋ rounds, (|B|-1)·2^m messages;
//  2. recursive doubling across the m hypercube dimensions (every
//     representative exchanges with its dimension-i neighbor) —
//     m rounds, m·2^m messages;
//  3. broadcast back inside every sub-butterfly — ⌊3n/2⌋ rounds.
//
// Total: m + 2·⌊3n/2⌋ rounds, beating the 2·(m + ⌊3n/2⌋) of the global
// tree by m rounds, with every step a local generator decision.
func AllReduceHB(hb *core.HyperButterfly, values []int64, op Op) (int64, Stats, error) {
	n := hb.Order()
	if len(values) != n {
		return 0, Stats{}, fmt.Errorf("collectives: %d values for %d nodes", len(values), n)
	}
	bf := hb.Butterfly()
	bSize := bf.Order()
	cubeSize := 1 << uint(hb.M())

	// Phase 1: per-sub-butterfly convergecast on the butterfly BFS tree
	// (the same tree for every h by vertex symmetry).
	parent, order, depth, err := bfsTree(bf, bf.Identity())
	if err != nil {
		return 0, Stats{}, err
	}
	reps := make([]int64, cubeSize)
	acc := make([]int64, bSize)
	for h := 0; h < cubeSize; h++ {
		for b := 0; b < bSize; b++ {
			acc[b] = values[hb.Encode(h, b)]
		}
		for i := len(order) - 1; i > 0; i-- {
			v := int(order[i])
			acc[parent[v]] = op(acc[parent[v]], acc[v])
		}
		reps[h] = acc[bf.Identity()]
	}
	st := Stats{Rounds: depth, Messages: (bSize - 1) * cubeSize}

	// Phase 2: recursive doubling over hypercube dimensions.
	for i := 0; i < hb.M(); i++ {
		bit := 1 << uint(i)
		next := make([]int64, cubeSize)
		for h := 0; h < cubeSize; h++ {
			next[h] = op(reps[h], reps[h^bit])
		}
		reps = next
		st.Rounds++
		st.Messages += cubeSize
	}

	// Phase 3: per-sub-butterfly broadcast of the global result.
	st.Rounds += depth
	st.Messages += (bSize - 1) * cubeSize

	// All representatives now agree; return the common value.
	return reps[0], st, nil
}

// Barrier is an all-reduce of nothing: it returns only the synchronous
// cost of global agreement on HB(m,n).
func Barrier(hb *core.HyperButterfly) (Stats, error) {
	_, st, err := AllReduceHB(hb, make([]int64, hb.Order()), Sum)
	return st, err
}

// Scan computes the inclusive prefix combination of values in the DFS
// preorder of the BFS tree rooted at root: node v's result is
// op(values[u1], …, values[uk], values[v]) over all vertices u that
// precede v in preorder. Implemented as the textbook two-pass tree
// scan — an upward subtree-combine pass and a downward offset pass —
// costing 2·depth rounds and 2(N-1) messages. The returned order slice
// gives the preorder itself so callers can interpret the prefix.
//
// op must be associative; it need not be commutative.
func Scan(g graph.Graph, root int, values []int64, op Op) (prefix []int64, preorder []int, st Stats, err error) {
	n := g.Order()
	if len(values) != n {
		return nil, nil, Stats{}, fmt.Errorf("collectives: %d values for %d nodes", len(values), n)
	}
	parent, order, depth, err := bfsTree(g, root)
	if err != nil {
		return nil, nil, Stats{}, err
	}
	// Children lists in deterministic (BFS) order.
	children := make([][]int32, n)
	for _, vi := range order[1:] {
		p := parent[vi]
		children[p] = append(children[p], vi)
	}
	// Upward pass: subtree combination of each vertex (processed
	// deepest-first thanks to reverse BFS order).
	sub := make([]int64, n)
	copy(sub, values)
	for i := len(order) - 1; i > 0; i-- {
		v := order[i]
		sub[parent[v]] = op(sub[parent[v]], sub[v])
	}
	// Downward pass: each vertex receives the combination of everything
	// before its subtree in preorder ("offset"), then forwards offsets
	// to its children left to right.
	prefix = make([]int64, n)
	preorder = make([]int, 0, n)
	var walk func(v int32, off int64, has bool)
	walk = func(v int32, off int64, has bool) {
		preorder = append(preorder, int(v))
		if has {
			prefix[v] = op(off, values[v])
		} else {
			prefix[v] = values[v]
		}
		acc, accHas := off, has
		if accHas {
			acc = op(acc, values[v])
		} else {
			acc, accHas = values[v], true
		}
		for _, c := range children[v] {
			walk(c, acc, accHas)
			acc = op(acc, sub[c])
		}
	}
	walk(int32(root), 0, false)
	return prefix, preorder, Stats{Rounds: 2 * depth, Messages: 2 * (n - 1)}, nil
}
