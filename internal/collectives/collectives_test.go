package collectives

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func randomValues(n int, seed int64) ([]int64, int64, int64) {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	var sum, max int64
	max = -1 << 62
	for i := range vals {
		vals[i] = int64(rng.Intn(1000) - 500)
		sum += vals[i]
		if vals[i] > max {
			max = vals[i]
		}
	}
	return vals, sum, max
}

func TestReduce(t *testing.T) {
	hb := core.MustNew(2, 3)
	vals, sum, max := randomValues(hb.Order(), 1)
	for _, root := range []int{0, 17, hb.Order() - 1} {
		got, st, err := Reduce(hb, root, vals, Sum)
		if err != nil {
			t.Fatal(err)
		}
		if got != sum {
			t.Fatalf("root %d: sum %d, want %d", root, got, sum)
		}
		if st.Messages != hb.Order()-1 {
			t.Fatalf("messages %d", st.Messages)
		}
		ecc, _ := graph.Eccentricity(hb, root)
		if st.Rounds != ecc {
			t.Fatalf("rounds %d, want eccentricity %d", st.Rounds, ecc)
		}
		gotMax, _, err := Reduce(hb, root, vals, Max)
		if err != nil || gotMax != max {
			t.Fatalf("max %d want %d err %v", gotMax, max, err)
		}
	}
	if _, _, err := Reduce(hb, 0, vals[:3], Sum); err == nil {
		t.Error("accepted short values")
	}
	disc := graph.NewDense(4, [][2]int{{0, 1}, {2, 3}})
	if _, _, err := Reduce(disc, 0, make([]int64, 4), Sum); err == nil {
		t.Error("accepted disconnected graph")
	}
}

func TestGather(t *testing.T) {
	hb := core.MustNew(1, 3)
	vals, _, _ := randomValues(hb.Order(), 2)
	out, st, err := Gather(hb, 0, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("gathered value %d corrupted", i)
		}
	}
	// Value-hops strictly exceed N-1 (deep values travel farther).
	if st.Messages <= hb.Order()-1 {
		t.Fatalf("gather hops %d suspiciously low", st.Messages)
	}
	if _, _, err := Gather(hb, 0, vals[:2]); err == nil {
		t.Error("accepted short values")
	}
}

// TestAllReduceHB is the headline: correct result, every phase local,
// and exactly m + 2·⌊3n/2⌋ rounds — m better than the tree baseline.
func TestAllReduceHB(t *testing.T) {
	for _, dims := range [][2]int{{0, 3}, {1, 3}, {2, 4}, {3, 3}} {
		hb := core.MustNew(dims[0], dims[1])
		vals, sum, max := randomValues(hb.Order(), int64(dims[0]+dims[1]))
		got, st, err := AllReduceHB(hb, vals, Sum)
		if err != nil {
			t.Fatalf("HB%v: %v", dims, err)
		}
		if got != sum {
			t.Fatalf("HB%v: sum %d, want %d", dims, got, sum)
		}
		wantRounds := dims[0] + 2*hb.Butterfly().DiameterFormula()
		if st.Rounds != wantRounds {
			t.Fatalf("HB%v: rounds %d, want %d", dims, st.Rounds, wantRounds)
		}
		gotMax, _, err := AllReduceHB(hb, vals, Max)
		if err != nil || gotMax != max {
			t.Fatalf("HB%v: max %d want %d err %v", dims, gotMax, max, err)
		}

		tree, treeSt, err := AllReduceTree(hb, hb.Identity(), vals, Sum)
		if err != nil || tree != sum {
			t.Fatalf("HB%v: tree allreduce %d err %v", dims, tree, err)
		}
		if dims[0] > 0 && st.Rounds >= treeSt.Rounds {
			t.Fatalf("HB%v: structured %d rounds not below tree %d", dims, st.Rounds, treeSt.Rounds)
		}
	}
	hb := core.MustNew(1, 3)
	if _, _, err := AllReduceHB(hb, make([]int64, 3), Sum); err == nil {
		t.Error("accepted short values")
	}
}

func TestBarrier(t *testing.T) {
	hb := core.MustNew(2, 3)
	st, err := Barrier(hb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 2+2*4 {
		t.Fatalf("barrier rounds %d", st.Rounds)
	}
}

func TestScan(t *testing.T) {
	hb := core.MustNew(2, 3)
	vals, _, _ := randomValues(hb.Order(), 9)
	prefix, preorder, st, err := Scan(hb, 5, vals, Sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(preorder) != hb.Order() {
		t.Fatalf("preorder covers %d nodes", len(preorder))
	}
	// Check against the sequential prefix over the preorder.
	var acc int64
	seen := make(map[int]bool)
	for _, v := range preorder {
		if seen[v] {
			t.Fatalf("preorder repeats %d", v)
		}
		seen[v] = true
		acc += vals[v]
		if prefix[v] != acc {
			t.Fatalf("prefix at %d = %d, want %d", v, prefix[v], acc)
		}
	}
	ecc, _ := graph.Eccentricity(hb, 5)
	if st.Rounds != 2*ecc || st.Messages != 2*(hb.Order()-1) {
		t.Fatalf("stats %+v", st)
	}
	// Non-commutative op sanity: Max works too (idempotent, associative).
	pmax, preorder2, _, err := Scan(hb, 0, vals, Max)
	if err != nil {
		t.Fatal(err)
	}
	var m int64 = -1 << 62
	for _, v := range preorder2 {
		if vals[v] > m {
			m = vals[v]
		}
		if pmax[v] != m {
			t.Fatalf("max prefix at %d = %d, want %d", v, pmax[v], m)
		}
	}
	if _, _, _, err := Scan(hb, 0, vals[:2], Sum); err == nil {
		t.Error("accepted short values")
	}
}

// TestSmallestLegalInstances runs every collective on the two boundary
// instances the constructors admit: HB(0,3) — the degenerate m=0 case,
// where the network is B_3 itself and recursive doubling contributes
// zero rounds — and HB(1,3), the smallest instance the paper considers
// (m >= 1).
func TestSmallestLegalInstances(t *testing.T) {
	for _, dims := range [][2]int{{0, 3}, {1, 3}} {
		hb := core.MustNew(dims[0], dims[1])
		vals, sum, max := randomValues(hb.Order(), 77)
		root := hb.Identity()

		got, st, err := Reduce(hb, root, vals, Sum)
		if err != nil || got != sum {
			t.Fatalf("HB%v reduce: %d want %d err %v", dims, got, sum, err)
		}
		if st.Messages != hb.Order()-1 {
			t.Errorf("HB%v reduce messages %d, want %d", dims, st.Messages, hb.Order()-1)
		}

		if _, _, err := Gather(hb, root, vals); err != nil {
			t.Fatalf("HB%v gather: %v", dims, err)
		}

		ar, st, err := AllReduceHB(hb, vals, Max)
		if err != nil || ar != max {
			t.Fatalf("HB%v all-reduce: %d want %d err %v", dims, ar, max, err)
		}
		wantRounds := dims[0] + 2*hb.Butterfly().DiameterFormula()
		if st.Rounds != wantRounds {
			t.Errorf("HB%v all-reduce rounds %d, want m+2*floor(3n/2) = %d", dims, st.Rounds, wantRounds)
		}

		if _, err := Barrier(hb); err != nil {
			t.Fatalf("HB%v barrier: %v", dims, err)
		}

		prefix, preorder, _, err := Scan(hb, root, vals, Sum)
		if err != nil {
			t.Fatalf("HB%v scan: %v", dims, err)
		}
		if last := preorder[len(preorder)-1]; prefix[last] != sum {
			t.Errorf("HB%v scan total %d, want %d", dims, prefix[last], sum)
		}
	}
}

// TestMismatchedParticipants exercises the error path of every
// collective when the value set does not match the node set — both too
// few and too many participants must be rejected, never silently
// truncated or padded.
func TestMismatchedParticipants(t *testing.T) {
	hb := core.MustNew(1, 3)
	for _, bad := range [][]int64{
		make([]int64, hb.Order()-1),
		make([]int64, hb.Order()+1),
		nil,
	} {
		if _, _, err := Reduce(hb, 0, bad, Sum); err == nil {
			t.Errorf("Reduce accepted %d values for %d nodes", len(bad), hb.Order())
		}
		if _, _, err := Gather(hb, 0, bad); err == nil {
			t.Errorf("Gather accepted %d values for %d nodes", len(bad), hb.Order())
		}
		if _, _, err := AllReduceTree(hb, 0, bad, Sum); err == nil {
			t.Errorf("AllReduceTree accepted %d values for %d nodes", len(bad), hb.Order())
		}
		if _, _, err := AllReduceHB(hb, bad, Sum); err == nil {
			t.Errorf("AllReduceHB accepted %d values for %d nodes", len(bad), hb.Order())
		}
		if _, _, _, err := Scan(hb, 0, bad, Sum); err == nil {
			t.Errorf("Scan accepted %d values for %d nodes", len(bad), hb.Order())
		}
	}
}
