package hyperdebruijn_test

import (
	"testing"

	"repro/internal/conformance"
)

// TestConformance registers HD(m,n) — the paper's comparison baseline —
// with the repository-wide invariant suite: irregular degrees
// [m+2, m+4] (the fault-tolerance ceiling of Figure 1), diameter m+n,
// connectivity m+2 and (m+n)-bounded routing.
func TestConformance(t *testing.T) {
	conformance.Suite(t,
		conformance.HyperDeBruijn(1, 3),
		conformance.HyperDeBruijn(2, 3),
		conformance.HyperDeBruijn(2, 4),
		conformance.HyperDeBruijn(3, 5),
	)
}
