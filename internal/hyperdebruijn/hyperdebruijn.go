// Package hyperdebruijn implements the hyper-deBruijn network HD(m,n)
// of Ganesan & Pradhan (reference [1] of the paper), the baseline the
// hyper-butterfly is compared against in Figures 1 and 2: the Cartesian
// product of the hypercube H_m and the binary de Bruijn graph D_n.
//
// HD(m,n) has 2^(m+n) nodes. It is NOT regular: generic nodes have
// degree m+4, but the de Bruijn loop vertices drop to m+2 (and the
// alternating words to m+3), which is exactly the shortcoming — lower
// fault tolerance than the common degree — that motivates the
// hyper-butterfly.
package hyperdebruijn

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/debruijn"
	"repro/internal/hypercube"
)

// Node is a hyper-deBruijn vertex id in [0, 2^(m+n)): id = h·2^n + d.
type Node = int

// HyperDeBruijn is the network HD(m,n).
type HyperDeBruijn struct {
	m    int
	cube *hypercube.Cube
	db   *debruijn.Graph
}

// New returns HD(m,n) for 0 <= m <= 30 and 2 <= n <= 30 with m+n <= 40.
func New(m, n int) (*HyperDeBruijn, error) {
	cube, err := hypercube.New(m)
	if err != nil {
		return nil, fmt.Errorf("hyperdebruijn: %w", err)
	}
	db, err := debruijn.New(n)
	if err != nil {
		return nil, fmt.Errorf("hyperdebruijn: %w", err)
	}
	if m+n > 40 {
		return nil, fmt.Errorf("hyperdebruijn: m+n = %d too large", m+n)
	}
	return &HyperDeBruijn{m: m, cube: cube, db: db}, nil
}

// MustNew is New for known-good dimensions; it panics on error.
func MustNew(m, n int) *HyperDeBruijn {
	hd, err := New(m, n)
	if err != nil {
		panic(err)
	}
	return hd
}

// M returns the hypercube dimension.
func (hd *HyperDeBruijn) M() int { return hd.m }

// N returns the de Bruijn dimension.
func (hd *HyperDeBruijn) N() int { return hd.db.Dim() }

// Order returns 2^(m+n).
func (hd *HyperDeBruijn) Order() int { return 1 << uint(hd.m+hd.N()) }

// MaxDegree returns m+4, the degree of generic nodes (Figure 1's
// "Degree" row for HD).
func (hd *HyperDeBruijn) MaxDegree() int { return hd.m + 4 }

// MinDegree returns m+2, the degree of the two de Bruijn loop nodes —
// and therefore the fault tolerance ceiling (Figure 1's
// "Fault-tolerance" row).
func (hd *HyperDeBruijn) MinDegree() int { return hd.m + 2 }

// DiameterFormula returns m+n.
func (hd *HyperDeBruijn) DiameterFormula() int { return hd.m + hd.N() }

// ConnectivityFormula returns m+2: a minimum cut isolates a loop vertex.
func (hd *HyperDeBruijn) ConnectivityFormula() int { return hd.m + 2 }

// Encode assembles a node id from the hypercube part h and de Bruijn
// part d.
func (hd *HyperDeBruijn) Encode(h, d int) Node {
	if h < 0 || h >= hd.cube.Order() || d < 0 || d >= hd.db.Order() {
		panic(fmt.Sprintf("hyperdebruijn: invalid label (h=%d, d=%d) for HD(%d,%d)", h, d, hd.m, hd.N()))
	}
	return h<<uint(hd.N()) | d
}

// Decode splits a node id into its parts.
func (hd *HyperDeBruijn) Decode(v Node) (h, d int) {
	return v >> uint(hd.N()), v & int(bitvec.Mask(hd.N()))
}

// AppendNeighbors implements graph.Graph: m hypercube neighbors plus the
// simple-graph de Bruijn neighbors (2 to 4 of them).
func (hd *HyperDeBruijn) AppendNeighbors(v int, buf []int) []int {
	h, d := hd.Decode(v)
	for i := 0; i < hd.m; i++ {
		buf = append(buf, hd.Encode(h^(1<<uint(i)), d))
	}
	start := len(buf)
	buf = hd.db.AppendNeighbors(d, buf)
	for i := start; i < len(buf); i++ {
		buf[i] = hd.Encode(h, buf[i])
	}
	return buf
}

// VertexLabel renders v as "(h-bits; d-bits)".
func (hd *HyperDeBruijn) VertexLabel(v Node) string {
	h, d := hd.Decode(v)
	return "(" + bitvec.String(uint64(h), hd.m) + "; " + bitvec.String(uint64(d), hd.N()) + ")"
}

// Route returns a u-v walk combining e-cube routing on the hypercube
// part with single-direction shift routing on the de Bruijn part, the
// scheme of reference [1]. Its length is at most m+n but is not always
// optimal — the paper's point that HD routing is "relatively complex"
// refers exactly to the gap closed here only by search.
func (hd *HyperDeBruijn) Route(u, v Node) []Node {
	hu, du := hd.Decode(u)
	hv, dv := hd.Decode(v)
	path := []Node{u}
	cur := hu
	for _, d := range bitvec.DiffBits(uint64(hu), uint64(hv), hd.m) {
		cur ^= 1 << uint(d)
		path = append(path, hd.Encode(cur, du))
	}
	for _, d := range hd.db.Route(du, dv)[1:] {
		path = append(path, hd.Encode(hv, d))
	}
	return path
}

// RouteLengthBound returns m+n, the worst-case Route length.
func (hd *HyperDeBruijn) RouteLengthBound() int { return hd.m + hd.N() }
