package hyperdebruijn

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 3); err == nil {
		t.Error("accepted m = -1")
	}
	if _, err := New(1, 1); err == nil {
		t.Error("accepted n = 1")
	}
	if _, err := New(30, 30); err == nil {
		t.Error("accepted m+n = 60")
	}
}

func TestStructure(t *testing.T) {
	for m := 0; m <= 3; m++ {
		for n := 3; n <= 5; n++ {
			hd := MustNew(m, n)
			if hd.Order() != 1<<uint(m+n) {
				t.Fatalf("HD(%d,%d): order %d", m, n, hd.Order())
			}
			if err := graph.CheckUndirected(hd); err != nil {
				t.Fatalf("HD(%d,%d): %v", m, n, err)
			}
			st := graph.Degrees(graph.Build(hd))
			if st.Max != hd.MaxDegree() {
				t.Fatalf("HD(%d,%d): max degree %d, want %d", m, n, st.Max, hd.MaxDegree())
			}
			if st.Min != hd.MinDegree() {
				t.Fatalf("HD(%d,%d): min degree %d, want %d", m, n, st.Min, hd.MinDegree())
			}
			if st.Regular {
				t.Fatalf("HD(%d,%d) must not be regular", m, n)
			}
			// Exactly 2·2^m nodes of minimum degree (the loop words).
			if st.Histogram[hd.MinDegree()] != 2<<uint(m) {
				t.Fatalf("HD(%d,%d): %d min-degree nodes, want %d",
					m, n, st.Histogram[hd.MinDegree()], 2<<uint(m))
			}
		}
	}
}

func TestDiameterMatchesFormula(t *testing.T) {
	for m := 0; m <= 2; m++ {
		for n := 3; n <= 5; n++ {
			hd := MustNew(m, n)
			if got := graph.Diameter(graph.Build(hd)); got != hd.DiameterFormula() {
				t.Fatalf("HD(%d,%d): diameter %d, want %d", m, n, got, hd.DiameterFormula())
			}
		}
	}
}

// TestConnectivity verifies the m+2 fault tolerance claim of Figure 1 —
// the key weakness of HD versus HB.
func TestConnectivity(t *testing.T) {
	for _, dims := range [][2]int{{1, 3}, {2, 3}, {1, 4}} {
		hd := MustNew(dims[0], dims[1])
		got := graph.Connectivity(graph.Build(hd))
		if got != hd.ConnectivityFormula() {
			t.Fatalf("HD%v: connectivity %d, want %d", dims, got, hd.ConnectivityFormula())
		}
	}
}

func TestRouteValid(t *testing.T) {
	hd := MustNew(2, 4)
	d := graph.Build(hd)
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 2000; trial++ {
		u, v := rng.Intn(hd.Order()), rng.Intn(hd.Order())
		p := hd.Route(u, v)
		if p[0] != u || p[len(p)-1] != v {
			t.Fatalf("route %d->%d endpoints %v", u, v, p)
		}
		if len(p)-1 > hd.RouteLengthBound() {
			t.Fatalf("route %d->%d length %d exceeds m+n", u, v, len(p)-1)
		}
		for i := 1; i < len(p); i++ {
			if !d.HasEdge(p[i-1], p[i]) {
				t.Fatalf("route %d->%d uses non-edge %d-%d", u, v, p[i-1], p[i])
			}
		}
	}
}

func TestEncodeDecode(t *testing.T) {
	hd := MustNew(3, 4)
	for v := 0; v < hd.Order(); v++ {
		h, d := hd.Decode(v)
		if hd.Encode(h, d) != v {
			t.Fatalf("round trip failed at %d", v)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Encode accepted bad label")
			}
		}()
		hd.Encode(8, 0)
	}()
}

func TestVertexLabel(t *testing.T) {
	hd := MustNew(2, 3)
	if got := hd.VertexLabel(hd.Encode(2, 5)); got != "(10; 101)" {
		t.Errorf("label = %q", got)
	}
}
