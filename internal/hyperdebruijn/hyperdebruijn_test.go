package hyperdebruijn

import (
	"testing"

	"repro/internal/graph"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 3); err == nil {
		t.Error("accepted m = -1")
	}
	if _, err := New(1, 1); err == nil {
		t.Error("accepted n = 1")
	}
	if _, err := New(30, 30); err == nil {
		t.Error("accepted m+n = 60")
	}
}

func TestStructure(t *testing.T) {
	for m := 0; m <= 3; m++ {
		for n := 3; n <= 5; n++ {
			hd := MustNew(m, n)
			if hd.Order() != 1<<uint(m+n) {
				t.Fatalf("HD(%d,%d): order %d", m, n, hd.Order())
			}
			if err := graph.CheckUndirected(hd); err != nil {
				t.Fatalf("HD(%d,%d): %v", m, n, err)
			}
			st := graph.Degrees(graph.Build(hd))
			if st.Max != hd.MaxDegree() {
				t.Fatalf("HD(%d,%d): max degree %d, want %d", m, n, st.Max, hd.MaxDegree())
			}
			if st.Min != hd.MinDegree() {
				t.Fatalf("HD(%d,%d): min degree %d, want %d", m, n, st.Min, hd.MinDegree())
			}
			if st.Regular {
				t.Fatalf("HD(%d,%d) must not be regular", m, n)
			}
			// Exactly 2·2^m nodes of minimum degree (the loop words).
			if st.Histogram[hd.MinDegree()] != 2<<uint(m) {
				t.Fatalf("HD(%d,%d): %d min-degree nodes, want %d",
					m, n, st.Histogram[hd.MinDegree()], 2<<uint(m))
			}
		}
	}
}

// Diameter m+n, connectivity m+2 (the Figure 1 weakness of HD versus
// HB) and the (m+n)-bounded route validity are asserted by the
// conformance suite in conformance_test.go.

func TestEncodeDecode(t *testing.T) {
	hd := MustNew(3, 4)
	for v := 0; v < hd.Order(); v++ {
		h, d := hd.Decode(v)
		if hd.Encode(h, d) != v {
			t.Fatalf("round trip failed at %d", v)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Encode accepted bad label")
			}
		}()
		hd.Encode(8, 0)
	}()
}

func TestVertexLabel(t *testing.T) {
	hd := MustNew(2, 3)
	if got := hd.VertexLabel(hd.Encode(2, 5)); got != "(10; 101)" {
		t.Errorf("label = %q", got)
	}
}
