// Package layout provides the VLSI-oriented structural metrics behind
// the paper's motivation (bounded degree "from VLSI implementation
// point of view", the dBCube area argument of reference [2]): explicit
// balanced bisections and their cut widths. By Thompson's argument the
// bisection width lower-bounds wire area, so the constructive cuts here
// are the quantities a layout engineer would ask this library for.
//
// Two natural cuts of HB(m,n) are constructed and counted exactly:
//
//   - the hypercube dimension cut (split on one hypercube label bit):
//     perfectly balanced, cut width = |V|/2 — every node owns exactly
//     one edge of the chosen dimension;
//   - the butterfly level cut (split on permutation index): for even n
//     perfectly balanced with cut width 2^(m+n+2) — only the two level
//     boundaries carry crossing edges, so it is asymptotically far
//     thinner than any dimension cut.
//
// The minimum of the two is an upper bound on the bisection width.
package layout

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Cut is a 2-partition of a graph's vertices with its measured cost.
type Cut struct {
	// Side[v] reports which side v is on (false = A, true = B).
	Side []bool
	// SizeA and SizeB are the part sizes.
	SizeA, SizeB int
	// CrossEdges counts undirected edges with endpoints on both sides.
	CrossEdges int
}

// Balanced reports whether the two sides differ in size by at most 1.
func (c Cut) Balanced() bool {
	diff := c.SizeA - c.SizeB
	return diff >= -1 && diff <= 1
}

// Measure fills in the sizes and cross-edge count of side on g.
func Measure(g graph.Graph, side []bool) (Cut, error) {
	n := g.Order()
	if len(side) != n {
		return Cut{}, fmt.Errorf("layout: side mask has %d entries for %d vertices", len(side), n)
	}
	c := Cut{Side: side}
	var buf []int
	for v := 0; v < n; v++ {
		if side[v] {
			c.SizeB++
		} else {
			c.SizeA++
		}
		buf = g.AppendNeighbors(v, buf[:0])
		for _, w := range buf {
			if w > v && side[v] != side[w] {
				c.CrossEdges++
			}
		}
	}
	return c, nil
}

// HypercubeDimCut splits HB(m,n) on bit dim of the hypercube-part
// label. Always perfectly balanced; the cut width is |V|/2.
func HypercubeDimCut(hb *core.HyperButterfly, dim int) (Cut, error) {
	if dim < 0 || dim >= hb.M() {
		return Cut{}, fmt.Errorf("layout: hypercube dimension %d out of range [0,%d)", dim, hb.M())
	}
	side := make([]bool, hb.Order())
	for v := range side {
		h, _ := hb.Decode(v)
		side[v] = h&(1<<uint(dim)) != 0
	}
	return Measure(hb, side)
}

// ButterflyLevelCut splits HB(m,n) on the permutation index of the
// butterfly part: side A holds PI < n/2. Perfectly balanced for even n
// (nearly balanced otherwise); only the two level boundaries carry
// crossing edges.
func ButterflyLevelCut(hb *core.HyperButterfly) (Cut, error) {
	bf := hb.Butterfly()
	half := bf.Dim() / 2
	side := make([]bool, hb.Order())
	for v := range side {
		_, b := hb.Decode(v)
		side[v] = bf.PI(b) >= half
	}
	return Measure(hb, side)
}

// BisectionUpperBound returns the smaller of the two constructive cut
// widths together with the name of the winning cut. For n >= 3 the
// level cut always wins once n·|V| outgrows 2^(m+n+3) — i.e. for every
// instance bigger than toy size.
func BisectionUpperBound(hb *core.HyperButterfly) (int, string, error) {
	level, err := ButterflyLevelCut(hb)
	if err != nil {
		return 0, "", err
	}
	best, name := level.CrossEdges, "butterfly level cut"
	if !level.Balanced() {
		best, name = -1, ""
	}
	if hb.M() > 0 {
		dim, err := HypercubeDimCut(hb, 0)
		if err != nil {
			return 0, "", err
		}
		if best == -1 || dim.CrossEdges < best {
			best, name = dim.CrossEdges, "hypercube dimension cut"
		}
	}
	if best == -1 {
		return 0, "", fmt.Errorf("layout: no balanced constructive cut for HB(%d,%d) (odd n with m=0)", hb.M(), hb.N())
	}
	return best, name, nil
}

// LevelCutWidthFormula returns the closed form 2^(m+n+2) for the level
// cut of HB(m,n) with even n: each of the two level boundaries is
// crossed by the g and f edges of 2^(m+n) boundary nodes.
func LevelCutWidthFormula(m, n int) int { return 1 << uint(m+n+2) }

// DimCutWidthFormula returns the closed form n·2^(m+n-1) = |V|/2 for
// any hypercube dimension cut.
func DimCutWidthFormula(m, n int) int { return n << uint(m+n-1) }
