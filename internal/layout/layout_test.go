package layout

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestHypercubeDimCut(t *testing.T) {
	for _, dims := range [][2]int{{1, 3}, {2, 3}, {3, 4}} {
		hb := core.MustNew(dims[0], dims[1])
		for dim := 0; dim < hb.M(); dim++ {
			cut, err := HypercubeDimCut(hb, dim)
			if err != nil {
				t.Fatalf("HB%v dim %d: %v", dims, dim, err)
			}
			if !cut.Balanced() || cut.SizeA != cut.SizeB {
				t.Fatalf("HB%v dim %d: sizes %d/%d", dims, dim, cut.SizeA, cut.SizeB)
			}
			want := DimCutWidthFormula(dims[0], dims[1])
			if cut.CrossEdges != want {
				t.Fatalf("HB%v dim %d: cross %d, want %d", dims, dim, cut.CrossEdges, want)
			}
		}
	}
	hb := core.MustNew(2, 3)
	if _, err := HypercubeDimCut(hb, 2); err == nil {
		t.Error("accepted out-of-range dimension")
	}
}

func TestButterflyLevelCut(t *testing.T) {
	for _, dims := range [][2]int{{1, 4}, {2, 4}, {3, 6}} {
		hb := core.MustNew(dims[0], dims[1])
		cut, err := ButterflyLevelCut(hb)
		if err != nil {
			t.Fatalf("HB%v: %v", dims, err)
		}
		if cut.SizeA != cut.SizeB {
			t.Fatalf("HB%v: sizes %d/%d", dims, cut.SizeA, cut.SizeB)
		}
		want := LevelCutWidthFormula(dims[0], dims[1])
		if cut.CrossEdges != want {
			t.Fatalf("HB%v: cross %d, want %d", dims, cut.CrossEdges, want)
		}
	}
	// Odd n: nearly balanced but not exactly.
	hb := core.MustNew(1, 3)
	cut, err := ButterflyLevelCut(hb)
	if err != nil {
		t.Fatal(err)
	}
	if cut.SizeA == cut.SizeB {
		t.Fatal("odd n should not split evenly")
	}
}

func TestBisectionUpperBound(t *testing.T) {
	// HB(2,4): level cut 2^8 = 256 beats dimension cut 4·2^5 = 128?
	// No: dim cut = |V|/2 = 128, level cut = 256; dim wins here.
	hb := core.MustNew(2, 4)
	w, name, err := BisectionUpperBound(hb)
	if err != nil {
		t.Fatal(err)
	}
	if w != 128 || name != "hypercube dimension cut" {
		t.Fatalf("HB(2,4): %d via %q", w, name)
	}
	// HB(2,10): |V|/2 = 10·2^11 = 20480; level cut = 2^14 = 16384; the
	// level cut wins once n outgrows 8.
	hb = core.MustNew(2, 10)
	w, name, err = BisectionUpperBound(hb)
	if err != nil {
		t.Fatal(err)
	}
	if w != 16384 || name != "butterfly level cut" {
		t.Fatalf("HB(2,10): %d via %q", w, name)
	}
	// m=0 with odd n has no balanced constructive cut.
	if _, _, err := BisectionUpperBound(core.MustNew(0, 3)); err == nil {
		t.Error("accepted m=0, odd n")
	}
	// m=0 with even n falls back to the level cut.
	w, name, err = BisectionUpperBound(core.MustNew(0, 4))
	if err != nil || name != "butterfly level cut" || w != LevelCutWidthFormula(0, 4) {
		t.Fatalf("HB(0,4): %d via %q err %v", w, name, err)
	}
}

func TestMeasureValidation(t *testing.T) {
	hb := core.MustNew(1, 3)
	if _, err := Measure(hb, make([]bool, 3)); err == nil {
		t.Error("accepted short mask")
	}
	// A trivial all-A cut has zero cross edges.
	cut, err := Measure(hb, make([]bool, hb.Order()))
	if err != nil || cut.CrossEdges != 0 || cut.SizeB != 0 {
		t.Fatalf("all-A cut: %+v err %v", cut, err)
	}
	if cut.Balanced() {
		t.Error("all-A cut reported balanced")
	}
	_ = graph.Graph(hb) // hb feeds Measure through the Graph interface
}
