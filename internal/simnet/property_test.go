package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/butterfly"
	"repro/internal/core"
)

// Property tests for the minimal adaptive router: candidate sets are
// exactly the distance-decreasing neighbors, so ANY per-hop choice
// delivers in exactly the shortest-path distance — and the engine,
// given a finite injection window, delivers every injected packet.

// TestAdaptiveCandidatesStrictlyDecrease: for random (cur, dst) pairs
// on HB(2,3), every MinimalAdaptive candidate is a real neighbor one
// step closer to dst, and the set is non-empty whenever cur != dst.
func TestAdaptiveCandidatesStrictlyDecrease(t *testing.T) {
	hb := core.MustNew(2, 3)
	a := MinimalAdaptive(hb, hb.Distance)
	d := hb.Dense()
	f := func(x, y uint32) bool {
		cur, dst := int(x)%hb.Order(), int(y)%hb.Order()
		cands := a.Candidates(cur, dst)
		if cur == dst {
			return len(cands) == 0
		}
		if len(cands) == 0 {
			return false
		}
		dc := hb.Distance(cur, dst)
		for _, w := range cands {
			if !d.HasEdge(cur, w) || hb.Distance(w, dst) != dc-1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestAdaptiveWalkRealizesDistance: a walk that at every hop picks an
// arbitrary (here: seeded random) candidate reaches the destination in
// exactly Distance hops — the livelock-freedom argument for minimal
// adaptive routing, exercised on both HB and the butterfly factor.
func TestAdaptiveWalkRealizesDistance(t *testing.T) {
	hb := core.MustNew(2, 3)
	bf := butterfly.MustNew(4)
	tops := []struct {
		name string
		a    Adaptive
		dist func(u, v int) int
		n    int
	}{
		{"HB(2,3)", MinimalAdaptive(hb, hb.Distance), hb.Distance, hb.Order()},
		{"B(4)", MinimalAdaptive(bf, bf.Distance), bf.Distance, bf.Order()},
	}
	rng := rand.New(rand.NewSource(42))
	for _, tc := range tops {
		for trial := 0; trial < 500; trial++ {
			u, v := rng.Intn(tc.n), rng.Intn(tc.n)
			want := tc.dist(u, v)
			cur, hops := u, 0
			for cur != v {
				cands := tc.a.Candidates(cur, v)
				if len(cands) == 0 {
					t.Fatalf("%s: no candidate from %d toward %d at hop %d", tc.name, cur, v, hops)
				}
				cur = cands[rng.Intn(len(cands))]
				hops++
				if hops > want {
					t.Fatalf("%s: walk %d->%d exceeded distance %d", tc.name, u, v, want)
				}
			}
			if hops != want {
				t.Fatalf("%s: walk %d->%d took %d hops, distance %d", tc.name, u, v, hops, want)
			}
		}
	}
}

// TestAdaptiveCompleteDelivery: with a finite injection window and a
// drain period, the adaptive engine delivers every injected packet
// (none lost, none stuck), and aggregate hop counts are consistent with
// minimality: total hops of delivered packets can never be below the
// number of packets (every source != destination) nor above
// packets x diameter.
func TestAdaptiveCompleteDelivery(t *testing.T) {
	hb := core.MustNew(1, 3)
	a := MinimalAdaptive(hb, hb.Distance)
	for _, pattern := range []Pattern{Uniform, Permutation, Reversal} {
		res, err := RunAdaptive(a, Config{
			Cycles:       2000,
			InjectCycles: 25,
			Rate:         0.4,
			Pattern:      pattern,
			Seed:         7,
		})
		if err != nil {
			t.Fatalf("%v: %v", pattern, err)
		}
		if res.Injected == 0 {
			t.Fatalf("%v: nothing injected", pattern)
		}
		if res.Delivered != res.Injected || res.InFlight != 0 {
			t.Fatalf("%v: injected %d, delivered %d, in flight %d — want complete delivery",
				pattern, res.Injected, res.Delivered, res.InFlight)
		}
		if res.AvgHops < 1 || res.AvgHops > float64(hb.DiameterFormula()) {
			t.Fatalf("%v: average hops %.2f outside [1, diameter=%d]",
				pattern, res.AvgHops, hb.DiameterFormula())
		}
		if res.MaxLatency < 1 {
			t.Fatalf("%v: max latency %d", pattern, res.MaxLatency)
		}
	}
}

// TestInjectionWindowSourceRouted: the same window semantics hold for
// the source-routed engine, so both simulators can assert loss-free
// operation.
func TestInjectionWindowSourceRouted(t *testing.T) {
	hb := core.MustNew(1, 3)
	top := Routed{Graph: hb, Route: hb.Route}
	res, err := Run(top, Config{Cycles: 2000, InjectCycles: 25, Rate: 0.4, Pattern: Uniform, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 || res.Delivered != res.Injected || res.InFlight != 0 {
		t.Fatalf("injected %d, delivered %d, in flight %d — want complete delivery",
			res.Injected, res.Delivered, res.InFlight)
	}
}

// TestInjectCyclesZeroKeepsLegacyBehavior: InjectCycles=0 must inject
// for the whole run (the pre-existing semantics every other test and
// benchmark relies on).
func TestInjectCyclesZeroKeepsLegacyBehavior(t *testing.T) {
	hb := core.MustNew(1, 3)
	top := Routed{Graph: hb, Route: hb.Route}
	with, err := Run(top, Config{Cycles: 50, Rate: 0.5, Pattern: Uniform, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Run(top, Config{Cycles: 50, InjectCycles: 50, Rate: 0.5, Pattern: Uniform, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if with.Injected != explicit.Injected || with.Delivered != explicit.Delivered {
		t.Fatalf("window == Cycles changed behavior: %+v vs %+v", with, explicit)
	}
	if with.Injected == 0 {
		t.Fatal("nothing injected")
	}
}
