package simnet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faultroute"
	"repro/internal/graph"
	"repro/internal/hypercube"
)

func hbTopology(hb *core.HyperButterfly) Topology {
	return Routed{Graph: hb, Route: hb.Route}
}

func TestConfigValidation(t *testing.T) {
	top := hbTopology(core.MustNew(1, 3))
	if _, err := Run(top, Config{Cycles: 0, Rate: 0.1}); err == nil {
		t.Error("accepted zero cycles")
	}
	if _, err := Run(top, Config{Cycles: 10, Rate: -0.5}); err == nil {
		t.Error("accepted negative rate")
	}
	if _, err := Run(top, Config{Cycles: 10, Rate: 2}); err == nil {
		t.Error("accepted rate > 1")
	}
	if _, err := Run(top, Config{Cycles: 10, Rate: 0.1, Faulty: []bool{true}}); err == nil {
		t.Error("accepted short fault mask")
	}
}

// TestConservation: injected = delivered + in flight, and zero-rate runs
// carry nothing.
func TestConservation(t *testing.T) {
	top := hbTopology(core.MustNew(2, 3))
	res, err := Run(top, Config{Cycles: 300, Rate: 0.05, Pattern: Uniform, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 {
		t.Fatal("nothing injected")
	}
	if res.Delivered+res.InFlight != res.Injected {
		t.Fatalf("conservation violated: %d delivered + %d in flight != %d injected",
			res.Delivered, res.InFlight, res.Injected)
	}
	empty, err := Run(top, Config{Cycles: 50, Rate: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if empty.Injected != 0 || empty.Delivered != 0 {
		t.Fatalf("zero-rate run moved packets: %+v", empty)
	}
}

// TestLatencyAtLeastDistance: with light load, average latency is at
// least the average route length and every delivery takes at least one
// cycle per hop.
func TestLatencyAtLeastDistance(t *testing.T) {
	hb := core.MustNew(2, 3)
	res, err := Run(hbTopology(hb), Config{Cycles: 500, Rate: 0.02, Pattern: Uniform, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if res.AvgLatency < res.AvgHops {
		t.Fatalf("avg latency %.2f below avg hops %.2f", res.AvgLatency, res.AvgHops)
	}
	if res.MaxLatency < 1 {
		t.Fatalf("max latency %d", res.MaxLatency)
	}
}

// TestDeterminism: equal seeds give identical results; different seeds
// almost surely differ.
func TestDeterminism(t *testing.T) {
	top := hbTopology(core.MustNew(1, 3))
	cfg := Config{Cycles: 200, Rate: 0.1, Pattern: Uniform, Seed: 42}
	a, err := Run(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 43
	c, err := Run(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical results")
	}
}

func TestPatterns(t *testing.T) {
	top := hbTopology(core.MustNew(1, 3))
	for _, p := range []Pattern{Uniform, Permutation, Reversal, HotSpot} {
		res, err := Run(top, Config{Cycles: 300, Rate: 0.05, Pattern: p, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Delivered == 0 {
			t.Fatalf("%v: nothing delivered", p)
		}
	}
	if Uniform.String() != "uniform" || Pattern(9).String() == "" {
		t.Error("Pattern.String broken")
	}
}

// TestHotSpotCongestion: a hotspot pattern must exhibit strictly worse
// queueing than uniform traffic at the same rate.
func TestHotSpotCongestion(t *testing.T) {
	top := hbTopology(core.MustNew(2, 3))
	uni, err := Run(top, Config{Cycles: 400, Rate: 0.05, Pattern: Uniform, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Run(top, Config{Cycles: 400, Rate: 0.05, Pattern: HotSpot, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if hot.AvgLatency <= uni.AvgLatency {
		t.Fatalf("hotspot latency %.2f not worse than uniform %.2f", hot.AvgLatency, uni.AvgLatency)
	}
}

// TestFaultyRun wires the fault-tolerant router into the simulator: all
// traffic must avoid the faulty nodes and still be delivered.
func TestFaultyRun(t *testing.T) {
	hb := core.MustNew(2, 3)
	faults := []int{3, 17, 40, 77, 91}
	r, err := faultroute.New(hb, faults)
	if err != nil {
		t.Fatal(err)
	}
	mask := make([]bool, hb.Order())
	for _, f := range faults {
		mask[f] = true
	}
	top := Routed{Graph: hb, Route: func(u, v int) []int {
		p, err := r.Route(u, v)
		if err != nil {
			t.Fatalf("fault route %d->%d: %v", u, v, err)
		}
		return p
	}}
	res, err := Run(top, Config{Cycles: 300, Rate: 0.05, Pattern: Uniform, Seed: 9, Faulty: mask})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered under faults")
	}
	if res.Delivered+res.InFlight != res.Injected {
		t.Fatal("conservation violated under faults")
	}
}

// TestOtherTopologies smoke-tests the adapters for the comparison
// networks used by E-S1.
func TestOtherTopologies(t *testing.T) {
	cube := hypercube.MustNew(5)
	res, err := Run(Routed{Graph: cube, Route: cube.Route},
		Config{Cycles: 200, Rate: 0.1, Pattern: Uniform, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("hypercube: nothing delivered")
	}
	if res.AvgHops > float64(cube.DiameterFormula()) {
		t.Fatalf("hypercube avg hops %.2f exceeds diameter", res.AvgHops)
	}
}

// TestRouteValidationCatchesBadRouter ensures the simulator rejects
// routes that do not use graph edges.
func TestRouteValidationCatchesBadRouter(t *testing.T) {
	cube := hypercube.MustNew(3)
	bad := Routed{Graph: cube, Route: func(u, v int) []int { return []int{u, v} }}
	defer func() {
		if recover() == nil {
			t.Fatal("non-edge route not rejected")
		}
	}()
	// Reversal guarantees a distance >= 2 pair eventually (0 -> 7 is
	// distance 3 in H_3), so the bad route panics in outIndex.
	if _, err := Run(bad, Config{Cycles: 50, Rate: 0.5, Pattern: Reversal, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

var _ graph.Graph = Routed{} // Routed must remain a graph.Graph

// TestAdaptiveBasics: the adaptive engine delivers, conserves packets,
// and its hop counts equal exact distances under minimal candidates.
func TestAdaptiveBasics(t *testing.T) {
	hb := core.MustNew(2, 3)
	a := MinimalAdaptive(hb, hb.Distance)
	res, err := RunAdaptive(a, Config{Cycles: 400, Rate: 0.05, Pattern: Uniform, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if res.Delivered+res.InFlight != res.Injected {
		t.Fatalf("conservation violated: %+v", res)
	}
	if res.AvgLatency < res.AvgHops {
		t.Fatalf("latency %.2f below hops %.2f", res.AvgLatency, res.AvgHops)
	}
	// Minimal adaptive routing takes exactly shortest paths, so average
	// hops must not exceed the diameter.
	if res.AvgHops > float64(hb.DiameterFormula()) {
		t.Fatalf("avg hops %.2f exceeds diameter", res.AvgHops)
	}
}

// TestAdaptiveValidation mirrors the config checks of Run.
func TestAdaptiveValidation(t *testing.T) {
	hb := core.MustNew(1, 3)
	a := MinimalAdaptive(hb, hb.Distance)
	if _, err := RunAdaptive(a, Config{Cycles: 0, Rate: 0.1}); err == nil {
		t.Error("accepted zero cycles")
	}
	if _, err := RunAdaptive(a, Config{Cycles: 10, Rate: 1.5}); err == nil {
		t.Error("accepted rate > 1")
	}
	if _, err := RunAdaptive(a, Config{Cycles: 10, Rate: 0.1, Faulty: []bool{true}}); err == nil {
		t.Error("accepted short fault mask")
	}
	// A candidate function with no progress must be rejected at run time.
	stuck := Adaptive{Graph: hb, Candidates: func(cur, dst int) []int { return nil }}
	if _, err := RunAdaptive(stuck, Config{Cycles: 50, Rate: 0.5, Pattern: Uniform, Seed: 1}); err == nil {
		t.Error("accepted empty candidate sets")
	}
}

// TestAdaptiveBeatsDeterministicUnderHotspot: the E-S2 claim — minimal
// adaptive routing spreads hotspot congestion across the m+4 disjoint
// directions and must not lose to deterministic source routing.
func TestAdaptiveBeatsDeterministicUnderHotspot(t *testing.T) {
	hb := core.MustNew(2, 4)
	cfg := Config{Cycles: 600, Rate: 0.03, Pattern: HotSpot, Seed: 21}
	det, err := Run(Routed{Graph: hb, Route: hb.Route}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ada, err := RunAdaptive(MinimalAdaptive(hb, hb.Distance), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ada.AvgLatency > det.AvgLatency {
		t.Fatalf("adaptive latency %.2f worse than deterministic %.2f", ada.AvgLatency, det.AvgLatency)
	}
}
