// Package simnet is a synchronous store-and-forward message-passing
// simulator used as the dynamic-evaluation substrate (the paper's own
// evaluation is purely analytical; see DESIGN.md §4 for the
// substitution rationale). Topologies plug in through the Topology
// interface; packets are source-routed along the topology's own routing
// algorithm, each directed link transmits one packet per cycle, and
// per-link FIFO queues model contention. The resulting latency and
// throughput numbers make the static metrics of Figures 1-2 (degree,
// diameter, fault tolerance) observable as dynamic behaviour.
package simnet

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/faults"
	"repro/internal/graph"
)

// Topology is a network a simulation can run on: a graph plus its
// routing algorithm. RoutePath must return a walk from u to v including
// both endpoints, using only edges of the graph and avoiding any nodes
// the topology itself considers unusable.
type Topology interface {
	graph.Graph
	RoutePath(u, v int) []int
}

// Routed adapts a graph and a routing function to the Topology
// interface; all topology packages in this repository expose a
// compatible Route method.
type Routed struct {
	graph.Graph
	Route func(u, v int) []int
}

// RoutePath implements Topology.
func (r Routed) RoutePath(u, v int) []int { return r.Route(u, v) }

// Pattern selects packet destinations.
type Pattern int

const (
	// Uniform picks destinations uniformly at random.
	Uniform Pattern = iota
	// Permutation fixes one random destination per source.
	Permutation
	// Reversal sends node i to node order-1-i, a deterministic
	// adversarial pattern that stresses long paths.
	Reversal
	// HotSpot sends every packet to node 0.
	HotSpot
)

// String names the pattern for reports.
func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Permutation:
		return "permutation"
	case Reversal:
		return "reversal"
	case HotSpot:
		return "hotspot"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// Rerouter supplies fault-avoiding routes while a Schedule mutates the
// fault set mid-run. The engine mirrors every effective fail/recover
// into it, so implementations (an incremental faultroute.Router behind
// an adapter) always see the live fault picture. Reroute must return a
// cur..dst walk over real edges avoiding every currently-faulty node,
// or an error when no such walk exists.
type Rerouter interface {
	Fail(v int)
	Recover(v int)
	Reroute(cur, dst int) ([]int, error)
}

// Config parameterises a run.
type Config struct {
	Cycles int     // simulated cycles
	Rate   float64 // injection probability per node per cycle
	// InjectCycles stops injection after this many cycles while the
	// simulation keeps draining; 0 (or >= Cycles) injects throughout.
	// A run with InjectCycles well below Cycles can assert complete
	// delivery: Delivered == Injected and InFlight == 0.
	InjectCycles int
	Pattern
	Seed   int64
	Faulty []bool // nodes faulty from cycle 0 (optional)

	// Schedule fails and recovers nodes mid-run (events apply at the
	// start of their cycle, before injection). Packets queued at a node
	// when it fails are lost and counted in Result.Dropped; packets
	// elsewhere whose remaining path crosses a newly-faulty node are
	// re-routed from their current position via Rerouter and counted in
	// Result.Reroutes — or dropped if their destination failed, no
	// Rerouter is set, or the Rerouter finds no path.
	Schedule faults.Schedule
	// Rerouter, when non-nil, repairs in-flight packets after a failure
	// and routes injections whose static route crosses a live fault.
	Rerouter Rerouter
}

// injecting reports whether cycle is within the injection window.
func (c Config) injecting(cycle int) bool {
	return c.InjectCycles <= 0 || cycle < c.InjectCycles
}

// Result aggregates the run's metrics. The JSON field names are a
// stable contract (testdata/result_golden.json guards them): hbsim's
// reports and hbd-adjacent tooling share this one stats encoding, so
// renaming a field is a breaking change to anything parsing either.
type Result struct {
	Injected   int     `json:"injected"`
	Delivered  int     `json:"delivered"`
	InFlight   int     `json:"in_flight"`
	TotalHops  int     `json:"total_hops"`
	AvgLatency float64 `json:"avg_latency"` // cycles from injection to delivery
	MaxLatency int     `json:"max_latency"`
	AvgHops    float64 `json:"avg_hops"`
	Throughput float64 `json:"throughput"` // delivered packets per cycle
	MaxQueue   int     `json:"max_queue"`  // peak per-link queue occupancy

	// Dynamic-fault and injection accounting (additive: zero on runs
	// without a Schedule and with no suppressed injections).
	Reroutes int `json:"reroutes"` // in-flight packets re-pathed around new faults
	Dropped  int `json:"dropped"`  // packets lost to fault dynamics
	Skipped  int `json:"skipped"`  // injection slots suppressed (self/faulty destination)
}

type packet struct {
	path     []int32
	idx      int32 // current position within path
	injected int32 // injection cycle
	moved    int32 // last cycle this packet hopped (guards double moves)
}

// Run simulates cfg on t and returns aggregate metrics.
func Run(t Topology, cfg Config) (Result, error) {
	if cfg.Cycles <= 0 {
		return Result{}, fmt.Errorf("simnet: non-positive cycle count %d", cfg.Cycles)
	}
	if cfg.Rate < 0 || cfg.Rate > 1 {
		return Result{}, fmt.Errorf("simnet: injection rate %v outside [0,1]", cfg.Rate)
	}
	n := t.Order()
	if cfg.Faulty != nil && len(cfg.Faulty) != n {
		return Result{}, fmt.Errorf("simnet: fault mask has %d entries for %d nodes", len(cfg.Faulty), n)
	}
	events := append(faults.Schedule(nil), cfg.Schedule...)
	events.Sort()
	if err := events.Validate(n); err != nil {
		return Result{}, err
	}
	dynamic := len(events) > 0

	d := graph.Build(t)
	rng := rand.New(rand.NewSource(cfg.Seed))

	perm := rng.Perm(n) // used by Permutation
	faulty := make([]bool, n)
	if cfg.Faulty != nil {
		copy(faulty, cfg.Faulty)
	}
	usable := func(v int) bool { return !faulty[v] }

	// queues[v][k] is the FIFO for the k-th out-edge of v.
	queues := make([][][]*packet, n)
	for v := 0; v < n; v++ {
		queues[v] = make([][]*packet, d.Degree(v))
	}
	outIndex := func(v, w int) int {
		row := d.Neighbors(v)
		k := sort.Search(len(row), func(i int) bool { return row[i] >= int32(w) })
		if k == len(row) || row[k] != int32(w) {
			panic(fmt.Sprintf("simnet: route uses non-edge %d-%d", v, w))
		}
		return k
	}

	var res Result
	enqueue := func(p *packet) {
		v := int(p.path[p.idx])
		w := int(p.path[p.idx+1])
		k := outIndex(v, w)
		queues[v][k] = append(queues[v][k], p)
		if len(queues[v][k]) > res.MaxQueue {
			res.MaxQueue = len(queues[v][k])
		}
	}

	// rerouteInFlight repairs every queued packet whose remaining path
	// crosses a (newly) faulty node: re-path from its current position
	// via the Rerouter, or drop it when its destination failed, no
	// Rerouter is configured, or no fault-free path exists.
	rerouteInFlight := func() error {
		var pending []*packet
		for v := 0; v < n; v++ {
			if faulty[v] {
				continue
			}
			for k := range queues[v] {
				q := queues[v][k]
				keep := q[:0]
				for _, p := range q {
					crossesFault := false
					for _, x := range p.path[p.idx+1:] {
						if faulty[x] {
							crossesFault = true
							break
						}
					}
					if !crossesFault {
						keep = append(keep, p)
						continue
					}
					dst := int(p.path[len(p.path)-1])
					if faulty[dst] || cfg.Rerouter == nil {
						res.Dropped++
						continue
					}
					walk, err := cfg.Rerouter.Reroute(v, dst)
					if err != nil {
						res.Dropped++
						continue
					}
					if len(walk) < 2 || walk[0] != v || walk[len(walk)-1] != dst {
						return fmt.Errorf("simnet: bad reroute %v for %d->%d", walk, v, dst)
					}
					np := make([]int32, len(walk))
					for i, x := range walk {
						if faulty[x] {
							return fmt.Errorf("simnet: reroute for %d->%d crosses faulty node %d", v, dst, x)
						}
						np[i] = int32(x)
					}
					p.path, p.idx = np, 0
					res.Reroutes++
					pending = append(pending, p)
				}
				for i := len(keep); i < len(q); i++ {
					q[i] = nil // drop references so lost packets are collectable
				}
				queues[v][k] = keep
			}
		}
		for _, p := range pending {
			enqueue(p)
		}
		return nil
	}

	totalLatency := 0
	deliveredHops := 0
	nextEvent := 0
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		// Fault dynamics: apply this cycle's fail/recover events before
		// injection, mirror them into the Rerouter, lose whatever was
		// queued at a failing node, and repair the rest of the fleet.
		if nextEvent < len(events) && events[nextEvent].Cycle <= cycle {
			failedAny := false
			for nextEvent < len(events) && events[nextEvent].Cycle <= cycle {
				e := events[nextEvent]
				nextEvent++
				switch {
				case e.Fail && !faulty[e.Node]:
					faulty[e.Node] = true
					if cfg.Rerouter != nil {
						cfg.Rerouter.Fail(e.Node)
					}
					for k := range queues[e.Node] {
						res.Dropped += len(queues[e.Node][k])
						queues[e.Node][k] = nil
					}
					failedAny = true
				case !e.Fail && faulty[e.Node]:
					faulty[e.Node] = false
					if cfg.Rerouter != nil {
						cfg.Rerouter.Recover(e.Node)
					}
				}
			}
			if failedAny {
				if err := rerouteInFlight(); err != nil {
					return res, err
				}
			}
		}

		// Injection.
		for v := 0; v < n; v++ {
			if !cfg.injecting(cycle) || !usable(v) || rng.Float64() >= cfg.Rate {
				continue
			}
			dst, ok := DrawDest(cfg.Pattern, rng, perm, n, v, usable)
			if !ok {
				res.Skipped++
				continue
			}
			walk := t.RoutePath(v, dst)
			if len(walk) < 2 || walk[0] != v || walk[len(walk)-1] != dst {
				return res, fmt.Errorf("simnet: bad route %v for %d->%d", walk, v, dst)
			}
			for _, x := range walk {
				if !usable(x) {
					// The topology's static route crosses a live fault.
					// Without dynamics that is a misconfigured topology
					// (it promised to avoid its own unusable nodes); with
					// a Schedule it is expected, and the Rerouter — or,
					// failing that, a skip — handles it.
					if !dynamic {
						return res, fmt.Errorf("simnet: route for %d->%d crosses faulty node %d", v, dst, x)
					}
					walk = nil
					if cfg.Rerouter != nil {
						if w, err := cfg.Rerouter.Reroute(v, dst); err == nil {
							walk = w
						}
					}
					break
				}
			}
			if walk == nil {
				res.Skipped++
				continue
			}
			if len(walk) < 2 || walk[0] != v || walk[len(walk)-1] != dst {
				return res, fmt.Errorf("simnet: bad reroute %v for %d->%d", walk, v, dst)
			}
			p := &packet{path: make([]int32, len(walk)), injected: int32(cycle), moved: -1}
			for i, x := range walk {
				if !usable(x) {
					return res, fmt.Errorf("simnet: route for %d->%d crosses faulty node %d", v, dst, x)
				}
				p.path[i] = int32(x)
			}
			res.Injected++
			enqueue(p)
		}

		// Transmission: one packet per directed link per cycle.
		for v := 0; v < n; v++ {
			for k := range queues[v] {
				q := queues[v][k]
				if len(q) == 0 {
					continue
				}
				p := q[0]
				if p.moved == int32(cycle) {
					continue // enqueued here earlier this same cycle
				}
				queues[v][k] = q[1:]
				p.idx++
				p.moved = int32(cycle)
				res.TotalHops++
				if int(p.idx) == len(p.path)-1 {
					res.Delivered++
					deliveredHops += int(p.idx)
					lat := cycle + 1 - int(p.injected)
					totalLatency += lat
					if lat > res.MaxLatency {
						res.MaxLatency = lat
					}
					continue
				}
				enqueue(p)
			}
		}
	}

	for v := range queues {
		for k := range queues[v] {
			res.InFlight += len(queues[v][k])
		}
	}
	if res.Delivered > 0 {
		res.AvgLatency = float64(totalLatency) / float64(res.Delivered)
		res.AvgHops = float64(deliveredHops) / float64(res.Delivered)
	}
	res.Throughput = float64(res.Delivered) / float64(cfg.Cycles)
	return res, nil
}
