// Package simnet is a synchronous store-and-forward message-passing
// simulator used as the dynamic-evaluation substrate (the paper's own
// evaluation is purely analytical; see DESIGN.md §4 for the
// substitution rationale). Topologies plug in through the Topology
// interface; packets are source-routed along the topology's own routing
// algorithm, each directed link transmits one packet per cycle, and
// per-link FIFO queues model contention. The resulting latency and
// throughput numbers make the static metrics of Figures 1-2 (degree,
// diameter, fault tolerance) observable as dynamic behaviour.
package simnet

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Topology is a network a simulation can run on: a graph plus its
// routing algorithm. RoutePath must return a walk from u to v including
// both endpoints, using only edges of the graph and avoiding any nodes
// the topology itself considers unusable.
type Topology interface {
	graph.Graph
	RoutePath(u, v int) []int
}

// Routed adapts a graph and a routing function to the Topology
// interface; all topology packages in this repository expose a
// compatible Route method.
type Routed struct {
	graph.Graph
	Route func(u, v int) []int
}

// RoutePath implements Topology.
func (r Routed) RoutePath(u, v int) []int { return r.Route(u, v) }

// Pattern selects packet destinations.
type Pattern int

const (
	// Uniform picks destinations uniformly at random.
	Uniform Pattern = iota
	// Permutation fixes one random destination per source.
	Permutation
	// Reversal sends node i to node order-1-i, a deterministic
	// adversarial pattern that stresses long paths.
	Reversal
	// HotSpot sends every packet to node 0.
	HotSpot
)

// String names the pattern for reports.
func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Permutation:
		return "permutation"
	case Reversal:
		return "reversal"
	case HotSpot:
		return "hotspot"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// Config parameterises a run.
type Config struct {
	Cycles int     // simulated cycles
	Rate   float64 // injection probability per node per cycle
	// InjectCycles stops injection after this many cycles while the
	// simulation keeps draining; 0 (or >= Cycles) injects throughout.
	// A run with InjectCycles well below Cycles can assert complete
	// delivery: Delivered == Injected and InFlight == 0.
	InjectCycles int
	Pattern
	Seed   int64
	Faulty []bool // nodes that neither inject nor relay (optional)
}

// injecting reports whether cycle is within the injection window.
func (c Config) injecting(cycle int) bool {
	return c.InjectCycles <= 0 || cycle < c.InjectCycles
}

// Result aggregates the run's metrics. The JSON field names are a
// stable contract (testdata/result_golden.json guards them): hbsim's
// reports and hbd-adjacent tooling share this one stats encoding, so
// renaming a field is a breaking change to anything parsing either.
type Result struct {
	Injected   int     `json:"injected"`
	Delivered  int     `json:"delivered"`
	InFlight   int     `json:"in_flight"`
	TotalHops  int     `json:"total_hops"`
	AvgLatency float64 `json:"avg_latency"` // cycles from injection to delivery
	MaxLatency int     `json:"max_latency"`
	AvgHops    float64 `json:"avg_hops"`
	Throughput float64 `json:"throughput"` // delivered packets per cycle
	MaxQueue   int     `json:"max_queue"`  // peak per-link queue occupancy
}

type packet struct {
	path     []int32
	idx      int32 // current position within path
	injected int32 // injection cycle
	moved    int32 // last cycle this packet hopped (guards double moves)
}

// Run simulates cfg on t and returns aggregate metrics.
func Run(t Topology, cfg Config) (Result, error) {
	if cfg.Cycles <= 0 {
		return Result{}, fmt.Errorf("simnet: non-positive cycle count %d", cfg.Cycles)
	}
	if cfg.Rate < 0 || cfg.Rate > 1 {
		return Result{}, fmt.Errorf("simnet: injection rate %v outside [0,1]", cfg.Rate)
	}
	n := t.Order()
	if cfg.Faulty != nil && len(cfg.Faulty) != n {
		return Result{}, fmt.Errorf("simnet: fault mask has %d entries for %d nodes", len(cfg.Faulty), n)
	}
	d := graph.Build(t)
	rng := rand.New(rand.NewSource(cfg.Seed))

	perm := rng.Perm(n) // used by Permutation
	dest := func(src int) int { return destFor(cfg.Pattern, rng, perm, n, src) }
	usable := func(v int) bool { return cfg.Faulty == nil || !cfg.Faulty[v] }

	// queues[v][k] is the FIFO for the k-th out-edge of v.
	queues := make([][][]*packet, n)
	for v := 0; v < n; v++ {
		queues[v] = make([][]*packet, d.Degree(v))
	}
	outIndex := func(v, w int) int {
		row := d.Neighbors(v)
		k := sort.Search(len(row), func(i int) bool { return row[i] >= int32(w) })
		if k == len(row) || row[k] != int32(w) {
			panic(fmt.Sprintf("simnet: route uses non-edge %d-%d", v, w))
		}
		return k
	}

	var res Result
	enqueue := func(p *packet) {
		v := int(p.path[p.idx])
		w := int(p.path[p.idx+1])
		k := outIndex(v, w)
		queues[v][k] = append(queues[v][k], p)
		if len(queues[v][k]) > res.MaxQueue {
			res.MaxQueue = len(queues[v][k])
		}
	}

	totalLatency := 0
	deliveredHops := 0
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		// Injection.
		for v := 0; v < n; v++ {
			if !cfg.injecting(cycle) || !usable(v) || rng.Float64() >= cfg.Rate {
				continue
			}
			dst := dest(v)
			if dst == v || !usable(dst) {
				continue
			}
			walk := t.RoutePath(v, dst)
			if len(walk) < 2 || walk[0] != v || walk[len(walk)-1] != dst {
				return res, fmt.Errorf("simnet: bad route %v for %d->%d", walk, v, dst)
			}
			p := &packet{path: make([]int32, len(walk)), injected: int32(cycle), moved: -1}
			for i, x := range walk {
				if !usable(x) {
					return res, fmt.Errorf("simnet: route for %d->%d crosses faulty node %d", v, dst, x)
				}
				p.path[i] = int32(x)
			}
			res.Injected++
			enqueue(p)
		}

		// Transmission: one packet per directed link per cycle.
		for v := 0; v < n; v++ {
			for k := range queues[v] {
				q := queues[v][k]
				if len(q) == 0 {
					continue
				}
				p := q[0]
				if p.moved == int32(cycle) {
					continue // enqueued here earlier this same cycle
				}
				queues[v][k] = q[1:]
				p.idx++
				p.moved = int32(cycle)
				res.TotalHops++
				if int(p.idx) == len(p.path)-1 {
					res.Delivered++
					deliveredHops += int(p.idx)
					lat := cycle + 1 - int(p.injected)
					totalLatency += lat
					if lat > res.MaxLatency {
						res.MaxLatency = lat
					}
					continue
				}
				enqueue(p)
			}
		}
	}

	for v := range queues {
		for k := range queues[v] {
			res.InFlight += len(queues[v][k])
		}
	}
	if res.Delivered > 0 {
		res.AvgLatency = float64(totalLatency) / float64(res.Delivered)
		res.AvgHops = float64(deliveredHops) / float64(res.Delivered)
	}
	res.Throughput = float64(res.Delivered) / float64(cfg.Cycles)
	return res, nil
}
