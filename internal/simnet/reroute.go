package simnet

import (
	"repro/internal/faultroute"
)

// FaultRerouter adapts an incremental faultroute.Router to the engine's
// Rerouter interface. It additionally keeps score against the paper's
// guarantee: every reroute failure that happens while the live fault
// count is within the m+3 bound is a Remark 10 counterexample, so chaos
// harnesses gate on Violations == 0.
type FaultRerouter struct {
	R *faultroute.Router
	// Violations counts reroute failures observed while the router's
	// fault count was within the m+3 guarantee.
	Violations int
}

// Fail marks v faulty in the underlying router.
func (f *FaultRerouter) Fail(v int) { f.R.Fail(v) }

// Recover clears v in the underlying router.
func (f *FaultRerouter) Recover(v int) { f.R.Recover(v) }

// Reroute returns a fault-avoiding cur..dst path.
func (f *FaultRerouter) Reroute(cur, dst int) ([]int, error) {
	p, err := f.R.Route(cur, dst)
	if err != nil && f.R.WithinGuarantee() {
		f.Violations++
	}
	return p, err
}
