package simnet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faultroute"
	"repro/internal/faults"
)

// pathGraph is the line 0-1-...-n-1 with shortest-path source routing —
// small enough to hand-verify fault dynamics.
type pathGraph struct{ n int }

func (g pathGraph) Order() int { return g.n }

func (g pathGraph) AppendNeighbors(v int, buf []int) []int {
	if v > 0 {
		buf = append(buf, v-1)
	}
	if v < g.n-1 {
		buf = append(buf, v+1)
	}
	return buf
}

func (g pathGraph) route(u, v int) []int {
	step := 1
	if v < u {
		step = -1
	}
	out := []int{u}
	for x := u; x != v; {
		x += step
		out = append(out, x)
	}
	return out
}

func pathTopology(n int) Routed {
	g := pathGraph{n: n}
	return Routed{Graph: g, Route: g.route}
}

// newChaosRerouter builds the faultroute-backed rerouter for hb.
func newChaosRerouter(t *testing.T, hb *core.HyperButterfly) *FaultRerouter {
	t.Helper()
	r, err := faultroute.New(hb, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &FaultRerouter{R: r}
}

// TestChaosRerouteAndConservation is the headline dynamic-fault test:
// random churn within the m+3 bound on HB(2,3), with in-flight
// rerouting backed by the incremental fault router. Every injected
// packet must be accounted for (delivered, in flight, or dropped by an
// unavoidable endpoint/position loss), reroutes must actually happen,
// and no reroute may fail while the fault count is within the
// guarantee.
func TestChaosRerouteAndConservation(t *testing.T) {
	hb := core.MustNew(2, 3)
	sch, err := faults.RandomChurn(faults.ChurnConfig{
		Order:    hb.Order(),
		Cycles:   400,
		MaxLive:  hb.M() + 3,
		Rate:     0.15,
		MinDwell: 20,
		MaxDwell: 60,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sch.MaxLive(hb.Order()) > hb.M()+3 {
		t.Fatalf("schedule exceeds the m+3 bound")
	}
	rr := newChaosRerouter(t, hb)
	res, err := Run(Routed{Graph: hb, Route: hb.Route}, Config{
		Cycles:       800,
		InjectCycles: 400,
		Rate:         0.05,
		Pattern:      Uniform,
		Seed:         9,
		Schedule:     sch,
		Rerouter:     rr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != res.Delivered+res.InFlight+res.Dropped {
		t.Errorf("conservation broken: injected %d != delivered %d + in-flight %d + dropped %d",
			res.Injected, res.Delivered, res.InFlight, res.Dropped)
	}
	if res.Reroutes == 0 {
		t.Error("no in-flight reroutes happened; the schedule never hit a live path")
	}
	if rr.Violations != 0 {
		t.Errorf("%d reroute failures within the m+3 guarantee", rr.Violations)
	}
	if res.InFlight != 0 {
		t.Errorf("%d packets still in flight after a %d-cycle drain window", res.InFlight, 400)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestChaosDeterminism locks reproducibility: identical config and
// seeds must give identical results, including the fault-dynamics
// counters.
func TestChaosDeterminism(t *testing.T) {
	hb := core.MustNew(2, 3)
	run := func() Result {
		sch, err := faults.RandomChurn(faults.ChurnConfig{
			Order: hb.Order(), Cycles: 200, MaxLive: hb.M() + 3, Rate: 0.2, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Routed{Graph: hb, Route: hb.Route}, Config{
			Cycles: 400, InjectCycles: 200, Rate: 0.05, Pattern: Uniform, Seed: 4,
			Schedule: sch, Rerouter: newChaosRerouter(t, hb),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seeds, different results:\n%+v\n%+v", a, b)
	}
}

// TestQueuedPacketsLostAtFailedNode pins the loss semantics on a line
// graph where every reroute is impossible: failing an interior node
// must drop (not leak) the packets queued there and the packets whose
// remaining path crosses it, and recovery must let later injections
// through again.
func TestQueuedPacketsLostAtFailedNode(t *testing.T) {
	top := pathTopology(6)
	res, err := Run(top, Config{
		Cycles:       120, // rate-1 reversal oversubscribes the middle links; leave room to drain
		InjectCycles: 10,
		Rate:         1,
		Pattern:      Reversal, // 0<->5, 1<->4, 2<->3: everything crosses the middle
		Seed:         1,
		Schedule: faults.Schedule{
			{Cycle: 3, Node: 2, Fail: true},
			{Cycle: 10, Node: 2, Fail: false},
		},
		// No Rerouter: on a line there is no detour anyway.
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("failing the middle of a line dropped nothing")
	}
	if res.Reroutes != 0 {
		t.Errorf("%d reroutes without a Rerouter", res.Reroutes)
	}
	if res.Injected != res.Delivered+res.InFlight+res.Dropped {
		t.Errorf("conservation broken: %+v", res)
	}
	if res.InFlight != 0 {
		t.Errorf("%d packets leaked in queues", res.InFlight)
	}
	if res.Delivered == 0 {
		t.Error("nothing delivered after recovery")
	}
	// While node 2 is down it neither injects nor receives: its own
	// injection slots and any slot whose destination is down are skipped.
	if res.Skipped == 0 {
		t.Error("no skips recorded while the middle node was down")
	}
}

// TestSkippedCountsSuppressedInjections locks the satellite bugfix:
// deterministic patterns whose only destination is the source must
// count the suppressed slot instead of silently undershooting Rate.
func TestSkippedCountsSuppressedInjections(t *testing.T) {
	// Reversal on odd order: the midpoint (node 2 of 5) maps to itself.
	res, err := Run(pathTopology(5), Config{
		Cycles: 10, Rate: 1, Pattern: Reversal, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 10 {
		t.Errorf("Reversal midpoint: skipped %d, want 10 (one per cycle)", res.Skipped)
	}

	// HotSpot: the hotspot itself has no valid destination.
	res, err = Run(pathTopology(4), Config{
		Cycles: 8, Rate: 1, Pattern: HotSpot, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 8 {
		t.Errorf("HotSpot source: skipped %d, want 8", res.Skipped)
	}

	// Uniform resamples instead of skipping: on order 2 every draw that
	// lands on the source redraws to the other node, so the effective
	// injection rate is exactly Rate.
	res, err = Run(pathTopology(2), Config{
		Cycles: 50, Rate: 1, Pattern: Uniform, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 0 {
		t.Errorf("Uniform skipped %d, want 0 (resampling)", res.Skipped)
	}
	if res.Injected != 2*50 {
		t.Errorf("Uniform injected %d, want every slot (100)", res.Injected)
	}

	// The adaptive engine shares the accounting.
	ares, err := RunAdaptive(MinimalAdaptive(pathGraph{n: 5}, func(u, v int) int {
		if u > v {
			return u - v
		}
		return v - u
	}), Config{Cycles: 10, Rate: 1, Pattern: Reversal, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ares.Skipped != 10 {
		t.Errorf("adaptive Reversal midpoint: skipped %d, want 10", ares.Skipped)
	}
}

// TestAdaptiveRejectsSchedule: dynamic faults are a source-routed
// engine feature; the adaptive engine must say so rather than silently
// ignore the schedule.
func TestAdaptiveRejectsSchedule(t *testing.T) {
	a := MinimalAdaptive(pathGraph{n: 4}, func(u, v int) int {
		if u > v {
			return u - v
		}
		return v - u
	})
	_, err := RunAdaptive(a, Config{
		Cycles: 10, Rate: 0.1, Pattern: Uniform, Seed: 1,
		Schedule: faults.Schedule{{Cycle: 1, Node: 1, Fail: true}},
	})
	if err == nil {
		t.Error("RunAdaptive accepted a fault schedule")
	}
}

// TestScheduleValidation: events naming nonexistent nodes are rejected
// up front.
func TestScheduleValidation(t *testing.T) {
	_, err := Run(pathTopology(4), Config{
		Cycles: 10, Rate: 0.1, Pattern: Uniform, Seed: 1,
		Schedule: faults.Schedule{{Cycle: 0, Node: 4, Fail: true}},
	})
	if err == nil {
		t.Error("out-of-range schedule event accepted")
	}
}
