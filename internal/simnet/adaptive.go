package simnet

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Adaptive is a topology routed hop by hop: at every node the engine
// asks Candidates for the set of useful next hops and picks the one
// with the shortest output queue. This models minimal adaptive routing,
// the classical congestion-avoidance upgrade over deterministic source
// routing; the E-S2 experiment quantifies the difference under hotspot
// load.
type Adaptive struct {
	graph.Graph
	// Candidates returns the neighbors of cur worth taking toward dst.
	// Every returned vertex must be a neighbor of cur; for livelock
	// freedom they should all strictly decrease the distance to dst
	// (MinimalAdaptive guarantees this).
	Candidates func(cur, dst int) []int
}

// MinimalAdaptive builds an Adaptive topology whose candidate set is
// every neighbor strictly closer to the destination under dist — the
// minimal (shortest-path-preserving) adaptive router. dist must be the
// exact graph distance; all topologies in this repository provide one.
func MinimalAdaptive(g graph.Graph, dist func(u, v int) int) Adaptive {
	return Adaptive{
		Graph: g,
		Candidates: func(cur, dst int) []int {
			var out []int
			var buf []int
			buf = g.AppendNeighbors(cur, buf)
			d := dist(cur, dst)
			for _, w := range buf {
				if dist(w, dst) < d {
					out = append(out, w)
				}
			}
			return out
		},
	}
}

// RunAdaptive simulates cfg on a with per-hop adaptive output
// selection. Semantics match Run (synchronous cycles, one packet per
// directed link per cycle, per-link FIFO queues); only the routing
// decision differs.
func RunAdaptive(a Adaptive, cfg Config) (Result, error) {
	if cfg.Cycles <= 0 {
		return Result{}, fmt.Errorf("simnet: non-positive cycle count %d", cfg.Cycles)
	}
	if cfg.Rate < 0 || cfg.Rate > 1 {
		return Result{}, fmt.Errorf("simnet: injection rate %v outside [0,1]", cfg.Rate)
	}
	if len(cfg.Schedule) > 0 || cfg.Rerouter != nil {
		return Result{}, fmt.Errorf("simnet: the adaptive engine does not support dynamic fault schedules (use Run)")
	}
	n := a.Order()
	if cfg.Faulty != nil && len(cfg.Faulty) != n {
		return Result{}, fmt.Errorf("simnet: fault mask has %d entries for %d nodes", len(cfg.Faulty), n)
	}
	d := graph.Build(a)
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(n)
	usable := func(v int) bool { return cfg.Faulty == nil || !cfg.Faulty[v] }

	type apacket struct {
		at       int32
		dst      int32
		injected int32
		moved    int32
		hops     int32
	}
	queues := make([][][]*apacket, n)
	for v := 0; v < n; v++ {
		queues[v] = make([][]*apacket, d.Degree(v))
	}
	outIndex := func(v, w int) int {
		row := d.Neighbors(v)
		k := sort.Search(len(row), func(i int) bool { return row[i] >= int32(w) })
		if k == len(row) || row[k] != int32(w) {
			panic(fmt.Sprintf("simnet: adaptive candidate %d is not a neighbor of %d", w, v))
		}
		return k
	}

	var res Result
	maxHops := int32(4*n + 16) // livelock guard; minimal routing never hits it
	route := func(p *apacket) error {
		cands := a.Candidates(int(p.at), int(p.dst))
		if len(cands) == 0 {
			return fmt.Errorf("simnet: no candidate hop from %d toward %d", p.at, p.dst)
		}
		bestK, bestLen := -1, 0
		for _, w := range cands {
			k := outIndex(int(p.at), w)
			if qlen := len(queues[p.at][k]); bestK == -1 || qlen < bestLen {
				bestK, bestLen = k, qlen
			}
		}
		queues[p.at][bestK] = append(queues[p.at][bestK], p)
		if bestLen+1 > res.MaxQueue {
			res.MaxQueue = bestLen + 1
		}
		return nil
	}

	totalLatency, deliveredHops := 0, 0
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		for v := 0; v < n; v++ {
			if !cfg.injecting(cycle) || !usable(v) || rng.Float64() >= cfg.Rate {
				continue
			}
			dst, ok := DrawDest(cfg.Pattern, rng, perm, n, v, usable)
			if !ok {
				res.Skipped++
				continue
			}
			res.Injected++
			if err := route(&apacket{at: int32(v), dst: int32(dst), injected: int32(cycle), moved: -1}); err != nil {
				return res, err
			}
		}
		for v := 0; v < n; v++ {
			row := d.Neighbors(v)
			for k := range queues[v] {
				q := queues[v][k]
				if len(q) == 0 {
					continue
				}
				p := q[0]
				if p.moved == int32(cycle) {
					continue
				}
				queues[v][k] = q[1:]
				p.at = row[k]
				p.moved = int32(cycle)
				p.hops++
				res.TotalHops++
				if p.hops > maxHops {
					return res, fmt.Errorf("simnet: packet exceeded %d hops (non-minimal candidates?)", maxHops)
				}
				if p.at == p.dst {
					res.Delivered++
					deliveredHops += int(p.hops)
					lat := cycle + 1 - int(p.injected)
					totalLatency += lat
					if lat > res.MaxLatency {
						res.MaxLatency = lat
					}
					continue
				}
				if cfg.Faulty != nil && cfg.Faulty[p.at] {
					return res, fmt.Errorf("simnet: adaptive route entered faulty node %d", p.at)
				}
				if err := route(p); err != nil {
					return res, err
				}
			}
		}
	}
	for v := range queues {
		for k := range queues[v] {
			res.InFlight += len(queues[v][k])
		}
	}
	if res.Delivered > 0 {
		res.AvgLatency = float64(totalLatency) / float64(res.Delivered)
		res.AvgHops = float64(deliveredHops) / float64(res.Delivered)
	}
	res.Throughput = float64(res.Delivered) / float64(cfg.Cycles)
	return res, nil
}

// destFor picks a destination for src under the pattern; shared by the
// source-routed and adaptive engines.
func destFor(p Pattern, rng *rand.Rand, perm []int, n, src int) int {
	switch p {
	case Uniform:
		return rng.Intn(n)
	case Permutation:
		return perm[src]
	case Reversal:
		return n - 1 - src
	case HotSpot:
		return 0
	}
	return src
}

// uniformRedraws bounds destination resampling; with at least one
// usable non-source node the expected redraw count is tiny, and a
// network that faulty deserves a skip, not a spin.
const uniformRedraws = 64

// DrawDest picks a usable destination distinct from src, or reports
// failure. Uniform resamples (a uniform draw hitting src or a faulty
// node carries no pattern intent, so redrawing preserves the configured
// injection rate); the deterministic patterns have exactly one choice
// per source, so an unusable choice is a skip the caller must count —
// silently suppressing it would quietly undershoot Config.Rate.
func DrawDest(p Pattern, rng *rand.Rand, perm []int, n, src int, usable func(int) bool) (int, bool) {
	if p == Uniform {
		for try := 0; try < uniformRedraws; try++ {
			if d := rng.Intn(n); d != src && usable(d) {
				return d, true
			}
		}
		return 0, false
	}
	d := destFor(p, rng, perm, n, src)
	if d == src || !usable(d) {
		return 0, false
	}
	return d, true
}
