package core_test

import (
	"testing"

	"repro/internal/core"
)

// batchBackends returns both backends over the same instance, so every
// batch property is asserted on the dense and the implicit tier.
func batchBackends(t *testing.T, m, n int) map[string]core.Topology {
	t.Helper()
	hb := core.MustNew(m, n)
	return map[string]core.Topology{
		"dense":    hb,
		"implicit": core.ImplicitOf(hb),
	}
}

// testPairs builds a deterministic pair mix covering self pairs, long
// pairs and out-of-range endpoints.
func testPairs(order, count int) (src, dst []core.Node) {
	for i := 0; i < count; i++ {
		u := (i * 2654435761) % order
		v := (i*40503 + 13) % order
		switch i % 17 {
		case 3:
			v = u // self pair
		case 7:
			v = order + i // out of range
		case 11:
			u = -1 - i // negative
		}
		src = append(src, u)
		dst = append(dst, v)
	}
	return src, dst
}

func TestRouteBatchMatchesSingle(t *testing.T) {
	for name, top := range batchBackends(t, 2, 3) {
		t.Run(name, func(t *testing.T) {
			src, dst := testPairs(top.Order(), 500)
			var bs core.BatchScratch
			if err := core.RouteBatch(top, core.BatchRoute, src, dst, 0, &bs); err != nil {
				t.Fatal(err)
			}
			if len(bs.Status) != len(src) || len(bs.Off) != len(src)+1 {
				t.Fatalf("column lengths: status %d off %d, want %d/%d", len(bs.Status), len(bs.Off), len(src), len(src)+1)
			}
			for i := range src {
				u, v := src[i], dst[i]
				if !top.ValidNode(u) || !top.ValidNode(v) {
					if bs.Status[i] != core.BatchBadNode || bs.Dist[i] != -1 || bs.Off[i] != bs.Off[i+1] {
						t.Fatalf("pair %d (%d,%d): bad endpoints got status %d dist %d seg %d", i, u, v, bs.Status[i], bs.Dist[i], bs.Off[i+1]-bs.Off[i])
					}
					continue
				}
				if bs.Status[i] != core.BatchOK {
					t.Fatalf("pair %d (%d,%d): status %d", i, u, v, bs.Status[i])
				}
				if want := top.Distance(u, v); int(bs.Dist[i]) != want {
					t.Fatalf("pair %d: dist %d, want %d", i, bs.Dist[i], want)
				}
				seg := bs.Nodes[bs.Off[i]:bs.Off[i+1]]
				want := top.Route(u, v)
				if len(seg) != len(want) {
					t.Fatalf("pair %d: route %v, want %v", i, seg, want)
				}
				for j := range want {
					if seg[j] != want[j] {
						t.Fatalf("pair %d: route %v, want %v", i, seg, want)
					}
				}
			}
		})
	}
}

func TestRouteBatchDistOnly(t *testing.T) {
	top := core.MustNew(2, 3)
	src, dst := testPairs(top.Order(), 200)
	var bs core.BatchScratch
	if err := core.RouteBatch(top, core.BatchDist, src, dst, 0, &bs); err != nil {
		t.Fatal(err)
	}
	if len(bs.Off) != 0 || len(bs.Nodes) != 0 {
		t.Fatalf("dist-only batch left route columns: off %d nodes %d", len(bs.Off), len(bs.Nodes))
	}
	for i := range src {
		if bs.Status[i] != core.BatchOK {
			continue
		}
		if want := top.Distance(src[i], dst[i]); int(bs.Dist[i]) != want {
			t.Fatalf("pair %d: dist %d, want %d", i, bs.Dist[i], want)
		}
	}
}

// TestRouteBatchParallelMatchesSerial pins the sharded fan-out to the
// serial answer: identical columns, byte for byte, at worker counts
// that split the batch unevenly.
func TestRouteBatchParallelMatchesSerial(t *testing.T) {
	top := core.MustNewImplicit(3, 3)
	src, dst := testPairs(top.Order(), 2048)
	var serial core.BatchScratch
	if err := core.RouteBatch(top, core.BatchRoute, src, dst, 1, &serial); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 16} {
		var par core.BatchScratch
		if err := core.RouteBatch(top, core.BatchRoute, src, dst, workers, &par); err != nil {
			t.Fatal(err)
		}
		for i := range src {
			if par.Status[i] != serial.Status[i] || par.Dist[i] != serial.Dist[i] || par.Off[i+1] != serial.Off[i+1] {
				t.Fatalf("workers=%d pair %d: (%d,%d,%d) vs serial (%d,%d,%d)", workers, i,
					par.Status[i], par.Dist[i], par.Off[i+1], serial.Status[i], serial.Dist[i], serial.Off[i+1])
			}
		}
		for i := range serial.Nodes {
			if par.Nodes[i] != serial.Nodes[i] {
				t.Fatalf("workers=%d: arena diverges at %d", workers, i)
			}
		}
	}
}

func TestRouteBatchColumnMismatch(t *testing.T) {
	top := core.MustNew(2, 3)
	var bs core.BatchScratch
	if err := core.RouteBatch(top, core.BatchRoute, []core.Node{1, 2}, []core.Node{3}, 0, &bs); err == nil {
		t.Fatal("mismatched columns accepted")
	}
}

// TestRouteBatchSteadyStateAllocs is the acceptance gate for the batch
// kernel: with a warmed scratch, a whole serial batch — status, dist,
// prefix sum and every route — allocates nothing on either backend, so
// the per-pair allocation count is exactly zero.
func TestRouteBatchSteadyStateAllocs(t *testing.T) {
	for name, top := range batchBackends(t, 3, 3) {
		t.Run(name, func(t *testing.T) {
			order := top.Order()
			const pairs = 1024
			src := make([]core.Node, pairs)
			dst := make([]core.Node, pairs)
			var bs core.BatchScratch
			round := 0
			fill := func() {
				for i := range src {
					src[i] = (i*2654435761 + round) % order
					dst[i] = (i*40503 + 7*round + 13) % order
				}
				round++
			}
			fill()
			if err := core.RouteBatch(top, core.BatchRoute, src, dst, 1, &bs); err != nil {
				t.Fatal(err) // warm the scratch
			}
			if got := testing.AllocsPerRun(50, func() {
				fill()
				if err := core.RouteBatch(top, core.BatchRoute, src, dst, 1, &bs); err != nil {
					t.Fatal(err)
				}
			}); got != 0 {
				t.Errorf("%s: %v allocs per %d-pair batch, want 0", name, got, pairs)
			}
		})
	}
}

// TestRouteBatchParallelAllocsBounded keeps the sharded path honest:
// its allocations are per-batch goroutine bookkeeping, not per-pair, so
// they must stay a small constant regardless of batch size.
func TestRouteBatchParallelAllocsBounded(t *testing.T) {
	top := core.MustNewImplicit(3, 3)
	order := top.Order()
	const pairs = 4096
	src := make([]core.Node, pairs)
	dst := make([]core.Node, pairs)
	for i := range src {
		src[i] = (i * 2654435761) % order
		dst[i] = (i*40503 + 13) % order
	}
	var bs core.BatchScratch
	if err := core.RouteBatch(top, core.BatchRoute, src, dst, 4, &bs); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(20, func() {
		if err := core.RouteBatch(top, core.BatchRoute, src, dst, 4, &bs); err != nil {
			t.Fatal(err)
		}
	})
	if perPair := got / pairs; perPair > 0.05 {
		t.Errorf("parallel batch: %v allocs per batch (%v/pair), want O(workers) only", got, perPair)
	}
}

func BenchmarkRouteBatch(b *testing.B) {
	for _, bc := range []struct {
		name    string
		top     core.Topology
		workers int
	}{
		{"dense/serial", core.MustNew(3, 3), 1},
		{"implicit/serial", core.MustNewImplicit(3, 3), 1},
		{"implicit/parallel", core.MustNewImplicit(3, 3), 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			order := bc.top.Order()
			const pairs = 1024
			src := make([]core.Node, pairs)
			dst := make([]core.Node, pairs)
			for i := range src {
				src[i] = (i * 2654435761) % order
				dst[i] = (i*40503 + 13) % order
			}
			var bs core.BatchScratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := core.RouteBatch(bc.top, core.BatchRoute, src, dst, bc.workers, &bs); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(pairs))
		})
	}
}
