package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Property-based tests (testing/quick) on the metric and group
// invariants of HB(m,n). Inputs are folded into the valid node range so
// every generated case is meaningful.

func quickConfig(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 2000,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

func fold(hb *HyperButterfly, raw uint32) Node {
	return int(raw) % hb.Order()
}

// TestQuickMetricAxioms: Distance is a metric — identity, symmetry, and
// the triangle inequality (exercised through random triples).
func TestQuickMetricAxioms(t *testing.T) {
	hb := MustNew(3, 5)
	f := func(a, b, c uint32) bool {
		u, v, w := fold(hb, a), fold(hb, b), fold(hb, c)
		duv := hb.Distance(u, v)
		if (duv == 0) != (u == v) {
			return false
		}
		if duv != hb.Distance(v, u) {
			return false
		}
		return duv <= hb.Distance(u, w)+hb.Distance(w, v)
	}
	if err := quick.Check(f, quickConfig(35)); err != nil {
		t.Error(err)
	}
}

// TestQuickDistanceWithinDiameter: no pair exceeds the Theorem 3 bound.
func TestQuickDistanceWithinDiameter(t *testing.T) {
	hb := MustNew(4, 7)
	f := func(a, b uint32) bool {
		return hb.Distance(fold(hb, a), fold(hb, b)) <= hb.DiameterFormula()
	}
	if err := quick.Check(f, quickConfig(47)); err != nil {
		t.Error(err)
	}
}

// TestQuickRouteRealizesDistance: the generator route always lands on
// the destination in exactly Distance moves, and each move changes the
// node (no null steps).
func TestQuickRouteRealizesDistance(t *testing.T) {
	hb := MustNew(2, 6)
	f := func(a, b uint32) bool {
		u, v := fold(hb, a), fold(hb, b)
		moves := hb.RouteMoves(u, v)
		if len(moves) != hb.Distance(u, v) {
			return false
		}
		cur := u
		for _, mv := range moves {
			next := hb.Apply(mv, cur)
			if next == cur {
				return false
			}
			cur = next
		}
		return cur == v
	}
	if err := quick.Check(f, quickConfig(26)); err != nil {
		t.Error(err)
	}
}

// TestQuickEdgeDistance: adjacent nodes are exactly at distance 1 and
// generators change the node (Remark 3).
func TestQuickEdgeDistance(t *testing.T) {
	hb := MustNew(3, 4)
	moves := hb.Moves()
	f := func(a uint32, g uint8) bool {
		u := fold(hb, a)
		mv := moves[int(g)%len(moves)]
		w := hb.Apply(mv, u)
		return w != u && hb.Distance(u, w) == 1 && hb.Apply(mv.Inverse(), w) == u
	}
	if err := quick.Check(f, quickConfig(34)); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeEncode: label round trip over random nodes.
func TestQuickDecodeEncode(t *testing.T) {
	hb := MustNew(5, 4)
	f := func(a uint32) bool {
		v := fold(hb, a)
		h, b := hb.Decode(v)
		return hb.Encode(h, b) == v
	}
	if err := quick.Check(f, quickConfig(54)); err != nil {
		t.Error(err)
	}
}

// TestEdgeConnectivityMatchesDegree: for the regular networks here the
// edge connectivity equals the degree — a strictly stronger statement
// than Corollary 1 for links instead of nodes.
func TestEdgeConnectivityMatchesDegree(t *testing.T) {
	for _, dims := range [][2]int{{0, 3}, {1, 3}, {2, 3}} {
		hb := MustNew(dims[0], dims[1])
		if got := graph.EdgeConnectivity(hb.Dense()); got != hb.Degree() {
			t.Errorf("HB%v: edge connectivity %d, want %d", dims, got, hb.Degree())
		}
	}
}

// TestCorollary1LargerInstances: exact vertex connectivity m+4 on the
// instances the per-pair flow rebuild used to put out of reach — HB(3,4)
// with 512 nodes and HB(4,3) with 384 — via the parallel Menger engine
// (vertex-transitive seed, shared best bound). Edge connectivity is
// checked on the larger instance as the E-EC extension.
func TestCorollary1LargerInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("exact connectivity on 384/512-node instances")
	}
	for _, dims := range [][2]int{{3, 4}, {4, 3}} {
		hb := MustNew(dims[0], dims[1])
		want := hb.ConnectivityFormula()
		if got := graph.ConnectivityVertexTransitiveParallel(hb.Dense(), 0); got != want {
			t.Errorf("HB%v: vertex connectivity %d, want %d", dims, got, want)
		}
	}
	hb := MustNew(3, 4)
	if got := graph.EdgeConnectivityParallel(hb.Dense(), 0); got != hb.Degree() {
		t.Errorf("HB(3,4): edge connectivity %d, want %d", got, hb.Degree())
	}
}

// TestGirth: the relator (g·f⁻¹)² gives 4-cycles in the butterfly
// factor, and the g-generator level cycle gives n-cycles, so the girth
// of HB(m,n) is min(n, 4) — triangles exist exactly when n = 3.
func TestGirth(t *testing.T) {
	for _, dims := range [][2]int{{0, 3}, {2, 3}, {1, 4}, {0, 5}, {2, 4}} {
		hb := MustNew(dims[0], dims[1])
		want := 4
		if dims[1] == 3 {
			want = 3
		}
		if got := graph.Girth(hb); got != want {
			t.Errorf("HB%v: girth %d, want %d", dims, got, want)
		}
	}
}
