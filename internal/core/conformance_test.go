package core_test

import (
	"testing"

	"repro/internal/conformance"
)

// TestConformance registers HB(m,n) with the repository-wide invariant
// suite, covering the full claim set in one call: Theorem 2 counts and
// regularity, Remark 3 generator action, Theorem 3 diameter, Theorem 5
// / Corollary 1 connectivity and disjoint paths, Remark 8 distance,
// claim R6 routing optimality and Remark 10 fault-tolerant delivery.
func TestConformance(t *testing.T) {
	targets := []conformance.Target{
		conformance.HyperButterfly(0, 3), // degenerate: pure butterfly
		conformance.HyperButterfly(1, 3),
		conformance.HyperButterfly(2, 3),
		conformance.HyperButterfly(2, 4),
	}
	if !testing.Short() {
		targets = append(targets, conformance.HyperButterfly(3, 4))
	}
	conformance.Suite(t, targets...)
}
