package core_test

import (
	"testing"

	"repro/internal/core"
)

// FuzzImplicitRoute drives the implicit router with arbitrary (m, n,
// src, dst) labels: after clamping into valid ranges, the emitted route
// must be a walk from src to dst of exactly Distance(src,dst) steps in
// which every hop is one of the implicit neighbors of its predecessor —
// i.e. shortestness and validity certified by label arithmetic alone.
func FuzzImplicitRoute(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint64(0), uint64(95))
	f.Add(uint8(0), uint8(4), uint64(17), uint64(3))
	f.Add(uint8(3), uint8(5), uint64(1<<20), uint64(42))
	f.Add(uint8(1), uint8(6), uint64(7), uint64(7))
	f.Fuzz(func(t *testing.T, mRaw, nRaw uint8, srcRaw, dstRaw uint64) {
		m := int(mRaw % 5)   // 0..4
		n := 3 + int(nRaw%4) // 3..6
		imp, err := core.NewImplicit(m, n)
		if err != nil {
			t.Fatalf("NewImplicit(%d,%d): %v", m, n, err)
		}
		order := uint64(imp.Order())
		u := core.Node(srcRaw % order)
		v := core.Node(dstRaw % order)

		dist := imp.Distance(u, v)
		if back := imp.Distance(v, u); back != dist {
			t.Fatalf("HB(%d,%d): Distance(%d,%d)=%d but Distance(%d,%d)=%d",
				m, n, u, v, dist, v, u, back)
		}
		if diam := imp.DiameterFormula(); dist < 0 || dist > diam {
			t.Fatalf("HB(%d,%d): Distance(%d,%d)=%d outside [0,%d]", m, n, u, v, dist, diam)
		}

		route := imp.AppendRoute(u, v, nil)
		if len(route) != dist+1 {
			t.Fatalf("HB(%d,%d): route %d..%d has %d vertices, Distance says %d steps",
				m, n, u, v, len(route), dist)
		}
		if route[0] != u || route[len(route)-1] != v {
			t.Fatalf("HB(%d,%d): route runs %d..%d, want %d..%d",
				m, n, route[0], route[len(route)-1], u, v)
		}
		var nbuf []int
		for i := 1; i < len(route); i++ {
			if !imp.ValidNode(route[i]) {
				t.Fatalf("HB(%d,%d): route emits invalid label %d", m, n, route[i])
			}
			nbuf = imp.AppendNeighbors(route[i-1], nbuf[:0])
			ok := false
			for _, w := range nbuf {
				if w == route[i] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("HB(%d,%d): route step %d-%d is not an implicit edge",
					m, n, route[i-1], route[i])
			}
		}
	})
}
