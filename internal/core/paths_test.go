package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestTheorem5Case1 exercises h != h', b = b' exhaustively on HB(2,3)
// and by sampling on HB(3,4).
func TestTheorem5Case1(t *testing.T) {
	hb := MustNew(2, 3)
	for b := 0; b < hb.Butterfly().Order(); b++ {
		for hu := 0; hu < 4; hu++ {
			for hv := 0; hv < 4; hv++ {
				if hu == hv {
					continue
				}
				u, v := hb.Encode(hu, b), hb.Encode(hv, b)
				checkDisjoint(t, hb, u, v)
			}
		}
	}
}

// TestTheorem5Case2 exercises h = h', b != b'.
func TestTheorem5Case2(t *testing.T) {
	hb := MustNew(2, 3)
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 300; trial++ {
		h := rng.Intn(4)
		bu, bv := rng.Intn(24), rng.Intn(24)
		if bu == bv {
			continue
		}
		checkDisjoint(t, hb, hb.Encode(h, bu), hb.Encode(h, bv))
	}
}

// TestTheorem5Case3 exercises the general case.
func TestTheorem5Case3(t *testing.T) {
	hb := MustNew(2, 3)
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 300; trial++ {
		u, v := rng.Intn(hb.Order()), rng.Intn(hb.Order())
		hu, bu := hb.Decode(u)
		hv, bv := hb.Decode(v)
		if hu == hv || bu == bv {
			continue
		}
		checkDisjoint(t, hb, u, v)
	}
}

// TestTheorem5Larger samples all cases on HB(3,4) (3072 nodes, degree 7).
func TestTheorem5Larger(t *testing.T) {
	hb := MustNew(3, 4)
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 60; trial++ {
		u, v := rng.Intn(hb.Order()), rng.Intn(hb.Order())
		if u == v {
			continue
		}
		checkDisjoint(t, hb, u, v)
	}
}

// TestTheorem5DegenerateM0 checks the pure-butterfly limit.
func TestTheorem5DegenerateM0(t *testing.T) {
	hb := MustNew(0, 3)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		u, v := rng.Intn(hb.Order()), rng.Intn(hb.Order())
		if u == v {
			continue
		}
		checkDisjoint(t, hb, u, v)
	}
}

func checkDisjoint(t *testing.T, hb *HyperButterfly, u, v Node) {
	t.Helper()
	paths, err := hb.DisjointPaths(u, v)
	if err != nil {
		t.Fatalf("DisjointPaths(%d,%d): %v", u, v, err)
	}
	if len(paths) != hb.Degree() {
		t.Fatalf("DisjointPaths(%d,%d): %d paths, want %d", u, v, len(paths), hb.Degree())
	}
	if err := graph.VerifyDisjointPaths(hb, u, v, paths); err != nil {
		t.Fatalf("DisjointPaths(%d,%d): %v", u, v, err)
	}
}

// TestTheorem5LengthBounds checks the proof's path-length bounds for
// cases 1 and 2: hypercube-family paths at most m+2, detour families at
// most their sub-network diameter + 2.
func TestTheorem5LengthBounds(t *testing.T) {
	hb := MustNew(3, 3)
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 200; trial++ {
		b := rng.Intn(hb.Butterfly().Order())
		hu, hv := rng.Intn(8), rng.Intn(8)
		if hu == hv {
			continue
		}
		paths, err := hb.DisjointPaths(hb.Encode(hu, b), hb.Encode(hv, b))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range paths {
			if len(p)-1 > hb.M()+4 { // m+2 for cube paths, cubeRoute+2 <= m+2 for detours
				t.Fatalf("case-1 path of length %d exceeds bound", len(p)-1)
			}
		}
	}
}

// Corollary 1 (vertex connectivity m+4, computed by max-flow) is
// asserted by the conformance suite in conformance_test.go.

func TestDisjointPathsErrors(t *testing.T) {
	hb := MustNew(1, 3)
	if _, err := hb.DisjointPaths(2, 2); err == nil {
		t.Error("accepted equal endpoints")
	}
	if _, err := hb.DisjointPaths(-1, 2); err == nil {
		t.Error("accepted negative endpoint")
	}
	if _, err := hb.DisjointPaths(0, hb.Order()); err == nil {
		t.Error("accepted out-of-range endpoint")
	}
}

// TestFan exercises the node-to-set disjoint paths up to the full fan
// size m+4.
func TestFan(t *testing.T) {
	hb := MustNew(2, 3)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 120; trial++ {
		src := rng.Intn(hb.Order())
		size := 1 + rng.Intn(hb.Degree())
		targets := make([]int, 0, size)
		used := map[int]bool{src: true}
		for len(targets) < size {
			x := rng.Intn(hb.Order())
			if !used[x] {
				used[x] = true
				targets = append(targets, x)
			}
		}
		paths, err := hb.Fan(src, targets)
		if err != nil {
			t.Fatalf("Fan(%d, %v): %v", src, targets, err)
		}
		if err := graph.VerifyNodeToSetPaths(hb, src, targets, paths); err != nil {
			t.Fatalf("Fan(%d, %v): %v", src, targets, err)
		}
	}
	if _, err := hb.Fan(0, make([]int, hb.Degree()+1)); err == nil {
		t.Error("accepted oversized fan")
	}
	if _, err := hb.Fan(-1, []int{1}); err == nil {
		t.Error("accepted bad source")
	}
}
