// Package core implements the hyper-butterfly network HB(m,n), the
// contribution of the paper (Definition 3): the Cartesian product of the
// hypercube H_m and the wrapped butterfly B_n.
//
// Each node carries a two-part label (h; b): an m-bit hypercube-part
// label and a butterfly-part label (a possibly-complemented cyclic
// permutation of n symbols). The m+4 generators are the m hypercube bit
// complementations h_i acting on the first part and the four butterfly
// generators g, f, g^{-1}, f^{-1} acting on the second (Theorem 1: a
// Cayley graph of degree m+4).
//
// Key quantities (all verified against the constructed graph in tests):
//
//	order         n·2^(m+n)                     (Theorem 2)
//	edges         (m+4)·n·2^(m+n-1)             (Theorem 2)
//	diameter      m + ⌊3n/2⌋                    (Theorem 3; see note)
//	connectivity  m + 4                          (Theorem 5, Corollary 1)
//
// Note on the diameter: Theorem 3 states m + ⌈3n/2⌉ but Remark 1 (and
// measurement) gives the wrapped butterfly diameter as ⌊3n/2⌋, so the
// product diameter is m + ⌊3n/2⌋; the two agree for even n, which
// includes every instance the paper evaluates (Figure 2 uses n = 8).
package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/butterfly"
	"repro/internal/hypercube"
)

// Node is a hyper-butterfly vertex id in [0, n·2^(m+n)):
// id = h·|B_n| + b.
type Node = int

// HyperButterfly is the network HB(m,n).
type HyperButterfly struct {
	m     int
	cube  *hypercube.Cube
	bf    *butterfly.Butterfly
	bSize int
}

// New returns HB(m,n) for 0 <= m <= 30 and 3 <= n <= butterfly.MaxDim.
// m = 0 degenerates to B_n itself, which is occasionally useful in
// experiments; the paper's instances all have m >= 1.
func New(m, n int) (*HyperButterfly, error) {
	cube, err := hypercube.New(m)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	bf, err := butterfly.New(n)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &HyperButterfly{m: m, cube: cube, bf: bf, bSize: bf.Order()}, nil
}

// MustNew is New for known-good dimensions; it panics on error.
func MustNew(m, n int) *HyperButterfly {
	hb, err := New(m, n)
	if err != nil {
		panic(err)
	}
	return hb
}

// M returns the hypercube dimension m.
func (hb *HyperButterfly) M() int { return hb.m }

// N returns the butterfly dimension n.
func (hb *HyperButterfly) N() int { return hb.bf.Dim() }

// Cube returns the hypercube factor H_m.
func (hb *HyperButterfly) Cube() *hypercube.Cube { return hb.cube }

// Butterfly returns the butterfly factor B_n.
func (hb *HyperButterfly) Butterfly() *butterfly.Butterfly { return hb.bf }

// Order returns n·2^(m+n) (Theorem 2).
func (hb *HyperButterfly) Order() int { return hb.cube.Order() * hb.bSize }

// EdgeCountFormula returns (m+4)·n·2^(m+n-1) (Theorem 2).
func (hb *HyperButterfly) EdgeCountFormula() int {
	n := hb.N()
	return (hb.m + 4) * n << uint(hb.m+n-1)
}

// Degree returns m+4, the degree of every node (Theorem 2).
func (hb *HyperButterfly) Degree() int { return hb.m + 4 }

// DiameterFormula returns m + ⌊3n/2⌋, the measured diameter (see the
// package comment for the relation to Theorem 3's statement).
func (hb *HyperButterfly) DiameterFormula() int { return hb.m + hb.bf.DiameterFormula() }

// DiameterFormulaPaper returns m + ⌈3n/2⌉ exactly as printed in
// Theorem 3.
func (hb *HyperButterfly) DiameterFormulaPaper() int { return hb.m + (3*hb.N()+1)/2 }

// ConnectivityFormula returns m+4 (Corollary 1).
func (hb *HyperButterfly) ConnectivityFormula() int { return hb.m + 4 }

// ValidNode reports whether v is a node id of this instance. Long-lived
// callers (cmd/hbnet, the hbd query service) validate untrusted ids with
// this before handing them to Route/Apply, which panic on bad labels.
func (hb *HyperButterfly) ValidNode(v Node) bool { return v >= 0 && v < hb.Order() }

// Encode assembles a node id from a hypercube part h and a butterfly
// part b.
func (hb *HyperButterfly) Encode(h int, b butterfly.Node) Node {
	if h < 0 || h >= hb.cube.Order() || b < 0 || b >= hb.bSize {
		panic(fmt.Sprintf("core: invalid label (h=%d, b=%d) for HB(%d,%d)", h, b, hb.m, hb.N()))
	}
	return h*hb.bSize + b
}

// Decode splits a node id into its hypercube and butterfly parts.
func (hb *HyperButterfly) Decode(v Node) (h int, b butterfly.Node) {
	return v / hb.bSize, v % hb.bSize
}

// Identity returns the identity node (00…0; t_1 t_2 … t_n) of Remark 7.
func (hb *HyperButterfly) Identity() Node { return hb.bf.Identity() }

// Move identifies one of the m+4 generators: the hypercube generators
// h_0..h_{m-1} (Cube true, Index the dimension) or a butterfly generator
// (Cube false, Index one of butterfly.GenG/GenF/GenGInv/GenFInv).
type Move struct {
	Cube  bool
	Index int
}

// String renders a move in the paper's notation.
func (mv Move) String() string {
	if mv.Cube {
		return fmt.Sprintf("h%d", mv.Index)
	}
	return butterfly.GeneratorNames[mv.Index]
}

// Inverse returns the move undoing mv (the generator set is closed under
// inverse, Remark 3).
func (mv Move) Inverse() Move {
	if mv.Cube {
		return mv
	}
	return Move{Index: butterfly.InverseGen(mv.Index)}
}

// Moves lists all m+4 generators of HB(m,n): first the m hypercube
// generators, then the four butterfly generators, matching the neighbor
// order of AppendNeighbors.
func (hb *HyperButterfly) Moves() []Move {
	out := make([]Move, 0, hb.m+4)
	for i := 0; i < hb.m; i++ {
		out = append(out, Move{Cube: true, Index: i})
	}
	for j := 0; j < butterfly.NumGens; j++ {
		out = append(out, Move{Index: j})
	}
	return out
}

// Apply returns the neighbor of v under mv.
func (hb *HyperButterfly) Apply(mv Move, v Node) Node {
	h, b := hb.Decode(v)
	if mv.Cube {
		if mv.Index < 0 || mv.Index >= hb.m {
			panic(fmt.Sprintf("core: hypercube generator h%d out of range for m=%d", mv.Index, hb.m))
		}
		return hb.Encode(h^(1<<uint(mv.Index)), b)
	}
	return hb.Encode(h, hb.bf.Apply(mv.Index, b))
}

// AppendNeighbors implements graph.Graph: m hypercube neighbors
// followed by 4 butterfly neighbors (Definition 4).
func (hb *HyperButterfly) AppendNeighbors(v int, buf []int) []int {
	h, b := hb.Decode(v)
	for i := 0; i < hb.m; i++ {
		buf = append(buf, hb.Encode(h^(1<<uint(i)), b))
	}
	base := h * hb.bSize
	buf = append(buf,
		base+hb.bf.Apply(butterfly.GenG, b),
		base+hb.bf.Apply(butterfly.GenF, b),
		base+hb.bf.Apply(butterfly.GenGInv, b),
		base+hb.bf.Apply(butterfly.GenFInv, b),
	)
	return buf
}

// VertexLabel renders v as "(x_{m-1}…x_0; symbols)".
func (hb *HyperButterfly) VertexLabel(v Node) string {
	h, b := hb.Decode(v)
	return "(" + bitvec.String(uint64(h), hb.m) + "; " + hb.bf.VertexLabel(b) + ")"
}

// Distance returns the shortest-path distance between u and v: the sum
// of the Hamming distance of the hypercube parts and the butterfly
// distance of the butterfly parts (Remark 8).
func (hb *HyperButterfly) Distance(u, v Node) int {
	hu, bu := hb.Decode(u)
	hv, bv := hb.Decode(v)
	return hb.cube.Distance(hu, hv) + hb.bf.Distance(bu, bv)
}

// RouteMoves returns the generator sequence of a shortest u-v path,
// following Section 3: first correct the hypercube part within the
// sub-hypercube (H_m, b), then route the butterfly part within the
// sub-butterfly (h', B_n).
func (hb *HyperButterfly) RouteMoves(u, v Node) []Move {
	hu, bu := hb.Decode(u)
	hv, bv := hb.Decode(v)
	moves := make([]Move, 0, hb.Distance(u, v))
	for _, d := range bitvec.DiffBits(uint64(hu), uint64(hv), hb.m) {
		moves = append(moves, Move{Cube: true, Index: d})
	}
	for _, g := range hb.bf.RouteGenerators(bu, bv) {
		moves = append(moves, Move{Index: g})
	}
	return moves
}

// Route returns a shortest path from u to v as a node sequence including
// both endpoints; its length always equals Distance(u,v)+1 (Remark 6).
func (hb *HyperButterfly) Route(u, v Node) []Node {
	moves := hb.RouteMoves(u, v)
	path := make([]Node, 0, len(moves)+1)
	path = append(path, u)
	cur := u
	for _, mv := range moves {
		cur = hb.Apply(mv, cur)
		path = append(path, cur)
	}
	if cur != v {
		panic(fmt.Sprintf("core: route from %d ended at %d, want %d", u, cur, v))
	}
	return path
}
