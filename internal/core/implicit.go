package core

import (
	"fmt"

	"repro/internal/graph"
)

// Case 3 of Theorem 5 (both label parts differ) without the product
// graph. The paper's two staircase families — cube-first paths that
// cross the butterfly in a distinct column, and butterfly-first paths
// that cross the cube in a distinct layer — are individually sound but
// collide pairwise at "corner" vertices (see the paths.go file comment),
// so they cannot be returned as-is. The dense backend resolves this with
// a max-flow over the whole graph; at HB(10,10) scale that graph cannot
// exist. Instead we exploit locality: all m+4 paths of a correct
// solution can be drawn inside a small window around the analytic
// candidates, because the product structure supplies commuting-square
// detours wherever two candidates touch. So:
//
//  1. seed a vertex window with both staircase families, both two-phase
//     routes, and the factor disjoint paths lifted to both endpoints;
//  2. close the window under 1-hop neighborhoods (label arithmetic);
//  3. run the exact Menger extraction on the induced subgraph;
//  4. on a shortfall, widen by another hop and retry (bounded).
//
// The window has O((m+n)·(m+4)·(m+4)) vertices — thousands for
// HB(10,10), against ten million in the full graph — and the extraction
// is exact, so the result is a verified Theorem 5 certificate, not a
// heuristic. The differential gate checks it against the dense Menger
// answer on every conformance instance; in those sweeps the first
// window always suffices, and implicitWindowHops bounds pathology.

// implicitWindowHops caps the closed-neighborhood expansions around the
// candidate scaffold before implicitCase3 reports failure.
const implicitWindowHops = 3

// implicitCase3 builds the induced candidate window and extracts m+4
// disjoint paths from it.
func (t *Implicit) implicitCase3(u, v Node) ([][]Node, error) {
	hb := t.HyperButterfly
	want := hb.m + 4
	hu, bu := hb.Decode(u)
	hv, bv := hb.Decode(v)

	cubePaths, err := hb.cube.DisjointPaths(hu, hv)
	if err != nil {
		return nil, fmt.Errorf("core: implicit case 3: %w", err)
	}
	bfPaths, err := hb.bf.DisjointPaths(bu, bv)
	if err != nil {
		return nil, fmt.Errorf("core: implicit case 3: %w", err)
	}
	cubeRoute := hb.cube.Route(hu, hv)
	bfRoute := hb.bf.Route(bu, bv)

	index := make(map[Node]int32, 1024)
	nodes := make([]Node, 0, 1024)
	add := func(x Node) {
		if _, ok := index[x]; !ok {
			index[x] = int32(len(nodes))
			nodes = append(nodes, x)
		}
	}

	add(u)
	add(v)
	// Family A: enter column c = P[1] of each cube path P, cross the
	// butterfly there, finish P in layer bv.
	for _, cp := range cubePaths {
		c := cp[1]
		for _, y := range bfRoute {
			add(hb.Encode(c, y))
		}
		for _, x := range cp[1:] {
			add(hb.Encode(x, bv))
		}
	}
	// Family B: enter layer q = Q[1] of each butterfly path Q, cross the
	// cube there, finish Q in column hv.
	for _, bp := range bfPaths {
		q := bp[1]
		for _, x := range cubeRoute {
			add(hb.Encode(x, q))
		}
		for _, y := range bp[1:] {
			add(hb.Encode(hv, y))
		}
	}
	// Both two-phase shortest routes (cube-then-butterfly and
	// butterfly-then-cube).
	for _, x := range cubeRoute {
		add(hb.Encode(x, bu))
		add(hb.Encode(x, bv))
	}
	for _, y := range bfRoute {
		add(hb.Encode(hu, y))
		add(hb.Encode(hv, y))
	}

	var nbuf []int
	var lastErr error
	for hop := 0; hop < implicitWindowHops; hop++ {
		// Close the window under one more neighborhood hop.
		frontier := len(nodes)
		for i := 0; i < frontier; i++ {
			nbuf = hb.AppendNeighbors(nodes[i], nbuf[:0])
			for _, w := range nbuf {
				add(w)
			}
		}
		paths, err := t.extractWindow(index, nodes, u, v, want)
		if err == nil {
			return paths, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("core: implicit case 3 (%d..%d after %d window hops): %w",
		u, v, implicitWindowHops, lastErr)
}

// extractWindow runs the exact Menger extraction on the subgraph induced
// by the window and maps the local paths back to instance labels.
func (t *Implicit) extractWindow(index map[Node]int32, nodes []Node, u, v Node, want int) ([][]Node, error) {
	hb := t.HyperButterfly
	edges := make([][2]int, 0, len(nodes)*hb.Degree()/2)
	var nbuf []int
	for i, x := range nodes {
		nbuf = hb.AppendNeighbors(x, nbuf[:0])
		for _, w := range nbuf {
			if j, ok := index[w]; ok && int(j) > i {
				edges = append(edges, [2]int{i, int(j)})
			}
		}
	}
	local := graph.NewDense(len(nodes), edges)
	paths, err := graph.NewFlowScratch(local).DisjointPaths(int(index[u]), int(index[v]), want)
	if err != nil {
		return nil, err
	}
	if len(paths) != want {
		return nil, fmt.Errorf("window of %d vertices yields %d disjoint paths, want %d",
			len(nodes), len(paths), want)
	}
	for _, p := range paths {
		for i, lv := range p {
			p[i] = nodes[lv]
		}
	}
	return paths, nil
}
