package core

import (
	"math/rand"
	"testing"

	"repro/internal/butterfly"
	"repro/internal/graph"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 4); err == nil {
		t.Error("accepted m = -1")
	}
	if _, err := New(2, 2); err == nil {
		t.Error("accepted n = 2")
	}
	hb, err := New(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hb.Order() != 24 || hb.Degree() != 4 {
		t.Errorf("HB(0,3): order %d degree %d", hb.Order(), hb.Degree())
	}
}

// Theorem 2 counts, Remark 3 generator action, the Theorem 3 diameter
// and Remark 8 distance-vs-BFS agreement are asserted by the
// conformance suite in conformance_test.go; the Order formula itself is
// pure arithmetic and stays here.
func TestTheorem2OrderFormula(t *testing.T) {
	for m := 0; m <= 3; m++ {
		for n := 3; n <= 5; n++ {
			hb := MustNew(m, n)
			if hb.Order() != n<<uint(m+n) {
				t.Fatalf("HB(%d,%d): order %d, want %d", m, n, hb.Order(), n<<uint(m+n))
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	hb := MustNew(3, 4)
	for v := 0; v < hb.Order(); v++ {
		h, b := hb.Decode(v)
		if hb.Encode(h, b) != v {
			t.Fatalf("round trip failed at %d", v)
		}
	}
}

func TestEncodePanics(t *testing.T) {
	hb := MustNew(2, 3)
	for _, bad := range [][2]int{{4, 0}, {-1, 0}, {0, 24}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Encode(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			hb.Encode(bad[0], bad[1])
		}()
	}
}

func TestMovesMatchNeighbors(t *testing.T) {
	hb := MustNew(2, 3)
	moves := hb.Moves()
	if len(moves) != 6 {
		t.Fatalf("Moves: %v", moves)
	}
	var buf []int
	for v := 0; v < hb.Order(); v++ {
		buf = hb.AppendNeighbors(v, buf[:0])
		for k, mv := range moves {
			if hb.Apply(mv, v) != buf[k] {
				t.Fatalf("move %v disagrees with neighbor %d of %d", mv, k, v)
			}
			// Closure under inverse (Remark 3).
			if hb.Apply(mv.Inverse(), hb.Apply(mv, v)) != v {
				t.Fatalf("inverse of %v failed at %d", mv, v)
			}
		}
	}
}

func TestMoveString(t *testing.T) {
	if got := (Move{Cube: true, Index: 2}).String(); got != "h2" {
		t.Errorf("cube move = %q", got)
	}
	if got := (Move{Index: butterfly.GenFInv}).String(); got != "f-1" {
		t.Errorf("butterfly move = %q", got)
	}
}

// TestRemark6Routing (claim R6) checks exhaustively that the two-phase
// route realises the shortest-path distance and is a valid path. The
// HB(2,3) instance always runs; HB(3,3) rides along unless -short.
func TestRemark6Routing(t *testing.T) {
	sizes := []struct {
		m, n   int
		stride int
	}{
		{2, 3, 3},
	}
	if !testing.Short() {
		sizes = append(sizes, struct{ m, n, stride int }{3, 3, 1})
	}
	for _, sz := range sizes {
		hb := MustNew(sz.m, sz.n)
		for u := 0; u < hb.Order(); u += sz.stride {
			dist := graph.BFS(hb, u, nil)
			for v := 0; v < hb.Order(); v++ {
				p := hb.Route(u, v)
				if len(p)-1 != int(dist[v]) {
					t.Fatalf("HB(%d,%d): route %d->%d length %d, BFS distance %d",
						sz.m, sz.n, u, v, len(p)-1, dist[v])
				}
				if err := graph.VerifyPath(hb, p); err != nil && u != v {
					t.Fatalf("HB(%d,%d): route %d->%d: %v", sz.m, sz.n, u, v, err)
				}
			}
		}
	}
}

func TestRouteMovesRandomLarge(t *testing.T) {
	hb := MustNew(4, 6)
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 2000; trial++ {
		u, v := rng.Intn(hb.Order()), rng.Intn(hb.Order())
		moves := hb.RouteMoves(u, v)
		if len(moves) != hb.Distance(u, v) {
			t.Fatalf("moves %d, distance %d", len(moves), hb.Distance(u, v))
		}
		cur := u
		for _, mv := range moves {
			cur = hb.Apply(mv, cur)
		}
		if cur != v {
			t.Fatalf("moves from %d ended at %d, want %d", u, cur, v)
		}
	}
}

// TestTheorem3PaperFormula: for even n the measured formula m+⌊3n/2⌋
// agrees with Theorem 3's printed m+⌈3n/2⌉ (the BFS ground truth is
// asserted by the conformance suite's diameter invariant).
func TestTheorem3PaperFormula(t *testing.T) {
	for m := 0; m <= 4; m++ {
		for n := 4; n <= 8; n += 2 {
			hb := MustNew(m, n)
			if hb.DiameterFormula() != hb.DiameterFormulaPaper() {
				t.Fatalf("HB(%d,%d): formulas disagree for even n: %d vs %d",
					m, n, hb.DiameterFormula(), hb.DiameterFormulaPaper())
			}
		}
	}
}

// TestVertexTransitivity spot-checks Remark 7: the distance histogram
// from several sources is identical.
func TestVertexTransitivity(t *testing.T) {
	hb := MustNew(2, 4)
	ref := histogram(graph.BFS(hb, 0, nil))
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 10; trial++ {
		src := rng.Intn(hb.Order())
		got := histogram(graph.BFS(hb, src, nil))
		if len(got) != len(ref) {
			t.Fatalf("histogram lengths differ from %d", src)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("histogram differs from source %d at distance %d", src, i)
			}
		}
	}
}

func histogram(dist []int32) []int {
	var h []int
	for _, d := range dist {
		for int(d) >= len(h) {
			h = append(h, 0)
		}
		h[d]++
	}
	return h
}

// TestRemark5Decomposition verifies the two partitions.
func TestRemark5Decomposition(t *testing.T) {
	hb := MustNew(2, 3)
	seen := make([]bool, hb.Order())
	parts := hb.HypercubePartition()
	if len(parts) != hb.Butterfly().Order() {
		t.Fatalf("%d sub-hypercubes", len(parts))
	}
	for b, part := range parts {
		if len(part) != 4 {
			t.Fatalf("sub-hypercube %d has %d nodes", b, len(part))
		}
		for h, v := range part {
			if seen[v] {
				t.Fatalf("node %d in two sub-hypercubes", v)
			}
			seen[v] = true
			gh, gb := hb.Decode(v)
			if gh != h || gb != b {
				t.Fatalf("sub-hypercube indexing wrong at (%d,%d)", h, b)
			}
		}
		// The part really is an H_m: all pairs at Hamming distance 1 adjacent.
		d := graph.Build(hb)
		for _, x := range part {
			deg := 0
			for _, y := range part {
				if x != y && d.HasEdge(x, y) {
					deg++
				}
			}
			if deg != hb.M() {
				t.Fatalf("sub-hypercube node %d has %d intra-part edges", x, deg)
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("node %d missing from partition", v)
		}
	}

	bparts := hb.ButterflyPartition()
	if len(bparts) != 4 {
		t.Fatalf("%d sub-butterflies", len(bparts))
	}
	seen = make([]bool, hb.Order())
	for _, part := range bparts {
		if len(part) != hb.Butterfly().Order() {
			t.Fatalf("sub-butterfly size %d", len(part))
		}
		for _, v := range part {
			if seen[v] {
				t.Fatalf("node %d in two sub-butterflies", v)
			}
			seen[v] = true
		}
	}
}

func TestVertexLabel(t *testing.T) {
	hb := MustNew(3, 3)
	if got := hb.VertexLabel(hb.Identity()); got != "(000; t1 t2 t3)" {
		t.Errorf("identity label = %q", got)
	}
	v := hb.Apply(Move{Cube: true, Index: 2}, hb.Identity())
	if got := hb.VertexLabel(v); got != "(100; t1 t2 t3)" {
		t.Errorf("h2 label = %q", got)
	}
}
