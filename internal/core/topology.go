package core

import "fmt"

// Topology is the label-arithmetic view of a hyper-butterfly network:
// every operation is computed from (m, n, level, row) labels alone, so a
// backend never needs to materialise the graph to answer it. Both
// *HyperButterfly (whose case-3 disjoint paths fall back to the cached
// dense adjacency — the oracle) and *Implicit (zero graph construction,
// usable at HB(10,10) scale) implement it, which lets the routers, the
// fault-avoiding engine, and the hbd service accept either backend.
//
// Order/AppendNeighbors make every Topology a graph.Graph, so the
// sampled estimators and verifiers run on implicit instances unchanged.
type Topology interface {
	// Structure.
	Order() int
	Degree() int
	M() int
	N() int
	ValidNode(v Node) bool
	AppendNeighbors(v int, buf []int) []int
	VertexLabel(v Node) string

	// Analytic claims (Theorems 2, 3 and Corollary 1).
	EdgeCountFormula() int
	DiameterFormula() int
	ConnectivityFormula() int

	// Routing (Remarks 5-6, Section 3).
	Distance(u, v Node) int
	Route(u, v Node) []Node
	AppendRoute(u, v Node, buf []Node) []Node
	RouteMoves(u, v Node) []Move

	// Theorem 5 vertex-disjoint paths.
	DisjointPaths(u, v Node) ([][]Node, error)
}

// Compile-time checks that both backends satisfy the interface.
var (
	_ Topology = (*HyperButterfly)(nil)
	_ Topology = (*Implicit)(nil)
)

// AppendRoute appends the shortest u-v path Route returns (both
// endpoints included) to buf, allocation-free when buf has capacity:
// the hypercube part is corrected lowest-dimension-first, then the
// butterfly walk is emitted segment-by-segment without materialising
// the move sequence. This is the routing primitive the hbd service and
// the giant-instance smoke tests run at HB(10,10) scale.
func (hb *HyperButterfly) AppendRoute(u, v Node, buf []Node) []Node {
	if !hb.ValidNode(u) || !hb.ValidNode(v) {
		panic(fmt.Sprintf("core: AppendRoute endpoints %d,%d out of range [0,%d)", u, v, hb.Order()))
	}
	hu, bu := hb.Decode(u)
	hv, bv := hb.Decode(v)
	buf = append(buf, u)
	h := hu
	for d := hu ^ hv; d != 0; d &= d - 1 {
		h ^= d & -d
		buf = append(buf, h*hb.bSize+bu)
	}
	if bu == bv {
		return buf
	}
	return hb.bf.AppendRouteTail(bu, bv, hv*hb.bSize, buf)
}

// Implicit is the pure label-arithmetic backend of HB(m,n). It shares
// every analytic operation with HyperButterfly (neighbors, distance,
// routing — all already graph-free) but replaces the one dense
// dependency, case 3 of the Theorem 5 disjoint-path construction, with
// a local-window Menger extraction (see implicit.go). The product graph
// is never materialised: only the two factors are consulted, and only
// the butterfly factor B_n (order n·2^n, i.e. the full instance divided
// by 2^m) is ever built densely, for its own 4 disjoint factor paths.
type Implicit struct {
	*HyperButterfly
}

// NewImplicit returns the implicit backend for HB(m,n).
func NewImplicit(m, n int) (*Implicit, error) {
	hb, err := New(m, n)
	if err != nil {
		return nil, err
	}
	return &Implicit{hb}, nil
}

// MustNewImplicit is NewImplicit for known-good dimensions.
func MustNewImplicit(m, n int) *Implicit {
	t, err := NewImplicit(m, n)
	if err != nil {
		panic(err)
	}
	return t
}

// ImplicitOf wraps an existing instance, sharing its factor caches.
func ImplicitOf(hb *HyperButterfly) *Implicit { return &Implicit{hb} }

// DisjointPaths returns m+4 pairwise internally vertex-disjoint u-v
// paths (Theorem 5) without touching the product adjacency: cases 1 and
// 2 reuse the analytic factor constructions, and case 3 runs an exact
// Menger extraction on a small induced window around the analytic
// candidate paths (implicit.go).
func (t *Implicit) DisjointPaths(u, v Node) ([][]Node, error) {
	hb := t.HyperButterfly
	if u == v {
		return nil, fmt.Errorf("core: DisjointPaths endpoints equal (%d)", u)
	}
	if !hb.ValidNode(u) || !hb.ValidNode(v) {
		return nil, fmt.Errorf("core: endpoints %d,%d out of range [0,%d)", u, v, hb.Order())
	}
	hu, bu := hb.Decode(u)
	hv, bv := hb.Decode(v)
	switch {
	case bu == bv:
		return hb.disjointCase1(hu, hv, bu)
	case hu == hv:
		return hb.disjointCase2(hu, bu, bv)
	default:
		return t.implicitCase3(u, v)
	}
}
