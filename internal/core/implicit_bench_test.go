package core_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestImplicitRouteSteadyStateAllocs is the zero-allocation acceptance
// gate for the implicit router (style of TestConnectivitySteadyStateAllocs):
// with a warmed buffer, AppendRoute over a rolling set of pairs must
// allocate nothing, on a small instance and on HB(10,10).
func TestImplicitRouteSteadyStateAllocs(t *testing.T) {
	for _, inst := range []struct{ m, n int }{{3, 3}, {10, 10}} {
		imp := core.MustNewImplicit(inst.m, inst.n)
		order := imp.Order()
		buf := make([]core.Node, 0, imp.DiameterFormula()+1)
		i := 0
		if got := testing.AllocsPerRun(200, func() {
			buf = imp.AppendRoute(i%order, (i*2654435761+7)%order, buf[:0])
			i++
		}); got != 0 {
			t.Errorf("HB(%d,%d): %v allocs per route, want 0", inst.m, inst.n, got)
		}
	}
}

// BenchmarkImplicitRoute measures the zero-alloc implicit router on
// HB(3,3); BenchmarkDenseRoute is the pre-existing allocating Route on
// the same instance, for the before/after ratio in EXPERIMENTS.md.
func BenchmarkImplicitRoute(b *testing.B) {
	imp := core.MustNewImplicit(3, 3)
	order := imp.Order()
	buf := make([]core.Node, 0, imp.DiameterFormula()+1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = imp.AppendRoute(i%order, (i*2654435761+7)%order, buf[:0])
	}
}

func BenchmarkDenseRoute(b *testing.B) {
	hb := core.MustNew(3, 3)
	order := hb.Order()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hb.Route(i%order, (i*2654435761+7)%order)
	}
}

// BenchmarkImplicitRouteGiant routes on HB(10,10) (~10.5M vertices) —
// impossible for any dense engine in this container — from labels alone.
func BenchmarkImplicitRouteGiant(b *testing.B) {
	imp := core.MustNewImplicit(10, 10)
	order := imp.Order()
	buf := make([]core.Node, 0, imp.DiameterFormula()+1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = imp.AppendRoute(i%order, (i*2654435761+7)%order, buf[:0])
	}
}

// TestGiantInstanceRouteSmoke is the giant-instance acceptance check:
// construct HB(10,10) (order 10,485,760), route 1000 random pairs, and
// verify every route by label arithmetic — all in well under the 100ms
// budget, with no graph construction anywhere on the path.
func TestGiantInstanceRouteSmoke(t *testing.T) {
	imp := core.MustNewImplicit(10, 10)
	if got := imp.Order(); got != 10*1<<20 {
		t.Fatalf("HB(10,10) order %d, want %d", got, 10*1<<20)
	}
	rng := rand.New(rand.NewSource(1))
	buf := make([]core.Node, 0, imp.DiameterFormula()+1)
	var nbuf []int
	start := time.Now()
	for i := 0; i < 1000; i++ {
		u, v := rng.Intn(imp.Order()), rng.Intn(imp.Order())
		buf = imp.AppendRoute(u, v, buf[:0])
		if len(buf) != imp.Distance(u, v)+1 {
			t.Fatalf("route %d..%d has %d vertices, want %d", u, v, len(buf), imp.Distance(u, v)+1)
		}
		for j := 1; j < len(buf); j++ {
			nbuf = imp.AppendNeighbors(buf[j-1], nbuf[:0])
			ok := false
			for _, w := range nbuf {
				if w == buf[j] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("route %d..%d uses non-edge %d-%d", u, v, buf[j-1], buf[j])
			}
		}
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("1000 verified routes on HB(10,10) took %v, want <100ms", elapsed)
	}
}

// TestGiantInstanceDisjointPathsSmoke exercises the case-3 window
// engine at HB(10,10) scale: all 14 Theorem 5 paths between two fully
// differing labels, verified against implicit adjacency.
func TestGiantInstanceDisjointPathsSmoke(t *testing.T) {
	imp := core.MustNewImplicit(10, 10)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3; i++ {
		u, v := rng.Intn(imp.Order()), rng.Intn(imp.Order())
		if u == v {
			continue
		}
		paths, err := imp.DisjointPaths(u, v)
		if err != nil {
			t.Fatalf("DisjointPaths(%d,%d): %v", u, v, err)
		}
		if len(paths) != imp.ConnectivityFormula() {
			t.Fatalf("DisjointPaths(%d,%d): %d paths, want %d", u, v, len(paths), imp.ConnectivityFormula())
		}
		if err := graph.VerifyDisjointPaths(imp, u, v, paths); err != nil {
			t.Fatalf("pair (%d,%d): %v", u, v, err)
		}
	}
}
