package core

import (
	"fmt"
	"runtime"
	"sync"
)

// Batch routing kernel.
//
// The hbd /batch endpoint amortises per-request serving overhead over
// thousands of (src, dst) pairs, which only pays off if the per-pair
// cost underneath is the bare label arithmetic. RouteBatch is that
// kernel: it answers every pair of a request into caller-provided
// reusable column storage — a status column, a distance column, and for
// routes a single contiguous node arena addressed by a prefix-summed
// offset column — with zero steady-state allocations per pair on both
// the dense and implicit backends.
//
// The route pass exploits a Theorem 3 invariant: the route emitted by
// AppendRoute is optimal, so its node count is exactly Distance(u,v)+1.
// That turns batch routing into two embarrassingly parallel passes with
// no synchronisation on the arena: pass one computes all distances,
// a serial prefix sum sizes the arena and assigns every pair a disjoint
// segment, and pass two appends each route into its own full-capacity
// segment. The offset column doubles as the columnar wire format the
// /batch codecs emit, so the kernel output is encoded without copying.

// Per-pair status codes. They are wire-format values (the /batch
// protocol echoes them verbatim), so they are stable small integers.
const (
	// BatchOK marks a pair that was answered.
	BatchOK uint8 = 0
	// BatchBadNode marks a pair with an out-of-range endpoint.
	BatchBadNode uint8 = 1
	// BatchFailed marks a pair the operation could not answer (a faulty
	// or disconnected endpoint under faults, equal endpoints for
	// disjoint paths). RouteBatch itself never emits it; the composed
	// operations in hbserve do.
	BatchFailed uint8 = 2
)

// BatchOp selects what RouteBatch computes per pair.
type BatchOp uint8

const (
	// BatchDist fills only the status and distance columns.
	BatchDist BatchOp = iota
	// BatchRoute additionally materialises every route into the arena.
	BatchRoute
)

// BatchScratch is the reusable column storage of one batch call. All
// slices grow amortised and are overwritten in place on reuse, so a
// pooled scratch reaches zero allocations per pair in steady state.
// After RouteBatch returns, pair i's answer is Status[i], Dist[i] and —
// for BatchRoute with Status[i] == BatchOK — the node segment
// Nodes[Off[i]:Off[i+1]].
type BatchScratch struct {
	Status []uint8
	Dist   []int32
	Off    []int32 // len(pairs)+1 after BatchRoute; prefix sums into Nodes
	Nodes  []Node  // route arena; segments are disjoint per pair
}

// batchChunkMin is the smallest per-worker slice of a batch worth a
// goroutine: below it the spawn overhead exceeds the label arithmetic.
const batchChunkMin = 256

// batchWorkers clamps a requested worker count to the batch size.
func batchWorkers(workers, pairs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if limit := pairs / batchChunkMin; workers > limit {
		workers = limit
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// RouteBatch answers op for every pair (src[i], dst[i]) into bs,
// reusing its storage. workers bounds the fan-out (<= 0 means
// GOMAXPROCS); batches too small to shard run on the calling goroutine
// with no allocation at all. Invalid endpoints get BatchBadNode with
// Dist -1 and an empty route segment; they never abort the batch.
func RouteBatch(t Topology, op BatchOp, src, dst []Node, workers int, bs *BatchScratch) error {
	if len(src) != len(dst) {
		return fmt.Errorf("core: batch columns disagree: %d src, %d dst", len(src), len(dst))
	}
	pairs := len(src)
	bs.Status = growByte(bs.Status, pairs)
	bs.Dist = growInt32(bs.Dist, pairs)
	workers = batchWorkers(workers, pairs)

	if workers == 1 {
		batchDistRange(t, src, dst, bs, 0, pairs)
	} else {
		shardRange(workers, pairs, func(lo, hi int) {
			batchDistRange(t, src, dst, bs, lo, hi)
		})
	}
	if op == BatchDist {
		bs.Off = bs.Off[:0]
		bs.Nodes = bs.Nodes[:0]
		return nil
	}

	// Prefix-sum the route lengths (Distance+1 nodes per answered pair)
	// into disjoint arena segments.
	bs.Off = growInt32(bs.Off, pairs+1)
	total := int32(0)
	bs.Off[0] = 0
	for i := 0; i < pairs; i++ {
		if bs.Status[i] == BatchOK {
			total += bs.Dist[i] + 1
		}
		bs.Off[i+1] = total
	}
	bs.Nodes = growNode(bs.Nodes, int(total))

	if workers == 1 {
		batchRouteRange(t, src, dst, bs, 0, pairs)
	} else {
		shardRange(workers, pairs, func(lo, hi int) {
			batchRouteRange(t, src, dst, bs, lo, hi)
		})
	}
	return nil
}

// batchDistRange fills the status and distance columns for [lo, hi).
func batchDistRange(t Topology, src, dst []Node, bs *BatchScratch, lo, hi int) {
	for i := lo; i < hi; i++ {
		u, v := src[i], dst[i]
		if !t.ValidNode(u) || !t.ValidNode(v) {
			bs.Status[i] = BatchBadNode
			bs.Dist[i] = -1
			continue
		}
		bs.Status[i] = BatchOK
		bs.Dist[i] = int32(t.Distance(u, v))
	}
}

// batchRouteRange appends each answered route of [lo, hi) into its
// pre-sized arena segment. The three-index slice pins the segment
// capacity, so AppendRoute writes in place and any length disagreement
// with the distance column is a core invariant violation, not a quiet
// overrun into the neighbouring pair.
func batchRouteRange(t Topology, src, dst []Node, bs *BatchScratch, lo, hi int) {
	for i := lo; i < hi; i++ {
		if bs.Status[i] != BatchOK {
			continue
		}
		start, end := bs.Off[i], bs.Off[i+1]
		out := t.AppendRoute(src[i], dst[i], bs.Nodes[start:start:end])
		if int32(len(out)) != end-start {
			panic(fmt.Sprintf("core: route %d->%d has %d nodes, distance column promised %d",
				src[i], dst[i], len(out), end-start))
		}
	}
}

// shardRange runs f over contiguous chunks of [0, n) on workers
// goroutines and waits for all of them.
func shardRange(workers, n int, f func(lo, hi int)) {
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func growByte(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growNode(s []Node, n int) []Node {
	if cap(s) < n {
		return make([]Node, n)
	}
	return s[:n]
}
