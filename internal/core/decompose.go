package core

// Decompositions of Remark 5: HB(m,n) splits into n·2^n disjoint copies
// of H_m (one per butterfly-part label) and into 2^m disjoint copies of
// B_n (one per hypercube-part label). These node enumerations back the
// partitionability experiments and the Theorem 5 path construction.

// SubHypercube returns the 2^m nodes sharing the butterfly-part label b,
// indexed so that element h is the node (h; b): the sub-hypercube
// (H_m, b).
func (hb *HyperButterfly) SubHypercube(b int) []Node {
	nodes := make([]Node, hb.cube.Order())
	for h := range nodes {
		nodes[h] = hb.Encode(h, b)
	}
	return nodes
}

// SubButterfly returns the n·2^n nodes sharing the hypercube-part label
// h, indexed so that element b is the node (h; b): the sub-butterfly
// (h, B_n).
func (hb *HyperButterfly) SubButterfly(h int) []Node {
	nodes := make([]Node, hb.bSize)
	for b := range nodes {
		nodes[b] = hb.Encode(h, b)
	}
	return nodes
}

// HypercubePartition returns all n·2^n sub-hypercubes; together they
// partition the node set (Remark 5).
func (hb *HyperButterfly) HypercubePartition() [][]Node {
	parts := make([][]Node, hb.bSize)
	for b := range parts {
		parts[b] = hb.SubHypercube(b)
	}
	return parts
}

// ButterflyPartition returns all 2^m sub-butterflies; together they
// partition the node set (Remark 5).
func (hb *HyperButterfly) ButterflyPartition() [][]Node {
	parts := make([][]Node, hb.cube.Order())
	for h := range parts {
		parts[h] = hb.SubButterfly(h)
	}
	return parts
}
