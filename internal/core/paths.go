package core

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// Theorem 5: between any two nodes of HB(m,n) there exist m+4 pairwise
// internally vertex-disjoint paths, hence vertex connectivity m+4
// (Corollary 1) and maximal fault tolerance.
//
// Cases 1 and 2 of the paper's constructive proof are implemented
// verbatim — their disjointness argument is airtight because the two
// path families live in different sub-hypercubes/sub-butterflies. In
// case 3 (both label parts differ) the paper asserts disjointness of the
// naive two-phase paths, but with shared phase routes the m-family and
// 4-family necessarily collide where the first hypercube step of one
// family meets the first butterfly step of the other (every cube route
// out of h passes a neighbor (h^(i), ·) and every butterfly route out of
// b passes a neighbor (·, b^(j)), so the corner (h^(i), b^(j)) is hit
// twice). We therefore realise case 3 by exact Menger extraction from a
// unit-capacity max-flow, which yields the same m+4 count with a
// correctness guarantee; the substitution is recorded in DESIGN.md.

var denseCaches sync.Map // *HyperButterfly -> *denseCache

type denseCache struct {
	once sync.Once
	d    *graph.Dense
}

// Dense returns the materialised adjacency of hb, building and caching
// it on first use. Safe for concurrent use.
func (hb *HyperButterfly) Dense() *graph.Dense {
	ci, _ := denseCaches.LoadOrStore(hb, &denseCache{})
	c := ci.(*denseCache)
	c.once.Do(func() { c.d = graph.Build(hb) })
	return c.d
}

// DisjointPaths returns m+4 pairwise internally vertex-disjoint paths
// from u to v (Theorem 5). Every returned path set is checkable with
// graph.VerifyDisjointPaths; tests do so for thousands of pairs.
func (hb *HyperButterfly) DisjointPaths(u, v Node) ([][]Node, error) {
	if u == v {
		return nil, fmt.Errorf("core: DisjointPaths endpoints equal (%d)", u)
	}
	if u < 0 || u >= hb.Order() || v < 0 || v >= hb.Order() {
		return nil, fmt.Errorf("core: endpoints %d,%d out of range [0,%d)", u, v, hb.Order())
	}
	hu, bu := hb.Decode(u)
	hv, bv := hb.Decode(v)
	switch {
	case bu == bv:
		return hb.disjointCase1(hu, hv, bu)
	case hu == hv:
		return hb.disjointCase2(hu, bu, bv)
	default:
		return hb.disjointCase3(u, v)
	}
}

// disjointCase1 handles h != h', b = b' (Case 1 of Theorem 5):
//   - m paths inside the sub-hypercube (H_m, b);
//   - 4 paths that each step to a butterfly neighbor b^(j), cross the
//     sub-hypercube (H_m, b^(j)), and step back.
//
// The m hypercube paths stay at butterfly label b; each of the 4 detour
// paths keeps a distinct interior label b^(j) != b, so all m+4 are
// internally disjoint. Path lengths: at most dist+2 for the first family
// (Saad–Schultz) and dist+2 for the second, matching the bounds quoted
// in the proof.
func (hb *HyperButterfly) disjointCase1(hu, hv, b int) ([][]Node, error) {
	paths := make([][]Node, 0, hb.m+4)
	cubePaths, err := hb.cube.DisjointPaths(hu, hv)
	if err != nil {
		return nil, fmt.Errorf("core: case 1: %w", err)
	}
	for _, cp := range cubePaths {
		paths = append(paths, hb.liftCubePath(cp, b))
	}
	var nbuf []int
	nbuf = hb.bf.AppendNeighbors(b, nbuf)
	for _, bj := range nbuf {
		path := []Node{hb.Encode(hu, b)}
		for _, x := range hb.cube.Route(hu, hv) {
			path = append(path, hb.Encode(x, bj))
		}
		path = append(path, hb.Encode(hv, b))
		paths = append(paths, path)
	}
	return paths, nil
}

// disjointCase2 handles h = h', b != b' (Case 2 of Theorem 5):
//   - 4 paths inside the sub-butterfly (h, B_n);
//   - m paths that each step to a hypercube neighbor h^(i), cross the
//     sub-butterfly (h^(i), B_n), and step back.
func (hb *HyperButterfly) disjointCase2(h, bu, bv int) ([][]Node, error) {
	paths := make([][]Node, 0, hb.m+4)
	bfPaths, err := hb.bf.DisjointPaths(bu, bv)
	if err != nil {
		return nil, fmt.Errorf("core: case 2: %w", err)
	}
	for _, bp := range bfPaths {
		paths = append(paths, hb.liftButterflyPath(h, bp))
	}
	for i := 0; i < hb.m; i++ {
		hi := h ^ (1 << uint(i))
		path := []Node{hb.Encode(h, bu)}
		for _, y := range hb.bf.Route(bu, bv) {
			path = append(path, hb.Encode(hi, y))
		}
		path = append(path, hb.Encode(h, bv))
		paths = append(paths, path)
	}
	return paths, nil
}

// disjointCase3 handles the general case via exact Menger extraction
// (see the file comment for why the paper's sketch is not implemented
// literally).
func (hb *HyperButterfly) disjointCase3(u, v Node) ([][]Node, error) {
	want := hb.m + 4
	paths, err := graph.DisjointPaths(hb.Dense(), u, v, want)
	if err != nil {
		return nil, fmt.Errorf("core: case 3: %w", err)
	}
	if len(paths) != want {
		return nil, fmt.Errorf("core: case 3: found %d disjoint paths between %d and %d, want %d",
			len(paths), u, v, want)
	}
	return paths, nil
}

// liftCubePath maps a hypercube path into HB at a fixed butterfly label.
func (hb *HyperButterfly) liftCubePath(cp []int, b int) []Node {
	out := make([]Node, len(cp))
	for i, h := range cp {
		out[i] = hb.Encode(h, b)
	}
	return out
}

// liftButterflyPath maps a butterfly path into HB at a fixed hypercube
// label.
func (hb *HyperButterfly) liftButterflyPath(h int, bp []int) []Node {
	out := make([]Node, len(bp))
	for i, b := range bp {
		out[i] = hb.Encode(h, b)
	}
	return out
}

// Fan returns vertex-disjoint paths from src to each of the targets
// (disjoint except at src) — the node-to-set disjoint path problem, the
// one-to-many strengthening of Theorem 5 enabled by connectivity m+4:
// any set of at most m+4 targets admits a fan (Menger's fan lemma).
func (hb *HyperButterfly) Fan(src Node, targets []Node) ([][]Node, error) {
	if len(targets) > hb.Degree() {
		return nil, fmt.Errorf("core: fan of %d targets exceeds connectivity %d", len(targets), hb.Degree())
	}
	if src < 0 || src >= hb.Order() {
		return nil, fmt.Errorf("core: fan source %d out of range [0,%d)", src, hb.Order())
	}
	return graph.NodeToSetDisjointPaths(hb.Dense(), src, targets)
}
