package core_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// The implicit-vs-dense differential suite: on every conformance (m,n)
// the label-arithmetic backend must agree exactly with the materialised
// adjacency and its BFS oracle — neighbors as sorted multisets, Distance
// against BFS over all (sampled under -short) pairs, AppendRoute as a
// valid shortest walk, and DisjointPaths as a verified Theorem 5
// certificate of the same cardinality the dense Menger engine produces.

var diffInstances = []struct{ m, n int }{
	{0, 3}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 3}, {1, 5}, {3, 4},
}

func TestImplicitNeighborsMatchDense(t *testing.T) {
	for _, inst := range diffInstances {
		imp := core.MustNewImplicit(inst.m, inst.n)
		d := graph.Build(imp.HyperButterfly)
		var buf []int
		for v := 0; v < imp.Order(); v++ {
			buf = imp.AppendNeighbors(v, buf[:0])
			sort.Ints(buf)
			row := d.Neighbors(v)
			if len(buf) != len(row) {
				t.Fatalf("HB(%d,%d) vertex %d: %d implicit neighbors, dense has %d",
					inst.m, inst.n, v, len(buf), len(row))
			}
			for i, w := range row {
				if buf[i] != int(w) {
					t.Fatalf("HB(%d,%d) vertex %d: implicit row %v != dense %v",
						inst.m, inst.n, v, buf, row)
				}
			}
		}
	}
}

func TestImplicitDistanceRouteMatchBFS(t *testing.T) {
	for _, inst := range diffInstances {
		imp := core.MustNewImplicit(inst.m, inst.n)
		d := graph.Build(imp.HyperButterfly)
		order := imp.Order()
		s := graph.NewScratch(order)
		sources := order
		if testing.Short() {
			sources = 32
		}
		rng := rand.New(rand.NewSource(int64(inst.m)<<8 | int64(inst.n)))
		var route []core.Node
		for si := 0; si < sources; si++ {
			u := si
			if testing.Short() {
				u = rng.Intn(order)
			}
			dist := d.BFSScratch(u, nil, s)
			for v := 0; v < order; v++ {
				want := int(dist[v])
				if got := imp.Distance(u, v); got != want {
					t.Fatalf("HB(%d,%d) Distance(%d,%d) = %d, BFS says %d",
						inst.m, inst.n, u, v, got, want)
				}
				route = imp.AppendRoute(u, v, route[:0])
				if len(route) != want+1 {
					t.Fatalf("HB(%d,%d) AppendRoute(%d,%d) has %d vertices, want %d",
						inst.m, inst.n, u, v, len(route), want+1)
				}
				if route[0] != u || route[len(route)-1] != v {
					t.Fatalf("HB(%d,%d) AppendRoute(%d,%d) runs %d..%d",
						inst.m, inst.n, u, v, route[0], route[len(route)-1])
				}
				for i := 1; i < len(route); i++ {
					if !d.HasEdge(route[i-1], route[i]) {
						t.Fatalf("HB(%d,%d) AppendRoute(%d,%d) uses non-edge %d-%d",
							inst.m, inst.n, u, v, route[i-1], route[i])
					}
				}
			}
		}
	}
}

// TestImplicitRouteMatchesDenseRoute pins AppendRoute to the exact path
// the existing allocating Route emits, so the zero-alloc rewrite cannot
// silently change served responses.
func TestImplicitRouteMatchesDenseRoute(t *testing.T) {
	for _, inst := range diffInstances {
		imp := core.MustNewImplicit(inst.m, inst.n)
		order := imp.Order()
		rng := rand.New(rand.NewSource(42))
		pairs := 2000
		if testing.Short() {
			pairs = 200
		}
		var route []core.Node
		for i := 0; i < pairs; i++ {
			u, v := rng.Intn(order), rng.Intn(order)
			want := imp.HyperButterfly.Route(u, v)
			route = imp.AppendRoute(u, v, route[:0])
			if len(route) != len(want) {
				t.Fatalf("HB(%d,%d) AppendRoute(%d,%d) len %d, Route len %d",
					inst.m, inst.n, u, v, len(route), len(want))
			}
			for j := range want {
				if route[j] != want[j] {
					t.Fatalf("HB(%d,%d) AppendRoute(%d,%d) = %v, Route = %v",
						inst.m, inst.n, u, v, route, want)
				}
			}
		}
	}
}

func TestImplicitDisjointPathsMatchDense(t *testing.T) {
	for _, inst := range diffInstances {
		imp := core.MustNewImplicit(inst.m, inst.n)
		order := imp.Order()
		want := imp.ConnectivityFormula()
		rng := rand.New(rand.NewSource(int64(inst.m)*31 + int64(inst.n)))
		pairs := 120
		if testing.Short() {
			pairs = 24
		}
		for i := 0; i < pairs; i++ {
			u := rng.Intn(order)
			v := rng.Intn(order)
			if u == v {
				continue
			}
			paths, err := imp.DisjointPaths(u, v)
			if err != nil {
				t.Fatalf("HB(%d,%d) implicit DisjointPaths(%d,%d): %v", inst.m, inst.n, u, v, err)
			}
			if len(paths) != want {
				t.Fatalf("HB(%d,%d) implicit DisjointPaths(%d,%d): %d paths, want %d",
					inst.m, inst.n, u, v, len(paths), want)
			}
			if err := graph.VerifyDisjointPaths(imp, u, v, paths); err != nil {
				t.Fatalf("HB(%d,%d) pair (%d,%d): %v", inst.m, inst.n, u, v, err)
			}
			dense, err := imp.HyperButterfly.DisjointPaths(u, v)
			if err != nil {
				t.Fatalf("HB(%d,%d) dense DisjointPaths(%d,%d): %v", inst.m, inst.n, u, v, err)
			}
			if len(dense) != len(paths) {
				t.Fatalf("HB(%d,%d) pair (%d,%d): implicit %d paths, dense %d",
					inst.m, inst.n, u, v, len(paths), len(dense))
			}
		}
	}
}
