// Package snapshot is the versioned binary format for precomputed
// HB(m,n) artifacts: the all-pairs distance histogram, per-node
// eccentricities, and the Theorem 5 disjoint-path table from the
// representative node 0 (HB is vertex-transitive, so one source column
// characterises the family). hbtables -snapshot computes them once with
// the sweep engines; hbd mmap-loads the file at startup and answers
// /estimate-class queries for covered instances as O(1) lookups instead
// of per-request sweeps.
//
// The format is little-endian throughout and gated three ways on load:
// a magic number, an explicit version, and a trailing CRC-64/ECMA over
// every preceding byte. Loading prefers mmap (the kernel pages the
// tables in on demand and shares them across processes) with a plain
// read fallback, so a snapshot behaves identically on platforms or
// filesystems where mapping fails.
//
// Layout (offsets in bytes):
//
//	0   u32  magic "HBSP"
//	4   u32  version (currently 1)
//	8   u32  m
//	12  u32  n
//	16  u64  order
//	24  u32  diameter
//	28  u32  histLen
//	32  u64  pathBytes (size of the path blob)
//	40  u64  reserved (0)
//	48  i64[histLen]   hist: ordered (src,dst) pairs per distance,
//	                   self pairs included (hist[0] == order)
//	    u16[order]     ecc: per-node eccentricity
//	    u32[order+1]   pathIndex: byte offsets into the path blob
//	    [pathBytes]    path blob; node v's region holds
//	                   u16 count, then per path u16 len, u32 nodes[len]
//	end-8 u64 crc64(file[0 : end-8])
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"os"

	"repro/internal/core"
)

const (
	// Magic identifies a snapshot file ("HBSP" little-endian).
	Magic uint32 = 0x50534248
	// Version is the current format version; readers reject all others.
	Version uint32 = 1
	// MaxOrder bounds Build: the path table holds order-1 disjoint-path
	// bundles, so snapshots are for instances small enough to precompute
	// exhaustively.
	MaxOrder = 1 << 12
	// FileSuffix is the conventional artifact extension; hbtables writes
	// it and hbd's -snapshotdir scan selects by it.
	FileSuffix = ".hbsnap"

	headerSize = 48
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Snapshot is one loaded (or freshly built) precomputed-artifact set.
// The eccentricity and path tables stay in their wire encoding and are
// decoded per access, so a mapped snapshot costs no decode time or heap
// at load beyond the small histogram.
type Snapshot struct {
	M, N     int
	Order    int
	Diameter int
	// Hist[d] counts ordered (src, dst) pairs at distance d, self pairs
	// included, summing to Order².
	Hist []int64

	ecc       []byte // u16 per node
	pathIndex []byte // u32 per node, order+1 entries
	pathBlob  []byte

	data   []byte // whole-file backing (mmap or heap)
	mapped bool
}

// Build computes a snapshot live from hb: one bit-parallel all-sources
// sweep for the histogram and eccentricities, and one DisjointPaths
// call per target for the node-0 path table. workers <= 0 means
// GOMAXPROCS.
func Build(hb *core.HyperButterfly, workers int) (*Snapshot, error) {
	order := hb.Order()
	if order > MaxOrder {
		return nil, fmt.Errorf("snapshot: HB(%d,%d) has %d nodes, over the snapshot cap %d",
			hb.M(), hb.N(), order, MaxOrder)
	}
	sweep := hb.Dense().AllSourcesBits(nil, workers)
	if !sweep.Complete {
		return nil, fmt.Errorf("snapshot: HB(%d,%d) sweep incomplete: %d does not reach %d",
			hb.M(), hb.N(), sweep.MissingSrc, sweep.MissingDst)
	}
	s := &Snapshot{
		M:     hb.M(),
		N:     hb.N(),
		Order: order,
		Hist:  append([]int64(nil), sweep.Hist...),
	}
	s.ecc = make([]byte, 2*order)
	for v, e := range sweep.Ecc {
		if int(e) > s.Diameter {
			s.Diameter = int(e)
		}
		binary.LittleEndian.PutUint16(s.ecc[2*v:], uint16(e))
	}

	s.pathIndex = make([]byte, 4*(order+1))
	var blob []byte
	for v := 1; v < order; v++ {
		binary.LittleEndian.PutUint32(s.pathIndex[4*v:], uint32(len(blob)))
		paths, err := hb.DisjointPaths(0, v)
		if err != nil {
			return nil, fmt.Errorf("snapshot: disjoint paths 0->%d: %w", v, err)
		}
		blob = binary.LittleEndian.AppendUint16(blob, uint16(len(paths)))
		for _, p := range paths {
			blob = binary.LittleEndian.AppendUint16(blob, uint16(len(p)))
			for _, node := range p {
				blob = binary.LittleEndian.AppendUint32(blob, uint32(node))
			}
		}
	}
	binary.LittleEndian.PutUint32(s.pathIndex[4*order:], uint32(len(blob)))
	// Node 0's region is empty by construction: pathIndex[0] and
	// pathIndex[1] are both 0.
	s.pathBlob = blob
	return s, nil
}

// Encode renders the snapshot in wire format, checksum included.
func (s *Snapshot) Encode() []byte {
	size := headerSize + 8*len(s.Hist) + len(s.ecc) + len(s.pathIndex) + len(s.pathBlob) + 8
	out := make([]byte, headerSize, size)
	le := binary.LittleEndian
	le.PutUint32(out[0:], Magic)
	le.PutUint32(out[4:], Version)
	le.PutUint32(out[8:], uint32(s.M))
	le.PutUint32(out[12:], uint32(s.N))
	le.PutUint64(out[16:], uint64(s.Order))
	le.PutUint32(out[24:], uint32(s.Diameter))
	le.PutUint32(out[28:], uint32(len(s.Hist)))
	le.PutUint64(out[32:], uint64(len(s.pathBlob)))
	for _, h := range s.Hist {
		out = le.AppendUint64(out, uint64(h))
	}
	out = append(out, s.ecc...)
	out = append(out, s.pathIndex...)
	out = append(out, s.pathBlob...)
	return le.AppendUint64(out, crc64.Checksum(out, crcTable))
}

// WriteFile writes the encoded snapshot to path.
func (s *Snapshot) WriteFile(path string) error {
	return os.WriteFile(path, s.Encode(), 0o644)
}

// Load opens a snapshot file, mapping it read-only when the platform
// allows and falling back to a plain read otherwise. Close releases the
// mapping.
func Load(path string) (*Snapshot, error) {
	data, mapped, err := readFileMapped(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	s, err := Decode(data)
	if err != nil {
		if mapped {
			unmapFile(data)
		}
		return nil, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	s.data = data
	s.mapped = mapped
	return s, nil
}

// Close releases a mapped snapshot's pages; it is a no-op for
// heap-backed ones. The snapshot must not be used afterwards.
func (s *Snapshot) Close() error {
	if !s.mapped {
		return nil
	}
	s.mapped = false
	data := s.data
	s.data, s.ecc, s.pathIndex, s.pathBlob = nil, nil, nil, nil
	return unmapFile(data)
}

// Mapped reports whether the snapshot is served from an mmap rather
// than heap memory.
func (s *Snapshot) Mapped() bool { return s.mapped }

// Decode validates data (magic, version, section bounds, checksum) and
// returns a snapshot whose tables alias data — the caller keeps data
// alive for the snapshot's lifetime.
func Decode(data []byte) (*Snapshot, error) {
	le := binary.LittleEndian
	if len(data) < headerSize+8 {
		return nil, fmt.Errorf("truncated: %d bytes, header needs %d", len(data), headerSize+8)
	}
	if m := le.Uint32(data[0:]); m != Magic {
		return nil, fmt.Errorf("bad magic %#x, want %#x", m, Magic)
	}
	if v := le.Uint32(data[4:]); v != Version {
		return nil, fmt.Errorf("unsupported version %d, want %d", v, Version)
	}
	body, sum := data[:len(data)-8], le.Uint64(data[len(data)-8:])
	if got := crc64.Checksum(body, crcTable); got != sum {
		return nil, fmt.Errorf("checksum mismatch: file says %#x, content is %#x", sum, got)
	}
	s := &Snapshot{
		M:        int(le.Uint32(data[8:])),
		N:        int(le.Uint32(data[12:])),
		Order:    int(le.Uint64(data[16:])),
		Diameter: int(le.Uint32(data[24:])),
	}
	histLen := int(le.Uint32(data[28:]))
	pathBytes := int(le.Uint64(data[32:]))
	if s.Order <= 0 || histLen < 0 || pathBytes < 0 {
		return nil, fmt.Errorf("implausible header: order %d histLen %d pathBytes %d", s.Order, histLen, pathBytes)
	}
	want := headerSize + 8*histLen + 2*s.Order + 4*(s.Order+1) + pathBytes + 8
	if len(data) != want {
		return nil, fmt.Errorf("truncated: %d bytes, sections need %d", len(data), want)
	}
	off := headerSize
	s.Hist = make([]int64, histLen)
	for i := range s.Hist {
		s.Hist[i] = int64(le.Uint64(data[off:]))
		off += 8
	}
	s.ecc = data[off : off+2*s.Order]
	off += 2 * s.Order
	s.pathIndex = data[off : off+4*(s.Order+1)]
	off += 4 * (s.Order + 1)
	s.pathBlob = data[off : off+pathBytes]
	return s, nil
}

// Eccentricity returns node v's precomputed eccentricity.
func (s *Snapshot) Eccentricity(v int) int {
	return int(binary.LittleEndian.Uint16(s.ecc[2*v:]))
}

// EccentricityRange returns the smallest and largest eccentricity (the
// radius and diameter).
func (s *Snapshot) EccentricityRange() (min, max int) {
	min = s.Eccentricity(0)
	max = min
	for v := 1; v < s.Order; v++ {
		e := s.Eccentricity(v)
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	return min, max
}

// MeanDistance returns the mean over ordered pairs of distinct nodes.
func (s *Snapshot) MeanDistance() float64 {
	var sum, pairs int64
	for d, c := range s.Hist {
		if d == 0 {
			continue
		}
		sum += int64(d) * c
		pairs += c
	}
	if pairs == 0 {
		return 0
	}
	return float64(sum) / float64(pairs)
}

// Fractions returns the fraction of ordered distinct pairs at each
// distance; index 0 is always 0.
func (s *Snapshot) Fractions() []float64 {
	out := make([]float64, len(s.Hist))
	pairs := int64(s.Order)*int64(s.Order) - int64(s.Order)
	if pairs == 0 {
		return out
	}
	for d, c := range s.Hist {
		if d == 0 {
			continue
		}
		out[d] = float64(c) / float64(pairs)
	}
	return out
}

// DisjointPaths decodes the precomputed Theorem 5 path bundle from node
// 0 to v.
func (s *Snapshot) DisjointPaths(v int) ([][]int, error) {
	if v <= 0 || v >= s.Order {
		return nil, fmt.Errorf("snapshot: path table covers targets [1,%d), got %d", s.Order, v)
	}
	le := binary.LittleEndian
	lo := int(le.Uint32(s.pathIndex[4*v:]))
	hi := int(le.Uint32(s.pathIndex[4*(v+1):]))
	if lo > hi || hi > len(s.pathBlob) {
		return nil, fmt.Errorf("snapshot: corrupt path index for node %d: [%d,%d) of %d", v, lo, hi, len(s.pathBlob))
	}
	region := s.pathBlob[lo:hi]
	if len(region) < 2 {
		return nil, fmt.Errorf("snapshot: empty path region for node %d", v)
	}
	count := int(le.Uint16(region))
	off := 2
	paths := make([][]int, 0, count)
	for p := 0; p < count; p++ {
		if off+2 > len(region) {
			return nil, fmt.Errorf("snapshot: corrupt path region for node %d", v)
		}
		plen := int(le.Uint16(region[off:]))
		off += 2
		if off+4*plen > len(region) {
			return nil, fmt.Errorf("snapshot: corrupt path region for node %d", v)
		}
		path := make([]int, plen)
		for i := range path {
			path[i] = int(le.Uint32(region[off:]))
			off += 4
		}
		paths = append(paths, path)
	}
	if off != len(region) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes in path region for node %d", len(region)-off, v)
	}
	return paths, nil
}
