package snapshot_test

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/snapshot"
)

// TestRoundTrip is the snapshot differential gate: build live, write,
// mmap-load, and every query against the loaded snapshot must equal the
// live computation on HB(2,3) and HB(3,3).
func TestRoundTrip(t *testing.T) {
	for _, dims := range []struct{ m, n int }{{2, 3}, {3, 3}} {
		hb := core.MustNew(dims.m, dims.n)
		built, err := snapshot.Build(hb, 0)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "snap.hbsnap")
		if err := built.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := snapshot.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		defer loaded.Close()

		if loaded.M != dims.m || loaded.N != dims.n || loaded.Order != hb.Order() {
			t.Fatalf("HB(%d,%d): loaded identity %d/%d/%d", dims.m, dims.n, loaded.M, loaded.N, loaded.Order)
		}
		// Histogram against the independent sweep entry point.
		liveHist := graph.DistanceHistogram(hb)
		if !reflect.DeepEqual(loaded.Hist, liveHist) {
			t.Errorf("HB(%d,%d): hist %v, live %v", dims.m, dims.n, loaded.Hist, liveHist)
		}
		// Eccentricities per node against single-source BFS.
		for _, v := range []int{0, 1, hb.Order() / 2, hb.Order() - 1} {
			liveEcc, connected := graph.Eccentricity(hb, v)
			if !connected {
				t.Fatalf("HB(%d,%d) disconnected at %d", dims.m, dims.n, v)
			}
			if got := loaded.Eccentricity(v); got != liveEcc {
				t.Errorf("HB(%d,%d): ecc(%d) = %d, live %d", dims.m, dims.n, v, got, liveEcc)
			}
		}
		if lo, hi := loaded.EccentricityRange(); hi != loaded.Diameter || lo > hi {
			t.Errorf("ecc range [%d,%d] vs diameter %d", lo, hi, loaded.Diameter)
		}
		// Path table: byte-for-byte the live construction, and
		// independently certified as disjoint shortest-bounded paths.
		for v := 1; v < hb.Order(); v++ {
			got, err := loaded.DisjointPaths(v)
			if err != nil {
				t.Fatalf("HB(%d,%d): paths(%d): %v", dims.m, dims.n, v, err)
			}
			want, err := hb.DisjointPaths(0, v)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("HB(%d,%d): paths(%d) diverge from live compute", dims.m, dims.n, v)
			}
			if err := graph.VerifyDisjointPaths(hb, 0, v, got); err != nil {
				t.Fatalf("HB(%d,%d): paths(%d) fail verification: %v", dims.m, dims.n, v, err)
			}
		}
		if loaded.MeanDistance() <= 0 || loaded.MeanDistance() > float64(loaded.Diameter) {
			t.Errorf("mean distance %v outside (0,%d]", loaded.MeanDistance(), loaded.Diameter)
		}
		fr := loaded.Fractions()
		sum := 0.0
		for _, f := range fr {
			sum += f
		}
		if fr[0] != 0 || sum < 0.999 || sum > 1.001 {
			t.Errorf("fractions %v sum to %v", fr, sum)
		}
	}
}

func TestLoadMapsOnUnix(t *testing.T) {
	hb := core.MustNew(1, 3)
	built, err := snapshot.Build(hb, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.hbsnap")
	if err := built.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := snapshot.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// On the platforms CI runs, the mmap path must actually engage —
	// otherwise the fallback is silently load-bearing.
	if !loaded.Mapped() {
		t.Log("snapshot loaded via plain read (mmap unavailable on this platform)")
	}
	if err := loaded.Close(); err != nil {
		t.Fatal(err)
	}
	if loaded.Mapped() {
		t.Error("still mapped after Close")
	}
}

// TestRejections covers every load gate: truncation at several
// boundaries, a corrupted magic, an unknown version, and a payload flip
// the checksum must catch.
func TestRejections(t *testing.T) {
	hb := core.MustNew(1, 3)
	built, err := snapshot.Build(hb, 0)
	if err != nil {
		t.Fatal(err)
	}
	good := built.Encode()
	if _, err := snapshot.Decode(good); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := append([]byte(nil), good...)
		b = mutate(b)
		if _, err := snapshot.Decode(b); err == nil {
			t.Errorf("%s: accepted", name)
		} else {
			t.Logf("%s: %v", name, err)
		}
	}
	corrupt("empty", func(b []byte) []byte { return nil })
	corrupt("truncated header", func(b []byte) []byte { return b[:20] })
	corrupt("truncated body", func(b []byte) []byte { return b[:len(b)-9] })
	corrupt("trailing garbage", func(b []byte) []byte { return append(b, 0xAA) })
	corrupt("bad magic", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b, 0xDEADBEEF)
		return b
	})
	corrupt("wrong version", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[4:], snapshot.Version+1)
		return b
	})
	corrupt("payload flip", func(b []byte) []byte {
		b[len(b)/2] ^= 0x01
		return b
	})
	corrupt("checksum flip", func(b []byte) []byte {
		b[len(b)-1] ^= 0x01
		return b
	})

	// The same gates must hold through the file loader.
	bad := filepath.Join(t.TempDir(), "bad.hbsnap")
	flip := append([]byte(nil), good...)
	flip[headerProbe] ^= 0x01
	if err := os.WriteFile(bad, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Load(bad); err == nil {
		t.Error("corrupt file loaded")
	}
	if _, err := snapshot.Load(filepath.Join(t.TempDir(), "absent.hbsnap")); err == nil {
		t.Error("absent file loaded")
	}
}

// headerProbe is a byte inside the histogram section — flipping it
// must trip the checksum, not a bounds check.
const headerProbe = 60

func TestBuildRefusesHugeInstances(t *testing.T) {
	hb := core.MustNew(3, 8) // 16384 nodes, over MaxOrder
	if _, err := snapshot.Build(hb, 0); err == nil {
		t.Fatal("built a snapshot over MaxOrder")
	}
}

func TestDisjointPathsBounds(t *testing.T) {
	hb := core.MustNew(1, 3)
	s, err := snapshot.Build(hb, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, -1, s.Order} {
		if _, err := s.DisjointPaths(v); err == nil {
			t.Errorf("paths(%d) accepted", v)
		}
	}
}
