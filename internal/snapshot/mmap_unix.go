//go:build linux || darwin || freebsd || netbsd || openbsd

package snapshot

import (
	"io"
	"os"
	"syscall"
)

// readFileMapped maps path read-only, falling back to a plain read when
// the mapping fails (empty files, filesystems without mmap support).
func readFileMapped(path string) (data []byte, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := fi.Size()
	if size > 0 && int64(int(size)) == size {
		if m, merr := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED); merr == nil {
			return m, true, nil
		}
	}
	data, err = io.ReadAll(f)
	return data, false, err
}

func unmapFile(data []byte) error { return syscall.Munmap(data) }
