//go:build !linux && !darwin && !freebsd && !netbsd && !openbsd

package snapshot

import "os"

// readFileMapped on platforms without the mmap syscall surface reads
// the whole file; callers see an unmapped snapshot.
func readFileMapped(path string) (data []byte, mapped bool, err error) {
	data, err = os.ReadFile(path)
	return data, false, err
}

func unmapFile([]byte) error { return nil }
