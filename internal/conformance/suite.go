package conformance

import "testing"

// Suite runs every default invariant against each target and reports
// failures through t — the one-line registration hook topology package
// tests use instead of duplicating structural assertions. Skipped cells
// are logged only under -v; failures carry the target, invariant and
// detail.
func Suite(t *testing.T, targets ...Target) {
	t.Helper()
	SuiteOptions(t, Options{}, targets...)
}

// SuiteOptions is Suite with explicit runner options (tests covering
// large instances lower the sampling or connectivity caps).
func SuiteOptions(t *testing.T, opts Options, targets ...Target) {
	t.Helper()
	rep := Run(targets, DefaultInvariants(), opts)
	for _, res := range rep.Results {
		switch res.Status {
		case StatusFail:
			t.Errorf("%s/%s: %s", res.Target, res.Invariant, res.Detail)
		case StatusSkip:
			if testing.Verbose() {
				t.Logf("%s/%s: skipped (%s)", res.Target, res.Invariant, res.Detail)
			}
		}
	}
	if testing.Verbose() {
		t.Logf("conformance: targets=%d pass=%d fail=%d skip=%d in %.1fms",
			rep.Targets, rep.Pass, rep.Fail, rep.Skip, rep.ElapsedMS)
	}
}
