// Package conformance is the single engine that asserts every
// machine-checkable claim of the paper (T1-T5, C1, R6) against every
// topology in the repository. Each claim is an Invariant in a
// table-driven registry; each network instance is a Target declaring
// which analytic quantities it stands behind. The runner executes the
// (target, invariant) matrix on a worker pool with per-check timing and
// produces a structured Report whose canonical form is byte-identical
// regardless of worker count, so CI can diff it and cmd/hbcheck can
// gate on it.
//
// Topology packages register themselves in their tests with a single
// Suite call; cmd/hbcheck sweeps (m,n) ranges over the same registry.
package conformance

import (
	"fmt"
	"sync"

	"repro/internal/butterfly"
	"repro/internal/core"
	"repro/internal/debruijn"
	"repro/internal/faultroute"
	"repro/internal/graph"
	"repro/internal/hypercube"
	"repro/internal/hyperdebruijn"
	"repro/internal/noc"
)

// Target is one network instance under test together with the analytic
// claims it makes. Quantities set to -1 (or nil functions) are "not
// claimed" and the corresponding invariants report as skipped rather
// than failed.
type Target struct {
	Name  string
	Graph graph.Graph

	Order int // expected vertex count
	Edges int // expected undirected edge count; -1 = no closed form claimed

	MinDegree int
	MaxDegree int
	Regular   bool

	Diameter     int // expected exact diameter; -1 = not claimed
	Connectivity int // expected vertex connectivity; -1 = not claimed

	// EdgeConnectivity is the expected exact edge connectivity; <= 0 =
	// not claimed. Every family here is maximally connected (kappa =
	// minimum degree), so Whitney's kappa <= lambda <= delta pins lambda
	// to the minimum degree as well.
	EdgeConnectivity int

	// VertexTransitive lets the diameter and connectivity invariants use
	// the single-source shortcuts valid for Cayley graphs (Remark 7).
	VertexTransitive bool
	// Cayley enables the generator-action invariant (Remark 3):
	// fixed-point-free generators with pairwise distinct images.
	Cayley bool

	// Distance, if non-nil, must return the exact shortest-path distance.
	Distance func(u, v int) int
	// Route, if non-nil, returns a u-v walk including both endpoints.
	// With RouteOptimal set it must be a shortest path (claim R6);
	// otherwise its length must not exceed RouteBound.
	Route        func(u, v int) []int
	RouteOptimal bool
	RouteBound   int

	// DisjointPaths, if non-nil, must return exactly PathCount pairwise
	// internally vertex-disjoint u-v paths (Theorem 5).
	DisjointPaths func(u, v int) ([][]int, error)
	PathCount     int

	// FaultRoute, if non-nil, must deliver a fault-free u-v path for any
	// fault set of size at most MaxFaults excluding the endpoints
	// (Remark 10).
	FaultRoute func(faults []int, u, v int) ([]int, error)
	MaxFaults  int

	// Implicit, if non-nil, is the label-arithmetic backend of the same
	// instance (core.Implicit for HB). The implicit-* invariants hold
	// its neighbors, routes, distances and disjoint paths to exact
	// agreement with the dense oracles built from Graph.
	Implicit              graph.Graph
	ImplicitDistance      func(u, v int) int
	ImplicitRoute         func(u, v int) []int
	ImplicitDisjointPaths func(u, v int) ([][]int, error)

	// Escape, if non-nil, is the deadlock-free escape discipline the NoC
	// engine uses on this topology (noc.NewHBEscape for HB). Nil targets
	// fall back to the generic BFS-tree escape. The escape-acyclic
	// invariant holds either to Duato's condition: every escape walk
	// climbs strictly in stage, so the channel-dependency graph over
	// (link, class) escape channels is acyclic.
	Escape noc.Escape

	// Seed drives the deterministic sampling of pairwise checks.
	Seed int64
}

// Hypercube returns the conformance target for H_m, m >= 1.
func Hypercube(m int) Target {
	c := hypercube.MustNew(m)
	return Target{
		Name:             fmt.Sprintf("H(%d)", m),
		Graph:            c,
		Order:            1 << uint(m),
		Edges:            c.EdgeCountFormula(),
		MinDegree:        m,
		MaxDegree:        m,
		Regular:          true,
		Diameter:         c.DiameterFormula(),
		Connectivity:     c.ConnectivityFormula(),
		EdgeConnectivity: m,
		VertexTransitive: true,
		Cayley:           true,
		Distance:         c.Distance,
		Route:            c.Route,
		RouteOptimal:     true,
		DisjointPaths:    c.DisjointPaths,
		PathCount:        m,
		Seed:             int64(101*m + 7),
	}
}

// Butterfly returns the conformance target for the wrapped butterfly
// B_n, n >= 3.
func Butterfly(n int) Target {
	b := butterfly.MustNew(n)
	return Target{
		Name:             fmt.Sprintf("B(%d)", n),
		Graph:            b,
		Order:            b.Order(),
		Edges:            b.EdgeCountFormula(),
		MinDegree:        4,
		MaxDegree:        4,
		Regular:          true,
		Diameter:         b.DiameterFormula(),
		Connectivity:     b.ConnectivityFormula(),
		EdgeConnectivity: 4,
		VertexTransitive: true,
		Cayley:           true,
		Distance:         b.Distance,
		Route:            b.Route,
		RouteOptimal:     true,
		DisjointPaths:    b.DisjointPaths,
		PathCount:        4,
		Seed:             int64(211*n + 3),
	}
}

// DeBruijn returns the conformance target for the binary de Bruijn
// graph D_n. D_n is irregular (the loop words drop to degree 2) and its
// standard shift routing is only n-bounded, not optimal — exactly the
// HD weaknesses the paper's comparison leans on.
func DeBruijn(n int) Target {
	g := debruijn.MustNew(n)
	return Target{
		Name:             fmt.Sprintf("D(%d)", n),
		Graph:            g,
		Order:            1 << uint(n),
		Edges:            -1,
		MinDegree:        2,
		MaxDegree:        4,
		Regular:          false,
		Diameter:         g.DiameterFormula(),
		Connectivity:     g.ConnectivityFormula(),
		EdgeConnectivity: 2,
		Route:            g.Route,
		RouteBound:       g.RouteLengthBound(),
		Seed:             int64(307*n + 11),
	}
}

// HyperDeBruijn returns the conformance target for HD(m,n), the
// baseline of Figures 1-2.
func HyperDeBruijn(m, n int) Target {
	hd := hyperdebruijn.MustNew(m, n)
	return Target{
		Name:             fmt.Sprintf("HD(%d,%d)", m, n),
		Graph:            hd,
		Order:            hd.Order(),
		Edges:            -1,
		MinDegree:        hd.MinDegree(),
		MaxDegree:        hd.MaxDegree(),
		Regular:          false,
		Diameter:         hd.DiameterFormula(),
		Connectivity:     hd.ConnectivityFormula(),
		EdgeConnectivity: hd.MinDegree(),
		Route:            hd.Route,
		RouteBound:       hd.RouteLengthBound(),
		Seed:             int64(401*m + 13*n),
	}
}

// HyperButterfly returns the conformance target for HB(m,n), carrying
// the full claim set: Theorem 2 counts, Theorem 3 diameter, Theorem 5 /
// Corollary 1 connectivity and disjoint paths, R6 optimal routing and
// Remark 10 fault-tolerant delivery.
func HyperButterfly(m, n int) Target {
	return HyperButterflyInstance(core.MustNew(m, n))
}

// HyperButterflyInstance is HyperButterfly for a prebuilt instance, so
// long-lived callers (the hbd /conformance endpoint) share the
// instance — and its lazily materialised dense adjacency — with their
// other query paths instead of reconstructing per request.
func HyperButterflyInstance(hb *core.HyperButterfly) Target {
	m, n := hb.M(), hb.N()
	imp := core.ImplicitOf(hb)
	// One incremental router serves every fault-tolerance trial on this
	// instance: consecutive trials differ by a handful of faults, so each
	// call pays a set diff instead of a router rebuild. The harness runs
	// invariants in parallel, hence the lock around the diff+route pair.
	fr, frErr := faultroute.New(hb, nil)
	var frMu sync.Mutex
	return Target{
		Name:             fmt.Sprintf("HB(%d,%d)", m, n),
		Graph:            hb,
		Order:            hb.Order(),
		Edges:            hb.EdgeCountFormula(),
		MinDegree:        hb.Degree(),
		MaxDegree:        hb.Degree(),
		Regular:          true,
		Diameter:         hb.DiameterFormula(),
		Connectivity:     hb.ConnectivityFormula(),
		EdgeConnectivity: hb.Degree(),
		VertexTransitive: true,
		Cayley:           true,
		Distance:         hb.Distance,
		Route:            hb.Route,
		RouteOptimal:     true,
		DisjointPaths:    hb.DisjointPaths,
		PathCount:        hb.Degree(),
		FaultRoute: func(faults []int, u, v int) ([]int, error) {
			if frErr != nil {
				return nil, frErr
			}
			frMu.Lock()
			defer frMu.Unlock()
			if err := fr.SetFaults(faults); err != nil {
				return nil, err
			}
			return fr.Route(u, v)
		},
		MaxFaults:        hb.M() + 3,
		Implicit:         imp,
		ImplicitDistance: imp.Distance,
		ImplicitRoute: func(u, v int) []int {
			return imp.AppendRoute(u, v, make([]core.Node, 0, imp.Distance(u, v)+1))
		},
		ImplicitDisjointPaths: imp.DisjointPaths,
		Escape:                noc.NewHBEscape(hb),
		Seed:                  int64(503*m + 17*n),
	}
}

// Sweep returns the default target set over m in [mLo,mHi] and n in
// [nLo,nHi]: one H per m, one B and one D per n, and one HD and HB per
// (m,n) pair. Dimensions outside a family's validity range (H needs
// m >= 1, B needs n >= 3, D needs n >= 2) are skipped rather than
// rejected so callers can sweep m from 0.
func Sweep(mLo, mHi, nLo, nHi int) ([]Target, error) {
	if mLo > mHi || nLo > nHi {
		return nil, fmt.Errorf("conformance: empty sweep m=[%d,%d] n=[%d,%d]", mLo, mHi, nLo, nHi)
	}
	var out []Target
	for m := mLo; m <= mHi; m++ {
		if m >= 1 {
			if _, err := hypercube.New(m); err != nil {
				return nil, err
			}
			out = append(out, Hypercube(m))
		}
	}
	for n := nLo; n <= nHi; n++ {
		if n >= 3 {
			if _, err := butterfly.New(n); err != nil {
				return nil, err
			}
			out = append(out, Butterfly(n))
		}
		if n >= 2 {
			if _, err := debruijn.New(n); err != nil {
				return nil, err
			}
			out = append(out, DeBruijn(n))
		}
	}
	for m := mLo; m <= mHi; m++ {
		for n := nLo; n <= nHi; n++ {
			if n >= 2 {
				if _, err := hyperdebruijn.New(m, n); err != nil {
					return nil, err
				}
				out = append(out, HyperDeBruijn(m, n))
			}
			if n >= 3 {
				if _, err := core.New(m, n); err != nil {
					return nil, err
				}
				out = append(out, HyperButterfly(m, n))
			}
		}
	}
	return out, nil
}
