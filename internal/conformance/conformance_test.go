package conformance

import (
	"bytes"
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"testing"
)

// TestSweepAllPass runs the full default matrix over the paper's small
// instances: every registered invariant must pass (or be explicitly
// skipped) on every family.
func TestSweepAllPass(t *testing.T) {
	targets, err := Sweep(1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) == 0 {
		t.Fatal("empty sweep")
	}
	rep := Run(targets, DefaultInvariants(), Options{})
	if !rep.OK() {
		t.Fatalf("failures: %v", rep.FailedNames())
	}
	if rep.Pass == 0 {
		t.Fatal("no invariant actually ran")
	}
	// Every family must be present in the report.
	seen := map[string]bool{}
	for _, res := range rep.Results {
		seen[res.Target[:strings.Index(res.Target, "(")]] = true
	}
	for _, fam := range []string{"H", "B", "D", "HD", "HB"} {
		if !seen[fam] {
			t.Errorf("family %s missing from sweep", fam)
		}
	}
}

// TestBrokenInvariantFails registers a deliberately broken invariant
// and checks the runner reports it as a failure (and only it), proving
// the harness can actually fail — the acceptance gate for CI trust.
func TestBrokenInvariantFails(t *testing.T) {
	invs := append(DefaultInvariants(), Invariant{
		Name:    "deliberately-broken",
		Applies: always,
		Check: func(tg *Target, env *Env) error {
			return errors.New("intentional failure for harness verification")
		},
	})
	rep := Run([]Target{HyperButterfly(1, 3)}, invs, Options{})
	if rep.OK() {
		t.Fatal("report with broken invariant claims OK")
	}
	if rep.Fail != 1 {
		t.Fatalf("fail count %d, want 1 (%v)", rep.Fail, rep.FailedNames())
	}
	want := "HB(1,3)/deliberately-broken"
	if names := rep.FailedNames(); len(names) != 1 || names[0] != want {
		t.Fatalf("failed names %v, want [%s]", names, want)
	}
}

// TestPanickingInvariantIsFailure: a panic inside a check must become a
// failure of that cell, not a crash of the run.
func TestPanickingInvariantIsFailure(t *testing.T) {
	invs := []Invariant{{
		Name:    "panics",
		Applies: always,
		Check:   func(tg *Target, env *Env) error { panic("boom") },
	}}
	rep := Run([]Target{Hypercube(2)}, invs, Options{})
	if rep.Fail != 1 || !strings.Contains(rep.Results[0].Detail, "boom") {
		t.Fatalf("panic not converted to failure: %+v", rep.Results)
	}
}

// TestParallelDeterminism: the canonical report is byte-identical for
// workers=1, 2 and GOMAXPROCS — the runner's ordering and sampling must
// not depend on scheduling.
func TestParallelDeterminism(t *testing.T) {
	targets, err := Sweep(1, 2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref := Run(targets, DefaultInvariants(), Options{Workers: 1}).Canonical()
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		got := Run(targets, DefaultInvariants(), Options{Workers: workers}).Canonical()
		if !bytes.Equal(got, ref) {
			t.Fatalf("canonical report differs between workers=1 and workers=%d:\n--- w1\n%s--- w%d\n%s",
				workers, ref, workers, got)
		}
	}
}

// TestSkipsAreExplained: inapplicable invariants surface as skips with
// a reason, never as silent passes.
func TestSkipsAreExplained(t *testing.T) {
	rep := Run([]Target{DeBruijn(3)}, DefaultInvariants(), Options{})
	if !rep.OK() {
		t.Fatalf("failures: %v", rep.FailedNames())
	}
	skips := map[string]string{}
	for _, res := range rep.Results {
		if res.Status == StatusSkip {
			skips[res.Invariant] = res.Detail
		}
	}
	for _, inv := range []string{"edge-count", "generator-action", "distance-vs-bfs", "route-optimal", "disjoint-paths", "fault-route"} {
		if reason, ok := skips[inv]; !ok || reason == "" {
			t.Errorf("invariant %s on D(3): want explained skip, got %q (present=%v)", inv, reason, ok)
		}
	}
}

// TestConnectivityCapSkips: the max-flow cap converts both connectivity
// checks into explained skips on oversized targets.
func TestConnectivityCapSkips(t *testing.T) {
	rep := Run([]Target{HyperButterfly(2, 3)}, DefaultInvariants(), Options{MaxConnectivityOrder: 10})
	found := map[string]bool{}
	for _, res := range rep.Results {
		if res.Invariant == "connectivity" || res.Invariant == "edge-connectivity" {
			if res.Status != StatusSkip {
				t.Fatalf("%s status %s, want skip", res.Invariant, res.Status)
			}
			found[res.Invariant] = true
		}
	}
	if len(found) != 2 {
		t.Fatalf("connectivity cells missing from report: %v", found)
	}
}

// TestReportJSONRoundTrip: the JSON form CI consumes decodes back to
// the same counters.
func TestReportJSONRoundTrip(t *testing.T) {
	rep := Run([]Target{Butterfly(3)}, DefaultInvariants(), Options{})
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Pass != rep.Pass || back.Fail != rep.Fail || back.Skip != rep.Skip || len(back.Results) != len(rep.Results) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, rep)
	}
}

// TestWriteTextShowsFailures: the human rendering always surfaces
// failing cells with their detail.
func TestWriteTextShowsFailures(t *testing.T) {
	invs := []Invariant{{
		Name:    "bad",
		Applies: always,
		Check:   func(tg *Target, env *Env) error { return errors.New("detail-string") },
	}}
	rep := Run([]Target{Hypercube(2)}, invs, Options{})
	var buf bytes.Buffer
	rep.WriteText(&buf, false)
	out := buf.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "detail-string") {
		t.Fatalf("text report hides failure:\n%s", out)
	}
}

// TestSweepRejectsEmptyRange guards the CLI flag parsing contract.
func TestSweepRejectsEmptyRange(t *testing.T) {
	if _, err := Sweep(2, 1, 3, 3); err == nil {
		t.Fatal("accepted empty m range")
	}
}
