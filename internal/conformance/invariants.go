package conformance

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/noc"
)

// Env carries per-target shared state across invariant checks: the
// materialised adjacency is built lazily exactly once no matter how
// many invariants (or workers) ask for it.
type Env struct {
	opts  Options
	once  sync.Once
	dense *graph.Dense
	t     *Target
}

// Dense returns the CSR adjacency of the target, built on first use.
func (e *Env) Dense() *graph.Dense {
	e.once.Do(func() { e.dense = graph.Build(e.t.Graph) })
	return e.dense
}

// rng returns a deterministic source for sampling: seeded from the
// target seed and a per-invariant salt, so results are identical for
// any worker count and any execution order.
func (e *Env) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(e.t.Seed*1000003 + salt))
}

// Invariant is one row of the registry: a named machine-checkable claim
// plus an applicability rule. Applies returns "" when the check is
// meaningful for the target and a human-readable skip reason otherwise.
type Invariant struct {
	Name    string
	Applies func(t *Target, opts Options) string
	Check   func(t *Target, env *Env) error
}

func always(*Target, Options) string { return "" }

// DefaultInvariants returns the registry, in the fixed order reports
// use. The slice is freshly allocated; callers may append their own
// invariants (tests do, to prove failure detection).
func DefaultInvariants() []Invariant {
	return []Invariant{
		{
			// Every topology is an undirected graph: symmetric, in-range
			// adjacency (the precondition of all other checks).
			Name:    "undirected",
			Applies: always,
			Check: func(t *Target, env *Env) error {
				return graph.CheckUndirected(t.Graph)
			},
		},
		{
			// Theorem 2 / Figure 1 degree rows: min, max and regularity.
			Name:    "degree",
			Applies: always,
			Check: func(t *Target, env *Env) error {
				st := graph.Degrees(t.Graph)
				if st.Min != t.MinDegree || st.Max != t.MaxDegree {
					return fmt.Errorf("degrees [%d,%d], want [%d,%d]", st.Min, st.Max, t.MinDegree, t.MaxDegree)
				}
				if st.Regular != t.Regular {
					return fmt.Errorf("regular=%v, want %v", st.Regular, t.Regular)
				}
				return nil
			},
		},
		{
			// Vertex-count formula (Theorem 2: n·2^(m+n) for HB).
			Name:    "order",
			Applies: always,
			Check: func(t *Target, env *Env) error {
				if got := t.Graph.Order(); got != t.Order {
					return fmt.Errorf("order %d, want %d", got, t.Order)
				}
				return nil
			},
		},
		{
			// Edge-count formula (Theorem 2: (m+4)·n·2^(m+n-1) for HB).
			Name: "edge-count",
			Applies: func(t *Target, _ Options) string {
				if t.Edges < 0 {
					return "no closed-form edge count claimed"
				}
				return ""
			},
			Check: func(t *Target, env *Env) error {
				if got := env.Dense().EdgeCount(); got != t.Edges {
					return fmt.Errorf("edge count %d, want %d", got, t.Edges)
				}
				return nil
			},
		},
		{
			// Remark 3: generators are fixed-point-free with pairwise
			// distinct images — the Cayley-graph sanity condition.
			Name: "generator-action",
			Applies: func(t *Target, _ Options) string {
				if !t.Cayley {
					return "not a Cayley graph"
				}
				return ""
			},
			Check: func(t *Target, env *Env) error {
				return graph.VerifyGeneratorAction(t.Graph, t.MaxDegree)
			},
		},
		{
			// Theorem 3: diameter formula vs exhaustive BFS (a single
			// eccentricity suffices on vertex-transitive targets).
			Name: "diameter",
			Applies: func(t *Target, opts Options) string {
				if t.Diameter < 0 {
					return "no diameter claimed"
				}
				if !t.VertexTransitive && t.Order > opts.MaxDiameterOrder {
					return fmt.Sprintf("order %d over all-sources cap %d", t.Order, opts.MaxDiameterOrder)
				}
				return ""
			},
			Check: func(t *Target, env *Env) error {
				var got int
				if t.VertexTransitive {
					ecc, conn := env.Dense().EccentricityScratch(0, graph.NewScratch(t.Order))
					if !conn {
						return fmt.Errorf("graph disconnected")
					}
					got = ecc
				} else {
					got = graph.DiameterParallel(env.Dense(), 0)
				}
				if got != t.Diameter {
					return fmt.Errorf("diameter %d, want %d", got, t.Diameter)
				}
				return nil
			},
		},
		{
			// Theorem 5 / Corollary 1: vertex connectivity by max-flow
			// ground truth.
			Name: "connectivity",
			Applies: func(t *Target, opts Options) string {
				if t.Connectivity < 0 {
					return "no connectivity claimed"
				}
				if t.Order > opts.MaxConnectivityOrder {
					return fmt.Sprintf("order %d over max-flow cap %d", t.Order, opts.MaxConnectivityOrder)
				}
				return ""
			},
			Check: func(t *Target, env *Env) error {
				d := env.Dense()
				var got int
				if t.VertexTransitive {
					got = graph.ConnectivityVertexTransitiveParallel(d, 0)
				} else {
					got = graph.ConnectivityParallel(d, 0)
				}
				if got != t.Connectivity {
					return fmt.Errorf("connectivity %d, want %d", got, t.Connectivity)
				}
				return nil
			},
		},
		{
			// Whitney sandwich: with kappa = delta (Corollary 1 and its
			// analogues) the edge connectivity is pinned to the minimum
			// degree; the parallel Menger engine verifies it exactly.
			Name: "edge-connectivity",
			Applies: func(t *Target, opts Options) string {
				if t.EdgeConnectivity <= 0 {
					return "no edge connectivity claimed"
				}
				if t.Order > opts.MaxConnectivityOrder {
					return fmt.Sprintf("order %d over max-flow cap %d", t.Order, opts.MaxConnectivityOrder)
				}
				return ""
			},
			Check: func(t *Target, env *Env) error {
				if got := graph.EdgeConnectivityParallel(env.Dense(), 0); got != t.EdgeConnectivity {
					return fmt.Errorf("edge connectivity %d, want %d", got, t.EdgeConnectivity)
				}
				return nil
			},
		},
		{
			// Remark 8: the analytic distance equals BFS distance, checked
			// from a deterministic sample of sources against all targets.
			Name: "distance-vs-bfs",
			Applies: func(t *Target, _ Options) string {
				if t.Distance == nil {
					return "no analytic distance claimed"
				}
				return ""
			},
			Check: func(t *Target, env *Env) error {
				d := env.Dense()
				s := graph.NewScratch(t.Order)
				for _, src := range sampleVertices(t, env.rng(1), 6) {
					dist := d.BFSScratch(src, nil, s)
					for v := 0; v < t.Order; v++ {
						if got := t.Distance(src, v); got != int(dist[v]) {
							return fmt.Errorf("Distance(%d,%d) = %d, BFS %d", src, v, got, dist[v])
						}
					}
				}
				return nil
			},
		},
		{
			// R6: the constructive route is a valid simple path of exactly
			// the BFS length, from sampled sources to every destination.
			Name: "route-optimal",
			Applies: func(t *Target, _ Options) string {
				if t.Route == nil || !t.RouteOptimal {
					return "no optimal routing claimed"
				}
				return ""
			},
			Check: func(t *Target, env *Env) error {
				d := env.Dense()
				s := graph.NewScratch(t.Order)
				for _, src := range sampleVertices(t, env.rng(2), 4) {
					dist := d.BFSScratch(src, nil, s)
					for v := 0; v < t.Order; v++ {
						p := t.Route(src, v)
						if len(p) == 0 || p[0] != src || p[len(p)-1] != v {
							return fmt.Errorf("route %d->%d has endpoints %v", src, v, p)
						}
						if len(p)-1 != int(dist[v]) {
							return fmt.Errorf("route %d->%d length %d, BFS %d", src, v, len(p)-1, dist[v])
						}
						if src != v {
							if err := graph.VerifyPath(t.Graph, p); err != nil {
								return fmt.Errorf("route %d->%d: %w", src, v, err)
							}
						}
					}
				}
				return nil
			},
		},
		{
			// Non-optimal routers (de Bruijn shift routing) still owe a
			// valid bounded walk: right endpoints, real edges, length
			// within the claimed bound.
			Name: "route-bounded",
			Applies: func(t *Target, _ Options) string {
				if t.Route == nil || t.RouteOptimal {
					return "no bounded-only routing claimed"
				}
				return ""
			},
			Check: func(t *Target, env *Env) error {
				d := env.Dense()
				rng := env.rng(3)
				for trial := 0; trial < env.opts.MaxPairs; trial++ {
					u, v := rng.Intn(t.Order), rng.Intn(t.Order)
					p := t.Route(u, v)
					if len(p) == 0 || p[0] != u || p[len(p)-1] != v {
						return fmt.Errorf("route %d->%d has endpoints %v", u, v, p)
					}
					if len(p)-1 > t.RouteBound {
						return fmt.Errorf("route %d->%d length %d exceeds bound %d", u, v, len(p)-1, t.RouteBound)
					}
					for i := 1; i < len(p); i++ {
						if !d.HasEdge(p[i-1], p[i]) {
							return fmt.Errorf("route %d->%d uses non-edge %d-%d", u, v, p[i-1], p[i])
						}
					}
				}
				return nil
			},
		},
		{
			// Theorem 5: the constructive disjoint-path family has exactly
			// the claimed cardinality and verifies against Menger's
			// definition on sampled pairs.
			Name: "disjoint-paths",
			Applies: func(t *Target, _ Options) string {
				if t.DisjointPaths == nil {
					return "no disjoint-path construction claimed"
				}
				return ""
			},
			Check: func(t *Target, env *Env) error {
				rng := env.rng(4)
				for trial := 0; trial < env.opts.MaxPairs; trial++ {
					u, v := distinctPair(rng, t.Order)
					paths, err := t.DisjointPaths(u, v)
					if err != nil {
						return fmt.Errorf("DisjointPaths(%d,%d): %w", u, v, err)
					}
					if len(paths) != t.PathCount {
						return fmt.Errorf("DisjointPaths(%d,%d): %d paths, want %d", u, v, len(paths), t.PathCount)
					}
					if err := graph.VerifyDisjointPaths(t.Graph, u, v, paths); err != nil {
						return fmt.Errorf("DisjointPaths(%d,%d): %w", u, v, err)
					}
				}
				return nil
			},
		},
		{
			// Remark 10: with at most MaxFaults random faults (endpoints
			// excluded) the fault router still delivers a valid fault-free
			// path.
			Name: "fault-route",
			Applies: func(t *Target, _ Options) string {
				if t.FaultRoute == nil {
					return "no fault routing claimed"
				}
				return ""
			},
			Check: func(t *Target, env *Env) error {
				rng := env.rng(5)
				trials := env.opts.MaxPairs / 2
				if trials < 8 {
					trials = 8
				}
				for trial := 0; trial < trials; trial++ {
					u, v := distinctPair(rng, t.Order)
					faulty := make(map[int]bool, t.MaxFaults)
					for len(faulty) < t.MaxFaults {
						f := rng.Intn(t.Order)
						if f != u && f != v {
							faulty[f] = true
						}
					}
					faults := make([]int, 0, len(faulty))
					for f := range faulty {
						faults = append(faults, f)
					}
					p, err := t.FaultRoute(faults, u, v)
					if err != nil {
						return fmt.Errorf("FaultRoute(%d faults, %d->%d): %w", len(faults), u, v, err)
					}
					if len(p) == 0 || p[0] != u || p[len(p)-1] != v {
						return fmt.Errorf("FaultRoute %d->%d has endpoints %v", u, v, p)
					}
					for _, x := range p {
						if faulty[x] {
							return fmt.Errorf("FaultRoute %d->%d crosses faulty node %d", u, v, x)
						}
					}
					if err := graph.VerifyPath(t.Graph, p); err != nil {
						return fmt.Errorf("FaultRoute %d->%d: %w", u, v, err)
					}
				}
				return nil
			},
		},
		{
			// Implicit-vs-dense gate, part 1: the label-arithmetic
			// neighbor rows equal the materialised CSR rows as sorted
			// multisets, for every vertex.
			Name: "implicit-neighbors",
			Applies: func(t *Target, _ Options) string {
				if t.Implicit == nil {
					return "no implicit backend claimed"
				}
				return ""
			},
			Check: func(t *Target, env *Env) error {
				d := env.Dense()
				var buf []int
				for v := 0; v < t.Order; v++ {
					buf = t.Implicit.AppendNeighbors(v, buf[:0])
					sort.Ints(buf)
					row := d.Neighbors(v)
					if len(buf) != len(row) {
						return fmt.Errorf("vertex %d: %d implicit neighbors, dense %d", v, len(buf), len(row))
					}
					for i, w := range row {
						if buf[i] != int(w) {
							return fmt.Errorf("vertex %d: implicit row %v != dense %v", v, buf, row)
						}
					}
				}
				return nil
			},
		},
		{
			// Implicit-vs-dense gate, part 2: the implicit distance equals
			// BFS and the implicit route is a valid walk of exactly that
			// length, from sampled sources to every destination.
			Name: "implicit-route",
			Applies: func(t *Target, _ Options) string {
				if t.Implicit == nil || t.ImplicitDistance == nil || t.ImplicitRoute == nil {
					return "no implicit backend claimed"
				}
				return ""
			},
			Check: func(t *Target, env *Env) error {
				d := env.Dense()
				s := graph.NewScratch(t.Order)
				for _, src := range sampleVertices(t, env.rng(6), 4) {
					dist := d.BFSScratch(src, nil, s)
					for v := 0; v < t.Order; v++ {
						if got := t.ImplicitDistance(src, v); got != int(dist[v]) {
							return fmt.Errorf("implicit Distance(%d,%d) = %d, BFS %d", src, v, got, dist[v])
						}
						p := t.ImplicitRoute(src, v)
						if len(p)-1 != int(dist[v]) || p[0] != src || p[len(p)-1] != v {
							return fmt.Errorf("implicit route %d->%d = %v, BFS distance %d", src, v, p, dist[v])
						}
						for i := 1; i < len(p); i++ {
							if !d.HasEdge(p[i-1], p[i]) {
								return fmt.Errorf("implicit route %d->%d uses non-edge %d-%d", src, v, p[i-1], p[i])
							}
						}
					}
				}
				return nil
			},
		},
		{
			// Implicit-vs-dense gate, part 3: the graph-free disjoint-path
			// engine produces the same Theorem 5 cardinality as the dense
			// Menger oracle and its certificates verify on the dense graph.
			Name: "implicit-disjoint-paths",
			Applies: func(t *Target, _ Options) string {
				if t.Implicit == nil || t.ImplicitDisjointPaths == nil {
					return "no implicit disjoint-path engine claimed"
				}
				return ""
			},
			Check: func(t *Target, env *Env) error {
				rng := env.rng(7)
				for trial := 0; trial < env.opts.MaxPairs; trial++ {
					u, v := distinctPair(rng, t.Order)
					paths, err := t.ImplicitDisjointPaths(u, v)
					if err != nil {
						return fmt.Errorf("implicit DisjointPaths(%d,%d): %w", u, v, err)
					}
					if len(paths) != t.PathCount {
						return fmt.Errorf("implicit DisjointPaths(%d,%d): %d paths, want %d", u, v, len(paths), t.PathCount)
					}
					if err := graph.VerifyDisjointPaths(t.Graph, u, v, paths); err != nil {
						return fmt.Errorf("implicit DisjointPaths(%d,%d): %w", u, v, err)
					}
				}
				return nil
			},
		},
		{
			// Duato's deadlock-freedom condition for the NoC escape
			// channel: every escape walk reaches its destination climbing
			// strictly in stage, so the channel-dependency graph over
			// (link, class) escape channels has no cycle. Targets without
			// an analytic escape (everything but HB) are held to the
			// generic BFS-tree discipline the engine falls back to.
			Name:    "escape-acyclic",
			Applies: always,
			Check: func(t *Target, env *Env) error {
				esc := t.Escape
				d := env.Dense()
				if esc == nil {
					var err error
					esc, err = noc.NewTreeEscape(d)
					if err != nil {
						return err
					}
				}
				n := d.Order()
				offsets := make([]int64, n+1)
				for v := 0; v < n; v++ {
					offsets[v+1] = offsets[v] + int64(d.Degree(v))
				}
				edgeOf := func(u, w int) (int64, error) {
					for k, x := range d.Neighbors(u) {
						if int(x) == w {
							return offsets[u] + int64(k), nil
						}
					}
					return 0, fmt.Errorf("escape walk uses non-edge %d-%d", u, w)
				}
				var pairs [][2]int
				if n*n <= 4096 {
					for u := 0; u < n; u++ {
						for v := 0; v < n; v++ {
							if u != v {
								pairs = append(pairs, [2]int{u, v})
							}
						}
					}
				} else {
					rng := env.rng(8)
					for len(pairs) < 4096 {
						u, v := distinctPair(rng, n)
						pairs = append(pairs, [2]int{u, v})
					}
				}
				deps := make(map[[2]int64]bool)
				var path []int32
				var cls []int8
				for _, p := range pairs {
					u, v := p[0], p[1]
					path, cls = esc.AppendHops(u, v, path[:0], cls[:0])
					if len(path) == 0 || int(path[len(path)-1]) != v {
						return fmt.Errorf("escape %d->%d ends at %v", u, v, path)
					}
					if len(path) > esc.MaxLen() {
						return fmt.Errorf("escape %d->%d: %d hops exceeds MaxLen %d", u, v, len(path), esc.MaxLen())
					}
					prev, prevStage := u, -1
					var prevCh int64 = -1
					for i, x := range path {
						if cls[i] < 0 || int(cls[i]) >= esc.Classes() {
							return fmt.Errorf("escape %d->%d hop %d: class %d of %d", u, v, i, cls[i], esc.Classes())
						}
						stage := esc.Stage(prev, int(x), cls[i])
						if stage <= prevStage {
							return fmt.Errorf("escape %d->%d hop %d: stage %d after %d — not weight-ordered", u, v, i, stage, prevStage)
						}
						edge, err := edgeOf(prev, int(x))
						if err != nil {
							return err
						}
						ch := edge*int64(esc.Classes()) + int64(cls[i])
						if prevCh >= 0 {
							deps[[2]int64{prevCh, ch}] = true
						}
						prev, prevStage, prevCh = int(x), stage, ch
					}
				}
				// Kahn's algorithm over the recorded dependencies.
				out := make(map[int64][]int64)
				indeg := make(map[int64]int)
				for e := range deps {
					out[e[0]] = append(out[e[0]], e[1])
					if _, ok := indeg[e[0]]; !ok {
						indeg[e[0]] = 0
					}
					indeg[e[1]]++
				}
				queue := make([]int64, 0, len(indeg))
				for ch, dg := range indeg {
					if dg == 0 {
						queue = append(queue, ch)
					}
				}
				seen := 0
				for len(queue) > 0 {
					ch := queue[len(queue)-1]
					queue = queue[:len(queue)-1]
					seen++
					for _, nx := range out[ch] {
						indeg[nx]--
						if indeg[nx] == 0 {
							queue = append(queue, nx)
						}
					}
				}
				if seen != len(indeg) {
					return fmt.Errorf("escape channel-dependency graph has a cycle: %d of %d channels sorted", seen, len(indeg))
				}
				return nil
			},
		},
	}
}

// sampleVertices returns up to k distinct vertices of t, always
// including 0 and Order-1, padded with deterministic random picks.
func sampleVertices(t *Target, rng *rand.Rand, k int) []int {
	if t.Order <= k {
		out := make([]int, t.Order)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := map[int]bool{0: true, t.Order - 1: true}
	out := []int{0, t.Order - 1}
	for len(out) < k {
		v := rng.Intn(t.Order)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// distinctPair draws u != v uniformly from [0,n). n must be >= 2.
func distinctPair(rng *rand.Rand, n int) (int, int) {
	u := rng.Intn(n)
	v := rng.Intn(n - 1)
	if v >= u {
		v++
	}
	return u, v
}
