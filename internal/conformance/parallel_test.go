package conformance

import (
	"runtime"
	"testing"

	"repro/internal/graph"
)

// TestDiameterParallelAgreesAcrossTopologies is the table-driven
// cross-check of graph.DiameterParallel against the serial
// graph.Diameter for worker counts {1, 2, GOMAXPROCS}, over one
// instance of every topology family plus a disconnected (faulted)
// graph, which must report -1 at every worker count.
func TestDiameterParallelAgreesAcrossTopologies(t *testing.T) {
	cases := []struct {
		name string
		g    graph.Graph
	}{
		{"H(4)", Hypercube(4).Graph},
		{"B(4)", Butterfly(4).Graph},
		{"D(5)", DeBruijn(5).Graph},
		{"HD(2,4)", HyperDeBruijn(2, 4).Graph},
		{"HB(2,3)", HyperButterfly(2, 3).Graph},
		{"disconnected", graph.NewDense(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}})},
		{"single-vertex", graph.NewDense(1, nil)},
	}
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		serial := graph.Diameter(tc.g)
		for _, w := range workerCounts {
			if got := graph.DiameterParallel(tc.g, w); got != serial {
				t.Errorf("%s: DiameterParallel(workers=%d) = %d, serial Diameter = %d", tc.name, w, got, serial)
			}
		}
	}
	// The faulted case must specifically be -1, not a truncated value.
	if serial := graph.Diameter(graph.NewDense(4, [][2]int{{0, 1}, {2, 3}})); serial != -1 {
		t.Fatalf("serial Diameter of disconnected graph = %d, want -1", serial)
	}
}
