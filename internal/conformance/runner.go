package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options tunes a conformance run. The zero value asks for sensible
// defaults (GOMAXPROCS workers, moderate sampling, max-flow and
// all-sources-BFS caps that keep single targets under a second).
type Options struct {
	// Workers is the size of the check worker pool; <= 0 means
	// GOMAXPROCS. The report's canonical form does not depend on it.
	Workers int
	// MaxPairs caps sampled pairwise checks (disjoint paths, bounded
	// routes); <= 0 means 48.
	MaxPairs int
	// MaxConnectivityOrder skips the max-flow connectivity invariant on
	// targets with more vertices; <= 0 means 2048.
	MaxConnectivityOrder int
	// MaxDiameterOrder skips the all-sources diameter invariant on
	// non-vertex-transitive targets with more vertices; <= 0 means 16384.
	MaxDiameterOrder int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxPairs <= 0 {
		o.MaxPairs = 48
	}
	if o.MaxConnectivityOrder <= 0 {
		o.MaxConnectivityOrder = 2048
	}
	if o.MaxDiameterOrder <= 0 {
		o.MaxDiameterOrder = 16384
	}
	return o
}

// Check outcome labels used in Result.Status.
const (
	StatusPass = "pass"
	StatusFail = "fail"
	StatusSkip = "skip"
)

// Result is the outcome of one (target, invariant) cell.
type Result struct {
	Target    string  `json:"target"`
	Invariant string  `json:"invariant"`
	Status    string  `json:"status"`
	Detail    string  `json:"detail,omitempty"` // failure message or skip reason
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Report aggregates a full matrix run. Results are ordered
// target-major, invariant-minor — the registration order — regardless
// of how the worker pool interleaved execution.
type Report struct {
	Targets   int      `json:"targets"`
	Pass      int      `json:"pass"`
	Fail      int      `json:"fail"`
	Skip      int      `json:"skip"`
	ElapsedMS float64  `json:"elapsed_ms"`
	Results   []Result `json:"results"`
}

// OK reports whether no invariant failed.
func (r *Report) OK() bool { return r.Fail == 0 }

// JSON renders the full report (including timings) for machine
// consumption by CI; see EXPERIMENTS.md E-CF for the contract.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Canonical renders the timing-free portion of the report: one line per
// cell plus a summary. Two runs over the same targets and invariants
// produce byte-identical output for any worker count, so CI can diff
// canonical reports across commits.
func (r *Report) Canonical() []byte {
	var buf bytes.Buffer
	for _, res := range r.Results {
		fmt.Fprintf(&buf, "%s\t%s\t%s", res.Target, res.Invariant, res.Status)
		if res.Detail != "" {
			fmt.Fprintf(&buf, "\t%s", res.Detail)
		}
		buf.WriteByte('\n')
	}
	fmt.Fprintf(&buf, "targets=%d pass=%d fail=%d skip=%d\n", r.Targets, r.Pass, r.Fail, r.Skip)
	return buf.Bytes()
}

// WriteText renders a human report: one block per target with
// per-invariant status and timing; failures always print their detail.
// With verbose unset, passing invariants are summarised per target.
func (r *Report) WriteText(w io.Writer, verbose bool) {
	byTarget := make(map[string][]Result)
	var order []string
	for _, res := range r.Results {
		if _, seen := byTarget[res.Target]; !seen {
			order = append(order, res.Target)
		}
		byTarget[res.Target] = append(byTarget[res.Target], res)
	}
	for _, name := range order {
		cells := byTarget[name]
		pass, fail, skip := 0, 0, 0
		var ms float64
		for _, c := range cells {
			ms += c.ElapsedMS
			switch c.Status {
			case StatusPass:
				pass++
			case StatusFail:
				fail++
			default:
				skip++
			}
		}
		fmt.Fprintf(w, "%-10s pass=%d fail=%d skip=%d  %.1fms\n", name, pass, fail, skip, ms)
		for _, c := range cells {
			if c.Status == StatusFail {
				fmt.Fprintf(w, "  FAIL %-18s %s\n", c.Invariant, c.Detail)
			} else if verbose {
				fmt.Fprintf(w, "  %-4s %-18s %.1fms", c.Status, c.Invariant, c.ElapsedMS)
				if c.Detail != "" {
					fmt.Fprintf(w, "  (%s)", c.Detail)
				}
				fmt.Fprintln(w)
			}
		}
	}
	fmt.Fprintf(w, "total: targets=%d pass=%d fail=%d skip=%d in %.1fms\n",
		r.Targets, r.Pass, r.Fail, r.Skip, r.ElapsedMS)
}

// Run executes the full (targets x invariants) matrix on a worker pool
// and returns the report. Every check is independent; shared per-target
// state (the materialised adjacency) is built once under a sync.Once.
// Check sampling is seeded per (target, invariant), so the canonical
// report is identical for every worker count.
func Run(targets []Target, invs []Invariant, opts Options) *Report {
	opts = opts.withDefaults()
	envs := make([]*Env, len(targets))
	for i := range targets {
		envs[i] = &Env{opts: opts, t: &targets[i]}
	}
	cells := len(targets) * len(invs)
	results := make([]Result, cells)
	workers := opts.Workers
	if workers > cells {
		workers = cells
	}
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				job := int(atomic.AddInt64(&next, 1))
				if job >= cells {
					return
				}
				ti, ii := job/len(invs), job%len(invs)
				t, inv := &targets[ti], &invs[ii]
				res := Result{Target: t.Name, Invariant: inv.Name}
				if reason := inv.Applies(t, opts); reason != "" {
					res.Status = StatusSkip
					res.Detail = reason
				} else {
					t0 := time.Now()
					err := safeCheck(inv, t, envs[ti])
					res.ElapsedMS = float64(time.Since(t0)) / float64(time.Millisecond)
					if err != nil {
						res.Status = StatusFail
						res.Detail = err.Error()
					} else {
						res.Status = StatusPass
					}
				}
				results[job] = res
			}
		}()
	}
	wg.Wait()
	rep := &Report{
		Targets:   len(targets),
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		Results:   results,
	}
	for _, res := range results {
		switch res.Status {
		case StatusPass:
			rep.Pass++
		case StatusFail:
			rep.Fail++
		default:
			rep.Skip++
		}
	}
	return rep
}

// safeCheck converts a panicking invariant into a failure instead of
// tearing down the whole run; constructive code in this repository
// panics on internal inconsistencies and the harness must survive that
// to report it.
func safeCheck(inv *Invariant, t *Target, env *Env) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return inv.Check(t, env)
}

// FailedNames returns the sorted distinct "target/invariant" labels of
// failing cells; convenient for terse CI summaries.
func (r *Report) FailedNames() []string {
	var out []string
	for _, res := range r.Results {
		if res.Status == StatusFail {
			out = append(out, res.Target+"/"+res.Invariant)
		}
	}
	sort.Strings(out)
	return out
}
