package conformance

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkConformanceSuite measures runner throughput on the full
// HB(2,3) invariant set at workers=1 versus workers=GOMAXPROCS,
// guarding the parallel speedup the worker pool exists for. Run with
//
//	go test -bench ConformanceSuite -benchtime 5x ./internal/conformance
func BenchmarkConformanceSuite(b *testing.B) {
	invs := DefaultInvariants()
	counts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := Run([]Target{HyperButterfly(2, 3)}, invs, Options{Workers: workers})
				if !rep.OK() {
					b.Fatalf("failures: %v", rep.FailedNames())
				}
			}
		})
	}
}
