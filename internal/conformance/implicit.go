package conformance

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// The implicit-vs-dense differential sweep behind `hbcheck -implicit`:
// a heavier, exhaustive cousin of the implicit-* invariants. For every
// HB(m,n) in the range it compares the label-arithmetic backend against
// the materialised adjacency and its BFS oracle over ALL vertices
// (neighbors) and ALL ordered pairs (distance + route), plus sampled
// Theorem 5 disjoint-path extractions cross-checked against the dense
// Menger engine. CI runs it as the implicit-gate step.

// ImplicitDiff is the differential result for one instance.
type ImplicitDiff struct {
	Name             string  `json:"name"`
	Order            int     `json:"order"`
	NeighborsChecked int     `json:"neighbors_checked"`
	PairsChecked     int     `json:"pairs_checked"`
	DisjointPairs    int     `json:"disjoint_pairs"`
	ElapsedMS        float64 `json:"elapsed_ms"`
	Error            string  `json:"error,omitempty"`
}

// ImplicitReport aggregates the sweep; Fail counts failed instances.
type ImplicitReport struct {
	Instances []ImplicitDiff `json:"instances"`
	Fail      int            `json:"fail"`
}

// OK reports whether every instance matched its dense oracle.
func (r *ImplicitReport) OK() bool { return r.Fail == 0 }

// JSON renders the report for the CI gate.
func (r *ImplicitReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// WriteText renders a human-readable table.
func (r *ImplicitReport) WriteText(w io.Writer) {
	for _, d := range r.Instances {
		status := "ok"
		if d.Error != "" {
			status = "FAIL: " + d.Error
		}
		fmt.Fprintf(w, "%-10s order=%-6d neighbors=%-6d pairs=%-8d disjoint=%-4d %8.1fms  %s\n",
			d.Name, d.Order, d.NeighborsChecked, d.PairsChecked, d.DisjointPairs, d.ElapsedMS, status)
	}
	fmt.Fprintf(w, "implicit differential: %d instance(s), %d failed\n", len(r.Instances), r.Fail)
}

// ImplicitSweep runs the differential over every valid HB(m,n) in the
// inclusive ranges, checking disjointPairs sampled pairs per instance
// (<= 0 means 48) through both the implicit and the dense engines.
func ImplicitSweep(mLo, mHi, nLo, nHi, disjointPairs int) (*ImplicitReport, error) {
	if mLo > mHi || nLo > nHi {
		return nil, fmt.Errorf("conformance: empty implicit sweep m=[%d,%d] n=[%d,%d]", mLo, mHi, nLo, nHi)
	}
	if disjointPairs <= 0 {
		disjointPairs = 48
	}
	rep := &ImplicitReport{}
	for m := mLo; m <= mHi; m++ {
		for n := nLo; n <= nHi; n++ {
			if n < 3 {
				continue
			}
			hb, err := core.New(m, n)
			if err != nil {
				return nil, err
			}
			d := implicitDiffInstance(hb, disjointPairs)
			if d.Error != "" {
				rep.Fail++
			}
			rep.Instances = append(rep.Instances, d)
		}
	}
	if len(rep.Instances) == 0 {
		return nil, fmt.Errorf("conformance: implicit sweep m=[%d,%d] n=[%d,%d] has no valid HB instances", mLo, mHi, nLo, nHi)
	}
	return rep, nil
}

func implicitDiffInstance(hb *core.HyperButterfly, disjointPairs int) (out ImplicitDiff) {
	imp := core.ImplicitOf(hb)
	order := hb.Order()
	out = ImplicitDiff{Name: fmt.Sprintf("HB(%d,%d)", hb.M(), hb.N()), Order: order}
	start := time.Now()
	defer func() { out.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond) }()
	d := graph.Build(hb)

	var buf []int
	for v := 0; v < order; v++ {
		buf = imp.AppendNeighbors(v, buf[:0])
		sort.Ints(buf)
		row := d.Neighbors(v)
		if len(buf) != len(row) {
			out.Error = fmt.Sprintf("vertex %d: %d implicit neighbors, dense %d", v, len(buf), len(row))
			return out
		}
		for i, w := range row {
			if buf[i] != int(w) {
				out.Error = fmt.Sprintf("vertex %d: implicit row %v != dense %v", v, buf, row)
				return out
			}
		}
		out.NeighborsChecked++
	}

	s := graph.NewScratch(order)
	route := make([]core.Node, 0, hb.DiameterFormula()+1)
	for u := 0; u < order; u++ {
		dist := d.BFSScratch(u, nil, s)
		for v := 0; v < order; v++ {
			want := int(dist[v])
			if got := imp.Distance(u, v); got != want {
				out.Error = fmt.Sprintf("Distance(%d,%d) = %d, BFS %d", u, v, got, want)
				return out
			}
			route = imp.AppendRoute(u, v, route[:0])
			if len(route) != want+1 || route[0] != u || route[len(route)-1] != v {
				out.Error = fmt.Sprintf("route %d->%d has %d vertices (%d..%d), BFS distance %d",
					u, v, len(route), route[0], route[len(route)-1], want)
				return out
			}
			for i := 1; i < len(route); i++ {
				if !d.HasEdge(route[i-1], route[i]) {
					out.Error = fmt.Sprintf("route %d->%d uses non-edge %d-%d", u, v, route[i-1], route[i])
					return out
				}
			}
			out.PairsChecked++
		}
	}

	want := hb.ConnectivityFormula()
	rng := rand.New(rand.NewSource(int64(977*hb.M() + 31*hb.N())))
	for trial := 0; trial < disjointPairs; trial++ {
		u, v := distinctPair(rng, order)
		paths, err := imp.DisjointPaths(u, v)
		if err != nil {
			out.Error = fmt.Sprintf("implicit DisjointPaths(%d,%d): %v", u, v, err)
			return out
		}
		if len(paths) != want {
			out.Error = fmt.Sprintf("implicit DisjointPaths(%d,%d): %d paths, want %d", u, v, len(paths), want)
			return out
		}
		if err := graph.VerifyDisjointPaths(hb, u, v, paths); err != nil {
			out.Error = fmt.Sprintf("implicit DisjointPaths(%d,%d): %v", u, v, err)
			return out
		}
		dense, err := hb.DisjointPaths(u, v)
		if err != nil || len(dense) != len(paths) {
			out.Error = fmt.Sprintf("dense oracle for (%d,%d): %d paths, err=%v", u, v, len(dense), err)
			return out
		}
		out.DisjointPairs++
	}
	return out
}
