package wormhole

import (
	"testing"

	"repro/internal/core"
)

// TestRingDatelineTransitions walks the policy hop by hop around the
// ring: VC 0 strictly before the wrap edge, VC 1 from the wrap onward,
// and the state latches (it never falls back to 0).
func TestRingDatelineTransitions(t *testing.T) {
	const n = 8
	pol := RingDateline(n)
	// Route 5 -> 3 crosses the dateline at hop 2 (7 -> 0).
	path := []int{5, 6, 7, 0, 1, 2, 3}
	state := 0
	for h := 0; h+1 < len(path); h++ {
		var vc int
		vc, state = pol(h, path[h], path[h+1], state)
		wrapped := h >= 2
		want := 0
		if wrapped {
			want = 1
		}
		if vc != want {
			t.Errorf("hop %d (%d->%d): vc %d, want %d", h, path[h], path[h+1], vc, want)
		}
	}
	// A route that never wraps stays on VC 0 for every hop.
	state = 0
	for h, u := range []int{1, 2, 3} {
		vc, ns := pol(h, u, u+1, state)
		if vc != 0 {
			t.Errorf("unwrapped hop %d->%d: vc %d, want 0", u, u+1, vc)
		}
		state = ns
	}
}

// TestHBRouteOrdersCubeFirst: the two-phase route of Section 3 emits
// every hypercube correction before any butterfly move — the ordering
// HBDateline's acyclicity argument relies on (cube hops all ride VC 0
// and come before the level-ring traversal).
func TestHBRouteOrdersCubeFirst(t *testing.T) {
	hb := core.MustNew(2, 4)
	for u := 0; u < hb.Order(); u += 7 {
		for v := 0; v < hb.Order(); v += 5 {
			if u == v {
				continue
			}
			seenButterfly := false
			for i, mv := range hb.RouteMoves(u, v) {
				if !mv.Cube {
					seenButterfly = true
				} else if seenButterfly {
					t.Fatalf("route %d->%d: cube move at position %d after a butterfly move", u, v, i)
				}
			}
		}
	}
}

// TestHBDatelineTransitions traces the policy along concrete routes:
// cube hops stay on VC 0, clockwise butterfly hops ride VC 0 until the
// walk crosses the pi = n-1 -> 0 ring edge and VC 1 after it, and the
// per-direction dateline bits latch independently.
func TestHBDatelineTransitions(t *testing.T) {
	hb := core.MustNew(2, 4)
	pol := HBDateline(hb)
	bf := hb.Butterfly()
	n := hb.N()
	checked, crossed := 0, 0
	for u := 0; u < hb.Order(); u += 3 {
		for v := 0; v < hb.Order(); v += 11 {
			if u == v {
				continue
			}
			path := hb.Route(u, v)
			state := 0
			cw, ccw := false, false
			for h := 0; h+1 < len(path); h++ {
				from, to := path[h], path[h+1]
				var vc int
				vc, state = pol(h, from, to, state)
				_, bu := hb.Decode(from)
				_, bv := hb.Decode(to)
				if bu == bv { // hypercube hop
					if vc != 0 {
						t.Fatalf("route %d->%d hop %d: cube hop on vc %d", u, v, h, vc)
					}
					continue
				}
				pu, pv := bf.PI(bu), bf.PI(bv)
				if pv == (pu+1)%n { // clockwise
					if pu == n-1 {
						cw = true
						crossed++
					}
					want := 0
					if cw {
						want = 1
					}
					if vc != want {
						t.Fatalf("route %d->%d hop %d: cw hop vc %d, want %d (crossed=%v)", u, v, h, vc, want, cw)
					}
				} else { // counter-clockwise
					if pu == 0 {
						ccw = true
					}
					want := 0
					if ccw {
						want = 1
					}
					if vc != want {
						t.Fatalf("route %d->%d hop %d: ccw hop vc %d, want %d (crossed=%v)", u, v, h, vc, want, ccw)
					}
				}
			}
			checked++
		}
	}
	if checked == 0 || crossed == 0 {
		t.Fatalf("fixture too small: %d routes, %d dateline crossings", checked, crossed)
	}
}

// TestSingleVCDeadlocksDatelineSurvives is the paired regression the
// dateline policy exists for: the identical saturating HB load wedges
// on one virtual channel and completes on the dateline discipline.
func TestSingleVCDeadlocksDatelineSurvives(t *testing.T) {
	hb := core.MustNew(2, 3)
	base := Config{
		Cycles: 3000, Rate: 0.4, PacketLen: 4, BufDepth: 1,
		Route: hb.Route, Seed: 9,
	}
	single := base
	single.VCs, single.Policy = 1, SingleVC
	sres, err := Run(hb, single)
	if err != nil {
		t.Fatal(err)
	}
	if !sres.Deadlocked {
		t.Fatalf("single VC survived saturating load: %+v", sres)
	}
	dateline := base
	dateline.VCs, dateline.Policy = 2, HBDateline(hb)
	dres, err := Run(hb, dateline)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Deadlocked {
		t.Fatalf("dateline deadlocked: %+v", dres)
	}
	if dres.Delivered <= sres.Delivered {
		t.Fatalf("dateline delivered %d <= single-VC %d", dres.Delivered, sres.Delivered)
	}
}
