// Package wormhole is a flit-level wormhole-switching simulator with
// virtual channels — the switching layer a real implementation of the
// paper's network would use (store-and-forward, modelled by simnet, was
// already dated in 1998). Packets are worms of L flits that stretch
// across a chain of (link, virtual-channel) resources; a blocked head
// leaves its body in place, which is exactly what makes wormhole
// networks deadlock-prone and virtual-channel allocation interesting:
//
//   - with a single virtual channel, the wrap-around rings inside the
//     butterfly (and any ring, the test fixture) deadlock under load;
//   - the classical dateline discipline (switch to VC 1 after crossing
//     a fixed "dateline" edge of each ring, with hypercube dimensions
//     ordered before butterfly moves) breaks the cyclic channel
//     dependencies, and the simulator confirms deadlock-free operation
//     of HB(m,n) at saturating load.
//
// The deadlock detector is observational: a cycle in which no flit
// moves while worms are in flight is a deadlock (with FIFO channel
// ownership there is no livelock to confuse it with).
package wormhole

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// VCPolicy chooses the virtual channel for each hop of a packet's path.
// It is called once per hop in order; state carries per-packet routing
// state (e.g. "crossed the dateline") between hops and starts at zero.
type VCPolicy func(hop int, from, to int, state int) (vc int, newState int)

// SingleVC routes everything on virtual channel 0.
func SingleVC(int, int, int, int) (int, int) { return 0, 0 }

// Config parameterises a wormhole run.
type Config struct {
	Cycles     int
	Rate       float64 // injection probability per node per cycle
	PacketLen  int     // flits per packet (>= 1)
	BufDepth   int     // flit buffer capacity per (link, VC) (>= 1)
	VCs        int     // virtual channels per link (>= 1)
	Seed       int64
	Policy     VCPolicy
	Route      func(u, v int) []int // node path including endpoints
	DeadlockAt int                  // motionless cycles that count as deadlock (default 64)
}

// Validate reports the first configuration error, naming the offending
// field; Run rejects invalid configs with the same errors.
func (cfg *Config) Validate() error {
	switch {
	case cfg.Cycles <= 0:
		return fmt.Errorf("wormhole: Cycles %d < 1", cfg.Cycles)
	case cfg.Rate < 0 || cfg.Rate > 1:
		return fmt.Errorf("wormhole: Rate %v outside [0,1]", cfg.Rate)
	case cfg.PacketLen < 1:
		return fmt.Errorf("wormhole: PacketLen %d < 1", cfg.PacketLen)
	case cfg.BufDepth < 1:
		return fmt.Errorf("wormhole: BufDepth %d < 1", cfg.BufDepth)
	case cfg.VCs < 1:
		return fmt.Errorf("wormhole: VCs %d < 1", cfg.VCs)
	case cfg.Policy == nil:
		return fmt.Errorf("wormhole: Policy is required")
	case cfg.Route == nil:
		return fmt.Errorf("wormhole: Route is required")
	case cfg.DeadlockAt < 0:
		return fmt.Errorf("wormhole: DeadlockAt %d < 0", cfg.DeadlockAt)
	}
	return nil
}

// Result reports the run. The JSON shape is covered by a golden-file
// test so hbsim output stays byte-stable across refactors.
type Result struct {
	Injected   int     `json:"injected"`
	Delivered  int     `json:"delivered"`
	InFlight   int     `json:"in_flight"`
	FlitEvents int64   `json:"flit_events"` // flit buffer movements (inject/shift/sink)
	AvgLatency float64 `json:"avg_latency"`
	MaxLatency int     `json:"max_latency"`
	Deadlocked bool    `json:"deadlocked"`
	// DeadCycle is the cycle at which deadlock was declared (valid when
	// Deadlocked).
	DeadCycle int `json:"dead_cycle"`
}

type worm struct {
	path     []int32 // node sequence
	vcs      []int8  // chosen VC per hop
	chans    []int   // directed-edge ids per hop (aligned with vcs)
	occupied []int   // flits currently buffered per hop index
	headHop  int     // furthest hop whose channel is owned (-1 before first acquire)
	tailHop  int     // earliest hop still owned
	toInject int     // flits not yet injected
	sunk     int     // flits delivered
	injected int32   // injection cycle
}

// Run simulates cfg on g.
func Run(g graph.Graph, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	deadlockAt := cfg.DeadlockAt
	if deadlockAt == 0 {
		deadlockAt = 64
	}
	d := graph.Build(g)
	n := d.Order()

	// Directed edge table: id = offset of (u -> row[k]).
	offsets := make([]int, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + d.Degree(v)
	}
	edgeID := func(u, w int) int {
		row := d.Neighbors(u)
		k := sort.Search(len(row), func(i int) bool { return row[i] >= int32(w) })
		if k == len(row) || row[k] != int32(w) {
			panic(fmt.Sprintf("wormhole: route uses non-edge %d-%d", u, w))
		}
		return offsets[u] + k
	}
	totalEdges := offsets[n]
	owner := make([]*worm, totalEdges*cfg.VCs) // (edge, vc) -> owning worm
	chanIdx := func(edge int, vc int8) int { return edge*cfg.VCs + int(vc) }

	rng := rand.New(rand.NewSource(cfg.Seed))
	var res Result
	var worms []*worm
	totalLatency := 0
	idleCycles := 0

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		// Injection.
		for v := 0; v < n; v++ {
			if rng.Float64() >= cfg.Rate {
				continue
			}
			dst := rng.Intn(n)
			if dst == v {
				continue
			}
			path := cfg.Route(v, dst)
			if len(path) < 2 || path[0] != v || path[len(path)-1] != dst {
				return res, fmt.Errorf("wormhole: bad route %v for %d->%d", path, v, dst)
			}
			w := &worm{
				path:     make([]int32, len(path)),
				vcs:      make([]int8, len(path)-1),
				chans:    make([]int, len(path)-1),
				occupied: make([]int, len(path)-1),
				headHop:  -1,
				toInject: cfg.PacketLen,
				injected: int32(cycle),
			}
			state := 0
			for i, x := range path {
				w.path[i] = int32(x)
				if i+1 < len(path) {
					var vc int
					vc, state = cfg.Policy(i, x, path[i+1], state)
					if vc < 0 || vc >= cfg.VCs {
						return res, fmt.Errorf("wormhole: policy chose vc %d of %d", vc, cfg.VCs)
					}
					w.vcs[i] = int8(vc)
					w.chans[i] = edgeID(x, path[i+1])
				}
			}
			res.Injected++
			worms = append(worms, w)
		}

		// Movement: one flit per owned channel per cycle, downstream
		// first so a flit cannot move twice.
		moved := false
		alive := worms[:0]
		for _, w := range worms {
			// Sink from the final owned hop if it is the last path hop.
			last := len(w.chans) - 1
			if w.headHop == last && w.occupied[last] > 0 {
				w.occupied[last]--
				w.sunk++
				res.FlitEvents++
				moved = true
			}
			// Try to advance the head into the next channel.
			if w.headHop < last {
				nextHop := w.headHop + 1
				ci := chanIdx(w.chans[nextHop], w.vcs[nextHop])
				if owner[ci] == nil {
					owner[ci] = w
					w.headHop = nextHop
					moved = true
				}
			}
			// Shift flits forward between adjacent owned channels.
			for h := w.headHop; h > w.tailHop; h-- {
				if w.occupied[h] < cfg.BufDepth && w.occupied[h-1] > 0 {
					w.occupied[h]++
					w.occupied[h-1]--
					res.FlitEvents++
					moved = true
				}
			}
			// Inject a flit into the first owned channel.
			if w.toInject > 0 && w.headHop >= w.tailHop && w.occupied[w.tailHop] < cfg.BufDepth {
				w.occupied[w.tailHop]++
				w.toInject--
				res.FlitEvents++
				moved = true
			}
			// Release drained tail channels once injection has finished.
			for w.toInject == 0 && w.tailHop < w.headHop && w.occupied[w.tailHop] == 0 {
				owner[chanIdx(w.chans[w.tailHop], w.vcs[w.tailHop])] = nil
				w.tailHop++
			}
			// Completion.
			if w.sunk == cfg.PacketLen {
				owner[chanIdx(w.chans[last], w.vcs[last])] = nil
				res.Delivered++
				lat := cycle + 1 - int(w.injected)
				totalLatency += lat
				if lat > res.MaxLatency {
					res.MaxLatency = lat
				}
				continue
			}
			alive = append(alive, w)
		}
		worms = alive

		if len(worms) > 0 && !moved {
			idleCycles++
			if idleCycles >= deadlockAt {
				res.Deadlocked = true
				res.DeadCycle = cycle
				break
			}
		} else {
			idleCycles = 0
		}
	}
	res.InFlight = len(worms)
	if res.Delivered > 0 {
		res.AvgLatency = float64(totalLatency) / float64(res.Delivered)
	}
	return res, nil
}
