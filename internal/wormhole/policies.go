package wormhole

import "repro/internal/core"

// RingDateline returns a VC policy for a unidirectional ring of n
// nodes routed clockwise: virtual channel 0 before the wrap-around edge
// (n-1 -> 0), virtual channel 1 from the wrap onward. Two VCs suffice
// to make the ring's channel dependency graph acyclic — the textbook
// dateline argument, demonstrated by the tests.
func RingDateline(n int) VCPolicy {
	return func(hop, from, to, state int) (int, int) {
		if from == n-1 && to == 0 {
			state = 1
		}
		return state, state
	}
}

// HBDateline returns the deadlock-avoiding policy for HB(m,n) routed by
// the two-phase algorithm of Section 3: hypercube hops (naturally
// ordered by e-cube dimension order) stay on VC 0; butterfly hops start
// on VC 0 per direction and switch to VC 1 after crossing that
// direction's dateline (the level-ring edge between permutation indices
// n-1 and 0). A shortest butterfly walk crosses each direction's
// dateline at most once, so VC 1 never wraps and each direction's
// dependency chain is acyclic. Requires at least 2 VCs.
//
// State layout: bit 0 = crossed the clockwise dateline, bit 1 = crossed
// the counter-clockwise dateline.
func HBDateline(hb *core.HyperButterfly) VCPolicy {
	n := hb.N()
	bf := hb.Butterfly()
	return func(hop, from, to, state int) (int, int) {
		hu, bu := hb.Decode(from)
		hv, bv := hb.Decode(to)
		if bu == bv && hu != hv {
			return 0, state // hypercube hop
		}
		pu, pv := bf.PI(bu), bf.PI(bv)
		if pv == (pu+1)%n { // clockwise (g or f)
			if pu == n-1 {
				state |= 1
			}
			return state & 1, state
		}
		// counter-clockwise (g^-1 or f^-1)
		if pu == 0 {
			state |= 2
		}
		return (state >> 1) & 1, state
	}
}
