package wormhole

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestResultJSONGolden pins the JSON encoding of Result — field names
// and values for one deterministic run — so the stats contract shared
// with hbsim and the noc differential stays byte-stable. Regenerate
// with: go test ./internal/wormhole -run ResultJSONGolden -update
func TestResultJSONGolden(t *testing.T) {
	hb := core.MustNew(1, 3)
	res, err := Run(hb, Config{
		Cycles: 300, Rate: 0.05, PacketLen: 3, BufDepth: 2, VCs: 2,
		Policy: HBDateline(hb), Route: hb.Route, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "result_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("Result JSON drifted from golden file:\ngot:\n%s\nwant:\n%s\n(run with -update if intentional)", got, want)
	}

	// The encoding must round-trip losslessly.
	var back Result
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back != res {
		t.Errorf("round trip changed the result: %+v vs %+v", back, res)
	}
}
