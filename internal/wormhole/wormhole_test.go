package wormhole

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// cwRing routes every packet clockwise on Ring{N: n}.
func cwRingRoute(n int) func(u, v int) []int {
	return func(u, v int) []int {
		p := []int{u}
		for cur := u; cur != v; {
			cur = (cur + 1) % n
			p = append(p, cur)
		}
		return p
	}
}

func TestConfigValidation(t *testing.T) {
	ring := graph.Ring{N: 6}
	route := cwRingRoute(6)
	good := Config{Cycles: 10, Rate: 0.1, PacketLen: 2, BufDepth: 1, VCs: 1, Policy: SingleVC, Route: route}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	// Each mutation breaks exactly one field; the error must name it.
	bad := []struct {
		field string
		mut   func(*Config)
	}{
		{"Cycles", func(c *Config) { c.Cycles = 0 }},
		{"Rate", func(c *Config) { c.Rate = -1 }},
		{"Rate", func(c *Config) { c.Rate = 1.5 }},
		{"PacketLen", func(c *Config) { c.PacketLen = 0 }},
		{"BufDepth", func(c *Config) { c.BufDepth = 0 }},
		{"VCs", func(c *Config) { c.VCs = 0 }},
		{"Policy", func(c *Config) { c.Policy = nil }},
		{"Route", func(c *Config) { c.Route = nil }},
		{"DeadlockAt", func(c *Config) { c.DeadlockAt = -1 }},
	}
	for _, tc := range bad {
		cfg := good
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s mutation accepted", tc.field)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%s mutation: error %q does not name the field", tc.field, err)
		}
		if _, rerr := Run(ring, cfg); rerr == nil || rerr.Error() != err.Error() {
			t.Errorf("%s mutation: Run error %v differs from Validate error %v", tc.field, rerr, err)
		}
	}
	// A policy returning an out-of-range VC must be rejected.
	badVC := func(int, int, int, int) (int, int) { return 3, 0 }
	if _, err := Run(ring, Config{Cycles: 50, Rate: 1, PacketLen: 2, BufDepth: 1, VCs: 2,
		Policy: badVC, Route: route, Seed: 1}); err == nil {
		t.Error("accepted out-of-range VC")
	}
}

// TestLightLoadDelivers: with low load and long buffers nothing blocks.
func TestLightLoadDelivers(t *testing.T) {
	ring := graph.Ring{N: 8}
	res, err := Run(ring, Config{
		Cycles: 2000, Rate: 0.01, PacketLen: 3, BufDepth: 4, VCs: 1,
		Policy: SingleVC, Route: cwRingRoute(8), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("light load deadlocked")
	}
	if res.Delivered == 0 || res.Delivered+res.InFlight != res.Injected {
		t.Fatalf("accounting: %+v", res)
	}
	// A worm of 3 flits over >= 1 hop takes at least PacketLen cycles.
	if res.MaxLatency < 3 {
		t.Fatalf("max latency %d too small", res.MaxLatency)
	}
}

// TestRingSingleVCDeadlocks is the classical result: wormhole worms on
// a single-VC ring under saturating load form a cyclic channel wait and
// the network wedges.
func TestRingSingleVCDeadlocks(t *testing.T) {
	ring := graph.Ring{N: 8}
	res, err := Run(ring, Config{
		Cycles: 4000, Rate: 0.5, PacketLen: 4, BufDepth: 1, VCs: 1,
		Policy: SingleVC, Route: cwRingRoute(8), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatalf("single-VC saturated ring did not deadlock: %+v", res)
	}
}

// TestRingDatelineAvoidsDeadlock: the same load with two VCs and the
// dateline discipline runs to completion.
func TestRingDatelineAvoidsDeadlock(t *testing.T) {
	ring := graph.Ring{N: 8}
	res, err := Run(ring, Config{
		Cycles: 4000, Rate: 0.5, PacketLen: 4, BufDepth: 1, VCs: 2,
		Policy: RingDateline(8), Route: cwRingRoute(8), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatalf("dateline ring deadlocked at cycle %d", res.DeadCycle)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestHBDatelineHeavyLoad: HB(2,3) at saturating injection with the
// two-phase route and the HB dateline policy stays deadlock-free.
func TestHBDatelineHeavyLoad(t *testing.T) {
	hb := core.MustNew(2, 3)
	res, err := Run(hb, Config{
		Cycles: 3000, Rate: 0.3, PacketLen: 4, BufDepth: 1, VCs: 2,
		Policy: HBDateline(hb), Route: hb.Route, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatalf("HB dateline deadlocked at cycle %d", res.DeadCycle)
	}
	if res.Delivered == 0 || res.Delivered+res.InFlight != res.Injected {
		t.Fatalf("accounting: %+v", res)
	}
}

// TestDeterminism: same seed, same outcome.
func TestDeterminism(t *testing.T) {
	hb := core.MustNew(1, 3)
	cfg := Config{
		Cycles: 500, Rate: 0.1, PacketLen: 3, BufDepth: 2, VCs: 2,
		Policy: HBDateline(hb), Route: hb.Route, Seed: 7,
	}
	a, err := Run(hb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(hb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestHBSingleVCDeadlocks: without virtual channels the butterfly
// wrap-around rings inside HB(2,3) wedge under the same load that the
// dateline policy survives — the pair of results that motivates
// HBDateline.
func TestHBSingleVCDeadlocks(t *testing.T) {
	hb := core.MustNew(2, 3)
	res, err := Run(hb, Config{
		Cycles: 3000, Rate: 0.3, PacketLen: 4, BufDepth: 1, VCs: 1,
		Policy: SingleVC, Route: hb.Route, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatalf("single-VC HB did not deadlock: %+v", res)
	}
}
