package noc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hyperdebruijn"
)

// walkEscape runs AppendHops for every ordered pair, validating each
// walk (edges exist, endpoint reached, length bounded, stages strictly
// increase) and returning the escape channel-dependency edges as pairs
// of (edge-id, class) channel keys.
func walkEscape(t *testing.T, g graph.Graph, esc Escape) map[[2]int64]bool {
	t.Helper()
	d := graph.Build(g)
	n := d.Order()
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + int32(d.Degree(v))
	}
	edgeOf := func(u, w int) int64 {
		row := d.Neighbors(u)
		for k, x := range row {
			if int(x) == w {
				return int64(offsets[u]) + int64(k)
			}
		}
		t.Fatalf("escape walk uses non-edge %d-%d", u, w)
		return -1
	}
	deps := make(map[[2]int64]bool)
	var path []int32
	var cls []int8
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			path, cls = esc.AppendHops(u, v, path[:0], cls[:0])
			if len(path) == 0 || int(path[len(path)-1]) != v {
				t.Fatalf("escape %d->%d ends at %v", u, v, path)
			}
			if len(path) != len(cls) {
				t.Fatalf("escape %d->%d: %d hops, %d classes", u, v, len(path), len(cls))
			}
			if len(path) > esc.MaxLen() {
				t.Fatalf("escape %d->%d: %d hops exceeds MaxLen %d", u, v, len(path), esc.MaxLen())
			}
			prev := u
			prevStage := -1
			var prevCh int64 = -1
			for i, x := range path {
				if cls[i] < 0 || int(cls[i]) >= esc.Classes() {
					t.Fatalf("escape %d->%d hop %d: class %d of %d", u, v, i, cls[i], esc.Classes())
				}
				stage := esc.Stage(prev, int(x), cls[i])
				if stage <= prevStage {
					t.Fatalf("escape %d->%d hop %d: stage %d after %d — not weight-ordered",
						u, v, i, stage, prevStage)
				}
				ch := edgeOf(prev, int(x))*int64(esc.Classes()) + int64(cls[i])
				if prevCh >= 0 {
					deps[[2]int64{prevCh, ch}] = true
				}
				prev, prevStage, prevCh = int(x), stage, ch
			}
		}
	}
	return deps
}

// assertAcyclic topologically sorts the channel-dependency graph and
// fails if any cycle remains — Duato's condition for deadlock freedom
// of the escape sub-network.
func assertAcyclic(t *testing.T, deps map[[2]int64]bool) {
	t.Helper()
	out := make(map[int64][]int64)
	indeg := make(map[int64]int)
	for e := range deps {
		out[e[0]] = append(out[e[0]], e[1])
		if _, ok := indeg[e[0]]; !ok {
			indeg[e[0]] = 0
		}
		indeg[e[1]]++
	}
	queue := make([]int64, 0, len(indeg))
	for ch, dg := range indeg {
		if dg == 0 {
			queue = append(queue, ch)
		}
	}
	seen := 0
	for len(queue) > 0 {
		ch := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, nx := range out[ch] {
			indeg[nx]--
			if indeg[nx] == 0 {
				queue = append(queue, nx)
			}
		}
	}
	if seen != len(indeg) {
		t.Fatalf("escape channel-dependency graph has a cycle: %d of %d channels sorted", seen, len(indeg))
	}
}

// TestEscapeDependencyAcyclic is the checkable deadlock-freedom
// argument of the tentpole: for both escape disciplines, every escape
// walk climbs strictly in stage, and the induced channel-dependency
// graph over (link, class) escape channels is acyclic.
func TestEscapeDependencyAcyclic(t *testing.T) {
	t.Run("HB23", func(t *testing.T) {
		hb := core.MustNew(2, 3)
		assertAcyclic(t, walkEscape(t, hb, NewHBEscape(hb)))
	})
	t.Run("HB33", func(t *testing.T) {
		hb := core.MustNew(3, 3)
		assertAcyclic(t, walkEscape(t, hb, NewHBEscape(hb)))
	})
	t.Run("TreeHD33", func(t *testing.T) {
		hd := hyperdebruijn.MustNew(3, 3)
		esc, err := NewTreeEscape(hd)
		if err != nil {
			t.Fatal(err)
		}
		assertAcyclic(t, walkEscape(t, hd, esc))
	})
	t.Run("TreeRing", func(t *testing.T) {
		esc, err := NewTreeEscape(graph.Ring{N: 9})
		if err != nil {
			t.Fatal(err)
		}
		assertAcyclic(t, walkEscape(t, graph.Ring{N: 9}, esc))
	})
}

// TestHBEscapeClasses: the clockwise walk never needs more than the
// advertised three dateline classes, and cube hops always ride class 0.
func TestHBEscapeClasses(t *testing.T) {
	hb := core.MustNew(2, 4)
	esc := NewHBEscape(hb)
	var path []int32
	var cls []int8
	maxClass := int8(0)
	for u := 0; u < hb.Order(); u++ {
		for v := 0; v < hb.Order(); v++ {
			if u == v {
				continue
			}
			path, cls = esc.AppendHops(u, v, path[:0], cls[:0])
			for _, c := range cls {
				if c > maxClass {
					maxClass = c
				}
			}
		}
	}
	if int(maxClass) >= esc.Classes() {
		t.Fatalf("walks used class %d with only %d classes", maxClass, esc.Classes())
	}
	if maxClass < 1 {
		t.Fatal("no walk ever crossed the dateline — fixture too small to exercise classes")
	}
}
