package noc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/wormhole"
)

// Benchmarks for the event-driven NoC engine against the retained
// cycle-scan wormhole oracle on HB(3,3) at saturating load (E-NC in
// EXPERIMENTS.md):
//
//	go test ./internal/noc -bench . -benchmem
//
// The cross-PR artifact BENCH_noc.json — including the engine/oracle
// flit-events-per-second ratio the acceptance gate reads — is emitted
// by `hbsim -mode noc`, which re-measures both simulators at run time
// rather than copying numbers from here.

const benchCycles = 300

func benchEngineCfg(hb *core.HyperButterfly) Config {
	return Config{
		Cycles: benchCycles, Rate: 0.5, PacketLen: 4, BufDepth: 2, VCs: 4,
		MaxRoute: hb.DiameterFormula(), Seed: 42,
		Route: hb.Route, Policy: wormhole.HBDateline(hb),
	}
}

// BenchmarkNoCObliviousHB33 runs the engine on exactly the oracle's
// workload (dateline policy over the library route) — the direct
// apples-to-apples row.
func BenchmarkNoCObliviousHB33(b *testing.B) {
	hb := core.MustNew(3, 3)
	e, err := New(hb, benchEngineCfg(hb))
	if err != nil {
		b.Fatal(err)
	}
	res, err := e.Run() // warm the arenas out of the measurement
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.FlitEvents)*float64(b.N)/b.Elapsed().Seconds(), "flitev/s")
}

// BenchmarkNoCAdaptiveHB33 adds congestion-aware routing with the
// escape channel — the configuration the paper-level experiments use.
func BenchmarkNoCAdaptiveHB33(b *testing.B) {
	hb := core.MustNew(3, 3)
	cfg := benchEngineCfg(hb)
	cfg.Route, cfg.Policy = nil, nil
	cfg.Adaptive = hbAdaptive(hb)
	e, err := New(hb, cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.FlitEvents)*float64(b.N)/b.Elapsed().Seconds(), "flitev/s")
}

// BenchmarkWormholeOracleHB33 is the pre-PR baseline: the O(worms)
// per-cycle scan loop with per-packet allocation.
func BenchmarkWormholeOracleHB33(b *testing.B) {
	hb := core.MustNew(3, 3)
	cfg := wormhole.Config{
		Cycles: benchCycles, Rate: 0.5, PacketLen: 4, BufDepth: 2, VCs: 4,
		Seed: 42, Route: hb.Route, Policy: wormhole.HBDateline(hb),
	}
	res, err := wormhole.Run(hb, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wormhole.Run(hb, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.FlitEvents)*float64(b.N)/b.Elapsed().Seconds(), "flitev/s")
}
