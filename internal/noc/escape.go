package noc

import (
	"fmt"

	"repro/internal/butterfly"
	"repro/internal/core"
	"repro/internal/graph"
)

// Escape describes the deadlock-free escape sub-network of an adaptive
// wormhole configuration, in the style of Duato's protocol: adaptive
// virtual channels may form cyclic dependencies, but every blocked worm
// can always fall back to an escape walk whose channels are totally
// ordered by a stage number (equivalently, by stage-decreasing link
// weights, the discipline the gem5 butterfly topology encodes as
// `weight = 50 - stage`). Because Stage is a property of the channel
// alone and strictly increases along every escape walk, the escape
// channel-dependency graph is acyclic — the checkable deadlock-freedom
// argument TestEscapeDependencyAcyclic and the conformance
// escape-acyclic invariant assert, replacing the purely observational
// detector of package wormhole.
type Escape interface {
	// Classes returns how many escape virtual channels each directed
	// link needs (dateline-style wrap classes; 1 when no link is ever
	// reused within one walk).
	Classes() int
	// MaxLen bounds the hop count of any escape walk.
	MaxLen() int
	// AppendHops appends the escape walk cur -> dst, one node per hop
	// (cur itself excluded), to path, and each hop's escape class to
	// cls. Both slices grow by the same amount. Implementations must be
	// safe for concurrent use and allocation-free when the slices have
	// capacity.
	AppendHops(cur, dst int, path []int32, cls []int8) ([]int32, []int8)
	// Stage returns the totally-ordered stage of the escape channel for
	// hop u -> v in class c. Stages strictly increase along every walk
	// AppendHops emits; the corresponding link weight is
	// maxStage - Stage, decreasing along the walk.
	Stage(u, v int, c int8) int
}

// HBEscape is the hyper-butterfly escape discipline: the walk corrects
// the hypercube part dimension by dimension in ascending order (e-cube,
// stages 0..m-1), then walks the sub-butterfly ring clockwise only
// (g/f moves), flipping each differing symbol as its level passes the
// front, until the label matches (stages m..m+3n-1). A clockwise walk
// of at most 2n-1 hops crosses the level-ring dateline (permutation
// index n-1 -> 0) at most twice, so three wrap classes suffice; the
// class bumps on every dateline hop, which keeps the stage
//
//	stage = m + class·n + ((pi+1) mod n)
//
// strictly increasing along the walk even across the wrap.
type HBEscape struct {
	hb *core.HyperButterfly
	m  int
	n  int
}

// NewHBEscape returns the escape discipline for hb.
func NewHBEscape(hb *core.HyperButterfly) *HBEscape {
	return &HBEscape{hb: hb, m: hb.M(), n: hb.N()}
}

// Classes implements Escape: three dateline wrap classes.
func (e *HBEscape) Classes() int { return 3 }

// MaxLen implements Escape: m cube hops plus at most 2n-1 ring hops.
func (e *HBEscape) MaxLen() int { return e.m + 2*e.n }

// AppendHops implements Escape.
func (e *HBEscape) AppendHops(cur, dst int, path []int32, cls []int8) ([]int32, []int8) {
	hb := e.hb
	hu, bu := hb.Decode(cur)
	hv, bv := hb.Decode(dst)
	// Hypercube phase: lowest dimension first, class 0.
	h := hu
	for d := hu ^ hv; d != 0; d &= d - 1 {
		h ^= d & -d
		path = append(path, int32(hb.Encode(h, bu)))
		cls = append(cls, 0)
	}
	// Butterfly phase: clockwise ring walk in the sub-butterfly hv.
	bf := hb.Butterfly()
	_, mv := bf.Split(bv)
	b := bu
	class := int8(0)
	for steps := 0; b != bv; steps++ {
		if steps > 2*e.n {
			panic(fmt.Sprintf("noc: escape walk %d->%d did not terminate", cur, dst))
		}
		pi, mask := bf.Split(b)
		gen := butterfly.GenG
		if (mask^mv)>>uint(pi)&1 == 1 {
			gen = butterfly.GenF // fix symbol t_{pi+1} while it is in front
		}
		if pi == e.n-1 {
			class++ // dateline hop and everything after it use the next class
		}
		b = bf.Apply(gen, b)
		path = append(path, int32(hb.Encode(hv, b)))
		cls = append(cls, class)
	}
	return path, cls
}

// Stage implements Escape.
func (e *HBEscape) Stage(u, v int, c int8) int {
	hb := e.hb
	hu, bu := hb.Decode(u)
	hv, bv := hb.Decode(v)
	if bu == bv && hu != hv {
		d := hu ^ hv
		if d&(d-1) != 0 {
			panic(fmt.Sprintf("noc: %d->%d is not a hypercube edge", u, v))
		}
		bit := 0
		for d > 1 {
			d >>= 1
			bit++
		}
		return bit
	}
	bf := hb.Butterfly()
	pu := bf.PI(bu)
	if hu != hv || bf.PI(bv) != (pu+1)%e.n {
		panic(fmt.Sprintf("noc: %d->%d is not a clockwise butterfly edge", u, v))
	}
	return e.m + int(c)*e.n + (pu+1)%e.n
}

// TreeEscape is the generic escape discipline for an arbitrary
// connected graph: walks go up the BFS tree rooted at node 0 to the
// root, then down the tree to the destination. Up channels (child ->
// parent) and down channels (parent -> child) are distinct directed
// edges, so a single escape virtual channel suffices; stages order up
// channels by decreasing depth and down channels — all later — by
// increasing depth, which makes every walk stage-monotone.
type TreeEscape struct {
	parent   []int32
	depth    []int32
	maxDepth int
}

// NewTreeEscape builds the BFS-tree escape for g; it returns an error
// when g is disconnected.
func NewTreeEscape(g graph.Graph) (*TreeEscape, error) {
	n := g.Order()
	t := &TreeEscape{parent: make([]int32, n), depth: make([]int32, n)}
	for i := range t.parent {
		t.parent[i] = -1
	}
	t.parent[0] = 0
	queue := make([]int32, 1, n)
	var buf []int
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		buf = g.AppendNeighbors(v, buf[:0])
		for _, w := range buf {
			if t.parent[w] == -1 {
				t.parent[w] = int32(v)
				t.depth[w] = t.depth[v] + 1
				if int(t.depth[w]) > t.maxDepth {
					t.maxDepth = int(t.depth[w])
				}
				queue = append(queue, int32(w))
			}
		}
	}
	if len(queue) != n {
		return nil, fmt.Errorf("noc: tree escape needs a connected graph (%d of %d reached)", len(queue), n)
	}
	return t, nil
}

// Classes implements Escape.
func (t *TreeEscape) Classes() int { return 1 }

// MaxLen implements Escape.
func (t *TreeEscape) MaxLen() int { return 2 * t.maxDepth }

// AppendHops implements Escape.
func (t *TreeEscape) AppendHops(cur, dst int, path []int32, cls []int8) ([]int32, []int8) {
	for x := int32(cur); t.depth[x] > 0; x = t.parent[x] {
		path = append(path, t.parent[x])
		cls = append(cls, 0)
	}
	// Emit the down segment by walking dst -> root and reversing in
	// place, so no scratch buffer is needed and the method stays safe
	// for concurrent use.
	start := len(path)
	for x := int32(dst); t.depth[x] > 0; x = t.parent[x] {
		path = append(path, x)
		cls = append(cls, 0)
	}
	for i, j := start, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, cls
}

// Stage implements Escape.
func (t *TreeEscape) Stage(u, v int, c int8) int {
	switch {
	case int(t.parent[u]) == v && t.depth[u] == t.depth[v]+1:
		return t.maxDepth - int(t.depth[u]) // up: deeper channels first
	case int(t.parent[v]) == u && t.depth[v] == t.depth[u]+1:
		return t.maxDepth + int(t.depth[v]) // down: all after every up
	default:
		panic(fmt.Sprintf("noc: %d->%d is not a tree-escape edge", u, v))
	}
}
